#include "voprof/runner/runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "voprof/scenario/scenario.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::runner {
namespace {

RunOptions jobs_opts(int jobs) {
  RunOptions opts;
  opts.jobs = jobs;
  return opts;
}

TEST(SeedFor, IsPureAndIndexSensitive) {
  EXPECT_EQ(util::seed_for(42, 0), util::seed_for(42, 0));
  EXPECT_NE(util::seed_for(42, 0), util::seed_for(42, 1));
  EXPECT_NE(util::seed_for(42, 0), util::seed_for(43, 0));
}

TEST(SeedFor, AdjacentIndicesShareNoObviousStructure) {
  // Derived seeds should look unrelated: all distinct, and not simply
  // offset by a constant stride.
  std::set<std::uint64_t> seen;
  std::set<std::uint64_t> deltas;
  std::uint64_t prev = util::seed_for(7, 0);
  seen.insert(prev);
  for (std::uint64_t i = 1; i < 256; ++i) {
    const std::uint64_t s = util::seed_for(7, i);
    seen.insert(s);
    deltas.insert(s - prev);
    prev = s;
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_GT(deltas.size(), 250u);
}

TEST(RunOptions, ParsesJobsFlag) {
  const char* argv[] = {"bench", "--jobs", "3"};
  const RunOptions opts = options_from_cli(3, argv);
  EXPECT_EQ(opts.jobs, 3);
}

TEST(RunOptions, DefaultsToAllHardwareThreads) {
  const char* argv[] = {"bench"};
  const RunOptions opts = options_from_cli(1, argv);
  EXPECT_EQ(opts.jobs, 0);
  EXPECT_EQ(SweepRunner(opts).jobs(), util::TaskPool::default_jobs());
}

TEST(RunOptions, RejectsUnknownFlagsAndBadValues) {
  const char* unknown[] = {"bench", "--job", "3"};
  EXPECT_THROW((void)options_from_cli(3, unknown), util::ContractViolation);
  const char* negative[] = {"bench", "--jobs", "-2"};
  EXPECT_THROW((void)options_from_cli(3, negative), util::ContractViolation);
  const char* positional[] = {"bench", "fast"};
  EXPECT_THROW((void)options_from_cli(2, positional), util::ContractViolation);
}

MicroSweepConfig small_sweep() {
  MicroSweepConfig config;
  config.vm_counts = {1, 2};
  config.kinds = {wl::WorkloadKind::kCpu, wl::WorkloadKind::kIo};
  config.levels = 2;
  config.duration = util::seconds(3.0);
  return config;
}

TEST(MicroSweep, ByteIdenticalAcrossJobCounts) {
  const MicroSweepConfig config = small_sweep();
  const std::string serial = run_micro_sweep(config, jobs_opts(1)).str();
  EXPECT_EQ(serial, run_micro_sweep(config, jobs_opts(2)).str());
  EXPECT_EQ(serial, run_micro_sweep(config, jobs_opts(8)).str());
}

TEST(MicroSweep, EmitsOneRowPerCellPlusSummary) {
  const MicroSweepConfig config = small_sweep();
  const util::CsvDocument doc = run_micro_sweep(config, jobs_opts(1));
  // 2 vm_counts x 2 kinds x 2 levels + summary row.
  EXPECT_EQ(doc.row_count(), 9u);
  EXPECT_EQ(doc.at(8, "kind"), -1.0);
  // The summary row merges every cell's sample count.
  double samples = 0.0;
  for (std::size_t r = 0; r < 8; ++r) samples += doc.at(r, "samples");
  EXPECT_EQ(doc.at(8, "samples"), samples);
}

TEST(MicroSweep, BaseSeedChangesTheData) {
  MicroSweepConfig config = small_sweep();
  const std::string a = run_micro_sweep(config, jobs_opts(2)).str();
  config.base_seed = 43;
  EXPECT_NE(a, run_micro_sweep(config, jobs_opts(2)).str());
}

TEST(ModelCache, TrainsOncePerKey) {
  ModelCache cache;
  const util::SimMicros dur = util::seconds(2.0);
  const model::TrainedModels& a =
      cache.get(model::RegressionMethod::kOls, dur, 42, 2);
  const model::TrainedModels& b =
      cache.get(model::RegressionMethod::kOls, dur, 42, 1);
  EXPECT_EQ(&a, &b);  // same immutable entry, jobs does not re-key
  EXPECT_EQ(cache.trainings(), 1u);
  (void)cache.get(model::RegressionMethod::kOls, dur, 43, 2);
  EXPECT_EQ(cache.trainings(), 2u);
}

TEST(ModelCache, TrainingIsJobsInvariant) {
  ModelCache serial_cache;
  ModelCache parallel_cache;
  const util::SimMicros dur = util::seconds(2.0);
  const model::TrainedModels& serial =
      serial_cache.get(model::RegressionMethod::kOls, dur, 42, 1);
  const model::TrainedModels& parallel =
      parallel_cache.get(model::RegressionMethod::kOls, dur, 42, 4);
  ASSERT_EQ(serial.data.size(), parallel.data.size());
  const auto& sr = serial.data.rows();
  const auto& pr = parallel.data.rows();
  for (std::size_t i = 0; i < sr.size(); ++i) {
    EXPECT_EQ(sr[i].pm.cpu, pr[i].pm.cpu);
    EXPECT_EQ(sr[i].dom0_cpu, pr[i].dom0_cpu);
    EXPECT_EQ(sr[i].hyp_cpu, pr[i].hyp_cpu);
  }
}

TEST(ReplicatedScenario, JobsInvariantAndMergedInOrder) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse(
      "[cluster]\nseed = 5\nmachines = 1\n"
      "[vm web]\ncpu = 40\n"
      "[run]\nduration = 3\n");
  const auto serial = scenario::run_scenario_replicated(spec, 4, 1);
  const auto parallel = scenario::run_scenario_replicated(spec, 4, 4);
  ASSERT_EQ(serial.stats.size(), parallel.stats.size());
  for (const auto& [machine, entities] : serial.stats) {
    const auto& other = parallel.stats.at(machine);
    ASSERT_EQ(entities.size(), other.size());
    for (const auto& [key, s] : entities) {
      const auto& o = other.at(key);
      EXPECT_EQ(s.cpu.count(), o.cpu.count());
      EXPECT_EQ(s.cpu.mean(), o.cpu.mean());
      EXPECT_EQ(s.cpu.variance(), o.cpu.variance());
      EXPECT_EQ(s.bw.mean(), o.bw.mean());
    }
  }
  EXPECT_EQ(serial.replications, 4u);
  EXPECT_FALSE(serial.summary().empty());
}

TEST(ReplicatedScenario, ReplicationsDifferFromEachOther) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse(
      "[cluster]\nseed = 5\nmachines = 1\n"
      "[vm web]\ncpu = 40\nio = 20\n"
      "[run]\nduration = 5\n");
  // With per-replication seeds the aggregate spread over replications
  // must exceed a single run's spread of zero-mean difference: just
  // assert the two single-replication aggregates differ.
  scenario::ScenarioSpec a = spec;
  a.seed = util::seed_for(spec.seed, 0);
  scenario::ScenarioSpec b = spec;
  b.seed = util::seed_for(spec.seed, 1);
  const auto ra = scenario::run_scenario(a);
  const auto rb = scenario::run_scenario(b);
  const auto& sa = ra.reports.at(0).series("web");
  const auto& sb = rb.reports.at(0).series("web");
  EXPECT_NE(sa.io.stats().mean(), sb.io.stats().mean());
}

}  // namespace
}  // namespace voprof::runner
