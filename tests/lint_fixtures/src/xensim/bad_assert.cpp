// Fixture: naked assert() in engine code (naked-assert, twice: the
// include and the call site).
#include <cassert>

namespace voprof::sim {

double checked_ratio(double num, double den) {
  assert(den != 0.0);
  return num / den;
}

}  // namespace voprof::sim
