// Fixture: library code writing to stdout (cout-in-library).
#include <iostream>

namespace voprof::model {

void debug_dump(double r_squared) {
  std::cout << "r^2 = " << r_squared << "\n";
}

}  // namespace voprof::model
