// Fixture: raw std::thread construction outside util/task_pool must
// fire raw-thread (parallelism goes through voprof::util::TaskPool).
#include <thread>

namespace voprof::model {

void spawn_worker() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace voprof::model
