// Fixture: direct steady_clock read in library code (raw-steady-clock).
#include <chrono>

long long bad_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
