// Fixture: model code computing in single precision (float-in-model).
namespace voprof::model {

float lossy_mean(const float* values, int n) {
  float sum = 0.0F;
  for (int i = 0; i < n; ++i) sum += values[i];
  return sum / static_cast<float>(n);
}

}  // namespace voprof::model
