// Fixture: everything here is a near-miss that must NOT fire.
//   - "float" and rand() only in comments, strings and raw strings
//   - static_assert and my_assert() are not assert()
//   - rng.rand() style member calls are not libc rand()
//   - std::thread::hardware_concurrency is a static query, not a spawn
#include <string>
#include <thread>

namespace voprof::model {

static_assert(sizeof(double) == 8, "doubles are 64-bit");

struct FakeRng {
  // A member named rand is allowed; only the libc function is banned.
  [[nodiscard]] int rand_like() const { return 4; }
};

inline void my_assert(bool) {}

std::string describe() {
  FakeRng rng;
  (void)rng.rand_like();
  my_assert(true);
  // float would be wrong here; rand() too. So would std::thread t;.
  std::string s = "uses float and rand() and assert( in a string";
  s += R"(raw string with float, rand() and std::thread inside)";
  s += std::to_string(std::thread::hardware_concurrency());
  return s;
}

}  // namespace voprof::model
