// Fixture: libc randomness instead of voprof::util::Rng (raw-rand,
// twice: srand and rand).
#include <cstdlib>

namespace voprof::util {

int roll_die() {
  std::srand(42U);
  return std::rand() % 6 + 1;
}

}  // namespace voprof::util
