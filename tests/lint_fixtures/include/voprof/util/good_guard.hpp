#ifndef VOPROF_TESTS_LINT_FIXTURES_GOOD_GUARD_HPP
#define VOPROF_TESTS_LINT_FIXTURES_GOOD_GUARD_HPP
// Fixture: a classic #ifndef include guard is accepted in place of
// '#pragma once'.

namespace voprof::util {

struct Guarded {
  double value = 0.0;
};

}  // namespace voprof::util

#endif  // VOPROF_TESTS_LINT_FIXTURES_GOOD_GUARD_HPP
