// Fixture: header without '#pragma once' or an include guard
// (header-guard).

namespace voprof::model {

struct Unguarded {
  double value = 0.0;
};

}  // namespace voprof::model
