/// The shared voprofctl/voprofd flag table: uniform spellings,
/// deprecated-alias rewriting with warnings, and strict rejection of
/// unknown flags and stray positionals.

#include "ctl_flags.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace voprof::tools {
namespace {

TEST(CtlFlags, EveryCommandAcceptsItsCanonicalFlags) {
  // The cross-cutting flags keep one spelling wherever they appear.
  for (const std::string cmd : {"train", "export-trace", "simulate"}) {
    const auto& flags = command_flags(cmd);
    const auto has = [&flags](const std::string& name) {
      for (const FlagSpec& f : flags) {
        if (f.name == name) return true;
      }
      return false;
    };
    EXPECT_TRUE(has("jobs")) << cmd;
    EXPECT_TRUE(has("seed")) << cmd;
    EXPECT_TRUE(has("trace-out")) << cmd;
  }
  EXPECT_TRUE(command_flags("unknown-command").empty());
}

TEST(CtlFlags, ParsesKnownFlagsIntoCliArgs) {
  const auto parsed =
      parse_flags("simulate", {"--scenario", "s.conf", "--replications", "5",
                               "--jobs", "3", "--format", "json"});
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().warnings.empty());
  EXPECT_EQ(parsed.value().args.get("scenario"), "s.conf");
  EXPECT_EQ(parsed.value().args.get_int("replications", 0), 5);
  EXPECT_EQ(parsed.value().args.get_int("jobs", 0), 3);
  EXPECT_EQ(parsed.value().args.get_or("format", "table"), "json");
}

TEST(CtlFlags, DeprecatedSpellingsAreRewrittenWithAWarning) {
  const auto simulate =
      parse_flags("simulate", {"--scenario", "s.conf", "--csv", "out.csv"});
  ASSERT_TRUE(simulate.ok());
  EXPECT_FALSE(simulate.value().args.has("csv"));
  EXPECT_EQ(simulate.value().args.get("series-out"), "out.csv");
  ASSERT_EQ(simulate.value().warnings.size(), 1u);
  EXPECT_EQ(simulate.value().warnings[0],
            "--csv is deprecated; use --series-out");

  const auto fit =
      parse_flags("fit", {"--trace", "data.csv", "--out", "m.txt"});
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit.value().args.get("observations"), "data.csv");
  ASSERT_EQ(fit.value().warnings.size(), 1u);
  EXPECT_EQ(fit.value().warnings[0],
            "--trace is deprecated; use --observations");
}

TEST(CtlFlags, AliasesAreScopedToTheirCommand) {
  // `simulate` has no --trace alias: there it is simply unknown.
  const auto parsed =
      parse_flags("simulate", {"--scenario", "s.conf", "--trace", "x"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::Errc::kValidation);
}

TEST(CtlFlags, UnknownFlagsAreRejectedWithTheValidList) {
  const auto parsed = parse_flags("predict", {"--models", "m.txt", "--vcpus",
                                              "4"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("--vcpus"), std::string::npos);
  EXPECT_NE(parsed.error().message.find("--models"), std::string::npos);
}

TEST(CtlFlags, UnknownCommandsListTheKnownOnes) {
  const auto parsed = parse_flags("trainx", {});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("train"), std::string::npos);
  const std::vector<std::string> commands = known_commands();
  EXPECT_NE(std::find(commands.begin(), commands.end(), "serve"),
            commands.end());
  EXPECT_NE(std::find(commands.begin(), commands.end(), "request"),
            commands.end());
}

TEST(CtlFlags, PositionalArgumentsAreRejected) {
  const auto parsed = parse_flags("train", {"extra", "--out", "m.txt"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("extra"), std::string::npos);
}

TEST(CtlFlags, BooleanSwitchesTakeNoValue) {
  const auto parsed = parse_flags(
      "serve", {"--socket", "/tmp/s.sock", "--enable-test-ops"});
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().args.get_bool("enable-test-ops"));
  EXPECT_EQ(parsed.value().args.get("socket"), "/tmp/s.sock");
}

TEST(CtlFlags, ArgvEntryPointSkipsTheCommandWords) {
  const char* argv[] = {"voprofctl", "predict", "--models", "m.txt"};
  const auto parsed = parse_flags_argv("predict", 4, argv, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().args.get("models"), "m.txt");
}

TEST(CtlFlags, MissingFlagValueIsAValidationError) {
  const auto parsed = parse_flags("train", {"--out"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::Errc::kValidation);
}

}  // namespace
}  // namespace voprof::tools
