#include <gtest/gtest.h>

#include <memory>

#include "voprof/rubis/deployment.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::rubis {
namespace {

using util::seconds;

struct Testbed {
  sim::Engine engine;
  std::unique_ptr<sim::Cluster> cluster;

  explicit Testbed(std::uint64_t seed = 33) {
    cluster = std::make_unique<sim::Cluster>(engine, sim::CostModel{}, seed);
    cluster->add_machine(sim::MachineSpec{});  // PM1 web
    cluster->add_machine(sim::MachineSpec{});  // PM2 db
    cluster->add_machine(sim::MachineSpec{});  // client machine
  }

  RubisInstance deploy(int clients) {
    DeployOptions opt;
    opt.clients = clients;
    return deploy_rubis(*cluster, 0, 1, 2, opt);
  }
};

TEST(RubisDeployment, CreatesVmsAndProcesses) {
  Testbed t;
  const RubisInstance inst = t.deploy(300);
  EXPECT_NE(t.cluster->machine(0).find_vm(inst.web_vm), nullptr);
  EXPECT_NE(t.cluster->machine(1).find_vm(inst.db_vm), nullptr);
  EXPECT_NE(t.cluster->machine(2).find_vm(inst.client_vm), nullptr);
  EXPECT_NE(inst.web, nullptr);
  EXPECT_NE(inst.db, nullptr);
  EXPECT_NE(inst.client, nullptr);
}

TEST(RubisDeployment, WireRejectsMissingVms) {
  Testbed t;
  DeployOptions opt;
  EXPECT_THROW((void)wire_rubis(*t.cluster, 0, 1, "nope", "alsono", 2, opt),
               util::ContractViolation);
}

TEST(RubisClosedLoop, ServesRequestsAtExpectedRate) {
  Testbed t;
  const RubisInstance inst = t.deploy(500);
  t.engine.run_for(seconds(20));  // warmup
  const double mark = inst.client->completed();
  t.engine.run_for(seconds(40));
  const double tput = (inst.client->completed() - mark) / 40.0;
  // 500 clients with 5 s think time -> ~100 req/s in closed loop
  // (slightly lower due to response latency).
  EXPECT_GT(tput, 80.0);
  EXPECT_LT(tput, 110.0);
}

TEST(RubisClosedLoop, ThroughputScalesWithClients) {
  double tputs[2] = {0, 0};
  const int client_counts[2] = {300, 700};
  for (int i = 0; i < 2; ++i) {
    Testbed t(static_cast<std::uint64_t>(40 + i));
    const RubisInstance inst = t.deploy(client_counts[i]);
    t.engine.run_for(seconds(20));
    const double mark = inst.client->completed();
    t.engine.run_for(seconds(30));
    tputs[i] = (inst.client->completed() - mark) / 30.0;
  }
  EXPECT_GT(tputs[1], 1.5 * tputs[0]);  // more clients, more load
}

TEST(RubisClosedLoop, PopulationIsConserved) {
  Testbed t;
  const RubisInstance inst = t.deploy(400);
  t.engine.run_for(seconds(30));
  // Closed loop: every client is either thinking or has a request in
  // flight. Fluid-model noise makes this approximate, not exact.
  const double population =
      inst.client->thinking() + inst.client->in_flight();
  EXPECT_NEAR(population, 400.0, 20.0);
  EXPECT_GT(inst.client->in_flight(), 0.0);
  EXPECT_LT(inst.client->in_flight(), 400.0);
}

TEST(RubisClosedLoop, WebVmUtilizationInExpectedBand) {
  Testbed t;
  const RubisInstance inst = t.deploy(500);
  const auto before = t.cluster->machine(0).snapshot(t.engine.now());
  t.engine.run_for(seconds(30));
  const auto after = t.cluster->machine(0).snapshot(t.engine.now());
  const double cpu =
      (after.guest(inst.web_vm).counters.cpu_core_seconds -
       before.guest(inst.web_vm).counters.cpu_core_seconds) / 30.0 * 100.0;
  // ~100 req/s x 7 ms -> ~70 %.
  EXPECT_GT(cpu, 50.0);
  EXPECT_LT(cpu, 90.0);
}

TEST(RubisClosedLoop, DbSeesOnlyItsShare) {
  Testbed t;
  const RubisInstance inst = t.deploy(500);
  t.engine.run_for(seconds(20));
  const double web_served = inst.web->total_served();
  const double db_served = inst.db->total_served();
  ASSERT_GT(web_served, 0.0);
  // db_fraction = 0.85 of requests reach the DB.
  EXPECT_NEAR(db_served / web_served, 0.85, 0.06);
}

TEST(RubisClosedLoop, StarvationDropsThroughput) {
  // Co-locate the web VM with three CPU hogs on its PM: the guest pool
  // contention must cut RUBiS throughput (the Fig. 10 mechanism).
  double tput_free = 0.0, tput_starved = 0.0;
  for (int starved = 0; starved < 2; ++starved) {
    Testbed t(static_cast<std::uint64_t>(50 + starved));
    if (starved) {
      for (int i = 0; i < 3; ++i) {
        sim::VmSpec spec;
        spec.name = "hog" + std::to_string(i);
        t.cluster->machine(0).add_vm(spec).attach(
            std::make_unique<wl::CpuHog>(90.0, 60 + static_cast<std::uint64_t>(i)));
      }
    }
    const RubisInstance inst = t.deploy(500);
    t.engine.run_for(seconds(20));
    const double mark = inst.client->completed();
    t.engine.run_for(seconds(30));
    const double tput = (inst.client->completed() - mark) / 30.0;
    (starved ? tput_starved : tput_free) = tput;
  }
  EXPECT_LT(tput_starved, 0.75 * tput_free);
}

TEST(RubisClient, SetClientsAdjustsLoad) {
  Testbed t;
  const RubisInstance inst = t.deploy(300);
  t.engine.run_for(seconds(10));
  inst.client->set_clients(700);
  EXPECT_EQ(inst.client->clients(), 700);
  const double mark = inst.client->completed();
  t.engine.run_for(seconds(20));
  const double tput = (inst.client->completed() - mark) / 20.0;
  EXPECT_GT(tput, 100.0);  // ramped up
}

TEST(RubisClient, RejectsNegativeClients) {
  EXPECT_THROW(ClientEmulator(RubisCosts{}, sim::NetTarget{}, -1),
               util::ContractViolation);
}

TEST(RubisCostsContract, BadCostsRejected) {
  RubisCosts c;
  c.web_cpu_ms_per_req = 0.0;
  EXPECT_THROW(WebTier(c, sim::NetTarget{}, sim::NetTarget{}),
               util::ContractViolation);
  RubisCosts c2;
  c2.db_fraction = 1.5;
  EXPECT_THROW(WebTier(c2, sim::NetTarget{}, sim::NetTarget{}),
               util::ContractViolation);
  RubisCosts c3;
  c3.think_time_s = 0.0;
  EXPECT_THROW(ClientEmulator(c3, sim::NetTarget{}, 10),
               util::ContractViolation);
}

TEST(RubisMultiInstance, ThreePairsCoexist) {
  // Sec. VI-A runs three RUBiS sets: three web VMs on PM1, three DB
  // VMs on PM2.
  Testbed t;
  std::vector<RubisInstance> insts;
  for (int i = 0; i < 3; ++i) {
    DeployOptions opt;
    opt.clients = 300;
    opt.suffix = std::to_string(i + 1);
    opt.seed = 70 + static_cast<std::uint64_t>(i) * 10;
    insts.push_back(deploy_rubis(*t.cluster, 0, 1, 2, opt));
  }
  t.engine.run_for(seconds(30));
  for (const auto& inst : insts) {
    EXPECT_GT(inst.client->completed(), 100.0);
  }
  EXPECT_EQ(t.cluster->machine(0).vm_count(), 3u);
  EXPECT_EQ(t.cluster->machine(1).vm_count(), 3u);
}

}  // namespace
}  // namespace voprof::rubis
