#include "voprof/xensim/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/sample.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::sim {
namespace {

using util::milliseconds;
using util::seconds;

OutboundFlow flow(int pm, const std::string& vm, double kbits, int tag = 0) {
  return OutboundFlow{NetTarget{pm, vm}, kbits, tag};
}

TEST(Fabric, DeliversAfterLatency) {
  NetworkFabric fabric(FabricSpec{1e6, milliseconds(5)});
  fabric.submit(flow(1, "vm", 10.0), 0, 0);
  // Before the latency elapses: nothing.
  EXPECT_TRUE(fabric.advance(milliseconds(4), 0.01).empty());
  const auto due = fabric.advance(milliseconds(5), 0.01);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].to_pm, 1);
  EXPECT_EQ(due[0].vm_name, "vm");
  EXPECT_DOUBLE_EQ(due[0].kbits, 10.0);
}

TEST(Fabric, CapacityLimitsPerTickDelivery) {
  NetworkFabric fabric(FabricSpec{1000.0, 0});  // 1000 Kb/s
  fabric.submit(flow(1, "vm", 100.0), 0, 0);
  // One 10 ms tick carries at most 10 Kb.
  const auto first = fabric.advance(milliseconds(10), 0.01);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NEAR(first[0].kbits, 10.0, 1e-9);
  EXPECT_NEAR(fabric.backlog_kbits(), 90.0, 1e-9);
  // The backlog drains over subsequent ticks — no loss.
  double delivered = first[0].kbits;
  for (int t = 2; t <= 12; ++t) {
    for (const auto& d : fabric.advance(milliseconds(10 * t), 0.01)) {
      delivered += d.kbits;
    }
  }
  EXPECT_NEAR(delivered, 100.0, 1e-6);
  EXPECT_NEAR(fabric.backlog_kbits(), 0.0, 1e-6);
}

TEST(Fabric, FifoOrderPreserved) {
  NetworkFabric fabric(FabricSpec{1e6, 0});
  fabric.submit(flow(1, "a", 5.0, 1), 0, 0);
  fabric.submit(flow(1, "b", 5.0, 2), 0, 0);
  const auto due = fabric.advance(milliseconds(10), 0.01);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].vm_name, "a");
  EXPECT_EQ(due[1].vm_name, "b");
}

TEST(Fabric, MergesSplitChunksOfOneFlow) {
  NetworkFabric fabric(FabricSpec{1000.0, 0});
  fabric.submit(flow(1, "vm", 15.0), 0, 0);
  const auto first = fabric.advance(milliseconds(10), 0.01);   // 10 Kb
  const auto second = fabric.advance(milliseconds(20), 0.01);  // 5 Kb
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NEAR(first[0].kbits + second[0].kbits, 15.0, 1e-9);
}

TEST(Fabric, CountsSwitchedTraffic) {
  NetworkFabric fabric;
  fabric.submit(flow(1, "vm", 42.0), 0, 0);
  (void)fabric.advance(seconds(1), 0.01);
  EXPECT_NEAR(fabric.switched_kbits(), 42.0, 1e-9);
}

TEST(Fabric, RejectsBadInput) {
  EXPECT_THROW(NetworkFabric(FabricSpec{0.0, 0}), util::ContractViolation);
  EXPECT_THROW(NetworkFabric(FabricSpec{1.0, -1}), util::ContractViolation);
  NetworkFabric fabric;
  EXPECT_THROW(fabric.submit(OutboundFlow{NetTarget{}, 1.0, 0}, 0, 0),
               util::ContractViolation);  // external flow
  EXPECT_THROW((void)fabric.advance(0, 0.0), util::ContractViolation);
}

// --------------------------------------------- cluster-level behaviour
TEST(FabricInCluster, EndToEndThroughputUnaffectedAtPaperScale) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 5);
  PhysicalMachine& pm0 = cluster.add_machine(MachineSpec{});
  PhysicalMachine& pm1 = cluster.add_machine(MachineSpec{});
  VmSpec s1;
  s1.name = "tx";
  pm0.add_vm(s1).attach(
      std::make_unique<wl::NetPing>(1280.0, NetTarget{1, "rx"}, 3));
  VmSpec s2;
  s2.name = "rx";
  pm1.add_vm(s2);
  const auto before = pm1.snapshot(engine.now());
  engine.run_for(seconds(10));
  const auto after = pm1.snapshot(engine.now());
  const double rx = mon::domain_util(before.guest("rx").counters,
                                     after.guest("rx").counters, 10)
                        .bw_kbps;
  EXPECT_NEAR(rx, 1280.0, 40.0);
  EXPECT_LT(cluster.fabric().backlog_kbits(), 30.0);
}

TEST(FabricInCluster, ThinFabricThrottlesCrossTraffic) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 7, FabricSpec{500.0, 0});  // 0.5 Mb/s
  PhysicalMachine& pm0 = cluster.add_machine(MachineSpec{});
  PhysicalMachine& pm1 = cluster.add_machine(MachineSpec{});
  VmSpec s1;
  s1.name = "tx";
  pm0.add_vm(s1).attach(
      std::make_unique<wl::NetPing>(1280.0, NetTarget{1, "rx"}, 3));
  VmSpec s2;
  s2.name = "rx";
  pm1.add_vm(s2);
  const auto before = pm1.snapshot(engine.now());
  engine.run_for(seconds(10));
  const auto after = pm1.snapshot(engine.now());
  const double rx = mon::domain_util(before.guest("rx").counters,
                                     after.guest("rx").counters, 10)
                        .bw_kbps;
  EXPECT_NEAR(rx, 500.0, 25.0);  // fabric-limited
  EXPECT_GT(cluster.fabric().backlog_kbits(), 1000.0);  // queue builds
}

}  // namespace
}  // namespace voprof::sim
