/// Serving-layer tests: the voprof-api-1 envelope, the bounded-queue
/// Service (saturation, deadlines, drain) and the socket daemon.
/// Labelled `concurrency` so the TSan CI job runs the whole file.

#include "voprof/serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "voprof/obs/trace.hpp"
#include "voprof/runner/runner.hpp"
#include "voprof/serve/api.hpp"
#include "voprof/serve/daemon.hpp"
#include "voprof/serve/socket.hpp"
#include "voprof/util/json.hpp"
#include "voprof/util/task_pool.hpp"
#include "voprof/util/units.hpp"

namespace voprof::serve {
namespace {

// ------------------------------------------------------------ envelope
TEST(Api, ParsesMinimalAndFullEnvelopes) {
  const auto minimal = parse_request(R"({"op":"status"})");
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal.value().op, Op::kStatus);
  EXPECT_EQ(minimal.value().id, "");
  EXPECT_EQ(minimal.value().deadline_ms, 0);

  const auto full = parse_request(
      R"({"api":"voprof-api-1","id":"r1","op":"predict",)"
      R"("deadline_ms":2500,"params":{"cpu":10}})");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().op, Op::kPredict);
  EXPECT_EQ(full.value().id, "r1");
  EXPECT_EQ(full.value().deadline_ms, 2500);
  ASSERT_NE(full.value().params.find("cpu"), nullptr);
}

TEST(Api, RejectsMalformedAndInvalidRequests) {
  EXPECT_EQ(parse_request("{not json").error().code, util::Errc::kParse);
  // Well-formed JSON violating the schema is kValidation.
  EXPECT_EQ(parse_request(R"({"op":"nope"})").error().code,
            util::Errc::kValidation);
  EXPECT_EQ(parse_request(R"({"op":"status","api":"voprof-api-0"})")
                .error()
                .code,
            util::Errc::kValidation);
  EXPECT_FALSE(parse_request(R"({"id":"x"})").ok());  // op missing
  EXPECT_FALSE(parse_request(R"({"op":"status","bogus":1})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"status","deadline_ms":-5})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"status","params":[1]})").ok());
  EXPECT_FALSE(parse_request(R"([1,2])").ok());
}

TEST(Api, ResponsesCarryVersionIdAndShape) {
  util::Json result = util::Json::object();
  result.set("x", 1.0);
  const util::Json ok = util::Json::parse(ok_response("r7", std::move(result)));
  EXPECT_EQ(ok.at("api").as_string(), kApiVersion);
  EXPECT_EQ(ok.at("id").as_string(), "r7");
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(ok.at("result").at("x").as_number(), 1.0);

  const util::Json err = util::Json::parse(
      error_response("r8", ApiError::kOverloaded, "queue full"));
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(err.at("error").at("message").as_string(), "queue full");
}

TEST(Api, OpNamesRoundTrip) {
  for (const Op op : {Op::kPredict, Op::kSimulate, Op::kTrain, Op::kStatus,
                      Op::kDrain, Op::kSleep}) {
    const auto back = op_from_name(op_name(op));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), op);
  }
  EXPECT_FALSE(op_from_name("retrain").ok());
}

// ------------------------------------------------------------- service
ServiceConfig test_config() {
  ServiceConfig config;
  config.jobs = 1;
  config.queue_capacity = 2;
  config.enable_test_ops = true;
  // Short but viable cells: the fitter needs at least one 1 s sample
  // per sweep cell to assemble enough observations.
  config.train_duration_s = 1.0;
  return config;
}

/// Thread-safe response sink for fire-and-forget submissions.
struct Sink {
  std::mutex mutex;
  std::vector<std::string> lines;
  Service::Responder responder() {
    return [this](std::string line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(std::move(line));
    };
  }
  std::vector<std::string> take() {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
};

std::string error_code_of(const std::string& line) {
  const util::Json doc = util::Json::parse(line);
  if (doc.at("ok").as_bool()) return "";
  return doc.at("error").at("code").as_string();
}

TEST(Service, SaturationGetsStructuredOverloadedNotBlocking) {
  Service service(test_config());  // 1 worker, 2 admission slots
  Sink sink;
  // Two long sleeps fill the queue (one running, one queued)...
  service.submit_line(R"({"op":"sleep","params":{"ms":300}})",
                      sink.responder());
  service.submit_line(R"({"op":"sleep","params":{"ms":300}})",
                      sink.responder());
  // ...so further submissions are rejected immediately, on this thread,
  // with the structured `overloaded` error.
  const std::int64_t t0 = obs::monotonic_us();
  std::vector<std::string> rejected;
  for (int i = 0; i < 4; ++i) {
    service.submit_line(R"({"op":"sleep","params":{"ms":1}})",
                        [&rejected](std::string line) {
                          rejected.push_back(std::move(line));
                        });
  }
  const std::int64_t reject_us = obs::monotonic_us() - t0;
  ASSERT_EQ(rejected.size(), 4u);
  for (const std::string& line : rejected) {
    EXPECT_EQ(error_code_of(line), "overloaded");
  }
  // "never blocks": 4 rejections must not take anywhere near one sleep.
  EXPECT_LT(reject_us, 250000);

  // Control ops bypass the queue and still answer while saturated.
  const util::Json status =
      util::Json::parse(service.handle_line(R"({"op":"status"})"));
  ASSERT_TRUE(status.at("ok").as_bool());
  EXPECT_EQ(status.at("result").at("rejected_overloaded").as_number(), 4.0);

  service.begin_drain();
  service.wait_idle();
  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected_overloaded, 4u);
  EXPECT_EQ(sink.take().size(), 2u);
}

TEST(Service, DeadlineExpiryMidRequestIsTimedOut) {
  Service service(test_config());
  const std::string response = service.handle_line(
      R"({"op":"sleep","deadline_ms":40,"params":{"ms":5000}})");
  EXPECT_EQ(error_code_of(response), "timed_out");
  EXPECT_EQ(service.stats().timed_out, 1u);
}

TEST(Service, DeadlineExpiryWhileQueuedIsTimedOut) {
  Service service(test_config());  // 1 worker
  Sink sink;
  // Occupy the single worker long enough for the next request's tiny
  // deadline to lapse before it is picked up.
  service.submit_line(R"({"op":"sleep","params":{"ms":250}})",
                      sink.responder());
  const std::string response = service.handle_line(
      R"({"op":"sleep","deadline_ms":20,"params":{"ms":1}})");
  EXPECT_EQ(error_code_of(response), "timed_out");
  service.begin_drain();
  service.wait_idle();
}

TEST(Service, DrainRejectsNewWorkAndCompletesAdmitted) {
  ServiceConfig config = test_config();
  config.jobs = 2;
  config.queue_capacity = 8;
  Service service(config);
  Sink sink;
  for (int i = 0; i < 4; ++i) {
    service.submit_line(R"({"op":"sleep","params":{"ms":80}})",
                        sink.responder());
  }
  service.begin_drain();
  const std::string rejected =
      service.handle_line(R"({"op":"sleep","params":{"ms":1}})");
  EXPECT_EQ(error_code_of(rejected), "shutting_down");

  // wait_idle returning guarantees every admitted response was already
  // delivered to its responder (delivery happens-before the in-flight
  // decrement).
  service.wait_idle();
  EXPECT_EQ(sink.take().size(), 4u);
  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected_shutting_down, 1u);
}

TEST(Service, DrainOpDrainsViaTheWire) {
  Service service(test_config());
  const util::Json drain =
      util::Json::parse(service.handle_line(R"({"op":"drain","id":"d"})"));
  ASSERT_TRUE(drain.at("ok").as_bool());
  EXPECT_TRUE(drain.at("result").at("draining").as_bool());
  EXPECT_EQ(error_code_of(service.handle_line(R"({"op":"status","id":"s",)"
                                              R"("params":{}})")),
            "");  // control ops still answered while draining
  EXPECT_EQ(error_code_of(
                service.handle_line(R"({"op":"sleep","params":{"ms":1}})")),
            "shutting_down");
}

TEST(Service, BadParamsAreBadRequests) {
  Service service(test_config());
  EXPECT_EQ(error_code_of(service.handle_line(
                R"({"op":"predict","params":{"cpu":"lots"}})")),
            "bad_request");
  EXPECT_EQ(error_code_of(service.handle_line(
                R"({"op":"predict","params":{"vcpus":4}})")),
            "bad_request");
  EXPECT_EQ(error_code_of(service.handle_line(
                R"({"op":"simulate","params":{"scenario":"[broken"}})")),
            "bad_request");
  EXPECT_EQ(error_code_of(service.handle_line(R"({"op":"simulate",)"
                                              R"("params":{}})")),
            "bad_request");  // scenario text is required
  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.failed, 4u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(Service, SleepOpIsGatedBehindTestOps) {
  ServiceConfig config = test_config();
  config.enable_test_ops = false;
  Service service(config);
  EXPECT_EQ(error_code_of(
                service.handle_line(R"({"op":"sleep","params":{"ms":1}})")),
            "bad_request");
}

// The acceptance bar of the PR: predictions served concurrently through
// the service are byte-identical to the library path, whatever --jobs.
TEST(Service, ConcurrentPredictionsMatchLibraryByteForByte) {
  ServiceConfig config = test_config();
  config.jobs = 3;
  config.queue_capacity = 16;
  Service service(config);

  const std::string request =
      R"({"op":"predict","id":"p","params":)"
      R"({"cpu":40,"mem":512,"io":100,"bw":2000,"vms":2}})";
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  util::TaskPool clients(kClients, util::TaskPool::Threading::kAlwaysThreaded);
  clients.parallel_for_each(kClients, [&service, &request,
                                       &responses](std::size_t i) {
    responses[i] = service.handle_line(request);
  });

  // The library-side answer, computed through the same process-wide
  // cache with the same training key the service uses.
  const model::TrainedModels& models = runner::model_cache().get(
      model::RegressionMethod::kLms, util::seconds(config.train_duration_s),
      config.default_seed, config.inner_jobs);
  const std::string expected = ok_response(
      "p", predict_result_json(models, model::UtilVec{40, 512, 100, 2000}, 2));
  for (const std::string& line : responses) {
    EXPECT_EQ(line, expected);
  }
}

// -------------------------------------------------------------- daemon
TEST(Daemon, SocketRoundTripDrainAndMalformedLine) {
  DaemonConfig config;
  config.socket_path = ::testing::TempDir() + "voprofd_test.sock";
  config.install_signal_handlers = false;  // in-process: no global traps
  config.service = test_config();

  Daemon daemon(config);
  util::TaskPool runner_thread(1, util::TaskPool::Threading::kAlwaysThreaded);
  std::future<bool> outcome = runner_thread.submit([&daemon]() {
    const util::Result<bool> result = daemon.run();
    return result.ok();
  });

  // The daemon unlinks stale sockets itself; connect with retries while
  // the listener comes up.
  util::Result<LineClient> client = LineClient::connect(config.socket_path);
  for (int i = 0; i < 200 && !client.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    client = LineClient::connect(config.socket_path);
  }
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  const auto status =
      client.value().roundtrip(R"({"op":"status","id":"s1"})", 5000);
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  const util::Json doc = util::Json::parse(status.value());
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("id").as_string(), "s1");

  const auto bad = client.value().roundtrip("{not json", 5000);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(error_code_of(bad.value()), "bad_request");

  const auto sleep_resp = client.value().roundtrip(
      R"({"op":"sleep","id":"z","params":{"ms":30}})", 5000);
  ASSERT_TRUE(sleep_resp.ok());
  EXPECT_EQ(error_code_of(sleep_resp.value()), "");

  // Drain over the wire: the daemon answers, finishes and exits run().
  const auto drain = client.value().roundtrip(R"({"op":"drain"})", 5000);
  ASSERT_TRUE(drain.ok());
  EXPECT_TRUE(outcome.get());
  EXPECT_FALSE(daemon.running());
}

TEST(Daemon, RequestStopDrainsWithWorkInFlight) {
  DaemonConfig config;
  config.socket_path = ::testing::TempDir() + "voprofd_test2.sock";
  config.install_signal_handlers = false;
  config.service = test_config();
  config.service.jobs = 2;
  config.service.queue_capacity = 8;

  Daemon daemon(config);
  util::TaskPool runner_thread(1, util::TaskPool::Threading::kAlwaysThreaded);
  std::future<bool> outcome = runner_thread.submit([&daemon]() {
    const util::Result<bool> result = daemon.run();
    return result.ok();
  });

  util::Result<LineClient> client = LineClient::connect(config.socket_path);
  for (int i = 0; i < 200 && !client.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    client = LineClient::connect(config.socket_path);
  }
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  // Pipeline three requests, then stop the daemon while they run. All
  // admitted work must still be answered (request_stop == SIGTERM path).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.value()
                    .send_line(R"({"op":"sleep","id":"w","params":{"ms":60}})")
                    .ok());
  }
  // Lines on one connection are admitted in arrival order, so once the
  // pipelined status answer is back the three sleeps are in flight —
  // only then is stopping a test of drain rather than of unread bytes.
  ASSERT_TRUE(client.value().send_line(R"({"op":"status","id":"s"})").ok());
  int sleeps_answered = 0;
  bool status_seen = false;
  while (!status_seen) {
    const auto response = client.value().recv_line(5000);
    ASSERT_TRUE(response.ok()) << response.error().to_string();
    const util::Json doc = util::Json::parse(response.value());
    ASSERT_TRUE(doc.at("ok").as_bool());
    if (doc.at("id").as_string() == "s") {
      status_seen = true;
    } else {
      ++sleeps_answered;  // a sleep that finished before the status
    }
  }
  daemon.request_stop();
  while (sleeps_answered < 3) {
    const auto response = client.value().recv_line(5000);
    ASSERT_TRUE(response.ok()) << response.error().to_string();
    EXPECT_EQ(error_code_of(response.value()), "");
    ++sleeps_answered;
  }
  EXPECT_TRUE(outcome.get());
  const Service::Stats stats = daemon.service().stats();
  EXPECT_EQ(stats.completed, 3u);
}

TEST(Daemon, RefusesToClobberARegularFile) {
  const std::string path = ::testing::TempDir() + "voprofd_notasock";
  {
    std::ofstream out(path);
    out << "precious data\n";
  }
  DaemonConfig config;
  config.socket_path = path;
  config.install_signal_handlers = false;
  Daemon daemon(config);
  const util::Result<bool> outcome = daemon.run();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, util::Errc::kIo);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "precious data");  // untouched
}

}  // namespace
}  // namespace voprof::serve
