#include "voprof/workloads/trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::wl {
namespace {

using util::seconds;

std::vector<TracePoint> step_trace() {
  // 10 s at 20 % CPU, then 10 s at 80 % with some I/O and traffic.
  TracePoint a;
  a.duration_s = 10.0;
  a.cpu_pct = 20.0;
  TracePoint b;
  b.duration_s = 10.0;
  b.cpu_pct = 80.0;
  b.io_blocks_per_s = 40.0;
  b.bw_kbps = 640.0;
  return {a, b};
}

TEST(TraceWorkload, IndexFollowsTimeline) {
  const TraceWorkload w(step_trace(), sim::NetTarget{}, /*loop=*/true);
  EXPECT_EQ(w.index_at(seconds(0.0)), 0u);
  EXPECT_EQ(w.index_at(seconds(9.9)), 0u);
  EXPECT_EQ(w.index_at(seconds(10.5)), 1u);
  EXPECT_EQ(w.index_at(seconds(19.9)), 1u);
  EXPECT_EQ(w.index_at(seconds(20.5)), 0u);  // wrapped
}

TEST(TraceWorkload, NonLoopingHoldsLastPoint) {
  const TraceWorkload w(step_trace(), sim::NetTarget{}, /*loop=*/false);
  EXPECT_EQ(w.index_at(seconds(25.0)), 1u);
  EXPECT_EQ(w.index_at(seconds(1000.0)), 1u);
}

TEST(TraceWorkload, DemandMatchesActivePoint) {
  TraceWorkload w(step_trace(), sim::NetTarget{}, true);
  const sim::ProcessDemand early = w.demand(seconds(5.0), 0.01);
  EXPECT_DOUBLE_EQ(early.cpu_pct, 20.0);
  EXPECT_DOUBLE_EQ(early.io_blocks, 0.0);
  EXPECT_TRUE(early.flows.empty());
  const sim::ProcessDemand late = w.demand(seconds(15.0), 0.01);
  EXPECT_DOUBLE_EQ(late.cpu_pct, 80.0);
  EXPECT_NEAR(late.io_blocks, 0.4, 1e-12);
  ASSERT_EQ(late.flows.size(), 1u);
  EXPECT_NEAR(late.flows[0].kbits, 6.4, 1e-12);
}

TEST(TraceWorkload, ReplayedTraceShowsUpInMeasurement) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 55);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(
      std::make_unique<TraceWorkload>(step_trace(), sim::NetTarget{}, true));
  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& report = mon.measure(seconds(20.0));
  const mon::SeriesSet& s = report.series("vm1");
  EXPECT_NEAR(s.cpu.mean_between(seconds(2), seconds(10)), 20.0, 1.5);
  EXPECT_NEAR(s.cpu.mean_between(seconds(12), seconds(20)), 80.0, 2.5);
  EXPECT_NEAR(s.io.mean_between(seconds(12), seconds(20)), 40.0, 3.0);
}

TEST(TraceWorkload, RejectsBadTraces) {
  EXPECT_THROW(TraceWorkload({}, sim::NetTarget{}), util::ContractViolation);
  TracePoint bad;
  bad.duration_s = 0.0;
  EXPECT_THROW(TraceWorkload({bad}, sim::NetTarget{}),
               util::ContractViolation);
  TracePoint neg;
  neg.cpu_pct = -1.0;
  EXPECT_THROW(TraceWorkload({neg}, sim::NetTarget{}),
               util::ContractViolation);
}

TEST(TraceFromCsv, ParsesMonitorDump) {
  util::CsvDocument csv({"t_s", "vm_cpu", "vm_mem", "vm_io", "vm_bw"});
  csv.add_row({1.0, 25.0, 90.0, 10.0, 100.0});
  csv.add_row({2.0, 35.0, 95.0, 12.0, 200.0});
  const auto trace = trace_from_csv(csv);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0].cpu_pct, 25.0);
  EXPECT_DOUBLE_EQ(trace[1].bw_kbps, 200.0);
  EXPECT_DOUBLE_EQ(trace[0].duration_s, 1.0);
}

TEST(TraceFromCsv, OptionalColumnsDefaultToZero) {
  util::CsvDocument csv({"vm_cpu"});
  csv.add_row({42.0});
  const auto trace = trace_from_csv(csv);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace[0].cpu_pct, 42.0);
  EXPECT_DOUBLE_EQ(trace[0].io_blocks_per_s, 0.0);
}

TEST(TraceFromCsv, MissingCpuColumnRejected) {
  util::CsvDocument csv({"other"});
  csv.add_row({1.0});
  EXPECT_THROW((void)trace_from_csv(csv), util::ContractViolation);
}

TEST(TraceFromCsv, CustomPrefixAndInterval) {
  util::CsvDocument csv({"xcpu", "xbw"});
  csv.add_row({10.0, 50.0});
  const auto trace = trace_from_csv(csv, "x", 5.0);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace[0].duration_s, 5.0);
  EXPECT_DOUBLE_EQ(trace[0].bw_kbps, 50.0);
}

TEST(DiurnalTrace, StartsAtTroughPeaksAtMidday) {
  DiurnalSpec spec;
  spec.noise_rel = 0.0;
  const auto trace = make_diurnal_trace(spec);
  ASSERT_EQ(trace.size(), spec.points);
  EXPECT_NEAR(trace.front().cpu_pct, spec.cpu_trough_pct, 1.0);
  EXPECT_NEAR(trace[spec.points / 2].cpu_pct, spec.cpu_peak_pct, 1.0);
  EXPECT_NEAR(trace.front().bw_kbps, spec.bw_trough_kbps, 10.0);
  EXPECT_NEAR(trace[spec.points / 2].bw_kbps, spec.bw_peak_kbps, 10.0);
  // Durations tile the period.
  double total = 0.0;
  for (const auto& p : trace) total += p.duration_s;
  EXPECT_NEAR(total, spec.period_s, 1e-9);
}

TEST(DiurnalTrace, NoiseIsSeededAndBounded) {
  DiurnalSpec spec;
  const auto a = make_diurnal_trace(spec, 5);
  const auto b = make_diurnal_trace(spec, 5);
  const auto c = make_diurnal_trace(spec, 6);
  EXPECT_DOUBLE_EQ(a[10].cpu_pct, b[10].cpu_pct);
  EXPECT_NE(a[10].cpu_pct, c[10].cpu_pct);
  for (const auto& p : a) {
    EXPECT_GE(p.cpu_pct, 0.0);
    EXPECT_LE(p.cpu_pct, 100.0);
  }
}

TEST(DiurnalTrace, ReplaysThroughTheSimulator) {
  DiurnalSpec spec;
  spec.period_s = 60.0;
  spec.noise_rel = 0.0;
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 61);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec vspec;
  vspec.name = "vm1";
  pm.add_vm(vspec).attach(std::make_unique<TraceWorkload>(
      make_diurnal_trace(spec), sim::NetTarget{}, true));
  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& r = mon.measure(seconds(60));
  const mon::SeriesSet& s = r.series("vm1");
  // Midday (t ~ 30 s) well above night (t ~ 3 s).
  EXPECT_GT(s.cpu.mean_between(seconds(27), seconds(33)),
            3.0 * s.cpu.mean_between(seconds(1), seconds(5)));
}

TEST(DiurnalTrace, RejectsBadSpecs) {
  DiurnalSpec bad;
  bad.points = 1;
  EXPECT_THROW((void)make_diurnal_trace(bad), util::ContractViolation);
  DiurnalSpec bad2;
  bad2.cpu_peak_pct = 5.0;
  bad2.cpu_trough_pct = 50.0;
  EXPECT_THROW((void)make_diurnal_trace(bad2), util::ContractViolation);
}

}  // namespace
}  // namespace voprof::wl
