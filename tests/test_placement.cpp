#include <gtest/gtest.h>

#include "voprof/core/trainer.hpp"
#include "voprof/placement/demand_predictor.hpp"
#include "voprof/placement/evaluation.hpp"
#include "voprof/placement/placer.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::place {
namespace {

using model::UtilVec;

// ------------------------------------------------------ DemandPredictor
TEST(DemandPredictor, PeakPlusPadding) {
  DemandPredictorConfig cfg;
  cfg.window = 10;
  cfg.padding = 0.10;
  cfg.base_percentile = 100.0;
  const DemandPredictor p(cfg);
  std::vector<UtilVec> trace;
  for (int i = 1; i <= 10; ++i) {
    trace.push_back(UtilVec{static_cast<double>(i), 0, 0, 0});
  }
  const UtilVec d = p.predict(trace);
  EXPECT_NEAR(d.cpu, 10.0 * 1.10, 1e-9);
}

TEST(DemandPredictor, UsesOnlyTrailingWindow) {
  DemandPredictorConfig cfg;
  cfg.window = 5;
  cfg.padding = 0.0;
  cfg.base_percentile = 100.0;
  const DemandPredictor p(cfg);
  std::vector<UtilVec> trace;
  trace.push_back(UtilVec{1000.0, 0, 0, 0});  // old spike, outside window
  for (int i = 0; i < 5; ++i) trace.push_back(UtilVec{10.0, 0, 0, 0});
  EXPECT_NEAR(p.predict(trace).cpu, 10.0, 1e-9);
}

TEST(DemandPredictor, PercentileShavesOutliers) {
  DemandPredictorConfig cfg;
  cfg.window = 100;
  cfg.padding = 0.0;
  cfg.base_percentile = 90.0;
  const DemandPredictor p(cfg);
  std::vector<UtilVec> trace(99, UtilVec{50.0, 0, 0, 0});
  trace.push_back(UtilVec{500.0, 0, 0, 0});  // single spike
  EXPECT_LT(p.predict(trace).cpu, 100.0);
}

TEST(DemandPredictor, RejectsEmptyTraceAndBadConfig) {
  const DemandPredictor p;
  EXPECT_THROW((void)p.predict({}), util::ContractViolation);
  DemandPredictorConfig bad;
  bad.window = 0;
  EXPECT_THROW(DemandPredictor{bad}, util::ContractViolation);
  DemandPredictorConfig bad2;
  bad2.padding = -0.1;
  EXPECT_THROW(DemandPredictor{bad2}, util::ContractViolation);
}

// ---------------------------------------------------------------- PmState
TEST(PmState, SumsAndMemory) {
  PmState pm;
  pm.spec = sim::MachineSpec{};
  pm.vm_demands.push_back(UtilVec{40, 100, 10, 500});
  pm.vm_demands.push_back(UtilVec{20, 150, 5, 100});
  pm.vm_mem_mib = {256.0, 256.0};
  EXPECT_EQ(pm.vm_count(), 2);
  EXPECT_DOUBLE_EQ(pm.demand_sum().cpu, 60.0);
  EXPECT_DOUBLE_EQ(pm.mem_reserved_mib(), 752.0 + 512.0);
}

// --------------------------------------------- Placer VOU (no model)
TEST(PlacerVou, AcceptsUntilRawCpuCapacity) {
  PlacerConfig cfg;
  cfg.overhead_aware = false;
  const Placer placer(cfg, nullptr);
  PmState pm;
  pm.spec = sim::MachineSpec{};
  // VOU believes 400 % CPU is available: 3 x 100 fits, memory allows 4.
  EXPECT_TRUE(placer.fits(pm, UtilVec{390.0, 0, 0, 0}, 256.0));
  EXPECT_FALSE(placer.fits(pm, UtilVec{410.0, 0, 0, 0}, 256.0));
}

TEST(PlacerVou, MemoryCheckCountsDom0) {
  PlacerConfig cfg;
  cfg.overhead_aware = false;
  const Placer placer(cfg, nullptr);
  PmState pm;
  pm.spec = sim::MachineSpec{};  // 2048 * 0.9 = 1843 usable, Dom0 752
  // 4 x 256 = 1024 -> 1776 total: fits.
  pm.vm_mem_mib = {256, 256, 256};
  pm.vm_demands.assign(3, UtilVec{});
  EXPECT_TRUE(placer.fits(pm, UtilVec{}, 256.0));
  // A 5th VM would hit 2032 > 1843: rejected (the paper's VOU spill).
  pm.vm_mem_mib.push_back(256);
  pm.vm_demands.push_back(UtilVec{});
  EXPECT_FALSE(placer.fits(pm, UtilVec{}, 256.0));
}

TEST(PlacerVou, FirstFitChoosesEarliestFeasible) {
  PlacerConfig cfg;
  cfg.overhead_aware = false;
  const Placer placer(cfg, nullptr);
  std::vector<PmState> pms(2);
  pms[0].spec = pms[1].spec = sim::MachineSpec{};
  pms[0].vm_demands.assign(4, UtilVec{});
  pms[0].vm_mem_mib.assign(4, 256.0);  // PM0 memory-full
  const auto choice = placer.choose(pms, UtilVec{10, 0, 0, 0}, 256.0);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, 1u);
}

TEST(PlacerVou, PlaceFallsBackWhenNothingFits) {
  PlacerConfig cfg;
  cfg.overhead_aware = false;
  const Placer placer(cfg, nullptr);
  std::vector<PmState> pms(2);
  pms[0].spec = pms[1].spec = sim::MachineSpec{};
  for (auto& pm : pms) {
    pm.vm_demands.assign(4, UtilVec{});
    pm.vm_mem_mib.assign(4, 256.0);
  }
  pms[1].vm_demands[0] = UtilVec{50, 0, 0, 0};  // PM1 more loaded
  bool forced = false;
  const std::size_t idx = placer.place(pms, UtilVec{10, 0, 0, 0}, 256.0,
                                       &forced);
  EXPECT_TRUE(forced);
  EXPECT_EQ(idx, 0u);  // least CPU-loaded
  EXPECT_EQ(pms[0].vm_count(), 5);
}

TEST(PlacerVoa, RequiresTrainedModel) {
  PlacerConfig cfg;
  cfg.overhead_aware = true;
  EXPECT_THROW(Placer(cfg, nullptr), util::ContractViolation);
  model::MultiVmModel untrained;
  EXPECT_THROW(Placer(cfg, &untrained), util::ContractViolation);
}

// ------------------------- VOA vs VOU with a real trained model
class PlacementWithModel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model::TrainerConfig c;
    c.duration = util::seconds(20.0);
    c.seed = 13;
    const model::Trainer trainer(c);
    models_ = new model::TrainedModels(
        trainer.train(model::RegressionMethod::kOls));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }
  static model::TrainedModels* models_;
};

model::TrainedModels* PlacementWithModel::models_ = nullptr;

TEST_F(PlacementWithModel, VoaRejectsWhereVouAccepts) {
  // Three 60 % VMs with real bandwidth: raw sum 180 < 400 so VOU says
  // yes; the model adds Dom0+hypervisor overhead and a 4th pushes the
  // predicted PM CPU past the VOA ceiling.
  PlacerConfig voa_cfg;
  voa_cfg.overhead_aware = true;
  PlacerConfig vou_cfg;
  vou_cfg.overhead_aware = false;
  const Placer voa(voa_cfg, &models_->multi);
  const Placer vou(vou_cfg, nullptr);

  PmState pm;
  pm.spec = sim::MachineSpec{};
  const UtilVec heavy{60.0, 120.0, 0.0, 1000.0};
  pm.vm_demands.assign(3, heavy);
  pm.vm_mem_mib.assign(3, 256.0);

  EXPECT_TRUE(vou.fits(pm, heavy, 256.0));
  EXPECT_FALSE(voa.fits(pm, heavy, 256.0));
}

TEST_F(PlacementWithModel, VoaAcceptsLightLoad) {
  PlacerConfig cfg;
  cfg.overhead_aware = true;
  const Placer voa(cfg, &models_->multi);
  PmState pm;
  pm.spec = sim::MachineSpec{};
  EXPECT_TRUE(voa.fits(pm, UtilVec{20.0, 100.0, 5.0, 100.0}, 256.0));
}

TEST_F(PlacementWithModel, EvaluationSmokeRun) {
  EvalConfig cfg;
  cfg.repetitions = 2;
  cfg.warmup = util::seconds(5.0);
  cfg.run_duration = util::seconds(20.0);
  cfg.seed = 3;
  const PlacementEvaluation eval(cfg, &models_->multi);

  const auto& demands = eval.role_demands();
  EXPECT_GT(demands.at(VmRole::kRubisWeb).cpu, 30.0);
  EXPECT_GT(demands.at(VmRole::kBusy).cpu, 40.0);
  EXPECT_LT(demands.at(VmRole::kIdle).cpu, 5.0);
  EXPECT_GT(demands.at(VmRole::kRubisWeb).bw,
            demands.at(VmRole::kRubisDb).bw);  // web tier is BW-heavy

  const CellStats voa = eval.run_cell(3, true);
  const CellStats vou = eval.run_cell(3, false);
  EXPECT_GT(voa.mean_throughput, 0.0);
  EXPECT_GT(vou.mean_throughput, 0.0);
  // Fig. 10: under the heaviest scenario VOA sustains more throughput
  // and finishes the request volume sooner.
  EXPECT_GT(voa.mean_throughput, vou.mean_throughput);
  EXPECT_LT(voa.mean_total_time, vou.mean_total_time);
}

TEST_F(PlacementWithModel, EvaluationRejectsBadScenario) {
  EvalConfig cfg;
  cfg.repetitions = 1;
  const PlacementEvaluation eval(cfg, &models_->multi);
  EXPECT_THROW((void)eval.run_once(-1, true, 1), util::ContractViolation);
  EXPECT_THROW((void)eval.run_once(4, true, 1), util::ContractViolation);
}

TEST(RoleNames, AllNamed) {
  EXPECT_EQ(role_name(VmRole::kRubisWeb), "rubis-web");
  EXPECT_EQ(role_name(VmRole::kRubisDb), "rubis-db");
  EXPECT_EQ(role_name(VmRole::kBusy), "busy");
  EXPECT_EQ(role_name(VmRole::kIdle), "idle");
}

}  // namespace
}  // namespace voprof::place
