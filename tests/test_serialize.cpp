#include "voprof/core/serialize.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::model {
namespace {

/// Small synthetic training set good enough to fit both models.
TrainingSet synthetic_data(std::uint64_t seed) {
  util::Rng rng(seed);
  TrainingSet data;
  for (int n : {1, 2, 4}) {
    for (int i = 0; i < 200; ++i) {
      TrainingRow r;
      r.n_vms = n;
      r.vm_sum = UtilVec{rng.uniform(0, 100.0 * n), rng.uniform(80, 150.0 * n),
                         rng.uniform(0, 90.0 * n), rng.uniform(0, 1280.0 * n)};
      const double alpha = n <= 1 ? 0.0 : n - 1.0;
      r.dom0_cpu = 16.8 + 0.05 * r.vm_sum.cpu + 0.0105 * r.vm_sum.bw +
                   alpha * 0.6 + rng.gaussian(0, 0.1);
      r.hyp_cpu = 3.0 + 0.04 * r.vm_sum.cpu + alpha * 0.3 +
                  rng.gaussian(0, 0.05);
      r.pm = UtilVec{r.vm_sum.cpu + r.dom0_cpu + r.hyp_cpu,
                     752.0 + r.vm_sum.mem, 18.8 + 2.05 * r.vm_sum.io,
                     2.0 + 1.001 * r.vm_sum.bw + alpha * 5.0};
      data.add(std::move(r));
    }
  }
  return data;
}

TEST(TrainingSetCsv, RoundTripPreservesRows) {
  const TrainingSet data = synthetic_data(1);
  const util::CsvDocument csv = training_set_to_csv(data);
  EXPECT_EQ(csv.row_count(), data.size());
  const TrainingSet back = training_set_from_csv(csv);
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(back.rows()[i].n_vms, data.rows()[i].n_vms);
    EXPECT_DOUBLE_EQ(back.rows()[i].vm_sum.bw, data.rows()[i].vm_sum.bw);
    EXPECT_DOUBLE_EQ(back.rows()[i].pm.cpu, data.rows()[i].pm.cpu);
    EXPECT_DOUBLE_EQ(back.rows()[i].dom0_cpu, data.rows()[i].dom0_cpu);
    EXPECT_DOUBLE_EQ(back.rows()[i].hyp_cpu, data.rows()[i].hyp_cpu);
  }
}

TEST(TrainingSetCsv, RoundTripThroughText) {
  const TrainingSet data = synthetic_data(2);
  const std::string text = training_set_to_csv(data).str();
  const TrainingSet back =
      training_set_from_csv(util::CsvDocument::parse_string(text));
  EXPECT_EQ(back.size(), data.size());
  // Models fitted on both sides agree.
  const auto a = Trainer::fit_models(data, RegressionMethod::kOls);
  const auto b = Trainer::fit_models(back, RegressionMethod::kOls);
  const UtilVec probe{60, 120, 30, 600};
  EXPECT_NEAR(a.multi.predict(probe, 2).cpu, b.multi.predict(probe, 2).cpu,
              1e-9);
}

TEST(TrainingSetCsv, MissingColumnRejected) {
  util::CsvDocument csv({"n_vms", "vm_cpu"});
  csv.add_row({1.0, 50.0});
  EXPECT_THROW((void)training_set_from_csv(csv), util::ContractViolation);
}

class ModelSerialization : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    models_ = new TrainedModels(
        Trainer::fit_models(synthetic_data(3), RegressionMethod::kOls));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }
  static TrainedModels* models_;
};

TrainedModels* ModelSerialization::models_ = nullptr;

TEST_F(ModelSerialization, RoundTripPreservesPredictions) {
  const std::string text = models_to_string(*models_);
  const TrainedModels back = models_from_string(text);
  ASSERT_TRUE(back.single.trained());
  ASSERT_TRUE(back.multi.trained());
  for (int n : {1, 2, 3, 4}) {
    const UtilVec probe{40.0 * n, 100.0 * n, 20.0 * n, 300.0 * n};
    const UtilVec a = models_->multi.predict(probe, n);
    const UtilVec b = back.multi.predict(probe, n);
    EXPECT_DOUBLE_EQ(a.cpu, b.cpu);
    EXPECT_DOUBLE_EQ(a.mem, b.mem);
    EXPECT_DOUBLE_EQ(a.io, b.io);
    EXPECT_DOUBLE_EQ(a.bw, b.bw);
    EXPECT_DOUBLE_EQ(models_->multi.predict_pm_cpu_indirect(probe, n),
                     back.multi.predict_pm_cpu_indirect(probe, n));
  }
}

TEST_F(ModelSerialization, RoundTripPreservesFitQuality) {
  const TrainedModels back = models_from_string(models_to_string(*models_));
  const LinearFit& a = models_->single.fit_for(MetricIndex::kCpu);
  const LinearFit& b = back.single.fit_for(MetricIndex::kCpu);
  EXPECT_DOUBLE_EQ(a.residual_rms, b.residual_rms);
  EXPECT_DOUBLE_EQ(a.r_squared, b.r_squared);
}

TEST_F(ModelSerialization, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/voprof_models.txt";
  save_models_file(*models_, path);
  const TrainedModels back = load_models_file(path);
  const UtilVec probe{55, 150, 0, 1800};
  EXPECT_DOUBLE_EQ(models_->multi.predict(probe, 2).cpu,
                   back.multi.predict(probe, 2).cpu);
}

TEST_F(ModelSerialization, RejectsGarbage) {
  EXPECT_THROW((void)models_from_string(""), util::ContractViolation);
  EXPECT_THROW((void)models_from_string("not-a-model\n"),
               util::ContractViolation);
  // Truncate mid-file.
  std::string text = models_to_string(*models_);
  text.resize(text.size() / 2);
  EXPECT_THROW((void)models_from_string(text), util::ContractViolation);
}

TEST_F(ModelSerialization, UntrainedModelsRejected) {
  TrainedModels empty;
  EXPECT_THROW((void)models_to_string(empty), util::ContractViolation);
}

TEST_F(ModelSerialization, MissingFileRejected) {
  EXPECT_THROW((void)load_models_file("/nonexistent/voprof.txt"),
               util::ContractViolation);
}

// ------------------------------------------------------- typed model
HeteroTrainingSet hetero_synthetic(std::uint64_t seed) {
  util::Rng rng(seed);
  HeteroTrainingSet data;
  const std::vector<std::vector<int>> mixes = {{1, 0}, {0, 1}, {1, 1},
                                               {2, 1}};
  for (const auto& mix : mixes) {
    for (int i = 0; i < 120; ++i) {
      HeteroRow r;
      UtilVec grand;
      int total = 0;
      double pm_cpu = 20.0;
      const char* names[] = {"A", "B"};
      const double slope[] = {1.2, 1.5};
      for (int t = 0; t < 2; ++t) {
        if (mix[static_cast<std::size_t>(t)] == 0) continue;
        const int n = mix[static_cast<std::size_t>(t)];
        TypeObservation obs;
        obs.count = n;
        obs.sum = UtilVec{rng.uniform(0, 100.0 * n), rng.uniform(80, 150.0 * n),
                          rng.uniform(0, 90.0 * n), rng.uniform(0, 600.0 * n)};
        pm_cpu += slope[t] * obs.sum.cpu + 0.01 * obs.sum.bw;
        grand += obs.sum;
        total += n;
        r.types[names[t]] = obs;
      }
      const double alpha = MultiVmModel::alpha(total);
      pm_cpu += alpha * 1.0;
      r.pm = UtilVec{pm_cpu, 752 + grand.mem, 18.8 + 2.05 * grand.io,
                     2.0 + grand.bw};
      r.dom0_cpu = 16.8 + 0.05 * grand.cpu;
      r.hyp_cpu = 3.0 + 0.03 * grand.cpu;
      data.add(std::move(r));
    }
  }
  return data;
}

TEST(HeteroSerialization, RoundTripPreservesPredictions) {
  const HeteroModel m =
      HeteroModel::fit(hetero_synthetic(7), RegressionMethod::kOls);
  const HeteroModel back =
      hetero_model_from_string(hetero_model_to_string(m));
  ASSERT_TRUE(back.trained());
  EXPECT_EQ(back.types(), m.types());
  std::map<std::string, TypeObservation> probe;
  TypeObservation a;
  a.count = 2;
  a.sum = UtilVec{120, 200, 30, 400};
  probe["A"] = a;
  TypeObservation b;
  b.count = 1;
  b.sum = UtilVec{150, 110, 50, 100};
  probe["B"] = b;
  EXPECT_DOUBLE_EQ(m.predict(probe).cpu, back.predict(probe).cpu);
  EXPECT_DOUBLE_EQ(m.predict_pm_cpu_indirect(probe),
                   back.predict_pm_cpu_indirect(probe));
}

TEST(HeteroSerialization, RejectsGarbage) {
  EXPECT_THROW((void)hetero_model_from_string(""), util::ContractViolation);
  EXPECT_THROW((void)hetero_model_from_string("wrong-header\n"),
               util::ContractViolation);
  const HeteroModel m =
      HeteroModel::fit(hetero_synthetic(8), RegressionMethod::kOls);
  std::string text = hetero_model_to_string(m);
  text.resize(text.size() * 2 / 3);
  EXPECT_THROW((void)hetero_model_from_string(text),
               util::ContractViolation);
  HeteroModel untrained;
  EXPECT_THROW((void)hetero_model_to_string(untrained),
               util::ContractViolation);
}

}  // namespace
}  // namespace voprof::model
