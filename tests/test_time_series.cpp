#include "voprof/util/time_series.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"

namespace voprof::util {
namespace {

TEST(TimeSeries, AddAndIndex) {
  TimeSeries ts;
  ts.add(seconds(1), 10.0);
  ts.add(seconds(2), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].time, seconds(1));
  EXPECT_DOUBLE_EQ(ts[1].value, 20.0);
  EXPECT_THROW((void)ts[2], ContractViolation);
}

TEST(TimeSeries, RejectsDecreasingTimestamps) {
  TimeSeries ts;
  ts.add(seconds(2), 1.0);
  EXPECT_THROW(ts.add(seconds(1), 2.0), ContractViolation);
  ts.add(seconds(2), 3.0);  // equal is fine
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, MeanAndValues) {
  TimeSeries ts;
  for (int i = 1; i <= 4; ++i) ts.add(seconds(i), i * 10.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 25.0);
  const auto v = ts.values();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[2], 30.0);
  EXPECT_DOUBLE_EQ(TimeSeries{}.mean(), 0.0);
}

TEST(TimeSeries, MeanBetweenWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(seconds(i), static_cast<double>(i));
  // [2s, 5s) -> samples 2,3,4
  EXPECT_DOUBLE_EQ(ts.mean_between(seconds(2), seconds(5)), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(seconds(100), seconds(200)), 0.0);
}

TEST(TimeSeries, SliceSelectsHalfOpenRange) {
  TimeSeries ts;
  for (int i = 0; i < 5; ++i) ts.add(seconds(i), static_cast<double>(i));
  const TimeSeries s = ts.slice(seconds(1), seconds(4));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0].value, 1.0);
  EXPECT_DOUBLE_EQ(s[2].value, 3.0);
}

TEST(TimeSeries, StatsMatchesValues) {
  TimeSeries ts;
  ts.add(0, 2.0);
  ts.add(1, 4.0);
  const RunningStats st = ts.stats();
  EXPECT_EQ(st.count(), 2u);
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
}

TEST(TimeSeries, LastOr) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.last_or(-1.0), -1.0);
  ts.add(0, 5.0);
  EXPECT_DOUBLE_EQ(ts.last_or(-1.0), 5.0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mbps_to_kbps(1.28), 1280.0);
  EXPECT_DOUBLE_EQ(kbps_to_mbps(1280.0), 1.28);
  EXPECT_DOUBLE_EQ(bytes_per_s_to_kbps(254.0), 254.0 * 8.0 / 1000.0);
  EXPECT_DOUBLE_EQ(kbps_to_bytes_per_s(bytes_per_s_to_kbps(400.0)), 400.0);
  EXPECT_DOUBLE_EQ(blocks_to_kbps(1.0), 512.0 * 8.0 / 1000.0);
  EXPECT_EQ(seconds(1.5), 1500000);
  EXPECT_EQ(milliseconds(10), 10000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
}

}  // namespace
}  // namespace voprof::util
