/// Tests for the paper's variable-rate client protocol and the
/// report->CSV export path.

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/trace.hpp"

namespace voprof {
namespace {

using util::seconds;

TEST(ClientRamp, SteppedIncrease) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 71);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = 100;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  rubis::schedule_client_ramp(engine, *inst.client, 300, 700,
                              seconds(40.0), 4);
  EXPECT_EQ(inst.client->clients(), 300);
  engine.run_for(seconds(11.0));
  EXPECT_EQ(inst.client->clients(), 400);
  engine.run_for(seconds(10.0));
  EXPECT_EQ(inst.client->clients(), 500);
  engine.run_for(seconds(20.0));
  EXPECT_EQ(inst.client->clients(), 700);
}

TEST(ClientRamp, LoadActuallyGrows) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 73);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  rubis::schedule_client_ramp(engine, *inst.client, 300, 700,
                              seconds(60.0), 4);
  engine.run_for(seconds(15.0));
  const double early_mark = inst.client->completed();
  engine.run_for(seconds(10.0));
  const double early_tput = (inst.client->completed() - early_mark) / 10.0;
  engine.run_for(seconds(45.0));  // past the end of the ramp
  const double late_mark = inst.client->completed();
  engine.run_for(seconds(10.0));
  const double late_tput = (inst.client->completed() - late_mark) / 10.0;
  EXPECT_GT(late_tput, 1.5 * early_tput);
}

TEST(ClientRamp, RejectsBadArguments) {
  sim::Engine engine;
  rubis::ClientEmulator client(rubis::RubisCosts{}, sim::NetTarget{}, 10);
  EXPECT_THROW(
      rubis::schedule_client_ramp(engine, client, 300, 700, seconds(10), 0),
      util::ContractViolation);
  EXPECT_THROW(rubis::schedule_client_ramp(engine, client, 300, 700, 0, 4),
               util::ContractViolation);
  EXPECT_THROW(
      rubis::schedule_client_ramp(engine, client, -1, 700, seconds(10), 4),
      util::ContractViolation);
}

TEST(ReportCsv, ExportsAllEntitiesAndSamples) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 79);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(std::make_unique<wl::CpuHog>(40.0, 81));
  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& report = mon.measure(seconds(15.0));
  const util::CsvDocument csv = mon::report_to_csv(report);
  EXPECT_EQ(csv.row_count(), 15u);
  EXPECT_TRUE(csv.has_column("t_s"));
  EXPECT_TRUE(csv.has_column("vm1_cpu"));
  EXPECT_TRUE(csv.has_column("Domain-0_cpu"));
  EXPECT_TRUE(csv.has_column("PM_bw"));
  EXPECT_TRUE(csv.has_column("hypervisor_cpu"));
  EXPECT_NEAR(csv.at(5, "vm1_cpu"), 40.0, 3.0);
  EXPECT_DOUBLE_EQ(csv.at(0, "t_s"), 1.0);
}

TEST(ReportCsv, RoundTripsIntoTraceReplay) {
  // report -> CSV -> TraceWorkload: the full trace-driven loop.
  util::CsvDocument csv({"x"});
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 83);
    sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
    sim::VmSpec spec;
    spec.name = "vm1";
    pm.add_vm(spec).attach(std::make_unique<wl::CpuHog>(65.0, 85));
    mon::MonitorScript mon(engine, pm);
    csv = mon::report_to_csv(mon.measure(seconds(10.0)));
  }
  const auto trace = wl::trace_from_csv(csv, "vm1_");
  ASSERT_EQ(trace.size(), 10u);
  EXPECT_NEAR(trace[3].cpu_pct, 65.0, 3.0);
}

TEST(ReportCsv, EmptyReportRejected) {
  const mon::MeasurementReport empty;
  EXPECT_THROW((void)mon::report_to_csv(empty), util::ContractViolation);
}

}  // namespace
}  // namespace voprof
