#include "voprof/core/overhead_model.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::model {
namespace {

/// Synthetic ground truth mirroring Eq. (3):
///   pm = A * [1, M] + alpha(N) * O * [1, M]
/// with known A and O, plus optional noise.
struct GroundTruth {
  // Per-metric coefficient rows [intercept, c, m, i, n].
  std::array<std::array<double, 5>, 4> a = {{
      {20.0, 1.10, 0.00, 0.000, 0.0110},   // PM cpu
      {752.0, 0.00, 1.00, 0.000, 0.0000},  // PM mem
      {18.8, 0.00, 0.00, 2.050, 0.0000},   // PM io
      {2.0, 0.00, 0.00, 0.000, 1.0300},    // PM bw
  }};
  std::array<std::array<double, 5>, 4> o = {{
      {0.8, 0.02, 0.0, 0.000, 0.0005},
      {0.0, 0.00, 0.0, 0.000, 0.0000},
      {1.0, 0.00, 0.0, 0.050, 0.0000},
      {0.5, 0.00, 0.0, 0.000, 0.0100},
  }};

  [[nodiscard]] UtilVec pm_for(const UtilVec& sum, int n) const {
    const std::array<double, 4> x = sum.to_array();
    std::array<double, 4> out{};
    const double alpha = n <= 1 ? 0.0 : n - 1.0;
    for (int m = 0; m < 4; ++m) {
      double v = a[static_cast<std::size_t>(m)][0] +
                 alpha * o[static_cast<std::size_t>(m)][0];
      for (int j = 0; j < 4; ++j) {
        v += (a[static_cast<std::size_t>(m)][static_cast<std::size_t>(j + 1)] +
              alpha * o[static_cast<std::size_t>(m)]
                       [static_cast<std::size_t>(j + 1)]) *
             x[static_cast<std::size_t>(j)];
      }
      out[static_cast<std::size_t>(m)] = v;
    }
    return UtilVec::from_array(out);
  }
};

TrainingSet make_data(const GroundTruth& gt, const std::vector<int>& counts,
                      std::size_t per_count, double noise,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  TrainingSet data;
  for (int n : counts) {
    for (std::size_t i = 0; i < per_count; ++i) {
      UtilVec sum{rng.uniform(0, 100.0 * n), rng.uniform(80, 150.0 * n),
                  rng.uniform(0, 90.0 * n), rng.uniform(0, 1280.0 * n)};
      UtilVec pm = gt.pm_for(sum, n);
      if (noise > 0) {
        pm.cpu += rng.gaussian(0, noise);
        pm.mem += rng.gaussian(0, noise);
        pm.io += rng.gaussian(0, noise);
        pm.bw += rng.gaussian(0, noise);
      }
      data.add(TrainingRow{sum, n, pm});
    }
  }
  return data;
}

TEST(UtilVec, ArithmeticAndConversions) {
  const UtilVec a{1, 2, 3, 4};
  const UtilVec b{10, 20, 30, 40};
  const UtilVec s = a + b;
  EXPECT_DOUBLE_EQ(s.cpu, 11);
  EXPECT_DOUBLE_EQ(s.bw, 44);
  const UtilVec d = b - a;
  EXPECT_DOUBLE_EQ(d.mem, 18);
  const UtilVec m = a * 2.0;
  EXPECT_DOUBLE_EQ(m.io, 6);
  EXPECT_DOUBLE_EQ(a.get(MetricIndex::kMem), 2);
  EXPECT_DOUBLE_EQ(UtilVec::from_array(a.to_array()).bw, 4);
}

TEST(UtilVec, FromSample) {
  mon::UtilSample s{50.0, 84.0, 30.0, 640.0};
  const UtilVec v = UtilVec::from_sample(s);
  EXPECT_DOUBLE_EQ(v.cpu, 50.0);
  EXPECT_DOUBLE_EQ(v.mem, 84.0);
  EXPECT_DOUBLE_EQ(v.io, 30.0);
  EXPECT_DOUBLE_EQ(v.bw, 640.0);
}

TEST(MetricNames, AllDistinct) {
  EXPECT_EQ(metric_name(MetricIndex::kCpu), "CPU");
  EXPECT_EQ(metric_name(MetricIndex::kMem), "MEM");
  EXPECT_EQ(metric_name(MetricIndex::kIo), "I/O");
  EXPECT_EQ(metric_name(MetricIndex::kBw), "BW");
}

TEST(TrainingSet, FiltersByVmCount) {
  TrainingSet data;
  data.add(TrainingRow{{}, 1, {}});
  data.add(TrainingRow{{}, 2, {}});
  data.add(TrainingRow{{}, 4, {}});
  EXPECT_EQ(data.with_vm_count(1).size(), 1u);
  EXPECT_EQ(data.with_vm_count_at_least(2).size(), 2u);
  EXPECT_EQ(data.size(), 3u);
}

TEST(TrainingSet, DesignAndResponseShapes) {
  TrainingSet data;
  data.add(TrainingRow{{1, 2, 3, 4}, 1, {9, 8, 7, 6}});
  const util::Matrix x = data.design();
  EXPECT_EQ(x.rows(), 1u);
  EXPECT_EQ(x.cols(), 4u);
  EXPECT_DOUBLE_EQ(x(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(data.response(MetricIndex::kBw)[0], 6.0);
}

TEST(TrainingSet, RejectsBadVmCount) {
  TrainingSet data;
  EXPECT_THROW(data.add(TrainingRow{{}, 0, {}}), util::ContractViolation);
}

TEST(SingleVmModel, RecoversKnownCoefficients) {
  const GroundTruth gt;
  const TrainingSet data = make_data(gt, {1}, 300, 0.0, 21);
  const SingleVmModel m =
      SingleVmModel::fit(data, RegressionMethod::kOls);
  const util::Matrix a = m.coefficient_matrix();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(a(r, c), gt.a[r][c], 1e-6) << "row " << r << " col " << c;
    }
  }
}

TEST(SingleVmModel, PredictMatchesGroundTruth) {
  const GroundTruth gt;
  const TrainingSet data = make_data(gt, {1}, 300, 0.1, 22);
  const SingleVmModel m =
      SingleVmModel::fit(data, RegressionMethod::kOls);
  const UtilVec vm{60, 120, 40, 800};
  const UtilVec pred = m.predict(vm);
  const UtilVec truth = gt.pm_for(vm, 1);
  EXPECT_NEAR(pred.cpu, truth.cpu, 0.2);
  EXPECT_NEAR(pred.io, truth.io, 0.2);
  EXPECT_NEAR(pred.bw, truth.bw, 0.2);
}

TEST(SingleVmModel, UntrainedThrows) {
  const SingleVmModel m;
  EXPECT_FALSE(m.trained());
  EXPECT_THROW((void)m.predict(UtilVec{}), util::ContractViolation);
  EXPECT_THROW((void)m.coefficient_matrix(), util::ContractViolation);
}

TEST(SingleVmModel, TooFewRowsThrows) {
  TrainingSet data;
  for (int i = 0; i < 5; ++i) data.add(TrainingRow{{}, 1, {}});
  EXPECT_THROW((void)SingleVmModel::fit(data, RegressionMethod::kOls),
               util::ContractViolation);
}

TEST(MultiVmModel, AlphaIsNMinusOne) {
  EXPECT_DOUBLE_EQ(MultiVmModel::alpha(1), 0.0);
  EXPECT_DOUBLE_EQ(MultiVmModel::alpha(2), 1.0);
  EXPECT_DOUBLE_EQ(MultiVmModel::alpha(4), 3.0);
}

TEST(MultiVmModel, RecoversOverheadCoefficients) {
  const GroundTruth gt;
  TrainingSet data = make_data(gt, {1}, 300, 0.0, 23);
  data.append(make_data(gt, {2, 4}, 300, 0.0, 24));
  const MultiVmModel m = MultiVmModel::fit(data, RegressionMethod::kOls);
  const util::Matrix o = m.overhead_matrix();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(o(r, c), gt.o[r][c], 1e-5) << "row " << r << " col " << c;
    }
  }
}

TEST(MultiVmModel, PredictionsTrackGroundTruthAcrossN) {
  const GroundTruth gt;
  TrainingSet data = make_data(gt, {1}, 400, 0.2, 25);
  data.append(make_data(gt, {2, 4}, 400, 0.2, 26));
  const MultiVmModel m = MultiVmModel::fit(data, RegressionMethod::kOls);
  for (int n : {1, 2, 3, 4, 6}) {
    const UtilVec sum{40.0 * n, 100.0 * n, 20.0 * n, 500.0 * n};
    const UtilVec pred = m.predict(sum, n);
    const UtilVec truth = gt.pm_for(sum, n);
    EXPECT_NEAR(pred.cpu, truth.cpu, 0.5) << "n=" << n;
    EXPECT_NEAR(pred.bw, truth.bw, 0.5) << "n=" << n;
  }
}

TEST(MultiVmModel, SingleVmPredictionHasNoOverheadTerm) {
  const GroundTruth gt;
  TrainingSet data = make_data(gt, {1}, 300, 0.0, 27);
  data.append(make_data(gt, {2}, 300, 0.0, 28));
  const MultiVmModel m = MultiVmModel::fit(data, RegressionMethod::kOls);
  const UtilVec sum{50, 100, 30, 600};
  const UtilVec via_multi = m.predict(sum, 1);
  const UtilVec via_base = m.base().predict(sum);
  EXPECT_DOUBLE_EQ(via_multi.cpu, via_base.cpu);
  EXPECT_DOUBLE_EQ(via_multi.bw, via_base.bw);
}

TEST(MultiVmModel, UntrainedAndBadArgsThrow) {
  const MultiVmModel m;
  EXPECT_THROW((void)m.predict(UtilVec{}, 2), util::ContractViolation);
  const GroundTruth gt;
  TrainingSet data = make_data(gt, {1}, 300, 0.0, 29);
  data.append(make_data(gt, {2}, 300, 0.0, 30));
  const MultiVmModel trained = MultiVmModel::fit(data, RegressionMethod::kOls);
  EXPECT_THROW((void)trained.predict(UtilVec{}, 0), util::ContractViolation);
}

TEST(MultiVmModel, MissingMultiDataThrows) {
  const GroundTruth gt;
  const TrainingSet data = make_data(gt, {1}, 300, 0.0, 31);
  EXPECT_THROW((void)MultiVmModel::fit(data, RegressionMethod::kOls),
               util::ContractViolation);
}

TEST(MultiVmModel, LmsFitAlsoRecovers) {
  const GroundTruth gt;
  TrainingSet data = make_data(gt, {1}, 200, 0.1, 32);
  data.append(make_data(gt, {2, 4}, 200, 0.1, 33));
  const MultiVmModel m = MultiVmModel::fit(data, RegressionMethod::kLms);
  const UtilVec sum{80, 200, 60, 1000};
  const UtilVec pred = m.predict(sum, 2);
  const UtilVec truth = gt.pm_for(sum, 2);
  EXPECT_NEAR(pred.cpu, truth.cpu, 1.0);
}

}  // namespace
}  // namespace voprof::model
