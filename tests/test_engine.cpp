#include "voprof/xensim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "voprof/util/assert.hpp"
#include "voprof/util/units.hpp"

namespace voprof::sim {
namespace {

using util::milliseconds;
using util::seconds;

class CountingListener final : public TickListener {
 public:
  void tick(util::SimMicros now, double dt) override {
    ++ticks;
    total_dt += dt;
    last_now = now;
  }
  int ticks = 0;
  double total_dt = 0.0;
  util::SimMicros last_now = 0;
};

TEST(Engine, TicksCoverRequestedSpan) {
  Engine engine(milliseconds(10));
  CountingListener l;
  engine.add_listener(&l);
  engine.run_for(seconds(1));
  EXPECT_EQ(l.ticks, 100);
  EXPECT_NEAR(l.total_dt, 1.0, 1e-9);
  EXPECT_EQ(l.last_now, seconds(1));
  EXPECT_EQ(engine.now(), seconds(1));
}

TEST(Engine, PartialTickAtBoundary) {
  Engine engine(milliseconds(10));
  CountingListener l;
  engine.add_listener(&l);
  engine.run_for(milliseconds(25));
  EXPECT_EQ(l.ticks, 3);  // 10 + 10 + 5 ms
  EXPECT_NEAR(l.total_dt, 0.025, 1e-12);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(milliseconds(30), [&order] { order.push_back(3); });
  engine.schedule_at(milliseconds(10), [&order] { order.push_back(1); });
  engine.schedule_at(milliseconds(20), [&order] { order.push_back(2); });
  engine.run_for(milliseconds(50));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EqualTimeEventsFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(milliseconds(10), [&order, i] { order.push_back(i); });
  }
  engine.run_for(milliseconds(20));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventMayScheduleAnotherEvent) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(milliseconds(10), [&] {
    ++fired;
    engine.schedule_after(milliseconds(10), [&] { ++fired; });
  });
  engine.run_for(milliseconds(50));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleEveryRepeats) {
  Engine engine;
  int fired = 0;
  engine.schedule_every(seconds(1), [&] { ++fired; });
  engine.run_for(seconds(5));
  EXPECT_EQ(fired, 5);
}

TEST(Engine, PastSchedulingRejected) {
  Engine engine;
  engine.run_for(seconds(1));
  EXPECT_THROW(engine.schedule_at(seconds(0), [] {}), util::ContractViolation);
  EXPECT_THROW(engine.run_until(seconds(0)), util::ContractViolation);
}

TEST(Engine, EventBeforeTickAtSameBoundary) {
  // An event at t fires before the tick ending at t is delivered.
  Engine engine(milliseconds(10));
  std::vector<std::string> order;
  struct L final : TickListener {
    std::vector<std::string>* order;
    void tick(util::SimMicros, double) override { order->push_back("tick"); }
  } l;
  l.order = &order;
  engine.add_listener(&l);
  engine.schedule_at(milliseconds(10), [&order] { order.push_back("event"); });
  engine.run_for(milliseconds(10));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "event");
  EXPECT_EQ(order[1], "tick");
}

TEST(Engine, RemoveListenerStopsTicks) {
  Engine engine(milliseconds(10));
  CountingListener l;
  engine.add_listener(&l);
  engine.run_for(milliseconds(20));
  engine.remove_listener(&l);
  engine.run_for(milliseconds(20));
  EXPECT_EQ(l.ticks, 2);
}

TEST(Engine, PendingEventCount) {
  Engine engine;
  EXPECT_EQ(engine.pending_events(), 0u);
  engine.schedule_after(seconds(10), [] {});
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Engine, CancelOneShotPreventsFiring) {
  Engine engine;
  int fired = 0;
  const TimerId id = engine.schedule_after(milliseconds(10), [&] { ++fired; });
  EXPECT_EQ(engine.pending_events(), 1u);
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_FALSE(engine.cancel(id));  // already cancelled
  engine.run_for(milliseconds(50));
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelPeriodicStopsChain) {
  Engine engine;
  int fired = 0;
  const TimerId id = engine.schedule_every(seconds(1), [&] { ++fired; });
  engine.run_for(seconds(3));
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(engine.cancel(id));
  engine.run_for(seconds(3));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(Engine, PeriodicMayCancelItself) {
  Engine engine;
  int fired = 0;
  TimerId id = kInvalidTimer;
  id = engine.schedule_every(seconds(1), [&] {
    if (++fired == 2) {
      EXPECT_TRUE(engine.cancel(id));
    }
  });
  engine.run_for(seconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(Engine, CancelOfFiredOneShotReturnsFalse) {
  Engine engine;
  const TimerId id = engine.schedule_after(milliseconds(10), [] {});
  engine.run_for(milliseconds(20));
  EXPECT_FALSE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(kInvalidTimer));
}

TEST(Engine, PeriodicOrdersAfterEventsScheduledByItsCallback) {
  // A periodic's next occurrence is armed AFTER its callback runs, so
  // a same-timestamp event scheduled from inside the callback fires
  // first — matching a self-re-arming one-shot chain exactly.
  Engine engine;
  std::vector<std::string> order;
  engine.schedule_every(seconds(1), [&] {
    order.push_back("periodic");
    if (order.size() == 1) {
      engine.schedule_after(seconds(1), [&] { order.push_back("one-shot"); });
    }
  });
  engine.run_for(seconds(2));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "periodic");
  EXPECT_EQ(order[1], "one-shot");
  EXPECT_EQ(order[2], "periodic");
}

TEST(Engine, ManyInterleavedTimersKeepDeterministicOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    const auto at = milliseconds(10 * (1 + i % 7));
    engine.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  engine.run_for(seconds(1));
  ASSERT_EQ(order.size(), 50u);
  // Sorted by (time, scheduling order): stable within a timestamp.
  std::vector<int> expected;
  for (int slot = 1; slot <= 7; ++slot) {
    for (int i = 0; i < 50; ++i) {
      if (1 + i % 7 == slot) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(Engine, RejectsBadConstruction) {
  EXPECT_THROW(Engine(0), util::ContractViolation);
  EXPECT_THROW(Engine(-5), util::ContractViolation);
}

TEST(Engine, NullListenerRejected) {
  Engine engine;
  EXPECT_THROW(engine.add_listener(nullptr), util::ContractViolation);
}

}  // namespace
}  // namespace voprof::sim
