/// util::Result<T, Error> — the error vocabulary of the public loader
/// APIs — and the *_result / throwing-shim pairing on the real loaders.

#include "voprof/util/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "voprof/core/serialize.hpp"
#include "voprof/scenario/scenario.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/ini.hpp"

namespace voprof::util {
namespace {

TEST(Result, HoldsValueOrError) {
  const Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(good.value(), 7);

  const Result<int> bad(Error{Errc::kParse, "bad digit", "input:3"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kParse);
  EXPECT_EQ(bad.error().message, "bad digit");
  EXPECT_EQ(bad.error().context, "input:3");
}

TEST(Result, AccessorsEnforceTheContract) {
  const Result<int> good(1);
  EXPECT_THROW((void)good.error(), ContractViolation);
  Result<int> bad(Error{Errc::kIo, "gone", "f.txt"});
  EXPECT_THROW((void)bad.value(), ContractViolation);
  EXPECT_THROW((void)std::move(bad).take(), ContractViolation);
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  const std::unique_ptr<int> owned = std::move(r).take();
  EXPECT_EQ(*owned, 5);
}

TEST(Result, ValueOrThrowBridgesToContractViolation) {
  EXPECT_EQ(std::move(Result<int>(3)).value_or_throw(), 3);
  try {
    (void)std::move(Result<int>(Error{Errc::kValidation, "nope", "ctx"}))
        .value_or_throw();
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    // The shim must preserve the structured message.
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
  }
}

TEST(Result, ErrorToStringNamesCodeAndContext) {
  const Error err{Errc::kParse, "expected 'key = value'", "scn.conf:12"};
  EXPECT_EQ(err.to_string(),
            "parse error: expected 'key = value' (at scn.conf:12)");
  for (const Errc code : {Errc::kParse, Errc::kValidation, Errc::kIo,
                          Errc::kUnsupported, Errc::kInternal}) {
    EXPECT_NE(std::string(errc_name(code)), "");
  }
}

TEST(Result, ErrorHereMacroPointsAtTheCallSite) {
  const Error err = VOPROF_ERROR_HERE(Errc::kInternal, "boom");
  EXPECT_NE(err.context.find("test_result.cpp:"), std::string::npos);
}

// ----- the loader pairing: *_result never throws, shims still throw
TEST(LoaderResults, MissingFilesAreIoErrorsNotThrows) {
  const auto csv = CsvDocument::load_result("/nonexistent/x.csv");
  ASSERT_FALSE(csv.ok());
  EXPECT_EQ(csv.error().code, Errc::kIo);

  const auto ini = IniDocument::load_result("/nonexistent/x.ini");
  ASSERT_FALSE(ini.ok());
  EXPECT_EQ(ini.error().code, Errc::kIo);

  const auto scn = scenario::ScenarioSpec::load_result("/nonexistent/x.scn");
  ASSERT_FALSE(scn.ok());
  EXPECT_EQ(scn.error().code, Errc::kIo);

  const auto models = model::load_models_file_result("/nonexistent/m.txt");
  ASSERT_FALSE(models.ok());
  EXPECT_EQ(models.error().code, Errc::kIo);
}

TEST(LoaderResults, ParseAndValidationCodesAreDistinguished) {
  // Malformed INI text -> kParse, with the line in the context.
  const auto broken = scenario::ScenarioSpec::parse_result("[broken\n");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.error().code, Errc::kParse);

  // Well-formed INI violating scenario semantics -> kValidation.
  const auto invalid =
      scenario::ScenarioSpec::parse_result("[cluster]\nmachines = 0\n");
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.error().code, Errc::kValidation);

  // The throwing shim reports the same failure as ContractViolation.
  EXPECT_THROW((void)scenario::ScenarioSpec::parse("[cluster]\nmachines = 0\n"),
               ContractViolation);
}

}  // namespace
}  // namespace voprof::util
