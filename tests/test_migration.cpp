#include "voprof/xensim/migration.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/sample.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::sim {
namespace {

using util::seconds;

struct Testbed {
  Engine engine;
  std::unique_ptr<Cluster> cluster;
  PhysicalMachine* pm0 = nullptr;
  PhysicalMachine* pm1 = nullptr;

  explicit Testbed(std::uint64_t seed = 77) {
    cluster = std::make_unique<Cluster>(engine, CostModel{}, seed);
    pm0 = &cluster->add_machine(MachineSpec{});
    pm1 = &cluster->add_machine(MachineSpec{});
  }

  DomU& vm(PhysicalMachine& pm, const std::string& name) {
    VmSpec spec;
    spec.name = name;
    return pm.add_vm(spec);
  }
};

TEST(Migration, MovesVmToDestination) {
  Testbed t;
  t.vm(*t.pm0, "vm1").attach(std::make_unique<wl::CpuHog>(40.0, 3));
  const int id = t.cluster->migration().start("vm1", 0, 1);
  t.engine.run_for(seconds(30));
  const MigrationStatus& st = t.cluster->migration().status(id);
  EXPECT_TRUE(st.done);
  EXPECT_FALSE(st.failed);
  EXPECT_EQ(t.pm0->find_vm("vm1"), nullptr);
  ASSERT_NE(t.pm1->find_vm("vm1"), nullptr);
  EXPECT_EQ(t.cluster->migration().active_count(), 0u);
}

TEST(Migration, VmKeepsRunningDuringPreCopy) {
  Testbed t;
  t.vm(*t.pm0, "vm1").attach(std::make_unique<wl::CpuHog>(60.0, 3));
  MigrationConfig slow;
  slow.rate_kbps = 20000.0;  // stretch the copy over many seconds
  (void)t.cluster->migration().start("vm1", 0, 1, slow);
  const auto before = t.pm0->snapshot(t.engine.now());
  t.engine.run_for(seconds(5));
  const auto after = t.pm0->snapshot(t.engine.now());
  const double cpu = mon::domain_util(before.guest("vm1").counters,
                                      after.guest("vm1").counters, 5.0)
                         .cpu_pct;
  EXPECT_NEAR(cpu, 60.0, 3.0);  // still scheduled on the source
}

TEST(Migration, TransferChargesDom0AndNics) {
  Testbed idle_t(101), mig_t(101);
  idle_t.vm(*idle_t.pm0, "vm1");
  mig_t.vm(*mig_t.pm0, "vm1");

  MigrationConfig cfg;
  cfg.rate_kbps = 50000.0;
  (void)mig_t.cluster->migration().start("vm1", 0, 1, cfg);

  auto dom0_cpu_and_nic = [](Testbed& t) {
    const auto b0 = t.pm0->snapshot(t.engine.now());
    const auto b1 = t.pm1->snapshot(t.engine.now());
    t.engine.run_for(seconds(5));
    const auto a0 = t.pm0->snapshot(t.engine.now());
    const auto a1 = t.pm1->snapshot(t.engine.now());
    return std::tuple<double, double, double>(
        mon::domain_util(b0.dom0.counters, a0.dom0.counters, 5.0).cpu_pct,
        mon::device_util(b0.devices, a0.devices, 5.0).nic_kbps,
        mon::device_util(b1.devices, a1.devices, 5.0).nic_kbps);
  };
  const auto [idle_dom0, idle_nic0, idle_nic1] = dom0_cpu_and_nic(idle_t);
  const auto [mig_dom0, mig_nic0, mig_nic1] = dom0_cpu_and_nic(mig_t);

  // Source Dom0 pays netback CPU for the page stream (~0.0105 %/Kbps
  // on 50 Mb/s would exceed its cores; it saturates at the Dom0 cap).
  EXPECT_GT(mig_dom0, idle_dom0 + 50.0);
  // Both NICs carry the stream.
  EXPECT_NEAR(mig_nic0 - idle_nic0, 50000.0, 2000.0);
  EXPECT_NEAR(mig_nic1 - idle_nic1, 50000.0, 2000.0);
}

TEST(Migration, ProgressIsMonotoneAndBounded) {
  Testbed t;
  t.vm(*t.pm0, "vm1");
  MigrationConfig cfg;
  cfg.rate_kbps = 30000.0;
  const int id = t.cluster->migration().start("vm1", 0, 1, cfg);
  double prev = 0.0;
  for (int step = 0; step < 10; ++step) {
    t.engine.run_for(seconds(1));
    const double p = t.cluster->migration().status(id).progress();
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0 + 1e-9);
    prev = p;
  }
}

TEST(Migration, TotalBytesMatchMemoryTimesDirtyFactor) {
  Testbed t;
  t.vm(*t.pm0, "vm1");
  t.engine.run_for(seconds(1));  // memory gauge settles at the OS base
  MigrationConfig cfg;
  cfg.dirty_factor = 0.25;
  const int id = t.cluster->migration().start("vm1", 0, 1, cfg);
  const double expected = VmSpec{}.os_base_mem_mib * 1024.0 * 8.0 * 1.25;
  EXPECT_NEAR(t.cluster->migration().status(id).total_kbits, expected, 1.0);
}

TEST(Migration, TrafficFollowsTheVm) {
  Testbed t;
  t.vm(*t.pm0, "server");
  PhysicalMachine& pm2 = t.cluster->add_machine(MachineSpec{});
  t.vm(pm2, "client")
      .attach(std::make_unique<wl::NetPing>(
          320.0, NetTarget{0, "server"}, 5));  // addressed to PM0!
  t.engine.run_for(seconds(5));
  (void)t.cluster->migration().start("server", 0, 1);
  t.engine.run_for(seconds(30));
  // Server now lives on PM1; the router relocated the old address.
  ASSERT_NE(t.pm1->find_vm("server"), nullptr);
  const auto before = t.pm1->snapshot(t.engine.now());
  t.engine.run_for(seconds(5));
  const auto after = t.pm1->snapshot(t.engine.now());
  const double rx = mon::domain_util(before.guest("server").counters,
                                     after.guest("server").counters, 5.0)
                        .bw_kbps;
  EXPECT_NEAR(rx, 320.0, 20.0);
  EXPECT_DOUBLE_EQ(t.cluster->dropped_kbits(), 0.0);
}

TEST(Migration, FailsWhenVmDestroyedMidCopy) {
  Testbed t;
  t.vm(*t.pm0, "vm1");
  MigrationConfig cfg;
  cfg.rate_kbps = 5000.0;  // slow
  const int id = t.cluster->migration().start("vm1", 0, 1, cfg);
  t.engine.run_for(seconds(2));
  EXPECT_TRUE(t.pm0->remove_vm("vm1"));
  t.engine.run_for(seconds(2));
  const MigrationStatus& st = t.cluster->migration().status(id);
  EXPECT_TRUE(st.done);
  EXPECT_TRUE(st.failed);
}

TEST(Migration, CompletionCallbackFires) {
  Testbed t;
  t.vm(*t.pm0, "vm1");
  int completed_id = -1;
  t.cluster->migration().on_complete([&](int id) { completed_id = id; });
  const int id = t.cluster->migration().start("vm1", 0, 1);
  t.engine.run_for(seconds(30));
  EXPECT_EQ(completed_id, id);
}

TEST(Migration, InvalidRequestsRejected) {
  Testbed t;
  t.vm(*t.pm0, "vm1");
  auto& mig = t.cluster->migration();
  EXPECT_THROW((void)mig.start("vm1", 0, 0), util::ContractViolation);
  EXPECT_THROW((void)mig.start("ghost", 0, 1), util::ContractViolation);
  EXPECT_THROW((void)mig.start("vm1", 0, 42), util::ContractViolation);
  t.vm(*t.pm1, "vm1x");
  (void)mig.start("vm1", 0, 1);
  EXPECT_THROW((void)mig.start("vm1", 0, 1), util::ContractViolation);
  EXPECT_THROW((void)mig.status(99), util::ContractViolation);
}

TEST(Migration, ExtractAdoptRoundTrip) {
  Testbed t;
  t.vm(*t.pm0, "vm1").attach(std::make_unique<wl::CpuHog>(30.0, 3));
  t.engine.run_for(seconds(2));
  std::unique_ptr<DomU> vm = t.pm0->extract_vm("vm1");
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(t.pm0->vm_count(), 0u);
  // Counters survive the move.
  EXPECT_GT(vm->counters().cpu_core_seconds, 0.0);
  t.pm1->adopt_vm(std::move(vm));
  EXPECT_EQ(t.pm1->vm_count(), 1u);
  t.engine.run_for(seconds(2));
  EXPECT_NEAR(t.pm1->last_granted_pct("vm1"), 30.0, 2.0);
  EXPECT_EQ(t.pm0->extract_vm("ghost"), nullptr);
}

}  // namespace
}  // namespace voprof::sim
