#include "voprof/util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::util {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Product) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), ContractViolation);
}

TEST(Matrix, IdentityIsNeutral) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ((a * i).max_abs_diff(a), 0.0);
  EXPECT_DOUBLE_EQ((i * a).max_abs_diff(a), 0.0);
}

TEST(Matrix, AddSubScale) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{3.0, 5.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4.0);
}

TEST(Matrix, MulVector) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v = {1.0, 1.0};
  const auto r = a.mul(v);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(SolveLinear, Solves3x3) {
  Matrix a = {{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
  const auto x = solve_linear(a, {8.0, -11.0, -3.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
  EXPECT_NEAR(x[2], -1.0, 1e-10);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), ContractViolation);
}

TEST(SolveLinear, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), ContractViolation);
}

TEST(LeastSquares, ExactSystemRecovered) {
  // Square full-rank system: least squares == exact solve.
  Matrix a = {{1.0, 1.0}, {1.0, 2.0}};
  const std::vector<double> b = {3.0, 5.0};
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedKnownFit) {
  // y = 2x fitted through (1,2.1),(2,3.9),(3,6.0): slope via x-only
  // design must match the closed form sum(xy)/sum(x^2).
  Matrix a(3, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 0) = 3.0;
  const std::vector<double> y = {2.1, 3.9, 6.0};
  const auto x = solve_least_squares(a, y);
  const double expected = (1 * 2.1 + 2 * 3.9 + 3 * 6.0) / (1.0 + 4.0 + 9.0);
  EXPECT_NEAR(x[0], expected, 1e-10);
}

TEST(LeastSquares, RecoversPlaneFromNoisyData) {
  Rng rng(5);
  const std::size_t n = 500;
  Matrix a(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(0, 10), x2 = rng.uniform(0, 5),
                 x3 = rng.uniform(-1, 1);
    a(i, 0) = x1;
    a(i, 1) = x2;
    a(i, 2) = x3;
    y[i] = 3.0 * x1 - 2.0 * x2 + 0.5 * x3 + rng.gaussian(0.0, 0.01);
  }
  const auto x = solve_least_squares(a, y);
  EXPECT_NEAR(x[0], 3.0, 0.01);
  EXPECT_NEAR(x[1], -2.0, 0.01);
  EXPECT_NEAR(x[2], 0.5, 0.01);
}

TEST(LeastSquares, RankDeficientThrows) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // collinear
  }
  const std::vector<double> y = {0.0, 1.0, 2.0, 3.0};
  EXPECT_THROW((void)solve_least_squares(a, y), ContractViolation);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  Matrix a(2, 3);
  EXPECT_THROW((void)solve_least_squares(a, std::vector<double>{1.0, 2.0}),
               ContractViolation);
}

TEST(DotNorm, Basics) {
  const std::vector<double> a = {1.0, 2.0, 2.0};
  const std::vector<double> b = {3.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_THROW((void)dot(a, std::vector<double>{1.0}), ContractViolation);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{1.5, -1.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
  Matrix c(2, 1);
  EXPECT_THROW((void)a.max_abs_diff(c), ContractViolation);
}

}  // namespace
}  // namespace voprof::util
