#include "voprof/placement/hotspot.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/core/trainer.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"

namespace voprof::place {
namespace {

using util::seconds;

class HotspotFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model::TrainerConfig c;
    c.duration = seconds(20.0);
    c.seed = 21;
    models_ = new model::TrainedModels(
        model::Trainer(c).train(model::RegressionMethod::kLms));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }
  static model::TrainedModels* models_;
};

model::TrainedModels* HotspotFixture::models_ = nullptr;

struct Bed {
  sim::Engine engine;
  std::unique_ptr<sim::Cluster> cluster;

  explicit Bed(std::uint64_t seed, int pms = 2) {
    cluster = std::make_unique<sim::Cluster>(engine, sim::CostModel{}, seed);
    for (int i = 0; i < pms; ++i) cluster->add_machine(sim::MachineSpec{});
  }
  sim::DomU& vm(int pm, const std::string& name, double cpu) {
    sim::VmSpec spec;
    spec.name = name;
    sim::DomU& v = cluster->machine(static_cast<std::size_t>(pm)).add_vm(spec);
    if (cpu > 0) {
      v.attach(std::make_unique<wl::CpuHog>(cpu, 99));
    }
    return v;
  }
};

TEST_F(HotspotFixture, DetectsAndMitigatesOverload) {
  Bed bed(5);
  // PM0: four hot VMs -> guest pool saturated, predicted PM CPU way
  // over threshold. PM1: empty.
  for (int i = 0; i < 4; ++i) {
    bed.vm(0, "hot" + std::to_string(i), 80.0);
  }
  HotspotConfig cfg;
  cfg.check_interval = seconds(5.0);
  cfg.cpu_threshold_pct = 200.0;
  HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1}, cfg);
  ctrl.start();
  bed.engine.run_for(seconds(120.0));
  ctrl.stop();

  EXPECT_GE(ctrl.migrations_triggered(), 1u);
  EXPECT_GE(bed.cluster->machine(1).vm_count(), 1u);
  // Balanced enough that neither PM stays above threshold.
  EXPECT_LE(ctrl.last_predicted_cpu(0), cfg.cpu_threshold_pct + 20.0);
  for (const auto& a : ctrl.actions()) {
    EXPECT_EQ(a.from_pm, 0);
    EXPECT_EQ(a.to_pm, 1);
    EXPECT_GT(a.predicted_cpu, cfg.cpu_threshold_pct);
  }
}

TEST_F(HotspotFixture, QuietClusterTriggersNothing) {
  Bed bed(6);
  bed.vm(0, "calm1", 20.0);
  bed.vm(1, "calm2", 20.0);
  HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1});
  ctrl.start();
  bed.engine.run_for(seconds(60.0));
  EXPECT_EQ(ctrl.migrations_triggered(), 0u);
}

TEST_F(HotspotFixture, AwareTriggersWhereUnawareDoesNot) {
  // Load where the raw VM sum sits below the threshold but the model
  // (adding Dom0 + hypervisor) is above it: three network-heavy VMs.
  auto build = [](Bed& bed) {
    for (int i = 0; i < 3; ++i) {
      sim::VmSpec spec;
      spec.name = "web" + std::to_string(i);
      sim::DomU& v = bed.cluster->machine(0).add_vm(spec);
      v.attach(std::make_unique<wl::CpuHog>(55.0, 7));
      v.attach(std::make_unique<wl::NetPing>(1280.0, sim::NetTarget{}, 8));
    }
  };
  HotspotConfig cfg;
  cfg.cpu_threshold_pct = 220.0;  // raw sum ~171 < 220 < modeled ~235
  cfg.check_interval = seconds(5.0);

  Bed aware_bed(7);
  build(aware_bed);
  cfg.overhead_aware = true;
  HotspotController aware(*aware_bed.cluster, &models_->multi, {0, 1}, cfg);
  aware.start();
  aware_bed.engine.run_for(seconds(60.0));

  Bed naive_bed(7);
  build(naive_bed);
  cfg.overhead_aware = false;
  HotspotController naive(*naive_bed.cluster, nullptr, {0, 1}, cfg);
  naive.start();
  naive_bed.engine.run_for(seconds(60.0));

  EXPECT_GE(aware.migrations_triggered(), 1u);
  EXPECT_EQ(naive.migrations_triggered(), 0u);
}

TEST_F(HotspotFixture, CooldownPreventsThrashing) {
  Bed bed(8);
  for (int i = 0; i < 4; ++i) bed.vm(0, "hot" + std::to_string(i), 90.0);
  HotspotConfig cfg;
  cfg.check_interval = seconds(2.0);
  cfg.cooldown = seconds(1000.0);  // each VM may move at most once
  HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1}, cfg);
  ctrl.start();
  bed.engine.run_for(seconds(120.0));
  EXPECT_LE(ctrl.migrations_triggered(), 4u);
}

TEST_F(HotspotFixture, RubisThroughputRecoversAfterMitigation) {
  auto run = [this](bool mitigate) {
    Bed bed(9, 3);  // 2 hosts + client machine
    // RUBiS web lands on PM0 with three 70 % hogs.
    rubis::DeployOptions opt;
    opt.clients = 500;
    const rubis::RubisInstance inst =
        rubis::deploy_rubis(*bed.cluster, 0, 1, 2, opt);
    for (int i = 0; i < 3; ++i) bed.vm(0, "hog" + std::to_string(i), 70.0);

    HotspotConfig cfg;
    cfg.check_interval = seconds(5.0);
    HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1}, cfg);
    if (mitigate) ctrl.start();
    bed.engine.run_for(seconds(90.0));  // mitigation happens in here
    const double mark = inst.client->completed();
    bed.engine.run_for(seconds(30.0));
    return (inst.client->completed() - mark) / 30.0;
  };
  const double without = run(false);
  const double with = run(true);
  EXPECT_GT(with, without * 1.1);  // >10 % throughput recovery
  EXPECT_GT(with, 90.0);           // close to the uncontended ~99 req/s
}

TEST_F(HotspotFixture, ConsolidationDrainsQuietFleet) {
  Bed bed(12, 3);
  // Three lightly loaded VMs spread over three PMs.
  bed.vm(0, "t1", 15.0);
  bed.vm(1, "t2", 15.0);
  bed.vm(2, "t3", 15.0);
  HotspotConfig cfg;
  cfg.check_interval = seconds(5.0);
  cfg.consolidate = true;
  cfg.consolidate_below_pct = 120.0;
  HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1, 2}, cfg);
  ctrl.start();
  bed.engine.run_for(seconds(180.0));
  ctrl.stop();
  // The fleet packs onto fewer hosts.
  int empty_hosts = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (bed.cluster->machine(i).vm_count() == 0) ++empty_hosts;
  }
  EXPECT_GE(empty_hosts, 1);
  bool saw_consolidation = false;
  for (const auto& a : ctrl.actions()) {
    if (a.kind == HotspotAction::Kind::kConsolidation) {
      saw_consolidation = true;
    }
  }
  EXPECT_TRUE(saw_consolidation);
}

TEST_F(HotspotFixture, ConsolidationRespectsThreshold) {
  Bed bed(13, 2);
  // Both PMs moderately loaded: packing them together would cross the
  // hotspot threshold, so consolidation must refuse.
  // Built via += to sidestep GCC 12's -Wrestrict false positive on
  // `const char* + std::string&&` (PR105329).
  for (int i = 0; i < 2; ++i) {
    std::string name = "a";
    name += std::to_string(i);
    bed.vm(0, name, 60.0);
  }
  for (int i = 0; i < 2; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    bed.vm(1, name, 60.0);
  }
  HotspotConfig cfg;
  cfg.check_interval = seconds(5.0);
  cfg.cpu_threshold_pct = 200.0;
  cfg.consolidate = true;
  cfg.consolidate_below_pct = 200.0;
  HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1}, cfg);
  ctrl.start();
  bed.engine.run_for(seconds(120.0));
  ctrl.stop();
  // 4 x 60 = 240 raw guest CPU + overhead > 200: no consolidation.
  EXPECT_EQ(bed.cluster->machine(0).vm_count(), 2u);
  EXPECT_EQ(bed.cluster->machine(1).vm_count(), 2u);
}

TEST_F(HotspotFixture, ConsolidationOffByDefault) {
  Bed bed(14, 2);
  bed.vm(0, "t1", 10.0);
  bed.vm(1, "t2", 10.0);
  HotspotController ctrl(*bed.cluster, &models_->multi, {0, 1});
  ctrl.start();
  bed.engine.run_for(seconds(60.0));
  EXPECT_EQ(ctrl.migrations_triggered(), 0u);
}

TEST_F(HotspotFixture, InvalidConstructionRejected) {
  Bed bed(10);
  EXPECT_THROW(HotspotController(*bed.cluster, &models_->multi, {}),
               util::ContractViolation);
  EXPECT_THROW(HotspotController(*bed.cluster, &models_->multi, {0, 42}),
               util::ContractViolation);
  HotspotConfig aware_cfg;
  aware_cfg.overhead_aware = true;
  EXPECT_THROW(HotspotController(*bed.cluster, nullptr, {0, 1}, aware_cfg),
               util::ContractViolation);
  HotspotController ok(*bed.cluster, &models_->multi, {0, 1});
  ok.start();
  EXPECT_THROW(ok.start(), util::ContractViolation);
}

}  // namespace
}  // namespace voprof::place
