/// Edge cases across modules that the mainline tests don't reach:
/// unusual monitor intervals, predictor denominators, placement
/// bandwidth constraints, forced placements, odd engine tick spans.

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/placement/evaluation.hpp"
#include "voprof/placement/placer.hpp"
#include "voprof/util/rng.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof {
namespace {

using util::milliseconds;
using util::seconds;

TEST(MonitorEdge, NonDefaultSamplingInterval) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 7);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(std::make_unique<wl::CpuHog>(50.0, 9));
  mon::MonitorConfig cfg;
  cfg.interval = seconds(5.0);
  mon::MonitorScript mon(engine, pm, cfg);
  const auto& report = mon.measure(seconds(60));
  EXPECT_EQ(report.sample_count(), 12u);
  EXPECT_NEAR(report.mean("vm1").cpu_pct, 50.0, 1.0);
}

TEST(MonitorEdge, SubSecondInterval) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 8);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec);
  mon::MonitorConfig cfg;
  cfg.interval = milliseconds(100);
  mon::MonitorScript mon(engine, pm, cfg);
  const auto& report = mon.measure(seconds(2));
  EXPECT_EQ(report.sample_count(), 20u);
}

TEST(MonitorEdge, ZeroIntervalRejected) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 9);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  mon::MonitorConfig cfg;
  cfg.interval = 0;
  EXPECT_THROW(mon::MonitorScript(engine, pm, cfg), util::ContractViolation);
}

TEST(PredictorEdge, MinDenominatorSkipsNearZeroMetrics) {
  // An idle VM has ~zero I/O and BW: relative errors there would blow
  // up; the evaluator must skip those samples rather than divide.
  model::TrainerConfig cfg;
  cfg.duration = seconds(10.0);
  cfg.seed = 11;
  const model::TrainedModels models =
      model::Trainer(cfg).train(model::RegressionMethod::kLms);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 13);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "idle";
  pm.add_vm(spec);
  mon::MonitorScript mon(engine, pm);
  mon.start();
  engine.run_for(seconds(20));
  mon.stop();
  const model::Predictor predictor(models.multi);
  const model::PredictionEval eval =
      predictor.evaluate(mon.report(), {"idle"}, /*min_denominator=*/1.0);
  // VM BW is zero -> PM BW is only background ~2 Kb/s: samples kept
  // (above 1.0) but CPU of the idle VM (~0.05 %) is below: the *VM*
  // metric does not matter, only the measured PM series gates.
  EXPECT_EQ(eval.of(model::MetricIndex::kCpu).predicted.size(), 20u);
  // Every retained error is finite and sane.
  for (const auto& m : eval.metrics) {
    for (double e : m.errors_pct) {
      EXPECT_GE(e, 0.0);
      EXPECT_LT(e, 500.0);
    }
  }
}

TEST(PlacerEdge, BandwidthConstraintRejects) {
  model::TrainingSet data;
  util::Rng rng(5);
  for (int n : {1, 2}) {
    for (int i = 0; i < 100; ++i) {
      model::TrainingRow r;
      r.n_vms = n;
      r.vm_sum = model::UtilVec{rng.uniform(0, 100.0 * n),
                                rng.uniform(80, 140.0 * n),
                                rng.uniform(0, 90.0 * n),
                                rng.uniform(0, 1280.0 * n)};
      r.dom0_cpu = 16.8 + 0.0105 * r.vm_sum.bw;
      r.hyp_cpu = 3.0;
      r.pm = model::UtilVec{r.vm_sum.cpu + r.dom0_cpu + 3.0, 752, 18.8,
                            r.vm_sum.bw * 1.003};
      data.add(r);
    }
  }
  const model::TrainedModels models =
      model::Trainer::fit_models(std::move(data),
                                 model::RegressionMethod::kOls);
  place::PlacerConfig cfg;
  cfg.overhead_aware = true;
  cfg.bw_capacity_frac = 0.5;      // 500 Mb/s ceiling on the gigabit NIC
  cfg.voa_cpu_capacity_pct = 1e9;  // isolate the bandwidth check
  const place::Placer placer(cfg, &models.multi);
  place::PmState pm;
  pm.spec = sim::MachineSpec{};
  // Bandwidth above the ceiling: rejected on BW alone.
  EXPECT_FALSE(placer.fits(pm, model::UtilVec{5, 100, 0, 6.0e5}, 256.0));
  EXPECT_TRUE(placer.fits(pm, model::UtilVec{5, 100, 0, 4.0e5}, 256.0));
}

TEST(EngineEdge, RunUntilShorterThanTick) {
  sim::Engine engine(milliseconds(10));
  struct L final : sim::TickListener {
    double total = 0.0;
    void tick(util::SimMicros, double dt) override { total += dt; }
  } l;
  engine.add_listener(&l);
  engine.run_for(milliseconds(3));  // sub-tick advance
  EXPECT_NEAR(l.total, 0.003, 1e-12);
  engine.run_for(milliseconds(3));
  EXPECT_NEAR(l.total, 0.006, 1e-12);
  EXPECT_EQ(engine.now(), milliseconds(6));
}

TEST(EngineEdge, ZeroDurationRunIsNoop) {
  sim::Engine engine;
  engine.run_for(0);
  EXPECT_EQ(engine.now(), 0);
}

TEST(ClusterEdge, SelfAddressedInterPmFlowDelivered) {
  // A flow addressed to a VM on the *same* PM via its own pm_id is
  // bridge-local and must not cross the fabric.
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 17);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec a;
  a.name = "a";
  sim::DomU& sender = pm.add_vm(a);
  sim::VmSpec b;
  b.name = "b";
  pm.add_vm(b);
  sender.attach(std::make_unique<wl::NetPing>(
      100.0, sim::NetTarget{pm.id(), "b"}, 19));
  engine.run_for(seconds(5));
  EXPECT_DOUBLE_EQ(cluster.fabric().switched_kbits(), 0.0);
  EXPECT_NEAR(pm.find_vm("b")->counters().rx_kbits, 500.0, 25.0);
}

TEST(TrainerEdge, CustomVmSpecPropagates) {
  model::TrainerConfig cfg;
  cfg.duration = seconds(5.0);
  cfg.vm.io_cap_blocks_per_s = 20.0;  // tighter than Table II's top level
  cfg.vm_counts = {1};
  cfg.kinds = {wl::WorkloadKind::kIo};
  const model::Trainer trainer(cfg);
  const model::TrainingSet run =
      trainer.collect_run(wl::WorkloadKind::kIo, 4, 1);  // 72 blk/s asked
  for (const auto& r : run.rows()) {
    EXPECT_LE(r.vm_sum.io, 21.0);  // frontend cap enforced
  }
}

TEST(EvaluationEdge, ForcedPlacementReported) {
  // Machines too small for even one VM: the placer must fall back and
  // flag it.
  model::TrainerConfig tcfg;
  tcfg.duration = seconds(10.0);
  tcfg.seed = 23;
  const model::TrainedModels models =
      model::Trainer(tcfg).train(model::RegressionMethod::kLms);
  place::EvalConfig cfg;
  cfg.repetitions = 1;
  cfg.warmup = seconds(2.0);
  cfg.run_duration = seconds(5.0);
  cfg.machine.mem_mib = 900.0;  // Dom0 (752) + headroom < 1 VM of 256
  const place::PlacementEvaluation eval(cfg, &models.multi);
  const place::RunResult r = eval.run_once(0, true, 1);
  EXPECT_TRUE(r.forced_placement);
}

TEST(HogEdge, WorkloadValueFactoryOutOfTableRange) {
  // make_workload_value accepts arbitrary intensities (not just
  // Table II levels) — used by the capacity planner and profiling.
  const auto hog =
      wl::make_workload_value(wl::WorkloadKind::kBw, 5000.0,
                              sim::NetTarget{}, 3);
  const sim::ProcessDemand d = hog->demand(0, 0.01);
  ASSERT_EQ(d.flows.size(), 1u);
  EXPECT_NEAR(d.flows[0].kbits, 50.0, 1e-9);
}

}  // namespace
}  // namespace voprof
