// voprof-lint self-test: the masking scanner, every rule (positive and
// near-miss negative cases), the fixture tree under tests/lint_fixtures
// (must fail), and the repository itself (must be clean — this is the
// zero-findings baseline CI enforces).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"

#ifndef VOPROF_LINT_FIXTURE_DIR
#error "VOPROF_LINT_FIXTURE_DIR must be defined by the build"
#endif
#ifndef VOPROF_LINT_REPO_ROOT
#error "VOPROF_LINT_REPO_ROOT must be defined by the build"
#endif

namespace {

using voprof::lint::Finding;
using voprof::lint::lint_file_content;
using voprof::lint::lint_tree;
using voprof::lint::LintReport;
using voprof::lint::mask_comments_and_strings;

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

TEST(Mask, StripsLineAndBlockComments) {
  const std::string masked =
      mask_comments_and_strings("int a; // rand()\nint /* float */ b;\n");
  EXPECT_EQ(masked.find("rand"), std::string::npos);
  EXPECT_EQ(masked.find("float"), std::string::npos);
  EXPECT_NE(masked.find("int a;"), std::string::npos);
  EXPECT_NE(masked.find("b;"), std::string::npos);
}

TEST(Mask, StripsStringAndCharLiteralsButKeepsLines) {
  const std::string masked = mask_comments_and_strings(
      "auto s = \"assert( in string\";\nchar c = '\\\"';\nint x;\n");
  EXPECT_EQ(masked.find("assert"), std::string::npos);
  EXPECT_NE(masked.find("int x;"), std::string::npos);
  EXPECT_EQ(std::count(masked.begin(), masked.end(), '\n'), 3);
}

TEST(Mask, StripsRawStrings) {
  const std::string masked = mask_comments_and_strings(
      "auto s = R\"(rand() and float)\";\nint keep;\n");
  EXPECT_EQ(masked.find("rand"), std::string::npos);
  EXPECT_EQ(masked.find("float"), std::string::npos);
  EXPECT_NE(masked.find("int keep;"), std::string::npos);
}

TEST(Rules, NakedAssertFlaggedOutsideTests) {
  const auto findings = lint_file_content(
      "src/util/x.cpp", "#include <cassert>\nvoid f() { assert(true); }\n");
  EXPECT_EQ(count_rule(findings, "naked-assert"), 2U);
}

TEST(Rules, AssertAllowedInTests) {
  const auto findings = lint_file_content(
      "tests/test_x.cpp", "#include <cassert>\nvoid f() { assert(true); }\n");
  EXPECT_EQ(count_rule(findings, "naked-assert"), 0U);
}

TEST(Rules, StaticAssertAndNamedAssertAreNotFlagged) {
  const auto findings = lint_file_content(
      "src/util/x.cpp",
      "static_assert(true);\nvoid my_assert(bool);\nvoid g() { "
      "my_assert(true); }\n");
  EXPECT_EQ(count_rule(findings, "naked-assert"), 0U);
}

TEST(Rules, FloatFlaggedOnlyInModelEngineCode) {
  const std::string body = "double f(float x) { return x; }\n";
  EXPECT_EQ(count_rule(lint_file_content("src/core/x.cpp", body),
                       "float-in-model"),
            1U);
  EXPECT_EQ(count_rule(lint_file_content("include/voprof/xensim/x.hpp",
                                         "#pragma once\n" + body),
            "float-in-model"),
            1U);
  EXPECT_EQ(count_rule(lint_file_content("src/util/x.cpp", body),
                       "float-in-model"),
            0U);
}

TEST(Rules, FloatInIdentifierNotFlagged) {
  const auto findings = lint_file_content(
      "src/core/x.cpp", "int floaty = 1; int a_float_b = 2;\n");
  EXPECT_EQ(count_rule(findings, "float-in-model"), 0U);
}

TEST(Rules, CoutFlaggedInLibraryCodeOnly) {
  const std::string body = "#include <iostream>\nvoid p() { std::cout; }\n";
  EXPECT_EQ(count_rule(lint_file_content("src/xensim/x.cpp", body),
                       "cout-in-library"),
            1U);
  EXPECT_EQ(count_rule(lint_file_content("tools/voprofctl.cpp", body),
                       "cout-in-library"),
            0U);
}

TEST(Rules, RawRandFlaggedEverywhereIncludingQualified) {
  EXPECT_EQ(count_rule(lint_file_content("bench/x.cpp",
                                         "int r = rand();\nsrand(1);\n"),
                       "raw-rand"),
            2U);
  EXPECT_EQ(count_rule(lint_file_content("src/util/x.cpp",
                                         "int r = std::rand();\n"),
                       "raw-rand"),
            1U);
}

TEST(Rules, RawThreadFlaggedOutsideTaskPool) {
  const std::string body = "#include <thread>\nstd::thread t([] {});\n";
  EXPECT_EQ(count_rule(lint_file_content("src/core/x.cpp", body),
                       "raw-thread"),
            1U);
  EXPECT_EQ(count_rule(lint_file_content("bench/x.cpp",
                                         "std::jthread t([] {});\n"),
                       "raw-thread"),
            1U);
  // The pool implementation itself is the one sanctioned home.
  EXPECT_EQ(count_rule(lint_file_content("src/util/task_pool.cpp", body),
                       "raw-thread"),
            0U);
  EXPECT_EQ(count_rule(lint_file_content(
                           "include/voprof/util/task_pool.hpp",
                           "#pragma once\nstd::vector<std::thread> w;\n"),
                       "raw-thread"),
            0U);
}

TEST(Rules, StaticThreadQueriesNotFlagged) {
  const auto findings = lint_file_content(
      "src/core/x.cpp",
      "auto n = std::thread::hardware_concurrency();\n"
      "auto id = std::this_thread::get_id();\n"
      "int threads = 3;\n");
  EXPECT_EQ(count_rule(findings, "raw-thread"), 0U);
}

TEST(Rules, SteadyClockFlaggedOutsideBenchObsTests) {
  const std::string body =
      "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_file_content("src/core/x.cpp", body),
                       "raw-steady-clock"),
            1U);
  EXPECT_EQ(count_rule(lint_file_content("tools/x.cpp", body),
                       "raw-steady-clock"),
            1U);
  // bench/, the obs implementation and tests are the sanctioned homes.
  EXPECT_EQ(count_rule(lint_file_content("bench/x.cpp", body),
                       "raw-steady-clock"),
            0U);
  EXPECT_EQ(count_rule(lint_file_content("src/obs/trace.cpp", body),
                       "raw-steady-clock"),
            0U);
  EXPECT_EQ(count_rule(lint_file_content("include/voprof/obs/trace.hpp",
                                         "#pragma once\n" + body),
                       "raw-steady-clock"),
            0U);
  EXPECT_EQ(count_rule(lint_file_content("tests/test_x.cpp", body),
                       "raw-steady-clock"),
            0U);
  // Other clocks and mere mentions of the type do not fire.
  EXPECT_EQ(count_rule(lint_file_content(
                           "src/core/x.cpp",
                           "auto t = std::chrono::system_clock::now();\n"
                           "using clock = std::chrono::steady_clock;\n"),
                       "raw-steady-clock"),
            0U);
}

TEST(Rules, MemberRandNotFlagged) {
  const auto findings = lint_file_content(
      "src/util/x.cpp", "int r = rng.rand();\nint q = gen->rand();\n");
  EXPECT_EQ(count_rule(findings, "raw-rand"), 0U);
}

TEST(Rules, HeaderGuardAcceptsPragmaOnceAndClassicGuard) {
  EXPECT_EQ(count_rule(lint_file_content("include/voprof/util/a.hpp",
                                         "#pragma once\nint x;\n"),
                       "header-guard"),
            0U);
  EXPECT_EQ(count_rule(lint_file_content(
                           "include/voprof/util/b.hpp",
                           "#ifndef VOPROF_B_HPP\n#define VOPROF_B_HPP\nint "
                           "x;\n#endif\n"),
                       "header-guard"),
            0U);
  // Leading comment before the pragma is fine (the repo's style).
  EXPECT_EQ(count_rule(lint_file_content("include/voprof/util/c.hpp",
                                         "// (c) header\n#pragma once\nint "
                                         "x;\n"),
                       "header-guard"),
            0U);
}

TEST(Rules, HeaderGuardRejectsUnguardedAndMismatchedGuard) {
  EXPECT_EQ(count_rule(lint_file_content("include/voprof/util/a.hpp",
                                         "int x;\n"),
                       "header-guard"),
            1U);
  EXPECT_EQ(count_rule(lint_file_content(
                           "include/voprof/util/b.hpp",
                           "#ifndef GUARD_A\n#define GUARD_B\nint x;\n"),
                       "header-guard"),
            1U);
}

TEST(Fixtures, TreeFailsWithEveryExpectedRule) {
  const LintReport report = lint_tree(VOPROF_LINT_FIXTURE_DIR);
  EXPECT_FALSE(report.clean());
  // One bad file per rule, plus clean decoys that must not fire.
  EXPECT_EQ(count_rule(report.findings, "float-in-model"), 3U);
  EXPECT_EQ(count_rule(report.findings, "cout-in-library"), 1U);
  EXPECT_EQ(count_rule(report.findings, "naked-assert"), 2U);
  EXPECT_EQ(count_rule(report.findings, "header-guard"), 1U);
  EXPECT_EQ(count_rule(report.findings, "raw-rand"), 2U);
  EXPECT_EQ(count_rule(report.findings, "raw-thread"), 1U);
  EXPECT_EQ(count_rule(report.findings, "raw-steady-clock"), 1U);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.file.find("good_"), std::string::npos) << f.format();
    EXPECT_EQ(f.file.find("clean_"), std::string::npos) << f.format();
  }
}

TEST(Fixtures, FindingsCarryLocationAndFormat) {
  const LintReport report = lint_tree(VOPROF_LINT_FIXTURE_DIR);
  ASSERT_FALSE(report.findings.empty());
  for (const Finding& f : report.findings) {
    EXPECT_FALSE(f.file.empty());
    EXPECT_GT(f.line, 0U);
    const std::string s = f.format();
    EXPECT_NE(s.find(f.rule), std::string::npos);
    EXPECT_NE(s.find(':'), std::string::npos);
  }
}

TEST(Repo, IsLintClean) {
  const LintReport report = lint_tree(VOPROF_LINT_REPO_ROOT);
  EXPECT_GT(report.files_scanned, 100U);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.format();
  }
}

TEST(Tree, ThrowsOnMissingDirectory) {
  EXPECT_THROW((void)lint_tree("/nonexistent/voprof-lint-root"),
               std::runtime_error);
}

}  // namespace
