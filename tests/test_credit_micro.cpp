#include "voprof/xensim/credit_micro.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/sample.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::sim {
namespace {

using util::seconds;

std::vector<SchedRequest> demands(std::initializer_list<double> d) {
  std::vector<SchedRequest> out;
  for (double v : d) out.push_back(SchedRequest{v, 100.0, 1.0});
  return out;
}

/// Average grant over `ticks` 10 ms ticks.
std::vector<double> average_grants(MicroCreditScheduler& sched,
                                   const std::vector<SchedRequest>& reqs,
                                   int ticks) {
  std::vector<double> avg(reqs.size(), 0.0);
  for (int t = 0; t < ticks; ++t) {
    const SchedResult r = sched.tick(reqs, 0.01);
    for (std::size_t i = 0; i < reqs.size(); ++i) avg[i] += r.granted_pct[i];
  }
  for (double& v : avg) v /= ticks;
  return avg;
}

TEST(MicroCredit, SingleVcpuGetsDemand) {
  MicroCreditScheduler sched(2, 0.95);
  const auto avg = average_grants(sched, demands({60.0}), 100);
  EXPECT_NEAR(avg[0], 60.0, 0.5);
}

TEST(MicroCredit, TwoSaturatedVcpusAverage95) {
  // Fig. 3(a)'s saturation through the discrete algorithm.
  MicroCreditScheduler sched(2, 0.95);
  const auto avg = average_grants(sched, demands({100.0, 100.0}), 100);
  EXPECT_NEAR(avg[0], 95.0, 1.0);
  EXPECT_NEAR(avg[1], 95.0, 1.0);
}

TEST(MicroCredit, FourSaturatedVcpusAverage47) {
  // Fig. 4(a): only two run per tick, credits rotate the pairs, and
  // the 1 s average converges to the fair share.
  MicroCreditScheduler sched(2, 0.95);
  const auto avg =
      average_grants(sched, demands({100.0, 100.0, 100.0, 100.0}), 300);
  for (double v : avg) EXPECT_NEAR(v, 47.5, 2.5);
}

TEST(MicroCredit, PerTickGrantsAreDiscrete) {
  // Unlike the macro model, a tick grants whole core-slices: with 4
  // saturated VCPUs on 2 cores, exactly 2 run per tick.
  MicroCreditScheduler sched(2, 0.95);
  const auto reqs = demands({100.0, 100.0, 100.0, 100.0});
  (void)sched.tick(reqs, 0.01);  // settle
  const SchedResult r = sched.tick(reqs, 0.01);
  int running = 0;
  for (double g : r.granted_pct) {
    if (g > 1.0) ++running;
  }
  EXPECT_EQ(running, 2);
  EXPECT_TRUE(r.contended);
}

TEST(MicroCredit, WeightsSkewLongRunShares) {
  MicroCreditScheduler sched(1, 1.0);
  std::vector<SchedRequest> reqs = {{100.0, 100.0, 3.0},
                                    {100.0, 100.0, 1.0}};
  std::vector<double> avg(2, 0.0);
  const int ticks = 600;
  for (int t = 0; t < ticks; ++t) {
    const SchedResult r = sched.tick(reqs, 0.01);
    avg[0] += r.granted_pct[0];
    avg[1] += r.granted_pct[1];
  }
  EXPECT_NEAR(avg[0] / ticks, 75.0, 4.0);
  EXPECT_NEAR(avg[1] / ticks, 25.0, 4.0);
}

TEST(MicroCredit, WorkConservingSlackSpills) {
  MicroCreditScheduler sched(2, 0.95);
  const auto avg = average_grants(sched, demands({10.0, 100.0, 100.0}), 200);
  EXPECT_NEAR(avg[0], 10.0, 0.5);
  // Remaining 180 split between the heavy pair.
  EXPECT_NEAR(avg[1] + avg[2], 180.0, 3.0);
}

TEST(MicroCredit, IdlerAccumulatesCreditsAndBursts) {
  MicroCreditScheduler sched(1, 1.0);
  std::vector<SchedRequest> idle_phase = {{0.0, 100.0, 1.0},
                                          {100.0, 100.0, 1.0}};
  for (int t = 0; t < 30; ++t) (void)sched.tick(idle_phase, 0.01);
  // VCPU 0 idled for 300 ms: it holds more credits than the runner...
  EXPECT_GT(sched.credits(0), sched.credits(1));
  // ...so when it wakes it wins the core immediately.
  std::vector<SchedRequest> both = {{100.0, 100.0, 1.0},
                                    {100.0, 100.0, 1.0}};
  const SchedResult r = sched.tick(both, 0.01);
  EXPECT_GT(r.granted_pct[0], 90.0);
  EXPECT_LT(r.granted_pct[1], 10.0);
}

TEST(MicroCredit, CreditBalanceIsClamped) {
  MicroCreditScheduler sched(1, 1.0);
  std::vector<SchedRequest> idle = {{0.0, 100.0, 1.0}, {100.0, 100.0, 1.0}};
  for (int t = 0; t < 3000; ++t) (void)sched.tick(idle, 0.01);  // 30 s idle
  const double cap = MicroCreditScheduler::kBalanceCapPeriods *
                     MicroCreditScheduler::kCreditsPerCoreSecond *
                     MicroCreditScheduler::kAccountingPeriodS / 2.0;
  EXPECT_LE(sched.credits(0), cap + 1e-9);
}

TEST(MicroCredit, PopulationChangeResetsState) {
  MicroCreditScheduler sched(2, 0.95);
  (void)sched.tick(demands({50.0, 50.0}), 0.01);
  const SchedResult r = sched.tick(demands({50.0, 50.0, 50.0}), 0.01);
  EXPECT_EQ(r.granted_pct.size(), 3u);
}

TEST(MicroCredit, RejectsBadInputs) {
  EXPECT_THROW(MicroCreditScheduler(0, 0.95), util::ContractViolation);
  EXPECT_THROW(MicroCreditScheduler(2, 0.0), util::ContractViolation);
  MicroCreditScheduler sched(2, 0.95);
  EXPECT_THROW((void)sched.tick(demands({50.0}), 0.0),
               util::ContractViolation);
  EXPECT_THROW((void)sched.credits(5), util::ContractViolation);
}

// --------------------------------------- machine-level fidelity check
TEST(MicroCredit, MachineAveragesMatchMacroScheduler) {
  // The paper-anchored figures must not depend on the scheduler
  // implementation: 1 s averages agree between macro and micro modes.
  auto measure = [](SchedulerMode mode) {
    Engine engine;
    Cluster cluster(engine, CostModel{}, 7);
    MachineSpec spec;
    spec.scheduler = mode;
    PhysicalMachine& pm = cluster.add_machine(spec);
    for (int i = 0; i < 4; ++i) {
      VmSpec vm;
      vm.name = "vm" + std::to_string(i);
      pm.add_vm(vm).attach(
          std::make_unique<wl::CpuHog>(100.0, 5 + static_cast<std::uint64_t>(i)));
    }
    const MachineSnapshot b = pm.snapshot(engine.now());
    engine.run_for(seconds(30));
    const MachineSnapshot a = pm.snapshot(engine.now());
    return mon::domain_util(b.guests[0].counters, a.guests[0].counters, 30)
        .cpu_pct;
  };
  const double macro = measure(SchedulerMode::kMacro);
  const double micro = measure(SchedulerMode::kMicro);
  EXPECT_NEAR(macro, 47.5, 1.0);
  EXPECT_NEAR(micro, macro, 2.0);
}

}  // namespace
}  // namespace voprof::sim
