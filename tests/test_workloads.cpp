#include <gtest/gtest.h>

#include <memory>

#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/levels.hpp"

namespace voprof::wl {
namespace {

TEST(CpuHog, DemandTracksTarget) {
  CpuHog hog(60.0, 1);
  double sum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) sum += hog.demand(0, 0.01).cpu_pct;
  EXPECT_NEAR(sum / n, 60.0, 0.2);
}

TEST(CpuHog, DemandStaysInRange) {
  CpuHog hog(99.9, 1);
  for (int i = 0; i < 1000; ++i) {
    const double d = hog.demand(0, 0.01).cpu_pct;
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 100.0);
  }
}

TEST(CpuHog, SetTargetChangesDemand) {
  CpuHog hog(10.0, 1);
  hog.set_target_pct(80.0);
  EXPECT_DOUBLE_EQ(hog.target_pct(), 80.0);
  EXPECT_NEAR(hog.demand(0, 0.01).cpu_pct, 80.0, 3.0);
  EXPECT_THROW(hog.set_target_pct(150.0), util::ContractViolation);
}

TEST(CpuHog, RejectsOutOfRangeTarget) {
  EXPECT_THROW(CpuHog(-1.0), util::ContractViolation);
  EXPECT_THROW(CpuHog(101.0), util::ContractViolation);
}

TEST(MemHog, HoldsResidentAllocation) {
  MemHog hog(50.0, 2);
  const sim::ProcessDemand d = hog.demand(0, 0.01);
  EXPECT_DOUBLE_EQ(d.mem_mib, 50.0);
  EXPECT_LT(d.cpu_pct, 0.5);  // memory workload barely uses CPU
  EXPECT_DOUBLE_EQ(d.io_blocks, 0.0);
  EXPECT_TRUE(d.flows.empty());
}

TEST(IoHog, SubmitsBlocksAtRate) {
  IoHog hog(46.0, 3);
  double blocks = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) blocks += hog.demand(0, 0.01).io_blocks;
  EXPECT_NEAR(blocks / (n * 0.01), 46.0, 0.5);
}

TEST(IoHog, PumpCpuMatchesFig2c) {
  // 0.84 % at the top Table II level of 72 blocks/s.
  EXPECT_NEAR(IoHog::pump_cpu_pct(72.0), 0.84, 1e-9);
  EXPECT_NEAR(IoHog::pump_cpu_pct(0.0), 0.7, 1e-9);
}

TEST(NetPing, EmitsFlowAtRate) {
  NetPing ping(640.0, sim::NetTarget{}, 4);
  double kbits = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const sim::ProcessDemand d = ping.demand(0, 0.01);
    for (const auto& f : d.flows) kbits += f.kbits;
  }
  EXPECT_NEAR(kbits / (n * 0.01), 640.0, 1.0);
}

TEST(NetPing, ZeroRateEmitsNoFlow) {
  NetPing ping(0.0, sim::NetTarget{}, 4);
  EXPECT_TRUE(ping.demand(0, 0.01).flows.empty());
}

TEST(NetPing, PumpCpuMatchesFig2e) {
  EXPECT_NEAR(NetPing::pump_cpu_pct(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NetPing::pump_cpu_pct(1280.0), 3.0, 0.01);
}

TEST(NetPing, CarriesTarget) {
  const sim::NetTarget t{3, "peer"};
  NetPing ping(100.0, t, 4);
  const sim::ProcessDemand d = ping.demand(0, 0.01);
  ASSERT_EQ(d.flows.size(), 1u);
  EXPECT_EQ(d.flows[0].target.pm_id, 3);
  EXPECT_EQ(d.flows[0].target.vm_name, "peer");
}

TEST(Levels, TableIIValues) {
  EXPECT_DOUBLE_EQ(level_value(WorkloadKind::kCpu, 0), 1.0);
  EXPECT_DOUBLE_EQ(level_value(WorkloadKind::kCpu, 4), 99.0);
  EXPECT_DOUBLE_EQ(level_value(WorkloadKind::kMem, 4), 50.0);
  EXPECT_DOUBLE_EQ(level_value(WorkloadKind::kIo, 2), 27.0);
  EXPECT_DOUBLE_EQ(level_value(WorkloadKind::kBw, 4), 1280.0);
  EXPECT_THROW((void)level_value(WorkloadKind::kCpu, 5),
               util::ContractViolation);
}

TEST(Levels, NamesAndUnits) {
  EXPECT_EQ(kind_name(WorkloadKind::kCpu), "CPU-intensive");
  EXPECT_EQ(kind_unit(WorkloadKind::kIo), "blocks/s");
  EXPECT_EQ(kind_unit(WorkloadKind::kBw), "Kb/s");
}

/// Parametric factory check over the whole Table II grid.
class FactorySweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(FactorySweep, BuildsWorkloadWithMatchingBehaviour) {
  const auto kind = static_cast<WorkloadKind>(std::get<0>(GetParam()));
  const std::size_t level = std::get<1>(GetParam());
  const auto w = make_workload(kind, level, sim::NetTarget{}, 5);
  ASSERT_NE(w, nullptr);
  const sim::ProcessDemand d = w->demand(0, 0.01);
  const double v = level_value(kind, level);
  switch (kind) {
    case WorkloadKind::kCpu:
      EXPECT_NEAR(d.cpu_pct, v, 3.0);
      break;
    case WorkloadKind::kMem:
      EXPECT_DOUBLE_EQ(d.mem_mib, v);
      break;
    case WorkloadKind::kIo:
      EXPECT_NEAR(d.io_blocks / 0.01, v, v * 0.2 + 0.5);
      break;
    case WorkloadKind::kBw: {
      double kbits = 0.0;
      for (const auto& f : d.flows) kbits += f.kbits;
      EXPECT_NEAR(kbits / 0.01, v, v * 0.2 + 0.1);
      break;
    }
  }
  EXPECT_FALSE(w->label().empty());
}

INSTANTIATE_TEST_SUITE_P(
    TableII, FactorySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace voprof::wl
