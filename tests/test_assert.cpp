// Contract-macro behavior: VOPROF_REQUIRE / VOPROF_REQUIRE_MSG always
// throw ContractViolation with file:line context; VOPROF_ASSERT is an
// internal invariant compiled out under NDEBUG (so Release builds pay
// nothing for it — the tier-1 RelWithDebInfo build exercises exactly
// that compiled-out path, Debug/sanitizer builds the active one).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "voprof/util/assert.hpp"

namespace {

using voprof::util::ContractViolation;

TEST(Require, PassesOnTrue) {
  EXPECT_NO_THROW(VOPROF_REQUIRE(1 + 1 == 2));
}

TEST(Require, ThrowsContractViolationOnFalse) {
  EXPECT_THROW(VOPROF_REQUIRE(false), ContractViolation);
}

TEST(Require, IsALogicError) {
  // Existing call sites catch std::logic_error; the hierarchy is API.
  EXPECT_THROW(VOPROF_REQUIRE(false), std::logic_error);
}

TEST(Require, MessageCarriesExpressionFileAndLine) {
  try {
    VOPROF_REQUIRE(2 < 1);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos) << what;
    // A line number follows the file name as ":<digits>".
    const std::size_t colon = what.rfind(':');
    ASSERT_NE(colon, std::string::npos);
  }
}

TEST(RequireMsg, AppendsExplanatoryMessage) {
  try {
    VOPROF_REQUIRE_MSG(false, "tick period must be positive");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tick period must be positive"), std::string::npos)
        << what;
  }
}

TEST(RequireMsg, AcceptsStdStringMessage) {
  const std::string msg = "built at runtime";
  try {
    VOPROF_REQUIRE_MSG(false, msg);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(msg), std::string::npos);
  }
}

TEST(RequireMsg, SideEffectsInConditionRunExactlyOnce) {
  int calls = 0;
  const auto bump = [&calls]() {
    ++calls;
    return true;
  };
  VOPROF_REQUIRE_MSG(bump(), "must not double-evaluate");
  EXPECT_EQ(calls, 1);
}

TEST(Assert, PassesOnTrue) { EXPECT_NO_THROW(VOPROF_ASSERT(true)); }

TEST(Assert, CompiledOutUnderNdebugActiveOtherwise) {
#ifdef NDEBUG
  // Release: the macro expands to ((void)0); the condition is not
  // evaluated at all, let alone enforced.
  EXPECT_NO_THROW(VOPROF_ASSERT(false));
#else
  EXPECT_THROW(VOPROF_ASSERT(false), ContractViolation);
#endif
}

TEST(Assert, ConditionNotEvaluatedUnderNdebug) {
  int calls = 0;
  const auto bump = [&calls]() {
    ++calls;
    return true;
  };
  (void)bump;  // referenced only when VOPROF_ASSERT is active
  VOPROF_ASSERT(bump());
#ifdef NDEBUG
  EXPECT_EQ(calls, 0);
#else
  EXPECT_EQ(calls, 1);
#endif
}

TEST(ContractFailure, FormatsKindExpressionAndLocation) {
  try {
    voprof::util::contract_failure("invariant", "x >= 0", "engine.cpp", 42,
                                   "negative utilization");
    FAIL() << "contract_failure must not return";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant failed"), std::string::npos) << what;
    EXPECT_NE(what.find("(x >= 0)"), std::string::npos) << what;
    EXPECT_NE(what.find("engine.cpp:42"), std::string::npos) << what;
    EXPECT_NE(what.find("negative utilization"), std::string::npos) << what;
  }
}

TEST(ContractFailure, OmitsColonWhenMessageEmpty) {
  try {
    voprof::util::contract_failure("precondition", "ok", "f.cpp", 7, "");
    FAIL() << "contract_failure must not return";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("f.cpp:7"), std::string::npos) << what;
    EXPECT_EQ(what.find("f.cpp:7:"), std::string::npos) << what;
  }
}

}  // namespace
