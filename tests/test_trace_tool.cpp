// `voprofctl trace` digestion (tools/trace_cmd): aggregation of a
// collector-produced document, schema rejection of foreign JSON, and
// the rendered summary/top/export forms.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace_cmd.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/json.hpp"

namespace {

using namespace voprof;

/// A small but representative document straight from the collector:
/// wall + sim spans, an instant, and the metrics snapshot.
util::Json sample_doc() {
  auto& col = obs::TraceCollector::global();
  col.disable();
  col.enable("unused_trace_tool.json");
  col.complete_wall("runner", "SweepRunner.map", 0, 4000);
  col.complete_wall("runner", "SweepRunner.map", 5000, 2000);
  col.complete_wall("taskpool", "task", 100, 1500);
  col.complete_sim("scheduler", "contention", 0, 250000, /*tid=*/0);
  col.instant_sim("vm", "vm-created", 10, /*tid=*/0, {{"subject", "vm1"}});
  util::Json doc = col.to_json();
  col.disable();
  return doc;
}

TEST(TraceTool, SummarizesPerCategory) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  const tools::TraceSummary s = tools::summarize_trace(sample_doc());
  EXPECT_EQ(s.schema, obs::kTraceSchema);
  EXPECT_GE(s.total_events, 5);

  bool saw_runner = false;
  bool saw_scheduler = false;
  bool saw_vm = false;
  for (const tools::TraceCategoryStats& c : s.categories) {
    if (c.category == "runner") {
      saw_runner = true;
      EXPECT_EQ(c.spans, 2);
      EXPECT_DOUBLE_EQ(c.wall_ms, 6.0);
      EXPECT_DOUBLE_EQ(c.sim_ms, 0.0);
    }
    if (c.category == "scheduler") {
      saw_scheduler = true;
      EXPECT_EQ(c.spans, 1);
      EXPECT_DOUBLE_EQ(c.sim_ms, 250.0);
    }
    if (c.category == "vm") {
      saw_vm = true;
      EXPECT_EQ(c.instants, 1);
    }
  }
  EXPECT_TRUE(saw_runner);
  EXPECT_TRUE(saw_scheduler);
  EXPECT_TRUE(saw_vm);
}

TEST(TraceTool, SpansSortedBusiestFirst) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  const tools::TraceSummary s = tools::summarize_trace(sample_doc());
  ASSERT_GE(s.spans.size(), 3u);
  for (std::size_t i = 1; i < s.spans.size(); ++i) {
    EXPECT_GE(s.spans[i - 1].wall_ms + s.spans[i - 1].sim_ms,
              s.spans[i].wall_ms + s.spans[i].sim_ms);
  }
  // The merged SweepRunner.map aggregate: two occurrences, 6 ms total.
  EXPECT_EQ(s.spans[1].name, "SweepRunner.map");
  EXPECT_EQ(s.spans[1].count, 2);
  EXPECT_DOUBLE_EQ(s.spans[1].wall_ms, 6.0);
}

TEST(TraceTool, RejectsForeignDocuments) {
  EXPECT_THROW((void)tools::summarize_trace(util::Json::parse("[1,2]")),
               util::ContractViolation);
  EXPECT_THROW((void)tools::summarize_trace(util::Json::parse("{}")),
               util::ContractViolation);
  EXPECT_THROW((void)tools::summarize_trace(
                   util::Json::parse(R"({"schema":"other-schema-9"})")),
               util::ContractViolation);
}

TEST(TraceTool, SummaryAndTopRender) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  const tools::TraceSummary s = tools::summarize_trace(sample_doc());
  const std::string table = tools::format_trace_summary(s);
  EXPECT_NE(table.find("runner"), std::string::npos);
  EXPECT_NE(table.find("scheduler"), std::string::npos);
  EXPECT_NE(table.find("wall(ms)"), std::string::npos);

  const std::string top1 = tools::format_trace_top(s, 1);
  EXPECT_NE(top1.find("top 1 spans"), std::string::npos);
  // Only the busiest span appears.
  EXPECT_EQ(top1.find("vm-created"), std::string::npos);
  const std::string all = tools::format_trace_top(s, 0);
  EXPECT_NE(all.find("SweepRunner.map"), std::string::npos);
}

TEST(TraceTool, ExportCsvHasHeaderAndAllSpanRows) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  const tools::TraceSummary s = tools::summarize_trace(sample_doc());
  const std::string csv = tools::trace_spans_csv(s);
  EXPECT_EQ(csv.rfind("category,name,count,wall_ms,sim_ms\n", 0), 0u);
  EXPECT_NE(csv.find("runner,SweepRunner.map,2,"), std::string::npos);
  EXPECT_NE(csv.find("scheduler,contention,1,"), std::string::npos);
}

TEST(TraceTool, LoadsFromFile) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  const std::string path = ::testing::TempDir() + "test_trace_tool.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << sample_doc().dump(0) << '\n';
  }
  const tools::TraceSummary s = tools::summarize_trace_file(path);
  EXPECT_EQ(s.schema, obs::kTraceSchema);
  EXPECT_FALSE(s.categories.empty());
  std::remove(path.c_str());
  EXPECT_THROW((void)tools::summarize_trace_file(path),
               util::ContractViolation);
}

}  // namespace
