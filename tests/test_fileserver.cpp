#include "voprof/apps/fileserver.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/core/predictor.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::apps {
namespace {

using util::seconds;

struct Bed {
  sim::Engine engine;
  std::unique_ptr<sim::Cluster> cluster;
  FileServerTier* server = nullptr;
  FileClient* client = nullptr;

  explicit Bed(int clients, std::uint64_t seed = 51) {
    cluster = std::make_unique<sim::Cluster>(engine, sim::CostModel{}, seed);
    sim::PhysicalMachine& pm_srv = cluster->add_machine(sim::MachineSpec{});
    sim::PhysicalMachine& pm_cli = cluster->add_machine(sim::MachineSpec{});
    sim::VmSpec srv_spec;
    srv_spec.name = "fileserver";
    // The paper's guest caps I/O at 90 blocks/s; give the file server
    // the "large" profile so application I/O is visible.
    srv_spec.io_cap_blocks_per_s = 2000.0;
    sim::DomU& srv = pm_srv.add_vm(srv_spec);
    sim::VmSpec cli_spec;
    cli_spec.name = "client";
    sim::DomU& cli = pm_cli.add_vm(cli_spec);

    auto server_proc = std::make_unique<FileServerTier>(
        FileServerCosts{}, sim::NetTarget{pm_cli.id(), "client"}, seed + 1);
    auto client_proc = std::make_unique<FileClient>(
        FileServerCosts{}, sim::NetTarget{pm_srv.id(), "fileserver"},
        clients, seed + 2);
    server = server_proc.get();
    client = client_proc.get();
    srv.attach(std::move(server_proc));
    cli.attach(std::move(client_proc));
  }
};

TEST(FileServer, ClosedLoopServesRequests) {
  Bed bed(100);
  bed.engine.run_for(seconds(20));
  const double mark = bed.client->completed();
  bed.engine.run_for(seconds(20));
  const double tput = (bed.client->completed() - mark) / 20.0;
  // 100 clients, 4 s think -> ~25 req/s.
  EXPECT_NEAR(tput, 25.0, 4.0);
}

TEST(FileServer, GeneratesDiskLoad) {
  Bed bed(100);
  const auto before = bed.cluster->machine(0).snapshot(bed.engine.now());
  bed.engine.run_for(seconds(30));
  const auto after = bed.cluster->machine(0).snapshot(bed.engine.now());
  const double vm_io =
      (after.guest("fileserver").counters.io_blocks -
       before.guest("fileserver").counters.io_blocks) / 30.0;
  // ~25 req/s * 0.35 miss * 128 blocks = ~1120 blocks/s at the guest.
  EXPECT_NEAR(vm_io, 25.0 * 0.35 * 128.0, 200.0);
  // Physical disk sees the striping amplification on top.
  const double pm_io =
      (after.devices.disk_blocks - before.devices.disk_blocks) / 30.0;
  EXPECT_GT(pm_io, 1.8 * vm_io);
}

TEST(FileServer, StreamsFileData) {
  Bed bed(100);
  bed.engine.run_for(seconds(10));
  const auto before = bed.cluster->machine(1).snapshot(bed.engine.now());
  bed.engine.run_for(seconds(10));
  const auto after = bed.cluster->machine(1).snapshot(bed.engine.now());
  const double rx = (after.guest("client").counters.rx_kbits -
                     before.guest("client").counters.rx_kbits) / 10.0;
  // ~25 req/s * 512 Kb = ~12.8 Mb/s of file data.
  EXPECT_NEAR(rx, 25.0 * 512.0, 2500.0);
}

TEST(FileServer, ModelPredictsIoDimension) {
  // Train on Table II (which sweeps I/O only to 72 blocks/s) and check
  // the I/O prediction still lands on an application pushing ~1000+
  // guest blocks/s — linear extrapolation along the amplification
  // mechanism.
  model::TrainerConfig cfg;
  cfg.duration = seconds(20.0);
  cfg.seed = 53;
  const model::TrainedModels models =
      model::Trainer(cfg).train(model::RegressionMethod::kLms);

  Bed bed(100, 59);
  bed.engine.run_for(seconds(10));
  mon::MonitorScript mon(bed.engine, bed.cluster->machine(0));
  mon.start();
  bed.engine.run_for(seconds(40));
  mon.stop();
  const model::Predictor predictor(models.multi);
  const model::PredictionEval eval =
      predictor.evaluate(mon.report(), {"fileserver"});
  EXPECT_LT(eval.of(model::MetricIndex::kIo).error_at_fraction(0.9), 8.0);
  EXPECT_LT(eval.of(model::MetricIndex::kBw).error_at_fraction(0.9), 4.0);
}

TEST(FileServer, RejectsBadCosts) {
  FileServerCosts bad;
  bad.cache_miss_rate = 1.5;
  EXPECT_THROW(FileServerTier(bad, sim::NetTarget{}),
               util::ContractViolation);
  FileServerCosts bad2;
  bad2.think_time_s = 0.0;
  EXPECT_THROW(FileClient(bad2, sim::NetTarget{}, 10),
               util::ContractViolation);
  EXPECT_THROW(FileClient(FileServerCosts{}, sim::NetTarget{}, -1),
               util::ContractViolation);
}

}  // namespace
}  // namespace voprof::apps
