// Observability layer: metric registry semantics, lock-free writer
// correctness under a real TaskPool fan-out (the TSan job runs this
// binary via `ctest -L concurrency`), and the Chrome-trace exporter —
// whose output must round-trip through util::Json and carry the
// voprof-trace-1 schema the trace tooling validates.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/json.hpp"
#include "voprof/util/task_pool.hpp"

namespace {

using namespace voprof;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Metrics, CounterCountsAndResets) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndHighWater) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(2.0);  // below the mark: no change
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow
  h.observe(std::nan(""));  // NaN is filed under overflow, not bucket 0
  const obs::Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.count, 5u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), util::ContractViolation);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), util::ContractViolation);
}

TEST(Metrics, RegistryDeduplicatesByName) {
  auto& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("test_obs.dedup");
  obs::Counter& b = reg.counter("test_obs.dedup");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 = reg.histogram("test_obs.dedup_hist", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("test_obs.dedup_hist", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);  // first registration wins
}

TEST(Metrics, SnapshotIsSortedAndTyped) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  auto& reg = obs::Registry::global();
  reg.counter("test_obs.zz_counter").add(3);
  reg.gauge("test_obs.aa_gauge").set(1.5);
  const obs::Registry::Snapshot snap = reg.snapshot();
  ASSERT_GE(snap.entries.size(), 2u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const auto& e : snap.entries) {
    if (e.name == "test_obs.zz_counter") {
      saw_counter = true;
      EXPECT_EQ(e.kind, "counter");
      EXPECT_DOUBLE_EQ(e.value, 3.0);
    }
    if (e.name == "test_obs.aa_gauge") {
      saw_gauge = true;
      EXPECT_EQ(e.kind, "gauge");
      EXPECT_DOUBLE_EQ(e.value, 1.5);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(Metrics, CategoryIsDottedPrefix) {
  EXPECT_EQ(obs::metric_category("engine.events_fired"), "engine");
  EXPECT_EQ(obs::metric_category("nodot"), "nodot");
  EXPECT_EQ(obs::metric_category("a.b.c"), "a");
}

// The lock-free contract: concurrent writers through a TaskPool lose
// no increments and no observations once the pool has joined.
TEST(MetricsConcurrency, CountersExactUnderParallelWriters) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  auto& counter = obs::Registry::global().counter("test_obs.par_counter");
  auto& gauge = obs::Registry::global().gauge("test_obs.par_gauge");
  auto& hist = obs::Registry::global().histogram("test_obs.par_hist",
                                                 {10.0, 100.0, 1000.0});
  counter.reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  util::TaskPool pool(4);
  (void)pool.parallel_map(kTasks, [&](std::size_t task) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      counter.add();
      gauge.set_max(static_cast<double>(task));
      hist.observe(static_cast<double>(i));
    }
    return 0;
  });
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kTasks - 1));
  const obs::Histogram::Snapshot s = hist.snapshot();
  EXPECT_EQ(s.count, kTasks * kPerTask);
  // Sum of 0..999 per task, accumulated via the CAS loop.
  const double expected_sum =
      static_cast<double>(kTasks) * (kPerTask - 1) * kPerTask / 2.0;
  EXPECT_DOUBLE_EQ(s.sum, expected_sum);
}

TEST(Trace, DisabledCollectorRecordsNothing) {
  auto& col = obs::TraceCollector::global();
  col.disable();
  EXPECT_FALSE(col.enabled());
  col.complete_wall("cat", "name", 0, 10);
  { VOPROF_WALL_SPAN("cat", "span"); }
  EXPECT_EQ(col.size(), 0u);
}

TEST(Trace, ExportedJsonIsValidAndTagged) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  auto& col = obs::TraceCollector::global();
  const std::string path = temp_path("test_obs_trace.json");
  col.enable(path);
  ASSERT_TRUE(col.enabled());
  col.complete_wall("testcat", "wall_span", 5, 10, {{"n", 1.0}});
  col.complete_sim("simcat", "sim_span", 100, 50, /*tid=*/3);
  col.instant_sim("simcat", "blip", 120, /*tid=*/3, {{"subject", "vm1"}});
  { VOPROF_WALL_SPAN("testcat", "scoped"); }
  EXPECT_EQ(col.size(), 4u);

  ASSERT_TRUE(col.write_file());
  EXPECT_FALSE(col.enabled());  // flushing disables

  const util::Json doc = util::Json::parse(slurp(path));
  EXPECT_EQ(doc.at("schema").as_string(), obs::kTraceSchema);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  // 2 process-name metadata + 4 recorded (+ a counter sample per
  // registry metric, 0 when this test runs with an empty registry).
  EXPECT_GE(events.size(), 6u);
  bool saw_wall = false;
  bool saw_sim = false;
  bool saw_instant = false;
  for (const util::Json& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") continue;
    const int pid = static_cast<int>(e.at("pid").as_number());
    EXPECT_TRUE(pid == obs::kWallPid || pid == obs::kSimPid);
    const std::string name = e.at("name").as_string();
    if (name == "wall_span") {
      saw_wall = true;
      EXPECT_EQ(ph, "X");
      EXPECT_EQ(pid, obs::kWallPid);
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 10.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("n").as_number(), 1.0);
    }
    if (name == "sim_span") {
      saw_sim = true;
      EXPECT_EQ(pid, obs::kSimPid);
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 100.0);
    }
    if (name == "blip") {
      saw_instant = true;
      EXPECT_EQ(ph, "i");
      EXPECT_EQ(e.at("args").at("subject").as_string(), "vm1");
    }
  }
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_sim);
  EXPECT_TRUE(saw_instant);
  // The full metrics snapshot rides along for `voprofctl trace`.
  EXPECT_TRUE(doc.at("voprofMetrics").is_object());
  std::remove(path.c_str());
}

TEST(TraceConcurrency, ParallelSpansAllArrive) {
  if constexpr (!obs::kObsCompiled) {
    GTEST_SKIP() << "observability compiled out (VOPROF_OBS=OFF)";
  }

  auto& col = obs::TraceCollector::global();
  const std::string path = temp_path("test_obs_trace_par.json");
  col.enable(path);
  constexpr std::size_t kTasks = 200;
  util::TaskPool pool(4);
  (void)pool.parallel_map(kTasks, [&](std::size_t) {
    VOPROF_WALL_SPAN("testcat", "par_span");
    return 0;
  });
  // TaskPool itself traces its jobs, so expect at least the explicit
  // spans; every recorded event must carry a valid thread id.
  EXPECT_GE(col.size(), kTasks);
  const util::Json doc = col.to_json();
  std::size_t spans = 0;
  for (const util::Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("name").as_string() != "par_span") continue;
    ++spans;
    EXPECT_GE(e.at("tid").as_number(), 1.0);
  }
  EXPECT_EQ(spans, kTasks);
  col.disable();  // drop the buffer; nothing written to disk
  std::remove(path.c_str());
}

TEST(Trace, WallClockIsMonotonic) {
  const std::int64_t a = obs::wall_clock_us();
  const std::int64_t b = obs::wall_clock_us();
  if constexpr (obs::kObsCompiled) {
    EXPECT_GE(b, a);
  } else {
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 0);
  }
}

}  // namespace
