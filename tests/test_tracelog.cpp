#include "voprof/xensim/tracelog.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::sim {
namespace {

using util::seconds;

TraceEvent ev(double t, TraceEventType type, double value = 0.0) {
  return TraceEvent{seconds(t), type, 0, "", value};
}

TEST(TraceEventNames, RoundTripAllTypes) {
  for (TraceEventType type :
       {TraceEventType::kVmCreated, TraceEventType::kVmRemoved,
        TraceEventType::kSchedContention, TraceEventType::kDiskThrottled,
        TraceEventType::kNicThrottled, TraceEventType::kMigrationStarted,
        TraceEventType::kMigrationFinished, TraceEventType::kMigrationFailed}) {
    EXPECT_EQ(trace_event_from_name(trace_event_name(type)), type);
    EXPECT_STRNE(trace_event_category(type), "");
  }
  EXPECT_THROW((void)trace_event_from_name("no-such-event"),
               util::ContractViolation);
}

TEST(TraceEventNames, CategoriesMatchObsTaxonomy) {
  EXPECT_STREQ(trace_event_category(TraceEventType::kVmCreated), "vm");
  EXPECT_STREQ(trace_event_category(TraceEventType::kSchedContention),
               "scheduler");
  EXPECT_STREQ(trace_event_category(TraceEventType::kDiskThrottled),
               "device");
  EXPECT_STREQ(trace_event_category(TraceEventType::kMigrationFailed),
               "migration");
}

TEST(TraceLogCsv, RoundTripsEvents) {
  TraceLog log(8);
  log.record(TraceEvent{seconds(1.5), TraceEventType::kSchedContention, 2,
                        "vm1", 7.25});
  log.record(TraceEvent{seconds(2.0), TraceEventType::kMigrationStarted, 0,
                        "", 0.0});
  const std::string csv = log.to_csv();
  EXPECT_EQ(csv.rfind("time_us,type,pm_id,subject,value\n", 0), 0u);
  const auto events = tracelog_events_from_csv(csv);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, seconds(1.5));
  EXPECT_EQ(events[0].type, TraceEventType::kSchedContention);
  EXPECT_EQ(events[0].pm_id, 2);
  EXPECT_EQ(events[0].subject, "vm1");
  EXPECT_DOUBLE_EQ(events[0].value, 7.25);
  EXPECT_EQ(events[1].type, TraceEventType::kMigrationStarted);
  EXPECT_EQ(events[1].subject, "");
}

TEST(TraceLogCsv, RejectsUnsafeSubjectAndMalformedText) {
  TraceLog log(4);
  log.record(TraceEvent{0, TraceEventType::kVmCreated, 0, "a,b", 0.0});
  EXPECT_THROW((void)log.to_csv(), util::ContractViolation);
  EXPECT_THROW((void)tracelog_events_from_csv("wrong,header\n"),
               util::ContractViolation);
  EXPECT_THROW((void)tracelog_events_from_csv(
                   "time_us,type,pm_id,subject,value\n1,bogus-type,0,,0\n"),
               util::ContractViolation);
  EXPECT_THROW((void)tracelog_events_from_csv(
                   "time_us,type,pm_id,subject,value\n1,vm-created,0\n"),
               util::ContractViolation);
}

TEST(TraceLogJson, ExportsRetainedEvents) {
  TraceLog log(4);
  log.record(TraceEvent{seconds(3.0), TraceEventType::kNicThrottled, 1,
                        "vm2", 128.0});
  const util::Json arr = tracelog_to_json(log);
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 1u);
  const util::Json& e = arr.as_array()[0];
  EXPECT_DOUBLE_EQ(e.at("time_us").as_number(),
                   static_cast<double>(seconds(3.0)));
  EXPECT_EQ(e.at("type").as_string(), "nic-throttled");
  EXPECT_DOUBLE_EQ(e.at("pm_id").as_number(), 1.0);
  EXPECT_EQ(e.at("subject").as_string(), "vm2");
  EXPECT_DOUBLE_EQ(e.at("value").as_number(), 128.0);
}

TEST(TraceLog, RecordsInOrder) {
  TraceLog log(8);
  log.record(ev(1.0, TraceEventType::kVmCreated));
  log.record(ev(2.0, TraceEventType::kVmRemoved));
  const auto events = log.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kVmCreated);
  EXPECT_EQ(events[1].type, TraceEventType::kVmRemoved);
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_FALSE(log.overflowed());
}

TEST(TraceLog, RingOverwritesOldest) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(ev(i, TraceEventType::kSchedContention, i));
  }
  EXPECT_TRUE(log.overflowed());
  EXPECT_EQ(log.total_recorded(), 5u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].value, 2.0);  // oldest survivor
  EXPECT_DOUBLE_EQ(events[2].value, 4.0);
}

TEST(TraceLog, FilterByType) {
  TraceLog log(16);
  log.record(ev(1, TraceEventType::kVmCreated));
  log.record(ev(2, TraceEventType::kDiskThrottled, 5.0));
  log.record(ev(3, TraceEventType::kVmCreated));
  EXPECT_EQ(log.events_of(TraceEventType::kVmCreated).size(), 2u);
  EXPECT_EQ(log.events_of(TraceEventType::kNicThrottled).size(), 0u);
}

TEST(TraceLog, ClearResets) {
  TraceLog log(4);
  log.record(ev(1, TraceEventType::kVmCreated));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(TraceLog, DumpIsHumanReadable) {
  TraceLog log(4);
  log.record(TraceEvent{seconds(12.34), TraceEventType::kSchedContention, 1,
                        "vm7", 8.5});
  const std::string dump = log.dump();
  EXPECT_NE(dump.find("t=12.34s"), std::string::npos);
  EXPECT_NE(dump.find("pm1"), std::string::npos);
  EXPECT_NE(dump.find("sched-contention"), std::string::npos);
  EXPECT_NE(dump.find("vm7"), std::string::npos);
}

TEST(TraceLog, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog(0), util::ContractViolation);
}

TEST(TraceLog, EventNamesAllDistinct) {
  std::set<std::string> names;
  for (auto t : {TraceEventType::kVmCreated, TraceEventType::kVmRemoved,
                 TraceEventType::kSchedContention,
                 TraceEventType::kDiskThrottled,
                 TraceEventType::kNicThrottled,
                 TraceEventType::kMigrationStarted,
                 TraceEventType::kMigrationFinished,
                 TraceEventType::kMigrationFailed}) {
    names.insert(trace_event_name(t));
  }
  EXPECT_EQ(names.size(), 8u);
}

// ------------------------------------------- wired into the simulator
TEST(ClusterTracing, LifecycleAndContentionEvents) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 3);
  TraceLog& log = cluster.enable_tracing();
  PhysicalMachine& pm = cluster.add_machine(MachineSpec{});
  for (int i = 0; i < 3; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(
        std::make_unique<wl::CpuHog>(100.0, 5 + static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(log.events_of(TraceEventType::kVmCreated).size(), 3u);
  engine.run_for(seconds(1));
  // 3 x 100 % on the 190 % pool: contention every tick.
  EXPECT_GE(log.events_of(TraceEventType::kSchedContention).size(), 50u);
  const auto contentions = log.events_of(TraceEventType::kSchedContention);
  EXPECT_NEAR(contentions.back().value, 300.0 - 190.0, 10.0);
  pm.remove_vm("vm0");
  EXPECT_EQ(log.events_of(TraceEventType::kVmRemoved).size(), 1u);
}

TEST(ClusterTracing, MigrationEventsLogged) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 7);
  cluster.enable_tracing();
  PhysicalMachine& pm0 = cluster.add_machine(MachineSpec{});
  cluster.add_machine(MachineSpec{});
  VmSpec spec;
  spec.name = "vm1";
  pm0.add_vm(spec);
  (void)cluster.migration().start("vm1", 0, 1);
  engine.run_for(seconds(30));
  TraceLog& log = *cluster.trace_log();
  ASSERT_EQ(log.events_of(TraceEventType::kMigrationStarted).size(), 1u);
  ASSERT_EQ(log.events_of(TraceEventType::kMigrationFinished).size(), 1u);
  EXPECT_EQ(log.events_of(TraceEventType::kMigrationFinished)[0].subject,
            "vm1");
}

TEST(ClusterTracing, ThrottleEventsLogged) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 11);
  cluster.enable_tracing();
  MachineSpec tiny;
  tiny.disk_blocks_per_s = 100.0;
  PhysicalMachine& pm = cluster.add_machine(tiny);
  VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(std::make_unique<wl::IoHog>(80.0, 13));
  engine.run_for(seconds(5));
  EXPECT_GE(cluster.trace_log()
                ->events_of(TraceEventType::kDiskThrottled)
                .size(),
            10u);
}

TEST(ClusterTracing, DisabledByDefault) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 13);
  EXPECT_EQ(cluster.trace_log(), nullptr);
  cluster.add_machine(MachineSpec{});
  engine.run_for(seconds(1));  // no crash without a log
  TraceLog& a = cluster.enable_tracing();
  TraceLog& b = cluster.enable_tracing();
  EXPECT_EQ(&a, &b);  // idempotent
}

}  // namespace
}  // namespace voprof::sim
