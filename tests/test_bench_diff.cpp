#include "bench_diff.hpp"

#include <gtest/gtest.h>

#include <string>

#include "voprof/util/assert.hpp"
#include "voprof/util/json.hpp"

namespace voprof::tools {
namespace {

/// Minimal valid voprof-bench-1 record with one benchmark per
/// (name, median) pair.
util::Json record(
    const std::vector<std::pair<std::string, double>>& benches) {
  util::Json doc = util::Json::object();
  doc.set("schema", "voprof-bench-1");
  doc.set("binary", "bench_fixture");
  util::Json arr = util::Json::array();
  for (const auto& [name, median] : benches) {
    util::Json b = util::Json::object();
    b.set("name", name);
    util::Json wall = util::Json::object();
    wall.set("median", median);
    b.set("wall_s", std::move(wall));
    arr.push_back(std::move(b));
  }
  doc.set("benchmarks", std::move(arr));
  return doc;
}

TEST(BenchDiff, NeutralWithinThreshold) {
  const auto report = bench_diff(record({{"a", 1.0}, {"b", 0.010}}),
                                 record({{"a", 1.1}, {"b", 0.009}}), 0.25);
  ASSERT_EQ(report.compared.size(), 2u);
  EXPECT_EQ(report.compared[0].verdict, BenchVerdict::kNeutral);
  EXPECT_EQ(report.compared[1].verdict, BenchVerdict::kNeutral);
  EXPECT_FALSE(report.has_regression());
  EXPECT_FALSE(report.has_improvement());
  EXPECT_EQ(bench_diff_exit_code(report, false), kBenchDiffExitNeutral);
  EXPECT_EQ(bench_diff_exit_code(report, true), kBenchDiffExitNeutral);
}

TEST(BenchDiff, RegressionBeyondThreshold) {
  const auto report =
      bench_diff(record({{"a", 1.0}}), record({{"a", 1.3}}), 0.25);
  ASSERT_EQ(report.compared.size(), 1u);
  EXPECT_EQ(report.compared[0].verdict, BenchVerdict::kRegression);
  EXPECT_NEAR(report.compared[0].ratio, 1.3, 1e-12);
  EXPECT_TRUE(report.has_regression());
  // A regression wins over any improvement for the exit code.
  EXPECT_EQ(bench_diff_exit_code(report, false), kBenchDiffExitRegression);
  EXPECT_EQ(bench_diff_exit_code(report, true), kBenchDiffExitRegression);
}

TEST(BenchDiff, ImprovementBeyondThreshold) {
  const auto report =
      bench_diff(record({{"a", 1.0}}), record({{"a", 0.5}}), 0.25);
  ASSERT_EQ(report.compared.size(), 1u);
  EXPECT_EQ(report.compared[0].verdict, BenchVerdict::kImprovement);
  EXPECT_TRUE(report.has_improvement());
  // Improvements only fail the gate when explicitly requested.
  EXPECT_EQ(bench_diff_exit_code(report, false), kBenchDiffExitNeutral);
  EXPECT_EQ(bench_diff_exit_code(report, true), kBenchDiffExitImprovement);
}

TEST(BenchDiff, MixedVerdictsPreferRegression) {
  const auto report = bench_diff(record({{"slow", 1.0}, {"fast", 1.0}}),
                                 record({{"slow", 2.0}, {"fast", 0.5}}), 0.25);
  EXPECT_TRUE(report.has_regression());
  EXPECT_TRUE(report.has_improvement());
  EXPECT_EQ(bench_diff_exit_code(report, true), kBenchDiffExitRegression);
}

TEST(BenchDiff, UnpairedBenchmarksAreListedNotCompared) {
  const auto report = bench_diff(record({{"a", 1.0}, {"old", 1.0}}),
                                 record({{"a", 1.0}, {"new", 1.0}}), 0.25);
  ASSERT_EQ(report.compared.size(), 1u);
  EXPECT_EQ(report.compared[0].name, "a");
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  EXPECT_EQ(report.only_in_baseline[0], "old");
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_current[0], "new");
}

TEST(BenchDiff, ThresholdBoundaryIsInclusiveNeutral) {
  // ratio exactly 1 + threshold is NOT a regression (strictly greater).
  const auto report =
      bench_diff(record({{"a", 1.0}}), record({{"a", 1.25}}), 0.25);
  EXPECT_EQ(report.compared[0].verdict, BenchVerdict::kNeutral);
}

TEST(BenchDiff, RejectsWrongSchema) {
  util::Json bad = record({{"a", 1.0}});
  bad.set("schema", "something-else");
  EXPECT_THROW((void)bench_diff(bad, record({{"a", 1.0}}), 0.25),
               util::JsonError);
  EXPECT_THROW(
      (void)bench_diff(record({{"a", 1.0}}), util::Json::parse("[]"), 0.25),
      util::JsonError);
}

TEST(BenchDiff, RejectsMalformedRecord) {
  // Missing wall_s.median.
  util::Json doc = util::Json::object();
  doc.set("schema", "voprof-bench-1");
  util::Json arr = util::Json::array();
  util::Json b = util::Json::object();
  b.set("name", "a");
  arr.push_back(std::move(b));
  doc.set("benchmarks", std::move(arr));
  EXPECT_THROW((void)bench_diff(doc, doc, 0.25), util::JsonError);
  // Non-positive median.
  EXPECT_THROW((void)bench_diff(record({{"a", 0.0}}), record({{"a", 0.0}}),
                                0.25),
               util::JsonError);
}

TEST(BenchDiff, RejectsBadThresholdAndMissingFile) {
  EXPECT_THROW((void)bench_diff(record({}), record({}), 0.0),
               util::ContractViolation);
  EXPECT_THROW((void)bench_diff_files("/nonexistent/base.json",
                                      "/nonexistent/cur.json", 0.25),
               util::ContractViolation);
}

TEST(BenchDiff, FormatMentionsEveryBenchmark) {
  const auto report = bench_diff(record({{"a", 1.0}, {"gone", 1.0}}),
                                 record({{"a", 2.0}, {"new", 1.0}}), 0.25);
  const std::string text = format_bench_diff(report, 0.25);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("gone"), std::string::npos);
  EXPECT_NE(text.find("new"), std::string::npos);
}

}  // namespace
}  // namespace voprof::tools
