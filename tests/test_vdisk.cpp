#include "voprof/xensim/vdisk.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"

namespace voprof::sim {
namespace {

TEST(VDisk, DefaultGeometryGivesPaperAmplification) {
  const VirtualDisk vd;
  // 8-block ops on 8-block stripes + 1.4 journal blocks:
  // E[stripes] = 1 + 7/8; amplification = (1.875*8 + 1.4)/8 = 2.05.
  EXPECT_NEAR(vd.expected_amplification(), 2.05, 1e-12);
}

TEST(VDisk, AlignedOpTouchesOneStripe) {
  const VirtualDisk vd;
  // offset 0: exactly one stripe RMW + journal.
  EXPECT_DOUBLE_EQ(vd.physical_blocks_for_op(0.0), 8.0 + 1.4);
}

TEST(VDisk, MisalignedOpTouchesTwoStripes) {
  const VirtualDisk vd;
  for (double offset : {1.0, 3.0, 7.0}) {
    EXPECT_DOUBLE_EQ(vd.physical_blocks_for_op(offset), 16.0 + 1.4)
        << "offset " << offset;
  }
}

TEST(VDisk, OffsetWrapsAroundStripe) {
  const VirtualDisk vd;
  EXPECT_DOUBLE_EQ(vd.physical_blocks_for_op(8.0),
                   vd.physical_blocks_for_op(0.0));
  EXPECT_DOUBLE_EQ(vd.physical_blocks_for_op(17.0),
                   vd.physical_blocks_for_op(1.0));
}

TEST(VDisk, SampledAmplificationConvergesToExpectation) {
  VirtualDisk vd(VDiskGeometry{}, 5);
  const double guest = 8.0 * 20000.0;  // 20k whole ops
  const double physical = vd.physical_blocks(guest);
  EXPECT_NEAR(physical / guest, vd.expected_amplification(), 0.01);
}

TEST(VDisk, FractionalOpsUseExpectation) {
  VirtualDisk vd(VDiskGeometry{}, 7);
  // Less than one op: deterministic expectation path.
  const double physical = vd.physical_blocks(0.8);
  EXPECT_NEAR(physical, 0.8 * 2.05, 1e-9);
  EXPECT_DOUBLE_EQ(vd.physical_blocks(0.0), 0.0);
}

TEST(VDisk, LargeOpsSpanProportionallyMoreStripes) {
  VDiskGeometry g;
  g.op_blocks = 32.0;  // 4 stripes + crossing
  const VirtualDisk vd(g, 3);
  // E[stripes] = 4 + 7/8; amplification = (4.875*8 + 1.4)/32.
  EXPECT_NEAR(vd.expected_amplification(), (4.875 * 8.0 + 1.4) / 32.0,
              1e-12);
  // Bigger ops amortize the RMW better: amplification drops.
  EXPECT_LT(vd.expected_amplification(), 2.05);
}

TEST(VDisk, StripeSizeTradeoff) {
  // Wider stripes = more RMW waste for small ops.
  VDiskGeometry narrow;
  narrow.stripe_blocks = 4.0;
  VDiskGeometry wide;
  wide.stripe_blocks = 32.0;
  EXPECT_LT(VirtualDisk(narrow).expected_amplification(),
            VirtualDisk(wide).expected_amplification());
}

TEST(VDisk, JournalFreeGeometry) {
  VDiskGeometry g;
  g.journal_blocks_per_op = 0.0;
  const VirtualDisk vd(g);
  EXPECT_NEAR(vd.expected_amplification(), 1.875, 1e-12);
}

TEST(VDisk, RejectsBadGeometry) {
  VDiskGeometry bad;
  bad.op_blocks = 0.0;
  EXPECT_THROW(VirtualDisk{bad}, util::ContractViolation);
  VDiskGeometry bad2;
  bad2.stripe_blocks = 0.5;
  EXPECT_THROW(VirtualDisk{bad2}, util::ContractViolation);
  VDiskGeometry bad3;
  bad3.journal_blocks_per_op = -1.0;
  EXPECT_THROW(VirtualDisk{bad3}, util::ContractViolation);
  VirtualDisk ok;
  EXPECT_THROW((void)ok.physical_blocks_for_op(-1.0),
               util::ContractViolation);
  EXPECT_THROW((void)ok.physical_blocks(-1.0), util::ContractViolation);
}

TEST(VDisk, DeterministicForSeed) {
  VirtualDisk a(VDiskGeometry{}, 11), b(VDiskGeometry{}, 11);
  EXPECT_DOUBLE_EQ(a.physical_blocks(800.0), b.physical_blocks(800.0));
}

}  // namespace
}  // namespace voprof::sim
