#include "voprof/xensim/domain.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/util/assert.hpp"
#include "voprof/util/units.hpp"

namespace voprof::sim {
namespace {

/// Test process with a fixed demand.
class FixedProcess final : public GuestProcess {
 public:
  explicit FixedProcess(ProcessDemand d) : demand_(std::move(d)) {}
  ProcessDemand demand(util::SimMicros, double) override { return demand_; }
  void granted(double frac, util::SimMicros, double) override {
    last_frac = frac;
  }
  void on_receive(double kbits, int tag, util::SimMicros) override {
    received_kbits += kbits;
    last_tag = tag;
  }
  std::string label() const override { return "fixed"; }

  double last_frac = -1.0;
  double received_kbits = 0.0;
  int last_tag = -1;

 private:
  ProcessDemand demand_;
};

VmSpec test_spec() {
  VmSpec s;
  s.name = "vm1";
  return s;
}

TEST(DomU, StartsWithOsBaseMemory) {
  const DomU vm(test_spec());
  EXPECT_DOUBLE_EQ(vm.counters().mem_mib, test_spec().os_base_mem_mib);
}

TEST(DomU, AggregatesProcessDemands) {
  DomU vm(test_spec());
  ProcessDemand d1;
  d1.cpu_pct = 20.0;
  d1.io_blocks = 0.1;
  ProcessDemand d2;
  d2.cpu_pct = 15.0;
  d2.mem_mib = 30.0;
  vm.attach(std::make_unique<FixedProcess>(d1));
  vm.attach(std::make_unique<FixedProcess>(d2));
  const ProcessDemand total = vm.collect_demand(0, 0.01);
  EXPECT_DOUBLE_EQ(total.cpu_pct, 35.0);
  EXPECT_DOUBLE_EQ(total.mem_mib, 30.0);
  EXPECT_DOUBLE_EQ(total.io_blocks, 0.1);
}

TEST(DomU, CpuDemandClampedToVcpuCapacity) {
  DomU vm(test_spec());
  ProcessDemand d;
  d.cpu_pct = 250.0;
  vm.attach(std::make_unique<FixedProcess>(d));
  EXPECT_DOUBLE_EQ(vm.collect_demand(0, 0.01).cpu_pct, 100.0);
}

TEST(DomU, IoCapEnforcedAtFrontend) {
  // Paper: "maximum I/O capacity limit of about 90 blocks/s".
  DomU vm(test_spec());
  ProcessDemand d;
  d.io_blocks = 500.0 * 0.01;  // 500 blocks/s over a 10 ms tick
  vm.attach(std::make_unique<FixedProcess>(d));
  const ProcessDemand total = vm.collect_demand(0, 0.01);
  EXPECT_DOUBLE_EQ(total.io_blocks, 90.0 * 0.01);
}

TEST(DomU, GrantPropagatesFraction) {
  DomU vm(test_spec());
  ProcessDemand d;
  d.cpu_pct = 50.0;
  auto proc = std::make_unique<FixedProcess>(d);
  FixedProcess* raw = proc.get();
  vm.attach(std::move(proc));
  (void)vm.collect_demand(0, 0.01);
  vm.grant(0.8, 0, 0.01);
  EXPECT_DOUBLE_EQ(raw->last_frac, 0.8);
}

TEST(DomU, DeliverReachesProcessesAndRxCounter) {
  DomU vm(test_spec());
  auto proc = std::make_unique<FixedProcess>(ProcessDemand{});
  FixedProcess* raw = proc.get();
  vm.attach(std::move(proc));
  vm.deliver(12.5, 7, 0);
  EXPECT_DOUBLE_EQ(raw->received_kbits, 12.5);
  EXPECT_EQ(raw->last_tag, 7);
  EXPECT_DOUBLE_EQ(vm.counters().rx_kbits, 12.5);
}

TEST(DomU, SharedAttachAndDetach) {
  DomU vm(test_spec());
  FixedProcess shared{ProcessDemand{}};
  vm.attach_shared(&shared);
  EXPECT_EQ(vm.process_count(), 1u);
  EXPECT_TRUE(vm.detach_shared(&shared));
  EXPECT_EQ(vm.process_count(), 0u);
  EXPECT_FALSE(vm.detach_shared(&shared));
}

TEST(DomU, RefreshMemoryClampsToConfiguredRam) {
  DomU vm(test_spec());
  ProcessDemand d;
  d.mem_mib = 10000.0;
  vm.attach(std::make_unique<FixedProcess>(d));
  (void)vm.collect_demand(0, 0.01);
  vm.refresh_memory();
  EXPECT_DOUBLE_EQ(vm.counters().mem_mib, test_spec().mem_mib);
}

TEST(DomU, RefreshMemoryAddsProcessFootprint) {
  DomU vm(test_spec());
  ProcessDemand d;
  d.mem_mib = 50.0;
  vm.attach(std::make_unique<FixedProcess>(d));
  (void)vm.collect_demand(0, 0.01);
  vm.refresh_memory();
  EXPECT_DOUBLE_EQ(vm.counters().mem_mib,
                   test_spec().os_base_mem_mib + 50.0);
}

TEST(Domain, CpuChargeAccumulatesCoreSeconds) {
  DomU vm(test_spec());
  vm.charge_cpu(50.0, 1.0);  // 50 % for 1 s
  vm.charge_cpu(100.0, 0.5);
  EXPECT_DOUBLE_EQ(vm.counters().cpu_core_seconds, 1.0);
}

TEST(Dom0, BackgroundCpuRegistry) {
  Dom0 dom0(752.0);
  EXPECT_DOUBLE_EQ(dom0.background_cpu_pct(), 0.0);
  const int a = dom0.add_background_cpu(0.45);
  const int b = dom0.add_background_cpu(1.0);
  EXPECT_DOUBLE_EQ(dom0.background_cpu_pct(), 1.45);
  dom0.remove_background_cpu(a);
  EXPECT_DOUBLE_EQ(dom0.background_cpu_pct(), 1.0);
  dom0.remove_background_cpu(b);
  dom0.remove_background_cpu(b);  // idempotent
  EXPECT_DOUBLE_EQ(dom0.background_cpu_pct(), 0.0);
}

TEST(Dom0, RejectsNegativeBackground) {
  Dom0 dom0(752.0);
  EXPECT_THROW((void)dom0.add_background_cpu(-0.1), util::ContractViolation);
}

TEST(Dom0, HasXenServerMemoryFootprint) {
  const Dom0 dom0(752.0);
  EXPECT_DOUBLE_EQ(dom0.counters().mem_mib, 752.0);
  EXPECT_EQ(dom0.name(), "Domain-0");
}

TEST(ProcessDemand, PlusEqualsMergesFlows) {
  ProcessDemand a;
  a.flows.push_back(NetFlow{1.0, NetTarget{}, 0});
  ProcessDemand b;
  b.cpu_pct = 5.0;
  b.flows.push_back(NetFlow{2.0, NetTarget{}, 0});
  a += b;
  EXPECT_DOUBLE_EQ(a.cpu_pct, 5.0);
  EXPECT_EQ(a.flows.size(), 2u);
}

TEST(NetTarget, ExternalDetection) {
  EXPECT_TRUE(NetTarget{}.is_external());
  EXPECT_FALSE((NetTarget{0, "vm"}).is_external());
}

}  // namespace
}  // namespace voprof::sim
