/// Calibration tests: the simulated machine must reproduce the anchor
/// values printed in the paper's text (Secs. III-C and IV). Utilization
/// is computed directly from counter snapshots (no monitor attached),
/// so Dom0 CPU baselines are 0.45 % below the with-script values the
/// paper reports (see CostModel::dom0_base_cpu_pct).

#include "voprof/xensim/machine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/sample.hpp"
#include "voprof/util/units.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/engine.hpp"

namespace voprof::sim {
namespace {

using util::seconds;

struct Utils {
  mon::UtilSample vm;       // first VM
  mon::UtilSample vm_sum;   // all VMs
  mon::UtilSample dom0;
  double hyp_cpu = 0.0;
  mon::DeviceUtil devices;
};

/// Run `machine` for `dur` and return average utilizations.
Utils run_and_measure(Engine& engine, PhysicalMachine& pm,
                      util::SimMicros dur = seconds(30)) {
  const MachineSnapshot before = pm.snapshot(engine.now());
  engine.run_for(dur);
  const MachineSnapshot after = pm.snapshot(engine.now());
  const double s = util::to_seconds(dur);
  Utils u;
  u.dom0 = mon::domain_util(before.dom0.counters, after.dom0.counters, s);
  u.hyp_cpu =
      mon::domain_util(before.hypervisor, after.hypervisor, s).cpu_pct;
  u.devices = mon::device_util(before.devices, after.devices, s);
  for (std::size_t i = 0; i < after.guests.size(); ++i) {
    const mon::UtilSample g = mon::domain_util(
        before.guests[i].counters, after.guests[i].counters, s);
    if (i == 0) u.vm = g;
    u.vm_sum += g;
  }
  return u;
}

struct Testbed {
  Engine engine;
  std::unique_ptr<Cluster> cluster;
  PhysicalMachine* pm = nullptr;

  explicit Testbed(std::uint64_t seed = 7) {
    cluster = std::make_unique<Cluster>(engine, CostModel{}, seed);
    pm = &cluster->add_machine(MachineSpec{});
  }

  DomU& vm(const std::string& name) {
    VmSpec spec;
    spec.name = name;
    return pm->add_vm(spec);
  }
};

// ---------------------------------------------------------------- idle
TEST(MachineCalibration, IdleBaselinesMatchSectionIIIC) {
  Testbed t;
  t.vm("vm1");
  const Utils u = run_and_measure(t.engine, *t.pm);
  // Dom0 background (sans monitoring script) and hypervisor idle CPU.
  EXPECT_NEAR(u.dom0.cpu_pct, 16.35, 0.3);
  EXPECT_NEAR(u.hyp_cpu, 3.0, 0.2);
  // "PM's I/O and bandwidth utilizations have constant values of 18.8
  // blocks/s and 254 bytes/s".
  EXPECT_NEAR(u.devices.disk_blocks_per_s, 18.8, 0.5);
  EXPECT_NEAR(util::kbps_to_bytes_per_s(u.devices.nic_kbps), 254.0, 15.0);
  // Dom0 generates no guest-visible I/O or traffic.
  EXPECT_DOUBLE_EQ(u.dom0.io_blocks_per_s, 0.0);
  EXPECT_DOUBLE_EQ(u.dom0.bw_kbps, 0.0);
}

// ------------------------------------------------- Fig. 2(a): CPU sweep
TEST(MachineCalibration, Fig2aDom0AndHypervisorEndpoints) {
  // At 99 % VM CPU: Dom0 = 16.8->29.5 (minus the 0.45 script share),
  // hypervisor = 3->14.
  Testbed t;
  t.vm("vm1").attach(std::make_unique<wl::CpuHog>(99.0, 3));
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm.cpu_pct, 99.0, 0.5);
  EXPECT_NEAR(u.dom0.cpu_pct, 29.5 - 0.45, 0.5);
  EXPECT_NEAR(u.hyp_cpu, 14.0, 0.4);
}

TEST(MachineCalibration, Fig2aConvexIncreaseRates) {
  // "increase rate growing from 0.01 to 0.31" (Dom0): the marginal
  // slope of Dom0 CPU vs VM CPU must grow with the load.
  double prev_dom0 = 0.0, prev_hyp = 0.0;
  double first_dom0_slope = 0.0, last_dom0_slope = 0.0;
  double first_hyp_slope = 0.0, last_hyp_slope = 0.0;
  const std::vector<double> loads = {1, 30, 60, 90, 99};
  for (std::size_t i = 0; i < loads.size(); ++i) {
    Testbed t(100 + i);
    t.vm("vm1").attach(std::make_unique<wl::CpuHog>(loads[i], 3));
    const Utils u = run_and_measure(t.engine, *t.pm);
    if (i == 1) {
      first_dom0_slope = (u.dom0.cpu_pct - prev_dom0) / (loads[1] - loads[0]);
      first_hyp_slope = (u.hyp_cpu - prev_hyp) / (loads[1] - loads[0]);
    }
    if (i == loads.size() - 1) {
      last_dom0_slope =
          (u.dom0.cpu_pct - prev_dom0) / (loads[i] - loads[i - 1]);
      last_hyp_slope = (u.hyp_cpu - prev_hyp) / (loads[i] - loads[i - 1]);
    }
    prev_dom0 = u.dom0.cpu_pct;
    prev_hyp = u.hyp_cpu;
  }
  EXPECT_GT(last_dom0_slope, 2.0 * first_dom0_slope);  // convex
  EXPECT_GT(last_hyp_slope, 1.5 * first_hyp_slope);
  EXPECT_NEAR(first_dom0_slope, 0.05, 0.06);   // near the paper's 0.01-0.1
  EXPECT_GT(last_dom0_slope, 0.2);             // approaching 0.26-0.31
}

// -------------------------------------------------- Fig. 2(b): I/O sweep
TEST(MachineCalibration, Fig2bPmIoTwiceVmIo) {
  Testbed t;
  t.vm("vm1").attach(std::make_unique<wl::IoHog>(72.0, 3));
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm.io_blocks_per_s, 72.0, 2.0);
  // PM I/O = amplification * VM I/O + 18.8 background: "slightly more
  // than twice".
  EXPECT_NEAR(u.devices.disk_blocks_per_s, 2.05 * 72.0 + 18.8, 4.0);
  EXPECT_GT(u.devices.disk_blocks_per_s, 2.0 * u.vm.io_blocks_per_s);
  // Dom0 only schedules the requests; zero I/O of its own.
  EXPECT_DOUBLE_EQ(u.dom0.io_blocks_per_s, 0.0);
}

TEST(MachineCalibration, VmIoCappedAt90Blocks) {
  Testbed t;
  t.vm("vm1").attach(std::make_unique<wl::IoHog>(500.0, 3));
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm.io_blocks_per_s, 90.0, 3.0);
}

// -------------------------------------------------- Fig. 2(c): CPU flat
TEST(MachineCalibration, Fig2cCpuStableUnderIoSweep) {
  for (double blocks : {15.0, 46.0, 72.0}) {
    Testbed t(static_cast<std::uint64_t>(blocks));
    t.vm("vm1").attach(std::make_unique<wl::IoHog>(blocks, 3));
    const Utils u = run_and_measure(t.engine, *t.pm);
    EXPECT_NEAR(u.dom0.cpu_pct, 16.35, 0.8) << blocks;
    EXPECT_NEAR(u.hyp_cpu, 2.9, 0.4) << blocks;
    EXPECT_NEAR(u.vm.cpu_pct, 0.84, 0.3) << blocks;  // pump-loop CPU
  }
}

// --------------------------------------------------- Fig. 2(d): BW sweep
TEST(MachineCalibration, Fig2dPmBwTracksVmBwWithTinyOverhead) {
  Testbed t;
  t.vm("vm1").attach(
      std::make_unique<wl::NetPing>(1280.0, NetTarget{}, 3));
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm.bw_kbps, 1280.0, 15.0);
  // Overhead = NIC - VM traffic: background 254 B/s + ~0.1 % framing,
  // "nearly 400 bytes/s" in the paper's plot, certainly < 1 % of load.
  const double overhead_kbps = u.devices.nic_kbps - u.vm.bw_kbps;
  EXPECT_GT(overhead_kbps, 0.0);
  EXPECT_LT(overhead_kbps, 0.01 * u.vm.bw_kbps + 5.0);
  EXPECT_DOUBLE_EQ(u.dom0.bw_kbps, 0.0);
}

// --------------------------------------------------- Fig. 2(e): BW->CPU
TEST(MachineCalibration, Fig2eDom0CpuSlopeIsPointO1PerKbps) {
  Utils lo, hi;
  {
    Testbed t(1);
    t.vm("vm1").attach(std::make_unique<wl::NetPing>(1.0, NetTarget{}, 3));
    lo = run_and_measure(t.engine, *t.pm);
  }
  {
    Testbed t(2);
    t.vm("vm1").attach(
        std::make_unique<wl::NetPing>(1280.0, NetTarget{}, 3));
    hi = run_and_measure(t.engine, *t.pm);
  }
  const double slope = (hi.dom0.cpu_pct - lo.dom0.cpu_pct) / (1280.0 - 1.0);
  EXPECT_NEAR(slope, 0.0105, 0.0015);  // paper: "constant increase rate 0.01"
  // Hypervisor: 2.5 -> 3.5 over the sweep (rate 0.00055/Kbps).
  const double hyp_slope = (hi.hyp_cpu - lo.hyp_cpu) / (1280.0 - 1.0);
  EXPECT_NEAR(hyp_slope, 0.00055, 0.0002);
  // VM packet-generation CPU: 0.5 % -> 3 %.
  EXPECT_NEAR(lo.vm.cpu_pct, 0.5, 0.2);
  EXPECT_NEAR(hi.vm.cpu_pct, 3.0, 0.4);
}

// ------------------------------------- Fig. 3(a)/4(a): co-located CPU
TEST(MachineCalibration, Fig3aTwoVmsSaturateAt95) {
  Testbed t;
  t.vm("vm1").attach(std::make_unique<wl::CpuHog>(100.0, 3));
  t.vm("vm2").attach(std::make_unique<wl::CpuHog>(100.0, 4));
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm.cpu_pct, 95.0, 1.0);
  // Dom0 plateau: 23.4 % with script = 22.95 without.
  EXPECT_NEAR(u.dom0.cpu_pct, 23.4 - 0.45, 0.8);
  EXPECT_NEAR(u.hyp_cpu, 12.0, 0.5);
}

TEST(MachineCalibration, Fig4aFourVmsSaturateAt47) {
  Testbed t;
  for (int i = 1; i <= 4; ++i) {
    t.vm("vm" + std::to_string(i))
        .attach(std::make_unique<wl::CpuHog>(100.0, 3 + i));
  }
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm.cpu_pct, 47.5, 1.0);
  EXPECT_NEAR(u.dom0.cpu_pct, 23.4 - 0.45, 0.8);
  EXPECT_NEAR(u.hyp_cpu, 12.0, 0.5);
}

// ------------------------------------------- Fig. 3(b)/4(b): multi I/O
TEST(MachineCalibration, Fig4bPmIoMoreThanTwiceSum) {
  Testbed t;
  for (int i = 1; i <= 4; ++i) {
    t.vm("vm" + std::to_string(i))
        .attach(std::make_unique<wl::IoHog>(72.0, 3 + i));
  }
  const Utils u = run_and_measure(t.engine, *t.pm);
  EXPECT_NEAR(u.vm_sum.io_blocks_per_s, 4 * 72.0, 6.0);
  EXPECT_GT(u.devices.disk_blocks_per_s, 2.0 * u.vm_sum.io_blocks_per_s);
}

// ----------------------------------------- Fig. 3(c): Dom0 coloc extra
TEST(MachineCalibration, Fig3cColocationAddsDom0Cpu) {
  Testbed t;
  t.vm("vm1").attach(std::make_unique<wl::IoHog>(46.0, 3));
  t.vm("vm2").attach(std::make_unique<wl::IoHog>(46.0, 4));
  const Utils u = run_and_measure(t.engine, *t.pm);
  // 17.4 % with script = 16.95 without: +0.6 over the single-VM base.
  EXPECT_NEAR(u.dom0.cpu_pct, 17.4 - 0.45, 0.8);
}

// -------------------------------------------- Fig. 3(d)/4(d): multi BW
TEST(MachineCalibration, Fig4dPmBwThreePercentOverhead) {
  Testbed t;
  for (int i = 1; i <= 4; ++i) {
    t.vm("vm" + std::to_string(i))
        .attach(std::make_unique<wl::NetPing>(1280.0, NetTarget{}, 3 + i));
  }
  const Utils u = run_and_measure(t.engine, *t.pm);
  const double sum_bw = u.vm_sum.bw_kbps;
  const double frac = (u.devices.nic_kbps - sum_bw) / u.devices.nic_kbps;
  EXPECT_NEAR(frac, 0.03, 0.01);  // "|PMbw - sum VMbw| / PMbw = 3%"
}

// ----------------------------------------- Fig. 3(e)/4(e): BW->Dom0 CPU
TEST(MachineCalibration, Fig4eDom0SlopeTwiceFig3e) {
  auto dom0_at = [](int n_vms, double kbps, std::uint64_t seed) {
    Testbed t(seed);
    for (int i = 1; i <= n_vms; ++i) {
      t.vm("vm" + std::to_string(i))
          .attach(std::make_unique<wl::NetPing>(kbps, NetTarget{},
                                                seed + static_cast<std::uint64_t>(i)));
    }
    return run_and_measure(t.engine, *t.pm).dom0.cpu_pct;
  };
  const double two_lo = dom0_at(2, 1.0, 11), two_hi = dom0_at(2, 1280.0, 12);
  const double four_lo = dom0_at(4, 1.0, 13), four_hi = dom0_at(4, 1280.0, 14);
  const double slope2 = (two_hi - two_lo) / 1279.0;   // per input Kb/s
  const double slope4 = (four_hi - four_lo) / 1279.0;
  EXPECT_NEAR(slope4 / slope2, 2.0, 0.25);  // "twice as much"
  // Dom0 endpoint for 4 VMs: paper 67.1 % (with script).
  EXPECT_NEAR(four_hi, 67.0, 5.0);
}

// --------------------------------------------- Fig. 5: intra-PM traffic
TEST(MachineCalibration, Fig5IntraPmTrafficBypassesNic) {
  Testbed t;
  DomU& vm1 = t.vm("vm1");
  t.vm("vm2");
  vm1.attach(std::make_unique<wl::NetPing>(
      1280.0, NetTarget{t.pm->id(), "vm2"}, 3));
  const Utils u = run_and_measure(t.engine, *t.pm);
  // Sender's VIF sees the traffic...
  EXPECT_NEAR(u.vm.bw_kbps, 1280.0, 15.0);
  // ...but the physical NIC only carries the background chatter.
  EXPECT_LT(u.devices.nic_kbps, 5.0);
  EXPECT_DOUBLE_EQ(u.dom0.bw_kbps, 0.0);
}

TEST(MachineCalibration, Fig5bIntraPmDom0SlopeFiveTimesSmaller) {
  auto dom0_at = [](double kbps, bool intra, std::uint64_t seed) {
    Testbed t(seed);
    DomU& vm1 = t.vm("vm1");
    t.vm("vm2");
    const NetTarget target =
        intra ? NetTarget{t.pm->id(), "vm2"} : NetTarget{};
    vm1.attach(std::make_unique<wl::NetPing>(kbps, target, seed));
    return run_and_measure(t.engine, *t.pm).dom0.cpu_pct;
  };
  const double intra_slope =
      (dom0_at(1280.0, true, 21) - dom0_at(1.0, true, 22)) / 1279.0;
  const double inter_slope =
      (dom0_at(1280.0, false, 23) - dom0_at(1.0, false, 24)) / 1279.0;
  EXPECT_NEAR(inter_slope / intra_slope, 5.0, 1.0);  // "5X less"
  EXPECT_NEAR(intra_slope, 0.002, 0.0007);
}

// ------------------------------------------------ machine administration
TEST(Machine, AddRemoveFindVm) {
  Testbed t;
  t.vm("a");
  t.vm("b");
  EXPECT_EQ(t.pm->vm_count(), 2u);
  EXPECT_NE(t.pm->find_vm("a"), nullptr);
  EXPECT_EQ(t.pm->find_vm("zz"), nullptr);
  EXPECT_TRUE(t.pm->remove_vm("a"));
  EXPECT_FALSE(t.pm->remove_vm("a"));
  EXPECT_EQ(t.pm->vm_count(), 1u);
}

TEST(Machine, DuplicateVmNameRejected) {
  Testbed t;
  t.vm("a");
  VmSpec dup;
  dup.name = "a";
  EXPECT_THROW((void)t.pm->add_vm(dup), util::ContractViolation);
}

TEST(Machine, MemoryInUseIsDom0PlusGuests) {
  Testbed t;
  t.vm("a");
  t.vm("b");
  t.engine.run_for(seconds(1));
  const double expected = MachineSpec{}.dom0_mem_mib +
                          2 * VmSpec{}.os_base_mem_mib;
  EXPECT_NEAR(t.pm->memory_in_use_mib(), expected, 1.0);
}

TEST(Machine, LastGrantedAccessors) {
  Testbed t;
  t.vm("a").attach(std::make_unique<wl::CpuHog>(40.0, 3));
  t.engine.run_for(seconds(1));
  EXPECT_NEAR(t.pm->last_granted_pct("a"), 40.0, 2.0);
  EXPECT_THROW((void)t.pm->last_granted_pct("zz"), util::ContractViolation);
}

TEST(Cluster, RoutesInterPmFlows) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 5);
  PhysicalMachine& pm0 = cluster.add_machine(MachineSpec{});
  PhysicalMachine& pm1 = cluster.add_machine(MachineSpec{});
  VmSpec s1;
  s1.name = "sender";
  DomU& sender = pm0.add_vm(s1);
  VmSpec s2;
  s2.name = "receiver";
  pm1.add_vm(s2);
  sender.attach(std::make_unique<wl::NetPing>(
      640.0, NetTarget{pm1.id(), "receiver"}, 3));
  const MachineSnapshot before = pm1.snapshot(engine.now());
  engine.run_for(seconds(10));
  const MachineSnapshot after = pm1.snapshot(engine.now());
  const double rx_kbps =
      (after.guest("receiver").counters.rx_kbits -
       before.guest("receiver").counters.rx_kbits) / 10.0;
  EXPECT_NEAR(rx_kbps, 640.0, 20.0);
  EXPECT_DOUBLE_EQ(cluster.dropped_kbits(), 0.0);
}

TEST(Cluster, DropsFlowsToMissingVm) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 5);
  PhysicalMachine& pm0 = cluster.add_machine(MachineSpec{});
  VmSpec s1;
  s1.name = "sender";
  DomU& sender = pm0.add_vm(s1);
  sender.attach(std::make_unique<wl::NetPing>(
      100.0, NetTarget{42, "ghost"}, 3));
  engine.run_for(seconds(5));
  EXPECT_GT(cluster.dropped_kbits(), 0.0);
}

}  // namespace
}  // namespace voprof::sim
