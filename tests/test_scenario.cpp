#include "voprof/scenario/scenario.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"
#include "voprof/util/ini.hpp"

namespace voprof {
namespace {

// ------------------------------------------------------------- INI layer
TEST(Ini, ParsesSectionsAndEntries) {
  const auto doc = util::IniDocument::parse(
      "# comment\n"
      "[cluster]\n"
      "seed = 7\n"
      "\n"
      "[vm web]   # trailing comment\n"
      "machine = 0\n"
      "cpu = 55.5\n");
  ASSERT_EQ(doc.sections().size(), 2u);
  EXPECT_EQ(doc.sections()[0].kind, "cluster");
  EXPECT_EQ(doc.sections()[1].kind, "vm");
  EXPECT_EQ(doc.sections()[1].name, "web");
  EXPECT_EQ(doc.unique("cluster").get_int("seed", 0), 7);
  EXPECT_DOUBLE_EQ(doc.of_kind("vm")[0]->get_double("cpu", 0), 55.5);
  EXPECT_EQ(doc.of_kind("vm")[0]->get_or("missing", "x"), "x");
}

TEST(Ini, RepeatedKindsKeepOrder) {
  const auto doc = util::IniDocument::parse(
      "[vm a]\nmachine=0\n[vm b]\nmachine=1\n");
  const auto vms = doc.of_kind("vm");
  ASSERT_EQ(vms.size(), 2u);
  EXPECT_EQ(vms[0]->name, "a");
  EXPECT_EQ(vms[1]->name, "b");
  EXPECT_THROW((void)doc.unique("vm"), util::ContractViolation);
  EXPECT_THROW((void)doc.unique("nope"), util::ContractViolation);
}

TEST(Ini, LastValueWinsForDuplicateKeys) {
  const auto doc = util::IniDocument::parse("[s]\nk = 1\nk = 2\n");
  EXPECT_EQ(doc.unique("s").get_int("k", 0), 2);
}

TEST(Ini, MalformedInputRejected) {
  EXPECT_THROW((void)util::IniDocument::parse("[broken\nk=1\n"),
               util::ContractViolation);
  EXPECT_THROW((void)util::IniDocument::parse("key = before-section\n"),
               util::ContractViolation);
  EXPECT_THROW((void)util::IniDocument::parse("[s]\nnot-a-pair\n"),
               util::ContractViolation);
  EXPECT_THROW((void)util::IniDocument::parse("[]\n"),
               util::ContractViolation);
  const auto doc = util::IniDocument::parse("[s]\nk = abc\n");
  EXPECT_THROW((void)doc.unique("s").get_double("k", 0),
               util::ContractViolation);
}

// --------------------------------------------------------- scenario spec
constexpr const char* kScenario = R"(
[cluster]
seed = 11
machines = 2

[vm web]
machine = 0
cpu = 50
bw = 800
bw_target_machine = 1
bw_target_vm = sink

[vm sink]
machine = 1

[monitor]
machine = 0

[monitor]
machine = 1

[run]
duration = 20
warmup = 2
)";

TEST(ScenarioSpec, ParsesFullDescription) {
  const auto spec = scenario::ScenarioSpec::parse(kScenario);
  EXPECT_EQ(spec.seed, 11u);
  EXPECT_EQ(spec.machines, 2);
  ASSERT_EQ(spec.vms.size(), 2u);
  EXPECT_EQ(spec.vms[0].name, "web");
  EXPECT_DOUBLE_EQ(spec.vms[0].bw_kbps, 800.0);
  EXPECT_EQ(spec.vms[0].bw_target_vm, "sink");
  EXPECT_EQ(spec.monitored_machines.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.duration_s, 20.0);
}

TEST(ScenarioSpec, ValidationCatchesMistakes) {
  EXPECT_THROW((void)scenario::ScenarioSpec::parse("[cluster]\n"),
               util::ContractViolation);  // no VMs
  EXPECT_THROW((void)scenario::ScenarioSpec::parse(
                   "[cluster]\nmachines=1\n[vm a]\nmachine = 5\n"),
               util::ContractViolation);  // machine out of range
  EXPECT_THROW((void)scenario::ScenarioSpec::parse(
                   "[cluster]\n[vm a]\nbw_target_vm = ghost\n"),
               util::ContractViolation);  // target without machine
  EXPECT_THROW(
      (void)scenario::ScenarioSpec::parse(
          "[cluster]\nmachines=2\n[vm a]\nbw = 5\nbw_target_machine = 1\n"
          "bw_target_vm = ghost\n"),
      util::ContractViolation);  // target VM does not exist
  EXPECT_THROW((void)scenario::ScenarioSpec::parse(
                   "[cluster]\nscheduler = quantum\n[vm a]\n"),
               util::ContractViolation);  // bad scheduler
  EXPECT_THROW((void)scenario::ScenarioSpec::parse(
                   "[cluster]\n[vm a]\n[vm a]\n"),
               util::ContractViolation);  // duplicate VM
}

TEST(ScenarioRun, ExecutesAndReports) {
  const auto spec = scenario::ScenarioSpec::parse(kScenario);
  const auto result = scenario::run_scenario(spec);
  ASSERT_EQ(result.reports.size(), 2u);
  const mon::MeasurementReport& pm0 = result.reports.at(0);
  EXPECT_EQ(pm0.sample_count(), 20u);
  EXPECT_NEAR(pm0.mean("web").cpu_pct, 50.0 + 2.06, 2.0);  // + bw pump
  EXPECT_NEAR(pm0.mean("web").bw_kbps, 800.0, 20.0);
  // The sink on machine 1 receives the traffic.
  const mon::MeasurementReport& pm1 = result.reports.at(1);
  EXPECT_NEAR(pm1.mean("sink").bw_kbps, 800.0, 25.0);
  // Summary renders every entity.
  const std::string s = result.summary();
  EXPECT_NE(s.find("machine 0"), std::string::npos);
  EXPECT_NE(s.find("web"), std::string::npos);
  EXPECT_NE(s.find("sink"), std::string::npos);
}

TEST(ScenarioRun, MicroSchedulerSelectable) {
  const auto spec = scenario::ScenarioSpec::parse(
      "[cluster]\nscheduler = micro\n[vm a]\ncpu = 40\n[run]\nduration = "
      "10\n");
  const auto result = scenario::run_scenario(spec);
  EXPECT_NEAR(result.reports.at(0).mean("a").cpu_pct, 40.0, 2.0);
}

TEST(ScenarioRun, TraceVmReplaysCsv) {
  const std::string path = ::testing::TempDir() + "/voprof_scn_trace.csv";
  {
    util::CsvDocument csv({"vm_cpu", "vm_io"});
    for (int i = 0; i < 10; ++i) csv.add_row({35.0, 12.0});
    csv.save(path);
  }
  const auto spec = scenario::ScenarioSpec::parse(
      "[cluster]\n[vm replay]\ntrace = " + path +
      "\n[run]\nduration = 15\n");
  const auto result = scenario::run_scenario(spec);
  EXPECT_NEAR(result.reports.at(0).mean("replay").cpu_pct, 35.0, 2.0);
  EXPECT_NEAR(result.reports.at(0).mean("replay").io_blocks_per_s, 12.0,
              1.5);
}

TEST(ScenarioSpec, TraceAndLevelsExclusive) {
  EXPECT_THROW((void)scenario::ScenarioSpec::parse(
                   "[cluster]\n[vm a]\ncpu = 10\ntrace = x.csv\n"),
               util::ContractViolation);
  EXPECT_THROW((void)scenario::ScenarioSpec::parse(
                   "[cluster]\n[vm a]\ntrace = x.csv\ntrace_interval = 0\n"),
               util::ContractViolation);
}

TEST(ReportPercentiles, PeaksAboveMeansForBurstyLoad) {
  // A stepping trace: p95 CPU must sit near the peak, the mean between.
  const std::string path = ::testing::TempDir() + "/voprof_scn_burst.csv";
  {
    util::CsvDocument csv({"vm_cpu"});
    for (int i = 0; i < 8; ++i) csv.add_row({10.0});
    for (int i = 0; i < 2; ++i) csv.add_row({90.0});
    csv.save(path);
  }
  const auto spec = scenario::ScenarioSpec::parse(
      "[cluster]\n[vm bursty]\ntrace = " + path +
      "\n[run]\nduration = 40\n");
  const auto result = scenario::run_scenario(spec);
  const mon::MeasurementReport& r = result.reports.at(0);
  const double mean = r.mean("bursty").cpu_pct;
  const double p95 = r.percentile("bursty", 95.0).cpu_pct;
  const double p50 = r.percentile("bursty", 50.0).cpu_pct;
  EXPECT_NEAR(mean, 26.0, 4.0);  // 0.8*10 + 0.2*90
  EXPECT_GT(p95, 80.0);
  EXPECT_NEAR(p50, 10.0, 2.0);
  EXPECT_THROW((void)r.percentile("ghost", 50.0), util::ContractViolation);
}

}  // namespace
}  // namespace voprof
