#include "voprof/xensim/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "voprof/util/assert.hpp"

namespace voprof::sim {
namespace {

std::vector<SchedRequest> demands(std::initializer_list<double> d) {
  std::vector<SchedRequest> out;
  for (double v : d) out.push_back(SchedRequest{v, 100.0, 1.0});
  return out;
}

TEST(CreditScheduler, SingleVcpuGetsItsDemand) {
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({60.0}));
  ASSERT_EQ(r.granted_pct.size(), 1u);
  EXPECT_DOUBLE_EQ(r.granted_pct[0], 60.0);
  EXPECT_FALSE(r.contended);
}

TEST(CreditScheduler, SingleVcpuNoEfficiencyPenalty) {
  // Fig. 2(a): one VM reaches 99 % - the multi-VM loss must not apply.
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({99.0}));
  EXPECT_DOUBLE_EQ(r.granted_pct[0], 99.0);
}

TEST(CreditScheduler, TwoSaturatedVcpusReach95Each) {
  // Fig. 3(a): two VMs at 100 % input consume 95 % each.
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({100.0, 100.0}));
  EXPECT_NEAR(r.granted_pct[0], 95.0, 1e-9);
  EXPECT_NEAR(r.granted_pct[1], 95.0, 1e-9);
  EXPECT_TRUE(r.contended);
}

TEST(CreditScheduler, FourSaturatedVcpusReach47Each) {
  // Fig. 4(a): four VMs at 100 % input consume ~47 % each.
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({100.0, 100.0, 100.0, 100.0}));
  for (double g : r.granted_pct) EXPECT_NEAR(g, 47.5, 1e-9);
}

TEST(CreditScheduler, LowDemandFullySatisfied) {
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({30.0, 30.0, 30.0, 30.0}));
  for (double g : r.granted_pct) EXPECT_NEAR(g, 30.0, 1e-9);
  EXPECT_FALSE(r.contended);
}

TEST(CreditScheduler, WorkConservingSlackRedistribution) {
  // One light VCPU returns slack to two heavy ones.
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({10.0, 100.0, 100.0}));
  EXPECT_NEAR(r.granted_pct[0], 10.0, 1e-9);
  // Remaining 180 split between the two heavy VCPUs.
  EXPECT_NEAR(r.granted_pct[1], 90.0, 1e-9);
  EXPECT_NEAR(r.granted_pct[2], 90.0, 1e-9);
  EXPECT_NEAR(r.total_granted_pct, 190.0, 1e-9);
}

TEST(CreditScheduler, PerVcpuCapRespected) {
  const CreditScheduler sched(400.0, 1.0);
  std::vector<SchedRequest> reqs = {{250.0, 100.0, 1.0}, {50.0, 100.0, 1.0}};
  const SchedResult r = sched.allocate(reqs);
  EXPECT_NEAR(r.granted_pct[0], 100.0, 1e-9);  // capped at the VCPU count
  EXPECT_NEAR(r.granted_pct[1], 50.0, 1e-9);
}

TEST(CreditScheduler, WeightsBiasContendedShares) {
  const CreditScheduler sched(100.0, 1.0);
  std::vector<SchedRequest> reqs = {{100.0, 100.0, 3.0}, {100.0, 100.0, 1.0}};
  const SchedResult r = sched.allocate(reqs);
  EXPECT_NEAR(r.granted_pct[0], 75.0, 1e-9);
  EXPECT_NEAR(r.granted_pct[1], 25.0, 1e-9);
}

TEST(CreditScheduler, ZeroDemandGetsZero) {
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate(demands({0.0, 80.0}));
  EXPECT_DOUBLE_EQ(r.granted_pct[0], 0.0);
  // Only one runnable VCPU: no efficiency penalty either.
  EXPECT_NEAR(r.granted_pct[1], 80.0, 1e-9);
}

TEST(CreditScheduler, EmptyRequestListOk) {
  const CreditScheduler sched(200.0, 0.95);
  const SchedResult r = sched.allocate({});
  EXPECT_TRUE(r.granted_pct.empty());
  EXPECT_DOUBLE_EQ(r.total_granted_pct, 0.0);
}

TEST(CreditScheduler, NeverExceedsPool) {
  const CreditScheduler sched(200.0, 0.95);
  for (int n = 1; n <= 8; ++n) {
    std::vector<SchedRequest> reqs(static_cast<std::size_t>(n),
                                   SchedRequest{100.0, 100.0, 1.0});
    const SchedResult r = sched.allocate(reqs);
    const double pool = n >= 2 ? 190.0 : 200.0;
    EXPECT_LE(r.total_granted_pct, pool + 1e-9) << "n=" << n;
  }
}

TEST(CreditScheduler, RejectsInvalidInputs) {
  EXPECT_THROW(CreditScheduler(0.0, 0.95), util::ContractViolation);
  EXPECT_THROW(CreditScheduler(200.0, 0.0), util::ContractViolation);
  EXPECT_THROW(CreditScheduler(200.0, 1.5), util::ContractViolation);
  const CreditScheduler sched(200.0, 0.95);
  EXPECT_THROW((void)sched.allocate({SchedRequest{-1.0, 100.0, 1.0}}),
               util::ContractViolation);
  EXPECT_THROW((void)sched.allocate({SchedRequest{1.0, 100.0, 0.0}}),
               util::ContractViolation);
}

/// Property sweep: allocation is work-conserving and fair for many
/// demand mixes.
class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, WorkConservingAndBounded) {
  const int n = GetParam();
  const CreditScheduler sched(200.0, 0.95);
  std::vector<SchedRequest> reqs;
  double total_demand = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = 10.0 + 13.0 * i;  // varied demands
    reqs.push_back(SchedRequest{d, 100.0, 1.0});
    total_demand += std::min(d, 100.0);
  }
  const SchedResult r = sched.allocate(reqs);
  const double pool = (n >= 2 ? 190.0 : 200.0);
  // Work conservation: grant everything or fill the pool.
  EXPECT_NEAR(r.total_granted_pct, std::min(total_demand, pool), 1e-6);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_LE(r.granted_pct[i], std::min(reqs[i].demand_pct, 100.0) + 1e-9);
    EXPECT_GE(r.granted_pct[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(VaryVcpuCount, SchedulerSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 16));

}  // namespace
}  // namespace voprof::sim
