/// End-to-end integration tests across module boundaries: determinism
/// of the full pipeline, monitor -> CSV -> trace-replay round trips,
/// trained-model serialization feeding the placement layer, and the
/// complete paper pipeline (train -> deploy RUBiS -> predict) in one
/// pass.

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/placement/placer.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/trace.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/rubis/deployment.hpp"

namespace voprof {
namespace {

using util::seconds;

TEST(Determinism, SameSeedSameMeasurement) {
  auto run = []() {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 1234);
    sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
    sim::VmSpec spec;
    spec.name = "vm1";
    sim::DomU& vm = pm.add_vm(spec);
    vm.attach(std::make_unique<wl::CpuHog>(55.0, 5));
    vm.attach(std::make_unique<wl::NetPing>(640.0, sim::NetTarget{}, 6));
    mon::MonitorScript mon(engine, pm);
    const mon::MeasurementReport& r = mon.measure(seconds(30));
    return std::make_tuple(r.mean("vm1").cpu_pct,
                           r.mean(mon::MeasurementReport::kDom0Key).cpu_pct,
                           r.mean(mon::MeasurementReport::kPmKey).bw_kbps);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_DOUBLE_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_DOUBLE_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(Determinism, DifferentSeedsDifferButAgreeOnAverage) {
  auto dom0_at = [](std::uint64_t seed) {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, seed);
    sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
    sim::VmSpec spec;
    spec.name = "vm1";
    pm.add_vm(spec).attach(std::make_unique<wl::CpuHog>(60.0, seed));
    mon::MonitorScript mon(engine, pm);
    return mon.measure(seconds(30))
        .mean(mon::MeasurementReport::kDom0Key)
        .cpu_pct;
  };
  const double a = dom0_at(1);
  const double b = dom0_at(2);
  EXPECT_NE(a, b);            // different noise realizations
  EXPECT_NEAR(a, b, 0.5);     // same mechanism
}

TEST(Determinism, TrainerIsReproducible) {
  model::TrainerConfig cfg;
  cfg.duration = seconds(5.0);
  cfg.vm_counts = {1, 2};
  // All four kinds: without I/O and memory sweeps the io/mem design
  // columns are degenerate and the fit rightly refuses.
  const model::Trainer trainer(cfg);
  const auto m1 = trainer.train(model::RegressionMethod::kOls);
  const auto m2 = trainer.train(model::RegressionMethod::kOls);
  const model::UtilVec probe{60, 120, 30, 640};
  EXPECT_DOUBLE_EQ(m1.multi.predict(probe, 2).cpu,
                   m2.multi.predict(probe, 2).cpu);
}

TEST(Pipeline, MonitorCsvTraceReplayRoundTrip) {
  // Record a VM with the monitor, export to CSV, replay the trace in a
  // fresh VM, and confirm the replayed utilization matches.
  util::CsvDocument csv({"vm_cpu", "vm_mem", "vm_io", "vm_bw"});
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 91);
    sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
    sim::VmSpec spec;
    spec.name = "src";
    sim::DomU& vm = pm.add_vm(spec);
    vm.attach(std::make_unique<wl::IoHog>(46.0, 7));
    vm.attach(std::make_unique<wl::CpuHog>(35.0, 8));
    mon::MonitorScript mon(engine, pm);
    const mon::MeasurementReport& r = mon.measure(seconds(20));
    const mon::SeriesSet& s = r.series("src");
    for (std::size_t i = 0; i < r.sample_count(); ++i) {
      csv.add_row({s.cpu[i].value, s.mem[i].value, s.io[i].value,
                   s.bw[i].value});
    }
  }
  const auto trace = wl::trace_from_csv(csv);
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 92);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "replay";
  pm.add_vm(spec).attach(std::make_unique<wl::TraceWorkload>(
      trace, sim::NetTarget{}, /*loop=*/true));
  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& r = mon.measure(seconds(20));
  EXPECT_NEAR(r.mean("replay").cpu_pct, 35.0 + 0.79 + 0.05, 1.0);
  EXPECT_NEAR(r.mean("replay").io_blocks_per_s, 46.0, 2.0);
}

TEST(Pipeline, SerializedModelDrivesPlacement) {
  // Train, serialize, reload, and hand the reloaded model to the
  // placement and hotspot layers.
  model::TrainerConfig cfg;
  cfg.duration = seconds(15.0);
  cfg.seed = 93;
  const model::TrainedModels trained =
      model::Trainer(cfg).train(model::RegressionMethod::kLms);
  const model::TrainedModels reloaded =
      model::models_from_string(model::models_to_string(trained));

  place::PlacerConfig pcfg;
  pcfg.overhead_aware = true;
  const place::Placer placer(pcfg, &reloaded.multi);
  std::vector<place::PmState> pool(2);
  pool[0].spec = pool[1].spec = sim::MachineSpec{};
  const model::UtilVec heavy{60, 120, 0, 1500};
  std::size_t spread = 0;
  for (int i = 0; i < 5; ++i) {
    spread = placer.place(pool, heavy, 256.0);
  }
  // The reloaded model spreads heavy VMs over both hosts.
  EXPECT_GT(pool[0].vm_count(), 0);
  EXPECT_GT(pool[1].vm_count(), 0);
  (void)spread;
}

TEST(Pipeline, FullPaperFlowSingleShot) {
  // The complete Sec. III->VI flow in one test: train on micro
  // benchmarks, deploy RUBiS, measure, predict, check paper-grade
  // accuracy on bandwidth.
  model::TrainerConfig cfg;
  cfg.duration = seconds(20.0);
  cfg.seed = 94;
  const model::TrainedModels models =
      model::Trainer(cfg).train(model::RegressionMethod::kLms);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 95);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = 400;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  engine.run_for(seconds(10));
  mon::MonitorScript mon(engine, cluster.machine(0));
  mon.start();
  engine.run_for(seconds(40));
  mon.stop();

  const model::Predictor predictor(models.multi);
  const model::PredictionEval eval =
      predictor.evaluate(mon.report(), {inst.web_vm});
  EXPECT_LT(eval.of(model::MetricIndex::kBw).error_at_fraction(0.9), 2.0);
  EXPECT_LT(eval.of(model::MetricIndex::kCpu).error_at_fraction(0.9), 8.0);
  EXPECT_LT(eval.of(model::MetricIndex::kMem).error_at_fraction(0.9), 5.0);
  EXPECT_LT(eval.of(model::MetricIndex::kIo).error_at_fraction(0.9), 20.0);
}

TEST(FailureInjection, VmRemovalMidMeasurement) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 96);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec s1;
  s1.name = "stable";
  pm.add_vm(s1).attach(std::make_unique<wl::CpuHog>(30.0, 9));
  sim::VmSpec s2;
  s2.name = "doomed";
  pm.add_vm(s2).attach(std::make_unique<wl::CpuHog>(30.0, 10));
  mon::MonitorScript mon(engine, pm);
  mon.start();
  engine.run_for(seconds(10));
  EXPECT_TRUE(pm.remove_vm("doomed"));
  engine.run_for(seconds(10));
  mon.stop();
  // No crash; samples for the survivor keep flowing after the resync.
  EXPECT_GE(mon.report().series("stable").cpu.size(), 15u);
}

TEST(FailureInjection, EngineSurvivesThrowingEventCallback) {
  sim::Engine engine;
  int after = 0;
  engine.schedule_at(seconds(1), []() {
    throw std::runtime_error("injected");
  });
  engine.schedule_at(seconds(2), [&after]() { ++after; });
  EXPECT_THROW(engine.run_for(seconds(3)), std::runtime_error);
  // The engine state is still sane; continuing runs the later event.
  engine.run_until(seconds(3));
  EXPECT_EQ(after, 1);
}

TEST(FailureInjection, ClusterWithZeroMachinesTicksQuietly) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 97);
  engine.run_for(seconds(5));
  EXPECT_DOUBLE_EQ(cluster.dropped_kbits(), 0.0);
}

}  // namespace
}  // namespace voprof
