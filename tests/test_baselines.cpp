#include "voprof/core/baselines.hpp"

#include <gtest/gtest.h>

#include "voprof/core/trainer.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::model {
namespace {

TEST(NaiveSum, PredictsExactlyTheSum) {
  const NaiveSumModel m;
  const UtilVec sum{50, 100, 30, 640};
  const UtilVec pm = m.predict(sum, 3);
  EXPECT_DOUBLE_EQ(pm.cpu, 50.0);
  EXPECT_DOUBLE_EQ(pm.mem, 100.0);
  EXPECT_DOUBLE_EQ(pm.io, 30.0);
  EXPECT_DOUBLE_EQ(pm.bw, 640.0);
  EXPECT_THROW((void)m.predict(sum, 0), util::ContractViolation);
}

TrainingSet synthetic(std::uint64_t seed) {
  util::Rng rng(seed);
  TrainingSet data;
  for (int i = 0; i < 400; ++i) {
    TrainingRow r;
    r.n_vms = 1;
    r.vm_sum = UtilVec{rng.uniform(0, 100), rng.uniform(80, 140),
                       rng.uniform(0, 90), rng.uniform(0, 1280)};
    r.dom0_cpu = 16.8 + 0.004 * r.vm_sum.io + 0.0105 * r.vm_sum.bw +
                 rng.gaussian(0, 0.1);
    r.hyp_cpu = 3.0;
    r.pm = UtilVec{r.vm_sum.cpu + r.dom0_cpu + r.hyp_cpu, 0, 0, 0};
    data.add(std::move(r));
  }
  return data;
}

TEST(Dom0IoModel, RecoversIoAndBwSlopes) {
  const Dom0IoModel m =
      Dom0IoModel::fit(synthetic(3), RegressionMethod::kOls);
  ASSERT_TRUE(m.trained());
  const LinearFit& f = m.dom0_fit();
  ASSERT_EQ(f.coef.size(), 3u);
  EXPECT_NEAR(f.coef[0], 16.8, 0.1);
  EXPECT_NEAR(f.coef[1], 0.004, 0.001);
  EXPECT_NEAR(f.coef[2], 0.0105, 0.0002);
}

TEST(Dom0IoModel, PmCpuOmitsHypervisor) {
  // The baseline's defining blind spot: its PM CPU misses the
  // hypervisor share by construction.
  const Dom0IoModel m =
      Dom0IoModel::fit(synthetic(5), RegressionMethod::kOls);
  const UtilVec sum{50, 100, 30, 640};
  const double predicted = m.predict_pm_cpu(sum, 1);
  const double actual = 50 + (16.8 + 0.004 * 30 + 0.0105 * 640) + 3.0;
  EXPECT_NEAR(actual - predicted, 3.0, 0.3);  // off by ~the hypervisor
}

TEST(Dom0IoModel, WorseThanPaperModelOnCpuHeavyGuests) {
  // On simulated data the baseline must lose to the paper's model for
  // CPU-intensive guests (its design has no guest-CPU feature).
  TrainerConfig cfg;
  cfg.duration = util::seconds(15.0);
  cfg.seed = 31;
  const Trainer trainer(cfg);
  const TrainedModels paper = trainer.train(RegressionMethod::kLms);
  const Dom0IoModel baseline =
      Dom0IoModel::fit(paper.data, RegressionMethod::kLms);

  const TrainingSet validation =
      trainer.collect_run(wl::WorkloadKind::kCpu, 3, 1);
  double paper_err = 0.0, baseline_err = 0.0;
  for (const auto& r : validation.rows()) {
    paper_err += std::abs(paper.multi.predict_pm_cpu_indirect(r.vm_sum, 1) -
                          r.pm.cpu);
    baseline_err +=
        std::abs(baseline.predict_pm_cpu(r.vm_sum, 1) - r.pm.cpu);
  }
  EXPECT_LT(paper_err, baseline_err * 0.7);
}

TEST(Dom0IoModel, UntrainedAndUnderfedRejected) {
  const Dom0IoModel m;
  EXPECT_THROW((void)m.predict_dom0_cpu(UtilVec{}), util::ContractViolation);
  TrainingSet tiny;
  tiny.add(TrainingRow{});
  EXPECT_THROW((void)Dom0IoModel::fit(tiny, RegressionMethod::kOls),
               util::ContractViolation);
}

}  // namespace
}  // namespace voprof::model
