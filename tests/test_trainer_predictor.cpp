/// Trainer + predictor pipeline tests: fit the Sec. V models from
/// simulated micro-benchmark sweeps and check they predict simulated
/// PM utilizations with paper-level accuracy. Shortened durations keep
/// the suite fast; the benches run the full 2-minute sweeps.

#include <gtest/gtest.h>

#include "voprof/core/predictor.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::model {
namespace {

TrainerConfig fast_config() {
  TrainerConfig c;
  c.duration = util::seconds(20.0);
  c.seed = 7;
  return c;
}

TEST(Trainer, CollectRunShapes) {
  const Trainer trainer(fast_config());
  const TrainingSet run =
      trainer.collect_run(wl::WorkloadKind::kCpu, 2, 2);
  EXPECT_EQ(run.size(), 20u);  // one row per 1 s sample
  for (const auto& row : run.rows()) {
    EXPECT_EQ(row.n_vms, 2);
    // Two VMs at 60 % each.
    EXPECT_NEAR(row.vm_sum.cpu, 120.0, 5.0);
    EXPECT_GT(row.pm.cpu, row.vm_sum.cpu);  // overhead exists
  }
}

TEST(Trainer, CollectCoversGrid) {
  TrainerConfig c = fast_config();
  c.duration = util::seconds(3.0);
  c.vm_counts = {1, 2};
  c.kinds = {wl::WorkloadKind::kCpu, wl::WorkloadKind::kBw};
  const Trainer trainer(c);
  const TrainingSet data = trainer.collect();
  // 2 counts x 2 kinds x 5 levels x 3 samples.
  EXPECT_EQ(data.size(), 60u);
  EXPECT_EQ(data.with_vm_count(1).size(), 30u);
  EXPECT_EQ(data.with_vm_count(2).size(), 30u);
}

TEST(Trainer, RejectsBadConfig) {
  TrainerConfig c;
  c.vm_counts.clear();
  EXPECT_THROW(Trainer{c}, util::ContractViolation);
  TrainerConfig c2;
  c2.kinds.clear();
  EXPECT_THROW(Trainer{c2}, util::ContractViolation);
}

class TrainedPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TrainerConfig c;
    c.duration = util::seconds(30.0);
    c.seed = 11;
    const Trainer trainer(c);
    models_ = new TrainedModels(trainer.train(RegressionMethod::kOls));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }
  static TrainedModels* models_;
};

TrainedModels* TrainedPipeline::models_ = nullptr;

TEST_F(TrainedPipeline, CpuCoefficientIsNearOne) {
  // PM CPU rises essentially 1:1 with VM CPU plus Dom0/hyp response.
  const LinearFit& f = models_->single.fit_for(MetricIndex::kCpu);
  EXPECT_GT(f.coef[1], 1.0);   // includes the control-plane response
  EXPECT_LT(f.coef[1], 1.45);
  // Intercept absorbs Dom0 base + hypervisor base (~20 %).
  EXPECT_NEAR(f.coef[0], 20.0, 3.0);
}

TEST_F(TrainedPipeline, IoCoefficientNearAmplification) {
  const LinearFit& f = models_->single.fit_for(MetricIndex::kIo);
  EXPECT_NEAR(f.coef[3], 2.05, 0.15);  // vdisk striping factor
  EXPECT_NEAR(f.coef[0], 18.8, 3.0);   // background I/O
}

TEST_F(TrainedPipeline, BwCpuCrossCoefficientMatchesNetback) {
  // VM bandwidth drives PM CPU at ~0.0105+0.00055 per Kb/s
  // (netback + hypervisor traps).
  const LinearFit& f = models_->single.fit_for(MetricIndex::kCpu);
  EXPECT_NEAR(f.coef[4], 0.011, 0.004);
}

TEST_F(TrainedPipeline, SingleVmPredictionAccurate) {
  // Fresh validation run not used in training.
  TrainerConfig c;
  c.duration = util::seconds(30.0);
  c.seed = 1234;
  const Trainer t(c);
  const TrainingSet validation =
      t.collect_run(wl::WorkloadKind::kCpu, 3, 1);
  const Predictor predictor(models_->multi);
  for (const auto& row : validation.rows()) {
    const UtilVec pred = predictor.predict(row.vm_sum, 1);
    const double err = std::abs(pred.cpu - row.pm.cpu) / row.pm.cpu;
    EXPECT_LT(err, 0.08);
  }
}

TEST_F(TrainedPipeline, MultiVmPredictionAccurate) {
  TrainerConfig c;
  c.duration = util::seconds(30.0);
  c.seed = 4321;
  const Trainer t(c);
  const TrainingSet validation =
      t.collect_run(wl::WorkloadKind::kBw, 3, 2);
  const Predictor predictor(models_->multi);
  double worst = 0.0;
  for (const auto& row : validation.rows()) {
    const UtilVec pred = predictor.predict(row.vm_sum, 2);
    worst = std::max(worst,
                     std::abs(pred.cpu - row.pm.cpu) / row.pm.cpu);
  }
  EXPECT_LT(worst, 0.12);
}

TEST_F(TrainedPipeline, EvaluateBuildsErrorCdfs) {
  // Run a mixed workload and evaluate the streaming predictor.
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 77);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec s1;
  s1.name = "vm1";
  pm.add_vm(s1).attach(std::make_unique<wl::CpuHog>(50.0, 3));
  sim::VmSpec s2;
  s2.name = "vm2";
  pm.add_vm(s2).attach(
      std::make_unique<wl::NetPing>(640.0, sim::NetTarget{}, 4));

  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& report = mon.measure(util::seconds(60.0));

  const Predictor predictor(models_->multi);
  const PredictionEval eval = predictor.evaluate(report, {"vm1", "vm2"});

  const MetricEval& cpu = eval.of(MetricIndex::kCpu);
  EXPECT_EQ(cpu.predicted.size(), 60u);
  EXPECT_EQ(cpu.measured.size(), 60u);
  ASSERT_FALSE(cpu.errors_pct.empty());
  // Paper-grade accuracy: 90th percentile error within a few percent.
  EXPECT_LT(cpu.error_at_fraction(0.9), 6.0);
  const MetricEval& bw = eval.of(MetricIndex::kBw);
  EXPECT_LT(bw.error_at_fraction(0.9), 6.0);
}

TEST_F(TrainedPipeline, PredictorRequiresTrainedModel) {
  EXPECT_THROW(Predictor{MultiVmModel{}}, util::ContractViolation);
}

TEST_F(TrainedPipeline, EvaluateNeedsVmNames) {
  const Predictor predictor(models_->multi);
  const mon::MeasurementReport empty;
  EXPECT_THROW((void)predictor.evaluate(empty, {}), util::ContractViolation);
}

TEST_F(TrainedPipeline, FitModelsFromReloadedData) {
  // Round-trip the training data through fit_models (trace-driven use).
  const TrainedModels refit =
      Trainer::fit_models(models_->data, RegressionMethod::kOls);
  const UtilVec probe{60, 120, 30, 640};
  const UtilVec a = models_->multi.predict(probe, 2);
  const UtilVec b = refit.multi.predict(probe, 2);
  EXPECT_NEAR(a.cpu, b.cpu, 1e-9);
}

}  // namespace
}  // namespace voprof::model
