#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/sample.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/monitor/tools.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::mon {
namespace {

using sim::Cluster;
using sim::CostModel;
using sim::DomU;
using sim::Engine;
using sim::MachineSpec;
using sim::PhysicalMachine;
using sim::VmSpec;
using util::seconds;

struct Testbed {
  Engine engine;
  std::unique_ptr<Cluster> cluster;
  PhysicalMachine* pm = nullptr;

  explicit Testbed(std::uint64_t seed = 9) {
    cluster = std::make_unique<Cluster>(engine, CostModel{}, seed);
    pm = &cluster->add_machine(MachineSpec{});
  }
  DomU& vm(const std::string& name) {
    VmSpec spec;
    spec.name = name;
    return pm->add_vm(spec);
  }
};

TEST(SampleMath, DomainUtilFromDeltas) {
  sim::DomainCounters prev, cur;
  cur.cpu_core_seconds = 0.5;   // 50 % over 1 s
  cur.io_blocks = 30.0;
  cur.tx_kbits = 100.0;
  cur.rx_kbits = 20.0;
  cur.mem_mib = 84.0;
  const UtilSample u = domain_util(prev, cur, 1.0);
  EXPECT_DOUBLE_EQ(u.cpu_pct, 50.0);
  EXPECT_DOUBLE_EQ(u.io_blocks_per_s, 30.0);
  EXPECT_DOUBLE_EQ(u.bw_kbps, 120.0);
  EXPECT_DOUBLE_EQ(u.mem_mib, 84.0);
  EXPECT_THROW((void)domain_util(prev, cur, 0.0), util::ContractViolation);
}

// --------------------------- Table I capability matrix, tool by tool
TEST(TableI, XenTopCapabilities) {
  const XenTop t;
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kCpu));
  EXPECT_FALSE(t.can_measure(EntityClass::kVm, Metric::kMem));
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kIo));
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kBw));
  EXPECT_TRUE(t.can_measure(EntityClass::kDom0, Metric::kCpu));
  EXPECT_FALSE(t.can_measure(EntityClass::kDom0, Metric::kMem));
  EXPECT_FALSE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kCpu));
  EXPECT_EQ(t.info().name, "xentop");
  EXPECT_EQ(t.info().host, ToolHost::kDom0);
}

TEST(TableI, TopCapabilities) {
  const TopTool t;
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kCpu));
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kMem));
  EXPECT_FALSE(t.can_measure(EntityClass::kVm, Metric::kIo));
  EXPECT_FALSE(t.can_measure(EntityClass::kVm, Metric::kBw));
  EXPECT_TRUE(t.can_measure(EntityClass::kDom0, Metric::kMem));
  EXPECT_FALSE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kCpu));
  EXPECT_EQ(t.info().host, ToolHost::kGuest);
}

TEST(TableI, MpStatCapabilities) {
  const MpStat t;
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kCpu));
  EXPECT_TRUE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kCpu));
  EXPECT_FALSE(t.can_measure(EntityClass::kDom0, Metric::kCpu));
  EXPECT_FALSE(t.can_measure(EntityClass::kVm, Metric::kMem));
}

TEST(TableI, IfConfigCapabilities) {
  const IfConfig t;
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kBw));
  EXPECT_TRUE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kBw));
  EXPECT_FALSE(t.can_measure(EntityClass::kVm, Metric::kCpu));
  EXPECT_FALSE(t.can_measure(EntityClass::kDom0, Metric::kBw));
}

TEST(TableI, VmStatCapabilities) {
  const VmStat t;
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kCpu));
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kMem));
  EXPECT_TRUE(t.can_measure(EntityClass::kVm, Metric::kIo));
  EXPECT_FALSE(t.can_measure(EntityClass::kVm, Metric::kBw));
  EXPECT_TRUE(t.can_measure(EntityClass::kDom0, Metric::kMem));
  EXPECT_TRUE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kCpu));
  EXPECT_TRUE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kIo));
  EXPECT_FALSE(t.can_measure(EntityClass::kPmOrHypervisor, Metric::kBw));
}

TEST(TableI, UnsupportedCellsReturnNullopt) {
  Testbed t;
  t.vm("vm1");
  const auto s0 = t.pm->snapshot(t.engine.now());
  t.engine.run_for(seconds(1));
  const auto s1 = t.pm->snapshot(t.engine.now());
  const XenTop xentop;
  EXPECT_FALSE(xentop.read_vm(s0, s1, "vm1", Metric::kMem).has_value());
  EXPECT_FALSE(xentop.read_pm(s0, s1, Metric::kCpu).has_value());
  const IfConfig ifconfig;
  EXPECT_FALSE(ifconfig.read_vm(s0, s1, "vm1", Metric::kCpu).has_value());
}

TEST(Tools, ReadValuesMatchCounters) {
  Testbed t;
  t.vm("vm1").attach(std::make_unique<wl::CpuHog>(40.0, 3));
  const auto s0 = t.pm->snapshot(t.engine.now());
  t.engine.run_for(seconds(10));
  const auto s1 = t.pm->snapshot(t.engine.now());
  const XenTop xentop;
  EXPECT_NEAR(xentop.read_vm(s0, s1, "vm1", Metric::kCpu).value(), 40.0, 2.0);
  const MpStat mpstat;
  EXPECT_GT(mpstat.read_pm(s0, s1, Metric::kCpu).value(), 2.0);
  const VmStat vmstat;
  // PM CPU = Dom0 + hypervisor + guests (the paper's indirect sum).
  const double pm_cpu = vmstat.read_pm(s0, s1, Metric::kCpu).value();
  const double parts =
      xentop.read_dom0(s0, s1, Metric::kCpu).value() +
      mpstat.read_pm(s0, s1, Metric::kCpu).value() +
      xentop.read_vm(s0, s1, "vm1", Metric::kCpu).value();
  EXPECT_NEAR(pm_cpu, parts, 1e-9);
}

TEST(MonitorScript, CollectsExpectedSampleCount) {
  Testbed t;
  t.vm("vm1");
  MonitorScript mon(t.engine, *t.pm);
  const MeasurementReport& report = mon.measure(seconds(120));
  EXPECT_EQ(report.sample_count(), 120u);
  EXPECT_TRUE(report.has("vm1"));
  EXPECT_TRUE(report.has(MeasurementReport::kDom0Key));
  EXPECT_TRUE(report.has(MeasurementReport::kHypKey));
  EXPECT_TRUE(report.has(MeasurementReport::kPmKey));
}

TEST(MonitorScript, MeasuredDom0BaseIncludesScriptOverhead) {
  // Paper's 16.8 % Dom0 reading = 16.35 % base + the script's tools.
  Testbed t;
  t.vm("vm1");
  MonitorScript mon(t.engine, *t.pm);
  const MeasurementReport& report = mon.measure(seconds(60));
  EXPECT_NEAR(report.mean(MeasurementReport::kDom0Key).cpu_pct, 16.8, 0.3);
}

TEST(MonitorScript, OverheadInjectionCanBeDisabled) {
  Testbed t1(7), t2(7);
  t1.vm("vm1");
  t2.vm("vm1");
  MonitorConfig with;
  with.inject_overhead = true;
  MonitorConfig without;
  without.inject_overhead = false;
  MonitorScript m1(t1.engine, *t1.pm, with);
  MonitorScript m2(t2.engine, *t2.pm, without);
  const double cpu_with =
      m1.measure(seconds(60)).mean(MeasurementReport::kDom0Key).cpu_pct;
  const double cpu_without =
      m2.measure(seconds(60)).mean(MeasurementReport::kDom0Key).cpu_pct;
  EXPECT_NEAR(cpu_with - cpu_without, m1.dom0_overhead_pct(), 0.2);
  EXPECT_GT(m1.dom0_overhead_pct(), 0.3);
  EXPECT_GT(m1.guest_overhead_pct(), 0.0);
}

TEST(MonitorScript, PmMemoryIsDom0PlusGuests) {
  Testbed t;
  t.vm("vm1");
  t.vm("vm2");
  MonitorScript mon(t.engine, *t.pm);
  const MeasurementReport& report = mon.measure(seconds(30));
  const double pm_mem = report.mean(MeasurementReport::kPmKey).mem_mib;
  const double parts = report.mean(MeasurementReport::kDom0Key).mem_mib +
                       report.mean("vm1").mem_mib +
                       report.mean("vm2").mem_mib;
  EXPECT_NEAR(pm_mem, parts, 1e-6);
}

TEST(MonitorScript, StopEndsSampling) {
  Testbed t;
  t.vm("vm1");
  MonitorScript mon(t.engine, *t.pm);
  mon.start();
  t.engine.run_for(seconds(10));
  mon.stop();
  const std::size_t frozen = mon.report().sample_count();
  t.engine.run_for(seconds(10));
  EXPECT_EQ(mon.report().sample_count(), frozen);
  EXPECT_EQ(frozen, 10u);
}

TEST(MonitorScript, StartTwiceRejected) {
  Testbed t;
  t.vm("vm1");
  MonitorScript mon(t.engine, *t.pm);
  mon.start();
  mon.stop();
  EXPECT_THROW(mon.start(), util::ContractViolation);
}

TEST(MonitorScript, SafeDestructionWithPendingEvents) {
  Testbed t;
  t.vm("vm1");
  {
    MonitorScript mon(t.engine, *t.pm);
    mon.start();
    t.engine.run_for(seconds(2));
  }  // destroyed with a queued sampling event
  t.engine.run_for(seconds(5));  // the stale event must be a no-op
  SUCCEED();
}

TEST(MeasurementReport, UnknownEntityThrows) {
  const MeasurementReport r;
  EXPECT_THROW((void)r.series("nope"), util::ContractViolation);
  EXPECT_FALSE(r.has("nope"));
}

TEST(MonitorScript, ResyncsAfterMidRunVmChange) {
  Testbed t;
  t.vm("vm1");
  MonitorScript mon(t.engine, *t.pm);
  mon.start();
  t.engine.run_for(seconds(5));
  t.vm("vm2");  // topology change mid-run
  t.engine.run_for(seconds(5));
  mon.stop();
  // No crash; the report contains samples from both phases.
  EXPECT_GE(mon.report().sample_count(), 5u);
}

}  // namespace
}  // namespace voprof::mon
