#include "voprof/util/numeric.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <locale>
#include <string>
#include <vector>

#include "voprof/scenario/scenario.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/csv.hpp"

namespace voprof::util {
namespace {

TEST(FormatDouble, RoundTripsExactly) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.1,
      1.0 / 3.0,
      3.141592653589793,
      1e-300,
      -1e300,
      123456789.123456789,
      5e-324,                                    // min subnormal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::epsilon(),
      0.1 + 0.2,                                 // 0.30000000000000004
  };
  for (const double v : values) {
    const std::string text = format_double(v);
    double back = 0.0;
    ASSERT_TRUE(parse_double(text, back)) << text;
    EXPECT_EQ(back, v) << text;  // bit-exact round trip
  }
}

TEST(FormatDouble, UsesShortestRepresentation) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-2.0), "-2");
  EXPECT_EQ(format_double(0.1), "0.1");
}

TEST(ParseDouble, AcceptsPaddingAndLeadingPlus) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("  3.5\t", v));
  EXPECT_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("+7", v));
  EXPECT_EQ(v, 7.0);
  EXPECT_TRUE(parse_double("1e3", v));
  EXPECT_EQ(v, 1000.0);
  EXPECT_TRUE(parse_double("-0.25", v));
  EXPECT_EQ(v, -0.25);
}

TEST(ParseDouble, RejectsJunk) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("   ", v));
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5x", v));
  EXPECT_FALSE(parse_double("1.5 2.5", v));
  EXPECT_FALSE(parse_double("++1", v));
}

/// Installs a decimal-comma locale for the scope, restoring the global
/// locale afterwards. Reports whether one was available on this system
/// (the parsing code must be immune either way).
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() {
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8",
          "fr_FR", "it_IT.UTF-8", "nl_NL.UTF-8"}) {
      try {
        std::locale::global(std::locale(name));
        std::setlocale(LC_ALL, name);
        installed_ = true;
        break;
      } catch (const std::runtime_error&) {
      }
    }
  }
  ~CommaLocaleGuard() {
    std::locale::global(original_);
    std::setlocale(LC_ALL, "C");
  }
  [[nodiscard]] bool installed() const noexcept { return installed_; }

 private:
  std::locale original_ = std::locale();
  bool installed_ = false;
};

TEST(LocaleIndependence, CsvParsesUnderCommaDecimalLocale) {
  const CommaLocaleGuard guard;
  // Even if no comma-decimal locale is installed in this image, the
  // parse must give identical results under the default locale.
  const CsvDocument doc =
      CsvDocument::parse_string("a,b\n1.5,2.25\n-0.125,1e2\n");
  EXPECT_EQ(doc.at(0, 0), 1.5);
  EXPECT_EQ(doc.at(0, 1), 2.25);
  EXPECT_EQ(doc.at(1, 0), -0.125);
  EXPECT_EQ(doc.at(1, 1), 100.0);
}

TEST(LocaleIndependence, CsvWritesDotDecimalUnderCommaLocale) {
  const CommaLocaleGuard guard;
  CsvDocument doc({"x"});
  doc.add_row({0.5});
  EXPECT_EQ(doc.str(), "x\n0.5\n");
}

TEST(LocaleIndependence, ScenarioConfParsesUnderCommaDecimalLocale) {
  const CommaLocaleGuard guard;
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse(
      "[cluster]\nseed = 7\nmachines = 1\n"
      "[vm web]\ncpu = 37.5\nbw = 128.25\n"
      "[run]\nduration = 2.5\nwarmup = 0.5\n");
  EXPECT_EQ(spec.vms.at(0).cpu_pct, 37.5);
  EXPECT_EQ(spec.vms.at(0).bw_kbps, 128.25);
  EXPECT_EQ(spec.duration_s, 2.5);
  EXPECT_EQ(spec.warmup_s, 0.5);
}

TEST(LocaleIndependence, CsvRoundTripUnderCommaLocaleIsBitExact) {
  const CommaLocaleGuard guard;
  CsvDocument doc({"v"});
  doc.add_row({1.0 / 3.0});
  doc.add_row({0.1 + 0.2});
  doc.add_row({std::nextafter(1.0, 2.0)});
  const CsvDocument back = CsvDocument::parse_string(doc.str());
  for (std::size_t r = 0; r < doc.row_count(); ++r) {
    EXPECT_EQ(back.at(r, 0), doc.at(r, 0));
  }
}

TEST(CsvParse, ThrowsOnNonNumericCell) {
  EXPECT_THROW(CsvDocument::parse_string("a\nnot_a_number\n"),
               ContractViolation);
}

}  // namespace
}  // namespace voprof::util
