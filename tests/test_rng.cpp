#include "voprof/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace voprof::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256ss a(99), b(99);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(13);
  EXPECT_THROW((void)rng.uniform_int(0), ContractViolation);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(17);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    s += g;
    s2 += g * g;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.exponential(4.0);
  EXPECT_NEAR(s / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(23);
  EXPECT_THROW((void)rng.exponential(0.0), ContractViolation);
  EXPECT_THROW((void)rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, BernoulliProbabilityRoughlyHonored) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Streams should diverge immediately.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.bits() == child.bits()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitTwiceGivesDistinctChildren) {
  Rng parent(31);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.bits() == c2.bits()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

}  // namespace
}  // namespace voprof::util
