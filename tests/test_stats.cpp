#include "voprof/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "voprof/util/assert.hpp"

namespace voprof::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10 + i;
    (i < 25 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 9.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 10.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile({}, 50.0), ContractViolation);
  EXPECT_THROW((void)percentile(v, -1.0), ContractViolation);
  EXPECT_THROW((void)percentile(v, 101.0), ContractViolation);
}

TEST(MeanStddev, BasicValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Cdf, FractionBelow) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(100.0), 1.0);
}

TEST(Cdf, ValueAtFractions) {
  Cdf cdf({10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0});
  EXPECT_DOUBLE_EQ(cdf.value_at(0.9), 90.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.1), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 100.0);
}

TEST(Cdf, ValueAtIsInverseOfFractionBelow) {
  Cdf cdf({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0});
  for (double p : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(cdf.fraction_below(cdf.value_at(p)), p - 1e-12);
  }
}

TEST(Cdf, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_below(1.0), 0.0);
  EXPECT_THROW((void)cdf.value_at(0.5), ContractViolation);
}

TEST(Cdf, GridSpansRange) {
  Cdf cdf({0.0, 5.0, 10.0});
  const auto g = cdf.grid(11);
  ASSERT_EQ(g.size(), 11u);
  EXPECT_DOUBLE_EQ(g.front().first, 0.0);
  EXPECT_DOUBLE_EQ(g.back().first, 10.0);
  EXPECT_DOUBLE_EQ(g.back().second, 1.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GE(g[i].second, g[i - 1].second);  // monotone
  }
}

TEST(Histogram, CountsWithoutClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // below range: underflow, NOT bin 0
  h.add(42.0);   // above range: overflow, NOT bin 4
  h.add(5.0);    // bin 2
  h.add(10.0);   // hi is exclusive: overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.in_range(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, NonFiniteSamplesAreOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.in_range(), 0u);
  EXPECT_EQ(h.underflow(), 2u);  // NaN lands in underflow, like -inf
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_EQ(h.bin_count(i), 0u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

}  // namespace
}  // namespace voprof::util
