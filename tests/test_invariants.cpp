// The runtime invariant audit: value-level checks, fit/row validation
// hooks, and the InvariantAuditor riding the xensim tick loop — clean
// scenarios pass, a deliberately injected CPU-conservation violation
// is caught at the offending tick.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "voprof/core/invariants.hpp"
#include "voprof/core/regression.hpp"
#include "voprof/core/overhead_model.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/engine.hpp"

namespace {

using voprof::model::check_finite;
using voprof::model::check_fit;
using voprof::model::check_in_range;
using voprof::model::check_monotonic_time;
using voprof::model::check_training_row;
using voprof::model::check_unit_interval;
using voprof::model::InvariantAuditor;
using voprof::model::InvariantViolation;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ValueChecks, FiniteAcceptsOrdinaryValues) {
  EXPECT_NO_THROW(check_finite(0.0, "x"));
  EXPECT_NO_THROW(check_finite(-3.5e12, "x"));
}

TEST(ValueChecks, FiniteRejectsNanAndInfinity) {
  EXPECT_THROW(check_finite(kNan, "x"), InvariantViolation);
  EXPECT_THROW(check_finite(kInf, "x"), InvariantViolation);
  EXPECT_THROW(check_finite(-kInf, "x"), InvariantViolation);
}

TEST(ValueChecks, UnitIntervalAcceptsUtilizationsWithTolerance) {
  EXPECT_NO_THROW(check_unit_interval(0.0, "u"));
  EXPECT_NO_THROW(check_unit_interval(1.0, "u"));
  EXPECT_NO_THROW(check_unit_interval(1.0 + 1e-12, "u"));
}

TEST(ValueChecks, UnitIntervalRejectsOutOfRange) {
  EXPECT_THROW(check_unit_interval(-0.01, "u"), InvariantViolation);
  EXPECT_THROW(check_unit_interval(1.01, "u"), InvariantViolation);
  EXPECT_THROW(check_unit_interval(kNan, "u"), InvariantViolation);
}

TEST(ValueChecks, InRangeEnforcesBothBounds) {
  EXPECT_NO_THROW(check_in_range(50.0, 0.0, 100.0, "pct"));
  EXPECT_THROW(check_in_range(-1.0, 0.0, 100.0, "pct"), InvariantViolation);
  EXPECT_THROW(check_in_range(101.0, 0.0, 100.0, "pct"), InvariantViolation);
}

TEST(ValueChecks, MonotonicTimeRejectsBackwardsTimestamps) {
  EXPECT_NO_THROW(check_monotonic_time(10, 10, "series"));
  EXPECT_NO_THROW(check_monotonic_time(10, 11, "series"));
  EXPECT_THROW(check_monotonic_time(11, 10, "series"), InvariantViolation);
}

TEST(FitChecks, AcceptsSoundFit) {
  voprof::model::LinearFit fit;
  fit.coef = {1.0, 2.0, 3.0};
  fit.residual_rms = 0.25;
  fit.r_squared = 0.97;
  EXPECT_NO_THROW(check_fit(fit, "m"));
}

TEST(FitChecks, RejectsNanCoefficientAndBadStats) {
  voprof::model::LinearFit fit;
  fit.coef = {1.0, kNan};
  EXPECT_THROW(check_fit(fit, "m"), InvariantViolation);
  fit.coef = {1.0, 2.0};
  fit.residual_rms = -0.5;
  EXPECT_THROW(check_fit(fit, "m"), InvariantViolation);
  fit.residual_rms = 0.5;
  fit.r_squared = 1.5;
  EXPECT_THROW(check_fit(fit, "m"), InvariantViolation);
  fit.r_squared = 0.5;
  fit.coef.clear();
  EXPECT_THROW(check_fit(fit, "m"), InvariantViolation);
}

TEST(RowChecks, AcceptsSoundRowRejectsPoison) {
  voprof::model::TrainingRow row;
  row.n_vms = 2;
  row.vm_sum.cpu = 80.0;
  row.pm.cpu = 95.0;
  row.dom0_cpu = 20.0;
  row.hyp_cpu = 3.0;
  EXPECT_NO_THROW(check_training_row(row));

  row.pm.io = kNan;
  EXPECT_THROW(check_training_row(row), InvariantViolation);
  row.pm.io = 30.0;
  row.dom0_cpu = -1.0;
  EXPECT_THROW(check_training_row(row), InvariantViolation);
  row.dom0_cpu = 20.0;
  row.n_vms = 0;
  EXPECT_THROW(check_training_row(row), InvariantViolation);
}

TEST(Toggle, RuntimeOverrideWins) {
  const bool before = voprof::model::invariants_enabled();
  voprof::model::set_invariants_enabled(true);
  EXPECT_TRUE(voprof::model::invariants_enabled());
  voprof::model::set_invariants_enabled(false);
  EXPECT_FALSE(voprof::model::invariants_enabled());
  voprof::model::set_invariants_enabled(before);
}

// --- Engine-scenario audits -------------------------------------------

/// Four co-located VMs under heavy CPU contention (the Fig. 4 setup):
/// the richest scheduling scenario — grants, saturation and Dom0
/// accounting all active — must satisfy every invariant on every tick.
TEST(Auditor, FourVmContentionSceneIsClean) {
  voprof::sim::Engine engine;
  voprof::sim::Cluster cluster(engine, voprof::sim::CostModel{}, 7);
  voprof::sim::PhysicalMachine& pm =
      cluster.add_machine(voprof::sim::MachineSpec{});
  for (int k = 0; k < 4; ++k) {
    voprof::sim::VmSpec spec;
    spec.name = "vm" + std::to_string(k + 1);
    voprof::sim::DomU& vm = pm.add_vm(spec);
    // Level 4 = 99 % CPU (Table II): four such VMs on two guest cores
    // force hard contention.
    vm.attach(voprof::wl::make_workload(voprof::wl::WorkloadKind::kCpu, 4,
                                        voprof::sim::NetTarget{},
                                        100 + static_cast<std::uint64_t>(k)));
  }
  InvariantAuditor auditor(cluster);
  EXPECT_NO_THROW(engine.run_for(voprof::util::seconds(20.0)));
  EXPECT_GT(auditor.ticks_audited(), 0U);
}

TEST(Auditor, MixedWorkloadSceneIsClean) {
  voprof::sim::Engine engine;
  voprof::sim::Cluster cluster(engine, voprof::sim::CostModel{}, 11);
  voprof::sim::PhysicalMachine& pm =
      cluster.add_machine(voprof::sim::MachineSpec{});
  const voprof::wl::WorkloadKind kinds[] = {
      voprof::wl::WorkloadKind::kCpu, voprof::wl::WorkloadKind::kMem,
      voprof::wl::WorkloadKind::kIo, voprof::wl::WorkloadKind::kBw};
  int k = 0;
  for (voprof::wl::WorkloadKind kind : kinds) {
    voprof::sim::VmSpec spec;
    spec.name = "mix" + std::to_string(++k);
    pm.add_vm(spec).attach(voprof::wl::make_workload(
        kind, 3, voprof::sim::NetTarget{}, 50 + static_cast<std::uint64_t>(k)));
  }
  InvariantAuditor auditor(cluster);
  EXPECT_NO_THROW(engine.run_for(voprof::util::seconds(10.0)));
  EXPECT_GT(auditor.ticks_audited(), 0U);
}

/// Deliberately break CPU conservation: charge a guest far beyond its
/// single VCPU between ticks. The auditor must flag the very next tick.
TEST(Auditor, CatchesInjectedConservationViolation) {
  voprof::sim::Engine engine;
  voprof::sim::Cluster cluster(engine, voprof::sim::CostModel{}, 13);
  voprof::sim::PhysicalMachine& pm =
      cluster.add_machine(voprof::sim::MachineSpec{});
  voprof::sim::VmSpec spec;
  spec.name = "victim";
  voprof::sim::DomU& vm = pm.add_vm(spec);
  vm.attach(voprof::wl::make_workload(voprof::wl::WorkloadKind::kCpu, 2,
                                      voprof::sim::NetTarget{}, 3));
  InvariantAuditor auditor(cluster);
  engine.run_for(voprof::util::seconds(2.0));  // clean warm-up

  // 500 % of a core for a full second on a 1-VCPU guest: impossible on
  // real hardware, so the accounting no longer conserves.
  vm.charge_cpu(500.0, 1.0);
  EXPECT_THROW(engine.run_for(voprof::util::seconds(1.0)),
               InvariantViolation);
}

/// A second injection flavor: reported utilization outside [0, 1] per
/// VCPU (the per-guest bound fires even when the pool total survives).
TEST(Auditor, CatchesPerGuestOverconsumption) {
  voprof::sim::Engine engine;
  voprof::sim::Cluster cluster(engine, voprof::sim::CostModel{}, 17);
  voprof::sim::PhysicalMachine& pm =
      cluster.add_machine(voprof::sim::MachineSpec{});
  voprof::sim::VmSpec spec;
  spec.name = "solo";
  voprof::sim::DomU& vm = pm.add_vm(spec);
  vm.attach(voprof::wl::make_workload(voprof::wl::WorkloadKind::kCpu, 1,
                                      voprof::sim::NetTarget{}, 5));
  InvariantAuditor auditor(cluster);
  engine.run_for(voprof::util::seconds(1.0));

  // +30 ms of extra core time inside a 10 ms tick window: the guest's
  // per-VCPU utilization exceeds 1 while the 2-core pool total does not.
  vm.charge_cpu(100.0, 0.030);
  EXPECT_THROW(engine.run_for(voprof::util::seconds(0.5)),
               InvariantViolation);
}

TEST(Auditor, DetachesOnDestruction) {
  voprof::sim::Engine engine;
  voprof::sim::Cluster cluster(engine, voprof::sim::CostModel{}, 19);
  cluster.add_machine(voprof::sim::MachineSpec{});
  {
    InvariantAuditor auditor(cluster);
    engine.run_for(voprof::util::seconds(0.1));
    EXPECT_GT(auditor.ticks_audited(), 0U);
  }
  // The auditor unregistered itself; ticking again must not touch it.
  EXPECT_NO_THROW(engine.run_for(voprof::util::seconds(0.1)));
}

}  // namespace
