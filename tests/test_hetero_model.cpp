#include "voprof/core/hetero_model.hpp"

#include <gtest/gtest.h>

#include "voprof/core/hetero_trainer.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::model {
namespace {

TypeObservation obs(UtilVec sum, int count) {
  TypeObservation o;
  o.sum = sum;
  o.count = count;
  return o;
}

TEST(HeteroRow, TotalsAndGrandSum) {
  HeteroRow r;
  r.types["a"] = obs(UtilVec{10, 20, 0, 100}, 1);
  r.types["b"] = obs(UtilVec{30, 40, 5, 200}, 2);
  EXPECT_EQ(r.total_vms(), 3);
  const UtilVec g = r.grand_sum();
  EXPECT_DOUBLE_EQ(g.cpu, 40.0);
  EXPECT_DOUBLE_EQ(g.bw, 300.0);
}

TEST(HeteroTrainingSet, TypeNamesSortedUnion) {
  HeteroTrainingSet data;
  HeteroRow r1;
  r1.types["zeta"] = obs({}, 1);
  data.add(r1);
  HeteroRow r2;
  r2.types["alpha"] = obs({}, 1);
  r2.types["zeta"] = obs({}, 1);
  data.add(r2);
  const auto names = data.type_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(HeteroTrainingSet, RejectsBadRows) {
  HeteroTrainingSet data;
  EXPECT_THROW(data.add(HeteroRow{}), util::ContractViolation);
  HeteroRow r;
  r.types["a"] = obs({}, -1);
  EXPECT_THROW(data.add(r), util::ContractViolation);
}

/// Synthetic ground truth with per-type slopes: type A contributes
/// 1.2x its CPU to PM CPU, type B 1.5x, plus a co-location term.
HeteroTrainingSet synthetic(std::uint64_t seed) {
  util::Rng rng(seed);
  HeteroTrainingSet data;
  const std::vector<std::vector<int>> mixes = {
      {1, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 2}};
  for (const auto& mix : mixes) {
    for (int i = 0; i < 150; ++i) {
      HeteroRow r;
      double pm_cpu = 20.0;  // intercept
      UtilVec grand;
      int total = 0;
      if (mix[0] > 0) {
        const UtilVec a{rng.uniform(0, 100.0 * mix[0]),
                        rng.uniform(84.0, 134.0) * mix[0],
                        rng.uniform(0, 90.0 * mix[0]),
                        rng.uniform(0, 500.0 * mix[0])};
        r.types["A"] = obs(a, mix[0]);
        pm_cpu += 1.2 * a.cpu + 0.01 * a.bw;
        grand += a;
        total += mix[0];
      }
      if (mix[1] > 0) {
        const UtilVec b{rng.uniform(0, 200.0 * mix[1]),
                        rng.uniform(110.0, 180.0) * mix[1],
                        rng.uniform(0, 180.0 * mix[1]),
                        rng.uniform(0, 500.0 * mix[1])};
        r.types["B"] = obs(b, mix[1]);
        pm_cpu += 1.5 * b.cpu + 0.01 * b.bw;
        grand += b;
        total += mix[1];
      }
      const double alpha = MultiVmModel::alpha(total);
      pm_cpu += alpha * (1.0 + 0.02 * grand.cpu);
      r.pm = UtilVec{pm_cpu + rng.gaussian(0, 0.05), 752.0 + grand.mem,
                     18.8 + 2.05 * grand.io, 2.0 + grand.bw};
      r.dom0_cpu = 16.8 + 0.05 * grand.cpu + alpha * 0.6;
      r.hyp_cpu = 3.0 + 0.03 * grand.cpu + alpha * 0.3;
      data.add(std::move(r));
    }
  }
  return data;
}

TEST(HeteroModel, RecoversPerTypeSlopes) {
  const HeteroTrainingSet data = synthetic(5);
  const HeteroModel m = HeteroModel::fit(data, RegressionMethod::kOls);
  ASSERT_TRUE(m.trained());
  ASSERT_EQ(m.types().size(), 2u);

  // Pure type-A deployment vs pure type-B at the same utilization must
  // predict different PM CPU (slopes 1.2 vs 1.5).
  std::map<std::string, TypeObservation> a_only = {
      {"A", obs(UtilVec{80, 84, 0, 0}, 1)}};
  std::map<std::string, TypeObservation> b_only = {
      {"B", obs(UtilVec{80, 110, 0, 0}, 1)}};
  const double pa = m.predict(a_only).cpu;
  const double pb = m.predict(b_only).cpu;
  EXPECT_NEAR(pb - pa, 0.3 * 80.0, 2.0);
}

TEST(HeteroModel, PredictsMixedDeployments) {
  const HeteroTrainingSet data = synthetic(6);
  const HeteroModel m = HeteroModel::fit(data, RegressionMethod::kOls);
  std::map<std::string, TypeObservation> mix = {
      {"A", obs(UtilVec{120, 168, 0, 400}, 2)},
      {"B", obs(UtilVec{150, 110, 0, 200}, 1)}};
  const double truth = 20.0 + 1.2 * 120 + 0.01 * 400 + 1.5 * 150 +
                       0.01 * 200 + 2.0 * (1.0 + 0.02 * 270);
  EXPECT_NEAR(m.predict(mix).cpu, truth, 2.0);
  // Indirect PM CPU = guest CPU + predicted Dom0 + hyp.
  const double indirect = m.predict_pm_cpu_indirect(mix);
  const double expected_overhead = (16.8 + 0.05 * 270 + 2 * 0.6) +
                                   (3.0 + 0.03 * 270 + 2 * 0.3);
  EXPECT_NEAR(indirect, 270.0 + expected_overhead, 2.5);
}

TEST(HeteroModel, UnknownTypeContributesOnlyToColocation) {
  const HeteroTrainingSet data = synthetic(7);
  const HeteroModel m = HeteroModel::fit(data, RegressionMethod::kOls);
  std::map<std::string, TypeObservation> with_unknown = {
      {"A", obs(UtilVec{50, 84, 0, 0}, 1)},
      {"mystery", obs(UtilVec{50, 84, 0, 0}, 1)}};
  std::map<std::string, TypeObservation> without = {
      {"A", obs(UtilVec{50, 84, 0, 0}, 1)}};
  // The unknown type has no slope block, but raises alpha and the
  // alpha-scaled sum.
  EXPECT_GT(m.predict(with_unknown).cpu, m.predict(without).cpu);
}

TEST(HeteroModel, UntrainedAndUnderfedRejected) {
  const HeteroModel m;
  EXPECT_THROW((void)m.predict({}), util::ContractViolation);
  HeteroTrainingSet tiny;
  HeteroRow r;
  r.types["A"] = obs({}, 1);
  tiny.add(r);
  EXPECT_THROW((void)HeteroModel::fit(tiny, RegressionMethod::kOls),
               util::ContractViolation);
}

// ------------------------------------------------ simulator-backed run
TEST(HeteroTrainer, DefaultsAreConsistent) {
  const HeteroTrainerConfig cfg = HeteroTrainerConfig::defaults();
  ASSERT_EQ(cfg.types.size(), 2u);
  EXPECT_EQ(cfg.types[0].name, "small");
  EXPECT_EQ(cfg.types[1].spec.vcpus, 2);
  for (const auto& mix : cfg.mixes) EXPECT_EQ(mix.size(), 2u);
}

TEST(HeteroTrainer, CollectRunProducesTypedRows) {
  HeteroTrainerConfig cfg = HeteroTrainerConfig::defaults();
  cfg.duration = util::seconds(10.0);
  const HeteroTrainer trainer(cfg);
  const HeteroTrainingSet run =
      trainer.collect_run({1, 1}, wl::WorkloadKind::kCpu, 2);
  EXPECT_EQ(run.size(), 10u);
  for (const auto& r : run.rows()) {
    ASSERT_EQ(r.types.size(), 2u);
    EXPECT_EQ(r.types.at("small").count, 1);
    EXPECT_EQ(r.types.at("large").count, 1);
    // The large VM runs two workload instances at 60 % each.
    EXPECT_NEAR(r.types.at("small").sum.cpu, 60.0, 6.0);
    EXPECT_NEAR(r.types.at("large").sum.cpu, 120.0, 10.0);
  }
}

TEST(HeteroTrainer, TypedModelBeatsHomogeneousOnMixedLoad) {
  // Train both models on the simulator; evaluate on a mixed deployment
  // neither saw. The homogeneous model must mis-handle the large VMs
  // (its per-VM count assumption is wrong); the typed model should
  // not.
  HeteroTrainerConfig hcfg = HeteroTrainerConfig::defaults();
  hcfg.duration = util::seconds(20.0);
  const HeteroTrainer htrainer(hcfg);
  const HeteroModel typed = htrainer.train(RegressionMethod::kLms);

  TrainerConfig tcfg;
  tcfg.duration = util::seconds(20.0);
  tcfg.seed = 15;
  const TrainedModels homog =
      Trainer(tcfg).train(RegressionMethod::kLms);

  // Validation: 2 small + 1 large VM, BW workload level 4.
  const HeteroTrainingSet validation =
      htrainer.collect_run({2, 1}, wl::WorkloadKind::kBw, 3);
  double typed_err = 0.0, homog_err = 0.0;
  for (const auto& r : validation.rows()) {
    const double actual = r.pm.cpu;
    typed_err +=
        std::abs(typed.predict_pm_cpu_indirect(r.types) - actual) / actual;
    homog_err += std::abs(homog.multi.predict_pm_cpu_indirect(
                              r.grand_sum(), r.total_vms()) -
                          actual) /
                 actual;
  }
  typed_err /= static_cast<double>(validation.size());
  homog_err /= static_cast<double>(validation.size());
  EXPECT_LT(typed_err, 0.06);
  EXPECT_LE(typed_err, homog_err + 0.01);
}

}  // namespace
}  // namespace voprof::model
