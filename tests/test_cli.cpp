#include "voprof/util/cli.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"

namespace voprof::util {
namespace {

CliArgs parse(std::vector<const char*> argv,
              const std::vector<std::string>& bools = {}) {
  argv.insert(argv.begin(), "prog");
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data(), bools);
}

TEST(Cli, CommandAndFlags) {
  const CliArgs a = parse({"train", "--out", "m.txt", "--duration", "30"});
  EXPECT_EQ(a.command(), "train");
  EXPECT_EQ(a.get("out"), "m.txt");
  EXPECT_DOUBLE_EQ(a.get_double("duration", 0.0), 30.0);
  EXPECT_TRUE(a.has("out"));
  EXPECT_FALSE(a.has("nope"));
}

TEST(Cli, EmptyArgvIsEmptyCommand) {
  const CliArgs a = parse({});
  EXPECT_TRUE(a.command().empty());
}

TEST(Cli, FlagsWithoutCommand) {
  const CliArgs a = parse({"--x", "1"});
  EXPECT_TRUE(a.command().empty());
  EXPECT_EQ(a.get("x"), "1");
}

TEST(Cli, BooleanSwitches) {
  const CliArgs a = parse({"run", "--verbose", "--n", "3"}, {"verbose"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_FALSE(a.get_bool("quiet"));
  EXPECT_EQ(a.get_int("n", 0), 3);
}

TEST(Cli, Defaults) {
  const CliArgs a = parse({"x"});
  EXPECT_EQ(a.get_or("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(a.get_int("missing", 7), 7);
}

TEST(Cli, MissingRequiredThrows) {
  const CliArgs a = parse({"x"});
  EXPECT_THROW((void)a.get("required"), ContractViolation);
}

TEST(Cli, MalformedInputThrows) {
  EXPECT_THROW((void)parse({"cmd", "stray-positional"}), ContractViolation);
  EXPECT_THROW((void)parse({"cmd", "--dangling"}), ContractViolation);
  EXPECT_THROW((void)parse({"cmd", "--"}), ContractViolation);
}

TEST(Cli, NumericValidation) {
  const CliArgs a = parse({"x", "--v", "12abc", "--f", "1.5"});
  EXPECT_THROW((void)a.get_double("v", 0.0), ContractViolation);
  EXPECT_THROW((void)a.get_int("f", 0), ContractViolation);  // not integral
  EXPECT_DOUBLE_EQ(a.get_double("f", 0.0), 1.5);
}

TEST(Cli, FlagNamesEnumerated) {
  const CliArgs a = parse({"x", "--a", "1", "--b", "2", "--v"}, {"v"});
  const auto names = a.flag_names();
  EXPECT_EQ(names.size(), 3u);
}

}  // namespace
}  // namespace voprof::util
