#include "voprof/core/diagnostics.hpp"

#include <gtest/gtest.h>

#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::model {
namespace {

/// Linear ground truth with known coefficients and homoscedastic noise.
TrainingSet make_data(std::size_t n, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  TrainingSet data;
  for (std::size_t i = 0; i < n; ++i) {
    TrainingRow r;
    r.n_vms = 1;
    r.vm_sum = UtilVec{rng.uniform(0, 100), rng.uniform(80, 140),
                       rng.uniform(0, 90), rng.uniform(0, 1280)};
    r.pm = UtilVec{
        20.0 + 1.1 * r.vm_sum.cpu + 0.011 * r.vm_sum.bw +
            rng.gaussian(0, noise),
        752.0 + r.vm_sum.mem + rng.gaussian(0, noise),
        18.8 + 2.05 * r.vm_sum.io + rng.gaussian(0, noise),
        2.0 + 1.001 * r.vm_sum.bw + rng.gaussian(0, noise)};
    r.dom0_cpu = 16.8 + 0.05 * r.vm_sum.cpu + 0.0105 * r.vm_sum.bw +
                 rng.gaussian(0, noise);
    r.hyp_cpu = 3.0 + 0.04 * r.vm_sum.cpu + rng.gaussian(0, noise);
    data.add(std::move(r));
  }
  return data;
}

TEST(Bootstrap, IntervalsCoverTrueCoefficients) {
  const TrainingSet data = make_data(600, 0.5, 3);
  const auto diags = bootstrap_single_vm(data);
  ASSERT_EQ(diags.size(), 6u);
  const FitDiagnostics& cpu = diags[0];
  EXPECT_EQ(cpu.target, "PM CPU");
  // True values: intercept 20, cpu slope 1.1, bw slope 0.011.
  EXPECT_LE(cpu.coef[0].lo, 20.0);
  EXPECT_GE(cpu.coef[0].hi, 20.0);
  EXPECT_LE(cpu.coef[1].lo, 1.1);
  EXPECT_GE(cpu.coef[1].hi, 1.1);
  EXPECT_LE(cpu.coef[4].lo, 0.011);
  EXPECT_GE(cpu.coef[4].hi, 0.011);
}

TEST(Bootstrap, RealSlopesSignificantNullSlopesNot) {
  const TrainingSet data = make_data(600, 0.5, 5);
  const auto diags = bootstrap_single_vm(data);
  const FitDiagnostics& cpu = diags[0];
  EXPECT_TRUE(cpu.coef[1].excludes_zero());   // cpu slope is real
  EXPECT_TRUE(cpu.coef[4].excludes_zero());   // bw slope is real
  EXPECT_FALSE(cpu.coef[3].excludes_zero());  // io slope is zero
  const FitDiagnostics& hyp = diags[5];
  EXPECT_TRUE(hyp.coef[1].excludes_zero());
  EXPECT_FALSE(hyp.coef[4].excludes_zero());
}

TEST(Bootstrap, IntervalsShrinkWithMoreData) {
  const auto small = bootstrap_single_vm(make_data(60, 1.0, 7));
  const auto large = bootstrap_single_vm(make_data(2000, 1.0, 7));
  EXPECT_LT(large[0].coef[1].width(), small[0].coef[1].width());
}

TEST(Bootstrap, IntervalsGrowWithNoise) {
  const auto quiet = bootstrap_single_vm(make_data(400, 0.1, 9));
  const auto loud = bootstrap_single_vm(make_data(400, 5.0, 9));
  EXPECT_LT(quiet[0].coef[1].width(), loud[0].coef[1].width());
}

TEST(Bootstrap, DeterministicForSeed) {
  const TrainingSet data = make_data(300, 0.5, 11);
  const auto a = bootstrap_single_vm(data);
  const auto b = bootstrap_single_vm(data);
  EXPECT_DOUBLE_EQ(a[0].coef[1].lo, b[0].coef[1].lo);
  EXPECT_DOUBLE_EQ(a[0].coef[1].hi, b[0].coef[1].hi);
}

TEST(Bootstrap, RejectsTinyData) {
  const TrainingSet data = make_data(5, 0.5, 13);
  EXPECT_THROW((void)bootstrap_single_vm(data), util::ContractViolation);
  BootstrapConfig cfg;
  cfg.resamples = 5;
  EXPECT_THROW((void)bootstrap_single_vm(make_data(100, 0.5, 13), cfg),
               util::ContractViolation);
}

TEST(Bootstrap, TableRendersAllTargets) {
  const auto diags = bootstrap_single_vm(make_data(200, 0.5, 17));
  const std::string table = diagnostics_table(diags);
  for (const char* name : {"PM CPU", "PM MEM", "PM I/O", "PM BW", "Dom0 CPU",
                           "Hypervisor CPU"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  EXPECT_NE(table.find("R^2"), std::string::npos);
}

}  // namespace
}  // namespace voprof::model
