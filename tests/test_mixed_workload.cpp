#include <gtest/gtest.h>

#include <memory>

#include "voprof/core/predictor.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::wl {
namespace {

using util::seconds;

MixedWorkload::Levels typical() {
  MixedWorkload::Levels l;
  l.cpu_pct = 40.0;
  l.mem_mib = 30.0;
  l.io_blocks_per_s = 25.0;
  l.bw_kbps = 500.0;
  return l;
}

TEST(MixedWorkload, DemandCombinesAllResources) {
  MixedWorkload w(typical(), sim::NetTarget{}, 3);
  const sim::ProcessDemand d = w.demand(0, 0.01);
  // CPU = own 40 + io pump + bw pump.
  const double side =
      IoHog::pump_cpu_pct(25.0) + NetPing::pump_cpu_pct(500.0);
  EXPECT_NEAR(d.cpu_pct, 40.0 + side, 2.0);
  EXPECT_DOUBLE_EQ(d.mem_mib, 30.0);
  EXPECT_NEAR(d.io_blocks, 0.25, 1e-9);
  ASSERT_EQ(d.flows.size(), 1u);
  EXPECT_NEAR(d.flows[0].kbits, 5.0, 1e-9);
}

TEST(MixedWorkload, ZeroLevelsAreInert) {
  MixedWorkload w(MixedWorkload::Levels{}, sim::NetTarget{}, 3);
  const sim::ProcessDemand d = w.demand(0, 0.01);
  EXPECT_LT(d.cpu_pct, 2.0);
  EXPECT_TRUE(d.flows.empty());
  EXPECT_DOUBLE_EQ(d.io_blocks, 0.0);
}

TEST(MixedWorkload, RejectsBadLevels) {
  MixedWorkload::Levels bad;
  bad.cpu_pct = 150.0;
  EXPECT_THROW(MixedWorkload(bad, sim::NetTarget{}),
               util::ContractViolation);
  MixedWorkload::Levels bad2;
  bad2.io_blocks_per_s = -1.0;
  EXPECT_THROW(MixedWorkload(bad2, sim::NetTarget{}),
               util::ContractViolation);
}

TEST(MixedWorkload, MeasuredUtilizationMatchesLevels) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 17);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(
      std::make_unique<MixedWorkload>(typical(), sim::NetTarget{}, 19));
  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& r = mon.measure(seconds(30));
  const mon::UtilSample u = r.mean("vm1");
  EXPECT_NEAR(u.io_blocks_per_s, 25.0, 2.0);
  EXPECT_NEAR(u.bw_kbps, 500.0, 10.0);
  EXPECT_NEAR(u.mem_mib, sim::VmSpec{}.os_base_mem_mib + 30.0, 2.0);
  EXPECT_GT(u.cpu_pct, 40.0);  // includes pump costs
}

TEST(MixedWorkload, ModelGeneralizesFromSingleResourceTraining) {
  // The Sec. V models are trained on isolated sweeps; a composite
  // workload must still be predicted at paper-grade accuracy — this
  // is the implicit assumption behind applying the model to RUBiS.
  model::TrainerConfig cfg;
  cfg.duration = seconds(20.0);
  cfg.seed = 23;
  const model::TrainedModels models =
      model::Trainer(cfg).train(model::RegressionMethod::kLms);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 29);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < 2; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i + 1);
    pm.add_vm(spec).attach(std::make_unique<MixedWorkload>(
        typical(), sim::NetTarget{}, 31 + static_cast<std::uint64_t>(i)));
  }
  mon::MonitorScript mon(engine, pm);
  const mon::MeasurementReport& report = mon.measure(seconds(40));
  const model::Predictor predictor(models.multi);
  const model::PredictionEval eval =
      predictor.evaluate(report, {"vm1", "vm2"});
  EXPECT_LT(eval.of(model::MetricIndex::kCpu).error_at_fraction(0.9), 6.0);
  EXPECT_LT(eval.of(model::MetricIndex::kIo).error_at_fraction(0.9), 6.0);
  EXPECT_LT(eval.of(model::MetricIndex::kBw).error_at_fraction(0.9), 3.0);
}

}  // namespace
}  // namespace voprof::wl
