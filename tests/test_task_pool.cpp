#include "voprof/util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace voprof::util {
namespace {

TEST(TaskPool, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(TaskPool::default_jobs(), 1u);
  TaskPool pool;
  EXPECT_EQ(pool.jobs(), TaskPool::default_jobs());
}

TEST(TaskPool, SerialPoolRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  // submit() on a serial pool executes before returning.
  bool ran = false;
  auto fut = pool.submit([&ran]() { ran = true; });
  EXPECT_TRUE(ran);
  fut.get();
}

TEST(TaskPool, SubmitReturnsValue) {
  TaskPool pool(4);
  auto fut = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(TaskPool, ParallelMapOrdersResultsByIndex) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    TaskPool pool(jobs);
    const std::vector<std::size_t> out =
        pool.parallel_map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(TaskPool, ParallelForEachVisitsEveryIndexOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  pool.parallel_for_each(visits.size(), [&visits](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(TaskPool, ExceptionPropagatesFromSubmit) {
  TaskPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(TaskPool, ParallelForEachThrowsLowestFailingIndex) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    TaskPool pool(jobs);
    try {
      pool.parallel_for_each(64, [](std::size_t i) {
        if (i == 7 || i == 31) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // Futures are drained in index order, so the lowest failing
      // index wins no matter which worker failed first.
      EXPECT_STREQ(e.what(), "task 7");
    }
  }
}

TEST(TaskPool, ParallelMapStillCompletesAfterThrow) {
  TaskPool pool(4);
  EXPECT_THROW(pool.parallel_map(16,
                                 [](std::size_t i) -> int {
                                   if (i == 3) throw std::logic_error("x");
                                   return static_cast<int>(i);
                                 }),
               std::logic_error);
  // The pool survives and accepts new work afterwards.
  const std::vector<int> out =
      pool.parallel_map(8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 28);
}

TEST(TaskPool, ManyMoreTasksThanWorkers) {
  TaskPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for_each(1000, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(TaskPool, ZeroTasksIsANoOp) {
  TaskPool pool(2);
  const std::vector<int> out =
      pool.parallel_map(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
  pool.parallel_for_each(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace voprof::util
