/// Property-style sweeps over the machine's cost model: monotonicity,
/// saturation caps, device throttling and conservation invariants that
/// must hold for ANY workload intensity, not just the paper's anchor
/// points.

#include <gtest/gtest.h>

#include <memory>

#include "voprof/monitor/sample.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::sim {
namespace {

using util::seconds;

struct Measured {
  double vm_cpu = 0.0;
  double dom0_cpu = 0.0;
  double hyp_cpu = 0.0;
  double pm_io = 0.0;
  double pm_bw = 0.0;
  double vm_io = 0.0;
  double vm_bw = 0.0;
};

Measured run(wl::WorkloadKind kind, double value, int n_vms,
             std::uint64_t seed) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, seed);
  PhysicalMachine& pm = cluster.add_machine(MachineSpec{});
  for (int i = 0; i < n_vms; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(wl::make_workload_value(
        kind, value, NetTarget{}, seed + static_cast<std::uint64_t>(i)));
  }
  const MachineSnapshot b = pm.snapshot(engine.now());
  engine.run_for(seconds(20));
  const MachineSnapshot a = pm.snapshot(engine.now());
  Measured m;
  m.dom0_cpu = mon::domain_util(b.dom0.counters, a.dom0.counters, 20).cpu_pct;
  m.hyp_cpu = mon::domain_util(b.hypervisor, a.hypervisor, 20).cpu_pct;
  const mon::UtilSample vm =
      mon::domain_util(b.guests[0].counters, a.guests[0].counters, 20);
  m.vm_cpu = vm.cpu_pct;
  m.vm_io = vm.io_blocks_per_s;
  m.vm_bw = vm.bw_kbps;
  const mon::DeviceUtil dev = mon::device_util(b.devices, a.devices, 20);
  m.pm_io = dev.disk_blocks_per_s;
  m.pm_bw = dev.nic_kbps;
  return m;
}

/// Dom0 and hypervisor CPU are non-decreasing in CPU workload.
class CpuMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CpuMonotonicity, OverheadGrowsWithLoad) {
  const int n_vms = GetParam();
  double prev_dom0 = -1.0, prev_hyp = -1.0;
  for (double load : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    const Measured m = run(wl::WorkloadKind::kCpu, load, n_vms,
                           static_cast<std::uint64_t>(load) * 7 + 1);
    EXPECT_GE(m.dom0_cpu, prev_dom0 - 0.5) << "load " << load;
    EXPECT_GE(m.hyp_cpu, prev_hyp - 0.3) << "load " << load;
    prev_dom0 = m.dom0_cpu;
    prev_hyp = m.hyp_cpu;
  }
}

INSTANTIATE_TEST_SUITE_P(VmCounts, CpuMonotonicity,
                         ::testing::Values(1, 2, 3, 4));

/// Dom0 CPU grows linearly in bandwidth for any VM count.
class BwLinearity : public ::testing::TestWithParam<int> {};

TEST_P(BwLinearity, Dom0SlopeScalesWithVmCount) {
  const int n_vms = GetParam();
  const Measured lo = run(wl::WorkloadKind::kBw, 100.0, n_vms, 11);
  const Measured mid = run(wl::WorkloadKind::kBw, 600.0, n_vms, 12);
  const Measured hi = run(wl::WorkloadKind::kBw, 1100.0, n_vms, 13);
  const double slope1 = (mid.dom0_cpu - lo.dom0_cpu) / 500.0;
  const double slope2 = (hi.dom0_cpu - mid.dom0_cpu) / 500.0;
  // Constant marginal cost (linearity) ...
  EXPECT_NEAR(slope1, slope2, 0.004);
  // ... proportional to the number of transmitting VMs.
  EXPECT_NEAR(slope1, 0.0105 * n_vms, 0.004 * n_vms);
}

INSTANTIATE_TEST_SUITE_P(VmCounts, BwLinearity, ::testing::Values(1, 2, 4));

/// Saturation caps: no matter how hard the guests push, Dom0 and
/// hypervisor stay within their documented plateaus.
class SaturationCaps : public ::testing::TestWithParam<int> {};

TEST_P(SaturationCaps, PlateausHold) {
  const int n_vms = GetParam();
  const Measured m = run(wl::WorkloadKind::kCpu, 100.0, n_vms, 17);
  const CostModel costs;
  if (n_vms == 1) {
    EXPECT_LE(m.dom0_cpu,
              costs.dom0_base_cpu_pct + costs.dom0_ctrl_sat_single_pct + 1.0);
    EXPECT_LE(m.hyp_cpu,
              costs.hyp_base_cpu_pct + costs.hyp_sched_sat_single_pct + 0.5);
  } else {
    EXPECT_LE(m.dom0_cpu, costs.dom0_base_cpu_pct +
                              costs.dom0_coloc_cpu_pct +
                              costs.dom0_ctrl_sat_multi_pct + 1.0);
    EXPECT_LE(m.hyp_cpu,
              costs.hyp_base_cpu_pct + costs.hyp_sched_sat_multi_pct + 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(VmCounts, SaturationCaps,
                         ::testing::Values(1, 2, 4, 8));

/// Guest CPU grants never exceed the pool, for any VM count.
class PoolConservation : public ::testing::TestWithParam<int> {};

TEST_P(PoolConservation, SumOfGrantsBounded) {
  const int n_vms = GetParam();
  Engine engine;
  Cluster cluster(engine, CostModel{}, 23);
  PhysicalMachine& pm = cluster.add_machine(MachineSpec{});
  for (int i = 0; i < n_vms; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(
        std::make_unique<wl::CpuHog>(100.0, 29 + static_cast<std::uint64_t>(i)));
  }
  const MachineSnapshot b = pm.snapshot(engine.now());
  engine.run_for(seconds(10));
  const MachineSnapshot a = pm.snapshot(engine.now());
  double total = 0.0;
  for (std::size_t i = 0; i < a.guests.size(); ++i) {
    total += mon::domain_util(b.guests[i].counters, a.guests[i].counters, 10)
                 .cpu_pct;
  }
  const double pool =
      MachineSpec{}.guest_cpu_capacity_pct() *
      (n_vms >= 2 ? CostModel{}.multi_vm_sched_efficiency : 1.0);
  // A VCPU cannot exceed its own capacity even if the pool has slack.
  const double expected = std::min(pool, 100.0 * n_vms);
  EXPECT_LE(total, pool + 1.0);
  EXPECT_GE(total, expected * 0.95);  // work conserving under saturation
}

INSTANTIATE_TEST_SUITE_P(VmCounts, PoolConservation,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// ------------------------------------------------ device saturation
TEST(DeviceThrottling, DiskSaturationCapsPhysicalBlocks) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 31);
  MachineSpec small_disk;
  small_disk.disk_blocks_per_s = 200.0;  // tiny SATA budget
  PhysicalMachine& pm = cluster.add_machine(small_disk);
  for (int i = 0; i < 4; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(
        std::make_unique<wl::IoHog>(80.0, 37 + static_cast<std::uint64_t>(i)));
  }
  const MachineSnapshot b = pm.snapshot(engine.now());
  engine.run_for(seconds(20));
  const MachineSnapshot a = pm.snapshot(engine.now());
  const double pm_io = mon::device_util(b.devices, a.devices, 20)
                           .disk_blocks_per_s;
  // 4 x 80 blk/s would need ~675 physical blk/s; the device caps it.
  EXPECT_LE(pm_io, 200.0 * 1.02);
  EXPECT_GT(pm.throttled_disk_blocks(), 0.0);
}

TEST(DeviceThrottling, NicSaturationCapsOutbound) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 41);
  MachineSpec thin_nic;
  thin_nic.nic_kbps = 2000.0;  // 2 Mb/s uplink
  PhysicalMachine& pm = cluster.add_machine(thin_nic);
  for (int i = 0; i < 4; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(std::make_unique<wl::NetPing>(
        1280.0, NetTarget{}, 43 + static_cast<std::uint64_t>(i)));
  }
  const MachineSnapshot b = pm.snapshot(engine.now());
  engine.run_for(seconds(20));
  const MachineSnapshot a = pm.snapshot(engine.now());
  const double nic = mon::device_util(b.devices, a.devices, 20).nic_kbps;
  EXPECT_LE(nic, 2000.0 * 1.02);
  EXPECT_GT(pm.throttled_nic_kbits(), 0.0);
}

TEST(DeviceThrottling, NeverTriggersAtPaperScale) {
  // The paper's workloads must not hit the device models.
  Engine engine;
  Cluster cluster(engine, CostModel{}, 47);
  PhysicalMachine& pm = cluster.add_machine(MachineSpec{});
  for (int i = 0; i < 4; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    DomU& vm = pm.add_vm(spec);
    vm.attach(std::make_unique<wl::IoHog>(72.0, 53 + static_cast<std::uint64_t>(i)));
    vm.attach(std::make_unique<wl::NetPing>(1280.0, NetTarget{},
                                            59 + static_cast<std::uint64_t>(i)));
  }
  engine.run_for(seconds(30));
  EXPECT_DOUBLE_EQ(pm.throttled_disk_blocks(), 0.0);
  EXPECT_DOUBLE_EQ(pm.throttled_nic_kbits(), 0.0);
}

TEST(InjectedTraffic, ChargesNicAndDom0) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 61);
  PhysicalMachine& pm = cluster.add_machine(MachineSpec{});
  const MachineSnapshot b = pm.snapshot(engine.now());
  // 1000 Kbits injected per second for 10 s.
  for (int s = 0; s < 1000; ++s) {
    engine.run_for(util::milliseconds(10));
    pm.inject_dom0_traffic(10.0, 0.0);
  }
  engine.run_for(util::milliseconds(10));
  const MachineSnapshot a = pm.snapshot(engine.now());
  const double dur = util::to_seconds(a.time - b.time);
  const double nic = mon::device_util(b.devices, a.devices, dur).nic_kbps;
  EXPECT_NEAR(nic, 1000.0, 60.0);
  const double dom0 =
      mon::domain_util(b.dom0.counters, a.dom0.counters, dur).cpu_pct;
  // netback cost 0.0105 %/Kbps on ~1000 Kb/s plus the 16.35 base.
  EXPECT_NEAR(dom0, 16.35 + 10.5, 1.5);
  EXPECT_THROW(pm.inject_dom0_traffic(-1.0, 0.0), util::ContractViolation);
}

TEST(MemoryAccounting, PmMemoryTracksWorkloads) {
  Engine engine;
  Cluster cluster(engine, CostModel{}, 67);
  PhysicalMachine& pm = cluster.add_machine(MachineSpec{});
  VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(std::make_unique<wl::MemHog>(50.0, 71));
  engine.run_for(seconds(5));
  EXPECT_NEAR(pm.memory_in_use_mib(),
              MachineSpec{}.dom0_mem_mib + VmSpec{}.os_base_mem_mib + 50.0,
              2.0);
}

}  // namespace
}  // namespace voprof::sim
