#include "voprof/core/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "voprof/util/assert.hpp"

namespace voprof::model {
namespace {

using util::Matrix;
using util::Rng;

/// Build y = 2 + 3*x1 - 0.5*x2 (+ noise) over a grid.
struct SyntheticData {
  Matrix x;
  std::vector<double> y;
};

SyntheticData make_plane(std::size_t n, double noise_sd, std::uint64_t seed) {
  Rng rng(seed);
  SyntheticData d{Matrix(n, 2), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(0, 100);
    const double x2 = rng.uniform(0, 50);
    d.x(i, 0) = x1;
    d.x(i, 1) = x2;
    d.y[i] = 2.0 + 3.0 * x1 - 0.5 * x2 +
             (noise_sd > 0 ? rng.gaussian(0.0, noise_sd) : 0.0);
  }
  return d;
}

TEST(LinearFit, PredictUsesInterceptAndSlopes) {
  LinearFit f;
  f.coef = {1.0, 2.0, -1.0};
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(f.predict(x), 1.0 + 6.0 - 4.0);
  EXPECT_THROW((void)f.predict(std::vector<double>{1.0}),
               util::ContractViolation);
}

TEST(Ols, RecoversExactPlane) {
  const SyntheticData d = make_plane(50, 0.0, 1);
  const LinearFit f = fit_ols(d.x, d.y);
  ASSERT_EQ(f.coef.size(), 3u);
  EXPECT_NEAR(f.coef[0], 2.0, 1e-8);
  EXPECT_NEAR(f.coef[1], 3.0, 1e-10);
  EXPECT_NEAR(f.coef[2], -0.5, 1e-10);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f.residual_rms, 0.0, 1e-8);
}

TEST(Ols, RecoversNoisyPlane) {
  const SyntheticData d = make_plane(2000, 1.0, 2);
  const LinearFit f = fit_ols(d.x, d.y);
  EXPECT_NEAR(f.coef[0], 2.0, 0.25);
  EXPECT_NEAR(f.coef[1], 3.0, 0.01);
  EXPECT_NEAR(f.coef[2], -0.5, 0.01);
  EXPECT_GT(f.r_squared, 0.99);
  EXPECT_NEAR(f.residual_rms, 1.0, 0.1);
}

TEST(Ols, RejectsTooFewRows) {
  Matrix x(2, 2);
  EXPECT_THROW((void)fit_ols(x, std::vector<double>{1.0, 2.0}),
               util::ContractViolation);
}

TEST(Ols, RejectsSizeMismatch) {
  Matrix x(5, 1);
  EXPECT_THROW((void)fit_ols(x, std::vector<double>{1.0}),
               util::ContractViolation);
}

TEST(Wls, EqualWeightsMatchOls) {
  const SyntheticData d = make_plane(100, 0.5, 3);
  const std::vector<double> w(100, 1.0);
  const LinearFit a = fit_ols(d.x, d.y);
  const LinearFit b = fit_wls(d.x, d.y, w);
  for (std::size_t i = 0; i < a.coef.size(); ++i) {
    EXPECT_NEAR(a.coef[i], b.coef[i], 1e-9);
  }
}

TEST(Wls, ZeroWeightIgnoresRow) {
  // One wild outlier with zero weight must not affect the fit.
  SyntheticData d = make_plane(50, 0.0, 4);
  d.y[0] += 1e6;
  std::vector<double> w(50, 1.0);
  w[0] = 0.0;
  const LinearFit f = fit_wls(d.x, d.y, w);
  EXPECT_NEAR(f.coef[1], 3.0, 1e-8);
}

TEST(Wls, RejectsNegativeWeight) {
  const SyntheticData d = make_plane(20, 0.0, 5);
  std::vector<double> w(20, 1.0);
  w[3] = -1.0;
  EXPECT_THROW((void)fit_wls(d.x, d.y, w), util::ContractViolation);
}

TEST(Lms, MatchesOlsOnCleanData) {
  const SyntheticData d = make_plane(200, 0.2, 6);
  Rng rng(7);
  const LinearFit f = fit_lms(d.x, d.y, rng);
  EXPECT_NEAR(f.coef[0], 2.0, 0.2);
  EXPECT_NEAR(f.coef[1], 3.0, 0.01);
  EXPECT_NEAR(f.coef[2], -0.5, 0.02);
}

TEST(Lms, RobustToThirtyPercentOutliers) {
  // The key property of Rousseeuw's estimator (paper ref [24]): OLS
  // breaks under gross contamination, LMS does not.
  SyntheticData d = make_plane(300, 0.2, 8);
  Rng corrupt(9);
  for (std::size_t i = 0; i < 90; ++i) {
    const auto idx = static_cast<std::size_t>(corrupt.uniform_int(300));
    d.y[idx] = corrupt.uniform(2000.0, 4000.0);
  }
  const LinearFit ols = fit_ols(d.x, d.y);
  Rng rng(10);
  const LinearFit lms = fit_lms(d.x, d.y, rng);
  // OLS slope is dragged far away; LMS stays within a few percent.
  EXPECT_GT(std::abs(ols.coef[1] - 3.0), 0.5);
  EXPECT_NEAR(lms.coef[1], 3.0, 0.1);
  EXPECT_NEAR(lms.coef[2], -0.5, 0.1);
}

TEST(Lms, DeterministicGivenRngState) {
  const SyntheticData d = make_plane(100, 0.3, 11);
  Rng r1(42), r2(42);
  const LinearFit a = fit_lms(d.x, d.y, r1);
  const LinearFit b = fit_lms(d.x, d.y, r2);
  for (std::size_t i = 0; i < a.coef.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coef[i], b.coef[i]);
  }
}

TEST(Lms, RejectsTooFewRows) {
  Matrix x(4, 2);
  std::vector<double> y(4, 1.0);
  Rng rng(1);
  EXPECT_THROW((void)fit_lms(x, y, rng), util::ContractViolation);
}

TEST(Lqs, HigherQuantileCoversMoreOfTheData) {
  // Data whose majority (60 %) follows one line and whose minority
  // (40 %) follows a parallel line offset by +50. Median LMS fits the
  // majority exactly; LQS at q=0.85 must account for 85 % of points
  // and lands between the two populations.
  Rng gen(3);
  Matrix x(500, 1);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    const double xi = gen.uniform(0, 100);
    x(i, 0) = xi;
    y[i] = 2.0 * xi + (i % 5 < 2 ? 50.0 : 0.0) + gen.gaussian(0, 0.1);
  }
  LmsConfig median_cfg;
  LmsConfig lqs_cfg;
  lqs_cfg.quantile = 0.85;
  Rng r1(7), r2(7);
  const LinearFit median = fit_lms(x, y, r1, median_cfg);
  const LinearFit lqs = fit_lms(x, y, r2, lqs_cfg);
  // Median fit hugs the majority line (intercept ~0)...
  EXPECT_NEAR(median.coef[0], 0.0, 2.0);
  // ...while the 85 %-quantile fit must sit above it to cover the
  // minority population too.
  EXPECT_GT(lqs.coef[0], median.coef[0] + 5.0);
  EXPECT_NEAR(lqs.coef[1], 2.0, 0.2);  // slope shared by both groups
}

TEST(Lqs, QuantileValidated) {
  const SyntheticData d = make_plane(100, 0.1, 21);
  Rng rng(1);
  LmsConfig bad;
  bad.quantile = 0.3;
  EXPECT_THROW((void)fit_lms(d.x, d.y, rng, bad), util::ContractViolation);
  bad.quantile = 1.5;
  EXPECT_THROW((void)fit_lms(d.x, d.y, rng, bad), util::ContractViolation);
}

TEST(Lqs, ModelFitConfigUsesDocumentedQuantile) {
  EXPECT_DOUBLE_EQ(model_fit_config().quantile, kModelFitQuantile);
  EXPECT_GT(kModelFitQuantile, 0.5);
}

TEST(Fit, DispatchesOnMethod) {
  const SyntheticData d = make_plane(100, 0.1, 12);
  const LinearFit ols = fit(RegressionMethod::kOls, d.x, d.y);
  const LinearFit lms = fit(RegressionMethod::kLms, d.x, d.y, 55);
  EXPECT_NEAR(ols.coef[1], 3.0, 0.01);
  EXPECT_NEAR(lms.coef[1], 3.0, 0.02);
}

TEST(Residuals, ZeroForPerfectFit) {
  const SyntheticData d = make_plane(30, 0.0, 13);
  const LinearFit f = fit_ols(d.x, d.y);
  for (double r : residuals(f, d.x, d.y)) EXPECT_NEAR(r, 0.0, 1e-7);
}

/// Property sweep: R^2 decreases as noise grows.
class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, RSquaredReflectsNoise) {
  const double noise = GetParam();
  const SyntheticData d = make_plane(1000, noise, 17);
  const LinearFit f = fit_ols(d.x, d.y);
  // Signal variance is large (slope 3 over 0..100); even heavy noise
  // keeps R^2 bounded away from zero, but it must be monotone-ish.
  if (noise <= 0.1) {
    EXPECT_GT(f.r_squared, 0.9999);
  } else if (noise >= 50.0) {
    EXPECT_LT(f.r_squared, 0.9);
  }
  EXPECT_NEAR(f.residual_rms, noise, noise * 0.15 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseSweep,
                         ::testing::Values(0.0, 0.1, 1.0, 10.0, 50.0));

}  // namespace
}  // namespace voprof::model
