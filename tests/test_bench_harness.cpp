#include "harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "voprof/util/json.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::bench::harness {
namespace {

/// Deterministic busy-work body: the checksum depends only on the
/// seed, never on timing.
RepResult seeded_rep(std::uint64_t seed) {
  util::Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) sum += rng.uniform(0, 1);
  return RepResult{2.5, sum};
}

TEST(Stats, OrderStatisticsOnKnownSample) {
  const Stats s = Stats::of({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  // Linear interpolation: p10 of 5 sorted points sits at index 0.4.
  EXPECT_NEAR(s.p10, 1.4, 1e-12);
  EXPECT_NEAR(s.p90, 4.6, 1e-12);
}

TEST(Stats, SingleSampleCollapses) {
  const Stats s = Stats::of({0.25});
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.p10, 0.25);
  EXPECT_DOUBLE_EQ(s.median, 0.25);
  EXPECT_DOUBLE_EQ(s.p90, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.25);
}

TEST(Harness, JsonMatchesSchema) {
  Session session("bench_selftest");
  session.set_auto_write(false);
  session.bench("work/a", BenchOptions{1, 3}, [] { return seeded_rep(7); });
  session.record_section("sweep#0", 0.5, 30.0, 123.0);

  const util::Json doc = session.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "voprof-bench-1");
  EXPECT_EQ(doc.at("binary").as_string(), "bench_selftest");

  const util::Json& env = doc.at("env");
  EXPECT_FALSE(env.at("compiler").as_string().empty());
  EXPECT_FALSE(env.at("os").as_string().empty());
  EXPECT_GE(env.at("hardware_threads").as_number(), 1.0);
  EXPECT_FALSE(env.at("timestamp_utc").as_string().empty());

  const auto& benches = doc.at("benchmarks").as_array();
  ASSERT_EQ(benches.size(), 2u);
  EXPECT_EQ(benches[0].at("name").as_string(), "work/a");
  EXPECT_DOUBLE_EQ(benches[0].at("reps").as_number(), 3.0);
  EXPECT_EQ(benches[0].at("raw_wall_s").as_array().size(), 3u);
  const util::Json& wall = benches[0].at("wall_s");
  for (const char* k : {"min", "p10", "median", "p90", "max", "mean"}) {
    EXPECT_GT(wall.at(k).as_number(), 0.0) << k;
  }
  // sim_s = 2.5 per rep -> throughput stats present.
  EXPECT_GT(benches[0]
                .at("throughput_sim_s_per_wall_s")
                .at("median")
                .as_number(),
            0.0);
  // The one-shot section has one rep and carries its checksum.
  EXPECT_EQ(benches[1].at("name").as_string(), "sweep#0");
  EXPECT_DOUBLE_EQ(benches[1].at("checksum").as_number(), 123.0);

  // The document round-trips through the parser.
  EXPECT_NO_THROW((void)util::Json::parse(doc.dump()));
}

TEST(Harness, RepetitionsDeterministicUnderFixedSeed) {
  Session a("bench_det");
  a.set_auto_write(false);
  Session b("bench_det");
  b.set_auto_write(false);
  for (Session* s : {&a, &b}) {
    s->bench("fixed-seed", BenchOptions{0, 4}, [] { return seeded_rep(42); });
  }
  ASSERT_EQ(a.measurements().size(), 1u);
  ASSERT_EQ(b.measurements().size(), 1u);
  // Same seed -> bit-identical checksum, independent of wall time.
  EXPECT_EQ(a.measurements()[0].checksum, b.measurements()[0].checksum);
  EXPECT_EQ(a.measurements()[0].wall_s.size(), 4u);
  EXPECT_DOUBLE_EQ(a.measurements()[0].sim_s, 2.5);
}

TEST(Harness, SectionNamesCount) {
  Session session("bench_sections");
  session.set_auto_write(false);
  EXPECT_EQ(session.next_section_name("cells"), "cells#0");
  EXPECT_EQ(session.next_section_name("cells"), "cells#1");
}

TEST(Harness, WritesParsableFileToBenchDir) {
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  ASSERT_EQ(setenv("VOPROF_BENCH_DIR", dir.c_str(), 1), 0);
  {
    Session session("bench_filecheck");
    session.bench("w", BenchOptions{0, 2}, [] { return seeded_rep(1); });
    session.write_file();
    EXPECT_EQ(session.output_path(), dir + "/BENCH_filecheck.json");
  }
  std::ifstream in(dir + "/BENCH_filecheck.json");
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const util::Json doc = util::Json::parse(text.str());
  EXPECT_EQ(doc.at("schema").as_string(), "voprof-bench-1");
  unsetenv("VOPROF_BENCH_DIR");
}

TEST(Harness, EnvKnobsOverrideRepetitions) {
  ASSERT_EQ(setenv("VOPROF_BENCH_REPS", "2", 1), 0);
  ASSERT_EQ(setenv("VOPROF_BENCH_WARMUP", "0", 1), 0);
  Session session("bench_knobs");
  session.set_auto_write(false);
  session.bench("w", BenchOptions{5, 9}, [] { return seeded_rep(3); });
  ASSERT_EQ(session.measurements().size(), 1u);
  EXPECT_EQ(session.measurements()[0].reps, 2);
  EXPECT_EQ(session.measurements()[0].warmup, 0);
  unsetenv("VOPROF_BENCH_REPS");
  unsetenv("VOPROF_BENCH_WARMUP");
}

}  // namespace
}  // namespace voprof::bench::harness
