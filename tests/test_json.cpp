#include "voprof/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace voprof::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(R"({
    "name": "bench",
    "reps": 5,
    "wall_s": {"median": 0.125, "raw": [0.1, 0.15]},
    "flags": [true, false, null]
  })");
  EXPECT_EQ(doc.at("name").as_string(), "bench");
  EXPECT_DOUBLE_EQ(doc.at("reps").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("wall_s").at("median").as_number(), 0.125);
  ASSERT_EQ(doc.at("wall_s").at("raw").as_array().size(), 2u);
  EXPECT_TRUE(doc.at("flags").as_array()[2].is_null());
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\nd\teA");
  // Round trip through dump.
  EXPECT_EQ(Json::parse(doc.dump(0)).as_string(), doc.as_string());
}

TEST(Json, DumpKeepsInsertionOrderAndRoundTrips) {
  Json obj = Json::object();
  obj.set("zeta", 1);
  obj.set("alpha", Json::array());
  obj.set("mid", "x");
  const std::string text = obj.dump(0);
  EXPECT_EQ(text, R"({"zeta":1,"alpha":[],"mid":"x"})");
  const Json back = Json::parse(text);
  EXPECT_EQ(back.dump(0), text);
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02e23, -0.0005475329999171663}) {
    Json j(v);
    EXPECT_DOUBLE_EQ(Json::parse(j.dump(0)).as_number(), v);
  }
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Json arr = Json::array();
  arr.push_back(std::numeric_limits<double>::quiet_NaN());
  arr.push_back(std::numeric_limits<double>::infinity());
  arr.push_back(1.5);
  const Json back = Json::parse(arr.dump(0));
  EXPECT_TRUE(back.as_array()[0].is_null());
  EXPECT_TRUE(back.as_array()[1].is_null());
  EXPECT_DOUBLE_EQ(back.as_array()[2].as_number(), 1.5);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)Json::parse("nul"), JsonError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);  // trailing token
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
}

TEST(Json, TypeMismatchedAccessThrows) {
  const Json n(1.0);
  EXPECT_THROW((void)n.as_string(), JsonError);
  EXPECT_THROW((void)n.as_array(), JsonError);
  EXPECT_THROW((void)n.at("k"), JsonError);
  const Json obj = Json::parse(R"({"a": 1})");
  EXPECT_THROW((void)obj.at("missing"), JsonError);
  EXPECT_EQ(obj.find("missing"), nullptr);
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(obj.find("a")->as_number(), 1.0);
}

TEST(Json, PrettyPrintIsStable) {
  Json obj = Json::object();
  obj.set("a", 1);
  Json inner = Json::array();
  inner.push_back(2);
  obj.set("b", std::move(inner));
  EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

}  // namespace
}  // namespace voprof::util
