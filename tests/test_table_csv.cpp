#include <gtest/gtest.h>

#include <sstream>

#include "voprof/util/assert.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/table.hpp"

namespace voprof::util {
namespace {

TEST(AsciiTable, RendersTitleHeaderRows) {
  AsciiTable t("demo");
  t.set_header({"a", "bbb"});
  t.add_row({"1", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("bbb"), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
}

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t;
  t.set_header({"x", "y"});
  t.add_row({"longvalue", "1"});
  t.add_row({"a", "2"});
  std::istringstream is(t.str());
  std::string header, rule, r1, r2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, r1);
  std::getline(is, r2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(AsciiTable, RowWidthMismatchThrows) {
  AsciiTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(AsciiTable, RuleInsertsSeparator) {
  AsciiTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  std::istringstream is(t.str());
  std::string line;
  int rules = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos)
      ++rules;
  }
  EXPECT_EQ(rules, 2);  // header rule + explicit rule
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.0001, 2), "0.00");  // no "-0.00"
}

TEST(Fmt, VsFormat) {
  EXPECT_EQ(fmt_vs(29.43, 29.5, 1), "29.4 (29.5)");
}

TEST(Csv, RoundTripThroughText) {
  CsvDocument doc({"t", "cpu", "bw"});
  doc.add_row({1.0, 16.8, 2.03});
  doc.add_row({2.0, 17.1, 2.10});
  const CsvDocument parsed = CsvDocument::parse_string(doc.str());
  EXPECT_EQ(parsed.row_count(), 2u);
  EXPECT_EQ(parsed.header(), doc.header());
  EXPECT_DOUBLE_EQ(parsed.at(1, "cpu"), 17.1);
}

TEST(Csv, RoundTripIsBitExactForFullPrecisionDoubles) {
  // write() formats with shortest round-trip precision; 12 significant
  // digits (the old behaviour) would corrupt every one of these.
  CsvDocument doc({"v"});
  const std::vector<double> values = {1.0 / 3.0, 0.1 + 0.2,
                                      123456789.123456789,
                                      2.718281828459045e-7, 1e-300};
  for (double v : values) doc.add_row({v});
  const CsvDocument parsed = CsvDocument::parse_string(doc.str());
  ASSERT_EQ(parsed.row_count(), values.size());
  for (std::size_t r = 0; r < values.size(); ++r) {
    EXPECT_EQ(parsed.at(r, 0), values[r]);  // exact, not DOUBLE_EQ
  }
}

TEST(Csv, ColumnLookup) {
  CsvDocument doc({"a", "b"});
  doc.add_row({1.0, 2.0});
  EXPECT_EQ(doc.column("b"), 1u);
  EXPECT_TRUE(doc.has_column("a"));
  EXPECT_FALSE(doc.has_column("zz"));
  EXPECT_THROW((void)doc.column("zz"), ContractViolation);
  const auto vals = doc.column_values("b");
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 2.0);
}

TEST(Csv, RowWidthEnforced) {
  CsvDocument doc({"a", "b"});
  EXPECT_THROW(doc.add_row({1.0}), ContractViolation);
}

TEST(Csv, ParseRejectsGarbage) {
  EXPECT_THROW((void)CsvDocument::parse_string("a,b\n1,notanumber\n"),
               ContractViolation);
  EXPECT_THROW((void)CsvDocument::parse_string("a,b\n1\n"),
               ContractViolation);
  EXPECT_THROW((void)CsvDocument::parse_string(""), ContractViolation);
}

TEST(Csv, ParseHandlesCrlfAndBlankLines) {
  const CsvDocument doc =
      CsvDocument::parse_string("a,b\r\n1,2\r\n\r\n3,4\r\n");
  EXPECT_EQ(doc.row_count(), 2u);
  EXPECT_DOUBLE_EQ(doc.at(1, "b"), 4.0);
}

TEST(Csv, OutOfRangeAccessThrows) {
  CsvDocument doc({"a"});
  doc.add_row({1.0});
  EXPECT_THROW((void)doc.at(1, 0), ContractViolation);
  EXPECT_THROW((void)doc.at(0, 5), ContractViolation);
}

TEST(Csv, SaveAndLoadFile) {
  CsvDocument doc({"x"});
  doc.add_row({42.0});
  const std::string path = ::testing::TempDir() + "/voprof_csv_test.csv";
  doc.save(path);
  const CsvDocument loaded = CsvDocument::load(path);
  EXPECT_DOUBLE_EQ(loaded.at(0, "x"), 42.0);
}

}  // namespace
}  // namespace voprof::util
