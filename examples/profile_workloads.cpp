/// \file profile_workloads.cpp
/// Domain example 1 — a virtualization-overhead profiler in the style
/// of the paper's Sec. IV measurement study: sweep the four Table II
/// workload families across intensity levels and co-location degrees,
/// and summarize where the overhead lands (Dom0 CPU, hypervisor CPU,
/// disk amplification, NIC framing).
///
/// Run: ./profile_workloads [duration_seconds_per_cell]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cluster.hpp"

namespace {

using namespace voprof;

struct Cell {
  mon::UtilSample vm_sum, dom0, hyp, pm;
};

Cell run_cell(wl::WorkloadKind kind, std::size_t level, int n_vms,
              util::SimMicros duration, std::uint64_t seed) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, seed);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  std::vector<std::string> names;
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i + 1);
    names.push_back(spec.name);
    pm.add_vm(spec).attach(wl::make_workload(
        kind, level, sim::NetTarget{}, seed + static_cast<std::uint64_t>(i)));
  }
  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report = monitor.measure(duration);
  Cell c;
  for (const auto& n : names) c.vm_sum += report.mean(n);
  c.dom0 = report.mean(mon::MeasurementReport::kDom0Key);
  c.hyp = report.mean(mon::MeasurementReport::kHypKey);
  c.pm = report.mean(mon::MeasurementReport::kPmKey);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  double cell_seconds = 30.0;
  if (argc > 1) cell_seconds = std::atof(argv[1]);
  const util::SimMicros duration = util::seconds(cell_seconds);

  std::cout << "voprof workload profiler - virtualization overhead by "
               "workload family and co-location degree\n"
            << "(" << util::fmt(cell_seconds, 0)
            << " simulated seconds per cell, 1 s sampling)\n\n";

  for (wl::WorkloadKind kind :
       {wl::WorkloadKind::kCpu, wl::WorkloadKind::kMem, wl::WorkloadKind::kIo,
        wl::WorkloadKind::kBw}) {
    util::AsciiTable t(wl::kind_name(kind) + " workloads");
    t.set_header({"level(" + wl::kind_unit(kind) + ")", "VMs",
                  "sum VM cpu", "Dom0 cpu", "hyp cpu", "cpu overhead",
                  "io amp", "bw ovh(%)"});
    std::uint64_t seed = 1000 + static_cast<std::uint64_t>(kind) * 97;
    for (int n_vms : {1, 2, 4}) {
      for (std::size_t level : {std::size_t{1}, std::size_t{4}}) {
        const Cell c =
            run_cell(kind, level, n_vms, duration, seed += 13);
        const double cpu_overhead = c.dom0.cpu_pct + c.hyp.cpu_pct;
        const double io_amp =
            c.vm_sum.io_blocks_per_s > 1.0
                ? c.pm.io_blocks_per_s / c.vm_sum.io_blocks_per_s
                : 0.0;
        const double bw_ovh =
            c.vm_sum.bw_kbps > 1.0
                ? (c.pm.bw_kbps - c.vm_sum.bw_kbps) / c.pm.bw_kbps * 100.0
                : 0.0;
        t.add_row({util::fmt(wl::level_value(kind, level),
                             kind == wl::WorkloadKind::kMem ? 2 : 0),
                   std::to_string(n_vms), util::fmt(c.vm_sum.cpu_pct, 1),
                   util::fmt(c.dom0.cpu_pct, 1), util::fmt(c.hyp.cpu_pct, 1),
                   util::fmt(cpu_overhead, 1),
                   io_amp > 0 ? util::fmt(io_amp, 2) : "-",
                   c.vm_sum.bw_kbps > 1.0 ? util::fmt(bw_ovh, 1) : "-"});
      }
    }
    std::cout << t.str() << '\n';
  }

  std::cout
      << "Key takeaways (matching the paper's Sec. IV observations):\n"
         "  * Dom0 + hypervisor consume ~20% of a core before any guest "
         "work happens.\n"
         "  * CPU-intensive guests add convex control-plane overhead; "
         "with co-location it saturates.\n"
         "  * Every guest disk block becomes ~2 physical blocks "
         "(virtual-disk striping).\n"
         "  * Network-intensive guests are the expensive ones: ~0.01% "
         "Dom0 CPU per Kb/s of traffic.\n"
         "  * Memory-intensive guests are essentially free, beyond their "
         "resident pages.\n";
  return 0;
}
