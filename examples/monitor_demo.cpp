/// \file monitor_demo.cpp
/// Domain example 4 — the measurement methodology itself (Sec. III-A):
/// run the synchronized monitoring script against a live testbed with
/// a phase-changing workload, dump the per-second multi-entity time
/// series to CSV (the paper's script logged exactly this), and show
/// the per-tool capability limits of Table I.
///
/// Run: ./monitor_demo [output.csv]

#include <cstdio>
#include <iostream>
#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/monitor/tools.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  const std::string csv_path = argc > 1 ? argv[1] : "monitor_trace.csv";

  // Testbed: one PM, one VM whose workload changes phase mid-run.
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 11);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  sim::DomU& vm = pm.add_vm(spec);

  auto* hog = new wl::CpuHog(20.0, 5);
  vm.attach(std::unique_ptr<sim::GuestProcess>(hog));
  // Phase change at t=30 s: CPU load jumps (the monitor must track it).
  engine.schedule_at(util::seconds(30.0), [hog] { hog->set_target_pct(80.0); });

  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report = monitor.measure(util::seconds(60.0));

  // Dump the synchronized multi-entity trace to CSV.
  util::CsvDocument csv({"t_s", "vm_cpu", "vm_mem", "vm_io", "vm_bw",
                         "dom0_cpu", "hyp_cpu", "pm_cpu", "pm_io", "pm_bw"});
  const mon::SeriesSet& vm_s = report.series("vm1");
  const mon::SeriesSet& dom0_s =
      report.series(mon::MeasurementReport::kDom0Key);
  const mon::SeriesSet& hyp_s = report.series(mon::MeasurementReport::kHypKey);
  const mon::SeriesSet& pm_s = report.series(mon::MeasurementReport::kPmKey);
  for (std::size_t i = 0; i < report.sample_count(); ++i) {
    csv.add_row({util::to_seconds(vm_s.cpu[i].time), vm_s.cpu[i].value,
                 vm_s.mem[i].value, vm_s.io[i].value, vm_s.bw[i].value,
                 dom0_s.cpu[i].value, hyp_s.cpu[i].value, pm_s.cpu[i].value,
                 pm_s.io[i].value, pm_s.bw[i].value});
  }
  csv.save(csv_path);
  std::cout << "Wrote " << report.sample_count()
            << " synchronized 1 s samples to " << csv_path << "\n\n";

  // Show the phase change through the averaged windows.
  std::cout << "Phase averages (workload steps 20% -> 80% at t=30s):\n";
  std::printf("  t in [ 5,30): vm cpu %.1f%%, dom0 %.1f%%, hyp %.1f%%\n",
              vm_s.cpu.mean_between(util::seconds(5), util::seconds(30)),
              dom0_s.cpu.mean_between(util::seconds(5), util::seconds(30)),
              hyp_s.cpu.mean_between(util::seconds(5), util::seconds(30)));
  std::printf("  t in [35,60): vm cpu %.1f%%, dom0 %.1f%%, hyp %.1f%%\n\n",
              vm_s.cpu.mean_between(util::seconds(35), util::seconds(60)),
              dom0_s.cpu.mean_between(util::seconds(35), util::seconds(60)),
              hyp_s.cpu.mean_between(util::seconds(35), util::seconds(60)));

  // Table I in action: what each tool can answer about this run.
  const sim::MachineSnapshot s0 = pm.snapshot(engine.now());
  engine.run_for(util::seconds(5.0));
  const sim::MachineSnapshot s1 = pm.snapshot(engine.now());
  std::cout << "Table I in action (5 s window):\n";
  const mon::XenTop xentop;
  const mon::TopTool top;
  const mon::MpStat mpstat;
  const mon::VmStat vmstat;
  auto show = [](const char* what, std::optional<double> v) {
    if (v.has_value()) {
      std::printf("  %-42s %8.2f\n", what, *v);
    } else {
      std::printf("  %-42s %8s\n", what, "n/a (-)");
    }
  };
  show("xentop: vm1 CPU (%)",
       xentop.read_vm(s0, s1, "vm1", mon::Metric::kCpu));
  show("xentop: vm1 MEM (unsupported cell)",
       xentop.read_vm(s0, s1, "vm1", mon::Metric::kMem));
  show("top: vm1 MEM (MiB, runs inside the VM)",
       top.read_vm(s0, s1, "vm1", mon::Metric::kMem));
  show("mpstat: hypervisor CPU (%)",
       mpstat.read_pm(s0, s1, mon::Metric::kCpu));
  show("vmstat: PM I/O (blocks/s)",
       vmstat.read_pm(s0, s1, mon::Metric::kIo));
  show("vmstat: PM BW (unsupported cell)",
       vmstat.read_pm(s0, s1, mon::Metric::kBw));
  return 0;
}
