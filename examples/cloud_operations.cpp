/// \file cloud_operations.cpp
/// Domain example 7 — a day in the life of an overhead-aware cloud:
/// diurnal tenant workloads rise toward a midday peak, the hotspot
/// controller watches the model-predicted host utilization, and live
/// migrations rebalance the cluster when a host's *true* load (guests
/// + Dom0 + hypervisor) crests. The xentrace-style log shows what the
/// substrate did.
///
/// Run: ./cloud_operations [day_seconds]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "voprof/placement/hotspot.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/trace.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/tracelog.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  double day_s = 240.0;  // compressed "day"
  if (argc > 1) day_s = std::atof(argv[1]);

  std::cout << "[1/3] Training the overhead model...\n";
  model::TrainerConfig tcfg;
  tcfg.duration = util::seconds(40.0);
  const model::TrainedModels models =
      model::Trainer(tcfg).train(model::RegressionMethod::kLms);

  std::cout << "[2/3] Booting a 3-host cluster with 6 diurnal tenants "
               "(packed tight on host 0/1)...\n";
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 2026);
  sim::TraceLog& trace = cluster.enable_tracing(16384);
  for (int i = 0; i < 3; ++i) cluster.add_machine(sim::MachineSpec{});

  // Tenants with staggered phases: some peak together at "midday".
  for (int i = 0; i < 6; ++i) {
    wl::DiurnalSpec spec;
    spec.period_s = day_s;
    spec.cpu_peak_pct = 70.0 + 5.0 * (i % 3);
    spec.bw_peak_kbps = 800.0 + 250.0 * (i % 2);
    sim::VmSpec vm_spec;
    vm_spec.name = "tenant" + std::to_string(i + 1);
    const int host = i < 3 ? 0 : 1;  // hosts 0/1 packed, host 2 spare
    sim::DomU& vm = cluster.machine(static_cast<std::size_t>(host))
                        .add_vm(vm_spec);
    vm.attach(std::make_unique<wl::TraceWorkload>(
        wl::make_diurnal_trace(spec, 100 + static_cast<std::uint64_t>(i)),
        sim::NetTarget{}, /*loop=*/true));
  }

  place::HotspotConfig hcfg;
  hcfg.check_interval = util::seconds(5.0);
  hcfg.cpu_threshold_pct = 200.0;
  hcfg.consolidate = true;  // pack the fleet back when the day cools off
  hcfg.consolidate_below_pct = 110.0;
  place::HotspotController controller(cluster, &models.multi, {0, 1, 2},
                                      hcfg);
  controller.start();

  std::cout << "[3/3] Simulating " << util::fmt(day_s, 0)
            << " s (one compressed day)...\n\n";
  // Sample the controller's view every 1/8 day.
  util::AsciiTable t("Model-predicted host CPU through the day (%)");
  t.set_header({"time", "host0", "host1", "host2", "migrations so far"});
  for (int step = 1; step <= 8; ++step) {
    engine.run_for(util::seconds(day_s / 8.0));
    t.add_row({util::fmt(day_s * step / 8.0, 0) + "s",
               util::fmt(controller.last_predicted_cpu(0), 1),
               util::fmt(controller.last_predicted_cpu(1), 1),
               util::fmt(controller.last_predicted_cpu(2), 1),
               std::to_string(controller.migrations_triggered())});
  }
  controller.stop();
  std::cout << t.str() << '\n';

  std::cout << "Actions:\n";
  for (const auto& a : controller.actions()) {
    const bool consolidation =
        a.kind == place::HotspotAction::Kind::kConsolidation;
    std::printf("  t=%6.1fs  %-12s %-8s PM%d -> PM%d (source predicted "
                "at %.1f%%)\n",
                util::to_seconds(a.time),
                consolidation ? "consolidate" : "mitigate",
                a.vm_name.c_str(), a.from_pm, a.to_pm, a.predicted_cpu);
  }
  if (controller.actions().empty()) {
    std::cout << "  (none needed)\n";
  }

  std::cout << "\nxentrace digest (events recorded: "
            << trace.total_recorded() << "):\n";
  std::printf("  sched-contention: %zu\n",
              trace.events_of(sim::TraceEventType::kSchedContention).size());
  std::printf("  migrations:       %zu started, %zu finished\n",
              trace.events_of(sim::TraceEventType::kMigrationStarted).size(),
              trace.events_of(sim::TraceEventType::kMigrationFinished)
                  .size());
  std::printf("  vm lifecycle:     %zu created\n",
              trace.events_of(sim::TraceEventType::kVmCreated).size());

  std::cout << "\nFinal layout: ";
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("host%zu=%zu VMs  ", i, cluster.machine(i).vm_count());
  }
  std::cout << "\n(The spare host absorbs the midday peak and the fleet "
               "consolidates back as the evening cools - both decisions "
               "driven by the paper's overhead model, which sees the "
               "Dom0/hypervisor share a raw VM-sum controller would "
               "miss.)\n";
  return 0;
}
