/// \file hotspot_mitigation.cpp
/// Domain example 5 — closing the loop the paper motivates in its
/// introduction: accurate overhead estimation enables better
/// *management actions*. A RUBiS web tier shares a host with three
/// noisy CPU hogs; the overhead-aware hotspot controller detects that
/// the host's true utilization (guests + Dom0 + hypervisor) exceeds
/// capacity and live-migrates the noisiest VM away. Throughput
/// recovers while the copy itself pays real Dom0/NIC costs.
///
/// Run: ./hotspot_mitigation

#include <cstdio>
#include <iostream>
#include <memory>

#include "voprof/placement/hotspot.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

int main() {
  using namespace voprof;

  std::cout << "[1/3] Training the overhead model...\n";
  model::TrainerConfig tcfg;
  tcfg.duration = util::seconds(45.0);
  const model::TrainedModels models =
      model::Trainer(tcfg).train(model::RegressionMethod::kLms);

  std::cout << "[2/3] Deploying: PM0 = RUBiS web + 3 noisy neighbours "
               "(70% CPU each), PM1 = spare, PM2 = clients...\n";
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 321);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});

  rubis::DeployOptions opt;
  opt.clients = 500;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  for (int i = 0; i < 3; ++i) {
    sim::VmSpec spec;
    spec.name = "noisy" + std::to_string(i + 1);
    cluster.machine(0).add_vm(spec).attach(
        std::make_unique<wl::CpuHog>(70.0, 500 + static_cast<std::uint64_t>(i)));
  }

  place::HotspotConfig hcfg;
  hcfg.check_interval = util::seconds(5.0);
  place::HotspotController controller(cluster, &models.multi, {0, 1}, hcfg);

  std::cout << "[3/3] Running 3 simulated minutes; controller starts at "
               "t=60s...\n\n";
  auto throughput_over = [&](double seconds_window) {
    const double mark = inst.client->completed();
    engine.run_for(util::seconds(seconds_window));
    return (inst.client->completed() - mark) / seconds_window;
  };

  const double before = throughput_over(60.0);
  controller.start();
  const double during = throughput_over(60.0);
  const double after = throughput_over(60.0);
  controller.stop();

  util::AsciiTable t("RUBiS throughput around the mitigation");
  t.set_header({"phase", "throughput (req/s)"});
  t.add_row({"contended (no controller)", util::fmt(before, 1)});
  t.add_row({"controller active (migrations in flight)",
             util::fmt(during, 1)});
  t.add_row({"after mitigation", util::fmt(after, 1)});
  std::cout << t.str() << '\n';

  std::cout << "Mitigation log:\n";
  for (const auto& a : controller.actions()) {
    std::printf(
        "  t=%5.1fs  migrated %-8s PM%d -> PM%d  (predicted source PM "
        "CPU %.1f%%)\n",
        util::to_seconds(a.time), a.vm_name.c_str(), a.from_pm, a.to_pm,
        a.predicted_cpu);
  }
  if (controller.actions().empty()) {
    std::cout << "  (none - host never crossed the threshold)\n";
  }
  std::printf(
      "\nFinal layout: PM0 hosts %zu VMs, PM1 hosts %zu VMs; predicted "
      "PM0 CPU %.1f%%, PM1 %.1f%%\n",
      cluster.machine(0).vm_count(), cluster.machine(1).vm_count(),
      controller.last_predicted_cpu(0), controller.last_predicted_cpu(1));
  std::cout << "\nA VOU-style controller (raw sum of VM CPU) would sit "
               "below its threshold on PM0 while the RUBiS VMs starve - "
               "the Dom0/hypervisor share is invisible to it.\n";
  return 0;
}
