/// \file capacity_planner.cpp
/// Domain example 6 — capacity planning with the overhead model: how
/// many host PMs does a VM fleet need? An overhead-unaware planner
/// (sum-of-VMs, the assumption the paper's intro quotes from the
/// placement literature) buys fewer machines on paper; the
/// overhead-aware planner prices in the Dom0/hypervisor share. The
/// example then *validates* both plans by simulating the packed hosts
/// and reporting actual saturation.
///
/// Run: ./capacity_planner [fleet_multiplier]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "voprof/placement/placer.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace {

using namespace voprof;

struct FleetEntry {
  std::string kind;
  model::UtilVec demand;
  int count;
  double cpu_hog_pct;   ///< for validation (0 = idle)
  double bw_kbps;       ///< for validation
};

/// Pack the fleet with a Placer; grows the pool until everything fits.
std::vector<place::PmState> pack(const std::vector<FleetEntry>& fleet,
                                 const place::Placer& placer) {
  std::vector<place::PmState> pool;
  auto add_pm = [&pool]() {
    place::PmState pm;
    pm.spec = sim::MachineSpec{};
    pool.push_back(pm);
  };
  add_pm();
  for (const FleetEntry& e : fleet) {
    for (int i = 0; i < e.count; ++i) {
      for (;;) {
        if (const auto idx = placer.choose(pool, e.demand, 256.0)) {
          pool[*idx].vm_demands.push_back(e.demand);
          pool[*idx].vm_mem_mib.push_back(256.0);
          break;
        }
        add_pm();
      }
    }
  }
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  int multiplier = 2;
  if (argc > 1) multiplier = std::atoi(argv[1]);

  std::cout << "[1/3] Training the overhead model...\n";
  model::TrainerConfig tcfg;
  tcfg.duration = util::seconds(45.0);
  const model::TrainedModels models =
      model::Trainer(tcfg).train(model::RegressionMethod::kLms);

  // A mixed production fleet (demands as CloudScale would predict).
  const std::vector<FleetEntry> fleet = {
      {"web front-end", {55, 150, 0, 1800}, 3 * multiplier, 55.0, 1800.0},
      {"database", {35, 180, 40, 600}, 2 * multiplier, 35.0, 600.0},
      {"batch worker", {85, 120, 5, 10}, 2 * multiplier, 85.0, 10.0},
      {"cache", {5, 230, 0, 300}, 1 * multiplier, 5.0, 300.0},
  };
  int total_vms = 0;
  for (const auto& e : fleet) total_vms += e.count;
  std::cout << "[2/3] Packing " << total_vms
            << " VMs with both planners...\n\n";

  place::PlacerConfig voa_cfg;
  voa_cfg.overhead_aware = true;
  place::PlacerConfig vou_cfg;
  vou_cfg.overhead_aware = false;
  const place::Placer voa(voa_cfg, &models.multi);
  const place::Placer vou(vou_cfg, nullptr);
  const auto voa_pool = pack(fleet, voa);
  const auto vou_pool = pack(fleet, vou);

  util::AsciiTable t("Capacity plan");
  t.set_header({"planner", "PMs needed", "worst predicted PM CPU",
                "worst sum-VM CPU"});
  auto summarize = [&models](const std::vector<place::PmState>& pool) {
    double worst_pred = 0.0, worst_sum = 0.0;
    for (const auto& pm : pool) {
      if (pm.vm_count() == 0) continue;
      const model::UtilVec sum = pm.demand_sum();
      worst_sum = std::max(worst_sum, sum.cpu);
      worst_pred = std::max(
          worst_pred,
          models.multi.predict_pm_cpu_indirect(sum, pm.vm_count()));
    }
    return std::make_pair(worst_pred, worst_sum);
  };
  const auto [voa_pred, voa_sum] = summarize(voa_pool);
  const auto [vou_pred, vou_sum] = summarize(vou_pool);
  t.add_row({"VOA (overhead-aware)", std::to_string(voa_pool.size()),
             util::fmt(voa_pred, 1) + "%", util::fmt(voa_sum, 1) + "%"});
  t.add_row({"VOU (sum of VMs)", std::to_string(vou_pool.size()),
             util::fmt(vou_pred, 1) + "%", util::fmt(vou_sum, 1) + "%"});
  std::cout << t.str() << '\n';

  // ---- Validate the VOU plan by actually running its packing. --------
  std::cout << "[3/3] Validating the tighter (VOU) packing in the "
               "simulator...\n";
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 777);
  // Re-pack VOU while materializing VMs this time.
  std::vector<place::PmState> pool;
  std::vector<sim::PhysicalMachine*> machines;
  auto add_real_pm = [&]() {
    place::PmState pm;
    pm.spec = sim::MachineSpec{};
    pool.push_back(pm);
    machines.push_back(&cluster.add_machine(sim::MachineSpec{}));
  };
  add_real_pm();
  int vm_id = 0;
  for (const FleetEntry& e : fleet) {
    for (int i = 0; i < e.count; ++i) {
      std::size_t idx;
      for (;;) {
        if (const auto chosen = vou.choose(pool, e.demand, 256.0)) {
          idx = *chosen;
          break;
        }
        add_real_pm();
      }
      pool[idx].vm_demands.push_back(e.demand);
      pool[idx].vm_mem_mib.push_back(256.0);
      sim::VmSpec spec;
      spec.name = "vm" + std::to_string(++vm_id);
      sim::DomU& vm = machines[idx]->add_vm(spec);
      if (e.cpu_hog_pct > 0) {
        vm.attach(std::make_unique<wl::CpuHog>(
            std::min(e.cpu_hog_pct, 100.0),
            static_cast<std::uint64_t>(vm_id)));
      }
      if (e.bw_kbps > 0) {
        vm.attach(std::make_unique<wl::NetPing>(
            e.bw_kbps, sim::NetTarget{},
            static_cast<std::uint64_t>(vm_id) + 500));
      }
    }
  }
  engine.run_for(util::seconds(30.0));
  int saturated = 0;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    double demand = 0.0, granted = 0.0;
    for (sim::DomU* vm : machines[i]->vms()) {
      demand += vm->last_cpu_demand();
      granted += machines[i]->last_granted_pct(vm->name());
    }
    const bool starved = granted + 2.0 < demand;
    if (starved) ++saturated;
    std::printf(
        "  pm%zu: %zu VMs, guest demand %.0f%%, granted %.0f%%%s\n", i,
        machines[i]->vm_count(), demand, granted,
        starved ? "  <-- STARVED (plan was infeasible)" : "");
  }
  std::cout << "\n" << saturated << " of " << machines.size()
            << " hosts in the VOU plan are CPU-starved in practice; the "
               "VOA plan's extra machines are the honest price of the "
               "virtualization overhead.\n";
  return 0;
}
