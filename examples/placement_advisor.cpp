/// \file placement_advisor.cpp
/// Domain example 3 — a virtualization-overhead-aware placement advisor
/// (Sec. VI-B): given a fleet of candidate VMs with predicted demands,
/// show where an overhead-unaware first-fit would put them, where the
/// overhead-aware placer puts them, and what each decision does to the
/// predicted host utilization.
///
/// Run: ./placement_advisor

#include <iostream>

#include "voprof/placement/placer.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/xensim/spec.hpp"
#include "voprof/placement/placer.hpp"

int main() {
  using namespace voprof;

  std::cout << "[1/2] Training the overhead model...\n";
  model::TrainerConfig tcfg;
  tcfg.duration = util::seconds(45.0);
  const model::Trainer trainer(tcfg);
  const model::TrainedModels models =
      trainer.train(model::RegressionMethod::kLms);

  // A mixed fleet: web servers (BW-heavy), databases (I/O + CPU),
  // batch workers (CPU), caches (memory).
  struct Candidate {
    std::string name;
    model::UtilVec demand;
    double mem_mib;
  };
  const std::vector<Candidate> fleet = {
      {"web-1", {55, 150, 0, 1800}, 256},
      {"web-2", {55, 150, 0, 1800}, 256},
      {"db-1", {35, 180, 40, 600}, 256},
      {"batch-1", {85, 120, 5, 10}, 256},
      {"batch-2", {85, 120, 5, 10}, 256},
      {"cache-1", {5, 230, 0, 300}, 256},
      {"web-3", {55, 150, 0, 1800}, 256},
  };

  std::cout << "[2/2] Placing " << fleet.size()
            << " VMs onto a 3-host pool, VOA vs VOU...\n\n";

  for (const bool aware : {false, true}) {
    place::PlacerConfig cfg;
    cfg.overhead_aware = aware;
    const place::Placer placer(cfg, aware ? &models.multi : nullptr);
    std::vector<place::PmState> pool(3);
    for (auto& pm : pool) pm.spec = sim::MachineSpec{};

    util::AsciiTable t(aware ? "VOA (overhead-aware) placement"
                             : "VOU (overhead-unaware) placement");
    t.set_header({"VM", "host", "host sum-VM cpu", "model-predicted host cpu",
                  "note"});
    for (const auto& vm : fleet) {
      bool forced = false;
      const std::size_t host =
          placer.place(pool, vm.demand, vm.mem_mib, &forced);
      const model::UtilVec sum = pool[host].demand_sum();
      const double predicted =
          models.multi
              .predict(sum, pool[host].vm_count())
              .cpu;
      t.add_row({vm.name, "pm" + std::to_string(host),
                 util::fmt(sum.cpu, 1), util::fmt(predicted, 1),
                 forced ? "FORCED (nothing fit)"
                        : (aware ? "" : (predicted > 240.0
                                             ? "overcommitted!"
                                             : ""))});
    }
    std::cout << t.str() << '\n';

    for (std::size_t i = 0; i < pool.size(); ++i) {
      const model::UtilVec sum = pool[i].demand_sum();
      if (pool[i].vm_count() == 0) continue;
      std::cout << "  pm" << i << ": " << pool[i].vm_count()
                << " VMs, sum-VM cpu " << util::fmt(sum.cpu, 1)
                << "%, predicted host cpu "
                << util::fmt(
                       models.multi.predict(sum, pool[i].vm_count()).cpu, 1)
                << "% (incl. Dom0 "
                << util::fmt(models.multi.predict_dom0_cpu(
                                 sum, pool[i].vm_count()),
                             1)
                << "% + hypervisor "
                << util::fmt(models.multi.predict_hyp_cpu(
                                 sum, pool[i].vm_count()),
                             1)
                << "%)\n";
    }
    std::cout << '\n';
  }

  std::cout
      << "VOU packs by raw VM demand and silently overcommits the hosts "
         "once Dom0/hypervisor\ncosts are added; VOA spreads the "
         "network-heavy VMs whose hidden Dom0 cost is largest.\n";
  return 0;
}
