/// \file rubis_prediction.cpp
/// Domain example 2 — the full Sec. V/VI pipeline on an enterprise-style
/// application: train the overhead model from micro-benchmarks, deploy
/// a two-tier RUBiS-like application (Fig. 6), and predict both host
/// PMs' utilizations from nothing but the guest VMs' own metrics.
///
/// This is what a cloud provider would run: guests report their
/// utilization; the provider estimates the true host cost (guest +
/// Dom0 + hypervisor) for billing and admission control.
///
/// Run: ./rubis_prediction [clients]

#include <cstdlib>
#include <iostream>

#include "voprof/monitor/script.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/rubis/deployment.hpp"

int main(int argc, char** argv) {
  using namespace voprof;

  int clients = 500;
  if (argc > 1) clients = std::atoi(argv[1]);

  // ---- 1. Train the Sec. V models from the Table II sweep. -----------
  std::cout << "[1/3] Training overhead models (Table II sweep x {1,2,4} "
               "VMs, LMS regression)...\n";
  model::TrainerConfig tcfg;
  tcfg.duration = util::seconds(60.0);
  const model::Trainer trainer(tcfg);
  const model::TrainedModels models =
      trainer.train(model::RegressionMethod::kLms);

  const util::Matrix a = models.single.coefficient_matrix();
  std::cout << "      fitted single-VM coefficient matrix a (rows: PM "
               "CPU/MEM/IO/BW; cols: [1, Mc, Mm, Mi, Mn]):\n";
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::cout << "        [";
    for (std::size_t c = 0; c < a.cols(); ++c) {
      std::cout << util::fmt(a(r, c), 4) << (c + 1 < a.cols() ? ", " : "");
    }
    std::cout << "]\n";
  }

  // ---- 2. Deploy RUBiS and measure. -----------------------------------
  std::cout << "[2/3] Deploying RUBiS (web on PM1, DB on PM2, " << clients
            << " clients) and measuring for 2 simulated minutes...\n";
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 4242);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = clients;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);

  engine.run_for(util::seconds(10.0));  // warm the closed loop
  mon::MonitorScript mon1(engine, cluster.machine(0));
  mon::MonitorScript mon2(engine, cluster.machine(1));
  mon1.start();
  mon2.start();
  const double completed_mark = inst.client->completed();
  engine.run_for(util::seconds(120.0));
  mon1.stop();
  mon2.stop();
  std::cout << "      throughput: "
            << util::fmt((inst.client->completed() - completed_mark) / 120.0,
                         1)
            << " req/s\n";

  // ---- 3. Predict and compare. ----------------------------------------
  std::cout << "[3/3] Predicting PM utilizations from VM metrics only...\n\n";
  const model::Predictor predictor(models.multi);
  const struct {
    const char* name;
    const mon::MeasurementReport& report;
    std::string vm;
  } pms[] = {{"PM1 (web tier)", mon1.report(), inst.web_vm},
             {"PM2 (database tier)", mon2.report(), inst.db_vm}};

  for (const auto& p : pms) {
    const model::PredictionEval eval = predictor.evaluate(p.report, {p.vm});
    util::AsciiTable t(std::string(p.name) + ": measured vs predicted");
    t.set_header({"metric", "measured(mean)", "predicted(mean)",
                  "p90 err(%)", "p50 err(%)"});
    const char* metric_names[] = {"CPU (%)", "MEM (MiB)", "I/O (blk/s)",
                                  "BW (Kb/s)"};
    for (std::size_t m = 0; m < model::kMetricCount; ++m) {
      const model::MetricEval& me =
          eval.of(static_cast<model::MetricIndex>(m));
      t.add_row({metric_names[m], util::fmt(me.measured.mean(), 2),
                 util::fmt(me.predicted.mean(), 2),
                 me.errors_pct.empty()
                     ? "-"
                     : util::fmt(me.error_at_fraction(0.9), 2),
                 me.errors_pct.empty()
                     ? "-"
                     : util::fmt(me.error_at_fraction(0.5), 2)});
    }
    std::cout << t.str() << '\n';
  }

  std::cout << "The PM CPU rows include Dom0 + hypervisor overhead the "
               "guests never see - the gap a VOU-style manager "
               "mis-budgets.\n";
  return 0;
}
