/// \file quickstart.cpp
/// Minimal end-to-end tour of the voprof public API:
///   1. build a simulated XenServer testbed (one PM),
///   2. boot a guest VM running a CPU-intensive workload,
///   3. attach the synchronized measurement script of Sec. III-A,
///   4. measure for 2 simulated minutes and print what the paper's
///      Fig. 2(a) would show at this operating point.
///
/// Run: ./quickstart [cpu_workload_pct]

#include <cstdlib>
#include <iostream>
#include <string>

#include "voprof/monitor/script.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace voprof;

  double cpu_workload_pct = 60.0;
  if (argc > 1) cpu_workload_pct = std::atof(argv[1]);

  // --- 1. Testbed: the paper's host (quad 2.66 GHz Xeon, 2 GiB). ------
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, /*seed=*/42);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});

  // --- 2. One guest VM (1 VCPU, 256 MiB) running lookbusy-style load. --
  sim::VmSpec vm_spec;
  vm_spec.name = "vm1";
  sim::DomU& vm = pm.add_vm(vm_spec);
  vm.attach(std::make_unique<wl::CpuHog>(cpu_workload_pct, /*seed=*/7));

  // --- 3+4. Synchronized monitoring, 1 s samples for 2 minutes. --------
  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report =
      monitor.measure(util::seconds(120.0));

  const mon::UtilSample vm_util = report.mean("vm1");
  const mon::UtilSample dom0 = report.mean(mon::MeasurementReport::kDom0Key);
  const mon::UtilSample hyp = report.mean(mon::MeasurementReport::kHypKey);
  const mon::UtilSample host = report.mean(mon::MeasurementReport::kPmKey);

  util::AsciiTable t("quickstart: CPU-intensive workload at " +
                     util::fmt(cpu_workload_pct, 0) + "% in one VM");
  t.set_header({"entity", "CPU(%)", "MEM(MiB)", "I/O(blk/s)", "BW(Kb/s)"});
  auto row = [&t](const std::string& name, const mon::UtilSample& u) {
    t.add_row({name, util::fmt(u.cpu_pct, 2), util::fmt(u.mem_mib, 1),
               util::fmt(u.io_blocks_per_s, 2), util::fmt(u.bw_kbps, 2)});
  };
  row("VM (vm1)", vm_util);
  row("Dom0", dom0);
  row("hypervisor", hyp);
  row("PM (host)", host);
  std::cout << t.str() << '\n';

  std::cout << "Virtualization overhead (PM CPU - VM CPU): "
            << util::fmt(host.cpu_pct - vm_util.cpu_pct, 2)
            << "% of one core - the cost the paper's VOU placement "
               "ignores.\n";
  std::cout << "Samples: " << report.sample_count() << " (1 s interval)\n";
  return 0;
}
