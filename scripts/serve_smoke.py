#!/usr/bin/env python3
"""Black-box smoke test for voprofd and the voprof-api-1 wire contract.

Drives a real daemon over its Unix socket and asserts the behaviour the
serving layer promises (docs/SERVING.md):

  * every response line parses against the voprof-api-1 envelope;
  * `status` stays responsive while the workers are saturated;
  * requests beyond --queue-capacity are rejected immediately with a
    structured `overloaded` error -- admission never blocks;
  * an expired deadline yields `timed_out`;
  * SIGTERM completes every admitted request, flushes the metrics
    snapshot and exits 0;
  * `voprofctl request` speaks the same protocol as a raw socket.

Used by the `serve-smoke` CI job; also runnable locally:

    python3 scripts/serve_smoke.py \
        --voprofd build/tools/voprofd --voprofctl build/tools/voprofctl
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

API = "voprof-api-1"
ERROR_CODES = {
    "bad_request",
    "overloaded",
    "timed_out",
    "shutting_down",
    "internal",
}

FAILURES = []


def check(cond, what):
    marker = "ok" if cond else "FAIL"
    print(f"  [{marker}] {what}")
    if not cond:
        FAILURES.append(what)


def validate_envelope(resp):
    """Assert one parsed response object matches the voprof-api-1 schema."""
    check(resp.get("api") == API, f"response carries api={API}: {resp}")
    check(isinstance(resp.get("id"), str), f"response id is a string: {resp}")
    check(isinstance(resp.get("ok"), bool), f"response ok is a bool: {resp}")
    if resp.get("ok"):
        check("result" in resp and "error" not in resp,
              f"success carries result, not error: {resp}")
    else:
        err = resp.get("error")
        check(isinstance(err, dict), f"failure carries an error object: {resp}")
        if isinstance(err, dict):
            check(err.get("code") in ERROR_CODES,
                  f"error code {err.get('code')!r} is a documented code")
            check(isinstance(err.get("message"), str) and err["message"],
                  f"error message is a non-empty string: {resp}")


class Client:
    """A pipelining NDJSON client over one Unix-socket connection."""

    def __init__(self, path, timeout=30.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.buf = b""

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def recv_line(self):
        """One response line, or None on clean EOF."""
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        resp = json.loads(line)
        validate_envelope(resp)
        return resp

    def collect(self, ids):
        """Read until every id in `ids` has answered; keyed by id."""
        pending = set(ids)
        got = {}
        while pending:
            resp = self.recv_line()
            if resp is None:
                raise AssertionError(f"EOF with {sorted(pending)} unanswered")
            got[resp["id"]] = resp
            pending.discard(resp["id"])
        return got

    def roundtrip(self, obj):
        self.send(obj)
        return self.collect([obj["id"]])[obj["id"]]

    def close(self):
        self.sock.close()


def req(rid, op, params=None, deadline_ms=None):
    r = {"api": API, "id": rid, "op": op}
    if deadline_ms is not None:
        r["deadline_ms"] = deadline_ms
    if params is not None:
        r["params"] = params
    return r


def wait_for_socket(path, proc, deadline_s=15.0):
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        if proc.poll() is not None:
            raise AssertionError(f"voprofd exited early: rc={proc.returncode}")
        try:
            Client(path, timeout=1.0).close()
            return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"socket {path} never became connectable")


def smoke_envelope_and_status(sock_path):
    print("== status + envelope")
    c = Client(sock_path)
    status = c.roundtrip(req("st1", "status"))
    check(status["ok"], "status succeeds")
    result = status.get("result", {})
    for key in ("jobs", "queue_capacity", "in_flight", "draining",
                "accepted", "completed", "rejected_overloaded"):
        check(key in result, f"status result carries '{key}'")
    check(result.get("test_ops") is True, "test ops are enabled for the smoke")

    # An invalid envelope is rejected wholesale, so the id is not
    # echoed -- read the response positionally, not by id.
    c.send(req("bad1", "status", params=[1, 2]))
    bad = c.recv_line()
    check(bad is not None and not bad["ok"]
          and bad["error"]["code"] == "bad_request",
          "malformed params answer bad_request")
    c.close()


def smoke_overload(sock_path):
    print("== saturation -> overloaded, status stays responsive")
    c = Client(sock_path)
    # jobs=1, queue-capacity=2: two sleeps fill the bound (one running,
    # one queued); everything after that must shed immediately.
    for rid in ("s1", "s2"):
        c.send(req(rid, "sleep", {"ms": 800}))
    time.sleep(0.2)  # let the daemon admit them
    t0 = time.monotonic()
    for rid in ("o1", "o2", "o3", "o4"):
        c.send(req(rid, "sleep", {"ms": 800}))
    got = c.collect(["o1", "o2", "o3", "o4"])
    shed_s = time.monotonic() - t0
    for rid, resp in got.items():
        check(not resp["ok"] and resp["error"]["code"] == "overloaded",
              f"{rid} rejected with overloaded")
    check(shed_s < 0.6, f"rejections arrived in {shed_s * 1000:.0f} ms, "
          "before the admitted sleeps finished (admission never blocks)")

    # Control ops bypass the queue: status answers while workers sleep.
    c2 = Client(sock_path)
    status = c2.roundtrip(req("st2", "status"))
    check(status["ok"], "status succeeds under saturation")
    check(status["result"]["rejected_overloaded"] >= 4,
          "status counts the overload rejections")
    check(status["result"]["in_flight"] >= 1,
          "status sees the admitted work in flight")
    c2.close()

    admitted = c.collect(["s1", "s2"])
    for rid, resp in admitted.items():
        check(resp["ok"] and resp["result"].get("slept_ms") == 800,
              f"admitted {rid} still completed")
    c.close()


def smoke_deadline(sock_path):
    print("== deadline expiry -> timed_out")
    c = Client(sock_path)
    resp = c.roundtrip(req("d1", "sleep", {"ms": 5000}, deadline_ms=150))
    check(not resp["ok"] and resp["error"]["code"] == "timed_out",
          "expired deadline answers timed_out")
    c.close()


def smoke_predict(sock_path):
    print("== predict over the wire")
    c = Client(sock_path)
    params = {"cpu": 40, "mem": 512, "io": 100, "bw": 2000, "vms": 2,
              "train_duration_s": 1.0}
    resp = c.roundtrip(req("p1", "predict", params))
    check(resp["ok"], f"predict succeeds: {resp}")
    if resp["ok"]:
        check(isinstance(resp["result"], dict) and resp["result"],
              "predict result is a non-empty object")
    c.close()


def smoke_ctl_request(sock_path, voprofctl):
    if not voprofctl:
        return
    print("== voprofctl request speaks the same protocol")
    run = subprocess.run(
        [voprofctl, "request", "--socket", sock_path, "--op", "status"],
        capture_output=True, text=True, timeout=30)
    check(run.returncode == 0, f"voprofctl request exits 0: {run.stderr}")
    resp = json.loads(run.stdout.strip())
    validate_envelope(resp)
    check(resp["ok"] and "queue_capacity" in resp["result"],
          "voprofctl request returns the status result")

    # A rejected request is a nonzero exit, still with a schema response.
    run = subprocess.run(
        [voprofctl, "request", "--socket", sock_path, "--op", "sleep",
         "--deadline-ms", "100", "--params", '{"ms": 5000}'],
        capture_output=True, text=True, timeout=30)
    check(run.returncode != 0, "timed-out request exits nonzero")
    resp = json.loads(run.stdout.strip())
    validate_envelope(resp)
    check(resp["error"]["code"] == "timed_out",
          "voprofctl request surfaces timed_out")


def smoke_sigterm_drain(sock_path, proc, metrics_path):
    print("== SIGTERM completes admitted work, flushes metrics, exits 0")
    c = Client(sock_path)
    for rid in ("w1", "w2"):
        c.send(req(rid, "sleep", {"ms": 600}))
    # Same-connection lines are admitted in arrival order, so once this
    # status answers the sleeps are in flight -- not merely unread bytes
    # the drain is free to drop.
    c.send(req("gate", "status"))
    c.collect(["gate"])

    proc.send_signal(signal.SIGTERM)
    got = c.collect(["w1", "w2"])
    for rid, resp in got.items():
        check(resp["ok"], f"in-flight {rid} completed across SIGTERM")

    rejected = False
    try:
        resp = c.roundtrip(req("late", "sleep", {"ms": 10}))
        rejected = (not resp["ok"]
                    and resp["error"]["code"] == "shutting_down")
    except (OSError, AssertionError):
        rejected = True  # daemon already gone: equally a rejection
    check(rejected, "post-drain work is refused")
    c.close()

    rc = proc.wait(timeout=20)
    check(rc == 0, f"voprofd exits 0 after drain (got {rc})")
    check(not os.path.exists(sock_path), "socket file removed on shutdown")

    with open(metrics_path, encoding="utf-8") as f:
        doc = json.load(f)
    check(doc.get("schema") == "voprof-metrics-1",
          "metrics snapshot carries schema voprof-metrics-1")
    metrics = doc.get("metrics", {})
    serve_keys = [k for k in metrics if k.startswith("serve.")]
    check(bool(serve_keys), f"metrics include serve.* counters: {serve_keys}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--voprofd", required=True, help="path to the daemon")
    ap.add_argument("--voprofctl", default="", help="path to voprofctl")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="voprof-smoke-") as tmp:
        sock_path = os.path.join(tmp, "voprofd.sock")
        metrics_path = os.path.join(tmp, "metrics.json")
        proc = subprocess.Popen(
            [args.voprofd, "--socket", sock_path,
             "--jobs", "1", "--queue-capacity", "2",
             "--train-duration", "1", "--enable-test-ops",
             "--metrics-out", metrics_path])
        try:
            wait_for_socket(sock_path, proc)
            smoke_envelope_and_status(sock_path)
            smoke_overload(sock_path)
            smoke_deadline(sock_path)
            smoke_predict(sock_path)
            smoke_ctl_request(sock_path, args.voprofctl)
            smoke_sigterm_drain(sock_path, proc, metrics_path)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if FAILURES:
        print(f"\nserve_smoke: {len(FAILURES)} check(s) failed:")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("\nserve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
