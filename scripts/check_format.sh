#!/usr/bin/env sh
# Verify that every tracked C++ file is clang-format clean (dry run, no
# rewriting). Used by the `format-check` CMake target and the CI lint job.
#
# Exit codes: 0 clean, 1 violations found, 2 environment problem.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

CLANG_FORMAT=${CLANG_FORMAT:-clang-format}

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found in PATH." >&2
  echo "check_format: install clang-format or set CLANG_FORMAT=<binary>." >&2
  exit 2
fi

# Tracked C++ sources only; fixtures are deliberately ill-formed inputs
# for voprof-lint tests, not style exemplars.
files=$(git ls-files -- '*.cpp' '*.cc' '*.cxx' '*.hpp' '*.h' '*.hh' \
          ':!tests/lint_fixtures/**')

if [ -z "$files" ]; then
  echo "check_format: no tracked C++ files found." >&2
  exit 2
fi

# shellcheck disable=SC2086  # word-splitting the file list is intended
if "$CLANG_FORMAT" --dry-run -Werror $files; then
  echo "check_format: all files formatted."
  exit 0
fi
echo "check_format: run '$CLANG_FORMAT -i' on the files above." >&2
exit 1
