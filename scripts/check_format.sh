#!/usr/bin/env sh
# Verify that every tracked C++ file is clang-format clean (dry run, no
# rewriting). Used by the `format-check` CMake target and the CI lint job.
#
# Prints one line per unformatted file and a summary list at the end so
# CI logs show exactly what to fix without scrolling through diagnostics.
#
# Exit codes: 0 clean, 1 violations found, 2 environment problem.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

CLANG_FORMAT=${CLANG_FORMAT:-clang-format}

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found in PATH." >&2
  echo "check_format: install clang-format or set CLANG_FORMAT=<binary>." >&2
  exit 2
fi

# Tracked C++ sources only — untracked scratch files and build trees are
# ignored; fixtures are deliberately ill-formed inputs for voprof-lint
# tests, not style exemplars.
files=$(git ls-files -- '*.cpp' '*.cc' '*.cxx' '*.hpp' '*.h' '*.hh' \
          ':!tests/lint_fixtures/**')

if [ -z "$files" ]; then
  echo "check_format: no tracked C++ files found." >&2
  exit 2
fi

bad=""
checked=0
for f in $files; do
  checked=$((checked + 1))
  if ! "$CLANG_FORMAT" --dry-run -Werror -- "$f" >/dev/null 2>&1; then
    echo "check_format: NEEDS FORMAT $f" >&2
    bad="$bad $f"
  fi
done

if [ -z "$bad" ]; then
  echo "check_format: all $checked tracked files formatted."
  exit 0
fi

echo "check_format: unformatted files:" >&2
for f in $bad; do
  echo "  $f" >&2
done
echo "check_format: fix with: $CLANG_FORMAT -i$bad" >&2
exit 1
