#pragma once
/// \file invariants.hpp
/// Runtime invariant audit for the simulator and the model pipeline.
///
/// The paper's claims are quantitative (Dom0/hypervisor CPU overhead,
/// ~2x disk amplification, the M-hat regression of Sec. V), so a silent
/// NaN or an out-of-range utilization poisons every downstream figure.
/// This header provides
///   - cheap value-level checks (finite, unit-interval, monotone time),
///   - an InvariantAuditor that rides the xensim engine tick loop as a
///     TickListener and cross-checks every PhysicalMachine snapshot:
///     counters monotone and finite, per-PM CPU accounting conserved
///     across Dom0 / guest domains / hypervisor, memory gauges sane,
///   - validation hooks the trainers and regression back-ends call on
///     their rows and fitted coefficients.
///
/// The *implicit* hooks (trainer rows, regression outputs) are gated by
/// invariants_enabled(): compiled in by default in Debug and sanitizer
/// builds (CMake option VOPROF_CHECK_INVARIANTS), overridable at run
/// time through set_invariants_enabled() or the VOPROF_CHECK_INVARIANTS
/// environment variable (=0/1). An explicitly constructed
/// InvariantAuditor always checks, whatever the toggle says.

#include <cstddef>
#include <string>
#include <vector>

#include "voprof/util/assert.hpp"
#include "voprof/util/units.hpp"
#include "voprof/xensim/counters.hpp"
#include "voprof/xensim/engine.hpp"

namespace voprof::sim {
class Cluster;
}

namespace voprof::model {

struct TrainingRow;
struct LinearFit;

/// Thrown on any invariant violation (derived from ContractViolation so
/// existing catch sites keep working).
class InvariantViolation : public util::ContractViolation {
 public:
  explicit InvariantViolation(const std::string& what_arg)
      : util::ContractViolation(what_arg) {}
};

/// Whether the implicit pipeline hooks (trainer / regression) check.
/// Default: the VOPROF_CHECK_INVARIANTS compile definition, overridden
/// by the VOPROF_CHECK_INVARIANTS environment variable if set.
[[nodiscard]] bool invariants_enabled() noexcept;
/// Force the toggle at run time (tests, tools).
void set_invariants_enabled(bool enabled) noexcept;

/// [[noreturn]] helper: raise an InvariantViolation with context.
[[noreturn]] void invariant_failure(const std::string& what,
                                    const std::string& detail);

/// `value` must be finite (no NaN / infinity).
void check_finite(double value, const std::string& what);
/// `value` must be a utilization fraction in [0, 1] (with tolerance
/// `tol` for floating-point accumulation).
void check_unit_interval(double value, const std::string& what,
                         double tol = 1e-9);
/// `value` must lie in [lo, hi].
void check_in_range(double value, double lo, double hi,
                    const std::string& what);
/// Timestamps must not run backwards.
void check_monotonic_time(util::SimMicros prev, util::SimMicros cur,
                          const std::string& what);

/// Validate one cumulative-counter step: every counter finite and
/// non-decreasing relative to `prev` (memory is a gauge: finite,
/// non-negative). `who` labels error messages.
void check_counters_step(const sim::DomainCounters& prev,
                         const sim::DomainCounters& cur,
                         const std::string& who);

/// Validate a fitted linear model: all coefficients finite,
/// residual RMS finite and non-negative, R^2 finite and <= 1.
void check_fit(const LinearFit& fit, const std::string& what);

/// Validate one training observation: all metrics finite, CPU and
/// memory non-negative, at least one VM.
void check_training_row(const TrainingRow& row);

/// Tick-loop auditor for a whole cluster. Construct it after the
/// cluster (listeners tick in registration order, so the auditor sees
/// post-tick state) and it verifies, every tick and for every machine:
///   - simulated time advances strictly monotonically,
///   - every domain / device counter is finite and non-decreasing,
///   - per-guest CPU consumption fits inside the guest's VCPU
///     allocation, the guest pool fits inside the guest cores, Dom0
///     fits inside its pinned cores, and the PM total (Dom0 + guests +
///     hypervisor) never exceeds the physical cores (conservation of
///     CPU accounting across the Fig. 1 layers),
///   - utilization fractions derived from those deltas stay in [0, 1],
///   - memory gauges are finite and non-negative.
/// Violations throw InvariantViolation at the offending tick.
class InvariantAuditor final : public sim::TickListener {
 public:
  /// Attaches to the cluster's engine. The auditor does not own the
  /// cluster and must not outlive it.
  explicit InvariantAuditor(sim::Cluster& cluster);
  ~InvariantAuditor() override;

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  void tick(util::SimMicros now, double dt) override;

  /// Number of ticks audited so far (diagnostics / tests).
  [[nodiscard]] std::size_t ticks_audited() const noexcept {
    return ticks_audited_;
  }

  /// Relative slack applied to capacity comparisons (accumulated
  /// floating-point error across a tick).
  static constexpr double kCapacitySlack = 1e-6;

 private:
  struct MachineBaseline {
    sim::MachineSnapshot snap;
    bool valid = false;
  };

  void audit_machine(std::size_t idx, util::SimMicros now);

  sim::Cluster& cluster_;
  std::vector<MachineBaseline> prev_;
  util::SimMicros last_now_ = 0;
  bool seen_tick_ = false;
  std::size_t ticks_audited_ = 0;
};

}  // namespace voprof::model
