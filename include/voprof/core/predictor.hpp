#pragma once
/// \file predictor.hpp
/// Trace-driven prediction and error analysis (Sec. VI-A): feed the
/// per-second VM utilization samples of a finished measurement through
/// a fitted MultiVmModel, compare with the measured PM utilizations,
/// and build the prediction-error CDFs of Figs. 7-9
/// (error = |p - m| / m).

#include <array>
#include <string>
#include <vector>

#include "voprof/core/overhead_model.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/util/stats.hpp"
#include "voprof/util/time_series.hpp"

namespace voprof::model {

/// Per-metric outcome of one evaluation.
struct MetricEval {
  util::TimeSeries predicted;
  util::TimeSeries measured;
  /// Percent errors |p - m| / m * 100, one entry per usable sample
  /// (samples with near-zero measured value are excluded to keep the
  /// ratio meaningful).
  std::vector<double> errors_pct;
  util::Cdf error_cdf;

  /// Error value at the given CDF fraction, e.g. 0.9 for the paper's
  /// "90% of the predictions have errors smaller than ..." statements.
  [[nodiscard]] double error_at_fraction(double p) const {
    return error_cdf.value_at(p);
  }
  [[nodiscard]] double mean_error_pct() const noexcept {
    return util::mean(errors_pct);
  }
};

/// Evaluation over all four metrics.
struct PredictionEval {
  std::array<MetricEval, kMetricCount> metrics;

  [[nodiscard]] const MetricEval& of(MetricIndex m) const noexcept {
    return metrics[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] MetricEval& of(MetricIndex m) noexcept {
    return metrics[static_cast<std::size_t>(m)];
  }
};

/// Streams measurement reports through a fitted model.
class Predictor {
 public:
  /// \param indirect_cpu  Sec. VI-A's method for PM CPU: measured
  ///        sum-of-VM CPU plus predicted Dom0 + hypervisor overhead.
  ///        When false, PM CPU comes from the direct Eq. (3) fit like
  ///        the other metrics (kept for the ablation bench).
  explicit Predictor(MultiVmModel model, bool indirect_cpu = true);

  /// Predict PM utilization for every sample of `report`, using the
  /// named VMs as the co-located set, and compare with the measured PM
  /// series. `min_denominator` guards the relative-error division.
  [[nodiscard]] PredictionEval evaluate(
      const mon::MeasurementReport& report,
      const std::vector<std::string>& vm_names,
      double min_denominator = 1e-3) const;

  /// One-shot prediction from a summed VM utilization vector.
  [[nodiscard]] UtilVec predict(const UtilVec& vm_sum, int n_vms) const {
    return model_.predict(vm_sum, n_vms);
  }

  [[nodiscard]] const MultiVmModel& model() const noexcept { return model_; }
  [[nodiscard]] bool indirect_cpu() const noexcept { return indirect_cpu_; }

 private:
  MultiVmModel model_;
  bool indirect_cpu_;
};

}  // namespace voprof::model
