#pragma once
/// \file utilvec.hpp
/// The 4-metric utilization vector M = [Mc, Mm, Mi, Mn] of Sec. V
/// (CPU %, memory MiB, disk I/O blocks/s, network bandwidth Kb/s), the
/// common currency between the measurement pipeline and the overhead
/// models.

#include <array>
#include <cstddef>
#include <string>

#include "voprof/monitor/sample.hpp"

namespace voprof::model {

inline constexpr std::size_t kMetricCount = 4;

/// Metric order used across all coefficient matrices.
enum class MetricIndex : std::size_t { kCpu = 0, kMem = 1, kIo = 2, kBw = 3 };

[[nodiscard]] std::string metric_name(MetricIndex m);

struct UtilVec {
  double cpu = 0.0;  ///< percent of one core
  double mem = 0.0;  ///< MiB
  double io = 0.0;   ///< blocks/s
  double bw = 0.0;   ///< Kb/s

  [[nodiscard]] static UtilVec from_sample(const mon::UtilSample& s) noexcept {
    return UtilVec{s.cpu_pct, s.mem_mib, s.io_blocks_per_s, s.bw_kbps};
  }

  [[nodiscard]] std::array<double, kMetricCount> to_array() const noexcept {
    return {cpu, mem, io, bw};
  }
  [[nodiscard]] static UtilVec from_array(
      const std::array<double, kMetricCount>& a) noexcept {
    return UtilVec{a[0], a[1], a[2], a[3]};
  }

  [[nodiscard]] double get(MetricIndex m) const noexcept {
    return to_array()[static_cast<std::size_t>(m)];
  }

  UtilVec& operator+=(const UtilVec& o) noexcept {
    cpu += o.cpu;
    mem += o.mem;
    io += o.io;
    bw += o.bw;
    return *this;
  }
  [[nodiscard]] UtilVec operator+(const UtilVec& o) const noexcept {
    UtilVec r = *this;
    r += o;
    return r;
  }
  [[nodiscard]] UtilVec operator-(const UtilVec& o) const noexcept {
    return UtilVec{cpu - o.cpu, mem - o.mem, io - o.io, bw - o.bw};
  }
  [[nodiscard]] UtilVec operator*(double s) const noexcept {
    return UtilVec{cpu * s, mem * s, io * s, bw * s};
  }
};

}  // namespace voprof::model
