#pragma once
/// \file hetero_trainer.hpp
/// Training sweep for the heterogeneous-VM model: like Trainer, but
/// over *mixes* of VM types (e.g. one small + two large guests), so
/// the typed slope blocks of HeteroModel are identifiable.

#include <cstdint>
#include <string>
#include <vector>

#include "voprof/core/hetero_model.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cost_model.hpp"
#include "voprof/xensim/spec.hpp"

namespace voprof::model {

/// A named VM configuration.
struct VmType {
  std::string name;
  sim::VmSpec spec;
  /// How many copies of each workload to attach (a 2-VCPU guest runs
  /// two instances — lookbusy spawns one spinner per core).
  int workload_instances = 1;
};

struct HeteroTrainerConfig {
  /// The VM types under study. Default: the paper's 1-VCPU/256-MiB
  /// guest plus a 2-VCPU/512-MiB "large" configuration with a doubled
  /// virtual-disk cap.
  std::vector<VmType> types;
  /// Deployment mixes: counts per type, aligned with `types`.
  std::vector<std::vector<int>> mixes;
  std::vector<wl::WorkloadKind> kinds = {
      wl::WorkloadKind::kCpu, wl::WorkloadKind::kMem, wl::WorkloadKind::kIo,
      wl::WorkloadKind::kBw};
  util::SimMicros duration = util::seconds(60.0);
  std::uint64_t seed = 71;
  sim::MachineSpec machine;
  sim::CostModel costs;

  /// Build the default two-type study.
  [[nodiscard]] static HeteroTrainerConfig defaults();
};

class HeteroTrainer {
 public:
  explicit HeteroTrainer(HeteroTrainerConfig config);

  /// One cell: deploy the mix, run workload (kind, level) in every VM,
  /// return one observation per 1 s sample.
  [[nodiscard]] HeteroTrainingSet collect_run(const std::vector<int>& mix,
                                              wl::WorkloadKind kind,
                                              std::size_t level) const;

  /// Full sweep (mixes x kinds x 5 levels).
  [[nodiscard]] HeteroTrainingSet collect() const;

  /// Default estimator is OLS, not LMS: the typed design matrix has
  /// strongly collinear blocks (per-type sums plus the alpha-scaled
  /// grand total), on which LMS's random elemental subsets are often
  /// near-singular and the fit becomes unstable. OLS is well-behaved
  /// here because the typed blocks absorb the per-configuration
  /// structure that made the homogeneous OLS fit biased.
  [[nodiscard]] HeteroModel train(
      RegressionMethod method = RegressionMethod::kOls) const;

  [[nodiscard]] const HeteroTrainerConfig& config() const noexcept {
    return config_;
  }

 private:
  HeteroTrainerConfig config_;
};

}  // namespace voprof::model
