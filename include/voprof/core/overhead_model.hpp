#pragma once
/// \file overhead_model.hpp
/// The paper's virtualization-overhead estimation models (Sec. V):
///
///   Single VM (Eq. 1-2):   M_hat = a * [1, Mc, Mm, Mi, Mn]^T
///     one linear map per PM metric; `a` is a 4x5 coefficient matrix
///     (intercept a_o models the guest OS's no-benchmark consumption).
///
///   Co-located VMs (Eq. 3): M_hat = a(sum M_k) + alpha(N) * o(sum M_k)
///     with alpha(N) linear in N (alpha(1)=0, alpha(2)=1 per the
///     paper's examples, i.e. alpha(N) = N-1), and `o` a second 4x5
///     coefficient matrix describing the co-location overhead.

#include <cstdint>
#include <vector>

#include "voprof/core/regression.hpp"
#include "voprof/core/utilvec.hpp"
#include "voprof/util/matrix.hpp"

namespace voprof::model {

/// One observation: the summed VM utilizations on a PM, how many VMs
/// produced them, and the PM / Dom0 / hypervisor utilizations measured
/// at the same instant. Dom0 and hypervisor CPU are kept separately
/// because Sec. VI-A predicts PM CPU *indirectly*: measured sum-of-VM
/// CPU plus the predicted Dom0 and hypervisor utilizations.
struct TrainingRow {
  UtilVec vm_sum;
  int n_vms = 1;
  UtilVec pm;
  double dom0_cpu = 0.0;
  double hyp_cpu = 0.0;
};

/// A labelled collection of observations.
class TrainingSet {
 public:
  void add(TrainingRow row);
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const std::vector<TrainingRow>& rows() const noexcept {
    return rows_;
  }
  /// Subset with exactly n co-located VMs.
  [[nodiscard]] TrainingSet with_vm_count(int n) const;
  /// Subset with at least n co-located VMs.
  [[nodiscard]] TrainingSet with_vm_count_at_least(int n) const;
  void append(const TrainingSet& other);

  /// Design matrix of VM-sum predictors [Mc, Mm, Mi, Mn] (no intercept
  /// column), one row per observation.
  [[nodiscard]] util::Matrix design() const;
  /// Response vector for one PM metric.
  [[nodiscard]] std::vector<double> response(MetricIndex m) const;
  /// Response vectors for the two virtualization-overhead components.
  [[nodiscard]] std::vector<double> response_dom0_cpu() const;
  [[nodiscard]] std::vector<double> response_hyp_cpu() const;

 private:
  std::vector<TrainingRow> rows_;
};

/// Eq. (1)-(2): per-resource linear model for a PM hosting one VM.
class SingleVmModel {
 public:
  SingleVmModel() = default;

  /// Fit the 4x5 coefficient matrix from single-VM observations.
  [[nodiscard]] static SingleVmModel fit(const TrainingSet& data,
                                         RegressionMethod method,
                                         std::uint64_t seed = 1234);

  /// Predict PM utilization from one VM's utilization vector.
  [[nodiscard]] UtilVec predict(const UtilVec& vm) const;
  /// Predict the Dom0 / hypervisor CPU overhead components.
  [[nodiscard]] double predict_dom0_cpu(const UtilVec& vm) const;
  [[nodiscard]] double predict_hyp_cpu(const UtilVec& vm) const;

  /// Coefficient row for one PM metric: [a_o, a_c, a_m, a_i, a_n].
  [[nodiscard]] const LinearFit& fit_for(MetricIndex m) const;
  [[nodiscard]] const LinearFit& dom0_cpu_fit() const;
  [[nodiscard]] const LinearFit& hyp_cpu_fit() const;
  /// 4x5 matrix view of all coefficients (row order = MetricIndex).
  [[nodiscard]] util::Matrix coefficient_matrix() const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Rebuild from previously fitted coefficients (deserialization).
  [[nodiscard]] static SingleVmModel from_fits(
      std::array<LinearFit, kMetricCount> fits, LinearFit dom0_cpu,
      LinearFit hyp_cpu);

 private:
  std::array<LinearFit, kMetricCount> fits_;
  LinearFit dom0_cpu_fit_;
  LinearFit hyp_cpu_fit_;
  bool trained_ = false;
};

/// Eq. (3): model for N co-located VMs. alpha(N) = N - 1 (linear in N,
/// zero for a single VM — the paper's stated simplification).
class MultiVmModel {
 public:
  MultiVmModel() = default;

  /// Fit: `a` from the single-VM subset, then `o` from the multi-VM
  /// subset via the alpha(N)-scaled residual regression
  ///   pm - a(sum M) = alpha(N) * o(sum M).
  [[nodiscard]] static MultiVmModel fit(const TrainingSet& data,
                                        RegressionMethod method,
                                        std::uint64_t seed = 1234);

  /// Predict PM utilization from the summed utilizations of its N VMs.
  [[nodiscard]] UtilVec predict(const UtilVec& vm_sum, int n_vms) const;

  /// Predict the virtualization-overhead CPU components.
  [[nodiscard]] double predict_dom0_cpu(const UtilVec& vm_sum,
                                        int n_vms) const;
  [[nodiscard]] double predict_hyp_cpu(const UtilVec& vm_sum,
                                       int n_vms) const;

  /// Sec. VI-A's indirect PM-CPU prediction: measured sum-of-VM CPU
  /// plus the *predicted* Dom0 and hypervisor utilizations ("We
  /// predicted the PM CPU utilization based on the predicted Dom0 and
  /// hypervisor utilizations").
  [[nodiscard]] double predict_pm_cpu_indirect(const UtilVec& vm_sum,
                                               int n_vms) const;

  [[nodiscard]] static double alpha(int n_vms) noexcept {
    return n_vms <= 1 ? 0.0 : static_cast<double>(n_vms - 1);
  }

  [[nodiscard]] const SingleVmModel& base() const noexcept { return base_; }
  /// Co-location overhead coefficients for one PM metric:
  /// [o_o, o_c, o_m, o_i, o_n].
  [[nodiscard]] const LinearFit& overhead_for(MetricIndex m) const;
  [[nodiscard]] const LinearFit& dom0_overhead_fit() const;
  [[nodiscard]] const LinearFit& hyp_overhead_fit() const;
  [[nodiscard]] util::Matrix overhead_matrix() const;
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Rebuild from previously fitted parts (deserialization).
  [[nodiscard]] static MultiVmModel from_parts(
      SingleVmModel base, std::array<LinearFit, kMetricCount> overhead,
      LinearFit dom0_overhead, LinearFit hyp_overhead);

 private:
  SingleVmModel base_;
  std::array<LinearFit, kMetricCount> overhead_;
  LinearFit dom0_overhead_;
  LinearFit hyp_overhead_;
  bool trained_ = false;
};

}  // namespace voprof::model
