#pragma once
/// \file hetero_model.hpp
/// Heterogeneous-VM overhead model — the paper's stated future work
/// ("improving the model for estimating the resource utilization
/// overhead for different types of VMs with diverse configurations,
/// when they are co-located in a PM", Sec. VII).
///
/// Eq. (3) treats all VMs as one population: M_hat = a(sum M) +
/// alpha(N) o(sum M). With mixed VM configurations that is lossy — a
/// 2-VCPU guest at 150 % drives a different Dom0 control-plane
/// response than two 1-VCPU guests at 75 % each, because the response
/// is convex per VM. The typed model keeps one slope block per VM
/// *type*:
///
///   M_hat = a_0 + sum_t A_t * M^t + alpha(N) * o(sum_t M^t)
///
/// where M^t is the summed utilization of the type-t VMs, A_t a 4x4
/// slope block, a_0 a global intercept, and the alpha term is the
/// familiar co-location overhead on the grand total.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "voprof/core/overhead_model.hpp"

namespace voprof::model {

/// Per-type observation inside one row.
struct TypeObservation {
  UtilVec sum;    ///< summed utilization of the type's VMs
  int count = 0;  ///< how many VMs of this type
};

/// One heterogeneous observation.
struct HeteroRow {
  std::map<std::string, TypeObservation> types;
  UtilVec pm;
  double dom0_cpu = 0.0;
  double hyp_cpu = 0.0;

  [[nodiscard]] int total_vms() const noexcept;
  [[nodiscard]] UtilVec grand_sum() const noexcept;
};

class HeteroTrainingSet {
 public:
  void add(HeteroRow row);
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<HeteroRow>& rows() const noexcept {
    return rows_;
  }
  /// All type names seen, sorted.
  [[nodiscard]] std::vector<std::string> type_names() const;

 private:
  std::vector<HeteroRow> rows_;
};

/// The typed model. Rows may omit types (treated as zero utilization of
/// that type).
class HeteroModel {
 public:
  HeteroModel() = default;

  [[nodiscard]] static HeteroModel fit(const HeteroTrainingSet& data,
                                       RegressionMethod method,
                                       std::uint64_t seed = 1234);

  /// Predict PM utilization for a mixed deployment.
  [[nodiscard]] UtilVec predict(
      const std::map<std::string, TypeObservation>& types) const;
  /// Sec. VI-A-style indirect PM CPU (measured guest CPU + predicted
  /// Dom0 + hypervisor).
  [[nodiscard]] double predict_pm_cpu_indirect(
      const std::map<std::string, TypeObservation>& types) const;
  [[nodiscard]] double predict_dom0_cpu(
      const std::map<std::string, TypeObservation>& types) const;
  [[nodiscard]] double predict_hyp_cpu(
      const std::map<std::string, TypeObservation>& types) const;

  [[nodiscard]] const std::vector<std::string>& types() const noexcept {
    return types_;
  }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Fit quality of the PM-metric regressions (index by MetricIndex).
  [[nodiscard]] const LinearFit& fit_for(MetricIndex m) const;
  [[nodiscard]] const LinearFit& dom0_fit() const;
  [[nodiscard]] const LinearFit& hyp_fit() const;

  /// Rebuild from previously fitted parts (deserialization). Fit
  /// vectors must have 4*types + 5 coefficients each.
  [[nodiscard]] static HeteroModel from_parts(
      std::vector<std::string> types,
      std::array<LinearFit, kMetricCount> pm_fits, LinearFit dom0,
      LinearFit hyp);

 private:
  /// Feature vector: [M^t1(4), M^t2(4), ..., alpha, alpha*sum(4)].
  [[nodiscard]] std::vector<double> features(
      const std::map<std::string, TypeObservation>& types) const;
  [[nodiscard]] static std::vector<double> features_for(
      const std::vector<std::string>& type_order,
      const std::map<std::string, TypeObservation>& types);

  std::vector<std::string> types_;
  std::array<LinearFit, kMetricCount> pm_fits_;
  LinearFit dom0_fit_;
  LinearFit hyp_fit_;
  bool trained_ = false;
};

}  // namespace voprof::model
