#pragma once
/// \file baselines.hpp
/// Baseline estimators from the related work the paper positions
/// against (Sec. II), so the comparison is runnable instead of
/// rhetorical:
///
///  - NaiveSumModel — the assumption of the placement works [5]-[8]
///    the introduction quotes: "the utilization of a particular
///    resource in a PM equals the sum of the utilizations of this
///    resource of its hosted VMs". No training, no overhead.
///
///  - Dom0IoModel — Cherkasova & Gardner [14]: Dom0 CPU regressed on
///    the guests' I/O+network activity only; Dom0 CPU *is* the
///    virtualization overhead. The paper's critique: it "neglected the
///    CPU overhead in Xen hypervisor" and ignores CPU-intensive
///    guests' control-plane load. PM CPU = sum VM CPU + Dom0_hat.
///
/// Both expose the same predict-PM-CPU interface as MultiVmModel so
/// benches can compare them head-to-head.

#include <cstdint>

#include "voprof/core/overhead_model.hpp"

namespace voprof::model {

/// PM usage = sum of VM usages. What VOU believes.
class NaiveSumModel {
 public:
  [[nodiscard]] UtilVec predict(const UtilVec& vm_sum, int n_vms) const;
  [[nodiscard]] double predict_pm_cpu(const UtilVec& vm_sum,
                                      int n_vms) const {
    return predict(vm_sum, n_vms).cpu;
  }
};

/// Cherkasova-Gardner-style Dom0 model: Dom0 CPU = c0 + c_i * Mi +
/// c_n * Mn (I/O and network activity only; no guest-CPU term, no
/// hypervisor model). Fitted on the same training data as the paper's
/// model, restricted to the features [14] uses.
class Dom0IoModel {
 public:
  Dom0IoModel() = default;

  [[nodiscard]] static Dom0IoModel fit(const TrainingSet& data,
                                       RegressionMethod method,
                                       std::uint64_t seed = 1234);

  /// Predicted Dom0 CPU from guest I/O + network activity.
  [[nodiscard]] double predict_dom0_cpu(const UtilVec& vm_sum) const;
  /// PM CPU = measured guest CPU + predicted Dom0 CPU (no hypervisor
  /// term — the omission the paper calls out).
  [[nodiscard]] double predict_pm_cpu(const UtilVec& vm_sum, int n_vms) const;

  [[nodiscard]] const LinearFit& dom0_fit() const;
  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  LinearFit dom0_fit_;  ///< coef = [c0, c_i, c_n]
  bool trained_ = false;
};

}  // namespace voprof::model
