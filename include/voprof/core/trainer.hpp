#pragma once
/// \file trainer.hpp
/// Model-fitting pipeline: runs the paper's micro-benchmark suite
/// (Table II x {1,2,4} co-located VMs, 2 minutes of 1 s samples each,
/// Secs. III-IV) on fresh simulated testbeds, gathers per-sample
/// (VM-utilization, PM-utilization) observations and fits the Sec. V
/// models — the exact procedure of Sec. VI-A ("we first derived this
/// model from the trace of resource utilizations in our micro
/// benchmark study").

#include <cstdint>
#include <vector>

#include "voprof/core/overhead_model.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cost_model.hpp"
#include "voprof/xensim/spec.hpp"

namespace voprof::model {

/// Everything the training sweep needs to know.
struct TrainerConfig {
  /// Co-location scenarios (paper: one, two and four VMs, Sec. IV).
  std::vector<int> vm_counts = {1, 2, 4};
  /// Benchmark families to sweep (all four Table II rows by default).
  std::vector<wl::WorkloadKind> kinds = {
      wl::WorkloadKind::kCpu, wl::WorkloadKind::kMem, wl::WorkloadKind::kIo,
      wl::WorkloadKind::kBw};
  /// Measurement duration per cell (paper: 2 minutes).
  util::SimMicros duration = util::seconds(120.0);
  std::uint64_t seed = 42;
  /// Worker threads for collect(): 1 = serial (historical path), 0 =
  /// all hardware threads. Cells are independent simulations with
  /// coordinate-derived seeds, so the collected set — and therefore
  /// the fitted models — are identical for every jobs value.
  int jobs = 1;
  sim::MachineSpec machine;
  sim::VmSpec vm;
  sim::CostModel costs;
};

/// Fitted models plus the data that produced them.
struct TrainedModels {
  SingleVmModel single;
  MultiVmModel multi;
  TrainingSet data;
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig config);

  /// Run one cell of the sweep: `n_vms` co-located VMs each running
  /// workload (kind, level); returns one observation per 1 s sample.
  [[nodiscard]] TrainingSet collect_run(wl::WorkloadKind kind,
                                        std::size_t level, int n_vms) const;

  /// Run the full sweep (kinds x 5 levels x vm_counts).
  [[nodiscard]] TrainingSet collect() const;

  /// collect() + fit both models.
  [[nodiscard]] TrainedModels train(
      RegressionMethod method = RegressionMethod::kOls) const;

  /// Fit both models from an existing data set (e.g. reloaded traces).
  [[nodiscard]] static TrainedModels fit_models(TrainingSet data,
                                                RegressionMethod method,
                                                std::uint64_t seed = 1234);

  [[nodiscard]] const TrainerConfig& config() const noexcept {
    return config_;
  }

 private:
  TrainerConfig config_;
};

}  // namespace voprof::model
