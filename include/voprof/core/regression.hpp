#pragma once
/// \file regression.hpp
/// Linear regression back-ends for the overhead models of Sec. V:
/// ordinary least squares (Householder QR) and Least Median of Squares
/// (Rousseeuw 1984 — the estimator the paper cites as [24]), which is
/// robust to the "irregularities in the data used as input to the
/// model" the paper mentions in Sec. VI-A.

#include <span>
#include <vector>

#include "voprof/util/matrix.hpp"
#include "voprof/util/rng.hpp"

namespace voprof::model {

/// Which estimator to use when fitting models.
enum class RegressionMethod {
  kOls,  ///< ordinary least squares
  kLms,  ///< least median of squares (robust), with OLS refinement
};

/// A fitted linear map y ~= coef[0] + sum_j coef[j+1] * x[j].
struct LinearFit {
  /// Intercept followed by one slope per predictor.
  std::vector<double> coef;
  /// Root-mean-square residual over the fitting data.
  double residual_rms = 0.0;
  /// Coefficient of determination over the fitting data.
  double r_squared = 0.0;

  /// Evaluate on a predictor vector (without the leading 1).
  [[nodiscard]] double predict(std::span<const double> x) const;
};

/// Fit by OLS. `x` holds one row per observation (predictors only, no
/// intercept column — it is added internally); y is the response.
/// Requires x.rows() == y.size() and enough rows for the columns.
[[nodiscard]] LinearFit fit_ols(const util::Matrix& x,
                                std::span<const double> y);

/// Weighted OLS with per-row weights (used by the LMS refinement and
/// the multi-VM model's alpha(N)-scaled design). Weight w multiplies
/// both the row and the response by sqrt(w).
[[nodiscard]] LinearFit fit_wls(const util::Matrix& x,
                                std::span<const double> y,
                                std::span<const double> w);

/// Configuration for the LMS/LQS search.
struct LmsConfig {
  /// Number of random elemental subsets to try. Enough that the
  /// estimate is stable run-to-run on the ~10^4-row training sets the
  /// Trainer produces (LMS is a randomized search; too few subsets
  /// makes the fitted coefficients seed-dependent).
  int subsets = 1000;
  /// Robust-sigma multiplier selecting inliers for the OLS refinement
  /// (2.5 is Rousseeuw's recommendation).
  double inlier_sigma = 2.5;
  /// Which squared-residual quantile the subset search minimizes.
  /// 0.5 is classic Least MEDIAN of Squares; Rousseeuw's Least
  /// Quantile of Squares generalization raises it. The trainer uses
  /// 0.85: the Table II sweep leaves only ~1/4 of the rows with
  /// non-trivial guest CPU, and a median fit would discard exactly the
  /// region enterprise workloads run in (see bench_ablation_model).
  double quantile = 0.5;
};

/// Fit by Least Median of Squares: draws random (p+1)-point elemental
/// subsets, solves each exactly, keeps the candidate minimizing the
/// median squared residual, then refines with OLS over the inliers
/// within inlier_sigma robust standard deviations. Deterministic given
/// the RNG state.
[[nodiscard]] LinearFit fit_lms(const util::Matrix& x,
                                std::span<const double> y, util::Rng& rng,
                                const LmsConfig& config = {});

/// Dispatch on method; LMS uses a generator seeded from `seed` and the
/// given search configuration.
[[nodiscard]] LinearFit fit(RegressionMethod method, const util::Matrix& x,
                            std::span<const double> y,
                            std::uint64_t seed = 1234,
                            const LmsConfig& lms = {});

/// LQS quantile the overhead models train with (see LmsConfig::quantile).
inline constexpr double kModelFitQuantile = 0.85;

/// The LmsConfig the overhead models use.
[[nodiscard]] inline LmsConfig model_fit_config() {
  LmsConfig cfg;
  cfg.quantile = kModelFitQuantile;
  return cfg;
}

/// Residuals y - X*coef (intercept-aware).
[[nodiscard]] std::vector<double> residuals(const LinearFit& fit,
                                            const util::Matrix& x,
                                            std::span<const double> y);

}  // namespace voprof::model
