#pragma once
/// \file serialize.hpp
/// Persistence for the measurement and modeling pipeline: training
/// sets round-trip through CSV (the natural shape of the paper's
/// per-second measurement logs), and fitted models through a small
/// versioned text format — so a model trained once on the simulated
/// testbed can be reused by tools without re-running the sweep, and
/// real traces can be imported for trace-driven fitting.

#include <iosfwd>
#include <string>

#include "voprof/core/hetero_model.hpp"
#include "voprof/core/overhead_model.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/result.hpp"

namespace voprof::model {

/// TrainingSet -> CSV (columns: n_vms, vm_{cpu,mem,io,bw},
/// pm_{cpu,mem,io,bw}, dom0_cpu, hyp_cpu).
[[nodiscard]] util::CsvDocument training_set_to_csv(const TrainingSet& data);

/// CSV -> TrainingSet. Throws on missing columns.
[[nodiscard]] TrainingSet training_set_from_csv(const util::CsvDocument& csv);

/// Serialize fitted models (coefficients + fit quality). Format:
/// versioned line-oriented text, stable across toolchains.
void save_models(const TrainedModels& models, std::ostream& os);
[[nodiscard]] std::string models_to_string(const TrainedModels& models);

/// Primary, non-throwing deserialization. Errors carry Errc::kParse
/// (malformed records), Errc::kUnsupported (unknown format version) or
/// Errc::kIo (unreadable file). The TrainingSet inside the returned
/// TrainedModels is empty (only coefficients are persisted).
[[nodiscard]] util::Result<TrainedModels> load_models_result(
    std::istream& is);
[[nodiscard]] util::Result<TrainedModels> models_from_string_result(
    const std::string& text);
[[nodiscard]] util::Result<TrainedModels> load_models_file_result(
    const std::string& path);

/// Throwing shims over the *_result API (throw ContractViolation).
[[nodiscard]] TrainedModels load_models(std::istream& is);
[[nodiscard]] TrainedModels models_from_string(const std::string& text);

/// File-path conveniences.
void save_models_file(const TrainedModels& models, const std::string& path);
[[nodiscard]] TrainedModels load_models_file(const std::string& path);

// --- Heterogeneous (typed) model -------------------------------------
void save_hetero_model(const HeteroModel& model, std::ostream& os);
[[nodiscard]] std::string hetero_model_to_string(const HeteroModel& model);
[[nodiscard]] HeteroModel load_hetero_model(std::istream& is);
[[nodiscard]] HeteroModel hetero_model_from_string(const std::string& text);

}  // namespace voprof::model
