#pragma once
/// \file diagnostics.hpp
/// Model diagnostics: printable coefficient summaries and bootstrap
/// confidence intervals for the Sec. V fits. The paper reports point
/// estimates only; an operator adopting the model needs to know how
/// tight the coefficients are before trusting a placement decision to
/// them (e.g. the Dom0-per-Kbps slope drives the VOA admission test).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "voprof/core/overhead_model.hpp"

namespace voprof::model {

/// Percentile bootstrap interval for one coefficient.
struct CoefInterval {
  double estimate = 0.0;
  double lo = 0.0;   ///< 2.5th percentile across resamples
  double hi = 0.0;   ///< 97.5th percentile
  double stddev = 0.0;

  [[nodiscard]] double width() const noexcept { return hi - lo; }
  /// Whether the interval excludes zero (coefficient is "significant").
  [[nodiscard]] bool excludes_zero() const noexcept {
    return lo > 0.0 || hi < 0.0;
  }
};

/// Bootstrap result for one regression target (intercept + 4 slopes).
struct FitDiagnostics {
  std::string target;  ///< e.g. "PM CPU", "Dom0 CPU"
  std::array<CoefInterval, kMetricCount + 1> coef;
  double r_squared = 0.0;
  double residual_rms = 0.0;
};

struct BootstrapConfig {
  int resamples = 200;
  RegressionMethod method = RegressionMethod::kOls;
  std::uint64_t seed = 515;
};

/// Bootstrap the single-VM model's fits over resampled rows of `data`
/// (which must be the single-VM subset or a superset thereof; only
/// n_vms == 1 rows are used). Returns one FitDiagnostics per PM metric
/// plus Dom0 and hypervisor CPU.
[[nodiscard]] std::vector<FitDiagnostics> bootstrap_single_vm(
    const TrainingSet& data, const BootstrapConfig& config = {});

/// Render a human-readable coefficient table:
///   target | a_o [lo,hi] | a_c [lo,hi] | ... | R^2
[[nodiscard]] std::string diagnostics_table(
    const std::vector<FitDiagnostics>& diags);

}  // namespace voprof::model
