#pragma once
/// \file levels.hpp
/// Table II of the paper: the five intensity levels of each generated
/// benchmark, plus a factory that builds the matching hog.
///
///   Workload             level 1   2     3     4     5
///   CPU-intensive (%)    1         30    60    90    99
///   MEM-intensive (Mb)   0.03      5     10    20    50
///   I/O-intensive (bl/s) 15        19    27    46    72
///   BW-intensive (Mb/s)  0.001     0.16  0.32  0.64  1.28

#include <array>
#include <memory>
#include <string>

#include "voprof/workloads/hogs.hpp"

namespace voprof::wl {

/// The four benchmark families of Table II.
enum class WorkloadKind { kCpu, kMem, kIo, kBw };

inline constexpr std::size_t kLevelCount = 5;

/// Table II values, in the module's canonical units (CPU %, MiB,
/// blocks/s, Kb/s — the BW row is converted from the paper's Mb/s).
inline constexpr std::array<double, kLevelCount> kCpuLevelsPct = {1, 30, 60,
                                                                  90, 99};
inline constexpr std::array<double, kLevelCount> kMemLevelsMib = {0.03, 5, 10,
                                                                  20, 50};
inline constexpr std::array<double, kLevelCount> kIoLevelsBlocks = {15, 19, 27,
                                                                    46, 72};
inline constexpr std::array<double, kLevelCount> kBwLevelsKbps = {
    0.001 * 1000, 0.16 * 1000, 0.32 * 1000, 0.64 * 1000, 1.28 * 1000};

/// Intensity value of `kind` at `level` (0-based). Throws on bad level.
[[nodiscard]] double level_value(WorkloadKind kind, std::size_t level);

/// Printable name ("CPU-intensive", ...).
[[nodiscard]] std::string kind_name(WorkloadKind kind);

/// Unit suffix for tables ("%", "Mb", "blocks/s", "Kb/s").
[[nodiscard]] std::string kind_unit(WorkloadKind kind);

/// Build the hog for a (kind, level) cell of Table II. BW workloads
/// need a destination; pass sim::NetTarget{} for an external host.
[[nodiscard]] std::unique_ptr<sim::GuestProcess> make_workload(
    WorkloadKind kind, std::size_t level, sim::NetTarget bw_target = {},
    std::uint64_t seed = 7);

/// Build a hog with an explicit intensity instead of a Table II level.
[[nodiscard]] std::unique_ptr<sim::GuestProcess> make_workload_value(
    WorkloadKind kind, double value, sim::NetTarget bw_target = {},
    std::uint64_t seed = 7);

}  // namespace voprof::wl
