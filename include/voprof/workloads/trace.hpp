#pragma once
/// \file trace.hpp
/// Trace-driven workload replay: feed a recorded per-interval
/// utilization trace (e.g. a CSV logged by the monitoring script, or a
/// production trace) back into a simulated VM. This is the
/// "trace-driven" half of the paper's evaluation methodology — models
/// fitted on micro-benchmarks are validated against traces of real
/// applications.

#include <string>
#include <vector>

#include "voprof/util/csv.hpp"
#include "voprof/xensim/process.hpp"

namespace voprof::wl {

/// One interval of a recorded workload.
struct TracePoint {
  double duration_s = 1.0;  ///< how long this level holds
  double cpu_pct = 0.0;
  double mem_mib = 0.0;
  double io_blocks_per_s = 0.0;
  double bw_kbps = 0.0;
};

/// Replays a trace inside a VM, holding each point for its duration.
class TraceWorkload final : public sim::GuestProcess {
 public:
  /// \param loop  wrap around at the end (otherwise holds the last
  ///        point forever)
  TraceWorkload(std::vector<TracePoint> trace, sim::NetTarget bw_target,
                bool loop = true);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  [[nodiscard]] std::string label() const override;

  [[nodiscard]] std::size_t size() const noexcept { return trace_.size(); }
  [[nodiscard]] bool looping() const noexcept { return loop_; }
  /// Index of the point active at sim time `now` (for tests).
  [[nodiscard]] std::size_t index_at(util::SimMicros now) const;

 private:
  std::vector<TracePoint> trace_;
  std::vector<double> cumulative_s_;  ///< end time of each point
  double total_s_ = 0.0;
  sim::NetTarget bw_target_;
  bool loop_;
};

/// Build a trace from a CSV with columns cpu/mem/io/bw (names
/// configurable via `prefix`, e.g. "vm_" matches the monitor_demo
/// dump). Every row becomes one point of `interval_s` seconds.
[[nodiscard]] std::vector<TracePoint> trace_from_csv(
    const util::CsvDocument& csv, const std::string& prefix = "vm_",
    double interval_s = 1.0);

/// Synthesize a diurnal (daily-pattern) trace: CPU and bandwidth swing
/// sinusoidally between a trough and a peak over `period_s`, with
/// seeded per-point noise — the load shape capacity planners and
/// hotspot controllers face in production. `points` spans one period.
struct DiurnalSpec {
  double cpu_trough_pct = 10.0;
  double cpu_peak_pct = 80.0;
  double bw_trough_kbps = 100.0;
  double bw_peak_kbps = 1500.0;
  double io_trough_blocks = 2.0;
  double io_peak_blocks = 40.0;
  double mem_mib = 60.0;
  double period_s = 300.0;  ///< compressed "day" for simulation
  std::size_t points = 100;
  double noise_rel = 0.05;
};

[[nodiscard]] std::vector<TracePoint> make_diurnal_trace(
    const DiurnalSpec& spec, std::uint64_t seed = 9);

}  // namespace voprof::wl
