#pragma once
/// \file hogs.hpp
/// Single-resource-intensive workload generators, the analog of the
/// paper's lookbusy-based CPU-/MEM-/I/O-intensive benchmarks and the
/// ping-based BW-intensive benchmark (Sec. III-B). Each hog stresses
/// exactly one resource and declares only the minimal side-costs the
/// paper observed (e.g. the I/O generator's own ~0.84 % CPU,
/// Fig. 2(c); the ping generator's 0.5-3 % CPU, Fig. 2(e)).

#include <string>

#include "voprof/util/rng.hpp"
#include "voprof/xensim/process.hpp"

namespace voprof::wl {

/// CPU-intensive workload: spins at a target utilization (lookbusy -c).
class CpuHog final : public sim::GuestProcess {
 public:
  /// \param target_pct  CPU utilization to hold, percent of one VCPU
  /// \param seed        jitter stream for the +-0.5 % duty-cycle noise
  CpuHog(double target_pct, std::uint64_t seed = 1);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] double target_pct() const noexcept { return target_pct_; }
  void set_target_pct(double pct);

 private:
  double target_pct_;
  util::Rng rng_;
};

/// Memory-intensive workload: holds a resident allocation and touches
/// it (lookbusy -m). CPU cost of the touch loop is negligible at the
/// paper's sizes (0.03-50 MB, Table II).
class MemHog final : public sim::GuestProcess {
 public:
  explicit MemHog(double mem_mib, std::uint64_t seed = 2);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] double mem_mib() const noexcept { return mem_mib_; }

 private:
  double mem_mib_;
  util::Rng rng_;
};

/// I/O-intensive workload: submits disk blocks at a target rate
/// (lookbusy -d). Charges its own pump-loop CPU:
/// base + per_block * rate, calibrated to the flat ~0.84 % VM CPU of
/// Figs. 2(c)/3(c)/4(c).
class IoHog final : public sim::GuestProcess {
 public:
  explicit IoHog(double blocks_per_s, std::uint64_t seed = 3);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] double blocks_per_s() const noexcept { return blocks_per_s_; }

  /// Pump-loop CPU model (exposed for calibration tests).
  [[nodiscard]] static double pump_cpu_pct(double blocks_per_s) noexcept;

 private:
  double blocks_per_s_;
  util::Rng rng_;
};

/// Bandwidth-intensive workload: streams packets at a target rate to a
/// fixed destination (the paper uses `ping` with large packets;
/// Sec. IV-B pings 64 Kb packets between co-located VMs). Charges the
/// packet-generation CPU of Fig. 2(e) (0.5 -> 3 % across the sweep).
class NetPing final : public sim::GuestProcess {
 public:
  /// \param rate_kbps  transmit rate in Kb/s
  /// \param target     destination (external, remote PM VM, or
  ///                   co-located VM for the Fig. 5 experiment)
  NetPing(double rate_kbps, sim::NetTarget target, std::uint64_t seed = 4);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] double rate_kbps() const noexcept { return rate_kbps_; }
  [[nodiscard]] const sim::NetTarget& target() const noexcept {
    return target_;
  }

  /// Packet-generation CPU model (exposed for calibration tests).
  [[nodiscard]] static double pump_cpu_pct(double rate_kbps) noexcept;

 private:
  double rate_kbps_;
  sim::NetTarget target_;
  util::Rng rng_;
};

/// Multi-resource workload: one process exercising all four resources
/// at once (what real applications do, unlike the single-resource
/// hogs the paper constructs for isolation). Used to validate that
/// the models, trained on single-resource sweeps, generalize to
/// composite behaviour.
class MixedWorkload final : public sim::GuestProcess {
 public:
  struct Levels {
    double cpu_pct = 0.0;
    double mem_mib = 0.0;
    double io_blocks_per_s = 0.0;
    double bw_kbps = 0.0;
  };

  MixedWorkload(Levels levels, sim::NetTarget bw_target,
                std::uint64_t seed = 6);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] const Levels& levels() const noexcept { return levels_; }

 private:
  Levels levels_;
  sim::NetTarget target_;
  util::Rng rng_;
};

}  // namespace voprof::wl
