#pragma once
/// \file evaluation.hpp
/// The Fig. 10 experiment: 5 identical VMs (RUBiS web + RUBiS db +
/// three filler VMs), scenarios 0-3 where 0..3 of the fillers run
/// lookbusy at 50 % CPU, placed by CloudScale-with-VOA vs
/// CloudScale-with-VOU onto two host PMs, 10 repetitions with random
/// placement order; reports RUBiS throughput (req/s) and the total
/// time to process the request volume.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "voprof/core/overhead_model.hpp"
#include "voprof/core/utilvec.hpp"
#include "voprof/placement/demand_predictor.hpp"
#include "voprof/placement/placer.hpp"
#include "voprof/rubis/app.hpp"
#include "voprof/xensim/cost_model.hpp"
#include "voprof/xensim/spec.hpp"

namespace voprof::place {

/// Roles of the five VMs in the Sec. VI-B scenario.
enum class VmRole { kRubisWeb, kRubisDb, kBusy, kIdle };

[[nodiscard]] std::string role_name(VmRole role);

struct EvalConfig {
  int repetitions = 10;            ///< paper: 10 placement repetitions
  int clients = 500;               ///< paper: 500 simultaneous clients
  double busy_cpu_pct = 50.0;      ///< paper: lookbusy at 50 %
  util::SimMicros warmup = util::seconds(10.0);
  util::SimMicros run_duration = util::seconds(60.0);
  /// Request volume for the total-time metric (Fig. 10(b)).
  double total_requests = 30000.0;
  std::uint64_t seed = 99;
  sim::MachineSpec machine;
  sim::VmSpec vm;  ///< 1 VCPU / 256 MiB, the paper's identical VMs
  sim::CostModel costs;
  rubis::RubisCosts rubis_costs;
  PlacerConfig voa;  ///< overhead_aware forced true
  PlacerConfig vou;  ///< overhead_aware forced false
  DemandPredictorConfig predictor;
};

/// Result of one placement + run.
struct RunResult {
  double throughput_req_s = 0.0;
  double total_time_s = 0.0;
  /// Little's-law estimate of the mean request response time at the
  /// end of the run: requests in flight / throughput.
  double mean_latency_s = 0.0;
  /// How many of the 5 VMs landed on each host PM.
  std::array<int, 2> vms_per_pm{0, 0};
  bool forced_placement = false;  ///< some VM fit nowhere (fallback used)
};

/// Aggregates over the repetitions of one (scenario, algorithm) cell.
struct CellStats {
  double mean_throughput = 0.0;
  double p10_throughput = 0.0;
  double p90_throughput = 0.0;
  double mean_total_time = 0.0;
  double mean_latency_s = 0.0;
  std::vector<RunResult> runs;
};

class PlacementEvaluation {
 public:
  /// `overhead_model` must outlive the evaluation (used by VOA).
  PlacementEvaluation(EvalConfig config,
                      const model::MultiVmModel* overhead_model);

  /// Profile the per-role demand vectors by running each role on an
  /// otherwise-idle testbed and feeding the measured series through
  /// the CloudScale predictor (done lazily once, cached).
  [[nodiscard]] const std::map<VmRole, model::UtilVec>& role_demands() const;

  /// One placement + RUBiS run.
  [[nodiscard]] RunResult run_once(int scenario, bool overhead_aware,
                                   std::uint64_t rep_seed) const;

  /// All repetitions of one (scenario, algorithm) cell.
  [[nodiscard]] CellStats run_cell(int scenario, bool overhead_aware) const;

  [[nodiscard]] const EvalConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::map<VmRole, model::UtilVec> profile_roles() const;

  EvalConfig config_;
  const model::MultiVmModel* model_;
  mutable std::map<VmRole, model::UtilVec> role_demands_;
  mutable bool profiled_ = false;
};

}  // namespace voprof::place
