#pragma once
/// \file demand_predictor.hpp
/// CloudScale-style online resource-demand prediction (the system the
/// paper builds on in Sec. VI-B, [8]): predict a VM's near-future
/// demand from a sliding window of recent utilization samples, with
/// burst padding so under-prediction is rare. CloudScale's FFT
/// signature + Markov correction is summarized here by its effective
/// behaviour at placement time: a windowed peak estimate plus a
/// configurable padding fraction.

#include <vector>

#include "voprof/core/utilvec.hpp"
#include "voprof/monitor/script.hpp"

namespace voprof::place {

struct DemandPredictorConfig {
  /// Number of most-recent samples considered.
  std::size_t window = 60;
  /// Burst padding added on top of the windowed peak (CloudScale adds
  /// padding proportional to recent prediction errors; 5 % default).
  double padding = 0.05;
  /// Percentile within the window used as the base estimate (100 =
  /// strict peak; slightly lower is robust to one-off spikes).
  double base_percentile = 95.0;
};

class DemandPredictor {
 public:
  explicit DemandPredictor(DemandPredictorConfig config = {});

  /// Predict demand from a trace of per-interval utilization vectors
  /// (only the trailing `window` samples are used). Requires a
  /// non-empty trace.
  [[nodiscard]] model::UtilVec predict(
      const std::vector<model::UtilVec>& trace) const;

  /// Convenience: predict from a monitored entity's series.
  [[nodiscard]] model::UtilVec predict_series(const mon::SeriesSet& s) const;

  [[nodiscard]] const DemandPredictorConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] double predict_metric(std::vector<double> window_values) const;

  DemandPredictorConfig config_;
};

}  // namespace voprof::place
