#pragma once
/// \file hotspot.hpp
/// Overhead-aware hotspot mitigation — the management loop the paper's
/// introduction motivates ("migrate VMs out of a PM to release load",
/// in the style of Sandpiper [5]) built on top of the Sec. V model:
/// periodically estimate every host PM's *true* utilization (guests +
/// Dom0 + hypervisor, via MultiVmModel) and live-migrate the heaviest
/// VM away from any PM whose predicted CPU exceeds the threshold.
///
/// An overhead-unaware variant (sum-of-VMs trigger) exists for
/// comparison; it systematically detects hotspots late because it
/// cannot see the Dom0/hypervisor share.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "voprof/core/overhead_model.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/migration.hpp"

namespace voprof::place {

struct HotspotConfig {
  /// Hotspot trigger: predicted PM CPU (incl. Dom0 + hypervisor for
  /// the aware variant) above this percentage of a core. Note the
  /// controller works from *measured* utilization, which the guest
  /// pool caps under saturation (2 cores -> sums plateau near 190 %,
  /// predictions near 228 %), so the threshold must sit below that
  /// ceiling to ever fire.
  double cpu_threshold_pct = 215.0;
  /// Overhead-aware (model-based) or naive sum-of-VM trigger.
  bool overhead_aware = true;
  /// How often to check.
  util::SimMicros check_interval = util::seconds(5.0);
  /// Do not re-migrate a VM within this cooldown.
  util::SimMicros cooldown = util::seconds(20.0);
  sim::MigrationConfig migration;

  /// Consolidation (the night-time counterpart of hotspot
  /// mitigation): when enabled and every managed PM's predicted CPU
  /// sits below `consolidate_below_pct`, the controller drains the
  /// least-loaded PM one VM per check — provided the receiving PM
  /// stays under the hotspot threshold — so idle hosts can be powered
  /// down. Off by default.
  bool consolidate = false;
  double consolidate_below_pct = 90.0;
};

/// One triggered action, for inspection.
struct HotspotAction {
  enum class Kind { kMitigation, kConsolidation };
  util::SimMicros time = 0;
  Kind kind = Kind::kMitigation;
  std::string vm_name;
  int from_pm = -1;
  int to_pm = -1;
  double predicted_cpu = 0.0;  ///< source-PM estimate that tripped
};

class HotspotController {
 public:
  /// \param host_pm_ids  the PMs under management (e.g. exclude the
  ///        client machine of a RUBiS deployment)
  HotspotController(sim::Cluster& cluster,
                    const model::MultiVmModel* overhead_model,
                    std::vector<int> host_pm_ids, HotspotConfig config = {});
  ~HotspotController();

  HotspotController(const HotspotController&) = delete;
  HotspotController& operator=(const HotspotController&) = delete;

  /// Begin periodic checks (first check one interval from now).
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] const std::vector<HotspotAction>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] std::size_t migrations_triggered() const noexcept {
    return actions_.size();
  }

  /// Predicted CPU for one managed PM from the latest check window
  /// (NaN-free: returns 0 before the first check).
  [[nodiscard]] double last_predicted_cpu(int pm_id) const;

  /// Run one check immediately (also used by the periodic timer).
  void check_now();

 private:
  struct PmWindow {
    sim::MachineSnapshot prev;
    bool primed = false;
    double last_predicted_cpu = 0.0;
  };

  /// One managed PM's view at a check.
  struct PmView {
    int id = -1;
    std::vector<std::pair<std::string, model::UtilVec>> vms;
    double predicted_cpu = 0.0;
  };

  /// Drain the least-loaded PM one VM per check when the whole fleet
  /// is quiet (views sorted hottest-first).
  void try_consolidate(const std::vector<PmView>& views);

  /// Estimate per-VM utilization on a PM since the previous check.
  [[nodiscard]] std::vector<std::pair<std::string, model::UtilVec>>
  vm_utils_since_last(sim::PhysicalMachine& pm, PmWindow& window) const;

  void schedule_next();

  sim::Cluster& cluster_;
  const model::MultiVmModel* model_;
  std::vector<int> host_pm_ids_;
  HotspotConfig config_;
  std::map<int, PmWindow> windows_;
  std::map<std::string, util::SimMicros> last_moved_;
  std::vector<HotspotAction> actions_;
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace voprof::place
