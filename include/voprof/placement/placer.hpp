#pragma once
/// \file placer.hpp
/// VM placement with and without virtualization-overhead awareness
/// (Sec. VI-B):
///
///  - VOU (overhead-unaware) admits a VM if the *sum of VM demands*
///    fits the PM's raw capacity — the assumption the paper's intro
///    calls out as "not always true".
///  - VOA (overhead-aware) admits a VM only if the *model-predicted PM
///    utilization* (Eq. 3: VM demands + Dom0 + hypervisor overhead)
///    fits.
///
/// Both use the same measured-memory feasibility check (Dom0 resident
/// memory counts, which is what made the paper's VOU spill the fifth
/// VM to another PM).

#include <optional>
#include <string>
#include <vector>

#include "voprof/core/overhead_model.hpp"
#include "voprof/xensim/spec.hpp"

namespace voprof::place {

/// Bookkeeping for one candidate PM during placement.
struct PmState {
  sim::MachineSpec spec;
  /// Predicted demands of the VMs already placed here.
  std::vector<model::UtilVec> vm_demands;
  /// Configured memory of the VMs already placed here (MiB).
  std::vector<double> vm_mem_mib;

  [[nodiscard]] int vm_count() const noexcept {
    return static_cast<int>(vm_demands.size());
  }
  [[nodiscard]] model::UtilVec demand_sum() const noexcept;
  [[nodiscard]] double mem_reserved_mib() const noexcept;
};

struct PlacerConfig {
  /// true = VOA, false = VOU.
  bool overhead_aware = true;
  /// VOA: ceiling for the model-predicted PM CPU (guest pool + Dom0 +
  /// hypervisor headroom on the reference 4-core host).
  double voa_cpu_capacity_pct = 240.0;
  /// VOU: believes every core is available to guests.
  double vou_cpu_capacity_pct = 400.0;
  /// VOA: ceiling for model-predicted PM bandwidth as a fraction of
  /// the NIC line rate.
  double bw_capacity_frac = 0.8;
};

class Placer {
 public:
  /// `overhead_model` is required (and used) only in VOA mode; VOU
  /// passes nullptr.
  Placer(PlacerConfig config, const model::MultiVmModel* overhead_model);

  /// Whether `pm` can admit a VM with the given predicted demand and
  /// configured memory.
  [[nodiscard]] bool fits(const PmState& pm, const model::UtilVec& demand,
                          double vm_mem_mib) const;

  /// First-fit: index of the first PM that can admit the VM, or
  /// nullopt if none can.
  [[nodiscard]] std::optional<std::size_t> choose(
      const std::vector<PmState>& pms, const model::UtilVec& demand,
      double vm_mem_mib) const;

  /// choose() and record the VM in the winning PmState; falls back to
  /// the PM with the lowest summed CPU demand when nothing fits
  /// (returns the index either way; `forced` reports the fallback).
  std::size_t place(std::vector<PmState>& pms, const model::UtilVec& demand,
                    double vm_mem_mib, bool* forced = nullptr) const;

  [[nodiscard]] const PlacerConfig& config() const noexcept { return config_; }

 private:
  PlacerConfig config_;
  const model::MultiVmModel* model_;
};

}  // namespace voprof::place
