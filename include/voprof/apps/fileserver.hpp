#pragma once
/// \file fileserver.hpp
/// A second enterprise application model: an NFS/Samba-style file
/// server. Where RUBiS stresses CPU+bandwidth (Sec. VI), a file server
/// stresses the disk path — guest reads fan out through blkback into
/// the striped virtual disk, the dimension of the overhead model RUBiS
/// barely exercises. Used to validate the Eq. (1)-(3) I/O predictions
/// on application-shaped load.
///
/// Closed loop: clients request files, the server spends CPU + disk
/// blocks per request and streams the file back; think time paces the
/// loop.

#include <cstdint>
#include <string>

#include "voprof/util/rng.hpp"
#include "voprof/xensim/process.hpp"

namespace voprof::apps {

enum FileFlowTag : int {
  kTagFileRequest = 201,  ///< client -> server
  kTagFileData = 202,     ///< server -> client
};

struct FileServerCosts {
  double think_time_s = 4.0;
  double request_kbits = 1.0;
  /// Mean file size in 512-byte blocks (64 KiB).
  double file_blocks = 128.0;
  /// Fraction of requests missing the page cache (hitting the disk).
  double cache_miss_rate = 0.35;
  /// Server CPU per request, ms.
  double server_cpu_ms_per_req = 2.0;
  /// Data streamed back per request, Kb (file content).
  double response_kbits = 64.0 * 8.0;  // 64 KiB
};

/// The server tier (GuestProcess in the server VM).
class FileServerTier final : public sim::GuestProcess {
 public:
  FileServerTier(FileServerCosts costs, sim::NetTarget client,
                 std::uint64_t seed = 41);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  void granted(double cpu_frac, util::SimMicros now, double dt) override;
  void on_receive(double kbits, int tag, util::SimMicros now) override;
  [[nodiscard]] std::string label() const override { return "file-server"; }

  [[nodiscard]] double queue_length() const noexcept { return queue_; }
  [[nodiscard]] double total_served() const noexcept { return served_; }

 private:
  FileServerCosts costs_;
  sim::NetTarget client_;
  util::Rng rng_;
  double queue_ = 0.0;
  double wanted_rate_ = 0.0;
  double served_ = 0.0;
};

/// Closed-loop client population (GuestProcess in a client VM).
class FileClient final : public sim::GuestProcess {
 public:
  FileClient(FileServerCosts costs, sim::NetTarget server, int clients,
             std::uint64_t seed = 43);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  void granted(double cpu_frac, util::SimMicros now, double dt) override;
  void on_receive(double kbits, int tag, util::SimMicros now) override;
  [[nodiscard]] std::string label() const override { return "file-client"; }

  [[nodiscard]] int clients() const noexcept { return clients_; }
  [[nodiscard]] double completed() const noexcept { return completed_; }

 private:
  FileServerCosts costs_;
  sim::NetTarget server_;
  util::Rng rng_;
  int clients_;
  double thinking_;
  double send_rate_ = 0.0;
  double completed_ = 0.0;
};

}  // namespace voprof::apps
