#pragma once
/// \file network.hpp
/// Inter-PM network fabric: the gigabit top-of-rack switch connecting
/// the paper's 7 PMs. Flows submitted by the sender's NIC traverse the
/// fabric with a configurable latency and share its aggregate
/// capacity; excess traffic queues FIFO (no loss) and drains as
/// capacity frees up. At the paper's traffic levels (<= a few Mb/s)
/// the fabric is invisible — it exists so saturation experiments and
/// migration storms behave physically.

#include <deque>
#include <string>
#include <vector>

#include "voprof/util/units.hpp"
#include "voprof/xensim/machine.hpp"

namespace voprof::sim {

struct FabricSpec {
  /// Aggregate switching capacity, Kb/s (non-blocking gigabit fabric
  /// for 7 hosts).
  double capacity_kbps = 7.0e6;
  /// One-way latency applied to every flow.
  util::SimMicros latency = 200;  // 0.2 ms
};

/// A flow delivery the fabric has completed.
struct FabricDelivery {
  int to_pm = 0;
  std::string vm_name;
  double kbits = 0.0;
  int tag = 0;
};

class NetworkFabric {
 public:
  explicit NetworkFabric(FabricSpec spec = {});

  /// Enqueue a flow leaving `from_pm` at time `now`.
  void submit(const OutboundFlow& flow, int from_pm, util::SimMicros now);

  /// Advance to `now` with a tick of `dt` seconds of switching
  /// capacity; returns everything deliverable.
  [[nodiscard]] std::vector<FabricDelivery> advance(util::SimMicros now,
                                                    double dt);

  /// Kilobits queued in the fabric (capacity backlog).
  [[nodiscard]] double backlog_kbits() const noexcept;
  /// Total kilobits ever switched.
  [[nodiscard]] double switched_kbits() const noexcept {
    return switched_kbits_;
  }
  [[nodiscard]] const FabricSpec& spec() const noexcept { return spec_; }

 private:
  struct InFlight {
    util::SimMicros ready_at;  ///< earliest delivery (latency)
    int to_pm;
    std::string vm_name;
    double kbits;
    int tag;
  };

  FabricSpec spec_;
  std::deque<InFlight> queue_;
  double switched_kbits_ = 0.0;
};

}  // namespace voprof::sim
