#pragma once
/// \file engine.hpp
/// Simulation clock and event loop.
///
/// The engine advances time in fixed ticks (default 10 ms, the credit
/// scheduler's accounting period in Xen) and interleaves a deterministic
/// timer-event queue: events scheduled for time t fire before the tick
/// covering t executes. Tick listeners are the physical machines (via
/// Cluster); timer events drive workload phase changes and the
/// monitoring script's sampling.
///
/// The queue is a hand-rolled binary min-heap ordered by (time, seq)
/// with lazy deletion: cancel() only marks the timer dead, and the
/// heap entry is discarded when it surfaces. Periodic timers are
/// native heap entries — firing moves the callback out, runs it, and
/// re-arms the same entry with a fresh sequence number, so a periodic
/// chain never copies its std::function or allocates per period.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "voprof/util/units.hpp"

namespace voprof::sim {

/// Object notified on every simulation tick.
class TickListener {
 public:
  virtual ~TickListener() = default;
  /// Advance by dt seconds, ending at sim time `now`.
  virtual void tick(util::SimMicros now, double dt) = 0;
};

/// Handle for a scheduled timer; pass to Engine::cancel(). Never 0 for
/// a live timer.
using TimerId = std::uint64_t;

/// TimerId value that no schedule_* call ever returns.
inline constexpr TimerId kInvalidTimer = 0;

/// Deterministic discrete-time engine.
class Engine {
 public:
  explicit Engine(util::SimMicros tick_period = 10 * util::kMicrosPerMilli);

  [[nodiscard]] util::SimMicros now() const noexcept { return now_; }
  [[nodiscard]] util::SimMicros tick_period() const noexcept {
    return tick_period_;
  }

  /// Register a tick listener (not owned). Listeners tick in
  /// registration order.
  void add_listener(TickListener* listener);
  void remove_listener(TickListener* listener) noexcept;

  /// Schedule a one-shot callback at absolute sim time `at` (>= now).
  /// Events at equal times fire in scheduling order.
  TimerId schedule_at(util::SimMicros at, std::function<void()> fn);
  /// Schedule relative to the current time.
  TimerId schedule_after(util::SimMicros delay, std::function<void()> fn);
  /// Schedule a periodic callback, first firing one period from now;
  /// continues until cancelled or the engine stops.
  TimerId schedule_every(util::SimMicros period, std::function<void()> fn);

  /// Cancel a pending timer (one-shot not yet fired, or periodic).
  /// Returns false if the id is unknown, already fired, or already
  /// cancelled. Safe to call from inside the timer's own callback.
  bool cancel(TimerId id);

  /// Advance simulated time to `until`, firing events and ticks.
  void run_until(util::SimMicros until);
  /// Advance by a duration.
  void run_for(util::SimMicros duration);

  /// Live (non-cancelled) timers still pending.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return live_.size();
  }

 private:
  struct Event {
    util::SimMicros at = 0;
    std::uint64_t seq = 0;      // tiebreaker: FIFO among equal timestamps
    TimerId id = kInvalidTimer;  // stable across periodic re-arms
    util::SimMicros period = 0;  // 0 = one-shot
    std::function<void()> fn;
  };

  /// Heap order: earliest (at, seq) at index 0.
  [[nodiscard]] static bool before(const Event& a, const Event& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  TimerId push_event(util::SimMicros at, util::SimMicros period,
                     std::function<void()> fn);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Remove and return the earliest heap entry (moves, never copies).
  Event pop_min();
  void fire_due_events(util::SimMicros up_to_inclusive);

  util::SimMicros tick_period_;
  util::SimMicros now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::vector<Event> heap_;
  std::unordered_set<TimerId> live_;  // ids pending and not cancelled
  std::vector<TickListener*> listeners_;
};

}  // namespace voprof::sim
