#pragma once
/// \file engine.hpp
/// Simulation clock and event loop.
///
/// The engine advances time in fixed ticks (default 10 ms, the credit
/// scheduler's accounting period in Xen) and interleaves a deterministic
/// timer-event queue: events scheduled for time t fire before the tick
/// covering t executes. Tick listeners are the physical machines (via
/// Cluster); timer events drive workload phase changes and the
/// monitoring script's sampling.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "voprof/util/units.hpp"

namespace voprof::sim {

/// Object notified on every simulation tick.
class TickListener {
 public:
  virtual ~TickListener() = default;
  /// Advance by dt seconds, ending at sim time `now`.
  virtual void tick(util::SimMicros now, double dt) = 0;
};

/// Deterministic discrete-time engine.
class Engine {
 public:
  explicit Engine(util::SimMicros tick_period = 10 * util::kMicrosPerMilli);

  [[nodiscard]] util::SimMicros now() const noexcept { return now_; }
  [[nodiscard]] util::SimMicros tick_period() const noexcept {
    return tick_period_;
  }

  /// Register a tick listener (not owned). Listeners tick in
  /// registration order.
  void add_listener(TickListener* listener);
  void remove_listener(TickListener* listener) noexcept;

  /// Schedule a one-shot callback at absolute sim time `at` (>= now).
  /// Events at equal times fire in scheduling order.
  void schedule_at(util::SimMicros at, std::function<void()> fn);
  /// Schedule relative to the current time.
  void schedule_after(util::SimMicros delay, std::function<void()> fn);
  /// Schedule a periodic callback; continues until the engine stops.
  void schedule_every(util::SimMicros period, std::function<void()> fn);

  /// Advance simulated time to `until`, firing events and ticks.
  void run_until(util::SimMicros until);
  /// Advance by a duration.
  void run_for(util::SimMicros duration);

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

 private:
  struct Event {
    util::SimMicros at = 0;
    std::uint64_t seq = 0;  // tiebreaker: FIFO among equal timestamps
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Periodic callback state: allocated once per schedule_every and
  /// shared by every rearm, so firing never copies the user callback.
  struct PeriodicTask {
    util::SimMicros period = 0;
    std::function<void()> fn;
  };

  void fire_due_events(util::SimMicros up_to_inclusive);
  void arm_periodic(std::shared_ptr<PeriodicTask> task);

  util::SimMicros tick_period_;
  util::SimMicros now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<TickListener*> listeners_;
};

}  // namespace voprof::sim
