#pragma once
/// \file cluster.hpp
/// A cluster of simulated PMs plus the inter-PM network router. The
/// cluster is the single tick listener registered with the engine: it
/// ticks every machine, then routes the outbound flows (delivery lands
/// in the receivers' inboxes and is processed on their next tick —
/// a one-tick wire latency, invisible at the 1 s sampling interval).

#include <memory>
#include <vector>

#include "voprof/util/rng.hpp"
#include "voprof/xensim/cost_model.hpp"
#include "voprof/xensim/engine.hpp"
#include "voprof/xensim/machine.hpp"
#include "voprof/xensim/migration.hpp"
#include "voprof/xensim/network.hpp"
#include "voprof/xensim/spec.hpp"

namespace voprof::sim {

class Cluster final : public TickListener {
 public:
  /// Creates a cluster bound to `engine`; registers itself as a tick
  /// listener. `seed` drives all stochastic behaviour in the cluster;
  /// `fabric` describes the inter-PM switch.
  Cluster(Engine& engine, CostModel costs, std::uint64_t seed,
          FabricSpec fabric = {});
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Add a PM with the given hardware spec; returns a stable reference.
  PhysicalMachine& add_machine(MachineSpec spec);
  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machines_.size();
  }
  [[nodiscard]] PhysicalMachine& machine(std::size_t idx);
  [[nodiscard]] const PhysicalMachine& machine(std::size_t idx) const;
  [[nodiscard]] PhysicalMachine* machine_by_id(int id) noexcept;

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }

  /// Total kilobits dropped because they addressed a missing PM/VM
  /// (diagnostic; should stay zero in well-formed experiments).
  [[nodiscard]] double dropped_kbits() const noexcept { return dropped_kbits_; }

  /// Live-migration engine bound to this cluster (ticked right after
  /// the machines each tick).
  [[nodiscard]] MigrationEngine& migration() noexcept { return migration_; }
  [[nodiscard]] const MigrationEngine& migration() const noexcept {
    return migration_;
  }

  /// The inter-PM switching fabric.
  [[nodiscard]] NetworkFabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const NetworkFabric& fabric() const noexcept {
    return fabric_;
  }

  /// Locate a VM by name anywhere in the cluster (the bridge/ARP view
  /// after migrations). Returns the hosting machine or nullptr.
  [[nodiscard]] PhysicalMachine* locate_vm(const std::string& vm_name) noexcept;

  /// Enable xentrace-style event logging across the whole cluster
  /// (all current and future machines plus the migration engine).
  /// Returns the log; repeated calls return the same instance.
  TraceLog& enable_tracing(std::size_t capacity = 4096);
  /// The trace log, or nullptr when tracing is disabled.
  [[nodiscard]] TraceLog* trace_log() noexcept { return trace_.get(); }

  void tick(util::SimMicros now, double dt) override;

 private:
  Engine& engine_;
  CostModel costs_;
  util::Rng rng_;
  std::vector<std::unique_ptr<PhysicalMachine>> machines_;
  MigrationEngine migration_;
  NetworkFabric fabric_;
  std::unique_ptr<TraceLog> trace_;
  double dropped_kbits_ = 0.0;
};

}  // namespace voprof::sim
