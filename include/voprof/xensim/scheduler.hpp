#pragma once
/// \file scheduler.hpp
/// Credit-scheduler model: allocates the guest CPU pool among competing
/// VCPUs per tick. Implements weighted max-min fairness (water-filling)
/// with per-VCPU caps and a co-location efficiency factor — the
/// macroscopic behaviour of Xen's credit scheduler at the 1 s sampling
/// resolution the paper uses (credits are burned at 10 ms accounting
/// periods; over a second the allocation converges to the weighted
/// fair share).

#include <vector>

namespace voprof::sim {

/// One VCPU's scheduling request for a tick.
struct SchedRequest {
  double demand_pct = 0.0;  ///< CPU the VCPU wants, % of one core
  double cap_pct = 100.0;   ///< per-VCPU ceiling (vcpus * 100)
  double weight = 1.0;      ///< credit weight (all equal in the paper)
};

/// Result of one allocation round.
struct SchedResult {
  std::vector<double> granted_pct;  ///< same order as requests
  double total_granted_pct = 0.0;
  bool contended = false;  ///< true if some demand went unmet
};

/// Credit scheduler (macro model).
class CreditScheduler {
 public:
  /// \param capacity_pct  total pool, % (guest_cores * 100)
  /// \param multi_vm_efficiency  usable fraction of the pool when more
  ///        than one VCPU is runnable (context-switch / migration loss;
  ///        CostModel::multi_vm_sched_efficiency)
  CreditScheduler(double capacity_pct, double multi_vm_efficiency);

  /// Allocate the pool among the requests. Weighted water-filling:
  /// every VCPU receives min(demand, fair share), and slack from
  /// under-demanding VCPUs is redistributed (work conserving).
  [[nodiscard]] SchedResult allocate(
      const std::vector<SchedRequest>& requests) const;

  /// Allocation variant for the per-tick hot path: writes into `out`,
  /// reusing its vector capacity, and keeps all intermediate state in
  /// member scratch buffers — zero allocations at steady state.
  void allocate_into(const std::vector<SchedRequest>& requests,
                     SchedResult& out) const;

  [[nodiscard]] double capacity_pct() const noexcept { return capacity_pct_; }
  [[nodiscard]] double multi_vm_efficiency() const noexcept {
    return efficiency_;
  }

 private:
  double capacity_pct_;
  double efficiency_;
  // Water-filling scratch, reused across calls (allocate is logically
  // const; the scratch carries no state between calls).
  mutable std::vector<double> want_;
  mutable std::vector<char> satisfied_;
};

}  // namespace voprof::sim
