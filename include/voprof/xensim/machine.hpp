#pragma once
/// \file machine.hpp
/// The simulated physical machine: assembles Dom0, the hypervisor
/// accounting bucket, guest domains, the credit scheduler, the virtual
/// disk layer and the VIF/bridge, and executes the per-tick pipeline
/// that charges virtualization overhead along the paths of Fig. 1
/// (guest frontend -> Dom0 backend -> physical device, with the
/// hypervisor trapping and scheduling in between).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "voprof/util/rng.hpp"
#include "voprof/xensim/cost_model.hpp"
#include "voprof/xensim/counters.hpp"
#include "voprof/xensim/credit_micro.hpp"
#include "voprof/xensim/domain.hpp"
#include "voprof/xensim/scheduler.hpp"
#include "voprof/xensim/spec.hpp"
#include "voprof/xensim/tracelog.hpp"
#include "voprof/xensim/vdisk.hpp"

namespace voprof::sim {

/// A flow leaving this PM for another PM or an external host.
struct OutboundFlow {
  NetTarget target;
  double kbits = 0.0;
  int tag = 0;
};

/// Inbound delivery queued by the cluster for a named local VM.
struct InboundDelivery {
  std::string vm_name;
  double kbits = 0.0;
  int tag = 0;
};

class PhysicalMachine {
 public:
  PhysicalMachine(int id, MachineSpec spec, CostModel costs, util::Rng rng);

  PhysicalMachine(const PhysicalMachine&) = delete;
  PhysicalMachine& operator=(const PhysicalMachine&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }

  /// Create a guest domain. Name must be unique on this PM.
  DomU& add_vm(VmSpec vm_spec);
  /// Destroy a guest domain (e.g. after migration). Returns false if
  /// the VM does not exist.
  bool remove_vm(const std::string& name);
  [[nodiscard]] DomU* find_vm(const std::string& name) noexcept;
  [[nodiscard]] const DomU* find_vm(const std::string& name) const noexcept;
  [[nodiscard]] std::size_t vm_count() const noexcept { return guests_.size(); }
  [[nodiscard]] std::vector<DomU*> vms() noexcept;

  [[nodiscard]] Dom0& dom0() noexcept { return dom0_; }
  [[nodiscard]] const Dom0& dom0() const noexcept { return dom0_; }

  /// Queue traffic for a local VM (called by the cluster router).
  void enqueue_rx(const std::string& vm_name, double kbits, int tag = 0);

  /// Inter-PM/external flows generated during the last tick; drained by
  /// the cluster router after every machine has ticked.
  [[nodiscard]] std::vector<OutboundFlow> drain_outbox();

  /// Advance one tick of dt seconds ending at sim time `now`.
  void tick(util::SimMicros now, double dt);

  /// Inject Dom0-mediated traffic that bypasses guest VIFs (used by
  /// the live-migration engine: memory pages stream through Dom0 and
  /// the NIC without belonging to any guest's counters). Consumed on
  /// the next tick: counts on the NIC and charges netback CPU.
  void inject_dom0_traffic(double tx_kbits, double rx_kbits);

  /// Detach a guest without destroying it (live-migration switchover).
  /// Returns nullptr if absent.
  [[nodiscard]] std::unique_ptr<DomU> extract_vm(const std::string& name);
  /// Adopt a guest extracted from another machine.
  DomU& adopt_vm(std::unique_ptr<DomU> vm);

  /// Cumulative activity dropped because a physical device was
  /// saturated (diagnostics; zero in the paper's experiments, whose
  /// workloads stay far below the SATA disk and gigabit NIC).
  [[nodiscard]] double throttled_disk_blocks() const noexcept {
    return throttled_disk_blocks_;
  }
  [[nodiscard]] double throttled_nic_kbits() const noexcept {
    return throttled_nic_kbits_;
  }

  /// Attach an xentrace-style event log (not owned; nullptr disables).
  void set_trace_log(TraceLog* log) noexcept { trace_ = log; }

  /// Cumulative counters for every entity on this PM.
  [[nodiscard]] MachineSnapshot snapshot(util::SimMicros now) const;

  /// Snapshot variant for periodic samplers: refreshes `out` in place,
  /// reusing its guest vector and name strings, so a 1 Hz monitor does
  /// not reallocate the whole snapshot every sample.
  void snapshot_into(util::SimMicros now, MachineSnapshot& out) const;

  /// CPU granted to a VM in the most recent tick, % of a VCPU
  /// (diagnostics/tests).
  [[nodiscard]] double last_granted_pct(const std::string& vm_name) const;

  /// Total memory gauge: Dom0 + sum of guests (the paper's PM-memory
  /// estimate, Sec. III-A).
  [[nodiscard]] double memory_in_use_mib() const noexcept;

 private:
  struct GuestState {
    std::unique_ptr<DomU> dom;
    double last_granted_pct = 0.0;
    double last_consumed_pct = 0.0;
  };

  /// An outbound flow awaiting the NIC-saturation verdict this tick.
  struct PendingOut {
    const NetTarget* target = nullptr;  // aliases a flow in a guest's demand
    double kbits = 0.0;
    int tag = 0;
  };

  /// Saturating control-plane response over all guests (Dom0 variant).
  [[nodiscard]] double dom0_ctrl_response() const noexcept;
  /// Saturating scheduling response over all guests (hypervisor).
  [[nodiscard]] double hyp_sched_response() const noexcept;
  [[nodiscard]] double jitter(double base, double rel) noexcept;

  int id_;
  MachineSpec spec_;
  CostModel costs_;
  util::Rng rng_;
  Dom0 dom0_;
  DomainCounters hypervisor_;
  DeviceCounters devices_;
  CreditScheduler scheduler_;
  MicroCreditScheduler micro_scheduler_;
  VirtualDisk vdisk_;
  std::vector<GuestState> guests_;
  std::vector<InboundDelivery> inbox_;
  std::vector<OutboundFlow> outbox_;
  double pending_dom0_tx_kbits_ = 0.0;
  double pending_dom0_rx_kbits_ = 0.0;
  double throttled_disk_blocks_ = 0.0;
  double throttled_nic_kbits_ = 0.0;
  TraceLog* trace_ = nullptr;
  util::SimMicros last_now_ = 0;
  // Sim time when the current CPU-contention episode began, or -1 when
  // the scheduler is currently satisfying everyone. Drives the
  // "scheduler/contention" sim-clock spans in the obs trace.
  util::SimMicros contention_begin_ = -1;

  // Per-tick scratch buffers, reused across ticks so the steady-state
  // tick makes no allocations. demands_ holds pointers into each
  // guest's last_demand(), valid for the duration of one tick.
  std::vector<const ProcessDemand*> demands_;
  std::vector<SchedRequest> requests_;
  std::vector<double> blocks_wanted_;
  std::vector<PendingOut> pending_out_;
  SchedResult sched_;
};

}  // namespace voprof::sim
