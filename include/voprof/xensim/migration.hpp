#pragma once
/// \file migration.hpp
/// Live VM migration between PMs of a cluster — the management action
/// the paper's introduction motivates ("migrate VMs out of a PM to
/// release load", Sandpiper [5] / CloudScale [8] style). Pre-copy
/// model: while the VM keeps running on the source, its memory pages
/// stream through both Dom0s and NICs (paying the same netback CPU and
/// bandwidth costs as any other inter-PM traffic), then the domain
/// switches over in one tick.

#include <functional>
#include <string>
#include <vector>

#include "voprof/util/units.hpp"

namespace voprof::sim {

class Cluster;

/// Tuning knobs for one migration.
struct MigrationConfig {
  /// Transfer-rate cap in Kb/s (Xen defaults to using a large share of
  /// the NIC; 300 Mb/s keeps RUBiS traffic alive during the copy).
  double rate_kbps = 300000.0;
  /// Pages dirtied while copying force re-transfers; total bytes moved
  /// = resident memory * (1 + dirty_factor).
  double dirty_factor = 0.20;
};

/// State of an in-flight or finished migration.
struct MigrationStatus {
  std::string vm_name;
  int from_pm = -1;
  int to_pm = -1;
  double total_kbits = 0.0;
  double sent_kbits = 0.0;
  bool done = false;
  bool failed = false;      ///< VM disappeared mid-copy
  util::SimMicros started = 0;
  util::SimMicros finished = 0;

  [[nodiscard]] double progress() const noexcept {
    return total_kbits > 0.0 ? sent_kbits / total_kbits : 1.0;
  }
};

/// Drives pre-copy migrations over a cluster. Tick it right after the
/// cluster (the Cluster does this automatically once the engine is
/// registered via Cluster::migration()).
class MigrationEngine {
 public:
  explicit MigrationEngine(Cluster& cluster);

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Begin migrating `vm_name` from PM `from_pm` to PM `to_pm`.
  /// Returns the migration id. Throws if the VM does not exist on the
  /// source, the destination is missing/same, or the VM is already
  /// migrating.
  int start(const std::string& vm_name, int from_pm, int to_pm,
            MigrationConfig config = {});

  /// Status by id; throws on unknown id.
  [[nodiscard]] const MigrationStatus& status(int id) const;
  [[nodiscard]] std::size_t active_count() const noexcept;
  [[nodiscard]] const std::vector<MigrationStatus>& all() const noexcept {
    return status_;
  }

  /// Optional completion callback (id passed).
  void on_complete(std::function<void(int)> fn) {
    on_complete_ = std::move(fn);
  }

  /// Advance all active migrations by dt seconds (called by Cluster).
  void tick(util::SimMicros now, double dt);

 private:
  struct Active {
    int id;
    MigrationConfig config;
  };

  Cluster& cluster_;
  std::vector<MigrationStatus> status_;
  std::vector<Active> active_;
  std::function<void(int)> on_complete_;
};

}  // namespace voprof::sim
