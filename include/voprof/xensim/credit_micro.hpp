#pragma once
/// \file credit_micro.hpp
/// Discrete credit scheduler modeled on Xen's actual algorithm (the
/// scheduler the paper's testbed ran):
///
///  - every VCPU holds a credit balance; running debits credits in
///    proportion to consumed core-time,
///  - every 30 ms accounting period the per-period credit pool
///    (one core-tick worth of credits per core) is redistributed in
///    proportion to VCPU weights, with balances clamped,
///  - runnable VCPUs with positive credits (UNDER) are scheduled before
///    exhausted ones (OVER); ties go to the larger balance,
///  - each core runs one VCPU per 10 ms tick; slack from VCPUs that
///    need less than a full tick spills to the next candidates
///    (work conservation).
///
/// The macro CreditScheduler (scheduler.hpp) reproduces this
/// behaviour's 1-second averages in closed form; this class exists to
/// *show* that — the scheduler-fidelity ablation runs both and checks
/// the figures don't move — and to expose tick-level effects (bursty
/// credit catch-up) that averages hide.

#include <vector>

#include "voprof/xensim/scheduler.hpp"

namespace voprof::sim {

/// Stateful, tick-driven credit scheduler. VCPUs are identified by
/// their index in the request vector; if the population size changes,
/// balances reset (VM creation/removal).
class MicroCreditScheduler {
 public:
  /// \param cores       physical cores available to guests
  /// \param efficiency  usable fraction of each core when >= 2 VCPUs
  ///                    are runnable (context-switch loss, as in the
  ///                    macro model)
  MicroCreditScheduler(int cores, double efficiency);

  /// Advance one tick of `dt` seconds and allocate core-time.
  /// granted_pct is in percent-of-one-core, like the macro scheduler.
  [[nodiscard]] SchedResult tick(const std::vector<SchedRequest>& requests,
                                 double dt);

  /// Hot-path variant: writes into `out`, reusing its capacity, and
  /// keeps the per-tick want/runqueue-order buffers as member scratch —
  /// zero allocations at steady state.
  void tick_into(const std::vector<SchedRequest>& requests, double dt,
                 SchedResult& out);

  /// Current credit balance of a VCPU (tests/diagnostics).
  [[nodiscard]] double credits(std::size_t vcpu) const;
  [[nodiscard]] int cores() const noexcept { return cores_; }

  /// Credits debited per second of core-time consumed.
  static constexpr double kCreditsPerCoreSecond = 10000.0;
  /// Accounting period (credit redistribution), seconds.
  static constexpr double kAccountingPeriodS = 0.030;
  /// Balance clamp, as multiples of one period's fair share.
  static constexpr double kBalanceCapPeriods = 4.0;

 private:
  void redistribute(const std::vector<SchedRequest>& requests);

  int cores_;
  double efficiency_;
  std::vector<double> credits_;
  double since_accounting_s_ = 0.0;
  // Per-tick scratch (no state carried between ticks).
  std::vector<double> want_;
  std::vector<std::size_t> order_;
};

}  // namespace voprof::sim
