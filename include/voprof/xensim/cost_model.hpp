#pragma once
/// \file cost_model.hpp
/// Calibrated virtualization-overhead cost model.
///
/// Every constant below is anchored to a specific value printed in the
/// paper's text (Secs. III-C and IV). The simulator charges these costs
/// along the same architectural paths the paper attributes them to
/// (netback/blkback processing in Dom0, trap/scheduling work in the
/// hypervisor, striping in the virtual disk layer), so the reproduced
/// figures emerge from the mechanism rather than per-figure lookup
/// tables.

namespace voprof::sim {

/// All CPU costs are percent of one core; bandwidth in Kb/s; disk I/O in
/// 512-byte blocks/s.
struct CostModel {
  // --- Dom0 (device driver domain) CPU -------------------------------
  /// Background CPU of the control domain's management stack,
  /// *excluding* the measurement script. The paper's 16.8 % reading
  /// ("the CPU utilizations of Dom0 ... have constant values of 16.8%",
  /// Sec. III-C) includes the running script's Dom0-side tools, which
  /// the monitor module injects as ~0.45 % — so measured Dom0 base is
  /// 16.35 + 0.45 = 16.8 when monitoring is active.
  double dom0_base_cpu_pct = 16.35;
  /// Relative jitter (std-dev) applied to Dom0 background demand per
  /// tick; produces the +-0.3 % fluctuation the paper reports
  /// ("16 +- 0.3%", Sec. IV-A).
  double dom0_base_cpu_jitter = 0.015;
  /// Control-plane response to guest CPU activity, quadratic in the
  /// *consumed* guest CPU of each VM: extra = lin*x + quad*x^2. With the
  /// defaults, extra(99 %) = 12.7 %, reproducing Fig. 2(a)'s
  /// 16.8 -> 29.5 % climb with increase rate growing from 0.01 to ~0.26.
  double dom0_ctrl_lin = 0.010;
  double dom0_ctrl_quad = 0.0011951;
  /// Saturation cap on the control-plane extra for a single VM (12.7 %
  /// at 99 % load, Fig. 2(a)).
  double dom0_ctrl_sat_single_pct = 12.7;
  /// Saturation cap when >= 2 VMs run: Dom0 CPU plateaus at ~23.4 %
  /// total in Figs. 3(a)/4(a) ("due to the inadequate available CPU
  /// resource"), i.e. 6.6 % above base.
  double dom0_ctrl_sat_multi_pct = 6.6;
  /// Extra Dom0 management CPU from co-location (N >= 2). Fig. 3(c)/4(c)
  /// show 17.4 % vs. 16.8 % base ("about 2% extra utilization compared
  /// to Figure 2(c)" relative to that figure's 16 % reading).
  double dom0_coloc_cpu_pct = 0.6;
  /// netback packet-processing CPU per Kb/s crossing a VIF toward the
  /// physical NIC (inter-PM). Fig. 2(e): Dom0 climbs ~14 % over a
  /// 1.28 Mb/s (=1280 Kb/s) sweep -> 0.0105 %/(Kb/s); the paper rounds
  /// to "a constant increase rate of 0.01".
  double dom0_cpu_per_kbps_inter = 0.0105;
  /// netback CPU per Kb/s for bridge-local (intra-PM) traffic. Paper:
  /// "an increase rate of 0.002, which is 5X less" (Fig. 5(b)).
  double dom0_cpu_per_kbps_intra = 0.0021;
  /// blkback CPU per block/s of guest I/O. Small enough that Dom0 CPU
  /// "remains stable under varying I/O intensity" (Fig. 2(c)).
  double dom0_cpu_per_block = 0.004;

  // --- Hypervisor CPU --------------------------------------------------
  /// Idle hypervisor CPU (scheduling timer ticks etc.); Fig. 2(a)
  /// starts at 3 %, Sec. III-C reports a constant 3.0 % under the
  /// memory benchmark.
  double hyp_base_cpu_pct = 3.0;
  double hyp_base_cpu_jitter = 0.02;
  /// Scheduling/trap response to consumed guest CPU, quadratic per VM:
  /// extra(99 %) = 11.0 %, reproducing Fig. 2(a)'s 3 -> 14 % climb.
  double hyp_sched_lin = 0.040;
  double hyp_sched_quad = 0.00071830;
  /// Cap for a single VM (11 % above base at saturation).
  double hyp_sched_sat_single_pct = 11.0;
  /// Cap with co-located VMs: hypervisor CPU "stays at ... 12.0%"
  /// (Sec. IV-B summary), i.e. 9.0 % above base.
  double hyp_sched_sat_multi_pct = 9.0;
  /// Hypervisor CPU per Kb/s of guest network traffic (event-channel
  /// traps). Figs. 3(e)/4(e): "both figures exhibit increase rates of
  /// 0.0005" per Kb/s of aggregate VM bandwidth.
  double hyp_cpu_per_kbps = 0.00055;
  /// Hypervisor CPU per block/s of guest I/O (grant-table traps); keeps
  /// the hypervisor "nearly constant (2.8 +- 0.1%)" in Fig. 2(c).
  double hyp_cpu_per_block = 0.0005;

  // --- Disk I/O ---------------------------------------------------------
  // Virtual-disk amplification is not a constant here: it emerges from
  // the striped-volume geometry in vdisk.hpp (whole-stripe
  // read-modify-write + journal; expected factor 2.05 with the default
  // 8-block ops / 8-block stripes / 1.4 journal blocks), reproducing
  // Fig. 2(b)'s "slightly more than twice" mechanically.
  /// Background PM I/O (Dom0 logging etc.): "the PM's I/O ... constant
  /// values of 18.8 blocks/s" (Sec. III-C).
  double pm_base_io_blocks = 18.8;
  double pm_base_io_jitter = 0.05;

  // --- Network bandwidth -------------------------------------------------
  /// Background PM traffic: "254 bytes/s" (Sec. III-C), in Kb/s.
  double pm_base_bw_kbps = 254.0 * 8.0 / 1000.0;
  double pm_base_bw_jitter = 0.05;
  /// Fractional NIC-level overhead (framing, ARP) on guest traffic for
  /// a single VM; yields the "nearly 400 bytes/s" overhead of
  /// Fig. 2(d) at the top workload level.
  double pm_bw_overhead_frac_single = 0.001;
  /// Fractional overhead with co-located VMs: "|PMbw - sum VMbw| /
  /// PMbw = 3%" (Sec. IV-B).
  double pm_bw_overhead_frac_multi = 0.030;

  // --- CPU scheduling ----------------------------------------------------
  /// Work-conserving efficiency of the credit scheduler when more than
  /// one guest VCPU competes: 2 VMs reach 95 % each on a 2-core guest
  /// pool (Fig. 3(a)), i.e. ~5 % context-switch/migration loss.
  double multi_vm_sched_efficiency = 0.95;

  // --- Memory -------------------------------------------------------------
  /// Paper's PM-memory estimate is Dom0 + sum of guest VMs (Sec. III-A);
  /// the simulator tracks the same gauge, no extra constant needed.

  // --- Measurement noise ---------------------------------------------------
  /// Relative noise on per-tick activity (models real-system
  /// fluctuation observed by the 1 s sampling loop).
  double activity_jitter = 0.01;
};

/// Convex control-plane response helper: lin*x + quad*x^2 for one VM's
/// consumed CPU percentage x.
[[nodiscard]] inline double quadratic_response(double x, double lin,
                                               double quad) noexcept {
  return lin * x + quad * x * x;
}

}  // namespace voprof::sim
