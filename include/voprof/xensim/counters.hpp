#pragma once
/// \file counters.hpp
/// Cumulative activity counters for simulated entities, and the
/// snapshot structs the monitoring tools sample. All counters are
/// monotonically non-decreasing except memory, which is a gauge —
/// exactly the split real /proc and xentop expose.

#include <string>
#include <vector>

#include "voprof/util/units.hpp"

namespace voprof::sim {

/// Cumulative counters for one schedulable entity (a DomU, Dom0 or the
/// hypervisor's accounting bucket).
struct DomainCounters {
  /// Core-seconds of CPU actually consumed (100 % for 1 s == 1.0).
  double cpu_core_seconds = 0.0;
  /// Guest-visible disk blocks submitted (512-byte blocks).
  double io_blocks = 0.0;
  /// Kilobits transmitted / received through the VIF.
  double tx_kbits = 0.0;
  double rx_kbits = 0.0;
  /// Resident memory gauge, MiB.
  double mem_mib = 0.0;

  void add(const DomainCounters& d) noexcept {
    cpu_core_seconds += d.cpu_core_seconds;
    io_blocks += d.io_blocks;
    tx_kbits += d.tx_kbits;
    rx_kbits += d.rx_kbits;
    mem_mib += d.mem_mib;
  }
};

/// Cumulative counters for physical devices of one PM.
struct DeviceCounters {
  /// Blocks issued to the physical disk (after virtual-disk striping).
  double disk_blocks = 0.0;
  /// Kilobits through the physical NIC (tx + rx).
  double nic_kbits = 0.0;
};

/// Point-in-time snapshot of one domain, labeled for the monitors.
struct DomainSnapshot {
  std::string name;
  DomainCounters counters;
};

/// Snapshot of an entire PM at a given sim time.
struct MachineSnapshot {
  util::SimMicros time = 0;
  DomainSnapshot dom0;
  DomainCounters hypervisor;  ///< hypervisor CPU accounting (cpu only)
  std::vector<DomainSnapshot> guests;
  DeviceCounters devices;

  /// Find a guest snapshot by name; throws if absent.
  [[nodiscard]] const DomainSnapshot& guest(const std::string& name) const;
};

}  // namespace voprof::sim
