#pragma once
/// \file process.hpp
/// Guest-process interface: anything that runs inside a simulated VM
/// (the lookbusy-style hogs, the RUBiS tiers, monitoring agents)
/// implements GuestProcess. The machine asks every process for its
/// resource demand each tick (phase A), runs the CPU scheduler, then
/// tells the process what fraction of its CPU demand was granted
/// (phase B); I/O and network activity emitted in phase A are scaled by
/// the granted fraction, modeling work that cannot happen without CPU.

#include <cstdint>
#include <string>
#include <vector>

#include "voprof/util/units.hpp"

namespace voprof::sim {

class DomU;

/// Addressing for network flows.
struct NetTarget {
  /// Destination PM id; kExternal means a host outside the cluster.
  int pm_id = kExternal;
  /// Destination VM name on that PM (ignored for external targets).
  std::string vm_name;

  static constexpr int kExternal = -1;

  [[nodiscard]] bool is_external() const noexcept {
    return pm_id == kExternal;
  }
};

/// One network transmission emitted during a tick.
struct NetFlow {
  double kbits = 0.0;  ///< payload for this tick
  NetTarget target;
  /// Application-level tag carried to the receiver's on_receive (e.g.
  /// the RUBiS tiers use it to tell client requests from DB replies).
  int tag = 0;
};

/// Resource demand of one process for one tick.
struct ProcessDemand {
  /// CPU demand in percent of one VCPU, sustained over the tick.
  double cpu_pct = 0.0;
  /// Additional resident memory the process wants to hold, MiB (gauge;
  /// re-declared every tick).
  double mem_mib = 0.0;
  /// Disk blocks the process wants to submit this tick (absolute count,
  /// already scaled by dt by the caller's rate).
  double io_blocks = 0.0;
  /// Network transmissions.
  std::vector<NetFlow> flows;

  ProcessDemand& operator+=(const ProcessDemand& other);
  /// Move variant used on the tick hot path: steals `other`'s flows
  /// (and their NetTarget strings) instead of copying them.
  ProcessDemand& operator+=(ProcessDemand&& other);
};

/// Interface for code running inside a DomU.
class GuestProcess {
 public:
  virtual ~GuestProcess() = default;

  /// Phase A: declare the demand for a tick of length dt seconds
  /// starting at `now`.
  [[nodiscard]] virtual ProcessDemand demand(util::SimMicros now,
                                             double dt) = 0;

  /// Phase B: `cpu_frac` in [0, 1] of the demanded CPU was granted.
  /// Default: ignore (open-loop workloads do not adapt).
  virtual void granted(double cpu_frac, util::SimMicros now, double dt);

  /// Bytes delivered to this process's VM that were addressed to it,
  /// with the sender's NetFlow::tag. Default: ignore.
  virtual void on_receive(double kbits, int tag, util::SimMicros now);

  /// Human-readable label for diagnostics.
  [[nodiscard]] virtual std::string label() const = 0;
};

}  // namespace voprof::sim
