#pragma once
/// \file tracelog.hpp
/// xentrace-style event log: a bounded ring buffer of typed simulator
/// events (scheduler contention, device throttling, migrations, VM
/// lifecycle) for diagnostics. Real Xen ships `xentrace`/`xenalyze`
/// for exactly this; the paper's methodology depends on knowing what
/// the hypervisor was doing while the counters moved.
///
/// The log is optional and zero-cost when absent: components emit
/// through a nullable pointer.

#include <cstddef>
#include <string>
#include <vector>

#include "voprof/util/json.hpp"
#include "voprof/util/units.hpp"

namespace voprof::sim {

enum class TraceEventType {
  kVmCreated,
  kVmRemoved,
  kSchedContention,   ///< guest pool could not satisfy demand
  kDiskThrottled,
  kNicThrottled,
  kMigrationStarted,
  kMigrationFinished,
  kMigrationFailed,
};

[[nodiscard]] std::string trace_event_name(TraceEventType type);

/// Inverse of trace_event_name; throws util::ContractViolation on an
/// unknown name (round-trip tested).
[[nodiscard]] TraceEventType trace_event_from_name(const std::string& name);

/// Obs/Chrome-trace category a ring event belongs to ("vm",
/// "scheduler", "device" or "migration"), so exported ring events land
/// in the same per-category tables as native obs spans.
[[nodiscard]] const char* trace_event_category(TraceEventType type);

struct TraceEvent {
  util::SimMicros time = 0;
  TraceEventType type = TraceEventType::kVmCreated;
  int pm_id = -1;
  std::string subject;  ///< VM name or empty
  double value = 0.0;   ///< event-specific magnitude (unmet %, kbits...)
};

/// Fixed-capacity ring buffer of events.
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096);

  void record(TraceEvent event);

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Retained events matching a type, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events_of(TraceEventType type) const;
  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::size_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool overflowed() const noexcept {
    return total_ > capacity_;
  }
  void clear() noexcept;

  /// Render as "t=12.34s pm0 sched-contention vm1 7.5" lines.
  [[nodiscard]] std::string dump() const;

  /// CSV text of the retained events, oldest first, with header
  /// `time_us,type,pm_id,subject,value`. Subjects are plain VM-name
  /// tokens; a comma, quote or newline in one is rejected rather than
  /// escaped. Inverse: tracelog_events_from_csv.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
};

/// Parse TraceLog::to_csv() text back into events (oldest first).
/// Throws util::ContractViolation on a malformed header, field count
/// or event name.
[[nodiscard]] std::vector<TraceEvent> tracelog_events_from_csv(
    const std::string& text);

/// JSON array of the retained events, each an object with time_us,
/// type (name), pm_id, subject and value — the shape `voprofctl trace`
/// understands inside a trace file's ring export.
[[nodiscard]] util::Json tracelog_to_json(const TraceLog& log);

/// Re-emit the retained ring events into the global obs trace
/// collector as sim-clock instants (tid = pm id, category from
/// trace_event_category). No-op when the collector is disabled.
void tracelog_export_to_obs(const TraceLog& log);

}  // namespace voprof::sim
