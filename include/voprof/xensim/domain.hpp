#pragma once
/// \file domain.hpp
/// Xen domains: the guest DomU (with frontend drivers and attached
/// guest processes) and the control domain Dom0 (with the netback /
/// blkback backends and the management stack whose background CPU the
/// paper measures at 16.8 %).

#include <memory>
#include <string>
#include <vector>

#include "voprof/xensim/counters.hpp"
#include "voprof/xensim/process.hpp"
#include "voprof/xensim/spec.hpp"

namespace voprof::sim {

/// Common state of any domain.
class Domain {
 public:
  explicit Domain(std::string name) : name_(std::move(name)) {}
  virtual ~Domain() = default;

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const DomainCounters& counters() const noexcept {
    return counters_;
  }

  /// Record consumed CPU over dt seconds at `pct` of one core.
  void charge_cpu(double pct, double dt) noexcept {
    counters_.cpu_core_seconds += pct / 100.0 * dt;
  }
  void charge_io(double blocks) noexcept { counters_.io_blocks += blocks; }
  void charge_tx(double kbits) noexcept { counters_.tx_kbits += kbits; }
  void charge_rx(double kbits) noexcept { counters_.rx_kbits += kbits; }
  void set_mem(double mib) noexcept { counters_.mem_mib = mib; }

 private:
  std::string name_;
  DomainCounters counters_;
};

/// A guest VM: owns its processes, enforces the per-VM I/O cap, and
/// tracks the demand/grant cycle.
class DomU final : public Domain {
 public:
  explicit DomU(VmSpec spec);

  [[nodiscard]] const VmSpec& spec() const noexcept { return spec_; }

  /// Attach a process; the domain owns it.
  void attach(std::unique_ptr<GuestProcess> process);
  /// Attach a non-owned process (caller guarantees lifetime; used by
  /// application models that need to keep driving the object).
  void attach_shared(GuestProcess* process);
  /// Detach a previously attach_shared'ed process. Returns false if it
  /// was not attached.
  bool detach_shared(GuestProcess* process) noexcept;
  [[nodiscard]] std::size_t process_count() const noexcept;

  /// Expires when this DomU is destroyed. Holders of raw DomU pointers
  /// that can outlive the VM (e.g. the monitor's guest agents, when a
  /// VM is removed mid-measurement) must check it before touching the
  /// domain. Live migration moves the owning unique_ptr, so the token
  /// stays valid across migrations.
  [[nodiscard]] std::weak_ptr<const void> liveness() const noexcept {
    return liveness_;
  }

  /// Phase A: aggregate demand over all processes for one tick.
  /// The per-VM I/O cap (VmSpec::io_cap_blocks_per_s) is applied here —
  /// the frontend driver is where Xen enforces it. The returned
  /// reference aliases last_demand() and stays valid until the next
  /// collect_demand call; accumulating in place reuses the flow
  /// vector's capacity instead of reallocating every tick.
  [[nodiscard]] const ProcessDemand& collect_demand(util::SimMicros now,
                                                    double dt);

  /// Phase B: inform processes what fraction of CPU demand was granted.
  void grant(double cpu_frac, util::SimMicros now, double dt);

  /// Deliver received traffic to all processes and the RX counter.
  void deliver(double kbits, int tag, util::SimMicros now);

  /// Refresh the memory gauge: OS base + process demands from the last
  /// collect_demand call.
  void refresh_memory() noexcept;

  /// CPU demand of the last collect_demand call (percent of a VCPU).
  [[nodiscard]] double last_cpu_demand() const noexcept {
    return last_demand_.cpu_pct;
  }
  [[nodiscard]] const ProcessDemand& last_demand() const noexcept {
    return last_demand_;
  }

 private:
  /// Visit owned then shared processes without materializing a vector
  /// (called three times per tick: demand, grant, deliver).
  template <typename Fn>
  void for_each_process(Fn&& fn) {
    for (const auto& p : owned_) fn(p.get());
    for (GuestProcess* p : shared_) fn(p);
  }

  VmSpec spec_;
  std::vector<std::unique_ptr<GuestProcess>> owned_;
  std::vector<GuestProcess*> shared_;
  ProcessDemand last_demand_;
  std::shared_ptr<const void> liveness_ = std::make_shared<const int>(0);
};

/// The device-driver domain. Its CPU demand is computed by the machine
/// from the cost model; Dom0 additionally hosts injected background
/// demands (e.g. the monitoring tools' self-overhead, Table I).
class Dom0 final : public Domain {
 public:
  explicit Dom0(double mem_mib);

  /// Add CPU demand (percent of one core) charged every tick while
  /// registered; returns an id for removal. Models daemons such as the
  /// measurement script running in Dom0.
  int add_background_cpu(double pct);
  void remove_background_cpu(int id) noexcept;
  [[nodiscard]] double background_cpu_pct() const noexcept;

 private:
  struct BackgroundEntry {
    int id;
    double pct;
  };
  std::vector<BackgroundEntry> background_;
  int next_id_ = 0;
};

}  // namespace voprof::sim
