#pragma once
/// \file spec.hpp
/// Hardware and VM configuration descriptors for the simulated testbed.
///
/// Defaults mirror the paper's cluster (Sec. III-C): XenServer 6.2 hosts
/// with one 2.66 GHz quad-core Xeon, 2 GiB RAM, 60 GB SATA disk and a
/// gigabit NIC; guest VMs with 1 VCPU and 256 MiB RAM running Debian
/// Squeeze (Sec. VI-B).

#include <cstddef>
#include <string>

namespace voprof::sim {

/// Which guest CPU scheduler implementation a PM runs.
enum class SchedulerMode {
  /// Closed-form weighted water-filling — the credit scheduler's
  /// 1-second average behaviour (fast, default).
  kMacro,
  /// Discrete credit scheduler (credits, UNDER/OVER priorities, 30 ms
  /// accounting) — Xen's actual algorithm, for fidelity studies.
  kMicro,
};

/// Physical machine hardware description.
struct MachineSpec {
  /// Total physical cores.
  int cores = 4;
  /// Cores effectively available to guest VCPUs. The paper's data shows
  /// 2 co-located VMs saturating at 95 % each and 4 VMs at 47 % each
  /// (Figs. 3(a), 4(a)), i.e. guests share ~2 cores while Dom0 and the
  /// hypervisor occupy the others; XenServer 6.2 pins Dom0 VCPUs.
  int guest_cores = 2;
  /// Cores usable by Dom0 (its VCPUs).
  int dom0_cores = 2;
  double cpu_ghz = 2.66;
  /// Physical RAM.
  double mem_mib = 2048.0;
  /// Fraction of RAM the placement logic treats as allocatable to
  /// domains (leaves headroom for the hypervisor itself).
  double usable_mem_frac = 0.90;
  /// Disk capacity in 512-byte blocks per second (SATA; far above the
  /// paper's workloads, so never binding in the reproduced experiments).
  double disk_blocks_per_s = 20000.0;
  /// NIC line rate in Kb/s (gigabit).
  double nic_kbps = 1.0e6;
  /// Dom0 resident memory (XenServer control domain), MiB.
  double dom0_mem_mib = 752.0;
  /// Guest CPU scheduler implementation.
  SchedulerMode scheduler = SchedulerMode::kMacro;

  [[nodiscard]] double guest_cpu_capacity_pct() const noexcept {
    return 100.0 * guest_cores;
  }
  [[nodiscard]] double dom0_cpu_capacity_pct() const noexcept {
    return 100.0 * dom0_cores;
  }
  [[nodiscard]] double usable_mem_mib() const noexcept {
    return mem_mib * usable_mem_frac;
  }
};

/// Guest VM configuration.
struct VmSpec {
  std::string name = "vm";
  int vcpus = 1;
  /// Configured RAM, MiB (paper: 256 MiB, Sec. VI-B).
  double mem_mib = 256.0;
  /// Resident memory of the idle guest OS, MiB (Debian Squeeze).
  double os_base_mem_mib = 84.0;
  /// Default per-VM virtual-disk throughput cap, blocks/s. The paper
  /// observes "a maximum I/O capacity limit of about 90 blocks/s"
  /// (Sec. IV-A, Fig. 2(c) discussion).
  double io_cap_blocks_per_s = 90.0;

  [[nodiscard]] double cpu_capacity_pct() const noexcept {
    return 100.0 * vcpus;
  }
};

}  // namespace voprof::sim
