#pragma once
/// \file scenario.hpp
/// Declarative experiment runner: describe a testbed in a small INI
/// file and run it — machines, guests with workloads, monitors — so
/// new measurement studies need no C++. Used by `voprofctl simulate`.
///
/// ```ini
/// [cluster]
/// seed = 42
/// machines = 2          # host PMs (a client/aux PM is just another machine)
///
/// [vm web]              # one section per guest
/// machine = 0
/// cpu = 55              # MixedWorkload levels; omit for idle
/// bw = 1800
/// bw_target_machine = 1 # optional: send traffic to a VM...
/// bw_target_vm = sink   # ...instead of an external host
///
/// [vm sink]
/// machine = 1
///
/// [monitor]             # one per machine to measure
/// machine = 0
///
/// [run]
/// duration = 60         # seconds
/// warmup = 5
/// ```

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "voprof/monitor/script.hpp"
#include "voprof/util/ini.hpp"
#include "voprof/util/stats.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::scenario {

/// Parsed, validated scenario description.
struct ScenarioSpec {
  std::uint64_t seed = 42;
  int machines = 1;
  sim::SchedulerMode scheduler = sim::SchedulerMode::kMacro;
  double warmup_s = 0.0;
  double duration_s = 60.0;

  struct VmEntry {
    std::string name;
    int machine = 0;
    double cpu_pct = 0.0;
    double mem_mib = 0.0;
    double io_blocks = 0.0;
    double bw_kbps = 0.0;
    int bw_target_machine = sim::NetTarget::kExternal;
    std::string bw_target_vm;
    /// Replay a recorded CSV trace (columns vm_{cpu,mem,io,bw}) instead
    /// of steady levels; mutually exclusive with cpu/mem/io/bw keys.
    std::string trace_path;
    double trace_interval_s = 1.0;
  };
  std::vector<VmEntry> vms;
  std::vector<int> monitored_machines;

  /// Primary, non-throwing API: parse + validate from INI text.
  /// Parse errors carry Errc::kParse with a line context; semantic
  /// problems (duplicate VM names, out-of-range machine indices,
  /// non-positive durations...) carry Errc::kValidation with the
  /// offending section as context.
  [[nodiscard]] static util::Result<ScenarioSpec> parse_result(
      const std::string& text);
  [[nodiscard]] static util::Result<ScenarioSpec> load_result(
      const std::string& path);

  /// Throwing shims over the *_result API (throw ContractViolation).
  [[nodiscard]] static ScenarioSpec parse(const std::string& text);
  [[nodiscard]] static ScenarioSpec load(const std::string& path);
};

/// Result: one report per monitored machine, keyed by machine index.
struct ScenarioResult {
  std::map<int, mon::MeasurementReport> reports;
  /// Summary table of every monitored entity's mean utilizations.
  [[nodiscard]] std::string summary() const;
};

/// Build the testbed and run it.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Aggregate of several independent replications of one scenario.
/// Replication r runs with seed util::seed_for(spec.seed, r); its 1 s
/// samples are folded into per-entity streaming stats which are merged
/// across replications in replication order, so the aggregate is
/// identical no matter how many workers executed the runs.
struct ReplicatedScenarioResult {
  struct EntityStats {
    util::RunningStats cpu;
    util::RunningStats mem;
    util::RunningStats io;
    util::RunningStats bw;
  };
  /// machine index -> entity key -> stats over all samples of all runs.
  std::map<int, std::map<std::string, EntityStats>> stats;
  std::size_t replications = 0;

  /// Summary table (mean and stddev of CPU) per monitored machine.
  [[nodiscard]] std::string summary() const;
};

/// Run `replications` independent copies of the scenario, fanned over
/// `jobs` workers (1 = serial, 0 = all hardware threads). Requires
/// replications >= 1.
[[nodiscard]] ReplicatedScenarioResult run_scenario_replicated(
    const ScenarioSpec& spec, std::size_t replications, int jobs = 1);

/// Cancellable variant: `keep_going` is polled before each replication
/// starts (the cooperative-cancellation checkpoint voprofd uses for
/// request deadlines). Once it returns false the remaining
/// replications are skipped; the result then aggregates only the runs
/// that completed, with `replications` reporting that smaller count.
/// A replication already running is never interrupted mid-simulation.
[[nodiscard]] ReplicatedScenarioResult run_scenario_replicated(
    const ScenarioSpec& spec, std::size_t replications, int jobs,
    const std::function<bool()>& keep_going);

}  // namespace voprof::scenario
