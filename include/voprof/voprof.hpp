#pragma once
/// \file voprof.hpp
/// Umbrella header for the voprof library — the full pipeline of the
/// ICPP'15 paper "Profiling and Understanding Virtualization Overhead
/// in Cloud":
///
///   xensim    — simulated Xen testbed (Dom0, hypervisor, credit
///               scheduler, virtual disks, VIFs/bridge)
///   workloads — Table II micro-benchmarks (CPU/MEM/I/O/BW hogs)
///   monitor   — Table I tools + the synchronized measurement script
///   core      — Sec. V overhead models (Eq. 1-3), regression, trainer,
///               predictor
///   rubis     — the RUBiS-style two-tier evaluation application
///   placement — CloudScale-style VOA/VOU placement (Sec. VI-B)

#include "voprof/core/diagnostics.hpp"
#include "voprof/core/hetero_model.hpp"
#include "voprof/core/hetero_trainer.hpp"
#include "voprof/core/overhead_model.hpp"
#include "voprof/core/predictor.hpp"
#include "voprof/core/regression.hpp"
#include "voprof/core/serialize.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/core/utilvec.hpp"
#include "voprof/monitor/sample.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/monitor/tools.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/matrix.hpp"
#include "voprof/util/rng.hpp"
#include "voprof/util/stats.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/time_series.hpp"
#include "voprof/util/units.hpp"
#include "voprof/placement/demand_predictor.hpp"
#include "voprof/placement/evaluation.hpp"
#include "voprof/placement/hotspot.hpp"
#include "voprof/placement/placer.hpp"
#include "voprof/rubis/app.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/workloads/trace.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/cost_model.hpp"
#include "voprof/xensim/counters.hpp"
#include "voprof/xensim/domain.hpp"
#include "voprof/xensim/engine.hpp"
#include "voprof/xensim/machine.hpp"
#include "voprof/xensim/process.hpp"
#include "voprof/xensim/scheduler.hpp"
#include "voprof/xensim/spec.hpp"
