#pragma once
/// \file voprof.hpp
/// Umbrella header for the *stable* voprof surface — the types a
/// consumer needs to train the ICPP'15 overhead models, predict PM
/// utilization, run declarative scenarios and talk to (or embed) the
/// voprofd serving daemon:
///
///   xensim/spec      — machine/VM/workload specs (the vocabulary)
///   scenario         — declarative INI scenarios + replicated runs
///   core/trainer     — Table II sweep -> Sec. V model fitting
///   core/predictor   — prediction-accuracy evaluation (Sec. VI)
///   core/serialize   — model file load/save (Result + throwing shims)
///   runner           — parallel sweep runner + process-wide ModelCache
///   serve            — voprof-api-1 client/server (voprofd)
///
/// Everything here follows semver-style stability (see docs/API.md):
/// breaking a type or function re-exported by this header requires a
/// major version bump. Deeper headers (voprof/xensim/*.hpp,
/// voprof/monitor/*.hpp, voprof/placement/*.hpp, ...) remain available
/// but are internal: include them directly at your own risk — they may
/// change in any release. The examples/ directory demonstrates both
/// tiers.

#include "voprof/core/predictor.hpp"
#include "voprof/core/serialize.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/runner/runner.hpp"
#include "voprof/scenario/scenario.hpp"
#include "voprof/serve/api.hpp"
#include "voprof/serve/daemon.hpp"
#include "voprof/serve/service.hpp"
#include "voprof/serve/socket.hpp"
#include "voprof/xensim/spec.hpp"
