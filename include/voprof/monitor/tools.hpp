#pragma once
/// \file tools.hpp
/// The measurement tools of Table I, with exactly the capability matrix
/// the paper lists and a per-tool self-overhead. No single tool covers
/// every (entity, metric) cell — that is the paper's motivation for the
/// combined measurement script (Sec. III-A).
///
///   tool      VM:cpu mem io bw | Dom0:cpu mem io bw | PM/hyp:cpu mem io bw
///   xentop      Y     -  Y  Y  |   Y      -   Y  Y  |   -       -   -  -
///   top         Y*    Y* -  -  |   Y      Y   -  -  |   -       -   -  -
///   mpstat      Y*    -  -  -  |   -      -   -  -  |   Y       -   -  -
///   ifconfig    -     -  -  Y* |   -      -   -  -  |   -       -   -  Y
///   vmstat      Y*    Y* Y* -  |   -      Y   -  -  |   Y       -   Y  -
///   (* = must run inside the VM)

#include <optional>
#include <string>

#include "voprof/monitor/sample.hpp"
#include "voprof/xensim/counters.hpp"

namespace voprof::mon {

/// Where a tool instance executes; determines whose CPU its overhead
/// perturbs (Table I's footnote: some tools must run inside the VM).
enum class ToolHost { kDom0, kGuest };

/// Metric identifiers matching the paper's four columns.
enum class Metric { kCpu, kMem, kIo, kBw };

/// Entity classes of Table I's column groups.
enum class EntityClass { kVm, kDom0, kPmOrHypervisor };

/// Static description of one measurement tool.
struct ToolInfo {
  std::string name;
  ToolHost host = ToolHost::kDom0;
  /// CPU the tool consumes on its host while running, % of one core.
  double self_cpu_pct = 0.0;
};

/// Base class: a tool can answer some (entity, metric) cells from a
/// pair of machine snapshots. Cells outside its capability return
/// nullopt (the paper's '-' entries).
class Tool {
 public:
  virtual ~Tool() = default;

  [[nodiscard]] virtual const ToolInfo& info() const noexcept = 0;

  /// Whether this tool can observe `metric` for `entity` (Table I).
  [[nodiscard]] virtual bool can_measure(EntityClass entity,
                                         Metric metric) const noexcept = 0;

  /// Read a VM cell; `vm_name` selects the guest. nullopt if
  /// unsupported.
  [[nodiscard]] virtual std::optional<double> read_vm(
      const sim::MachineSnapshot& prev, const sim::MachineSnapshot& cur,
      const std::string& vm_name, Metric metric) const;

  /// Read a Dom0 cell.
  [[nodiscard]] virtual std::optional<double> read_dom0(
      const sim::MachineSnapshot& prev, const sim::MachineSnapshot& cur,
      Metric metric) const;

  /// Read a PM / hypervisor cell (the paper folds the two together in
  /// Table I: mpstat reads hypervisor CPU, vmstat/ifconfig read PM I/O
  /// and bandwidth).
  [[nodiscard]] virtual std::optional<double> read_pm(
      const sim::MachineSnapshot& prev, const sim::MachineSnapshot& cur,
      Metric metric) const;

 protected:
  [[nodiscard]] static double interval_s(const sim::MachineSnapshot& prev,
                                         const sim::MachineSnapshot& cur);
};

/// xentop: per-domain CPU/IO/BW from hypervisor accounting, run in Dom0.
class XenTop final : public Tool {
 public:
  [[nodiscard]] const ToolInfo& info() const noexcept override;
  [[nodiscard]] bool can_measure(EntityClass, Metric) const noexcept override;
  [[nodiscard]] std::optional<double> read_vm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              const std::string&,
                                              Metric) const override;
  [[nodiscard]] std::optional<double> read_dom0(const sim::MachineSnapshot&,
                                                const sim::MachineSnapshot&,
                                                Metric) const override;
};

/// top: CPU/memory of processes; must run inside the VM for guest
/// metrics (the paper uses it for VM memory).
class TopTool final : public Tool {
 public:
  [[nodiscard]] const ToolInfo& info() const noexcept override;
  [[nodiscard]] bool can_measure(EntityClass, Metric) const noexcept override;
  [[nodiscard]] std::optional<double> read_vm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              const std::string&,
                                              Metric) const override;
  [[nodiscard]] std::optional<double> read_dom0(const sim::MachineSnapshot&,
                                                const sim::MachineSnapshot&,
                                                Metric) const override;
};

/// mpstat: hypervisor CPU (the paper runs it "in Xen").
class MpStat final : public Tool {
 public:
  [[nodiscard]] const ToolInfo& info() const noexcept override;
  [[nodiscard]] bool can_measure(EntityClass, Metric) const noexcept override;
  [[nodiscard]] std::optional<double> read_vm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              const std::string&,
                                              Metric) const override;
  [[nodiscard]] std::optional<double> read_pm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              Metric) const override;
};

/// ifconfig: NIC byte counters -> PM bandwidth (and VM bandwidth when
/// run inside the guest).
class IfConfig final : public Tool {
 public:
  [[nodiscard]] const ToolInfo& info() const noexcept override;
  [[nodiscard]] bool can_measure(EntityClass, Metric) const noexcept override;
  [[nodiscard]] std::optional<double> read_vm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              const std::string&,
                                              Metric) const override;
  [[nodiscard]] std::optional<double> read_pm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              Metric) const override;
};

/// vmstat: PM CPU/IO plus guest metrics when run inside the VM.
class VmStat final : public Tool {
 public:
  [[nodiscard]] const ToolInfo& info() const noexcept override;
  [[nodiscard]] bool can_measure(EntityClass, Metric) const noexcept override;
  [[nodiscard]] std::optional<double> read_vm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              const std::string&,
                                              Metric) const override;
  [[nodiscard]] std::optional<double> read_dom0(const sim::MachineSnapshot&,
                                                const sim::MachineSnapshot&,
                                                Metric) const override;
  [[nodiscard]] std::optional<double> read_pm(const sim::MachineSnapshot&,
                                              const sim::MachineSnapshot&,
                                              Metric) const override;
};

}  // namespace voprof::mon
