#pragma once
/// \file script.hpp
/// The combined measurement script of Sec. III-A: drives all five tools
/// synchronously at a configurable interval (default 1 s) for a
/// configurable duration (default 2 min), records every entity's four
/// metrics as time series, and reports the averages the paper reports.
///
/// Like the paper's script it also *perturbs* the system: while running
/// it charges each tool's CPU self-overhead to the domain hosting it
/// (Dom0 for xentop/mpstat/vmstat/ifconfig, each guest for the per-VM
/// top instance) unless overhead injection is disabled.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "voprof/monitor/sample.hpp"
#include "voprof/monitor/tools.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/time_series.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/engine.hpp"

namespace voprof::mon {

/// Per-entity recorded series (one per metric).
struct SeriesSet {
  util::TimeSeries cpu;
  util::TimeSeries mem;
  util::TimeSeries io;
  util::TimeSeries bw;

  [[nodiscard]] UtilSample mean() const noexcept {
    return UtilSample{cpu.mean(), mem.mean(), io.mean(), bw.mean()};
  }
};

/// Result of one monitored run.
class MeasurementReport {
 public:
  /// Canonical entity keys: each VM by name, plus kDom0Key, kHypKey and
  /// kPmKey.
  static constexpr const char* kDom0Key = "Domain-0";
  static constexpr const char* kHypKey = "hypervisor";
  static constexpr const char* kPmKey = "PM";

  [[nodiscard]] bool has(const std::string& key) const noexcept;
  [[nodiscard]] const SeriesSet& series(const std::string& key) const;
  [[nodiscard]] SeriesSet& series_mutable(const std::string& key);
  /// 2-minute-style average of every metric for one entity.
  [[nodiscard]] UtilSample mean(const std::string& key) const;
  /// Per-metric percentile (q in [0,100]) over the recorded samples —
  /// peak-oriented views for capacity questions ("what does this VM's
  /// p95 CPU look like"), which averages hide.
  [[nodiscard]] UtilSample percentile(const std::string& key,
                                      double q) const;
  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t sample_count() const noexcept;

 private:
  std::map<std::string, SeriesSet> entities_;
};

/// Export a report's full synchronized time series as CSV: one row per
/// sample, columns t_s plus <entity>_{cpu,mem,io,bw} for every entity
/// (the format the paper's measurement script logged, and what
/// wl::trace_from_csv consumes back, with prefix "<entity>_").
[[nodiscard]] util::CsvDocument report_to_csv(const MeasurementReport& report);

/// Configuration of the measurement run.
struct MonitorConfig {
  /// Sampling interval (paper: every second).
  util::SimMicros interval = util::seconds(1.0);
  /// Inject tool self-overhead into the measured domains.
  bool inject_overhead = true;
};

/// Synchronized monitor for one PM.
class MonitorScript {
 public:
  /// Binds to one machine of a cluster. Does not start sampling yet.
  MonitorScript(sim::Engine& engine, sim::PhysicalMachine& machine,
                MonitorConfig config = {});
  ~MonitorScript();

  MonitorScript(const MonitorScript&) = delete;
  MonitorScript& operator=(const MonitorScript&) = delete;

  /// Install tool overheads and schedule periodic sampling starting one
  /// interval from now. May be called once.
  void start();
  /// Remove overheads and stop recording (idempotent).
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Run the paper's standard measurement: start, simulate `duration`,
  /// stop, and return the report. Convenience wrapper used by the
  /// benches ("every second for 2 minutes ... report the average").
  [[nodiscard]] const MeasurementReport& measure(
      util::SimMicros duration = util::seconds(120.0));

  [[nodiscard]] const MeasurementReport& report() const noexcept {
    return report_;
  }

  /// Total Dom0 CPU self-overhead of the Dom0-hosted tools, % of a core.
  [[nodiscard]] double dom0_overhead_pct() const noexcept;
  /// Per-guest CPU self-overhead (the in-VM top/vmstat agents).
  [[nodiscard]] double guest_overhead_pct() const noexcept;

 private:
  class GuestAgent;  // in-VM top/vmstat instance

  void take_sample();

  sim::Engine& engine_;
  sim::PhysicalMachine& machine_;
  MonitorConfig config_;
  MeasurementReport report_;

  std::vector<std::unique_ptr<Tool>> tools_;
  std::vector<std::unique_ptr<GuestAgent>> agents_;
  int dom0_overhead_id_ = -1;
  bool running_ = false;
  bool started_once_ = false;
  /// Native periodic sampling timer; cancelled by stop(), after which
  /// the engine never invokes the callback again.
  sim::TimerId timer_id_ = sim::kInvalidTimer;
  /// Snapshot pair, refreshed in place each interval (snapshot_into)
  /// and swapped instead of copied — steady-state sampling allocates
  /// nothing.
  sim::MachineSnapshot prev_;
  sim::MachineSnapshot cur_;
};

}  // namespace voprof::mon
