#pragma once
/// \file sample.hpp
/// Utilization readings: the four metrics of the paper (CPU %, memory
/// MiB, disk I/O blocks/s, network bandwidth Kb/s) for one entity over
/// one sampling interval, and helpers to derive them from counter
/// snapshots.

#include "voprof/xensim/counters.hpp"

namespace voprof::mon {

/// One entity's utilization over one interval.
struct UtilSample {
  double cpu_pct = 0.0;
  double mem_mib = 0.0;
  double io_blocks_per_s = 0.0;
  double bw_kbps = 0.0;

  UtilSample& operator+=(const UtilSample& o) noexcept {
    cpu_pct += o.cpu_pct;
    mem_mib += o.mem_mib;
    io_blocks_per_s += o.io_blocks_per_s;
    bw_kbps += o.bw_kbps;
    return *this;
  }
  [[nodiscard]] UtilSample operator+(const UtilSample& o) const noexcept {
    UtilSample r = *this;
    r += o;
    return r;
  }
  [[nodiscard]] UtilSample operator*(double s) const noexcept {
    return UtilSample{cpu_pct * s, mem_mib * s, io_blocks_per_s * s,
                      bw_kbps * s};
  }
};

/// Utilization of a domain between two cumulative-counter snapshots
/// taken `interval_s` seconds apart. Bandwidth counts tx + rx (what
/// ifconfig byte counters report).
[[nodiscard]] UtilSample domain_util(const sim::DomainCounters& prev,
                                     const sim::DomainCounters& cur,
                                     double interval_s);

/// Physical-device utilization between two snapshots.
struct DeviceUtil {
  double disk_blocks_per_s = 0.0;
  double nic_kbps = 0.0;
};
[[nodiscard]] DeviceUtil device_util(const sim::DeviceCounters& prev,
                                     const sim::DeviceCounters& cur,
                                     double interval_s);

}  // namespace voprof::mon
