#pragma once
/// \file app.hpp
/// RUBiS-style two-tier web application model (Sec. VI, Fig. 6): a web
/// front-end VM on PM1, a database VM on PM2, and a client emulator on
/// a third machine driving 300-700 simultaneous clients in closed loop
/// (send -> wait for reply -> think).
///
/// Requests flow as tagged network flows through the simulated Xen
/// stack, so every message pays the real virtualization costs
/// (netback CPU in Dom0, hypervisor traps, NIC bytes). Request
/// processing consumes per-request CPU in the tiers and per-query disk
/// I/O in the database; when the hosting PM cannot grant the demanded
/// CPU (the overloaded-placement scenarios of Fig. 10), service rates
/// drop, queues build and throughput falls — the mechanism behind the
/// paper's VOA-vs-VOU comparison.

#include <cstdint>
#include <string>

#include "voprof/util/rng.hpp"
#include "voprof/xensim/process.hpp"

namespace voprof::rubis {

/// Flow tags used between the RUBiS components.
enum FlowTag : int {
  kTagRequest = 101,     ///< client -> web
  kTagResponse = 102,    ///< web -> client
  kTagDbQuery = 103,     ///< web -> db
  kTagDbResponse = 104,  ///< db -> web
};

/// Per-request cost model (calibrated so 500 clients load the web VM
/// to roughly half its VCPU, matching the paper's mid-range scenario).
struct RubisCosts {
  double think_time_s = 5.0;       ///< mean client think time
  double request_kbits = 2.0;      ///< client -> web payload
  double response_kbits = 12.0;    ///< web -> client payload
  double web_cpu_ms_per_req = 7.0; ///< front-end service demand
  double db_fraction = 0.85;       ///< share of requests hitting the DB
  double query_kbits = 1.5;        ///< web -> db payload
  double db_response_kbits = 6.0;  ///< db -> web payload
  double db_cpu_ms_per_query = 3.5;
  double db_io_blocks_per_query = 0.4;
  /// Client-side CPU per request (request generation + bookkeeping).
  double client_cpu_ms_per_req = 0.3;
};

/// Web front-end tier (GuestProcess living in the web VM).
class WebTier final : public sim::GuestProcess {
 public:
  /// \param db  address of the database VM
  WebTier(RubisCosts costs, sim::NetTarget db, sim::NetTarget client,
          std::uint64_t seed = 11);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  void granted(double cpu_frac, util::SimMicros now, double dt) override;
  void on_receive(double kbits, int tag, util::SimMicros now) override;
  [[nodiscard]] std::string label() const override { return "rubis-web"; }

  /// Requests queued for CPU service (diagnostics).
  [[nodiscard]] double queue_length() const noexcept { return queue_; }
  /// Requests forwarded to the DB and not yet answered.
  [[nodiscard]] double awaiting_db() const noexcept { return awaiting_db_; }
  [[nodiscard]] double total_served() const noexcept { return served_; }

 private:
  RubisCosts costs_;
  sim::NetTarget db_;
  sim::NetTarget client_;
  util::Rng rng_;
  double queue_ = 0.0;        ///< requests waiting for web CPU
  double awaiting_db_ = 0.0;  ///< requests parked on the DB round-trip
  double db_done_ = 0.0;      ///< DB answers ready to return to clients
  double wanted_rate_ = 0.0;  ///< requests/s requested this tick
  double drain_rate_ = 0.0;   ///< DB answers/s returned this tick
  double served_ = 0.0;       ///< responses sent (cumulative)
};

/// Database tier (GuestProcess living in the DB VM).
class DbTier final : public sim::GuestProcess {
 public:
  DbTier(RubisCosts costs, sim::NetTarget web, std::uint64_t seed = 12);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  void granted(double cpu_frac, util::SimMicros now, double dt) override;
  void on_receive(double kbits, int tag, util::SimMicros now) override;
  [[nodiscard]] std::string label() const override { return "rubis-db"; }

  [[nodiscard]] double queue_length() const noexcept { return queue_; }
  [[nodiscard]] double total_served() const noexcept { return served_; }

 private:
  RubisCosts costs_;
  sim::NetTarget web_;
  util::Rng rng_;
  double queue_ = 0.0;
  double wanted_rate_ = 0.0;
  double served_ = 0.0;
};

/// Closed-loop client emulator (GuestProcess living in a VM on the
/// client machine). Tracks completed requests for throughput metrics.
class ClientEmulator final : public sim::GuestProcess {
 public:
  ClientEmulator(RubisCosts costs, sim::NetTarget web, int clients,
                 std::uint64_t seed = 13);

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros now,
                                          double dt) override;
  void granted(double cpu_frac, util::SimMicros now, double dt) override;
  void on_receive(double kbits, int tag, util::SimMicros now) override;
  [[nodiscard]] std::string label() const override { return "rubis-client"; }

  /// Change the number of emulated clients (the paper ramps 300->700).
  void set_clients(int clients);
  [[nodiscard]] int clients() const noexcept { return clients_; }

  /// Completed request count since construction.
  [[nodiscard]] double completed() const noexcept { return completed_; }
  /// Requests in flight (sent, no response yet).
  [[nodiscard]] double in_flight() const noexcept { return in_flight_; }
  /// Clients currently in think state.
  [[nodiscard]] double thinking() const noexcept { return thinking_; }

  /// Throughput over a window: (completed_now - completed_then) / dt.
  [[nodiscard]] double completed_since(double mark) const noexcept {
    return completed_ - mark;
  }

 private:
  RubisCosts costs_;
  sim::NetTarget web_;
  util::Rng rng_;
  int clients_;
  double thinking_;   ///< clients currently in think state
  double send_rate_ = 0.0;  ///< requests/s emitted this tick
  double in_flight_ = 0.0;
  double completed_ = 0.0;
};

}  // namespace voprof::rubis
