#pragma once
/// \file deployment.hpp
/// Wiring helpers for the Fig. 6 topology: web tier on one PM, DB tier
/// on another, client emulator on a third machine, all connected
/// through the simulated network.

#include <string>
#include <vector>

#include "voprof/rubis/app.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::rubis {

/// Handles to one deployed RUBiS instance. Pointers are owned by the
/// VMs; valid while the VMs exist.
struct RubisInstance {
  WebTier* web = nullptr;
  DbTier* db = nullptr;
  ClientEmulator* client = nullptr;
  std::string web_vm;
  std::string db_vm;
  std::string client_vm;
};

/// Options for one instance.
struct DeployOptions {
  int clients = 500;
  RubisCosts costs;
  /// Suffix appended to VM names so several instances can coexist
  /// (the paper runs up to three RUBiS sets, Sec. VI-A).
  std::string suffix;
  sim::VmSpec vm_spec;  ///< template for web/db VMs (name is overridden)
  std::uint64_t seed = 20;
};

/// Deploy one RUBiS instance: creates web/db/client VMs on the given
/// machines of `cluster` and attaches the tier processes.
[[nodiscard]] RubisInstance deploy_rubis(sim::Cluster& cluster,
                                         std::size_t pm_web,
                                         std::size_t pm_db,
                                         std::size_t pm_client,
                                         const DeployOptions& options);

/// Attach the web/db tier processes of one instance to pre-existing
/// VMs (used by the placement experiments, where VM->PM assignment is
/// decided by the placer first). The client VM is created on
/// `pm_client`.
[[nodiscard]] RubisInstance wire_rubis(sim::Cluster& cluster,
                                       std::size_t pm_web, std::size_t pm_db,
                                       const std::string& web_vm,
                                       const std::string& db_vm,
                                       std::size_t pm_client,
                                       const DeployOptions& options);

/// The paper's variable-rate protocol (Sec. VI-A): "created a variable
/// rate workload for RUBiS by increasing the number of clients over a
/// ten minute period. The system was loaded between 300 and 700
/// simultaneous clients." Schedules stepwise client-count increases on
/// the engine; the emulator ramps from `from` to `to` over `duration`
/// in `steps` equal increments.
void schedule_client_ramp(sim::Engine& engine, ClientEmulator& client,
                          int from, int to, util::SimMicros duration,
                          int steps = 4);

}  // namespace voprof::rubis
