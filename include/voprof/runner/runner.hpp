#pragma once
/// \file runner.hpp
/// Deterministic parallel experiment runner.
///
/// The paper's measurement study and evaluation are built from sweeps
/// — Table II's intensity x resource grid, the Fig. 2-5 VM-count
/// scenarios, the Fig. 7-10 trace-driven predictions — whose cells are
/// independent simulations. This layer fans those cells across a
/// util::TaskPool while keeping results bit-identical for ANY worker
/// count:
///
///  * every task's RNG seed is a pure function of (base_seed,
///    task_index) via util::seed_for — no shared generator state, no
///    dependence on which worker runs first;
///  * results are collected at their task index and aggregated in
///    index order (util::RunningStats::merge is order-fixed), so a
///    `--jobs 8` sweep writes byte-identical CSV to a `--jobs 1` run.
///
/// Benches parse `--jobs N` with options_from_cli (default: all
/// hardware threads; `--jobs 1` reproduces the historical serial
/// path) and drive their cells through SweepRunner::map.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "voprof/core/trainer.hpp"
#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/util/rng.hpp"
#include "voprof/util/task_pool.hpp"
#include "voprof/workloads/levels.hpp"

namespace voprof::runner {

/// Per-task seed derivation (SplitMix64 mixing); re-exported from
/// util so scenario replications and the runner share one scheme.
using util::seed_for;

/// How a sweep executes. jobs = 0 means "all hardware threads".
struct RunOptions {
  int jobs = 0;
  /// When non-empty, the obs trace collector is enabled with this
  /// output path (options_from_cli applies it; same effect as the
  /// VOPROF_TRACE env knob).
  std::string trace_path;
};

/// Parse the runner flags of a bench/tool command line (`--jobs N`,
/// `--trace FILE`). Throws util::ContractViolation on unknown flags or
/// malformed values, so typos never silently run serial. Also checks
/// VOPROF_TRACE and enables the trace collector when either source
/// names an output file.
[[nodiscard]] RunOptions options_from_cli(int argc, const char* const* argv);

/// A TaskPool wrapped with the index-ordered mapping discipline the
/// determinism guarantee rests on.
class SweepRunner {
 public:
  explicit SweepRunner(RunOptions opts = {})
      : pool_(opts.jobs <= 0 ? 0 : static_cast<std::size_t>(opts.jobs)) {}

  [[nodiscard]] std::size_t jobs() const noexcept { return pool_.jobs(); }

  /// Evaluate fn(i) for i in [0, n); results come back ordered by i.
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t n, Fn&& fn) {
    VOPROF_WALL_SPAN("runner", "SweepRunner.map");
    cells_counter().add(n);
    return pool_.parallel_map(n, std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) {
    VOPROF_WALL_SPAN("runner", "SweepRunner.for_each");
    cells_counter().add(n);
    pool_.parallel_for_each(n, std::forward<Fn>(fn));
  }

  [[nodiscard]] util::TaskPool& pool() noexcept { return pool_; }

 private:
  static obs::Counter& cells_counter() {
    static obs::Counter& c =
        obs::Registry::global().counter("runner.cells");
    return c;
  }

  util::TaskPool pool_;
};

// --- Micro-benchmark sweep (the runner demo) --------------------------

/// The Table II sweep as a parallel workload: one task per
/// (vm_count, workload kind, intensity level) cell, each on a fresh
/// simulated testbed seeded with seed_for(base_seed, cell_index).
struct MicroSweepConfig {
  std::vector<int> vm_counts = {1};
  std::vector<wl::WorkloadKind> kinds = {
      wl::WorkloadKind::kCpu, wl::WorkloadKind::kMem, wl::WorkloadKind::kIo,
      wl::WorkloadKind::kBw};
  /// Intensity levels per kind (<= wl::kLevelCount).
  std::size_t levels = wl::kLevelCount;
  util::SimMicros duration = util::seconds(30.0);
  std::uint64_t base_seed = 42;
  /// Append a final row (kind = -1) merging every cell's streaming
  /// stats via RunningStats::merge in cell order.
  bool summary_row = true;
  sim::MachineSpec machine;
  sim::VmSpec vm;
  sim::CostModel costs;
};

/// Run the sweep and return one CSV row per cell with the mean (and
/// selected stddev) utilizations over the cell's 1 s samples. The
/// document is byte-identical for every RunOptions::jobs value.
[[nodiscard]] util::CsvDocument run_micro_sweep(const MicroSweepConfig& config,
                                                const RunOptions& opts);

// --- Trained-model cache ----------------------------------------------

/// Process-wide immutable cache of Sec. VI-A trainings, so a binary
/// that reproduces several figures trains the Table II model once and
/// shares it instead of re-running the sweep per figure. Thread-safe;
/// entries are never evicted or mutated.
class ModelCache {
 public:
  /// Returns the models for (method, cell duration, seed), training
  /// them on first use. `jobs` parallelizes that first training only
  /// — the fitted models are independent of it.
  [[nodiscard]] const model::TrainedModels& get(model::RegressionMethod method,
                                                util::SimMicros duration,
                                                std::uint64_t seed, int jobs);

  /// Trainings performed so far (for tests: N gets == 1 training).
  [[nodiscard]] std::size_t trainings() const noexcept;

 private:
  struct Key {
    int method;
    util::SimMicros duration;
    std::uint64_t seed;
    [[nodiscard]] bool operator<(const Key& o) const noexcept {
      if (method != o.method) return method < o.method;
      if (duration != o.duration) return duration < o.duration;
      return seed < o.seed;
    }
  };
  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<const model::TrainedModels>> cache_;
  std::size_t trainings_ = 0;
};

/// The shared cache instance used by the figure benches.
[[nodiscard]] ModelCache& model_cache();

}  // namespace voprof::runner
