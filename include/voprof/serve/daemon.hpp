#pragma once
/// \file daemon.hpp
/// voprofd's transport shell: a single-threaded poll() event loop that
/// accepts Unix-socket connections, frames NDJSON request lines into
/// serve::Service and writes the responses back as they complete.
///
/// Threading: the event loop owns every socket and connection buffer;
/// Service workers never touch an fd. A worker finishing a request
/// pushes (connection id, response line) onto a mutex-protected
/// completion queue and writes one byte to a self-pipe, which wakes
/// poll(); the loop then moves the line into the connection's write
/// buffer. SIGTERM/SIGINT write to the same pipe from the (optional)
/// signal handler, so the loop has exactly one wakeup mechanism.
///
/// Shutdown: a signal, request_stop() or a `drain` request flips the
/// service into drain mode. The loop then stops accepting connections,
/// keeps serving reads/writes until every admitted request has
/// produced its response AND every response byte has been flushed,
/// writes the final metrics/trace artifacts and removes the socket.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "voprof/serve/service.hpp"
#include "voprof/serve/socket.hpp"
#include "voprof/util/cli.hpp"
#include "voprof/util/result.hpp"

namespace voprof::serve {

struct DaemonConfig {
  /// Filesystem path of the Unix-domain listening socket (required).
  std::string socket_path;
  ServiceConfig service;
  /// Handle SIGTERM/SIGINT as graceful drain. Tests that run the
  /// daemon in-process turn this off and use request_stop().
  bool install_signal_handlers = true;
  /// When non-empty, write a JSON snapshot of the obs metrics registry
  /// here during shutdown (the daemon's "final flush").
  std::string metrics_out;
  int listen_backlog = 16;
  /// Reject a request line that exceeds this many bytes.
  std::size_t max_line_bytes = 1 << 20;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind the socket and run the event loop until shutdown. Blocks;
  /// returns true after a clean drain, or Errc::kIo when the socket
  /// cannot be set up.
  [[nodiscard]] util::Result<bool> run();

  /// Thread-safe: begin a graceful drain-and-exit (same effect as
  /// SIGTERM). Safe to call before or during run().
  void request_stop();

  /// True while run() is inside the event loop (the listening socket
  /// is bound and accepting). Tests poll this before connecting.
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] const DaemonConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Conn;

  void wake() noexcept;
  void accept_new_connections();
  void read_conn(int id, Conn& conn);
  void flush_conn(Conn& conn);
  void handle_completions();
  void submit_conn_line(int id, const std::string& line);
  [[nodiscard]] bool drained() const;
  void final_flush();

  DaemonConfig config_;
  Fd listen_fd_;
  Fd wake_r_;
  Fd wake_w_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  mutable std::mutex completions_mutex_;
  std::vector<std::pair<int, std::string>> completions_;

  std::map<int, std::unique_ptr<Conn>> conns_;
  int next_conn_id_ = 1;

  /// Declared last on purpose: the Service destructor drains the
  /// worker pool, and workers hold responders that lock
  /// completions_mutex_ — the service must die before anything a
  /// responder touches.
  Service service_;
};

/// Build a DaemonConfig from the shared `serve` flag set (--socket,
/// --jobs, --queue-capacity, --default-deadline-ms, --max-deadline-ms,
/// --train-duration, --seed, --inner-jobs, --enable-test-ops,
/// --metrics-out). Validation failures are Errc::kValidation.
[[nodiscard]] util::Result<DaemonConfig> daemon_config_from_args(
    const util::CliArgs& args);

/// Run a daemon to completion with lifecycle lines on stderr; the
/// shared implementation behind `voprofd` and `voprofctl serve`.
/// Returns a process exit code.
[[nodiscard]] int daemon_main(const DaemonConfig& config);

}  // namespace voprof::serve
