#pragma once
/// \file api.hpp
/// The versioned public request/response schema of voprofd
/// (`voprof-api-1`), shared by the daemon, `voprofctl serve|request`
/// and the tests — exactly one serialization of the wire format.
///
/// Transport framing is newline-delimited JSON: one request object per
/// line, one response object per line, matched by `id`. Responses may
/// arrive out of request order (the daemon executes on a worker pool),
/// so clients that pipeline requests must correlate by id.
///
/// Request:
///   {"api": "voprof-api-1",        // optional; rejected if mismatched
///    "id": "r1",                   // optional, echoed verbatim
///    "op": "predict",              // required
///    "deadline_ms": 2000,          // optional, 0/absent = server default
///    "params": { ... }}            // optional, op-specific
///
/// Response (success / error):
///   {"api": "voprof-api-1", "id": "r1", "ok": true,  "result": {...}}
///   {"api": "voprof-api-1", "id": "r1", "ok": false,
///    "error": {"code": "overloaded", "message": "..."}}
///
/// Error codes are part of the API contract: `bad_request`,
/// `overloaded` (admission queue full — retry later), `timed_out`
/// (deadline expired), `shutting_down` (daemon is draining),
/// `internal`.

#include <cstdint>
#include <string>

#include "voprof/util/json.hpp"
#include "voprof/util/result.hpp"

namespace voprof::serve {

/// Schema identifier carried by every request and response.
inline constexpr const char* kApiVersion = "voprof-api-1";

/// The operations voprofd accepts. kSleep is a diagnostics op only
/// served when ServiceConfig::enable_test_ops is set (tests and the
/// CI smoke use it to hold workers busy deterministically).
enum class Op {
  kPredict,
  kSimulate,
  kTrain,
  kStatus,
  kDrain,
  kSleep,
};

/// Wire name of an op ("predict", ...).
[[nodiscard]] const char* op_name(Op op) noexcept;
/// Inverse; Errc::kValidation error for unknown names.
[[nodiscard]] util::Result<Op> op_from_name(const std::string& name);

/// Structured error codes of the response schema.
enum class ApiError {
  kBadRequest,
  kOverloaded,
  kTimedOut,
  kShuttingDown,
  kInternal,
};

/// Wire name of an error code ("bad_request", ...).
[[nodiscard]] const char* api_error_name(ApiError code) noexcept;

/// One parsed request envelope.
struct Request {
  std::string id;                ///< "" when the client sent none
  Op op = Op::kStatus;
  std::int64_t deadline_ms = 0;  ///< 0 = use the server default
  util::Json params;             ///< object; empty object when absent
};

/// Parse one NDJSON request line against the voprof-api-1 envelope.
/// Errors carry Errc::kParse (malformed JSON) or Errc::kValidation
/// (well-formed JSON violating the schema).
[[nodiscard]] util::Result<Request> parse_request(const std::string& line);

/// Serialize a success response (compact, single line, no trailing
/// newline — the transport adds framing).
[[nodiscard]] std::string ok_response(const std::string& id,
                                      util::Json result);

/// Serialize an error response.
[[nodiscard]] std::string error_response(const std::string& id, ApiError code,
                                         const std::string& message);

/// Map a loader/validation Error onto the closest ApiError (parse /
/// validation / io / unsupported -> bad_request, internal -> internal).
[[nodiscard]] ApiError api_error_from(const util::Error& err) noexcept;

}  // namespace voprof::serve
