#pragma once
/// \file service.hpp
/// The transport-independent core of voprofd: admits voprof-api-1
/// requests into a bounded queue, executes them on a util::TaskPool
/// and delivers serialized responses through a callback. The daemon
/// (daemon.hpp) adds the Unix-socket transport; tests and `voprofctl`
/// exercise this class directly.
///
/// Concurrency model:
///  * Admission is a single atomic in-flight count (queued + running)
///    checked against ServiceConfig::queue_capacity. A submit that
///    would exceed the bound is rejected with `overloaded`
///    immediately, on the calling thread — the service never blocks
///    the caller on a full queue.
///  * Every admitted request carries an absolute deadline (the
///    client's deadline_ms clamped to max_deadline_ms, or the server
///    default). The deadline is re-checked when a worker picks the
///    request up — work that expired while queued is answered
///    `timed_out` without running — and at cooperative checkpoints
///    inside the long handlers (between simulate replications, between
///    sleep slices).
///  * begin_drain() flips the service into drain mode: new work is
///    rejected with `shutting_down`, everything already admitted runs
///    to completion, and wait_idle() blocks until the last response
///    has been produced. This is the SIGTERM path of voprofd.
///  * Control ops (`status`, `drain`) bypass the queue and execute
///    inline on the submitting thread: they stay responsive while the
///    workers are saturated, and they do not appear in the
///    accepted/completed counters.
///
/// The responder callback is invoked exactly once per request: on the
/// submitting thread for rejections and control ops, on a worker
/// thread otherwise. It must be thread-safe against the caller's own
/// context and should only hand the line to the transport.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "voprof/core/trainer.hpp"
#include "voprof/scenario/scenario.hpp"
#include "voprof/serve/api.hpp"
#include "voprof/util/json.hpp"
#include "voprof/util/task_pool.hpp"

namespace voprof::serve {

/// The `predict` result object of voprof-api-1. Shared by the daemon
/// and `voprofctl predict --format json`, so a prediction served over
/// the socket and one computed against the library in-process are
/// byte-identical for the same models and inputs.
[[nodiscard]] util::Json predict_result_json(
    const model::TrainedModels& models, const model::UtilVec& sum,
    int n_vms);

/// The `simulate` result object of voprof-api-1 (per-machine,
/// per-entity aggregate stats). Same sharing contract as above.
[[nodiscard]] util::Json simulate_result_json(
    const scenario::ReplicatedScenarioResult& result);

/// Tunables of one Service instance. The defaults suit an interactive
/// daemon; tests shrink capacity/jobs to force the edge cases.
struct ServiceConfig {
  /// Worker threads executing requests (0 = all hardware threads).
  /// Workers are real threads even when jobs == 1 (the pool runs in
  /// Threading::kAlwaysThreaded mode) so submit() never executes a
  /// request inline.
  int jobs = 0;
  /// Bound on admitted-but-unfinished requests (queued + running).
  std::size_t queue_capacity = 64;
  /// Deadline applied when a request does not name one (ms).
  std::int64_t default_deadline_ms = 30000;
  /// Upper clamp on client-supplied deadlines (ms).
  std::int64_t max_deadline_ms = 600000;
  /// Training-sweep cell duration backing `predict`/`train` when the
  /// request does not override it (seconds; the paper trains on
  /// 2-minute cells).
  double train_duration_s = 120.0;
  /// Seed for trainings that do not name one.
  std::uint64_t default_seed = 42;
  /// Parallelism *inside* one request (training sweep fan-out,
  /// simulate replications). Kept at 1 so concurrent requests share
  /// the machine fairly; raise it for a single-tenant daemon.
  int inner_jobs = 1;
  /// Serve the `sleep` diagnostics op. Off in production; tests and
  /// the CI smoke enable it to hold workers busy deterministically.
  bool enable_test_ops = false;
};

class Service {
 public:
  explicit Service(ServiceConfig config = {});
  /// Drains (rejecting new work) and waits for in-flight requests.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Receives the serialized response line (no trailing newline).
  using Responder = std::function<void(std::string)>;

  /// Parse one NDJSON request line, admit it and eventually respond.
  /// Never throws and never blocks on a full queue: parse errors,
  /// overload and drain rejections invoke `done` before returning.
  void submit_line(const std::string& line, Responder done);

  /// As submit_line for an already-parsed request.
  void submit(Request req, Responder done);

  /// Blocking convenience: submit_line and wait for the response.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Stop admitting work; already-admitted requests still complete.
  void begin_drain();
  [[nodiscard]] bool draining() const noexcept;
  /// Block until no admitted request remains unfinished.
  void wait_idle();

  /// Admitted requests not yet responded to (queued + running).
  [[nodiscard]] std::size_t in_flight() const noexcept;
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

  /// Lifetime totals, mirrored into the obs registry as serve.*.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t rejected_shutting_down = 0;
    std::uint64_t bad_requests = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  void run_request(const Request& req, std::int64_t expires_us,
                   const Responder& done);
  [[nodiscard]] std::string run_control(const Request& req);
  [[nodiscard]] util::Json dispatch(const Request& req,
                                    std::int64_t expires_us);
  [[nodiscard]] util::Json op_predict(const util::Json& params,
                                      std::int64_t expires_us);
  [[nodiscard]] util::Json op_simulate(const util::Json& params,
                                       std::int64_t expires_us);
  [[nodiscard]] util::Json op_train(const util::Json& params,
                                    std::int64_t expires_us);
  [[nodiscard]] util::Json op_sleep(const util::Json& params,
                                    std::int64_t expires_us);
  [[nodiscard]] util::Json status_json() const;
  [[nodiscard]] std::int64_t expiry_for(std::int64_t deadline_ms) const;
  void finish_one();

  ServiceConfig config_;
  util::TaskPool pool_;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> in_flight_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> rejected_overloaded_{0};
  std::atomic<std::uint64_t> rejected_shutting_down_{0};
  std::atomic<std::uint64_t> bad_requests_{0};

  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace voprof::serve
