#pragma once
/// \file socket.hpp
/// Thin Unix-domain stream-socket layer under voprofd: an RAII fd,
/// listen/connect helpers that report failures as util::Result (errno
/// folded into the message), and a small blocking NDJSON client used
/// by `voprofctl request`, the tests and the CI smoke script. The
/// daemon's own non-blocking event loop lives in daemon.cpp; only the
/// pieces both sides of the socket need are declared here.

#include <cstddef>
#include <string>

#include "voprof/util/result.hpp"

namespace voprof::serve {

/// Owning file descriptor (move-only; -1 = empty).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Give up ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Close the current fd (if any) and adopt `fd`.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on a Unix-domain socket path. A stale socket file
/// left by a previous run is unlinked first; any other existing file
/// is an error. Errors carry Errc::kIo with the errno text.
[[nodiscard]] util::Result<Fd> listen_unix(const std::string& path,
                                           int backlog = 16);

/// Connect to a listening Unix-domain socket.
[[nodiscard]] util::Result<Fd> connect_unix(const std::string& path);

/// Blocking single-connection NDJSON client. One instance = one
/// socket; requests may be pipelined (send several lines, then
/// collect the responses and correlate by id — voprofd answers in
/// completion order, not submission order).
class LineClient {
 public:
  /// Connect to the daemon at `path`.
  [[nodiscard]] static util::Result<LineClient> connect(
      const std::string& path);
  /// Adopt an already-connected socket (tests use socketpair-less
  /// in-process setups through this).
  explicit LineClient(Fd fd) noexcept : fd_(std::move(fd)) {}

  /// Send one request line (the trailing newline is added here).
  [[nodiscard]] util::Result<bool> send_line(const std::string& line);
  /// Read the next response line, waiting up to timeout_ms. A timeout
  /// or closed connection is Errc::kIo.
  [[nodiscard]] util::Result<std::string> recv_line(int timeout_ms);
  /// send_line + recv_line.
  [[nodiscard]] util::Result<std::string> roundtrip(const std::string& line,
                                                    int timeout_ms = 60000);

  [[nodiscard]] const Fd& fd() const noexcept { return fd_; }

 private:
  Fd fd_;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace voprof::serve
