#pragma once
/// \file numeric.hpp
/// Locale-independent double <-> text conversion.
///
/// The measurement pipeline round-trips doubles through CSV (trace
/// replay, model serialization) and INI scenario files. Both
/// std::stod and ostream insertion consult the global locale (a
/// de_DE.UTF-8 process parses "1,5" and prints a comma decimal
/// separator) and the default ostream precision truncates doubles to
/// 6-12 significant digits. These helpers use std::to_chars /
/// std::from_chars instead: always the C numeric format, and the
/// shortest representation that parses back to the identical bits.

#include <string>
#include <string_view>

namespace voprof::util {

/// Shortest round-trip decimal representation of `v`: the output,
/// parsed with parse_double, compares bit-identical to `v` (including
/// +/-inf and nan). Never uses a locale-dependent decimal separator.
[[nodiscard]] std::string format_double(double v);

/// Parse the ENTIRE string as a double in the C numeric format
/// (optional leading +/-, decimal point '.', optional exponent,
/// "inf"/"nan" accepted). Surrounding spaces/tabs are tolerated;
/// any other leftover character fails. Returns false (leaving `out`
/// untouched) on empty input, malformed numbers or trailing junk —
/// independent of the global C and C++ locales.
[[nodiscard]] bool parse_double(std::string_view text, double& out) noexcept;

}  // namespace voprof::util
