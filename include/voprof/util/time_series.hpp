#pragma once
/// \file time_series.hpp
/// A timestamped sample series, mirroring the paper's measurement logs:
/// one value per sampling interval, with helpers for averaging windows
/// (the paper reports 2-minute averages of 1 s samples) and slicing.

#include <cstddef>
#include <vector>

#include "voprof/util/stats.hpp"
#include "voprof/util/units.hpp"

namespace voprof::util {

/// One (time, value) observation.
struct TimedSample {
  SimMicros time = 0;
  double value = 0.0;
};

/// Append-only series of timestamped samples (monotone non-decreasing
/// timestamps enforced).
class TimeSeries {
 public:
  TimeSeries() = default;

  void add(SimMicros time, double value);
  void clear() noexcept { samples_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const TimedSample& operator[](std::size_t i) const;
  [[nodiscard]] const std::vector<TimedSample>& samples() const noexcept {
    return samples_;
  }

  /// All values (timestamps dropped).
  [[nodiscard]] std::vector<double> values() const;

  /// Mean of all values (0 if empty).
  [[nodiscard]] double mean() const noexcept;

  /// Mean over samples with time in [from, to).
  [[nodiscard]] double mean_between(SimMicros from, SimMicros to) const noexcept;

  /// Summary statistics over all values.
  [[nodiscard]] RunningStats stats() const noexcept;

  /// New series containing samples with time in [from, to).
  [[nodiscard]] TimeSeries slice(SimMicros from, SimMicros to) const;

  /// Last value, or fallback if empty.
  [[nodiscard]] double last_or(double fallback) const noexcept;

 private:
  std::vector<TimedSample> samples_;
};

}  // namespace voprof::util
