#pragma once
/// \file stats.hpp
/// Streaming and batch statistics used throughout the measurement and
/// evaluation pipeline: running mean/variance (Welford), percentiles,
/// and empirical CDFs (the paper reports 90th-percentile prediction
/// errors and CDF plots in Figs. 7-9).

#include <cstddef>
#include <span>
#include <vector>

namespace voprof::util {

/// Numerically stable streaming mean / variance / min / max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (n in the denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (n-1 in the denominator); 0 for n < 2.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile of an unsorted sample, q in [0, 100].
/// Does not modify the input. Requires a non-empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Mean of a sample (0 for empty).
[[nodiscard]] double mean(std::span<const double> sample) noexcept;

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
[[nodiscard]] double stddev(std::span<const double> sample) noexcept;

/// Median (50th percentile). Requires a non-empty sample.
[[nodiscard]] double median(std::span<const double> sample);

/// Empirical cumulative distribution function over a fixed sample.
///
/// Mirrors the CDF plots of Figs. 7-9: `fraction_below(x)` answers "what
/// fraction of predictions have error <= x" and `value_at(p)` answers
/// "what error bound covers fraction p of predictions".
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> sample);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// Fraction of the sample with value <= x, in [0, 1].
  [[nodiscard]] double fraction_below(double x) const noexcept;

  /// Smallest sample value v such that fraction_below(v) >= p, p in (0, 1].
  [[nodiscard]] double value_at(double p) const;

  /// Sorted sample values (for plotting / table output).
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

  /// Evaluate the CDF on an evenly spaced grid of `points` x-values from
  /// min to max; returns (x, fraction) pairs. Useful for ASCII plots.
  [[nodiscard]] std::vector<std::pair<double, double>> grid(
      std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Simple fixed-width histogram over [lo, hi) with `bins` buckets.
/// Samples outside the range are NOT clamped into the edge buckets
/// (that would distort the tail bins); they are counted separately and
/// reported via underflow() / overflow().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// All samples ever added, in range or not.
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Samples below lo / at or above hi.
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  /// Samples landing inside [lo, hi).
  [[nodiscard]] std::size_t in_range() const noexcept {
    return total_ - underflow_ - overflow_;
  }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace voprof::util
