#pragma once
/// \file task_pool.hpp
/// Fixed-size worker pool for the deterministic parallel experiment
/// runner (voprof::runner). Simulation tasks are pure functions of an
/// explicit seed, so the pool only has to guarantee that (a) every
/// task runs exactly once, (b) results land at their task index, and
/// (c) exceptions propagate — then sweep results are bit-identical
/// regardless of worker count or scheduling order.
///
/// This is the ONLY place in the repository that constructs threads;
/// voprof-lint's raw-thread rule rejects std::thread elsewhere so all
/// parallelism stays observable and bounded in one layer.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace voprof::util {

class TaskPool {
 public:
  /// How a single-job pool executes work. The sweep runner wants the
  /// historical serial path (inline at submit time, bit-identical to
  /// the pre-pool code); a server wants submit() to never block on the
  /// task itself, even with one worker.
  enum class Threading {
    kInlineWhenSerial,  ///< jobs <= 1: no threads, run at submit time
    kAlwaysThreaded,    ///< always spawn jobs worker threads (>= 1)
  };

  /// `jobs` is the total parallelism: with kInlineWhenSerial (the
  /// default), jobs <= 1 creates NO worker threads and runs every task
  /// inline at submit time (the serial path, byte-identical to the
  /// pre-pool code); jobs = 0 is resolved to default_jobs().
  explicit TaskPool(std::size_t jobs = 0,
                    Threading threading = Threading::kInlineWhenSerial);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Resolved parallelism (>= 1).
  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
  /// Hardware concurrency with a floor of 1 (the --jobs default).
  [[nodiscard]] static std::size_t default_jobs() noexcept;

  /// Run `fn` on a worker (or inline when jobs() == 1); the returned
  /// future delivers the result or rethrows the task's exception.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      const long long t0 = note_task_begin();
      (*task)();
      note_task_end(t0, /*inline_task=*/true);
    } else {
      enqueue([task]() { (*task)(); });
    }
    return fut;
  }

  /// Evaluate fn(i) for every i in [0, n). Blocks until all tasks
  /// finished; rethrows the exception of the lowest failing index
  /// (deterministic choice — later tasks still run to completion).
  template <typename Fn>
  void parallel_for_each(std::size_t n, Fn&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i]() { fn(i); }));
    }
    for (auto& f : futures) f.get();
  }

  /// parallel_for_each that collects fn(i) into a vector ordered by
  /// task index — the ordering (and thus any downstream aggregation
  /// or CSV row order) never depends on scheduling.
  template <typename Fn>
  [[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i]() { return fn(i); }));
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  /// A queued task plus its enqueue timestamp (obs wall clock, us),
  /// feeding the taskpool.queue_wait_ms histogram.
  struct Job {
    std::function<void()> fn;
    long long enqueued_us = 0;
  };

  void enqueue(std::function<void()> job);
  void worker_loop();

  /// Observability hooks (non-template so the obs headers stay out of
  /// this header). begin returns the obs wall clock, or 0 when the
  /// build has observability off; end records duration, task count and
  /// a "taskpool" span when a trace is being collected.
  static long long note_task_begin();
  static void note_task_end(long long begin_us, bool inline_task);

  std::size_t jobs_ = 1;
  std::vector<std::thread> workers_;
  std::vector<Job> queue_;  // FIFO via head index
  std::size_t queue_head_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace voprof::util
