#pragma once
/// \file result.hpp
/// The single error-reporting vocabulary of the public loader APIs.
///
/// Before PR 5 the loaders reported failure three different ways:
/// bool returns (util::parse_double), exceptions (ContractViolation
/// from VOPROF_REQUIRE) and ad-hoc sentinel values. Consumers that
/// want to *handle* errors — the voprofd request handlers must turn a
/// malformed scenario into a structured `bad_request` response, not a
/// stack unwind — need the error as a value. Result<T> carries either
/// the parsed value or an Error with a machine-readable code, a
/// human-readable message and a `file:line`-style context telling the
/// caller where the problem was detected.
///
/// Convention: `*_result` functions are the primary API and never
/// throw on input errors; the historical throwing spellings remain as
/// thin shims (`load()` = `load_result().value_or_throw()`), so
/// existing call sites keep working unchanged.

#include <optional>
#include <string>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::util {

/// Machine-readable error category, stable across releases (the serve
/// layer maps these onto voprof-api-1 error codes).
enum class Errc {
  kParse,       ///< malformed input text (INI/CSV/JSON/model file)
  kValidation,  ///< well-formed but semantically invalid
  kIo,          ///< file missing/unreadable/unwritable
  kUnsupported, ///< version/feature not supported
  kInternal,    ///< invariant failure inside the library
};

/// Stable lower-case name of an error code ("parse", "validation"...).
[[nodiscard]] const char* errc_name(Errc code) noexcept;

/// A failed operation: what kind of failure, what happened, where.
struct Error {
  Errc code = Errc::kInternal;
  std::string message;
  /// Where the error was detected: a source position of the offending
  /// input ("scenario.conf:12", "[vm web]") or the library call site.
  std::string context;

  /// "parse error: expected 'key = value' (at scenario.conf:12)"
  [[nodiscard]] std::string to_string() const;
};

/// Either a T or an Error. Intentionally minimal: no monadic
/// combinators, just checked access and one bridge to the exception
/// world for the throwing shims.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(*-explicit-*)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(*-explicit-*)

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// The value; calling on an error is a contract violation.
  [[nodiscard]] const T& value() const& {
    VOPROF_REQUIRE_MSG(ok(), "Result::value() on error: " + error_.to_string());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    VOPROF_REQUIRE_MSG(ok(), "Result::value() on error: " + error_.to_string());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    VOPROF_REQUIRE_MSG(ok(), "Result::take() on error: " + error_.to_string());
    return std::move(*value_);
  }

  /// The error; calling on a success is a contract violation.
  [[nodiscard]] const Error& error() const {
    VOPROF_REQUIRE_MSG(!ok(), "Result::error() on success");
    return error_;
  }

  /// Bridge for the throwing shims: unwrap or throw ContractViolation
  /// carrying Error::to_string() (the historical exception type, so
  /// callers that caught ContractViolation keep working).
  [[nodiscard]] T value_or_throw() && {
    if (!ok()) throw ContractViolation(error_.to_string());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Error error_;
};

}  // namespace voprof::util

/// Build an Error whose context is the current library source line —
/// for failures with no better input position to point at.
#define VOPROF_ERROR_HERE(code, msg)                              \
  ::voprof::util::Error {                                         \
    (code), (msg), std::string(__FILE__) + ":" + std::to_string(__LINE__) \
  }
