#pragma once
/// \file ini.hpp
/// Minimal INI-style configuration parser for the scenario runner:
/// ordered sections (`[kind name]` or `[kind]`), `key = value` pairs,
/// `#` comments. Section kinds may repeat (e.g. one `[vm ...]` section
/// per guest).

#include <optional>
#include <string>
#include <vector>

#include "voprof/util/result.hpp"

namespace voprof::util {

struct IniSection {
  std::string kind;  ///< first token of the header
  std::string name;  ///< rest of the header (may be empty)
  std::vector<std::pair<std::string, std::string>> entries;

  [[nodiscard]] bool has(const std::string& key) const noexcept;
  /// Last value for `key`, or nullopt.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
};

class IniDocument {
 public:
  /// Primary, non-throwing API: parse from text. Errors carry
  /// Errc::kParse and a "line N" context.
  [[nodiscard]] static Result<IniDocument> parse_result(
      const std::string& text);
  /// Read + parse a file; I/O failures carry Errc::kIo and parse
  /// errors get the path prefixed to their context ("path:line N").
  [[nodiscard]] static Result<IniDocument> load_result(
      const std::string& path);

  /// Throwing shims over the *_result API (historical spellings;
  /// throw ContractViolation on any error).
  [[nodiscard]] static IniDocument parse(const std::string& text);
  [[nodiscard]] static IniDocument load(const std::string& path);

  [[nodiscard]] const std::vector<IniSection>& sections() const noexcept {
    return sections_;
  }
  /// All sections of a kind, in file order.
  [[nodiscard]] std::vector<const IniSection*> of_kind(
      const std::string& kind) const;
  /// The unique section of a kind; throws if absent or duplicated.
  [[nodiscard]] const IniSection& unique(const std::string& kind) const;
  [[nodiscard]] bool has_kind(const std::string& kind) const noexcept;

 private:
  std::vector<IniSection> sections_;
};

}  // namespace voprof::util
