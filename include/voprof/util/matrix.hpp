#pragma once
/// \file matrix.hpp
/// Minimal dense linear algebra for the regression models of Sec. V:
/// a row-major Matrix with the operations needed by ordinary least
/// squares (Householder QR) and least-median-of-squares subset solves
/// (Gaussian elimination with partial pivoting).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace voprof::util {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s) noexcept;
  [[nodiscard]] Matrix operator*(double s) const;

  /// Matrix-vector product. Requires v.size() == cols().
  [[nodiscard]] std::vector<double> mul(std::span<const double> v) const;

  [[nodiscard]] bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Max-abs element difference; both matrices must have the same shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve the square system A x = b by Gaussian elimination with partial
/// pivoting. Throws ContractViolation if A is singular (pivot below
/// 1e-12 of the largest column magnitude).
[[nodiscard]] std::vector<double> solve_linear(Matrix a,
                                               std::vector<double> b);

/// Least-squares solve of the (possibly tall) system A x ~= b via
/// Householder QR: minimizes ||A x - b||_2. Requires rows >= cols and
/// full column rank.
[[nodiscard]] std::vector<double> solve_least_squares(
    const Matrix& a, std::span<const double> b);

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> v) noexcept;

}  // namespace voprof::util
