#pragma once
/// \file table.hpp
/// ASCII table formatting for the bench harnesses: every bench binary
/// prints the rows/series of one paper table or figure, so all of them
/// share this aligned-column writer.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace voprof::util {

/// Column-aligned ASCII table with an optional title and rule lines.
///
/// Usage:
///   AsciiTable t("Figure 2(a): ...");
///   t.set_header({"input%", "VM", "Dom0", "Hyp"});
///   t.add_row({"30", "29.9", "18.2", "5.1"});
///   std::cout << t.str();
class AsciiTable {
 public:
  AsciiTable() = default;
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule line
};

/// Format a double with fixed precision (default 2 decimals).
[[nodiscard]] std::string fmt(double v, int decimals = 2);

/// Format "measured (paper anchor)" pairs, e.g. "29.43 (29.5)".
[[nodiscard]] std::string fmt_vs(double measured, double paper,
                                 int decimals = 1);

}  // namespace voprof::util
