#pragma once
/// \file assert.hpp
/// Lightweight contract-checking macros used across voprof.
///
/// VOPROF_REQUIRE is always on (it guards API misuse and throws
/// std::invalid_argument / std::logic_error style errors); VOPROF_ASSERT
/// is an internal invariant check compiled out in NDEBUG builds.

#include <stdexcept>
#include <string>

namespace voprof::util {

/// Exception thrown when a VOPROF_REQUIRE precondition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  throw ContractViolation(std::string(kind) + " failed: (" + expr + ") at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (": " + msg)));
}

}  // namespace voprof::util

/// Precondition check that is always active. Throws ContractViolation.
#define VOPROF_REQUIRE(expr)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::voprof::util::contract_failure("precondition", #expr, __FILE__,     \
                                       __LINE__, "");                       \
    }                                                                       \
  } while (false)

/// Precondition check with an explanatory message.
#define VOPROF_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::voprof::util::contract_failure("precondition", #expr, __FILE__,     \
                                       __LINE__, (msg));                    \
    }                                                                       \
  } while (false)

/// Internal invariant; active unless NDEBUG.
#ifdef NDEBUG
#define VOPROF_ASSERT(expr) ((void)0)
#else
#define VOPROF_ASSERT(expr)                                                 \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::voprof::util::contract_failure("invariant", #expr, __FILE__,        \
                                       __LINE__, "");                       \
    }                                                                       \
  } while (false)
#endif
