#pragma once
/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every stochastic component in voprof takes an explicit seed so that
/// all experiments are reproducible run-to-run (the paper averages 120
/// one-second samples; we need identical sample streams for regression
/// tests). The generator is xoshiro256** seeded via SplitMix64, which is
/// fast, high-quality and fully portable (no libstdc++-dependent
/// distribution behaviour for the core stream).

#include <array>
#include <cstdint>

#include "voprof/util/assert.hpp"

namespace voprof::util {

/// SplitMix64 stepper; used to expand a single 64-bit seed into the
/// xoshiro256** state. Also usable as a tiny standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive the seed of sweep task `task_index` from `base_seed` by
/// SplitMix64 mixing — a pure function of (base_seed, index), so a
/// parallel runner hands every task the same stream no matter which
/// worker picks it up or in what order. Finalized twice so that
/// adjacent indices share no low-bit structure.
[[nodiscard]] inline std::uint64_t seed_for(std::uint64_t base_seed,
                                            std::uint64_t task_index) noexcept {
  SplitMix64 mix(base_seed ^
                 (task_index * 0xd6e8feb86659fd93ULL + 0xa5a5a5a5a5a5a5a5ULL));
  (void)mix.next();
  return mix.next();
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies the
/// UniformRandomBitGenerator requirements.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead 2^128 steps; used to derive independent sub-streams.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper exposing the distributions voprof needs, with
/// implementations that do not depend on standard-library distribution
/// internals (bit-identical across toolchains).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) noexcept : gen_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    // 53 random mantissa bits.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) {
    VOPROF_REQUIRE(n > 0);
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = gen_();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  [[nodiscard]] double gaussian() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_impl(-2.0 * log_impl(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) {
    VOPROF_REQUIRE(rate > 0.0);
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -log_impl(u) / rate;
  }

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent generator (jump-ahead sub-stream).
  [[nodiscard]] Rng split() noexcept {
    Rng child = *this;
    child.gen_.jump();
    child.have_spare_ = false;
    gen_();  // perturb parent so repeated split() calls differ
    return child;
  }

  /// Raw 64-bit output (UniformRandomBitGenerator-compatible use).
  [[nodiscard]] std::uint64_t bits() noexcept { return gen_(); }

 private:
  // Thin wrappers so <cmath> stays out of this header's public surface.
  static double sqrt_impl(double x) noexcept;
  static double log_impl(double x) noexcept;

  Xoshiro256ss gen_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace voprof::util
