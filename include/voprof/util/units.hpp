#pragma once
/// \file units.hpp
/// Unit conventions and conversion helpers.
///
/// The paper mixes units freely (Mb/s workload inputs, Kb/s utilization
/// plots, bytes/s overheads, blocks/s I/O). voprof standardizes on:
///   - CPU:        percent of one core/VCPU (100.0 == one full core)
///   - memory:     MiB
///   - disk I/O:   blocks per second (one block == 512 bytes, as vmstat)
///   - bandwidth:  Kb/s (kilobits per second) internally
/// and converts at the edges with the helpers below.

namespace voprof::util {

inline constexpr double kBitsPerByte = 8.0;
inline constexpr double kBytesPerBlock = 512.0;

/// Megabits/s -> kilobits/s (paper's workload knob -> internal unit).
[[nodiscard]] constexpr double mbps_to_kbps(double mbps) noexcept {
  return mbps * 1000.0;
}

/// Kilobits/s -> megabits/s.
[[nodiscard]] constexpr double kbps_to_mbps(double kbps) noexcept {
  return kbps / 1000.0;
}

/// Bytes/s -> kilobits/s (paper reports some overheads in bytes/s).
[[nodiscard]] constexpr double bytes_per_s_to_kbps(double bps) noexcept {
  return bps * kBitsPerByte / 1000.0;
}

/// Kilobits/s -> bytes/s.
[[nodiscard]] constexpr double kbps_to_bytes_per_s(double kbps) noexcept {
  return kbps * 1000.0 / kBitsPerByte;
}

/// Blocks/s -> kilobits/s of disk traffic.
[[nodiscard]] constexpr double blocks_to_kbps(double blocks_per_s) noexcept {
  return blocks_per_s * kBytesPerBlock * kBitsPerByte / 1000.0;
}

/// Simulation time is tracked in integer microseconds.
using SimMicros = long long;

inline constexpr SimMicros kMicrosPerMilli = 1000;
inline constexpr SimMicros kMicrosPerSecond = 1000 * 1000;

[[nodiscard]] constexpr SimMicros seconds(double s) noexcept {
  return static_cast<SimMicros>(s * static_cast<double>(kMicrosPerSecond));
}
[[nodiscard]] constexpr SimMicros milliseconds(double ms) noexcept {
  return static_cast<SimMicros>(ms * static_cast<double>(kMicrosPerMilli));
}
[[nodiscard]] constexpr double to_seconds(SimMicros t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

}  // namespace voprof::util
