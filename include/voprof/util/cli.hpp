#pragma once
/// \file cli.hpp
/// Minimal command-line argument parsing for the voprofctl tool:
/// `program <command> [--flag value] [--switch]`. No external
/// dependencies, strict about unknown flags.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace voprof::util {

class CliArgs {
 public:
  /// Parse argv starting after the program name. The first
  /// non-flag token becomes the command; everything else must be
  /// `--name value` or a registered boolean `--switch`.
  /// `bool_flags` lists the switches that take no value.
  [[nodiscard]] static CliArgs parse(
      int argc, const char* const* argv,
      const std::vector<std::string>& bool_flags = {});

  [[nodiscard]] const std::string& command() const noexcept {
    return command_;
  }
  [[nodiscard]] bool has(const std::string& name) const noexcept;

  /// Value of --name; throws ContractViolation if absent.
  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name) const noexcept;

  /// Flags the caller never queried (for strict validation).
  [[nodiscard]] std::vector<std::string> flag_names() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> switches_;
};

}  // namespace voprof::util
