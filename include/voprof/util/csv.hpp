#pragma once
/// \file csv.hpp
/// Small CSV writer/reader used to dump experiment traces (the paper's
/// measurement script logged per-second samples; our benches can emit the
/// same traces for offline plotting) and to reload them for trace-driven
/// model fitting.

#include <iosfwd>
#include <string>
#include <vector>

#include "voprof/util/result.hpp"

namespace voprof::util {

/// Row-oriented CSV document with a mandatory header row.
class CsvDocument {
 public:
  CsvDocument() = default;
  explicit CsvDocument(std::vector<std::string> header);

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return header_.size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Index of a named column; throws if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
  [[nodiscard]] bool has_column(const std::string& name) const noexcept;

  /// Append a numeric row; size must equal column_count().
  void add_row(std::vector<double> values);

  [[nodiscard]] double at(std::size_t row, std::size_t col) const;
  [[nodiscard]] double at(std::size_t row, const std::string& col) const;
  /// Entire column as a vector.
  [[nodiscard]] std::vector<double> column_values(const std::string& name) const;

  /// Serialize to CSV text.
  void write(std::ostream& os) const;
  [[nodiscard]] std::string str() const;
  void save(const std::string& path) const;

  /// Primary, non-throwing parse (numeric cells only). Errors carry
  /// Errc::kParse with a "row N" context, or Errc::kIo for unreadable
  /// files (load_result).
  [[nodiscard]] static Result<CsvDocument> parse_result(std::istream& is);
  [[nodiscard]] static Result<CsvDocument> parse_string_result(
      const std::string& text);
  [[nodiscard]] static Result<CsvDocument> load_result(
      const std::string& path);

  /// Throwing shims over the *_result API.
  [[nodiscard]] static CsvDocument parse(std::istream& is);
  [[nodiscard]] static CsvDocument parse_string(const std::string& text);
  [[nodiscard]] static CsvDocument load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace voprof::util
