#pragma once
/// \file json.hpp
/// Minimal JSON document model, parser and writer.
///
/// The benchmark harness (bench/harness.hpp) emits machine-readable
/// BENCH_<name>.json files and `voprofctl bench-diff` reads them back
/// to gate CI on perf regressions; both sides share this module so the
/// schema has exactly one serialization. Scope is deliberately small:
/// the full JSON value grammar, UTF-8 passed through verbatim, objects
/// preserving insertion order (so emitted documents are byte-stable),
/// and numbers printed with util::format_double (shortest round-trip,
/// locale-independent).

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace voprof::util {

/// Thrown on malformed input text or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// One JSON value (null, bool, number, string, array or object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value list (no duplicate keys on insert).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object lookup: nullptr when absent (or when not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Object lookup; throws JsonError when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Append to an array value (value must be an array).
  void push_back(Json v);
  /// Insert or overwrite a key of an object value (must be an object).
  void set(std::string key, Json v);

  /// Serialize. indent <= 0 emits the compact one-line form; indent > 0
  /// pretty-prints with that many spaces per level. Output is
  /// deterministic: object keys keep insertion order and numbers use
  /// util::format_double.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parse a complete JSON document; trailing non-space input or any
  /// grammar violation throws JsonError with a byte offset.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace voprof::util
