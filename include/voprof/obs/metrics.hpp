#pragma once
/// \file metrics.hpp
/// Low-overhead metrics registry: named counters, gauges and
/// fixed-bucket histograms that engine, scheduler, machine, monitor,
/// TaskPool and the sweep runner register into. The paper's method is
/// concurrent observation — knowing what every layer was doing while
/// the numbers moved — and this registry is the simulator-internal
/// analogue: cheap enough to leave on, inspectable on demand.
///
/// Concurrency contract: registration (Registry::counter & friends)
/// takes a mutex and returns a reference that stays valid for the
/// process lifetime; the write paths (Counter::add, Gauge::set,
/// Histogram::observe) are lock-free relaxed atomics, safe from any
/// thread. Snapshots are taken on demand and are only guaranteed to be
/// exact once concurrent writers have quiesced (e.g. after a TaskPool
/// join) — the reader never blocks a writer either way.
///
/// Zero-cost when disabled: building with -DVOPROF_OBS=OFF compiles
/// every write path to nothing (kObsCompiled folds to false below), so
/// the hot loops carry no atomics at all.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace voprof::obs {

#if defined(VOPROF_OBS) && VOPROF_OBS
inline constexpr bool kObsCompiled = true;
#else
inline constexpr bool kObsCompiled = false;
#endif

/// Monotonic event count (events fired, samples taken, cells run...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if constexpr (kObsCompiled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or high-water) double value.
class Gauge {
 public:
  void set(double v) noexcept {
    if constexpr (kObsCompiled) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  /// Raise the gauge to `v` if larger (high-water mark, e.g. max heap
  /// depth). Lock-free CAS; no-op once the mark is reached.
  void set_max(double v) noexcept {
    if constexpr (kObsCompiled) {
      double cur = value_.load(std::memory_order_relaxed);
      while (v > cur &&
             !value_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
      }
    } else {
      (void)v;
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
/// plus one implicit overflow bucket. Bucket layout is fixed at
/// registration so observe() is a search plus one relaxed increment.
class Histogram {
 public:
  /// \param upper_bounds  strictly increasing bucket upper bounds.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;          ///< as registered
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;             ///< total observations
    double sum = 0.0;                    ///< sum of observed values
    [[nodiscard]] double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset() noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide name -> metric map. Names are dotted,
/// "<category>.<what>" (e.g. "engine.events_fired"); the category
/// prefix groups metrics in trace exports and `voprofctl trace`.
class Registry {
 public:
  /// The shared instance every component registers into. Intentionally
  /// immortal (never destroyed), so metric references held by
  /// function-local statics stay valid during process teardown.
  [[nodiscard]] static Registry& global();

  /// Find-or-create; the returned reference lives forever. Re-lookups
  /// of the same name return the same object, so concurrent components
  /// share one metric.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the
  /// same name return the existing histogram regardless of bounds.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds);

  struct Snapshot {
    struct Entry {
      std::string name;
      std::string kind;  ///< "counter" | "gauge" | "histogram"
      double value = 0.0;
      Histogram::Snapshot hist;  ///< histogram entries only
    };
    std::vector<Entry> entries;  ///< sorted by name
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every metric, keeping registrations (and thus outstanding
  /// references) intact. Tests only.
  void reset_all();

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Category prefix of a dotted metric name ("engine.events_fired" ->
/// "engine"); the whole name when it has no dot.
[[nodiscard]] std::string metric_category(const std::string& name);

}  // namespace voprof::obs
