#pragma once
/// \file trace.hpp
/// Scoped span tracing on two clocks, exported as Chrome trace-event
/// JSON (loadable in Perfetto / chrome://tracing).
///
/// Two clocks, two synthetic "processes" in the trace viewer:
///  - wall time (pid kWallPid): what the host CPU spent — trainer
///    phases, runner tasks, TaskPool jobs, bench reps. Timestamps are
///    microseconds since the collector was enabled.
///  - sim time (pid kSimPid): when things happened inside the
///    simulated cluster — contention episodes, migrations, TraceLog
///    ring events. Timestamps are SimMicros verbatim.
/// Both feed one TraceCollector; the exporter tags each event with its
/// clock's pid so the viewer shows them as parallel tracks.
///
/// Cost model: when the collector is disabled (the default), every
/// record path is one relaxed atomic load and a branch; when the build
/// has VOPROF_OBS off it is nothing at all. Enabling buffers events in
/// memory under a mutex — tracing is an observation mode, not a hot
/// path, and a scenario run emits thousands of events, not millions.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "voprof/obs/metrics.hpp"
#include "voprof/util/json.hpp"

namespace voprof::obs {

/// Raw monotonic wall clock in microseconds (not epoch-relative), the
/// sanctioned time source for instrumented modules — voprof-lint bans
/// direct steady_clock reads outside bench/ and obs/. Returns 0 when
/// the build has observability compiled out.
[[nodiscard]] std::int64_t wall_clock_us() noexcept;

/// Monotonic microseconds that work in EVERY build, including
/// -DVOPROF_OBS=OFF (unlike wall_clock_us, which folds to 0 there).
/// For *functional* time — request deadlines, socket timeouts — where
/// "observability off" must not mean "time stands still".
[[nodiscard]] std::int64_t monotonic_us() noexcept;

/// Which timeline an event belongs to (see file comment).
enum class Clock { kWall, kSim };

/// Synthetic Chrome-trace process ids for the two clocks.
inline constexpr int kWallPid = 1;
inline constexpr int kSimPid = 2;

/// Schema marker written into exported files; `voprofctl trace`
/// refuses files without it rather than misreading foreign traces.
inline constexpr const char* kTraceSchema = "voprof-trace-1";

/// One buffered trace event. Maps 1:1 onto a Chrome trace-event
/// object: ph 'X' = complete span (ts+dur), 'i' = instant.
struct TraceRecord {
  char ph = 'X';
  Clock clock = Clock::kWall;
  std::string cat;
  std::string name;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  ///< 'X' only
  std::uint64_t tid = 0;    ///< worker index (wall) or domain/PM id (sim)
  std::vector<std::pair<std::string, double>> args;
  std::vector<std::pair<std::string, std::string>> sargs;
};

/// Process-wide event sink. Disabled by default; enabling names the
/// output file and starts the wall epoch. The destructor (or an
/// explicit write_file()) flushes buffered events plus a snapshot of
/// the metrics registry to that file.
class TraceCollector {
 public:
  /// The shared instance. A real static (not leaked): its destructor
  /// runs at exit and flushes any enabled-but-unwritten trace, so
  /// `VOPROF_TRACE=out.json app` works without app cooperation.
  [[nodiscard]] static TraceCollector& global();

  TraceCollector() = default;
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// True when events are being buffered. The hot-path guard: span
  /// helpers check this before doing any work.
  [[nodiscard]] bool enabled() const noexcept {
    if constexpr (!kObsCompiled) {
      return false;
    }
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Start collecting; events flush to `path` on write_file()/exit.
  /// No-op (stays disabled) when the build has VOPROF_OBS off.
  void enable(std::string path);
  /// Stop collecting and drop buffered events without writing.
  void disable();
  /// Reads VOPROF_TRACE; when set and non-empty, enable(its value).
  /// Idempotent. Apps and benches call this once at startup.
  void init_from_env();

  [[nodiscard]] std::string path() const;

  /// Microseconds since enable() on the wall clock (0 when disabled).
  [[nodiscard]] std::int64_t wall_now_us() const noexcept;

  /// Stable per-thread id for wall-clock tracks: the calling thread's
  /// registration order starting at 1 (main thread is whoever asks
  /// first). Cached in a thread_local so the hot path is a read.
  [[nodiscard]] static std::uint64_t current_tid();

  /// Buffer one event. Safe from any thread; no-op when disabled.
  void record(TraceRecord rec);

  /// Convenience emitters (all no-ops when disabled).
  void complete_wall(std::string cat, std::string name, std::int64_t ts_us,
                     std::int64_t dur_us,
                     std::vector<std::pair<std::string, double>> args = {});
  void complete_sim(std::string cat, std::string name, std::int64_t ts_us,
                    std::int64_t dur_us, std::uint64_t tid,
                    std::vector<std::pair<std::string, double>> args = {});
  void instant_sim(std::string cat, std::string name, std::int64_t ts_us,
                   std::uint64_t tid,
                   std::vector<std::pair<std::string, std::string>> sargs = {});

  /// Full export: Chrome trace-event object with traceEvents (metadata
  /// + buffered events + one 'C' counter sample per registry metric),
  /// displayTimeUnit, plus voprof extras (schema, voprofMetrics).
  [[nodiscard]] util::Json to_json() const;

  /// Write to_json() to path(); returns false (and keeps the buffer)
  /// on I/O failure. Disables the collector on success.
  bool write_file();

  [[nodiscard]] std::size_t size() const;
  /// Drop buffered events, keep enabled state and epoch. Tests only.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  bool env_checked_ = false;
  std::string path_;
  std::int64_t epoch_us_ = 0;  ///< steady-clock us at enable()
  std::vector<TraceRecord> events_;
};

/// RAII wall-clock span: measures construction→destruction and records
/// a complete event on the calling thread's track. When the collector
/// is disabled, construction is one relaxed load and destruction a
/// branch. `cat`/`name` must outlive the span (string literals).
class WallSpan {
 public:
  WallSpan(const char* cat, const char* name) noexcept;
  ~WallSpan();
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace voprof::obs

/// Span covering the rest of the enclosing scope. Two-level expansion
/// so __LINE__ pastes into a unique variable name.
#define VOPROF_OBS_CONCAT_(a, b) a##b
#define VOPROF_OBS_CONCAT(a, b) VOPROF_OBS_CONCAT_(a, b)
#define VOPROF_WALL_SPAN(cat, name) \
  ::voprof::obs::WallSpan VOPROF_OBS_CONCAT(voprof_span_, __LINE__)(cat, name)
