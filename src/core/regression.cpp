#include "voprof/core/regression.hpp"

#include <algorithm>
#include <cmath>

#include "voprof/core/invariants.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/stats.hpp"

namespace voprof::model {

namespace {

/// Prepend the intercept column of ones.
util::Matrix with_intercept(const util::Matrix& x) {
  util::Matrix d(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    d(r, 0) = 1.0;
    for (std::size_t c = 0; c < x.cols(); ++c) d(r, c + 1) = x(r, c);
  }
  return d;
}

/// Fill fit-quality fields from residuals.
void finalize_fit(LinearFit& f, const util::Matrix& x,
                  std::span<const double> y) {
  const std::vector<double> res = residuals(f, x, y);
  double ss_res = 0.0;
  for (double r : res) ss_res += r * r;
  f.residual_rms =
      y.empty() ? 0.0 : std::sqrt(ss_res / static_cast<double>(y.size()));
  const double ybar = util::mean(y);
  double ss_tot = 0.0;
  for (double v : y) ss_tot += (v - ybar) * (v - ybar);
  f.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  // Every fit funnels through here; a NaN coefficient would silently
  // poison all downstream predictions (Sec. V models).
  if (invariants_enabled()) check_fit(f, "regression fit");
}

}  // namespace

double LinearFit::predict(std::span<const double> x) const {
  VOPROF_REQUIRE_MSG(x.size() + 1 == coef.size(),
                     "predictor count mismatch in LinearFit::predict");
  double s = coef[0];
  for (std::size_t i = 0; i < x.size(); ++i) s += coef[i + 1] * x[i];
  return s;
}

std::vector<double> residuals(const LinearFit& fit, const util::Matrix& x,
                              std::span<const double> y) {
  VOPROF_REQUIRE(x.rows() == y.size());
  std::vector<double> out(y.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = y[r] - fit.predict(x.row(r));
  }
  return out;
}

LinearFit fit_ols(const util::Matrix& x, std::span<const double> y) {
  VOPROF_REQUIRE(x.rows() == y.size());
  VOPROF_REQUIRE_MSG(x.rows() >= x.cols() + 1,
                     "not enough observations for OLS");
  const util::Matrix d = with_intercept(x);
  LinearFit f;
  f.coef = util::solve_least_squares(d, y);
  finalize_fit(f, x, y);
  return f;
}

LinearFit fit_wls(const util::Matrix& x, std::span<const double> y,
                  std::span<const double> w) {
  VOPROF_REQUIRE(x.rows() == y.size());
  VOPROF_REQUIRE(x.rows() == w.size());
  const util::Matrix d = with_intercept(x);
  util::Matrix dw(d.rows(), d.cols());
  std::vector<double> yw(y.size());
  for (std::size_t r = 0; r < d.rows(); ++r) {
    VOPROF_REQUIRE_MSG(w[r] >= 0.0, "negative weight in fit_wls");
    const double sw = std::sqrt(w[r]);
    for (std::size_t c = 0; c < d.cols(); ++c) dw(r, c) = d(r, c) * sw;
    yw[r] = y[r] * sw;
  }
  LinearFit f;
  f.coef = util::solve_least_squares(dw, yw);
  finalize_fit(f, x, y);
  return f;
}

LinearFit fit_lms(const util::Matrix& x, std::span<const double> y,
                  util::Rng& rng, const LmsConfig& config) {
  VOPROF_REQUIRE(x.rows() == y.size());
  const std::size_t n = x.rows();
  const std::size_t p = x.cols() + 1;  // with intercept
  VOPROF_REQUIRE_MSG(n >= 2 * p, "not enough observations for LMS");
  VOPROF_REQUIRE(config.subsets > 0);
  VOPROF_REQUIRE(config.quantile >= 0.5 && config.quantile <= 1.0);

  const util::Matrix d = with_intercept(x);

  std::vector<double> best_coef;
  double best_median = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> idx(p);
  std::vector<double> sq(n);

  for (int trial = 0; trial < config.subsets; ++trial) {
    // Draw p distinct row indices.
    for (std::size_t k = 0; k < p; ++k) {
      for (;;) {
        const std::size_t cand =
            static_cast<std::size_t>(rng.uniform_int(n));
        bool dup = false;
        for (std::size_t j = 0; j < k; ++j) {
          if (idx[j] == cand) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          idx[k] = cand;
          break;
        }
      }
    }
    // Solve the elemental p x p system exactly; skip singular draws.
    util::Matrix a(p, p);
    std::vector<double> b(p);
    for (std::size_t r = 0; r < p; ++r) {
      for (std::size_t c = 0; c < p; ++c) a(r, c) = d(idx[r], c);
      b[r] = y[idx[r]];
    }
    std::vector<double> cand_coef;
    try {
      cand_coef = util::solve_linear(std::move(a), std::move(b));
    } catch (const util::ContractViolation&) {
      continue;  // degenerate subset
    }
    // Objective quantile of squared residuals over the full data set
    // (0.5 = classic LMS; higher = Least Quantile of Squares).
    for (std::size_t r = 0; r < n; ++r) {
      double pred = 0.0;
      for (std::size_t c = 0; c < p; ++c) pred += d(r, c) * cand_coef[c];
      const double res = y[r] - pred;
      sq[r] = res * res;
    }
    const double med = util::percentile(sq, config.quantile * 100.0);
    if (med < best_median) {
      best_median = med;
      best_coef = std::move(cand_coef);
    }
  }
  VOPROF_REQUIRE_MSG(!best_coef.empty(),
                     "LMS failed: all elemental subsets degenerate");

  // Rousseeuw's reweighted refinement: robust scale estimate from the
  // best median, then OLS over the inliers.
  const double sigma =
      1.4826 * (1.0 + 5.0 / static_cast<double>(n - p)) *
      std::sqrt(best_median);
  const double cutoff = config.inlier_sigma * std::max(sigma, 1e-12);

  std::vector<double> w(n, 0.0);
  std::size_t inliers = 0;
  for (std::size_t r = 0; r < n; ++r) {
    double pred = 0.0;
    for (std::size_t c = 0; c < p; ++c) pred += d(r, c) * best_coef[c];
    if (std::abs(y[r] - pred) <= cutoff) {
      w[r] = 1.0;
      ++inliers;
    }
  }
  if (inliers >= 2 * p) {
    return fit_wls(x, y, w);
  }
  // Refinement impossible (pathological data): report the raw LMS fit.
  LinearFit f;
  f.coef = std::move(best_coef);
  finalize_fit(f, x, y);
  return f;
}

LinearFit fit(RegressionMethod method, const util::Matrix& x,
              std::span<const double> y, std::uint64_t seed,
              const LmsConfig& lms) {
  if (method == RegressionMethod::kOls) return fit_ols(x, y);
  util::Rng rng(seed);
  return fit_lms(x, y, rng, lms);
}

}  // namespace voprof::model
