#include "voprof/core/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"
#include "voprof/util/stats.hpp"
#include "voprof/util/table.hpp"

namespace voprof::model {

namespace {

struct Target {
  std::string name;
  /// Extract the response for one row.
  double (*response)(const TrainingRow&);
};

double resp_cpu(const TrainingRow& r) { return r.pm.cpu; }
double resp_mem(const TrainingRow& r) { return r.pm.mem; }
double resp_io(const TrainingRow& r) { return r.pm.io; }
double resp_bw(const TrainingRow& r) { return r.pm.bw; }
double resp_dom0(const TrainingRow& r) { return r.dom0_cpu; }
double resp_hyp(const TrainingRow& r) { return r.hyp_cpu; }

const std::array<Target, 6> kTargets = {{
    {"PM CPU", resp_cpu},
    {"PM MEM", resp_mem},
    {"PM I/O", resp_io},
    {"PM BW", resp_bw},
    {"Dom0 CPU", resp_dom0},
    {"Hypervisor CPU", resp_hyp},
}};

}  // namespace

std::vector<FitDiagnostics> bootstrap_single_vm(
    const TrainingSet& data, const BootstrapConfig& config) {
  VOPROF_REQUIRE(config.resamples >= 10);
  const TrainingSet single = data.with_vm_count(1);
  const std::size_t n = single.size();
  VOPROF_REQUIRE_MSG(n >= 2 * (kMetricCount + 1),
                     "too few single-VM rows to bootstrap");

  util::Rng rng(config.seed);
  std::vector<FitDiagnostics> out;
  out.reserve(kTargets.size());

  for (const Target& target : kTargets) {
    // Point estimate on the full data.
    util::Matrix x(n, kMetricCount);
    std::vector<double> y(n);
    for (std::size_t r = 0; r < n; ++r) {
      const auto a = single.rows()[r].vm_sum.to_array();
      for (std::size_t c = 0; c < kMetricCount; ++c) x(r, c) = a[c];
      y[r] = target.response(single.rows()[r]);
    }
    const LinearFit point = fit(config.method, x, y, config.seed);

    // Resamples.
    std::array<std::vector<double>, kMetricCount + 1> samples;
    for (int b = 0; b < config.resamples; ++b) {
      util::Matrix xb(n, kMetricCount);
      std::vector<double> yb(n);
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(n));
        const auto a = single.rows()[pick].vm_sum.to_array();
        for (std::size_t c = 0; c < kMetricCount; ++c) xb(r, c) = a[c];
        yb[r] = target.response(single.rows()[pick]);
      }
      LinearFit f;
      try {
        f = fit(config.method, xb, yb, config.seed + static_cast<std::uint64_t>(b));
      } catch (const util::ContractViolation&) {
        continue;  // degenerate resample (rank deficient): skip
      }
      for (std::size_t c = 0; c <= kMetricCount; ++c) {
        samples[c].push_back(f.coef[c]);
      }
    }

    FitDiagnostics d;
    d.target = target.name;
    d.r_squared = point.r_squared;
    d.residual_rms = point.residual_rms;
    for (std::size_t c = 0; c <= kMetricCount; ++c) {
      CoefInterval ci;
      ci.estimate = point.coef[c];
      if (!samples[c].empty()) {
        ci.lo = util::percentile(samples[c], 2.5);
        ci.hi = util::percentile(samples[c], 97.5);
        ci.stddev = util::stddev(samples[c]);
      } else {
        ci.lo = ci.hi = ci.estimate;
      }
      d.coef[c] = ci;
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::string diagnostics_table(const std::vector<FitDiagnostics>& diags) {
  util::AsciiTable t("single-VM model coefficients with 95% bootstrap CIs");
  t.set_header({"target", "intercept", "per CPU%", "per MiB", "per blk/s",
                "per Kb/s", "R^2"});
  auto cell = [](const CoefInterval& ci) {
    std::ostringstream os;
    os << util::fmt(ci.estimate, 4) << " [" << util::fmt(ci.lo, 4) << ","
       << util::fmt(ci.hi, 4) << "]";
    return os.str();
  };
  for (const FitDiagnostics& d : diags) {
    t.add_row({d.target, cell(d.coef[0]), cell(d.coef[1]), cell(d.coef[2]),
               cell(d.coef[3]), cell(d.coef[4]),
               util::fmt(d.r_squared, 4)});
  }
  return t.str();
}

}  // namespace voprof::model
