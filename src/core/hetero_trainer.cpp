#include "voprof/core/hetero_trainer.hpp"

#include <utility>

#include "voprof/core/invariants.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::model {

HeteroTrainerConfig HeteroTrainerConfig::defaults() {
  HeteroTrainerConfig c;
  VmType small;
  small.name = "small";
  small.spec = sim::VmSpec{};  // the paper's guest: 1 VCPU, 256 MiB
  small.workload_instances = 1;
  VmType large;
  large.name = "large";
  large.spec = sim::VmSpec{};
  large.spec.vcpus = 2;
  large.spec.mem_mib = 512.0;
  large.spec.os_base_mem_mib = 110.0;
  large.spec.io_cap_blocks_per_s = 180.0;
  large.workload_instances = 2;
  c.types = {small, large};
  c.mixes = {{1, 0}, {2, 0}, {0, 1}, {0, 2}, {1, 1}, {2, 1}, {2, 2}};
  return c;
}

HeteroTrainer::HeteroTrainer(HeteroTrainerConfig config)
    : config_(std::move(config)) {
  if (config_.types.empty()) config_ = HeteroTrainerConfig::defaults();
  VOPROF_REQUIRE(!config_.types.empty());
  VOPROF_REQUIRE(!config_.mixes.empty());
  for (const auto& mix : config_.mixes) {
    VOPROF_REQUIRE_MSG(mix.size() == config_.types.size(),
                       "mix width must match type count");
  }
  VOPROF_REQUIRE(config_.duration > 0);
}

HeteroTrainingSet HeteroTrainer::collect_run(const std::vector<int>& mix,
                                             wl::WorkloadKind kind,
                                             std::size_t level) const {
  VOPROF_REQUIRE(mix.size() == config_.types.size());
  std::uint64_t cell_seed = config_.seed ^
                            (static_cast<std::uint64_t>(kind) << 8) ^
                            (static_cast<std::uint64_t>(level) << 16);
  for (int c : mix) cell_seed = cell_seed * 31 + static_cast<std::uint64_t>(c);

  sim::Engine engine;
  sim::Cluster cluster(engine, config_.costs, cell_seed);
  sim::PhysicalMachine& pm = cluster.add_machine(config_.machine);

  // vm name -> type index
  std::vector<std::pair<std::string, std::size_t>> deployed;
  for (std::size_t t = 0; t < config_.types.size(); ++t) {
    for (int k = 0; k < mix[t]; ++k) {
      sim::VmSpec spec = config_.types[t].spec;
      spec.name = config_.types[t].name + std::to_string(k + 1);
      sim::DomU& vm = pm.add_vm(spec);
      for (int w = 0; w < config_.types[t].workload_instances; ++w) {
        vm.attach(wl::make_workload(
            kind, level, sim::NetTarget{},
            cell_seed + t * 101 + static_cast<std::uint64_t>(k) * 13 +
                static_cast<std::uint64_t>(w)));
      }
      deployed.emplace_back(spec.name, t);
    }
  }
  VOPROF_REQUIRE_MSG(!deployed.empty(), "empty mix");

  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report = monitor.measure(config_.duration);

  HeteroTrainingSet out;
  const bool check = invariants_enabled();
  const std::size_t n_samples = report.sample_count();
  const mon::SeriesSet& pm_s = report.series(mon::MeasurementReport::kPmKey);
  const mon::SeriesSet& dom0_s =
      report.series(mon::MeasurementReport::kDom0Key);
  const mon::SeriesSet& hyp_s =
      report.series(mon::MeasurementReport::kHypKey);
  for (std::size_t i = 0; i < n_samples; ++i) {
    HeteroRow row;
    for (const auto& [vm_name, t] : deployed) {
      const mon::SeriesSet& s = report.series(vm_name);
      TypeObservation& obs = row.types[config_.types[t].name];
      obs.sum += UtilVec{s.cpu[i].value, s.mem[i].value, s.io[i].value,
                         s.bw[i].value};
      obs.count += 1;
    }
    row.pm = UtilVec{pm_s.cpu[i].value, pm_s.mem[i].value, pm_s.io[i].value,
                     pm_s.bw[i].value};
    row.dom0_cpu = dom0_s.cpu[i].value;
    row.hyp_cpu = hyp_s.cpu[i].value;
    if (check) {
      for (const auto& [type_name, obs] : row.types) {
        for (double v : obs.sum.to_array()) {
          check_finite(v, "hetero row " + type_name + " metric");
        }
      }
      for (double v : row.pm.to_array()) check_finite(v, "hetero row PM");
      check_finite(row.dom0_cpu, "hetero row dom0_cpu");
      check_finite(row.hyp_cpu, "hetero row hyp_cpu");
    }
    out.add(std::move(row));
  }
  return out;
}

HeteroTrainingSet HeteroTrainer::collect() const {
  HeteroTrainingSet all;
  for (const auto& mix : config_.mixes) {
    for (wl::WorkloadKind kind : config_.kinds) {
      for (std::size_t level = 0; level < wl::kLevelCount; ++level) {
        const HeteroTrainingSet cell = collect_run(mix, kind, level);
        for (const auto& r : cell.rows()) all.add(r);
      }
    }
  }
  return all;
}

HeteroModel HeteroTrainer::train(RegressionMethod method) const {
  return HeteroModel::fit(collect(), method, config_.seed);
}

}  // namespace voprof::model
