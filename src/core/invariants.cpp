#include "voprof/core/invariants.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>

#include "voprof/core/overhead_model.hpp"
#include "voprof/core/regression.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/machine.hpp"

namespace voprof::model {

namespace {

/// -1: unresolved, 0: disabled, 1: enabled.
std::atomic<int> g_enabled{-1};

int resolve_default() noexcept {
#if defined(VOPROF_CHECK_INVARIANTS) && VOPROF_CHECK_INVARIANTS
  int enabled = 1;
#else
  int enabled = 0;
#endif
  if (const char* env = std::getenv("VOPROF_CHECK_INVARIANTS")) {
    if (env[0] == '0' && env[1] == '\0') enabled = 0;
    if (env[0] == '1' && env[1] == '\0') enabled = 1;
  }
  return enabled;
}

}  // namespace

bool invariants_enabled() noexcept {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_default();
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_invariants_enabled(bool enabled) noexcept {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void invariant_failure(const std::string& what, const std::string& detail) {
  throw InvariantViolation("invariant violated: " + what +
                           (detail.empty() ? "" : (" (" + detail + ")")));
}

void check_finite(double value, const std::string& what) {
  if (!std::isfinite(value)) {
    invariant_failure(what + " must be finite",
                      "got " + std::to_string(value));
  }
}

void check_unit_interval(double value, const std::string& what, double tol) {
  check_finite(value, what);
  if (value < -tol || value > 1.0 + tol) {
    invariant_failure(what + " must lie in [0, 1]",
                      "got " + std::to_string(value));
  }
}

void check_in_range(double value, double lo, double hi,
                    const std::string& what) {
  check_finite(value, what);
  if (value < lo || value > hi) {
    invariant_failure(what + " out of range [" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "]",
                      "got " + std::to_string(value));
  }
}

void check_monotonic_time(util::SimMicros prev, util::SimMicros cur,
                          const std::string& what) {
  if (cur < prev) {
    invariant_failure(what + " timestamps must be monotone",
                      std::to_string(cur) + " < " + std::to_string(prev));
  }
}

void check_counters_step(const sim::DomainCounters& prev,
                         const sim::DomainCounters& cur,
                         const std::string& who) {
  const struct {
    const char* name;
    double before;
    double after;
  } cumulative[] = {
      {"cpu_core_seconds", prev.cpu_core_seconds, cur.cpu_core_seconds},
      {"io_blocks", prev.io_blocks, cur.io_blocks},
      {"tx_kbits", prev.tx_kbits, cur.tx_kbits},
      {"rx_kbits", prev.rx_kbits, cur.rx_kbits},
  };
  for (const auto& c : cumulative) {
    check_finite(c.after, who + "." + c.name);
    if (c.after < c.before) {
      invariant_failure(who + "." + c.name + " must be non-decreasing",
                        std::to_string(c.after) + " < " +
                            std::to_string(c.before));
    }
  }
  check_finite(cur.mem_mib, who + ".mem_mib");
  if (cur.mem_mib < 0.0) {
    invariant_failure(who + ".mem_mib must be non-negative",
                      "got " + std::to_string(cur.mem_mib));
  }
}

void check_fit(const LinearFit& fit, const std::string& what) {
  if (fit.coef.empty()) {
    invariant_failure(what + " has no coefficients", "");
  }
  for (std::size_t i = 0; i < fit.coef.size(); ++i) {
    check_finite(fit.coef[i], what + ".coef[" + std::to_string(i) + "]");
  }
  check_finite(fit.residual_rms, what + ".residual_rms");
  if (fit.residual_rms < 0.0) {
    invariant_failure(what + ".residual_rms must be non-negative",
                      "got " + std::to_string(fit.residual_rms));
  }
  check_finite(fit.r_squared, what + ".r_squared");
  if (fit.r_squared > 1.0 + 1e-9) {
    invariant_failure(what + ".r_squared must be <= 1",
                      "got " + std::to_string(fit.r_squared));
  }
}

void check_training_row(const TrainingRow& row) {
  if (row.n_vms < 1) {
    invariant_failure("training row needs at least one VM",
                      "n_vms = " + std::to_string(row.n_vms));
  }
  const struct {
    const char* name;
    double value;
    bool non_negative;
  } fields[] = {
      {"vm_sum.cpu", row.vm_sum.cpu, true},
      {"vm_sum.mem", row.vm_sum.mem, true},
      {"vm_sum.io", row.vm_sum.io, true},
      {"vm_sum.bw", row.vm_sum.bw, true},
      {"pm.cpu", row.pm.cpu, true},
      {"pm.mem", row.pm.mem, true},
      {"pm.io", row.pm.io, true},
      {"pm.bw", row.pm.bw, true},
      {"dom0_cpu", row.dom0_cpu, true},
      {"hyp_cpu", row.hyp_cpu, true},
  };
  for (const auto& f : fields) {
    const std::string what = std::string("training row ") + f.name;
    check_finite(f.value, what);
    if (f.non_negative && f.value < 0.0) {
      invariant_failure(what + " must be non-negative",
                        "got " + std::to_string(f.value));
    }
  }
}

InvariantAuditor::InvariantAuditor(sim::Cluster& cluster)
    : cluster_(cluster) {
  cluster_.engine().add_listener(this);
}

InvariantAuditor::~InvariantAuditor() {
  cluster_.engine().remove_listener(this);
}

void InvariantAuditor::tick(util::SimMicros now, double dt) {
  if (seen_tick_ && now <= last_now_) {
    invariant_failure("engine time must advance strictly per tick",
                      std::to_string(now) + " <= " + std::to_string(last_now_));
  }
  check_finite(dt, "tick dt");
  if (dt <= 0.0) {
    invariant_failure("tick dt must be positive", std::to_string(dt));
  }
  seen_tick_ = true;
  last_now_ = now;
  prev_.resize(cluster_.machine_count());
  for (std::size_t i = 0; i < cluster_.machine_count(); ++i) {
    audit_machine(i, now);
  }
  ++ticks_audited_;
}

void InvariantAuditor::audit_machine(std::size_t idx, util::SimMicros now) {
  const sim::PhysicalMachine& pm = cluster_.machine(idx);
  const sim::MachineSnapshot cur = pm.snapshot(now);
  const std::string who = "pm" + std::to_string(pm.id());
  MachineBaseline& base = prev_[idx];

  // Absolute validation always runs (finite, non-negative against the
  // zero origin — counters are cumulative from construction).
  const sim::MachineSnapshot zero;
  const sim::MachineSnapshot& ref = base.valid ? base.snap : zero;

  check_counters_step(ref.dom0.counters, cur.dom0.counters, who + ".dom0");
  check_counters_step(ref.hypervisor, cur.hypervisor, who + ".hypervisor");

  check_finite(cur.devices.disk_blocks, who + ".devices.disk_blocks");
  check_finite(cur.devices.nic_kbits, who + ".devices.nic_kbits");
  if (base.valid) {
    check_monotonic_time(ref.time, cur.time, who + " snapshot");
    if (cur.devices.disk_blocks < ref.devices.disk_blocks ||
        cur.devices.nic_kbits < ref.devices.nic_kbits) {
      invariant_failure(who + " device counters must be non-decreasing", "");
    }
  }

  for (const auto& g : cur.guests) {
    check_counters_step(sim::DomainCounters{}, g.counters, who + "." + g.name);
  }

  // Memory gauge: PM-level estimate (Sec. III-A) must be finite and
  // non-negative; per-domain gauges were validated above.
  const double mem = pm.memory_in_use_mib();
  check_finite(mem, who + " memory gauge");
  if (mem < 0.0) {
    invariant_failure(who + " memory gauge must be non-negative",
                      std::to_string(mem));
  }

  // Conservation needs two consecutive snapshots. Guests are matched by
  // name; a guest that appeared since the last tick (created, or
  // live-migrated in with its historical counters) joins the audit on
  // the next tick.
  const double window =
      base.valid ? util::to_seconds(cur.time - ref.time) : 0.0;
  if (window > 0.0) {
    const double slack = kCapacitySlack;
    const sim::MachineSpec& spec = pm.spec();

    // Guests: each VCPU allocation and the shared guest-core pool are
    // hard capacity limits the credit scheduler enforces; consumption
    // beyond them means CPU accounting leaked between domains.
    double guest_cpu_s = 0.0;
    for (const auto& g : cur.guests) {
      const sim::DomainCounters* prev_counters = nullptr;
      for (const auto& pg : ref.guests) {
        if (pg.name == g.name) {
          prev_counters = &pg.counters;
          break;
        }
      }
      if (prev_counters == nullptr) continue;
      if (g.counters.cpu_core_seconds < prev_counters->cpu_core_seconds) {
        invariant_failure(who + "." + g.name +
                              ".cpu_core_seconds must be non-decreasing",
                          "");
      }
      const double delta =
          g.counters.cpu_core_seconds - prev_counters->cpu_core_seconds;
      guest_cpu_s += delta;
      const sim::DomU* vm = pm.find_vm(g.name);
      const double vcpus = vm != nullptr
                               ? static_cast<double>(vm->spec().vcpus)
                               : static_cast<double>(spec.guest_cores);
      const double util_frac = delta / (vcpus * window);
      check_unit_interval(util_frac, who + "." + g.name + " CPU utilization",
                          slack * (1.0 + vcpus));
    }

    const double guest_cap_s = spec.guest_cpu_capacity_pct() / 100.0 * window;
    if (guest_cpu_s > guest_cap_s * (1.0 + slack)) {
      invariant_failure(who + " guest pool CPU exceeds guest cores",
                        std::to_string(guest_cpu_s) + " core-s > " +
                            std::to_string(guest_cap_s) + " core-s");
    }
    const double dom0_delta =
        cur.dom0.counters.cpu_core_seconds - ref.dom0.counters.cpu_core_seconds;
    const double dom0_cap_s = spec.dom0_cpu_capacity_pct() / 100.0 * window;
    if (dom0_delta > dom0_cap_s * (1.0 + slack)) {
      invariant_failure(who + " Dom0 CPU exceeds its pinned cores",
                        std::to_string(dom0_delta) + " core-s > " +
                            std::to_string(dom0_cap_s) + " core-s");
    }
    const double hyp_delta =
        cur.hypervisor.cpu_core_seconds - ref.hypervisor.cpu_core_seconds;
    // Conservation across the Fig. 1 layers: everything the PM accounts
    // (guests + Dom0 + hypervisor) must fit on the physical cores. The
    // hypervisor bucket is demand-driven but small; its saturating
    // response plus base cost stays well under one core, hence the
    // one-core headroom on top of the scheduler-enforced pools.
    const double total_cap_s = (static_cast<double>(spec.cores) + 1.0) * window;
    const double total = guest_cpu_s + dom0_delta + hyp_delta;
    if (total > total_cap_s * (1.0 + slack)) {
      invariant_failure(who + " total CPU accounting exceeds physical cores",
                        std::to_string(total) + " core-s > " +
                            std::to_string(total_cap_s) + " core-s");
    }
  }

  base.snap = cur;
  base.valid = true;
}

}  // namespace voprof::model
