#include "voprof/core/hetero_model.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::model {

int HeteroRow::total_vms() const noexcept {
  int n = 0;
  for (const auto& [name, obs] : types) n += obs.count;
  return n;
}

UtilVec HeteroRow::grand_sum() const noexcept {
  UtilVec s;
  for (const auto& [name, obs] : types) s += obs.sum;
  return s;
}

void HeteroTrainingSet::add(HeteroRow row) {
  VOPROF_REQUIRE_MSG(!row.types.empty(), "hetero row needs at least one type");
  for (const auto& [name, obs] : row.types) {
    VOPROF_REQUIRE_MSG(obs.count >= 0, "negative VM count");
    VOPROF_REQUIRE_MSG(!name.empty(), "empty type name");
  }
  rows_.push_back(std::move(row));
}

std::vector<std::string> HeteroTrainingSet::type_names() const {
  std::set<std::string> names;
  for (const auto& r : rows_) {
    for (const auto& [name, obs] : r.types) names.insert(name);
  }
  return {names.begin(), names.end()};
}

std::vector<double> HeteroModel::features_for(
    const std::vector<std::string>& type_order,
    const std::map<std::string, TypeObservation>& types) {
  std::vector<double> x;
  x.reserve(type_order.size() * kMetricCount + 1 + kMetricCount);
  UtilVec grand;
  int total = 0;
  for (const auto& t : type_order) {
    UtilVec sum;
    const auto it = types.find(t);
    if (it != types.end()) {
      sum = it->second.sum;
      grand += it->second.sum;
      total += it->second.count;
    }
    const auto a = sum.to_array();
    x.insert(x.end(), a.begin(), a.end());
  }
  // Unknown types still contribute to the co-location term.
  for (const auto& [name, obs] : types) {
    if (std::find(type_order.begin(), type_order.end(), name) ==
        type_order.end()) {
      grand += obs.sum;
      total += obs.count;
    }
  }
  const double alpha = MultiVmModel::alpha(std::max(total, 1));
  x.push_back(alpha);
  const auto g = grand.to_array();
  for (double v : g) x.push_back(alpha * v);
  return x;
}

std::vector<double> HeteroModel::features(
    const std::map<std::string, TypeObservation>& types) const {
  return features_for(types_, types);
}

HeteroModel HeteroModel::fit(const HeteroTrainingSet& data,
                             RegressionMethod method, std::uint64_t seed) {
  HeteroModel m;
  m.types_ = data.type_names();
  VOPROF_REQUIRE_MSG(!m.types_.empty(), "no types in the training set");
  const std::size_t n_features =
      m.types_.size() * kMetricCount + 1 + kMetricCount;
  VOPROF_REQUIRE_MSG(data.size() >= 2 * (n_features + 1),
                     "too few observations for the typed model");

  util::Matrix x(data.size(), n_features);
  std::array<std::vector<double>, kMetricCount> pm_resp;
  for (auto& v : pm_resp) v.resize(data.size());
  std::vector<double> dom0_resp(data.size()), hyp_resp(data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const HeteroRow& row = data.rows()[r];
    const std::vector<double> f = features_for(m.types_, row.types);
    VOPROF_ASSERT(f.size() == n_features);
    for (std::size_t c = 0; c < n_features; ++c) x(r, c) = f[c];
    const auto pa = row.pm.to_array();
    for (std::size_t k = 0; k < kMetricCount; ++k) pm_resp[k][r] = pa[k];
    dom0_resp[r] = row.dom0_cpu;
    hyp_resp[r] = row.hyp_cpu;
  }
  for (std::size_t k = 0; k < kMetricCount; ++k) {
    m.pm_fits_[k] = model::fit(method, x, pm_resp[k], seed + k);
  }
  m.dom0_fit_ = model::fit(method, x, dom0_resp, seed + 8);
  m.hyp_fit_ = model::fit(method, x, hyp_resp, seed + 9);
  m.trained_ = true;
  return m;
}

UtilVec HeteroModel::predict(
    const std::map<std::string, TypeObservation>& types) const {
  VOPROF_REQUIRE_MSG(trained_, "HeteroModel used before fitting");
  const std::vector<double> f = features(types);
  std::array<double, kMetricCount> out{};
  for (std::size_t k = 0; k < kMetricCount; ++k) {
    out[k] = pm_fits_[k].predict(f);
  }
  return UtilVec::from_array(out);
}

double HeteroModel::predict_dom0_cpu(
    const std::map<std::string, TypeObservation>& types) const {
  VOPROF_REQUIRE(trained_);
  return dom0_fit_.predict(features(types));
}

double HeteroModel::predict_hyp_cpu(
    const std::map<std::string, TypeObservation>& types) const {
  VOPROF_REQUIRE(trained_);
  return hyp_fit_.predict(features(types));
}

double HeteroModel::predict_pm_cpu_indirect(
    const std::map<std::string, TypeObservation>& types) const {
  VOPROF_REQUIRE(trained_);
  double guest_cpu = 0.0;
  for (const auto& [name, obs] : types) guest_cpu += obs.sum.cpu;
  return guest_cpu + predict_dom0_cpu(types) + predict_hyp_cpu(types);
}

const LinearFit& HeteroModel::fit_for(MetricIndex m) const {
  VOPROF_REQUIRE(trained_);
  return pm_fits_[static_cast<std::size_t>(m)];
}

const LinearFit& HeteroModel::dom0_fit() const {
  VOPROF_REQUIRE(trained_);
  return dom0_fit_;
}

const LinearFit& HeteroModel::hyp_fit() const {
  VOPROF_REQUIRE(trained_);
  return hyp_fit_;
}

HeteroModel HeteroModel::from_parts(
    std::vector<std::string> types,
    std::array<LinearFit, kMetricCount> pm_fits, LinearFit dom0,
    LinearFit hyp) {
  VOPROF_REQUIRE_MSG(!types.empty(), "typed model needs type names");
  const std::size_t n_coef =
      types.size() * kMetricCount + 1 + kMetricCount + 1;
  for (const auto& f : pm_fits) {
    VOPROF_REQUIRE_MSG(f.coef.size() == n_coef,
                       "coefficient count mismatch in from_parts");
  }
  VOPROF_REQUIRE(dom0.coef.size() == n_coef);
  VOPROF_REQUIRE(hyp.coef.size() == n_coef);
  HeteroModel m;
  m.types_ = std::move(types);
  m.pm_fits_ = std::move(pm_fits);
  m.dom0_fit_ = std::move(dom0);
  m.hyp_fit_ = std::move(hyp);
  m.trained_ = true;
  return m;
}

}  // namespace voprof::model
