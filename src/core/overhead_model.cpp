#include "voprof/core/overhead_model.hpp"

#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::model {

std::string metric_name(MetricIndex m) {
  switch (m) {
    case MetricIndex::kCpu:
      return "CPU";
    case MetricIndex::kMem:
      return "MEM";
    case MetricIndex::kIo:
      return "I/O";
    case MetricIndex::kBw:
      return "BW";
  }
  throw util::ContractViolation("unknown metric");
}

// ----------------------------------------------------------- TrainingSet
void TrainingSet::add(TrainingRow row) {
  VOPROF_REQUIRE(row.n_vms >= 1);
  rows_.push_back(std::move(row));
}

TrainingSet TrainingSet::with_vm_count(int n) const {
  TrainingSet out;
  for (const auto& r : rows_) {
    if (r.n_vms == n) out.rows_.push_back(r);
  }
  return out;
}

TrainingSet TrainingSet::with_vm_count_at_least(int n) const {
  TrainingSet out;
  for (const auto& r : rows_) {
    if (r.n_vms >= n) out.rows_.push_back(r);
  }
  return out;
}

void TrainingSet::append(const TrainingSet& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

util::Matrix TrainingSet::design() const {
  util::Matrix x(rows_.size(), kMetricCount);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto a = rows_[r].vm_sum.to_array();
    for (std::size_t c = 0; c < kMetricCount; ++c) x(r, c) = a[c];
  }
  return x;
}

std::vector<double> TrainingSet::response(MetricIndex m) const {
  std::vector<double> y;
  y.reserve(rows_.size());
  for (const auto& r : rows_) y.push_back(r.pm.get(m));
  return y;
}

std::vector<double> TrainingSet::response_dom0_cpu() const {
  std::vector<double> y;
  y.reserve(rows_.size());
  for (const auto& r : rows_) y.push_back(r.dom0_cpu);
  return y;
}

std::vector<double> TrainingSet::response_hyp_cpu() const {
  std::vector<double> y;
  y.reserve(rows_.size());
  for (const auto& r : rows_) y.push_back(r.hyp_cpu);
  return y;
}

// --------------------------------------------------------- SingleVmModel
SingleVmModel SingleVmModel::fit(const TrainingSet& data,
                                 RegressionMethod method,
                                 std::uint64_t seed) {
  VOPROF_REQUIRE_MSG(data.size() >= 2 * (kMetricCount + 1),
                     "too few observations to fit the single-VM model");
  const util::Matrix x = data.design();
  SingleVmModel m;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const auto metric = static_cast<MetricIndex>(i);
    m.fits_[i] = model::fit(method, x, data.response(metric), seed + i,
                            model_fit_config());
  }
  m.dom0_cpu_fit_ = model::fit(method, x, data.response_dom0_cpu(),
                              seed + 8, model_fit_config());
  m.hyp_cpu_fit_ = model::fit(method, x, data.response_hyp_cpu(),
                             seed + 9, model_fit_config());
  m.trained_ = true;
  return m;
}

double SingleVmModel::predict_dom0_cpu(const UtilVec& vm) const {
  VOPROF_REQUIRE(trained_);
  return dom0_cpu_fit_.predict(vm.to_array());
}

double SingleVmModel::predict_hyp_cpu(const UtilVec& vm) const {
  VOPROF_REQUIRE(trained_);
  return hyp_cpu_fit_.predict(vm.to_array());
}

const LinearFit& SingleVmModel::dom0_cpu_fit() const {
  VOPROF_REQUIRE(trained_);
  return dom0_cpu_fit_;
}

const LinearFit& SingleVmModel::hyp_cpu_fit() const {
  VOPROF_REQUIRE(trained_);
  return hyp_cpu_fit_;
}

SingleVmModel SingleVmModel::from_fits(
    std::array<LinearFit, kMetricCount> fits, LinearFit dom0_cpu,
    LinearFit hyp_cpu) {
  SingleVmModel m;
  for (const auto& f : fits) {
    VOPROF_REQUIRE_MSG(f.coef.size() == kMetricCount + 1,
                       "coefficient count mismatch in from_fits");
  }
  VOPROF_REQUIRE(dom0_cpu.coef.size() == kMetricCount + 1);
  VOPROF_REQUIRE(hyp_cpu.coef.size() == kMetricCount + 1);
  m.fits_ = std::move(fits);
  m.dom0_cpu_fit_ = std::move(dom0_cpu);
  m.hyp_cpu_fit_ = std::move(hyp_cpu);
  m.trained_ = true;
  return m;
}

UtilVec SingleVmModel::predict(const UtilVec& vm) const {
  VOPROF_REQUIRE_MSG(trained_, "SingleVmModel used before fitting");
  const auto x = vm.to_array();
  std::array<double, kMetricCount> out{};
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    out[i] = fits_[i].predict(x);
  }
  return UtilVec::from_array(out);
}

const LinearFit& SingleVmModel::fit_for(MetricIndex m) const {
  VOPROF_REQUIRE(trained_);
  return fits_[static_cast<std::size_t>(m)];
}

util::Matrix SingleVmModel::coefficient_matrix() const {
  VOPROF_REQUIRE(trained_);
  util::Matrix a(kMetricCount, kMetricCount + 1);
  for (std::size_t r = 0; r < kMetricCount; ++r) {
    for (std::size_t c = 0; c <= kMetricCount; ++c) {
      a(r, c) = fits_[r].coef[c];
    }
  }
  return a;
}

// ---------------------------------------------------------- MultiVmModel
MultiVmModel MultiVmModel::fit(const TrainingSet& data,
                               RegressionMethod method, std::uint64_t seed) {
  MultiVmModel m;
  const TrainingSet single = data.with_vm_count(1);
  m.base_ = SingleVmModel::fit(single, method, seed);

  const TrainingSet multi = data.with_vm_count_at_least(2);
  VOPROF_REQUIRE_MSG(multi.size() >= 2 * (kMetricCount + 1),
                     "too few multi-VM observations to fit Eq. (3)");

  // Residual regression: pm - a(sum M) = alpha(N) * o(sum M). With
  // varying N this is linear in o after scaling every design row (and
  // its intercept) by alpha(N); equivalently a weighted problem with
  // features z_j = alpha * x_j. We divide through by alpha instead
  // (alpha >= 1 on the multi subset), which keeps fit() reusable:
  //   (pm - a(sum M)) / alpha = o_0 + sum_j o_j * x_j   when x is
  // unchanged -- valid because o is applied to the *same* sum M.
  const std::size_t n = multi.size();
  util::Matrix x(n, kMetricCount);
  std::array<std::vector<double>, kMetricCount> resp;
  for (auto& v : resp) v.resize(n);
  std::vector<double> dom0_resp(n), hyp_resp(n);
  for (std::size_t r = 0; r < n; ++r) {
    const TrainingRow& row = multi.rows()[r];
    const double al = alpha(row.n_vms);
    VOPROF_ASSERT(al >= 1.0);
    const auto xa = row.vm_sum.to_array();
    for (std::size_t c = 0; c < kMetricCount; ++c) x(r, c) = xa[c];
    const UtilVec base_pred = m.base_.predict(row.vm_sum);
    const UtilVec resid = row.pm - base_pred;
    const auto ra = resid.to_array();
    for (std::size_t c = 0; c < kMetricCount; ++c) resp[c][r] = ra[c] / al;
    dom0_resp[r] =
        (row.dom0_cpu - m.base_.predict_dom0_cpu(row.vm_sum)) / al;
    hyp_resp[r] = (row.hyp_cpu - m.base_.predict_hyp_cpu(row.vm_sum)) / al;
  }
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    m.overhead_[i] = model::fit(method, x, resp[i], seed + 100 + i,
                                model_fit_config());
  }
  m.dom0_overhead_ = model::fit(method, x, dom0_resp, seed + 108,
                               model_fit_config());
  m.hyp_overhead_ = model::fit(method, x, hyp_resp, seed + 109,
                              model_fit_config());
  m.trained_ = true;
  return m;
}

double MultiVmModel::predict_dom0_cpu(const UtilVec& vm_sum,
                                      int n_vms) const {
  VOPROF_REQUIRE_MSG(trained_, "MultiVmModel used before fitting");
  VOPROF_REQUIRE(n_vms >= 1);
  double out = base_.predict_dom0_cpu(vm_sum);
  const double al = alpha(n_vms);
  if (al > 0.0) out += dom0_overhead_.predict(vm_sum.to_array()) * al;
  return out;
}

double MultiVmModel::predict_hyp_cpu(const UtilVec& vm_sum, int n_vms) const {
  VOPROF_REQUIRE_MSG(trained_, "MultiVmModel used before fitting");
  VOPROF_REQUIRE(n_vms >= 1);
  double out = base_.predict_hyp_cpu(vm_sum);
  const double al = alpha(n_vms);
  if (al > 0.0) out += hyp_overhead_.predict(vm_sum.to_array()) * al;
  return out;
}

double MultiVmModel::predict_pm_cpu_indirect(const UtilVec& vm_sum,
                                             int n_vms) const {
  return vm_sum.cpu + predict_dom0_cpu(vm_sum, n_vms) +
         predict_hyp_cpu(vm_sum, n_vms);
}

UtilVec MultiVmModel::predict(const UtilVec& vm_sum, int n_vms) const {
  VOPROF_REQUIRE_MSG(trained_, "MultiVmModel used before fitting");
  VOPROF_REQUIRE(n_vms >= 1);
  UtilVec out = base_.predict(vm_sum);
  const double al = alpha(n_vms);
  if (al > 0.0) {
    const auto x = vm_sum.to_array();
    std::array<double, kMetricCount> extra{};
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      extra[i] = overhead_[i].predict(x) * al;
    }
    out += UtilVec::from_array(extra);
  }
  return out;
}

const LinearFit& MultiVmModel::overhead_for(MetricIndex m) const {
  VOPROF_REQUIRE(trained_);
  return overhead_[static_cast<std::size_t>(m)];
}

const LinearFit& MultiVmModel::dom0_overhead_fit() const {
  VOPROF_REQUIRE(trained_);
  return dom0_overhead_;
}

const LinearFit& MultiVmModel::hyp_overhead_fit() const {
  VOPROF_REQUIRE(trained_);
  return hyp_overhead_;
}

MultiVmModel MultiVmModel::from_parts(
    SingleVmModel base, std::array<LinearFit, kMetricCount> overhead,
    LinearFit dom0_overhead, LinearFit hyp_overhead) {
  VOPROF_REQUIRE_MSG(base.trained(), "from_parts needs a trained base model");
  for (const auto& f : overhead) {
    VOPROF_REQUIRE(f.coef.size() == kMetricCount + 1);
  }
  VOPROF_REQUIRE(dom0_overhead.coef.size() == kMetricCount + 1);
  VOPROF_REQUIRE(hyp_overhead.coef.size() == kMetricCount + 1);
  MultiVmModel m;
  m.base_ = std::move(base);
  m.overhead_ = std::move(overhead);
  m.dom0_overhead_ = std::move(dom0_overhead);
  m.hyp_overhead_ = std::move(hyp_overhead);
  m.trained_ = true;
  return m;
}

util::Matrix MultiVmModel::overhead_matrix() const {
  VOPROF_REQUIRE(trained_);
  util::Matrix o(kMetricCount, kMetricCount + 1);
  for (std::size_t r = 0; r < kMetricCount; ++r) {
    for (std::size_t c = 0; c <= kMetricCount; ++c) {
      o(r, c) = overhead_[r].coef[c];
    }
  }
  return o;
}

}  // namespace voprof::model
