#include "voprof/core/predictor.hpp"

#include <cmath>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::model {

Predictor::Predictor(MultiVmModel model, bool indirect_cpu)
    : model_(std::move(model)), indirect_cpu_(indirect_cpu) {
  VOPROF_REQUIRE_MSG(model_.trained(), "Predictor needs a trained model");
}

PredictionEval Predictor::evaluate(const mon::MeasurementReport& report,
                                   const std::vector<std::string>& vm_names,
                                   double min_denominator) const {
  VOPROF_REQUIRE(!vm_names.empty());
  PredictionEval eval;
  const std::size_t n_samples = report.sample_count();
  const mon::SeriesSet& pm = report.series(mon::MeasurementReport::kPmKey);

  for (std::size_t i = 0; i < n_samples; ++i) {
    UtilVec vm_sum;
    util::SimMicros t = 0;
    for (const auto& name : vm_names) {
      const mon::SeriesSet& s = report.series(name);
      VOPROF_REQUIRE(s.cpu.size() == n_samples);
      t = s.cpu[i].time;
      vm_sum += UtilVec{s.cpu[i].value, s.mem[i].value, s.io[i].value,
                        s.bw[i].value};
    }
    const int n_vms = static_cast<int>(vm_names.size());
    UtilVec predicted = model_.predict(vm_sum, n_vms);
    if (indirect_cpu_) {
      predicted.cpu = model_.predict_pm_cpu_indirect(vm_sum, n_vms);
    }
    const UtilVec measured{pm.cpu[i].value, pm.mem[i].value, pm.io[i].value,
                           pm.bw[i].value};
    const auto pa = predicted.to_array();
    const auto ma = measured.to_array();
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      MetricEval& me = eval.metrics[m];
      me.predicted.add(t, pa[m]);
      me.measured.add(t, ma[m]);
      if (std::abs(ma[m]) > min_denominator) {
        me.errors_pct.push_back(std::abs(pa[m] - ma[m]) / std::abs(ma[m]) *
                                100.0);
      }
    }
  }
  for (auto& me : eval.metrics) {
    me.error_cdf = util::Cdf(me.errors_pct);
  }
  return eval;
}

}  // namespace voprof::model
