#include "voprof/core/serialize.hpp"

#include <fstream>
#include <sstream>

#include "voprof/util/assert.hpp"

namespace voprof::model {

namespace {

constexpr const char* kFormatHeader = "voprof-models v1";
constexpr const char* kHeteroHeader = "voprof-hetero-model v1";

void write_fit(std::ostream& os, const std::string& name,
               const LinearFit& f) {
  os << "fit " << name;
  os.precision(17);
  for (double c : f.coef) os << ' ' << c;
  os << ' ' << f.residual_rms << ' ' << f.r_squared << '\n';
}

LinearFit read_fit_n(std::istream& is, const std::string& expected_name,
                     std::size_t n_coef) {
  std::string tag, name;
  VOPROF_REQUIRE_MSG(static_cast<bool>(is >> tag >> name),
                     "truncated model file");
  VOPROF_REQUIRE_MSG(tag == "fit", "expected a 'fit' record");
  VOPROF_REQUIRE_MSG(name == expected_name,
                     "unexpected fit record: got '" + name + "', want '" +
                         expected_name + "'");
  LinearFit f;
  f.coef.resize(n_coef);
  for (double& c : f.coef) {
    VOPROF_REQUIRE_MSG(static_cast<bool>(is >> c), "truncated fit record");
  }
  VOPROF_REQUIRE(static_cast<bool>(is >> f.residual_rms >> f.r_squared));
  return f;
}

LinearFit read_fit(std::istream& is, const std::string& expected_name) {
  return read_fit_n(is, expected_name, kMetricCount + 1);
}

const std::array<std::string, kMetricCount> kMetricKeys = {"cpu", "mem",
                                                           "io", "bw"};

}  // namespace

util::CsvDocument training_set_to_csv(const TrainingSet& data) {
  util::CsvDocument csv({"n_vms", "vm_cpu", "vm_mem", "vm_io", "vm_bw",
                         "pm_cpu", "pm_mem", "pm_io", "pm_bw", "dom0_cpu",
                         "hyp_cpu"});
  for (const TrainingRow& r : data.rows()) {
    csv.add_row({static_cast<double>(r.n_vms), r.vm_sum.cpu, r.vm_sum.mem,
                 r.vm_sum.io, r.vm_sum.bw, r.pm.cpu, r.pm.mem, r.pm.io,
                 r.pm.bw, r.dom0_cpu, r.hyp_cpu});
  }
  return csv;
}

TrainingSet training_set_from_csv(const util::CsvDocument& csv) {
  TrainingSet data;
  for (std::size_t i = 0; i < csv.row_count(); ++i) {
    TrainingRow r;
    r.n_vms = static_cast<int>(csv.at(i, "n_vms"));
    r.vm_sum = UtilVec{csv.at(i, "vm_cpu"), csv.at(i, "vm_mem"),
                       csv.at(i, "vm_io"), csv.at(i, "vm_bw")};
    r.pm = UtilVec{csv.at(i, "pm_cpu"), csv.at(i, "pm_mem"),
                   csv.at(i, "pm_io"), csv.at(i, "pm_bw")};
    r.dom0_cpu = csv.at(i, "dom0_cpu");
    r.hyp_cpu = csv.at(i, "hyp_cpu");
    data.add(std::move(r));
  }
  return data;
}

void save_models(const TrainedModels& models, std::ostream& os) {
  VOPROF_REQUIRE_MSG(models.single.trained() && models.multi.trained(),
                     "cannot serialize untrained models");
  os << kFormatHeader << '\n';
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    write_fit(os, "single." + kMetricKeys[m],
              models.single.fit_for(static_cast<MetricIndex>(m)));
  }
  write_fit(os, "single.dom0_cpu", models.single.dom0_cpu_fit());
  write_fit(os, "single.hyp_cpu", models.single.hyp_cpu_fit());
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    write_fit(os, "multi.o." + kMetricKeys[m],
              models.multi.overhead_for(static_cast<MetricIndex>(m)));
  }
  write_fit(os, "multi.o.dom0_cpu", models.multi.dom0_overhead_fit());
  write_fit(os, "multi.o.hyp_cpu", models.multi.hyp_overhead_fit());
}

std::string models_to_string(const TrainedModels& models) {
  std::ostringstream os;
  save_models(models, os);
  return os.str();
}

util::Result<TrainedModels> load_models_result(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) {
    return util::Error{util::Errc::kParse, "empty model file", "models:1"};
  }
  if (header != kFormatHeader) {
    return util::Error{util::Errc::kUnsupported,
                       "unsupported model file header: '" + header + "'",
                       "models:1"};
  }
  // The record readers report malformed input through ContractViolation
  // (they predate Result); fold those into the single error surface.
  try {
    std::array<LinearFit, kMetricCount> single_fits;
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      single_fits[m] = read_fit(is, "single." + kMetricKeys[m]);
    }
    LinearFit dom0 = read_fit(is, "single.dom0_cpu");
    LinearFit hyp = read_fit(is, "single.hyp_cpu");
    std::array<LinearFit, kMetricCount> overhead;
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      overhead[m] = read_fit(is, "multi.o." + kMetricKeys[m]);
    }
    LinearFit dom0_o = read_fit(is, "multi.o.dom0_cpu");
    LinearFit hyp_o = read_fit(is, "multi.o.hyp_cpu");

    TrainedModels out;
    out.single = SingleVmModel::from_fits(single_fits, dom0, hyp);
    out.multi = MultiVmModel::from_parts(out.single, std::move(overhead),
                                         std::move(dom0_o), std::move(hyp_o));
    return out;
  } catch (const util::ContractViolation& e) {
    return util::Error{util::Errc::kParse, e.what(), "models"};
  }
}

util::Result<TrainedModels> models_from_string_result(
    const std::string& text) {
  std::istringstream is(text);
  return load_models_result(is);
}

util::Result<TrainedModels> load_models_file_result(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    return util::Error{util::Errc::kIo, "cannot open model file for reading",
                       path};
  }
  util::Result<TrainedModels> parsed = load_models_result(f);
  if (!parsed.ok()) {
    util::Error err = parsed.error();
    err.context = path + " (" + err.context + ")";
    return err;
  }
  return parsed;
}

TrainedModels load_models(std::istream& is) {
  return load_models_result(is).value_or_throw();
}

TrainedModels models_from_string(const std::string& text) {
  return models_from_string_result(text).value_or_throw();
}

void save_models_file(const TrainedModels& models, const std::string& path) {
  std::ofstream f(path);
  VOPROF_REQUIRE_MSG(f.good(), "cannot open model file for writing: " + path);
  save_models(models, f);
}

TrainedModels load_models_file(const std::string& path) {
  return load_models_file_result(path).value_or_throw();
}

// -------------------------------------------------------- typed model
void save_hetero_model(const HeteroModel& model, std::ostream& os) {
  VOPROF_REQUIRE_MSG(model.trained(),
                     "cannot serialize an untrained typed model");
  os << kHeteroHeader << '\n';
  os << "types";
  for (const auto& t : model.types()) os << ' ' << t;
  os << '\n';
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    write_fit(os, "pm." + kMetricKeys[m],
              model.fit_for(static_cast<MetricIndex>(m)));
  }
  write_fit(os, "dom0_cpu", model.dom0_fit());
  write_fit(os, "hyp_cpu", model.hyp_fit());
}

std::string hetero_model_to_string(const HeteroModel& model) {
  std::ostringstream os;
  save_hetero_model(model, os);
  return os.str();
}

HeteroModel load_hetero_model(std::istream& is) {
  std::string header;
  VOPROF_REQUIRE_MSG(static_cast<bool>(std::getline(is, header)),
                     "empty typed-model file");
  VOPROF_REQUIRE_MSG(header == kHeteroHeader,
                     "unsupported typed-model header: '" + header + "'");
  std::string types_line;
  VOPROF_REQUIRE_MSG(static_cast<bool>(std::getline(is, types_line)),
                     "missing types line");
  std::istringstream ts(types_line);
  std::string tag;
  VOPROF_REQUIRE(static_cast<bool>(ts >> tag) && tag == "types");
  std::vector<std::string> types;
  std::string t;
  while (ts >> t) types.push_back(t);
  VOPROF_REQUIRE_MSG(!types.empty(), "typed model has no types");
  const std::size_t n_coef = types.size() * kMetricCount + kMetricCount + 2;
  std::array<LinearFit, kMetricCount> pm_fits;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    pm_fits[m] = read_fit_n(is, "pm." + kMetricKeys[m], n_coef);
  }
  LinearFit dom0 = read_fit_n(is, "dom0_cpu", n_coef);
  LinearFit hyp = read_fit_n(is, "hyp_cpu", n_coef);
  return HeteroModel::from_parts(std::move(types), std::move(pm_fits),
                                 std::move(dom0), std::move(hyp));
}

HeteroModel hetero_model_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_hetero_model(is);
}

}  // namespace voprof::model
