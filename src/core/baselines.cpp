#include "voprof/core/baselines.hpp"

#include "voprof/util/assert.hpp"

namespace voprof::model {

UtilVec NaiveSumModel::predict(const UtilVec& vm_sum, int n_vms) const {
  VOPROF_REQUIRE(n_vms >= 1);
  return vm_sum;  // the whole point: no overhead whatsoever
}

Dom0IoModel Dom0IoModel::fit(const TrainingSet& data, RegressionMethod method,
                             std::uint64_t seed) {
  VOPROF_REQUIRE_MSG(data.size() >= 8,
                     "too few observations for the Dom0-I/O baseline");
  // Design restricted to [Mi, Mn] — the features of [14].
  util::Matrix x(data.size(), 2);
  std::vector<double> y(data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    x(r, 0) = data.rows()[r].vm_sum.io;
    x(r, 1) = data.rows()[r].vm_sum.bw;
    y[r] = data.rows()[r].dom0_cpu;
  }
  Dom0IoModel m;
  m.dom0_fit_ = model::fit(method, x, y, seed);
  m.trained_ = true;
  return m;
}

double Dom0IoModel::predict_dom0_cpu(const UtilVec& vm_sum) const {
  VOPROF_REQUIRE_MSG(trained_, "Dom0IoModel used before fitting");
  const std::array<double, 2> x = {vm_sum.io, vm_sum.bw};
  return dom0_fit_.predict(x);
}

double Dom0IoModel::predict_pm_cpu(const UtilVec& vm_sum, int n_vms) const {
  VOPROF_REQUIRE(n_vms >= 1);
  // [14] treats Dom0 as the whole virtualization overhead: no
  // hypervisor term.
  return vm_sum.cpu + predict_dom0_cpu(vm_sum);
}

const LinearFit& Dom0IoModel::dom0_fit() const {
  VOPROF_REQUIRE(trained_);
  return dom0_fit_;
}

}  // namespace voprof::model
