#include "voprof/core/trainer.hpp"

#include <string>
#include <utility>

#include "voprof/core/invariants.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/task_pool.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/engine.hpp"

namespace voprof::model {

namespace {

/// Zip the per-second samples of a finished measurement into
/// (VM-sum, PM) observation rows.
TrainingSet rows_from_report(const mon::MeasurementReport& report,
                             const std::vector<std::string>& vm_names) {
  TrainingSet out;
  const bool check = invariants_enabled();
  const std::size_t n_samples = report.sample_count();
  for (std::size_t i = 0; i < n_samples; ++i) {
    TrainingRow row;
    row.n_vms = static_cast<int>(vm_names.size());
    for (const auto& name : vm_names) {
      const mon::SeriesSet& s = report.series(name);
      VOPROF_REQUIRE(s.cpu.size() == n_samples);
      row.vm_sum += UtilVec{s.cpu[i].value, s.mem[i].value, s.io[i].value,
                            s.bw[i].value};
    }
    const mon::SeriesSet& pm = report.series(mon::MeasurementReport::kPmKey);
    row.pm = UtilVec{pm.cpu[i].value, pm.mem[i].value, pm.io[i].value,
                     pm.bw[i].value};
    row.dom0_cpu =
        report.series(mon::MeasurementReport::kDom0Key).cpu[i].value;
    row.hyp_cpu = report.series(mon::MeasurementReport::kHypKey).cpu[i].value;
    if (check) check_training_row(row);
    out.add(std::move(row));
  }
  return out;
}

}  // namespace

Trainer::Trainer(TrainerConfig config) : config_(std::move(config)) {
  VOPROF_REQUIRE(!config_.vm_counts.empty());
  VOPROF_REQUIRE(!config_.kinds.empty());
  VOPROF_REQUIRE(config_.duration > 0);
}

TrainingSet Trainer::collect_run(wl::WorkloadKind kind, std::size_t level,
                                 int n_vms) const {
  VOPROF_WALL_SPAN("trainer", "collect_run");
  static obs::Counter& runs =
      obs::Registry::global().counter("trainer.collect_runs");
  runs.add();
  VOPROF_REQUIRE(n_vms >= 1);
  // A fresh testbed per cell, like the paper's repeated experiments.
  // Seeds are derived from the cell coordinates for reproducibility.
  const std::uint64_t cell_seed =
      config_.seed ^ (static_cast<std::uint64_t>(kind) << 8) ^
      (static_cast<std::uint64_t>(level) << 16) ^
      (static_cast<std::uint64_t>(n_vms) << 24);

  sim::Engine engine;
  sim::Cluster cluster(engine, config_.costs, cell_seed);
  sim::PhysicalMachine& pm = cluster.add_machine(config_.machine);

  std::vector<std::string> vm_names;
  for (int k = 0; k < n_vms; ++k) {
    sim::VmSpec spec = config_.vm;
    spec.name = "vm" + std::to_string(k + 1);
    sim::DomU& vm = pm.add_vm(spec);
    // BW workloads target VMs in other PMs (Sec. IV-B); an external
    // sink exercises the same sender-side paths.
    vm.attach(wl::make_workload(kind, level, sim::NetTarget{},
                                cell_seed + static_cast<std::uint64_t>(k)));
    vm_names.push_back(spec.name);
  }

  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report = monitor.measure(config_.duration);
  return rows_from_report(report, vm_names);
}

TrainingSet Trainer::collect() const {
  VOPROF_WALL_SPAN("trainer", "collect");
  // Cells are enumerated in the historical loop order; collect_run
  // seeds each from its coordinates alone, so cells can execute on any
  // worker while the index-ordered append below reproduces the serial
  // data set byte for byte.
  struct Cell {
    wl::WorkloadKind kind;
    std::size_t level;
    int n_vms;
  };
  std::vector<Cell> cells;
  for (int n : config_.vm_counts) {
    for (wl::WorkloadKind kind : config_.kinds) {
      for (std::size_t level = 0; level < wl::kLevelCount; ++level) {
        cells.push_back(Cell{kind, level, n});
      }
    }
  }

  util::TaskPool pool(config_.jobs <= 0
                          ? 0
                          : static_cast<std::size_t>(config_.jobs));
  std::vector<TrainingSet> parts =
      pool.parallel_map(cells.size(), [this, &cells](std::size_t i) {
        const Cell& cell = cells[i];
        return collect_run(cell.kind, cell.level, cell.n_vms);
      });

  TrainingSet all;
  for (const TrainingSet& part : parts) all.append(part);
  return all;
}

TrainedModels Trainer::train(RegressionMethod method) const {
  VOPROF_WALL_SPAN("trainer", "train");
  return fit_models(collect(), method, config_.seed);
}

TrainedModels Trainer::fit_models(TrainingSet data, RegressionMethod method,
                                  std::uint64_t seed) {
  TrainedModels out;
  out.single = SingleVmModel::fit(data.with_vm_count(1), method, seed);
  out.multi = MultiVmModel::fit(data, method, seed);
  out.data = std::move(data);
  return out;
}

}  // namespace voprof::model
