#include "voprof/workloads/hogs.hpp"

#include <algorithm>

#include "voprof/util/assert.hpp"
#include "voprof/util/table.hpp"

namespace voprof::wl {

// ---------------------------------------------------------------- CpuHog
CpuHog::CpuHog(double target_pct, std::uint64_t seed)
    : target_pct_(target_pct), rng_(seed) {
  VOPROF_REQUIRE(target_pct >= 0.0 && target_pct <= 100.0);
}

sim::ProcessDemand CpuHog::demand(util::SimMicros /*now*/, double /*dt*/) {
  sim::ProcessDemand d;
  // lookbusy's duty cycling is not perfectly sharp; +-0.5 % absolute.
  d.cpu_pct = std::clamp(target_pct_ + 0.5 * rng_.gaussian(), 0.0, 100.0);
  return d;
}

std::string CpuHog::label() const {
  return "cpu-hog(" + util::fmt(target_pct_, 0) + "%)";
}

void CpuHog::set_target_pct(double pct) {
  VOPROF_REQUIRE(pct >= 0.0 && pct <= 100.0);
  target_pct_ = pct;
}

// ---------------------------------------------------------------- MemHog
MemHog::MemHog(double mem_mib, std::uint64_t seed)
    : mem_mib_(mem_mib), rng_(seed) {
  VOPROF_REQUIRE(mem_mib >= 0.0);
}

sim::ProcessDemand MemHog::demand(util::SimMicros /*now*/, double /*dt*/) {
  sim::ProcessDemand d;
  d.mem_mib = mem_mib_;
  // The touch loop costs almost nothing at Table II sizes; the paper
  // reports all CPU metrics constant under the memory benchmark
  // (Sec. III-C).
  d.cpu_pct = std::max(0.0, 0.1 + 0.02 * rng_.gaussian());
  return d;
}

std::string MemHog::label() const {
  return "mem-hog(" + util::fmt(mem_mib_, 2) + "MiB)";
}

// ----------------------------------------------------------------- IoHog
IoHog::IoHog(double blocks_per_s, std::uint64_t seed)
    : blocks_per_s_(blocks_per_s), rng_(seed) {
  VOPROF_REQUIRE(blocks_per_s >= 0.0);
}

double IoHog::pump_cpu_pct(double blocks_per_s) noexcept {
  // Calibrated to the flat ~0.84 % VM CPU of Fig. 2(c) at the top
  // Table II level: 0.7 % base plus 0.14 % at 72 blocks/s.
  return 0.7 + 0.14 * (blocks_per_s / 72.0);
}

sim::ProcessDemand IoHog::demand(util::SimMicros /*now*/, double dt) {
  sim::ProcessDemand d;
  d.io_blocks = blocks_per_s_ * dt;
  d.cpu_pct = std::max(0.0, pump_cpu_pct(blocks_per_s_) *
                                (1.0 + 0.02 * rng_.gaussian()));
  return d;
}

std::string IoHog::label() const {
  return "io-hog(" + util::fmt(blocks_per_s_, 0) + "blocks/s)";
}

// --------------------------------------------------------------- NetPing
NetPing::NetPing(double rate_kbps, sim::NetTarget target, std::uint64_t seed)
    : rate_kbps_(rate_kbps), target_(std::move(target)), rng_(seed) {
  VOPROF_REQUIRE(rate_kbps >= 0.0);
}

double NetPing::pump_cpu_pct(double rate_kbps) noexcept {
  // Fig. 2(e): VM CPU climbs 0.5 % -> 3 % across the 0 -> 1280 Kb/s
  // sweep: 0.5 + 0.00195 * 1280 = 3.0.
  return 0.5 + 0.00195 * rate_kbps;
}

sim::ProcessDemand NetPing::demand(util::SimMicros /*now*/, double dt) {
  sim::ProcessDemand d;
  d.cpu_pct = std::max(0.0, pump_cpu_pct(rate_kbps_) *
                                (1.0 + 0.02 * rng_.gaussian()));
  if (rate_kbps_ > 0.0) {
    d.flows.push_back(sim::NetFlow{rate_kbps_ * dt, target_});
  }
  return d;
}

std::string NetPing::label() const {
  return "net-ping(" + util::fmt(rate_kbps_, 1) + "Kb/s)";
}

// --------------------------------------------------------- MixedWorkload
MixedWorkload::MixedWorkload(Levels levels, sim::NetTarget bw_target,
                             std::uint64_t seed)
    : levels_(levels), target_(std::move(bw_target)), rng_(seed) {
  VOPROF_REQUIRE(levels_.cpu_pct >= 0.0 && levels_.cpu_pct <= 100.0);
  VOPROF_REQUIRE(levels_.mem_mib >= 0.0);
  VOPROF_REQUIRE(levels_.io_blocks_per_s >= 0.0);
  VOPROF_REQUIRE(levels_.bw_kbps >= 0.0);
}

sim::ProcessDemand MixedWorkload::demand(util::SimMicros /*now*/,
                                         double dt) {
  sim::ProcessDemand d;
  // Own compute plus the side-costs of pumping I/O and packets (same
  // models as the single-resource hogs).
  const double side = (levels_.io_blocks_per_s > 0.0
                           ? IoHog::pump_cpu_pct(levels_.io_blocks_per_s)
                           : 0.0) +
                      (levels_.bw_kbps > 0.0
                           ? NetPing::pump_cpu_pct(levels_.bw_kbps)
                           : 0.0);
  d.cpu_pct = std::clamp(
      levels_.cpu_pct + side + 0.5 * rng_.gaussian(), 0.0, 100.0);
  d.mem_mib = levels_.mem_mib;
  d.io_blocks = levels_.io_blocks_per_s * dt;
  if (levels_.bw_kbps > 0.0) {
    d.flows.push_back(sim::NetFlow{levels_.bw_kbps * dt, target_});
  }
  return d;
}

std::string MixedWorkload::label() const {
  return "mixed(" + util::fmt(levels_.cpu_pct, 0) + "%," +
         util::fmt(levels_.io_blocks_per_s, 0) + "blk/s," +
         util::fmt(levels_.bw_kbps, 0) + "Kb/s)";
}

}  // namespace voprof::wl
