#include "voprof/workloads/trace.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "voprof/util/assert.hpp"
#include "voprof/util/rng.hpp"
#include "voprof/util/units.hpp"

namespace voprof::wl {

TraceWorkload::TraceWorkload(std::vector<TracePoint> trace,
                             sim::NetTarget bw_target, bool loop)
    : trace_(std::move(trace)), bw_target_(std::move(bw_target)),
      loop_(loop) {
  VOPROF_REQUIRE_MSG(!trace_.empty(), "trace replay needs at least one point");
  cumulative_s_.reserve(trace_.size());
  for (const TracePoint& p : trace_) {
    VOPROF_REQUIRE_MSG(p.duration_s > 0.0, "trace durations must be positive");
    VOPROF_REQUIRE(p.cpu_pct >= 0.0 && p.mem_mib >= 0.0 &&
                   p.io_blocks_per_s >= 0.0 && p.bw_kbps >= 0.0);
    total_s_ += p.duration_s;
    cumulative_s_.push_back(total_s_);
  }
}

std::size_t TraceWorkload::index_at(util::SimMicros now) const {
  double t = util::to_seconds(now);
  if (loop_) {
    t = std::fmod(t, total_s_);
  } else if (t >= total_s_) {
    return trace_.size() - 1;
  }
  const auto it =
      std::upper_bound(cumulative_s_.begin(), cumulative_s_.end(), t);
  const auto idx = static_cast<std::size_t>(it - cumulative_s_.begin());
  return std::min(idx, trace_.size() - 1);
}

sim::ProcessDemand TraceWorkload::demand(util::SimMicros now, double dt) {
  const TracePoint& p = trace_[index_at(now)];
  sim::ProcessDemand d;
  d.cpu_pct = p.cpu_pct;
  d.mem_mib = p.mem_mib;
  d.io_blocks = p.io_blocks_per_s * dt;
  if (p.bw_kbps > 0.0) {
    d.flows.push_back(sim::NetFlow{p.bw_kbps * dt, bw_target_});
  }
  return d;
}

std::string TraceWorkload::label() const {
  return "trace-replay(" + std::to_string(trace_.size()) + " points" +
         (loop_ ? ", looping)" : ")");
}

std::vector<TracePoint> trace_from_csv(const util::CsvDocument& csv,
                                       const std::string& prefix,
                                       double interval_s) {
  VOPROF_REQUIRE(interval_s > 0.0);
  const std::string cpu_col = prefix + "cpu";
  const std::string mem_col = prefix + "mem";
  const std::string io_col = prefix + "io";
  const std::string bw_col = prefix + "bw";
  VOPROF_REQUIRE_MSG(csv.has_column(cpu_col),
                     "trace CSV lacks column: " + cpu_col);
  std::vector<TracePoint> out;
  out.reserve(csv.row_count());
  for (std::size_t i = 0; i < csv.row_count(); ++i) {
    TracePoint p;
    p.duration_s = interval_s;
    p.cpu_pct = csv.at(i, cpu_col);
    if (csv.has_column(mem_col)) p.mem_mib = csv.at(i, mem_col);
    if (csv.has_column(io_col)) p.io_blocks_per_s = csv.at(i, io_col);
    if (csv.has_column(bw_col)) p.bw_kbps = csv.at(i, bw_col);
    out.push_back(p);
  }
  VOPROF_REQUIRE_MSG(!out.empty(), "trace CSV has no rows");
  return out;
}

std::vector<TracePoint> make_diurnal_trace(const DiurnalSpec& spec,
                                           std::uint64_t seed) {
  VOPROF_REQUIRE(spec.points >= 2);
  VOPROF_REQUIRE(spec.period_s > 0.0);
  VOPROF_REQUIRE(spec.noise_rel >= 0.0);
  VOPROF_REQUIRE(spec.cpu_peak_pct >= spec.cpu_trough_pct);
  VOPROF_REQUIRE(spec.bw_peak_kbps >= spec.bw_trough_kbps);
  VOPROF_REQUIRE(spec.io_peak_blocks >= spec.io_trough_blocks);
  util::Rng rng(seed);
  std::vector<TracePoint> out;
  out.reserve(spec.points);
  const double two_pi = 6.283185307179586;
  for (std::size_t i = 0; i < spec.points; ++i) {
    // Phase shifted so the trace starts at the trough (night).
    const double phase =
        two_pi * static_cast<double>(i) / static_cast<double>(spec.points);
    const double level = 0.5 - 0.5 * std::cos(phase);  // 0 -> 1 -> 0
    auto swing = [&](double lo, double hi) {
      const double v = lo + (hi - lo) * level;
      return std::max(0.0, v * (1.0 + spec.noise_rel * rng.gaussian()));
    };
    TracePoint p;
    p.duration_s = spec.period_s / static_cast<double>(spec.points);
    p.cpu_pct = std::min(100.0, swing(spec.cpu_trough_pct, spec.cpu_peak_pct));
    p.bw_kbps = swing(spec.bw_trough_kbps, spec.bw_peak_kbps);
    p.io_blocks_per_s = swing(spec.io_trough_blocks, spec.io_peak_blocks);
    p.mem_mib = spec.mem_mib;
    out.push_back(p);
  }
  return out;
}

}  // namespace voprof::wl
