#include "voprof/workloads/levels.hpp"

#include "voprof/util/assert.hpp"

namespace voprof::wl {

double level_value(WorkloadKind kind, std::size_t level) {
  VOPROF_REQUIRE_MSG(level < kLevelCount, "Table II has 5 levels");
  switch (kind) {
    case WorkloadKind::kCpu:
      return kCpuLevelsPct[level];
    case WorkloadKind::kMem:
      return kMemLevelsMib[level];
    case WorkloadKind::kIo:
      return kIoLevelsBlocks[level];
    case WorkloadKind::kBw:
      return kBwLevelsKbps[level];
  }
  throw util::ContractViolation("unknown workload kind");
}

std::string kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return "CPU-intensive";
    case WorkloadKind::kMem:
      return "MEM-intensive";
    case WorkloadKind::kIo:
      return "I/O-intensive";
    case WorkloadKind::kBw:
      return "BW-intensive";
  }
  throw util::ContractViolation("unknown workload kind");
}

std::string kind_unit(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return "%";
    case WorkloadKind::kMem:
      return "Mb";
    case WorkloadKind::kIo:
      return "blocks/s";
    case WorkloadKind::kBw:
      return "Kb/s";
  }
  throw util::ContractViolation("unknown workload kind");
}

std::unique_ptr<sim::GuestProcess> make_workload(WorkloadKind kind,
                                                 std::size_t level,
                                                 sim::NetTarget bw_target,
                                                 std::uint64_t seed) {
  return make_workload_value(kind, level_value(kind, level),
                             std::move(bw_target), seed);
}

std::unique_ptr<sim::GuestProcess> make_workload_value(
    WorkloadKind kind, double value, sim::NetTarget bw_target,
    std::uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return std::make_unique<CpuHog>(value, seed);
    case WorkloadKind::kMem:
      return std::make_unique<MemHog>(value, seed);
    case WorkloadKind::kIo:
      return std::make_unique<IoHog>(value, seed);
    case WorkloadKind::kBw:
      return std::make_unique<NetPing>(value, std::move(bw_target), seed);
  }
  throw util::ContractViolation("unknown workload kind");
}

}  // namespace voprof::wl
