#include "voprof/xensim/process.hpp"

#include <iterator>
#include <utility>

namespace voprof::sim {

ProcessDemand& ProcessDemand::operator+=(const ProcessDemand& other) {
  cpu_pct += other.cpu_pct;
  mem_mib += other.mem_mib;
  io_blocks += other.io_blocks;
  flows.insert(flows.end(), other.flows.begin(), other.flows.end());
  return *this;
}

ProcessDemand& ProcessDemand::operator+=(ProcessDemand&& other) {
  cpu_pct += other.cpu_pct;
  mem_mib += other.mem_mib;
  io_blocks += other.io_blocks;
  if (flows.empty()) {
    flows = std::move(other.flows);
  } else {
    flows.insert(flows.end(), std::make_move_iterator(other.flows.begin()),
                 std::make_move_iterator(other.flows.end()));
  }
  return *this;
}

void GuestProcess::granted(double /*cpu_frac*/, util::SimMicros /*now*/,
                           double /*dt*/) {}

void GuestProcess::on_receive(double /*kbits*/, int /*tag*/,
                              util::SimMicros /*now*/) {}

}  // namespace voprof::sim
