#include "voprof/xensim/credit_micro.hpp"

#include <algorithm>
#include <numeric>

#include "voprof/obs/metrics.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::sim {

namespace {

struct MicroSchedMetrics {
  obs::Counter& ticks;
  obs::Counter& contended;
  obs::Counter& redistributions;

  static MicroSchedMetrics& get() {
    static MicroSchedMetrics m{
        obs::Registry::global().counter("credit_micro.ticks"),
        obs::Registry::global().counter("credit_micro.contended_ticks"),
        obs::Registry::global().counter("credit_micro.redistributions")};
    return m;
  }
};

}  // namespace

MicroCreditScheduler::MicroCreditScheduler(int cores, double efficiency)
    : cores_(cores), efficiency_(efficiency) {
  VOPROF_REQUIRE(cores > 0);
  VOPROF_REQUIRE(efficiency > 0.0 && efficiency <= 1.0);
}

double MicroCreditScheduler::credits(std::size_t vcpu) const {
  VOPROF_REQUIRE(vcpu < credits_.size());
  return credits_[vcpu];
}

void MicroCreditScheduler::redistribute(
    const std::vector<SchedRequest>& requests) {
  // One accounting period's pool: cores * period seconds of core time.
  MicroSchedMetrics::get().redistributions.add();
  const double pool =
      kCreditsPerCoreSecond * kAccountingPeriodS * static_cast<double>(cores_);
  double total_weight = 0.0;
  for (const auto& r : requests) total_weight += r.weight;
  if (total_weight <= 0.0) return;
  const double cap =
      kBalanceCapPeriods * pool / static_cast<double>(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    credits_[i] += pool * requests[i].weight / total_weight;
    credits_[i] = std::min(credits_[i], cap);
  }
}

SchedResult MicroCreditScheduler::tick(
    const std::vector<SchedRequest>& requests, double dt) {
  SchedResult result;
  tick_into(requests, dt, result);
  return result;
}

void MicroCreditScheduler::tick_into(
    const std::vector<SchedRequest>& requests, double dt, SchedResult& out) {
  VOPROF_REQUIRE(dt > 0.0);
  SchedResult& result = out;
  result.granted_pct.assign(requests.size(), 0.0);
  result.total_granted_pct = 0.0;
  result.contended = false;
  if (requests.empty()) return;

  if (credits_.size() != requests.size()) {
    // Population changed (VM created/destroyed): reset balances.
    credits_.assign(requests.size(), 0.0);
    since_accounting_s_ = 0.0;
    redistribute(requests);
  }

  std::size_t runnable = 0;
  for (const auto& r : requests) {
    VOPROF_REQUIRE(r.demand_pct >= 0.0);
    VOPROF_REQUIRE(r.weight > 0.0);
    if (r.demand_pct > 0.0) ++runnable;
  }

  // Per-tick core time, with the co-location efficiency loss.
  const double per_core_time =
      dt * (runnable >= 2 ? efficiency_ : 1.0);

  // Remaining demand of each VCPU this tick, in core-seconds.
  std::vector<double>& want = want_;
  want.assign(requests.size(), 0.0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    want[i] = std::min(requests[i].demand_pct, requests[i].cap_pct) / 100.0 *
              dt;
  }

  // Priority order: UNDER (credits > 0) before OVER, larger balance
  // first within a class — Xen's runqueue ordering at this granularity.
  std::vector<std::size_t>& order = order_;
  order.resize(requests.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    const bool ua = credits_[a] > 0.0, ub = credits_[b] > 0.0;
    if (ua != ub) return ua;
    if (credits_[a] != credits_[b]) return credits_[a] > credits_[b];
    return a < b;
  });

  // Each core serves candidates in priority order; early finishers
  // donate their slack to the next candidate (work conservation).
  double core_time_left = per_core_time * static_cast<double>(cores_);
  for (std::size_t idx : order) {
    if (core_time_left <= 1e-15) break;
    if (want[idx] <= 0.0) continue;
    // A VCPU cannot run on two cores at once: at most one core-tick.
    const double slice = std::min({want[idx], per_core_time, core_time_left});
    result.granted_pct[idx] = slice / dt * 100.0;
    credits_[idx] -= slice * kCreditsPerCoreSecond;
    core_time_left -= slice;
  }

  for (double g : result.granted_pct) result.total_granted_pct += g;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (result.granted_pct[i] / 100.0 * dt + 1e-12 < want[i]) {
      result.contended = true;
      break;
    }
  }

  MicroSchedMetrics::get().ticks.add();
  if (result.contended) {
    MicroSchedMetrics::get().contended.add();
  }

  since_accounting_s_ += dt;
  if (since_accounting_s_ >= kAccountingPeriodS - 1e-12) {
    since_accounting_s_ = 0.0;
    redistribute(requests);
  }
}

}  // namespace voprof::sim
