#include "voprof/xensim/migration.hpp"

#include <algorithm>

#include "voprof/util/assert.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::sim {

namespace {
/// MiB of resident memory -> Kb on the wire.
double mib_to_kbits(double mib) { return mib * 1024.0 * 8.0; }
}  // namespace

MigrationEngine::MigrationEngine(Cluster& cluster) : cluster_(cluster) {}

int MigrationEngine::start(const std::string& vm_name, int from_pm,
                           int to_pm, MigrationConfig config) {
  VOPROF_REQUIRE_MSG(from_pm != to_pm,
                     "migration source and destination must differ");
  PhysicalMachine* src = cluster_.machine_by_id(from_pm);
  PhysicalMachine* dst = cluster_.machine_by_id(to_pm);
  VOPROF_REQUIRE_MSG(src != nullptr, "unknown source PM");
  VOPROF_REQUIRE_MSG(dst != nullptr, "unknown destination PM");
  DomU* vm = src->find_vm(vm_name);
  VOPROF_REQUIRE_MSG(vm != nullptr, "VM not on source PM: " + vm_name);
  VOPROF_REQUIRE_MSG(dst->find_vm(vm_name) == nullptr,
                     "destination already hosts a VM named " + vm_name);
  for (const auto& a : active_) {
    VOPROF_REQUIRE_MSG(status_[static_cast<std::size_t>(a.id)].vm_name !=
                           vm_name,
                       "VM is already migrating: " + vm_name);
  }
  VOPROF_REQUIRE(config.rate_kbps > 0.0);
  VOPROF_REQUIRE(config.dirty_factor >= 0.0);

  MigrationStatus st;
  st.vm_name = vm_name;
  st.from_pm = from_pm;
  st.to_pm = to_pm;
  st.total_kbits =
      mib_to_kbits(vm->counters().mem_mib) * (1.0 + config.dirty_factor);
  st.started = cluster_.engine().now();
  const int id = static_cast<int>(status_.size());
  if (TraceLog* log = cluster_.trace_log()) {
    log->record({st.started, TraceEventType::kMigrationStarted, from_pm,
                 vm_name, st.total_kbits});
  }
  status_.push_back(st);
  active_.push_back(Active{id, config});
  return id;
}

const MigrationStatus& MigrationEngine::status(int id) const {
  VOPROF_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < status_.size());
  return status_[static_cast<std::size_t>(id)];
}

std::size_t MigrationEngine::active_count() const noexcept {
  return active_.size();
}

void MigrationEngine::tick(util::SimMicros now, double dt) {
  for (std::size_t i = 0; i < active_.size();) {
    Active& a = active_[i];
    MigrationStatus& st = status_[static_cast<std::size_t>(a.id)];
    PhysicalMachine* src = cluster_.machine_by_id(st.from_pm);
    PhysicalMachine* dst = cluster_.machine_by_id(st.to_pm);
    DomU* vm = src != nullptr ? src->find_vm(st.vm_name) : nullptr;
    if (vm == nullptr || dst == nullptr) {
      st.failed = true;
      st.done = true;
      st.finished = now;
      if (TraceLog* log = cluster_.trace_log()) {
        log->record({now, TraceEventType::kMigrationFailed, st.from_pm,
                     st.vm_name, st.sent_kbits});
      }
      active_.erase(active_.begin() + static_cast<long>(i));
      continue;
    }

    // Stream a chunk of memory through both Dom0s and NICs. The
    // injected traffic pays the normal netback CPU and NIC byte costs
    // on both machines next tick.
    const double chunk =
        std::min(a.config.rate_kbps * dt, st.total_kbits - st.sent_kbits);
    src->inject_dom0_traffic(chunk, 0.0);
    dst->inject_dom0_traffic(0.0, chunk);
    st.sent_kbits += chunk;

    if (st.sent_kbits >= st.total_kbits - 1e-9) {
      // Switchover: one tick of blackout (the domain misses at most
      // one scheduling quantum, ~10 ms, matching Xen's stop-and-copy).
      std::unique_ptr<DomU> moved = src->extract_vm(st.vm_name);
      VOPROF_ASSERT(moved != nullptr);
      dst->adopt_vm(std::move(moved));
      st.done = true;
      st.finished = now;
      if (TraceLog* log = cluster_.trace_log()) {
        log->record({now, TraceEventType::kMigrationFinished, st.to_pm,
                     st.vm_name, st.total_kbits});
      }
      const int finished_id = a.id;
      active_.erase(active_.begin() + static_cast<long>(i));
      if (on_complete_) on_complete_(finished_id);
      continue;
    }
    ++i;
  }
}

}  // namespace voprof::sim
