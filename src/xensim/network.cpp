#include "voprof/xensim/network.hpp"

#include <algorithm>

#include "voprof/util/assert.hpp"

namespace voprof::sim {

NetworkFabric::NetworkFabric(FabricSpec spec) : spec_(spec) {
  VOPROF_REQUIRE(spec_.capacity_kbps > 0.0);
  VOPROF_REQUIRE(spec_.latency >= 0);
}

void NetworkFabric::submit(const OutboundFlow& flow, int /*from_pm*/,
                           util::SimMicros now) {
  VOPROF_REQUIRE(flow.kbits >= 0.0);
  VOPROF_REQUIRE_MSG(!flow.target.is_external(),
                     "external flows never enter the fabric");
  if (flow.kbits <= 0.0) return;
  queue_.push_back(InFlight{now + spec_.latency, flow.target.pm_id,
                            flow.target.vm_name, flow.kbits, flow.tag});
}

std::vector<FabricDelivery> NetworkFabric::advance(util::SimMicros now,
                                                   double dt) {
  VOPROF_REQUIRE(dt > 0.0);
  std::vector<FabricDelivery> out;
  double budget = spec_.capacity_kbps * dt;
  while (!queue_.empty() && budget > 1e-15) {
    InFlight& head = queue_.front();
    if (head.ready_at > now) break;  // latency not yet elapsed (FIFO)
    const double chunk = std::min(head.kbits, budget);
    budget -= chunk;
    switched_kbits_ += chunk;
    head.kbits -= chunk;
    // Merge into the previous delivery when the same flow spilled
    // across budget boundaries.
    if (!out.empty() && out.back().to_pm == head.to_pm &&
        out.back().vm_name == head.vm_name && out.back().tag == head.tag) {
      out.back().kbits += chunk;
    } else {
      out.push_back(FabricDelivery{head.to_pm, head.vm_name, chunk,
                                   head.tag});
    }
    if (head.kbits <= 1e-12) queue_.pop_front();
  }
  return out;
}

double NetworkFabric::backlog_kbits() const noexcept {
  double s = 0.0;
  for (const auto& f : queue_) s += f.kbits;
  return s;
}

}  // namespace voprof::sim
