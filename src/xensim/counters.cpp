#include "voprof/xensim/counters.hpp"

#include "voprof/util/assert.hpp"

namespace voprof::sim {

const DomainSnapshot& MachineSnapshot::guest(const std::string& name) const {
  for (const auto& g : guests) {
    if (g.name == name) return g;
  }
  throw util::ContractViolation("no such guest in snapshot: " + name);
}

}  // namespace voprof::sim
