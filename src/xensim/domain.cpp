#include "voprof/xensim/domain.hpp"

#include <algorithm>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::sim {

DomU::DomU(VmSpec spec) : Domain(spec.name), spec_(std::move(spec)) {
  set_mem(spec_.os_base_mem_mib);
}

void DomU::attach(std::unique_ptr<GuestProcess> process) {
  VOPROF_REQUIRE(process != nullptr);
  owned_.push_back(std::move(process));
}

void DomU::attach_shared(GuestProcess* process) {
  VOPROF_REQUIRE(process != nullptr);
  shared_.push_back(process);
}

bool DomU::detach_shared(GuestProcess* process) noexcept {
  const auto it = std::find(shared_.begin(), shared_.end(), process);
  if (it == shared_.end()) return false;
  shared_.erase(it);
  return true;
}

std::size_t DomU::process_count() const noexcept {
  return owned_.size() + shared_.size();
}

const ProcessDemand& DomU::collect_demand(util::SimMicros now, double dt) {
  // Accumulate directly into last_demand_: clear() keeps the flow
  // vector's capacity, so steady-state ticks do not allocate here.
  last_demand_.cpu_pct = 0.0;
  last_demand_.mem_mib = 0.0;
  last_demand_.io_blocks = 0.0;
  last_demand_.flows.clear();
  for_each_process(
      [&](GuestProcess* p) { last_demand_ += p->demand(now, dt); });
  // Frontend-driver enforcement of the virtual-disk throughput cap
  // (paper: "maximum I/O capacity limit of about 90 blocks/s").
  const double max_blocks = spec_.io_cap_blocks_per_s * dt;
  last_demand_.io_blocks = std::min(last_demand_.io_blocks, max_blocks);
  // A single-VCPU guest cannot demand more than its VCPU count allows.
  last_demand_.cpu_pct =
      std::min(last_demand_.cpu_pct, spec_.cpu_capacity_pct());
  return last_demand_;
}

void DomU::grant(double cpu_frac, util::SimMicros now, double dt) {
  for_each_process([&](GuestProcess* p) { p->granted(cpu_frac, now, dt); });
}

void DomU::deliver(double kbits, int tag, util::SimMicros now) {
  charge_rx(kbits);
  for_each_process([&](GuestProcess* p) { p->on_receive(kbits, tag, now); });
}

void DomU::refresh_memory() noexcept {
  // Guest-OS resident set plus whatever the processes currently hold,
  // clamped to the configured RAM.
  const double want = spec_.os_base_mem_mib + last_demand_.mem_mib;
  set_mem(std::min(want, spec_.mem_mib));
}

Dom0::Dom0(double mem_mib) : Domain("Domain-0") { set_mem(mem_mib); }

int Dom0::add_background_cpu(double pct) {
  VOPROF_REQUIRE(pct >= 0.0);
  const int id = next_id_++;
  background_.push_back({id, pct});
  return id;
}

void Dom0::remove_background_cpu(int id) noexcept {
  background_.erase(
      std::remove_if(background_.begin(), background_.end(),
                     [id](const BackgroundEntry& e) { return e.id == id; }),
      background_.end());
}

double Dom0::background_cpu_pct() const noexcept {
  double s = 0.0;
  for (const auto& e : background_) s += e.pct;
  return s;
}

}  // namespace voprof::sim
