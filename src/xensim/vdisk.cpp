#include "voprof/xensim/vdisk.hpp"

#include <algorithm>
#include <cmath>

#include "voprof/util/assert.hpp"

namespace voprof::sim {

VirtualDisk::VirtualDisk(VDiskGeometry geometry, std::uint64_t seed)
    : geometry_(geometry), rng_(seed) {
  VOPROF_REQUIRE(geometry_.op_blocks >= 1.0);
  VOPROF_REQUIRE(geometry_.stripe_blocks >= 1.0);
  VOPROF_REQUIRE(geometry_.journal_blocks_per_op >= 0.0);
  VOPROF_REQUIRE(geometry_.stripes >= 1);
}

double VirtualDisk::physical_blocks_for_op(double offset_blocks) const {
  VOPROF_REQUIRE(offset_blocks >= 0.0);
  const double s = geometry_.stripe_blocks;
  // Guest offsets are block-aligned: the within-stripe position is an
  // integer in [0, s).
  const double u = std::floor(std::fmod(offset_blocks, s));
  const double stripes_touched = std::ceil((u + geometry_.op_blocks) / s);
  // Whole-stripe read-modify-write per touched stripe + journal.
  return stripes_touched * s + geometry_.journal_blocks_per_op;
}

double VirtualDisk::physical_blocks(double guest_blocks) {
  VOPROF_REQUIRE(guest_blocks >= 0.0);
  if (guest_blocks <= 0.0) return 0.0;
  const double ops = guest_blocks / geometry_.op_blocks;
  const auto whole_ops = static_cast<long long>(ops);
  double physical = 0.0;
  for (long long i = 0; i < whole_ops; ++i) {
    const double offset =
        std::floor(rng_.uniform(0.0, 1024.0 * geometry_.stripe_blocks));
    physical += physical_blocks_for_op(offset);
  }
  // Fractional tail op (fluid workloads submit fractional counts per
  // tick): use the expectation to stay unbiased.
  const double frac = ops - static_cast<double>(whole_ops);
  physical += frac * expected_amplification() * geometry_.op_blocks;
  return physical;
}

double VirtualDisk::expected_amplification() const noexcept {
  const double s = geometry_.stripe_blocks;
  const double l = geometry_.op_blocks;
  // Write l = (k-1)s + r with r in (0, s]. For a block-aligned offset
  // u uniform over {0, ..., s-1}, the op touches
  //   ceil((u + l)/s) = k + [u > s - r]
  // stripes, and #{u : u > s - r} = r - 1, so
  //   E[stripes] = k + (r - 1)/s.
  const double k = std::ceil(l / s);
  const double r = l - (k - 1.0) * s;
  const double expected_stripes = k + std::max(0.0, (r - 1.0) / s);
  return (expected_stripes * s + geometry_.journal_blocks_per_op) / l;
}

}  // namespace voprof::sim
