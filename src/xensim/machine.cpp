#include "voprof/xensim/machine.hpp"

#include <algorithm>
#include <utility>

#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::sim {

namespace {

struct MachineMetrics {
  obs::Counter& ticks;
  obs::Counter& contention_episodes;
  obs::Counter& disk_throttle_ticks;
  obs::Counter& nic_throttle_ticks;

  static MachineMetrics& get() {
    static MachineMetrics m{
        obs::Registry::global().counter("machine.ticks"),
        obs::Registry::global().counter("machine.contention_episodes"),
        obs::Registry::global().counter("machine.disk_throttle_ticks"),
        obs::Registry::global().counter("machine.nic_throttle_ticks")};
    return m;
  }
};

}  // namespace

PhysicalMachine::PhysicalMachine(int id, MachineSpec spec, CostModel costs,
                                 util::Rng rng)
    : id_(id),
      spec_(spec),
      costs_(costs),
      rng_(rng),
      dom0_(spec.dom0_mem_mib),
      scheduler_(spec.guest_cpu_capacity_pct(),
                 costs.multi_vm_sched_efficiency),
      micro_scheduler_(spec.guest_cores, costs.multi_vm_sched_efficiency),
      vdisk_(VDiskGeometry{}, rng_.split().bits()) {}

DomU& PhysicalMachine::add_vm(VmSpec vm_spec) {
  VOPROF_REQUIRE_MSG(find_vm(vm_spec.name) == nullptr,
                     "duplicate VM name on PM: " + vm_spec.name);
  GuestState st;
  st.dom = std::make_unique<DomU>(std::move(vm_spec));
  guests_.push_back(std::move(st));
  if (trace_ != nullptr) {
    trace_->record({last_now_, TraceEventType::kVmCreated, id_,
                    guests_.back().dom->name(), 0.0});
  }
  return *guests_.back().dom;
}

bool PhysicalMachine::remove_vm(const std::string& name) {
  const auto it = std::find_if(
      guests_.begin(), guests_.end(),
      [&name](const GuestState& g) { return g.dom->name() == name; });
  if (it == guests_.end()) return false;
  if (trace_ != nullptr) {
    trace_->record(
        {last_now_, TraceEventType::kVmRemoved, id_, name, 0.0});
  }
  guests_.erase(it);
  return true;
}

DomU* PhysicalMachine::find_vm(const std::string& name) noexcept {
  for (auto& g : guests_) {
    if (g.dom->name() == name) return g.dom.get();
  }
  return nullptr;
}

const DomU* PhysicalMachine::find_vm(const std::string& name) const noexcept {
  for (const auto& g : guests_) {
    if (g.dom->name() == name) return g.dom.get();
  }
  return nullptr;
}

std::vector<DomU*> PhysicalMachine::vms() noexcept {
  std::vector<DomU*> out;
  out.reserve(guests_.size());
  for (auto& g : guests_) out.push_back(g.dom.get());
  return out;
}

void PhysicalMachine::enqueue_rx(const std::string& vm_name, double kbits,
                                 int tag) {
  VOPROF_REQUIRE(kbits >= 0.0);
  inbox_.push_back({vm_name, kbits, tag});
}

std::vector<OutboundFlow> PhysicalMachine::drain_outbox() {
  std::vector<OutboundFlow> out;
  out.swap(outbox_);
  return out;
}

void PhysicalMachine::inject_dom0_traffic(double tx_kbits, double rx_kbits) {
  VOPROF_REQUIRE(tx_kbits >= 0.0 && rx_kbits >= 0.0);
  pending_dom0_tx_kbits_ += tx_kbits;
  pending_dom0_rx_kbits_ += rx_kbits;
}

std::unique_ptr<DomU> PhysicalMachine::extract_vm(const std::string& name) {
  const auto it = std::find_if(
      guests_.begin(), guests_.end(),
      [&name](const GuestState& g) { return g.dom->name() == name; });
  if (it == guests_.end()) return nullptr;
  std::unique_ptr<DomU> vm = std::move(it->dom);
  guests_.erase(it);
  return vm;
}

DomU& PhysicalMachine::adopt_vm(std::unique_ptr<DomU> vm) {
  VOPROF_REQUIRE(vm != nullptr);
  VOPROF_REQUIRE_MSG(find_vm(vm->name()) == nullptr,
                     "duplicate VM name on PM: " + vm->name());
  GuestState st;
  st.dom = std::move(vm);
  guests_.push_back(std::move(st));
  return *guests_.back().dom;
}

double PhysicalMachine::jitter(double base, double rel) noexcept {
  if (rel <= 0.0 || base == 0.0) return base;
  return std::max(0.0, base * (1.0 + rel * rng_.gaussian()));
}

double PhysicalMachine::dom0_ctrl_response() const noexcept {
  double sum = 0.0;
  for (const auto& g : guests_) {
    sum += quadratic_response(g.last_consumed_pct, costs_.dom0_ctrl_lin,
                              costs_.dom0_ctrl_quad);
  }
  const double cap = guests_.size() >= 2 ? costs_.dom0_ctrl_sat_multi_pct
                                         : costs_.dom0_ctrl_sat_single_pct;
  return std::min(sum, cap);
}

double PhysicalMachine::hyp_sched_response() const noexcept {
  double sum = 0.0;
  for (const auto& g : guests_) {
    sum += quadratic_response(g.last_consumed_pct, costs_.hyp_sched_lin,
                              costs_.hyp_sched_quad);
  }
  const double cap = guests_.size() >= 2 ? costs_.hyp_sched_sat_multi_pct
                                         : costs_.hyp_sched_sat_single_pct;
  return std::min(sum, cap);
}

void PhysicalMachine::tick(util::SimMicros now, double dt) {
  VOPROF_REQUIRE(dt > 0.0);
  MachineMetrics::get().ticks.add();
  last_now_ = now;
  const bool multi = guests_.size() >= 2;

  // ---- 1. Deliver inbound traffic queued by the cluster router, and
  // account injected Dom0-mediated streams (live migration). ----------
  double inbound_inter_kbits = 0.0;
  for (const auto& d : inbox_) {
    if (DomU* vm = find_vm(d.vm_name)) {
      vm->deliver(d.kbits, d.tag, now);
      inbound_inter_kbits += d.kbits;
    }
    // Traffic for a vanished VM is dropped at the bridge.
  }
  inbox_.clear();
  const double injected_tx = pending_dom0_tx_kbits_;
  const double injected_rx = pending_dom0_rx_kbits_;
  pending_dom0_tx_kbits_ = 0.0;
  pending_dom0_rx_kbits_ = 0.0;
  devices_.nic_kbits += inbound_inter_kbits + injected_rx;

  // ---- 2. Phase A: collect guest demands. ------------------------------
  // The scratch vectors are members reused tick to tick; demands_
  // holds pointers into each guest's last_demand(), which stays valid
  // until that guest's next collect_demand call.
  demands_.clear();
  requests_.clear();
  for (auto& g : guests_) {
    demands_.push_back(&g.dom->collect_demand(now, dt));
    requests_.push_back(SchedRequest{demands_.back()->cpu_pct,
                                     g.dom->spec().cpu_capacity_pct(), 1.0});
  }
  const std::vector<SchedRequest>& requests = requests_;

  // ---- 3. Credit scheduler: allocate the guest CPU pool (macro
  // closed form or the discrete Xen algorithm, per MachineSpec). ------
  if (spec_.scheduler == SchedulerMode::kMicro) {
    micro_scheduler_.tick_into(requests, dt, sched_);
  } else {
    scheduler_.allocate_into(requests, sched_);
  }
  const SchedResult& sched = sched_;
  if (trace_ != nullptr && sched.contended) {
    double unmet = 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      unmet += std::max(0.0, std::min(requests[i].demand_pct,
                                      requests[i].cap_pct) -
                                 sched.granted_pct[i]);
    }
    trace_->record(
        {now, TraceEventType::kSchedContention, id_, "", unmet});
  }

  // Contention episodes as sim-clock spans: open when the scheduler
  // first fails to satisfy aggregate demand, close on the first
  // satisfied tick. An episode still open at the end of a run is
  // dropped (the trace has the per-tick ring events regardless).
  if (sched.contended && contention_begin_ < 0) {
    contention_begin_ = now;
  } else if (!sched.contended && contention_begin_ >= 0) {
    MachineMetrics::get().contention_episodes.add();
    obs::TraceCollector::global().complete_sim(
        "scheduler", "contention", contention_begin_, now - contention_begin_,
        static_cast<std::uint64_t>(id_));
    contention_begin_ = -1;
  }

  // ---- 4a. First pass: CPU grants and activity generation. ------------
  blocks_wanted_.assign(guests_.size(), 0.0);
  std::vector<double>& blocks_wanted = blocks_wanted_;
  double blocks_wanted_total = 0.0;
  for (std::size_t i = 0; i < guests_.size(); ++i) {
    auto& g = guests_[i];
    const ProcessDemand& d = *demands_[i];
    const double granted = sched.granted_pct[i];
    const double frac = d.cpu_pct > 0.0 ? granted / d.cpu_pct : 1.0;
    g.last_granted_pct = granted;
    g.last_consumed_pct = granted;

    // Phase B: tell processes how much CPU they actually got.
    g.dom->grant(frac, now, dt);
    g.dom->charge_cpu(granted, dt);

    // Disk I/O and network activity require CPU to be generated; when
    // the VCPU is starved the emitted activity scales down with it.
    blocks_wanted[i] = jitter(d.io_blocks * frac, costs_.activity_jitter);
    blocks_wanted_total += blocks_wanted[i];
  }

  // ---- 4b. Disk saturation: the striped writes must fit the physical
  // device; excess guest blocks are throttled proportionally (never
  // triggered by the paper's workloads, whose aggregate stays far
  // below the SATA budget). ---------------------------------------------
  const double base_io =
      jitter(costs_.pm_base_io_blocks * dt, costs_.pm_base_io_jitter);
  const double disk_budget = spec_.disk_blocks_per_s * dt;
  double disk_scale = 1.0;
  const double amplification = vdisk_.expected_amplification();
  const double physical_wanted =
      amplification * blocks_wanted_total + base_io;
  if (physical_wanted > disk_budget && blocks_wanted_total > 0.0) {
    const double usable =
        std::max(0.0, disk_budget - base_io) / amplification;
    disk_scale = std::min(1.0, usable / blocks_wanted_total);
    throttled_disk_blocks_ += blocks_wanted_total * (1.0 - disk_scale);
    if (disk_scale < 1.0) {
      MachineMetrics::get().disk_throttle_ticks.add();
    }
    if (trace_ != nullptr && disk_scale < 1.0) {
      trace_->record({now, TraceEventType::kDiskThrottled, id_, "",
                      blocks_wanted_total * (1.0 - disk_scale)});
    }
  }

  double guest_blocks_total = 0.0;
  double guest_tx_kbits_total = 0.0;
  double intra_kbits = 0.0;
  double outbound_kbits = 0.0;
  pending_out_.clear();
  std::vector<PendingOut>& pending_out = pending_out_;

  for (std::size_t i = 0; i < guests_.size(); ++i) {
    auto& g = guests_[i];
    const ProcessDemand& d = *demands_[i];
    const double frac =
        d.cpu_pct > 0.0 ? sched.granted_pct[i] / d.cpu_pct : 1.0;

    const double blocks = blocks_wanted[i] * disk_scale;
    g.dom->charge_io(blocks);
    guest_blocks_total += blocks;

    for (const NetFlow& f : d.flows) {
      const double kbits = jitter(f.kbits * frac, costs_.activity_jitter);
      if (kbits <= 0.0) continue;
      DomU* local_peer = (!f.target.is_external() && f.target.pm_id == id_)
                             ? find_vm(f.target.vm_name)
                             : nullptr;
      if (local_peer != nullptr) {
        // Bridge-local delivery: never touches the physical NIC
        // (Fig. 5(a): zero PM bandwidth for intra-PM communication).
        g.dom->charge_tx(kbits);
        guest_tx_kbits_total += kbits;
        intra_kbits += kbits;
        local_peer->deliver(kbits, f.tag, now);
      } else {
        // Remote, external, or a peer that has been live-migrated
        // away: goes out via the NIC; the cluster router relocates
        // flows whose addressed PM no longer hosts the VM.
        pending_out.push_back(PendingOut{&f.target, kbits, f.tag});
        outbound_kbits += kbits;
      }
    }
    g.dom->refresh_memory();
  }

  // ---- 4c. NIC saturation: outbound guest traffic, its framing
  // overhead and the injected migration stream share the line rate. ----
  const double bw_overhead_frac = multi ? costs_.pm_bw_overhead_frac_multi
                                        : costs_.pm_bw_overhead_frac_single;
  const double base_bw =
      jitter(costs_.pm_base_bw_kbps * dt, costs_.pm_base_bw_jitter);
  const double nic_budget = spec_.nic_kbps * dt;
  double nic_scale = 1.0;
  const double nic_wanted =
      outbound_kbits * (1.0 + bw_overhead_frac) + injected_tx + base_bw;
  if (nic_wanted > nic_budget && outbound_kbits > 0.0) {
    const double usable = std::max(0.0, nic_budget - injected_tx - base_bw) /
                          (1.0 + bw_overhead_frac);
    nic_scale = std::min(1.0, usable / outbound_kbits);
    throttled_nic_kbits_ += outbound_kbits * (1.0 - nic_scale);
    if (nic_scale < 1.0) {
      MachineMetrics::get().nic_throttle_ticks.add();
    }
    if (trace_ != nullptr && nic_scale < 1.0) {
      trace_->record({now, TraceEventType::kNicThrottled, id_, "",
                      outbound_kbits * (1.0 - nic_scale)});
    }
  }
  double outbound_sent = 0.0;
  for (std::size_t i = 0; i < pending_out.size(); ++i) {
    const double kbits = pending_out[i].kbits * nic_scale;
    if (kbits <= 0.0) continue;
    outbound_sent += kbits;
    outbox_.push_back(
        OutboundFlow{*pending_out[i].target, kbits, pending_out[i].tag});
  }
  // Attribute sent traffic back to the guests proportionally.
  if (outbound_kbits > 0.0) {
    std::size_t flow_idx = 0;
    for (std::size_t i = 0; i < guests_.size(); ++i) {
      const ProcessDemand& d = *demands_[i];
      for (const NetFlow& f : d.flows) {
        if (!f.target.is_external() && f.target.pm_id == id_) continue;
        if (flow_idx < pending_out.size()) {
          const double kbits = pending_out[flow_idx].kbits * nic_scale;
          guests_[i].dom->charge_tx(kbits);
          guest_tx_kbits_total += kbits;
          ++flow_idx;
        }
      }
    }
  }

  // ---- 5. Physical devices. --------------------------------------------
  // Virtual-disk striping amplifies every guest block (Fig. 2(b)):
  // whole-stripe read-modify-writes plus journal, sampled from the
  // stripe geometry, on top of the PM's background I/O (Sec. III-C:
  // 18.8 blocks/s).
  devices_.disk_blocks += vdisk_.physical_blocks(guest_blocks_total) + base_io;

  // NIC: outbound guest traffic plus fractional framing/ARP overhead
  // (Fig. 2(d): ~400 B/s for one VM; Sec. IV-B: 3 % with co-location)
  // plus the constant background chatter (254 B/s) and any injected
  // Dom0-mediated stream.
  devices_.nic_kbits +=
      outbound_sent * (1.0 + bw_overhead_frac) + injected_tx + base_bw;

  // ---- 6. Dom0 (driver domain) CPU. -------------------------------------
  const double net_kbps_inter =
      (outbound_sent + inbound_inter_kbits + injected_tx + injected_rx) / dt;
  const double net_kbps_intra = intra_kbits / dt;
  const double blocks_per_s = guest_blocks_total / dt;

  double dom0_demand =
      jitter(costs_.dom0_base_cpu_pct, costs_.dom0_base_cpu_jitter) +
      (multi ? costs_.dom0_coloc_cpu_pct : 0.0) + dom0_ctrl_response() +
      costs_.dom0_cpu_per_kbps_inter * net_kbps_inter +
      costs_.dom0_cpu_per_kbps_intra * net_kbps_intra +
      costs_.dom0_cpu_per_block * blocks_per_s + dom0_.background_cpu_pct();
  const double dom0_granted =
      std::min(dom0_demand, spec_.dom0_cpu_capacity_pct());
  dom0_.charge_cpu(dom0_granted, dt);

  // ---- 6. Hypervisor CPU (traps + scheduling). --------------------------
  const double guest_net_kbps =
      (guest_tx_kbits_total + inbound_inter_kbits) / dt;
  const double hyp_demand =
      jitter(costs_.hyp_base_cpu_pct, costs_.hyp_base_cpu_jitter) +
      hyp_sched_response() + costs_.hyp_cpu_per_kbps * guest_net_kbps +
      costs_.hyp_cpu_per_block * blocks_per_s;
  hypervisor_.cpu_core_seconds += hyp_demand / 100.0 * dt;
}

MachineSnapshot PhysicalMachine::snapshot(util::SimMicros now) const {
  MachineSnapshot snap;
  snapshot_into(now, snap);
  return snap;
}

void PhysicalMachine::snapshot_into(util::SimMicros now,
                                    MachineSnapshot& out) const {
  out.time = now;
  // Assign fields in place: the string assignments and the guest
  // vector reuse their existing capacity, so a periodic sampler only
  // allocates on its first sample (or when a VM appears).
  out.dom0.name = dom0_.name();
  out.dom0.counters = dom0_.counters();
  out.hypervisor = hypervisor_;
  out.guests.resize(guests_.size());
  for (std::size_t i = 0; i < guests_.size(); ++i) {
    out.guests[i].name = guests_[i].dom->name();
    out.guests[i].counters = guests_[i].dom->counters();
  }
  out.devices = devices_;
}

double PhysicalMachine::last_granted_pct(const std::string& vm_name) const {
  for (const auto& g : guests_) {
    if (g.dom->name() == vm_name) return g.last_granted_pct;
  }
  throw util::ContractViolation("no such VM: " + vm_name);
}

double PhysicalMachine::memory_in_use_mib() const noexcept {
  double total = dom0_.counters().mem_mib;
  for (const auto& g : guests_) total += g.dom->counters().mem_mib;
  return total;
}

}  // namespace voprof::sim
