#include "voprof/xensim/cluster.hpp"

#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::sim {

Cluster::Cluster(Engine& engine, CostModel costs, std::uint64_t seed,
                 FabricSpec fabric)
    : engine_(engine), costs_(costs), rng_(seed), migration_(*this),
      fabric_(fabric) {
  engine_.add_listener(this);
}

Cluster::~Cluster() { engine_.remove_listener(this); }

PhysicalMachine& Cluster::add_machine(MachineSpec spec) {
  const int id = static_cast<int>(machines_.size());
  machines_.push_back(std::make_unique<PhysicalMachine>(
      id, spec, costs_, rng_.split()));
  if (trace_ != nullptr) machines_.back()->set_trace_log(trace_.get());
  return *machines_.back();
}

TraceLog& Cluster::enable_tracing(std::size_t capacity) {
  if (trace_ == nullptr) {
    trace_ = std::make_unique<TraceLog>(capacity);
    for (auto& m : machines_) m->set_trace_log(trace_.get());
  }
  return *trace_;
}

PhysicalMachine& Cluster::machine(std::size_t idx) {
  VOPROF_REQUIRE(idx < machines_.size());
  return *machines_[idx];
}

const PhysicalMachine& Cluster::machine(std::size_t idx) const {
  VOPROF_REQUIRE(idx < machines_.size());
  return *machines_[idx];
}

PhysicalMachine* Cluster::machine_by_id(int id) noexcept {
  for (auto& m : machines_) {
    if (m->id() == id) return m.get();
  }
  return nullptr;
}

PhysicalMachine* Cluster::locate_vm(const std::string& vm_name) noexcept {
  for (auto& m : machines_) {
    if (m->find_vm(vm_name) != nullptr) return m.get();
  }
  return nullptr;
}

void Cluster::tick(util::SimMicros now, double dt) {
  for (auto& m : machines_) m->tick(now, dt);
  migration_.tick(now, dt);
  // Inter-PM flows enter the switching fabric after all machines
  // ticked; the fabric applies latency and aggregate capacity and
  // hands back whatever is deliverable. External targets leave the
  // cluster and are dropped after being counted at the sender's NIC.
  for (auto& m : machines_) {
    for (OutboundFlow& f : m->drain_outbox()) {
      if (f.target.is_external()) continue;
      fabric_.submit(f, m->id(), now);
    }
  }
  for (const FabricDelivery& d : fabric_.advance(now, dt)) {
    PhysicalMachine* dst = machine_by_id(d.to_pm);
    if (dst == nullptr || dst->find_vm(d.vm_name) == nullptr) {
      // The addressed PM no longer hosts the VM (live migration): the
      // bridge relearns and traffic follows the VM, like a migrated
      // domain keeping its IP/MAC.
      dst = locate_vm(d.vm_name);
      if (dst == nullptr) {
        dropped_kbits_ += d.kbits;
        continue;
      }
    }
    dst->enqueue_rx(d.vm_name, d.kbits, d.tag);
  }
}

}  // namespace voprof::sim
