#include "voprof/xensim/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "voprof/obs/metrics.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::sim {

namespace {

struct SchedMetrics {
  obs::Counter& allocations;
  obs::Counter& contended;

  static SchedMetrics& get() {
    static SchedMetrics m{
        obs::Registry::global().counter("scheduler.allocations"),
        obs::Registry::global().counter("scheduler.contended_allocations")};
    return m;
  }
};

}  // namespace

CreditScheduler::CreditScheduler(double capacity_pct,
                                 double multi_vm_efficiency)
    : capacity_pct_(capacity_pct), efficiency_(multi_vm_efficiency) {
  VOPROF_REQUIRE(capacity_pct > 0.0);
  VOPROF_REQUIRE(multi_vm_efficiency > 0.0 && multi_vm_efficiency <= 1.0);
}

SchedResult CreditScheduler::allocate(
    const std::vector<SchedRequest>& requests) const {
  SchedResult result;
  allocate_into(requests, result);
  return result;
}

void CreditScheduler::allocate_into(const std::vector<SchedRequest>& requests,
                                    SchedResult& out) const {
  SchedResult& result = out;
  result.granted_pct.assign(requests.size(), 0.0);
  result.total_granted_pct = 0.0;
  result.contended = false;
  if (requests.empty()) return;

  std::size_t runnable = 0;
  for (const auto& r : requests) {
    VOPROF_REQUIRE(r.demand_pct >= 0.0);
    VOPROF_REQUIRE(r.cap_pct >= 0.0);
    VOPROF_REQUIRE(r.weight > 0.0);
    if (r.demand_pct > 0.0) ++runnable;
  }

  // Context-switch / VCPU-migration loss only bites with competition
  // (calibrated to Fig. 3(a): two runnable VCPUs on the 2-core pool
  // peak at 95 % each).
  const double pool =
      capacity_pct_ * (runnable >= 2 ? efficiency_ : 1.0);

  // Weighted water-filling: repeatedly hand every unsatisfied VCPU its
  // weighted share of the remaining pool; VCPUs that need less return
  // the slack (work conservation). Terminates in <= n rounds.
  std::vector<double>& want = want_;
  want.assign(requests.size(), 0.0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    want[i] = std::min(requests[i].demand_pct, requests[i].cap_pct);
  }
  std::vector<char>& satisfied = satisfied_;
  satisfied.assign(requests.size(), 0);
  double remaining = pool;
  for (;;) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!satisfied[i] && want[i] > result.granted_pct[i]) {
        active_weight += requests[i].weight;
      }
    }
    if (active_weight <= 0.0 || remaining <= 1e-12) break;

    bool anyone_capped = false;
    double handed_out = 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (satisfied[i] || want[i] <= result.granted_pct[i]) continue;
      const double share = remaining * requests[i].weight / active_weight;
      const double need = want[i] - result.granted_pct[i];
      const double give = std::min(share, need);
      result.granted_pct[i] += give;
      handed_out += give;
      if (give >= need - 1e-12) {
        satisfied[i] = 1;
        anyone_capped = true;
      }
    }
    remaining -= handed_out;
    if (!anyone_capped) break;  // everyone took the full share: done
  }

  for (double g : result.granted_pct) result.total_granted_pct += g;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (result.granted_pct[i] + 1e-9 < want[i]) {
      result.contended = true;
      break;
    }
  }

  SchedMetrics::get().allocations.add();
  if (result.contended) {
    SchedMetrics::get().contended.add();
  }
}

}  // namespace voprof::sim
