#include "voprof/xensim/engine.hpp"

#include <algorithm>
#include <utility>

#include "voprof/obs/metrics.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::sim {

namespace {

/// Registry references resolved once; the write paths below are
/// relaxed atomics (no-ops entirely when VOPROF_OBS is off).
/// engine.events_stale / engine.events_fired is the lazy-deletion
/// ratio: how many heap pops were cancelled corpses vs. real firings.
struct EngineMetrics {
  obs::Counter& fired;
  obs::Counter& stale;
  obs::Counter& cancelled;
  obs::Counter& ticks;
  obs::Gauge& heap_depth_max;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::Registry::global().counter("engine.events_fired"),
        obs::Registry::global().counter("engine.events_stale"),
        obs::Registry::global().counter("engine.events_cancelled"),
        obs::Registry::global().counter("engine.ticks"),
        obs::Registry::global().gauge("engine.heap_depth_max")};
    return m;
  }
};

}  // namespace

Engine::Engine(util::SimMicros tick_period) : tick_period_(tick_period) {
  VOPROF_REQUIRE_MSG(tick_period > 0, "tick period must be positive");
}

void Engine::add_listener(TickListener* listener) {
  VOPROF_REQUIRE(listener != nullptr);
  listeners_.push_back(listener);
}

void Engine::remove_listener(TickListener* listener) noexcept {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

TimerId Engine::push_event(util::SimMicros at, util::SimMicros period,
                           std::function<void()> fn) {
  const TimerId id = next_id_++;
  heap_.push_back(Event{at, next_seq_++, id, period, std::move(fn)});
  sift_up(heap_.size() - 1);
  live_.insert(id);
  EngineMetrics::get().heap_depth_max.set_max(
      static_cast<double>(heap_.size()));
  return id;
}

TimerId Engine::schedule_at(util::SimMicros at, std::function<void()> fn) {
  VOPROF_REQUIRE_MSG(at >= now_, "cannot schedule an event in the past");
  return push_event(at, 0, std::move(fn));
}

TimerId Engine::schedule_after(util::SimMicros delay,
                               std::function<void()> fn) {
  VOPROF_REQUIRE(delay >= 0);
  return push_event(now_ + delay, 0, std::move(fn));
}

TimerId Engine::schedule_every(util::SimMicros period,
                               std::function<void()> fn) {
  VOPROF_REQUIRE(period > 0);
  return push_event(now_ + period, period, std::move(fn));
}

bool Engine::cancel(TimerId id) {
  // Lazy deletion: drop the id from the live set; the heap entry is
  // skipped (and its callback destroyed) when it reaches the top.
  const bool erased = live_.erase(id) > 0;
  if (erased) {
    EngineMetrics::get().cancelled.add();
  }
  return erased;
}

void Engine::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    if (left < n && before(heap_[left], heap_[best])) best = left;
    if (right < n && before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Engine::Event Engine::pop_min() {
  Event ev = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return ev;
}

void Engine::fire_due_events(util::SimMicros up_to_inclusive) {
  while (!heap_.empty() && heap_.front().at <= up_to_inclusive) {
    // Move out before firing: the callback may schedule new events,
    // invalidating heap references.
    Event ev = pop_min();
    const auto it = live_.find(ev.id);
    if (it == live_.end()) {  // lazily deleted
      EngineMetrics::get().stale.add();
      continue;
    }
    EngineMetrics::get().fired.add();
    // A firing one-shot is no longer pending; a periodic stays live so
    // its callback can cancel() it.
    if (ev.period == 0) live_.erase(it);
    now_ = std::max(now_, ev.at);
    ev.fn();
    // Re-arm a periodic timer AFTER its callback ran, with a fresh
    // sequence number, so events the callback scheduled order ahead
    // of the next occurrence — exactly as a self-re-arming one-shot
    // chain would.
    if (ev.period > 0 && live_.find(ev.id) != live_.end()) {
      heap_.push_back(Event{ev.at + ev.period, next_seq_++, ev.id, ev.period,
                            std::move(ev.fn)});
      sift_up(heap_.size() - 1);
    }
  }
}

void Engine::run_until(util::SimMicros until) {
  VOPROF_REQUIRE_MSG(until >= now_, "cannot run backwards in time");
  while (now_ < until) {
    const util::SimMicros tick_end = std::min(until, now_ + tick_period_);
    const util::SimMicros tick_start = now_;
    // Events scheduled within (start, end] fire at their timestamps
    // before the tick covering the interval executes.
    fire_due_events(tick_end);
    now_ = tick_end;
    const double dt = util::to_seconds(tick_end - tick_start);
    if (dt > 0.0) {
      EngineMetrics::get().ticks.add();
      for (TickListener* l : listeners_) l->tick(now_, dt);
    }
  }
}

void Engine::run_for(util::SimMicros duration) {
  VOPROF_REQUIRE(duration >= 0);
  run_until(now_ + duration);
}

}  // namespace voprof::sim
