#include "voprof/xensim/engine.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::sim {

Engine::Engine(util::SimMicros tick_period) : tick_period_(tick_period) {
  VOPROF_REQUIRE_MSG(tick_period > 0, "tick period must be positive");
}

void Engine::add_listener(TickListener* listener) {
  VOPROF_REQUIRE(listener != nullptr);
  listeners_.push_back(listener);
}

void Engine::remove_listener(TickListener* listener) noexcept {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void Engine::schedule_at(util::SimMicros at, std::function<void()> fn) {
  VOPROF_REQUIRE_MSG(at >= now_, "cannot schedule an event in the past");
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(util::SimMicros delay, std::function<void()> fn) {
  VOPROF_REQUIRE(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::schedule_every(util::SimMicros period, std::function<void()> fn) {
  VOPROF_REQUIRE(period > 0);
  // Re-arming one-shot: each firing schedules the next. The callback
  // lives in one shared PeriodicTask for the whole chain; rearming
  // moves the same shared_ptr into the next event instead of copying
  // the callback and allocating a fresh wrapper every period.
  arm_periodic(std::make_shared<PeriodicTask>(PeriodicTask{period, std::move(fn)}));
}

void Engine::arm_periodic(std::shared_ptr<PeriodicTask> task) {
  PeriodicTask* t = task.get();
  schedule_after(t->period, [this, task = std::move(task)]() mutable {
    task->fn();
    arm_periodic(std::move(task));
  });
}

void Engine::fire_due_events(util::SimMicros up_to_inclusive) {
  while (!events_.empty() && events_.top().at <= up_to_inclusive) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = events_.top();
    events_.pop();
    now_ = std::max(now_, ev.at);
    ev.fn();
  }
}

void Engine::run_until(util::SimMicros until) {
  VOPROF_REQUIRE_MSG(until >= now_, "cannot run backwards in time");
  while (now_ < until) {
    const util::SimMicros tick_end = std::min(until, now_ + tick_period_);
    const util::SimMicros tick_start = now_;
    // Events scheduled within (start, end] fire at their timestamps
    // before the tick covering the interval executes.
    fire_due_events(tick_end);
    now_ = tick_end;
    const double dt = util::to_seconds(tick_end - tick_start);
    if (dt > 0.0) {
      for (TickListener* l : listeners_) l->tick(now_, dt);
    }
  }
}

void Engine::run_for(util::SimMicros duration) {
  VOPROF_REQUIRE(duration >= 0);
  run_until(now_ + duration);
}

}  // namespace voprof::sim
