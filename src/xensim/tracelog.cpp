#include "voprof/xensim/tracelog.hpp"

#include <sstream>

#include "voprof/util/assert.hpp"

namespace voprof::sim {

std::string trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kVmCreated:
      return "vm-created";
    case TraceEventType::kVmRemoved:
      return "vm-removed";
    case TraceEventType::kSchedContention:
      return "sched-contention";
    case TraceEventType::kDiskThrottled:
      return "disk-throttled";
    case TraceEventType::kNicThrottled:
      return "nic-throttled";
    case TraceEventType::kMigrationStarted:
      return "migration-started";
    case TraceEventType::kMigrationFinished:
      return "migration-finished";
    case TraceEventType::kMigrationFailed:
      return "migration-failed";
  }
  throw util::ContractViolation("unknown trace event type");
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  VOPROF_REQUIRE_MSG(capacity > 0, "trace log capacity must be positive");
  ring_.reserve(capacity);
}

void TraceLog::record(TraceEvent event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::size_t TraceLog::size() const noexcept { return ring_.size(); }

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: oldest element sits at next_.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceLog::events_of(TraceEventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events()) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

void TraceLog::clear() noexcept {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceLog::dump() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (const TraceEvent& e : events()) {
    os << "t=" << util::to_seconds(e.time) << "s pm" << e.pm_id << ' '
       << trace_event_name(e.type);
    if (!e.subject.empty()) os << ' ' << e.subject;
    os << ' ' << e.value << '\n';
  }
  return os.str();
}

}  // namespace voprof::sim
