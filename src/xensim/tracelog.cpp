#include "voprof/xensim/tracelog.hpp"

#include <array>
#include <sstream>

#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"

namespace voprof::sim {

std::string trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kVmCreated:
      return "vm-created";
    case TraceEventType::kVmRemoved:
      return "vm-removed";
    case TraceEventType::kSchedContention:
      return "sched-contention";
    case TraceEventType::kDiskThrottled:
      return "disk-throttled";
    case TraceEventType::kNicThrottled:
      return "nic-throttled";
    case TraceEventType::kMigrationStarted:
      return "migration-started";
    case TraceEventType::kMigrationFinished:
      return "migration-finished";
    case TraceEventType::kMigrationFailed:
      return "migration-failed";
  }
  throw util::ContractViolation("unknown trace event type");
}

namespace {

constexpr std::array<TraceEventType, 8> kAllEventTypes = {
    TraceEventType::kVmCreated,        TraceEventType::kVmRemoved,
    TraceEventType::kSchedContention,  TraceEventType::kDiskThrottled,
    TraceEventType::kNicThrottled,     TraceEventType::kMigrationStarted,
    TraceEventType::kMigrationFinished, TraceEventType::kMigrationFailed};

}  // namespace

TraceEventType trace_event_from_name(const std::string& name) {
  for (TraceEventType type : kAllEventTypes) {
    if (trace_event_name(type) == name) return type;
  }
  throw util::ContractViolation("unknown trace event name: " + name);
}

const char* trace_event_category(TraceEventType type) {
  switch (type) {
    case TraceEventType::kVmCreated:
    case TraceEventType::kVmRemoved:
      return "vm";
    case TraceEventType::kSchedContention:
      return "scheduler";
    case TraceEventType::kDiskThrottled:
    case TraceEventType::kNicThrottled:
      return "device";
    case TraceEventType::kMigrationStarted:
    case TraceEventType::kMigrationFinished:
    case TraceEventType::kMigrationFailed:
      return "migration";
  }
  throw util::ContractViolation("unknown trace event type");
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  VOPROF_REQUIRE_MSG(capacity > 0, "trace log capacity must be positive");
  ring_.reserve(capacity);
}

void TraceLog::record(TraceEvent event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::size_t TraceLog::size() const noexcept { return ring_.size(); }

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: oldest element sits at next_.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceLog::events_of(TraceEventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events()) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

void TraceLog::clear() noexcept {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceLog::dump() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (const TraceEvent& e : events()) {
    os << "t=" << util::to_seconds(e.time) << "s pm" << e.pm_id << ' '
       << trace_event_name(e.type);
    if (!e.subject.empty()) os << ' ' << e.subject;
    os << ' ' << e.value << '\n';
  }
  return os.str();
}

std::string TraceLog::to_csv() const {
  std::string out = "time_us,type,pm_id,subject,value\n";
  for (const TraceEvent& e : events()) {
    VOPROF_REQUIRE_MSG(
        e.subject.find_first_of(",\"\n") == std::string::npos,
        "trace event subject not CSV-safe: " + e.subject);
    out += std::to_string(e.time);
    out += ',';
    out += trace_event_name(e.type);
    out += ',';
    out += std::to_string(e.pm_id);
    out += ',';
    out += e.subject;
    out += ',';
    out += util::format_double(e.value);
    out += '\n';
  }
  return out;
}

std::vector<TraceEvent> tracelog_events_from_csv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  VOPROF_REQUIRE_MSG(std::getline(is, line) &&
                         line == "time_us,type,pm_id,subject,value",
                     "tracelog CSV: bad or missing header");
  std::vector<TraceEvent> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::array<std::string, 5> fields;
    std::size_t field = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        VOPROF_REQUIRE_MSG(field < fields.size(),
                           "tracelog CSV: too many fields: " + line);
        fields[field++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    VOPROF_REQUIRE_MSG(field == fields.size(),
                       "tracelog CSV: expected 5 fields: " + line);
    TraceEvent e;
    double time_us = 0.0;
    VOPROF_REQUIRE_MSG(util::parse_double(fields[0], time_us),
                       "tracelog CSV: bad time_us: " + fields[0]);
    e.time = static_cast<util::SimMicros>(time_us);
    e.type = trace_event_from_name(fields[1]);
    double pm_id = 0.0;
    VOPROF_REQUIRE_MSG(util::parse_double(fields[2], pm_id),
                       "tracelog CSV: bad pm_id: " + fields[2]);
    e.pm_id = static_cast<int>(pm_id);
    e.subject = fields[3];
    VOPROF_REQUIRE_MSG(util::parse_double(fields[4], e.value),
                       "tracelog CSV: bad value: " + fields[4]);
    out.push_back(std::move(e));
  }
  return out;
}

util::Json tracelog_to_json(const TraceLog& log) {
  util::Json arr = util::Json::array();
  for (const TraceEvent& e : log.events()) {
    util::Json obj = util::Json::object();
    obj.set("time_us", static_cast<double>(e.time));
    obj.set("type", trace_event_name(e.type));
    obj.set("pm_id", e.pm_id);
    obj.set("subject", e.subject);
    obj.set("value", e.value);
    arr.push_back(std::move(obj));
  }
  return arr;
}

void tracelog_export_to_obs(const TraceLog& log) {
  auto& collector = obs::TraceCollector::global();
  if (!collector.enabled()) return;
  for (const TraceEvent& e : log.events()) {
    obs::TraceRecord rec;
    rec.ph = 'i';
    rec.clock = obs::Clock::kSim;
    rec.cat = trace_event_category(e.type);
    rec.name = trace_event_name(e.type);
    rec.ts_us = e.time;
    rec.tid = e.pm_id >= 0 ? static_cast<std::uint64_t>(e.pm_id) : 0;
    rec.args.emplace_back("value", e.value);
    if (!e.subject.empty()) {
      rec.sargs.emplace_back("subject", e.subject);
    }
    collector.record(std::move(rec));
  }
}

}  // namespace voprof::sim
