#include "voprof/scenario/scenario.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/runner/runner.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"
#include "voprof/util/rng.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/task_pool.hpp"
#include "voprof/util/csv.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/workloads/trace.hpp"
#include "voprof/xensim/engine.hpp"

namespace voprof::scenario {

util::Result<ScenarioSpec> ScenarioSpec::parse_result(
    const std::string& text) {
  util::Result<util::IniDocument> parsed = util::IniDocument::parse_result(text);
  if (!parsed.ok()) return parsed.error();
  const util::IniDocument doc = std::move(parsed).take();

  const auto fail = [](const std::string& section, const std::string& msg) {
    return util::Error{util::Errc::kValidation, msg, section};
  };

  // The typed section accessors (get_int/get_double/unique) report
  // malformed values through ContractViolation; fold those into the
  // Result surface as parse errors.
  try {
    ScenarioSpec spec;

    const util::IniSection& cluster = doc.unique("cluster");
    const int seed = cluster.get_int("seed", 42);
    if (seed < 0) return fail("[cluster]", "seed must be >= 0");
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.machines = cluster.get_int("machines", 1);
    if (spec.machines < 1) return fail("[cluster]", "machines must be >= 1");
    const std::string sched = cluster.get_or("scheduler", "macro");
    if (sched == "macro") {
      spec.scheduler = sim::SchedulerMode::kMacro;
    } else if (sched == "micro") {
      spec.scheduler = sim::SchedulerMode::kMicro;
    } else {
      return fail("[cluster]", "scheduler must be macro|micro, got: " + sched);
    }

    if (doc.has_kind("run")) {
      const util::IniSection& run = doc.unique("run");
      spec.duration_s = run.get_double("duration", 60.0);
      spec.warmup_s = run.get_double("warmup", 0.0);
    }
    if (!(spec.duration_s > 0.0)) {
      return fail("[run]", "duration must be > 0, got " +
                               util::format_double(spec.duration_s));
    }
    if (!(spec.warmup_s >= 0.0)) {
      return fail("[run]", "warmup must be >= 0, got " +
                               util::format_double(spec.warmup_s));
    }

    for (const util::IniSection* vm : doc.of_kind("vm")) {
      VmEntry e;
      e.name = vm->name;
      if (e.name.empty()) return fail("[vm]", "sections need a name");
      const std::string section = "[vm " + e.name + "]";
      e.machine = vm->get_int("machine", 0);
      if (e.machine < 0 || e.machine >= spec.machines) {
        return fail(section, "machine index " + std::to_string(e.machine) +
                                 " out of range [0, " +
                                 std::to_string(spec.machines) + ")");
      }
      e.cpu_pct = vm->get_double("cpu", 0.0);
      e.mem_mib = vm->get_double("mem", 0.0);
      e.io_blocks = vm->get_double("io", 0.0);
      e.bw_kbps = vm->get_double("bw", 0.0);
      if (e.cpu_pct < 0 || e.mem_mib < 0 || e.io_blocks < 0 || e.bw_kbps < 0) {
        return fail(section, "workload levels must be >= 0");
      }
      e.trace_path = vm->get_or("trace", "");
      e.trace_interval_s = vm->get_double("trace_interval", 1.0);
      if (!e.trace_path.empty() &&
          (e.cpu_pct != 0 || e.mem_mib != 0 || e.io_blocks != 0 ||
           e.bw_kbps != 0)) {
        return fail(section, "trace and steady levels are exclusive");
      }
      if (!(e.trace_interval_s > 0.0)) {
        return fail(section, "trace_interval must be > 0");
      }
      e.bw_target_machine =
          vm->get_int("bw_target_machine", sim::NetTarget::kExternal);
      e.bw_target_vm = vm->get_or("bw_target_vm", "");
      if ((e.bw_target_machine == sim::NetTarget::kExternal) !=
          e.bw_target_vm.empty()) {
        return fail(section, "bw_target_machine and bw_target_vm go together");
      }
      // VM names are a namespace of their own: bw targets and request
      // APIs address guests by name, so a duplicate name is ambiguous
      // even across machines.
      for (const auto& other : spec.vms) {
        if (other.name == e.name) {
          return fail(section,
                      "duplicate VM name (already declared on machine " +
                          std::to_string(other.machine) + ")");
        }
      }
      spec.vms.push_back(std::move(e));
    }
    if (spec.vms.empty()) {
      return fail("[vm]", "scenario needs at least one [vm] section");
    }

    for (const util::IniSection* m : doc.of_kind("monitor")) {
      const int idx = m->get_int("machine", 0);
      if (idx < 0 || idx >= spec.machines) {
        return fail("[monitor]", "machine index " + std::to_string(idx) +
                                     " out of range [0, " +
                                     std::to_string(spec.machines) + ")");
      }
      spec.monitored_machines.push_back(idx);
    }
    if (spec.monitored_machines.empty()) {
      spec.monitored_machines.push_back(0);  // monitor the first machine
    }

    // Cross-validate bw targets.
    for (const auto& vm : spec.vms) {
      if (vm.bw_target_machine == sim::NetTarget::kExternal) continue;
      const std::string section = "[vm " + vm.name + "]";
      if (vm.bw_target_machine < 0 || vm.bw_target_machine >= spec.machines) {
        return fail(section, "bw_target_machine " +
                                 std::to_string(vm.bw_target_machine) +
                                 " out of range [0, " +
                                 std::to_string(spec.machines) + ")");
      }
      bool found = false;
      for (const auto& other : spec.vms) {
        if (other.name == vm.bw_target_vm &&
            other.machine == vm.bw_target_machine) {
          found = true;
          break;
        }
      }
      if (!found) {
        return fail(section, "bw target '" + vm.bw_target_vm +
                                 "' not found on machine " +
                                 std::to_string(vm.bw_target_machine));
      }
    }
    return spec;
  } catch (const util::ContractViolation& e) {
    return util::Error{util::Errc::kParse, e.what(), "scenario"};
  }
}

util::Result<ScenarioSpec> ScenarioSpec::load_result(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    return util::Error{util::Errc::kIo, "cannot open scenario", path};
  }
  std::ostringstream os;
  os << f.rdbuf();
  util::Result<ScenarioSpec> parsed = parse_result(os.str());
  if (!parsed.ok()) {
    util::Error err = parsed.error();
    err.context = path + ": " + err.context;
    return err;
  }
  return parsed;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  return parse_result(text).value_or_throw();
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  return load_result(path).value_or_throw();
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  VOPROF_WALL_SPAN("scenario", "run_scenario");
  static obs::Counter& runs =
      obs::Registry::global().counter("scenario.runs");
  runs.add();
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, spec.seed);
  // With a trace being collected, attach the xentrace-style ring to
  // every machine and re-emit its events onto the sim timeline at the
  // end of the run.
  const bool obs_tracing = obs::TraceCollector::global().enabled();
  if (obs_tracing) {
    cluster.enable_tracing();
  }
  for (int i = 0; i < spec.machines; ++i) {
    sim::MachineSpec mspec;
    mspec.scheduler = spec.scheduler;
    cluster.add_machine(mspec);
  }
  std::uint64_t wl_seed = spec.seed + 1000;
  for (const auto& vm : spec.vms) {
    sim::VmSpec vspec;
    vspec.name = vm.name;
    sim::DomU& dom =
        cluster.machine(static_cast<std::size_t>(vm.machine)).add_vm(vspec);
    sim::NetTarget trace_target;
    if (vm.bw_target_machine != sim::NetTarget::kExternal) {
      trace_target = sim::NetTarget{vm.bw_target_machine, vm.bw_target_vm};
    }
    if (!vm.trace_path.empty()) {
      dom.attach(std::make_unique<wl::TraceWorkload>(
          wl::trace_from_csv(util::CsvDocument::load(vm.trace_path), "vm_",
                             vm.trace_interval_s),
          trace_target, /*loop=*/true));
    } else if (vm.cpu_pct > 0 || vm.mem_mib > 0 || vm.io_blocks > 0 ||
               vm.bw_kbps > 0) {
      wl::MixedWorkload::Levels levels;
      levels.cpu_pct = vm.cpu_pct;
      levels.mem_mib = vm.mem_mib;
      levels.io_blocks_per_s = vm.io_blocks;
      levels.bw_kbps = vm.bw_kbps;
      sim::NetTarget target;
      if (vm.bw_target_machine != sim::NetTarget::kExternal) {
        target = sim::NetTarget{vm.bw_target_machine, vm.bw_target_vm};
      }
      dom.attach(
          std::make_unique<wl::MixedWorkload>(levels, target, ++wl_seed));
    }
  }

  engine.run_for(util::seconds(spec.warmup_s));
  std::vector<std::unique_ptr<mon::MonitorScript>> monitors;
  std::vector<int> monitored;
  for (int idx : spec.monitored_machines) {
    monitors.push_back(std::make_unique<mon::MonitorScript>(
        engine, cluster.machine(static_cast<std::size_t>(idx))));
    monitors.back()->start();
    monitored.push_back(idx);
  }
  engine.run_for(util::seconds(spec.duration_s));
  ScenarioResult result;
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    monitors[i]->stop();
    result.reports.emplace(monitored[i], monitors[i]->report());
  }
  if (obs_tracing && cluster.trace_log() != nullptr) {
    sim::tracelog_export_to_obs(*cluster.trace_log());
  }
  return result;
}

ReplicatedScenarioResult run_scenario_replicated(const ScenarioSpec& spec,
                                                 std::size_t replications,
                                                 int jobs) {
  return run_scenario_replicated(spec, replications, jobs,
                                 std::function<bool()>{});
}

ReplicatedScenarioResult run_scenario_replicated(
    const ScenarioSpec& spec, std::size_t replications, int jobs,
    const std::function<bool()>& keep_going) {
  VOPROF_REQUIRE_MSG(replications >= 1,
                     "run_scenario_replicated needs replications >= 1");

  // One independent run per replication, seeded purely from the
  // replication index so any worker may execute it. SweepRunner wraps
  // the same TaskPool discipline (index-ordered parallel_map) and adds
  // the "runner" spans/counters, so a traced replicated scenario shows
  // the fan-out alongside the per-replication sim timelines.
  runner::RunOptions run_opts;
  run_opts.jobs = jobs;
  runner::SweepRunner sweep(run_opts);
  const std::vector<std::optional<ScenarioResult>> runs = sweep.map(
      replications,
      [&spec, &keep_going](std::size_t rep) -> std::optional<ScenarioResult> {
        if (keep_going && !keep_going()) return std::nullopt;
        ScenarioSpec rep_spec = spec;
        rep_spec.seed = util::seed_for(spec.seed, rep);
        return run_scenario(rep_spec);
      });

  // Fold each run's samples into per-run stats, then merge those in
  // replication order — the same reduction a serial loop performs.
  // Replications skipped by keep_going contribute nothing and are not
  // counted, so `replications` in the result reports completed runs.
  ReplicatedScenarioResult out;
  for (const std::optional<ScenarioResult>& run : runs) {
    if (!run.has_value()) continue;
    ++out.replications;
    for (const auto& [machine, report] : run->reports) {
      for (const std::string& key : report.keys()) {
        const mon::SeriesSet& s = report.series(key);
        ReplicatedScenarioResult::EntityStats& agg = out.stats[machine][key];
        agg.cpu.merge(s.cpu.stats());
        agg.mem.merge(s.mem.stats());
        agg.io.merge(s.io.stats());
        agg.bw.merge(s.bw.stats());
      }
    }
  }
  return out;
}

std::string ReplicatedScenarioResult::summary() const {
  std::ostringstream os;
  for (const auto& [machine, entities] : stats) {
    util::AsciiTable t("machine " + std::to_string(machine) + " (" +
                       std::to_string(replications) + " replications)");
    t.set_header({"entity", "CPU(%)", "CPU sd", "MEM(MiB)", "I/O(blk/s)",
                  "BW(Kb/s)"});
    for (const auto& [key, s] : entities) {
      t.add_row({key, util::fmt(s.cpu.mean(), 2), util::fmt(s.cpu.stddev(), 2),
                 util::fmt(s.mem.mean(), 1), util::fmt(s.io.mean(), 2),
                 util::fmt(s.bw.mean(), 2)});
    }
    os << t.str() << '\n';
  }
  return os.str();
}

std::string ScenarioResult::summary() const {
  std::ostringstream os;
  for (const auto& [machine, report] : reports) {
    util::AsciiTable t("machine " + std::to_string(machine));
    t.set_header({"entity", "CPU(%)", "MEM(MiB)", "I/O(blk/s)", "BW(Kb/s)"});
    for (const auto& key : report.keys()) {
      const mon::UtilSample u = report.mean(key);
      t.add_row({key, util::fmt(u.cpu_pct, 2), util::fmt(u.mem_mib, 1),
                 util::fmt(u.io_blocks_per_s, 2), util::fmt(u.bw_kbps, 2)});
    }
    os << t.str() << '\n';
  }
  return os.str();
}

}  // namespace voprof::scenario
