#include "voprof/placement/evaluation.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "voprof/monitor/script.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/stats.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"
#include "voprof/xensim/engine.hpp"

namespace voprof::place {

std::string role_name(VmRole role) {
  switch (role) {
    case VmRole::kRubisWeb:
      return "rubis-web";
    case VmRole::kRubisDb:
      return "rubis-db";
    case VmRole::kBusy:
      return "busy";
    case VmRole::kIdle:
      return "idle";
  }
  throw util::ContractViolation("unknown VM role");
}

PlacementEvaluation::PlacementEvaluation(
    EvalConfig config, const model::MultiVmModel* overhead_model)
    : config_(std::move(config)), model_(overhead_model) {
  VOPROF_REQUIRE(config_.repetitions >= 1);
  VOPROF_REQUIRE(model_ != nullptr && model_->trained());
  config_.voa.overhead_aware = true;
  config_.vou.overhead_aware = false;
}

std::map<VmRole, model::UtilVec> PlacementEvaluation::profile_roles() const {
  std::map<VmRole, model::UtilVec> out;
  const DemandPredictor predictor(config_.predictor);

  // --- RUBiS web + db: run the Fig. 6 topology unconstrained. ---------
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, config_.costs, config_.seed + 1);
    cluster.add_machine(config_.machine);  // PM1: web
    cluster.add_machine(config_.machine);  // PM2: db
    cluster.add_machine(config_.machine);  // client machine
    rubis::DeployOptions opt;
    opt.clients = config_.clients;
    opt.costs = config_.rubis_costs;
    opt.vm_spec = config_.vm;
    opt.seed = config_.seed + 2;
    const rubis::RubisInstance inst =
        rubis::deploy_rubis(cluster, 0, 1, 2, opt);

    mon::MonitorScript web_mon(engine, cluster.machine(0));
    mon::MonitorScript db_mon(engine, cluster.machine(1));
    web_mon.start();
    db_mon.start();
    engine.run_for(config_.warmup + util::seconds(40.0));
    web_mon.stop();
    db_mon.stop();
    out[VmRole::kRubisWeb] =
        predictor.predict_series(web_mon.report().series(inst.web_vm));
    out[VmRole::kRubisDb] =
        predictor.predict_series(db_mon.report().series(inst.db_vm));
  }

  // --- Busy and idle fillers. -----------------------------------------
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, config_.costs, config_.seed + 3);
    sim::PhysicalMachine& pm = cluster.add_machine(config_.machine);
    sim::VmSpec busy_spec = config_.vm;
    busy_spec.name = "busy-profile";
    sim::DomU& busy = pm.add_vm(busy_spec);
    busy.attach(std::make_unique<wl::CpuHog>(config_.busy_cpu_pct,
                                             config_.seed + 4));
    sim::VmSpec idle_spec = config_.vm;
    idle_spec.name = "idle-profile";
    pm.add_vm(idle_spec);

    mon::MonitorScript mon(engine, pm);
    const mon::MeasurementReport& report = mon.measure(util::seconds(30.0));
    out[VmRole::kBusy] = predictor.predict_series(report.series("busy-profile"));
    out[VmRole::kIdle] = predictor.predict_series(report.series("idle-profile"));
  }
  return out;
}

const std::map<VmRole, model::UtilVec>& PlacementEvaluation::role_demands()
    const {
  if (!profiled_) {
    role_demands_ = profile_roles();
    profiled_ = true;
  }
  return role_demands_;
}

RunResult PlacementEvaluation::run_once(int scenario, bool overhead_aware,
                                        std::uint64_t rep_seed) const {
  VOPROF_REQUIRE(scenario >= 0 && scenario <= 3);
  const auto& demands = role_demands();

  // The 5 identical VMs of Sec. VI-B: RUBiS pair + 3 fillers, of which
  // `scenario` run lookbusy at 50 %.
  std::vector<VmRole> roles = {VmRole::kRubisWeb, VmRole::kRubisDb};
  for (int i = 0; i < 3; ++i) {
    roles.push_back(i < scenario ? VmRole::kBusy : VmRole::kIdle);
  }

  // Random placement order, as in the paper ("deployed the 5 VMs to
  // PMs in a random order ... repeated this VM placement for 10
  // times").
  util::Rng rng(rep_seed);
  for (std::size_t i = roles.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
    std::swap(roles[i - 1], roles[j]);
  }

  // CloudScale predicts each VM's demand; the placer admits VMs one by
  // one onto the two host PMs.
  const Placer placer(overhead_aware ? config_.voa : config_.vou,
                      overhead_aware ? model_ : nullptr);
  std::vector<PmState> pms(2);
  pms[0].spec = config_.machine;
  pms[1].spec = config_.machine;

  RunResult result;
  std::vector<std::pair<VmRole, std::size_t>> assignment;
  for (VmRole role : roles) {
    bool forced = false;
    const std::size_t pm = placer.place(pms, demands.at(role),
                                        config_.vm.mem_mib, &forced);
    result.forced_placement = result.forced_placement || forced;
    assignment.emplace_back(role, pm);
  }

  // Materialize the placement on a fresh cluster (2 hosts + client
  // machine) and run RUBiS.
  sim::Engine engine;
  sim::Cluster cluster(engine, config_.costs, rep_seed ^ 0x5eedULL);
  cluster.add_machine(config_.machine);
  cluster.add_machine(config_.machine);
  cluster.add_machine(config_.machine);  // client machine

  std::string web_vm, db_vm;
  std::size_t web_pm = 0, db_pm = 0;
  int busy_idx = 0, idle_idx = 0;
  for (const auto& [role, pm] : assignment) {
    sim::VmSpec spec = config_.vm;
    switch (role) {
      case VmRole::kRubisWeb:
        spec.name = "web";
        web_vm = spec.name;
        web_pm = pm;
        cluster.machine(pm).add_vm(spec);
        break;
      case VmRole::kRubisDb:
        spec.name = "db";
        db_vm = spec.name;
        db_pm = pm;
        cluster.machine(pm).add_vm(spec);
        break;
      case VmRole::kBusy: {
        spec.name = "busy" + std::to_string(++busy_idx);
        sim::DomU& vm = cluster.machine(pm).add_vm(spec);
        vm.attach(std::make_unique<wl::CpuHog>(config_.busy_cpu_pct,
                                               rep_seed + 17));
        break;
      }
      case VmRole::kIdle:
        spec.name = "idle" + std::to_string(++idle_idx);
        cluster.machine(pm).add_vm(spec);
        break;
    }
    result.vms_per_pm[pm] += 1;
  }

  rubis::DeployOptions opt;
  opt.clients = config_.clients;
  opt.costs = config_.rubis_costs;
  opt.vm_spec = config_.vm;
  opt.seed = rep_seed + 5;
  const rubis::RubisInstance inst =
      rubis::wire_rubis(cluster, web_pm, db_pm, web_vm, db_vm, 2, opt);

  engine.run_for(config_.warmup);
  const double mark = inst.client->completed();
  engine.run_for(config_.run_duration);
  const double served = inst.client->completed() - mark;
  const double duration_s = util::to_seconds(config_.run_duration);
  result.throughput_req_s = served / duration_s;
  result.total_time_s =
      config_.total_requests / std::max(result.throughput_req_s, 1e-6);
  // Little's law: L = lambda * W  =>  W = in_flight / throughput.
  result.mean_latency_s =
      inst.client->in_flight() / std::max(result.throughput_req_s, 1e-6);
  return result;
}

CellStats PlacementEvaluation::run_cell(int scenario,
                                        bool overhead_aware) const {
  CellStats stats;
  std::vector<double> tputs;
  util::RunningStats time_stats;
  util::RunningStats latency_stats;
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    const std::uint64_t rep_seed =
        config_.seed * 1000 + static_cast<std::uint64_t>(scenario) * 100 +
        (overhead_aware ? 10 : 0) + static_cast<std::uint64_t>(rep);
    RunResult r = run_once(scenario, overhead_aware, rep_seed);
    tputs.push_back(r.throughput_req_s);
    time_stats.add(r.total_time_s);
    latency_stats.add(r.mean_latency_s);
    stats.runs.push_back(std::move(r));
  }
  stats.mean_throughput = util::mean(tputs);
  stats.p10_throughput = util::percentile(tputs, 10.0);
  stats.p90_throughput = util::percentile(tputs, 90.0);
  stats.mean_total_time = time_stats.mean();
  stats.mean_latency_s = latency_stats.mean();
  return stats;
}

}  // namespace voprof::place
