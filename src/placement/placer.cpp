#include "voprof/placement/placer.hpp"

#include <limits>

#include "voprof/util/assert.hpp"

namespace voprof::place {

model::UtilVec PmState::demand_sum() const noexcept {
  model::UtilVec s;
  for (const auto& d : vm_demands) s += d;
  return s;
}

double PmState::mem_reserved_mib() const noexcept {
  // Dom0 resident memory counts against the host (this is what the
  // paper's VOU observed too: its memory check tripped on the 5th VM).
  double m = spec.dom0_mem_mib;
  for (double v : vm_mem_mib) m += v;
  return m;
}

Placer::Placer(PlacerConfig config, const model::MultiVmModel* overhead_model)
    : config_(config), model_(overhead_model) {
  if (config_.overhead_aware) {
    VOPROF_REQUIRE_MSG(model_ != nullptr && model_->trained(),
                       "VOA placement needs a trained overhead model");
  }
}

bool Placer::fits(const PmState& pm, const model::UtilVec& demand,
                  double vm_mem_mib) const {
  // Memory feasibility: identical for both modes (reservation-based,
  // Dom0 included, headroom from MachineSpec::usable_mem_frac).
  if (pm.mem_reserved_mib() + vm_mem_mib > pm.spec.usable_mem_mib()) {
    return false;
  }
  const model::UtilVec sum = pm.demand_sum() + demand;
  if (config_.overhead_aware) {
    // VOA: Eq. (3) predicts the *PM* utilization including Dom0 and
    // hypervisor overhead; compare against the real ceilings.
    const model::UtilVec predicted =
        model_->predict(sum, pm.vm_count() + 1);
    if (predicted.cpu > config_.voa_cpu_capacity_pct) return false;
    if (predicted.bw > config_.bw_capacity_frac * pm.spec.nic_kbps) {
      return false;
    }
    return true;
  }
  // VOU: "the utilization of a particular resource in a PM equals the
  // sum of the utilizations of this resource of its hosted VMs" -- the
  // assumption the paper disproves.
  if (sum.cpu > config_.vou_cpu_capacity_pct) return false;
  if (sum.bw > config_.bw_capacity_frac * pm.spec.nic_kbps) return false;
  return true;
}

std::optional<std::size_t> Placer::choose(const std::vector<PmState>& pms,
                                          const model::UtilVec& demand,
                                          double vm_mem_mib) const {
  for (std::size_t i = 0; i < pms.size(); ++i) {
    if (fits(pms[i], demand, vm_mem_mib)) return i;
  }
  return std::nullopt;
}

std::size_t Placer::place(std::vector<PmState>& pms,
                          const model::UtilVec& demand, double vm_mem_mib,
                          bool* forced) const {
  VOPROF_REQUIRE(!pms.empty());
  std::size_t idx;
  if (const auto chosen = choose(pms, demand, vm_mem_mib)) {
    idx = *chosen;
    if (forced != nullptr) *forced = false;
  } else {
    // Nothing admits the VM: fall back to the least CPU-loaded PM
    // (the cloud must host it somewhere).
    idx = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < pms.size(); ++i) {
      const double load = pms[i].demand_sum().cpu;
      if (load < best) {
        best = load;
        idx = i;
      }
    }
    if (forced != nullptr) *forced = true;
  }
  pms[idx].vm_demands.push_back(demand);
  pms[idx].vm_mem_mib.push_back(vm_mem_mib);
  return idx;
}

}  // namespace voprof::place
