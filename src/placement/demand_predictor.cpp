#include "voprof/placement/demand_predictor.hpp"

#include <algorithm>

#include "voprof/util/assert.hpp"
#include "voprof/util/stats.hpp"

namespace voprof::place {

DemandPredictor::DemandPredictor(DemandPredictorConfig config)
    : config_(config) {
  VOPROF_REQUIRE(config_.window > 0);
  VOPROF_REQUIRE(config_.padding >= 0.0);
  VOPROF_REQUIRE(config_.base_percentile > 0.0 &&
                 config_.base_percentile <= 100.0);
}

double DemandPredictor::predict_metric(
    std::vector<double> window_values) const {
  VOPROF_REQUIRE(!window_values.empty());
  const double base =
      util::percentile(window_values, config_.base_percentile);
  return base * (1.0 + config_.padding);
}

model::UtilVec DemandPredictor::predict(
    const std::vector<model::UtilVec>& trace) const {
  VOPROF_REQUIRE_MSG(!trace.empty(), "demand prediction needs samples");
  const std::size_t start =
      trace.size() > config_.window ? trace.size() - config_.window : 0;
  std::vector<double> cpu, mem, io, bw;
  for (std::size_t i = start; i < trace.size(); ++i) {
    cpu.push_back(trace[i].cpu);
    mem.push_back(trace[i].mem);
    io.push_back(trace[i].io);
    bw.push_back(trace[i].bw);
  }
  return model::UtilVec{predict_metric(std::move(cpu)),
                        predict_metric(std::move(mem)),
                        predict_metric(std::move(io)),
                        predict_metric(std::move(bw))};
}

model::UtilVec DemandPredictor::predict_series(const mon::SeriesSet& s) const {
  VOPROF_REQUIRE(!s.cpu.empty());
  std::vector<model::UtilVec> trace;
  trace.reserve(s.cpu.size());
  for (std::size_t i = 0; i < s.cpu.size(); ++i) {
    trace.push_back(model::UtilVec{s.cpu[i].value, s.mem[i].value,
                                   s.io[i].value, s.bw[i].value});
  }
  return predict(trace);
}

}  // namespace voprof::place
