#include "voprof/placement/hotspot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "voprof/monitor/sample.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::place {

HotspotController::HotspotController(sim::Cluster& cluster,
                                     const model::MultiVmModel* overhead_model,
                                     std::vector<int> host_pm_ids,
                                     HotspotConfig config)
    : cluster_(cluster),
      model_(overhead_model),
      host_pm_ids_(std::move(host_pm_ids)),
      config_(config) {
  VOPROF_REQUIRE_MSG(!host_pm_ids_.empty(),
                     "hotspot controller needs at least one managed PM");
  if (config_.overhead_aware) {
    VOPROF_REQUIRE_MSG(model_ != nullptr && model_->trained(),
                       "overhead-aware mitigation needs a trained model");
  }
  VOPROF_REQUIRE(config_.check_interval > 0);
  for (int id : host_pm_ids_) {
    VOPROF_REQUIRE_MSG(cluster_.machine_by_id(id) != nullptr,
                       "unknown PM id under hotspot management");
  }
}

HotspotController::~HotspotController() {
  stop();
  *alive_ = false;
}

void HotspotController::start() {
  VOPROF_REQUIRE_MSG(!running_, "hotspot controller already running");
  running_ = true;
  // Prime the per-PM windows so the first check has a full interval.
  for (int id : host_pm_ids_) {
    PmWindow& w = windows_[id];
    w.prev = cluster_.machine_by_id(id)->snapshot(cluster_.engine().now());
    w.primed = true;
  }
  schedule_next();
}

void HotspotController::stop() { running_ = false; }

void HotspotController::schedule_next() {
  std::shared_ptr<bool> alive = alive_;
  cluster_.engine().schedule_after(config_.check_interval, [this, alive]() {
    if (!*alive || !running_) return;
    check_now();
    schedule_next();
  });
}

std::vector<std::pair<std::string, model::UtilVec>>
HotspotController::vm_utils_since_last(sim::PhysicalMachine& pm,
                                       PmWindow& window) const {
  const sim::MachineSnapshot cur =
      pm.snapshot(cluster_.engine().now());
  std::vector<std::pair<std::string, model::UtilVec>> out;
  if (window.primed && cur.time > window.prev.time) {
    const double interval = util::to_seconds(cur.time - window.prev.time);
    for (const auto& g : cur.guests) {
      // A VM may have arrived mid-window (migration); skip it until the
      // next full window.
      const sim::DomainSnapshot* prev_guest = nullptr;
      for (const auto& pg : window.prev.guests) {
        if (pg.name == g.name) {
          prev_guest = &pg;
          break;
        }
      }
      if (prev_guest == nullptr) continue;
      const mon::UtilSample u =
          mon::domain_util(prev_guest->counters, g.counters, interval);
      out.emplace_back(g.name, model::UtilVec::from_sample(u));
    }
  }
  window.prev = cur;
  window.primed = true;
  return out;
}

void HotspotController::check_now() {
  std::vector<PmView> views;
  for (int id : host_pm_ids_) {
    sim::PhysicalMachine* pm = cluster_.machine_by_id(id);
    if (pm == nullptr) continue;
    PmView v;
    v.id = id;
    v.vms = vm_utils_since_last(*pm, windows_[id]);
    model::UtilVec sum;
    for (const auto& [name, u] : v.vms) sum += u;
    const int n = static_cast<int>(v.vms.size());
    if (n > 0) {
      v.predicted_cpu = config_.overhead_aware
                            ? model_->predict_pm_cpu_indirect(sum, n)
                            : sum.cpu;
    }
    windows_[id].last_predicted_cpu = v.predicted_cpu;
    views.push_back(std::move(v));
  }
  if (views.size() < 2) return;  // nowhere to migrate to

  // Hottest PM first.
  std::sort(views.begin(), views.end(), [](const PmView& a, const PmView& b) {
    return a.predicted_cpu > b.predicted_cpu;
  });
  const PmView& hot = views.front();
  if (hot.predicted_cpu <= config_.cpu_threshold_pct) {
    if (config_.consolidate &&
        hot.predicted_cpu < config_.consolidate_below_pct) {
      try_consolidate(views);
    }
    return;
  }
  const PmView& cold = views.back();
  if (cold.id == hot.id) return;

  // Pick the heaviest migratable VM by Sandpiper-style volume (CPU
  // plus the Dom0-CPU-equivalent of its bandwidth) — but only if the
  // destination stays below the threshold after receiving it, so the
  // controller cannot ping-pong a hot VM between two machines.
  model::UtilVec cold_sum;
  for (const auto& [name, u] : cold.vms) cold_sum += u;
  const util::SimMicros now = cluster_.engine().now();
  const std::string* best = nullptr;
  double best_volume = -1.0;
  for (const auto& [name, u] : hot.vms) {
    const auto moved_it = last_moved_.find(name);
    if (moved_it != last_moved_.end() &&
        now - moved_it->second < config_.cooldown) {
      continue;
    }
    const int cold_n = static_cast<int>(cold.vms.size()) + 1;
    const double dest_after =
        config_.overhead_aware
            ? model_->predict_pm_cpu_indirect(cold_sum + u, cold_n)
            : (cold_sum + u).cpu;
    if (dest_after >= config_.cpu_threshold_pct) continue;
    const double volume = u.cpu + 0.0105 * u.bw;
    if (volume > best_volume) {
      best_volume = volume;
      best = &name;
    }
  }
  if (best == nullptr) return;

  HotspotAction action;
  action.time = now;
  action.vm_name = *best;
  action.from_pm = hot.id;
  action.to_pm = cold.id;
  action.predicted_cpu = hot.predicted_cpu;
  cluster_.migration().start(*best, hot.id, cold.id, config_.migration);
  last_moved_[*best] = now;
  actions_.push_back(std::move(action));
}

void HotspotController::try_consolidate(const std::vector<PmView>& views) {
  // Donor = the least-loaded PM that still hosts VMs; its guests move
  // to the most-loaded PM that can absorb them under the hotspot
  // threshold. One VM per check keeps the fleet stable.
  const PmView* donor = nullptr;
  for (auto it = views.rbegin(); it != views.rend(); ++it) {
    if (!it->vms.empty()) {
      donor = &*it;
      break;
    }
  }
  if (donor == nullptr) return;

  const util::SimMicros now = cluster_.engine().now();
  for (const PmView& target : views) {  // hottest (fullest) first
    if (target.id == donor->id) continue;
    // Anti-churn: only pack into hosts at least as full as the donor,
    // so consolidation converges instead of shuffling VMs sideways.
    if (target.vms.size() < donor->vms.size()) continue;
    // Pick the donor's lightest VM that fits under the threshold.
    const std::string* best = nullptr;
    double best_volume = std::numeric_limits<double>::infinity();
    model::UtilVec target_sum;
    for (const auto& [name, u] : target.vms) target_sum += u;
    for (const auto& [name, u] : donor->vms) {
      const auto moved_it = last_moved_.find(name);
      // Consolidation is a luxury action: damp it with a doubled
      // cooldown so a VM never ping-pongs between quiet hosts.
      if (moved_it != last_moved_.end() &&
          now - moved_it->second < 2 * config_.cooldown) {
        continue;
      }
      const int n_after = static_cast<int>(target.vms.size()) + 1;
      const double dest_after =
          config_.overhead_aware
              ? model_->predict_pm_cpu_indirect(target_sum + u, n_after)
              : (target_sum + u).cpu;
      if (dest_after >= config_.cpu_threshold_pct) continue;
      const double volume = u.cpu + 0.0105 * u.bw;
      if (volume < best_volume) {
        best_volume = volume;
        best = &name;
      }
    }
    if (best == nullptr) continue;

    HotspotAction action;
    action.time = now;
    action.kind = HotspotAction::Kind::kConsolidation;
    action.vm_name = *best;
    action.from_pm = donor->id;
    action.to_pm = target.id;
    action.predicted_cpu = donor->predicted_cpu;
    cluster_.migration().start(*best, donor->id, target.id,
                               config_.migration);
    last_moved_[*best] = now;
    actions_.push_back(std::move(action));
    return;
  }
}

double HotspotController::last_predicted_cpu(int pm_id) const {
  const auto it = windows_.find(pm_id);
  return it != windows_.end() ? it->second.last_predicted_cpu : 0.0;
}

}  // namespace voprof::place
