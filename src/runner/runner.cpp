#include "voprof/runner/runner.hpp"

#include <array>
#include <string>
#include <utility>

#include "voprof/util/assert.hpp"
#include "voprof/util/cli.hpp"
#include "voprof/util/stats.hpp"

namespace voprof::runner {

RunOptions options_from_cli(int argc, const char* const* argv) {
  const util::CliArgs args = util::CliArgs::parse(argc, argv);
  VOPROF_REQUIRE_MSG(args.command().empty(),
                     "unexpected positional argument: " + args.command());
  RunOptions opts;
  opts.jobs = args.get_int("jobs", 0);
  VOPROF_REQUIRE_MSG(opts.jobs >= 0, "--jobs must be >= 0");
  opts.trace_path = args.get_or("trace", "");
  for (const std::string& name : args.flag_names()) {
    VOPROF_REQUIRE_MSG(
        name == "jobs" || name == "trace",
        "unknown flag --" + name +
            " (runner accepts --jobs N and --trace FILE)");
  }
  // --trace wins over VOPROF_TRACE; either way the collector flushes
  // the Chrome-trace file when the program exits.
  if (!opts.trace_path.empty()) {
    obs::TraceCollector::global().enable(opts.trace_path);
  } else {
    obs::TraceCollector::global().init_from_env();
  }
  return opts;
}

namespace {

/// Streaming stats of one sweep cell, one entry per CSV value column.
constexpr std::size_t kSweepMetrics = 10;  // vm x4, pm x4, dom0, hyp

struct CellSummary {
  int n_vms = 0;
  double kind = 0.0;
  double level = 0.0;
  double input = 0.0;
  std::array<util::RunningStats, kSweepMetrics> stats;
};

CellSummary summarize_cell(const model::TrainingSet& rows) {
  CellSummary out;
  for (const model::TrainingRow& r : rows.rows()) {
    out.stats[0].add(r.vm_sum.cpu);
    out.stats[1].add(r.vm_sum.mem);
    out.stats[2].add(r.vm_sum.io);
    out.stats[3].add(r.vm_sum.bw);
    out.stats[4].add(r.pm.cpu);
    out.stats[5].add(r.pm.mem);
    out.stats[6].add(r.pm.io);
    out.stats[7].add(r.pm.bw);
    out.stats[8].add(r.dom0_cpu);
    out.stats[9].add(r.hyp_cpu);
  }
  return out;
}

std::vector<double> summary_to_row(const CellSummary& c) {
  std::vector<double> row = {static_cast<double>(c.n_vms), c.kind, c.level,
                             c.input,
                             static_cast<double>(c.stats[0].count())};
  for (const util::RunningStats& s : c.stats) row.push_back(s.mean());
  row.push_back(c.stats[4].stddev());  // pm_cpu spread
  row.push_back(c.stats[8].stddev());  // dom0_cpu spread
  return row;
}

}  // namespace

util::CsvDocument run_micro_sweep(const MicroSweepConfig& config,
                                  const RunOptions& opts) {
  VOPROF_WALL_SPAN("runner", "run_micro_sweep");
  VOPROF_REQUIRE_MSG(!config.vm_counts.empty(), "sweep needs vm_counts");
  VOPROF_REQUIRE_MSG(!config.kinds.empty(), "sweep needs workload kinds");
  VOPROF_REQUIRE_MSG(config.levels >= 1 && config.levels <= wl::kLevelCount,
                     "sweep levels out of range");

  struct Cell {
    int n_vms;
    wl::WorkloadKind kind;
    std::size_t level;
  };
  std::vector<Cell> cells;
  for (int n : config.vm_counts) {
    for (wl::WorkloadKind kind : config.kinds) {
      for (std::size_t level = 0; level < config.levels; ++level) {
        cells.push_back(Cell{n, kind, level});
      }
    }
  }

  SweepRunner runner(opts);
  const std::vector<CellSummary> summaries =
      runner.map(cells.size(), [&config, &cells](std::size_t i) {
        const Cell& cell = cells[i];
        model::TrainerConfig tc;
        tc.duration = config.duration;
        tc.seed = seed_for(config.base_seed, i);
        tc.machine = config.machine;
        tc.vm = config.vm;
        tc.costs = config.costs;
        const model::Trainer trainer(tc);
        CellSummary s =
            summarize_cell(trainer.collect_run(cell.kind, cell.level,
                                               cell.n_vms));
        s.n_vms = cell.n_vms;
        s.kind = static_cast<double>(cell.kind);
        s.level = static_cast<double>(cell.level);
        s.input = wl::level_value(cell.kind, cell.level);
        return s;
      });

  util::CsvDocument doc({"n_vms", "kind", "level", "input", "samples",
                         "vm_cpu", "vm_mem", "vm_io", "vm_bw", "pm_cpu",
                         "pm_mem", "pm_io", "pm_bw", "dom0_cpu", "hyp_cpu",
                         "pm_cpu_sd", "dom0_cpu_sd"});
  for (const CellSummary& s : summaries) doc.add_row(summary_to_row(s));

  if (config.summary_row) {
    // Cross-cell aggregation runs through RunningStats::merge in cell
    // order — the exact reduction a serial sweep performs, so the
    // summary row is jobs-independent too.
    CellSummary all;
    all.kind = -1.0;
    all.level = -1.0;
    for (const CellSummary& s : summaries) {
      for (std::size_t m = 0; m < kSweepMetrics; ++m) {
        all.stats[m].merge(s.stats[m]);
      }
    }
    doc.add_row(summary_to_row(all));
  }
  return doc;
}

const model::TrainedModels& ModelCache::get(model::RegressionMethod method,
                                            util::SimMicros duration,
                                            std::uint64_t seed, int jobs) {
  const Key key{static_cast<int>(method), duration, seed};
  static obs::Counter& hits =
      obs::Registry::global().counter("runner.model_cache_hits");
  static obs::Counter& misses =
      obs::Registry::global().counter("runner.model_cache_misses");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    hits.add();
  }
  if (it == cache_.end()) {
    misses.add();
    VOPROF_WALL_SPAN("runner", "ModelCache.train");
    model::TrainerConfig cfg;
    cfg.duration = duration;
    cfg.seed = seed;
    cfg.jobs = jobs;
    const model::Trainer trainer(cfg);
    it = cache_
             .emplace(key, std::make_unique<const model::TrainedModels>(
                               trainer.train(method)))
             .first;
    ++trainings_;
  }
  return *it->second;
}

std::size_t ModelCache::trainings() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trainings_;
}

ModelCache& model_cache() {
  static ModelCache cache;
  return cache;
}

}  // namespace voprof::runner
