#include "voprof/rubis/deployment.hpp"

#include <memory>

#include "voprof/util/assert.hpp"

namespace voprof::rubis {

RubisInstance wire_rubis(sim::Cluster& cluster, std::size_t pm_web,
                         std::size_t pm_db, const std::string& web_vm,
                         const std::string& db_vm, std::size_t pm_client,
                         const DeployOptions& options) {
  RubisInstance inst;
  inst.web_vm = web_vm;
  inst.db_vm = db_vm;
  inst.client_vm = "client" + options.suffix;

  sim::PhysicalMachine& web_pm = cluster.machine(pm_web);
  sim::PhysicalMachine& db_pm = cluster.machine(pm_db);
  sim::PhysicalMachine& client_pm = cluster.machine(pm_client);

  sim::DomU* web = web_pm.find_vm(web_vm);
  sim::DomU* db = db_pm.find_vm(db_vm);
  VOPROF_REQUIRE_MSG(web != nullptr, "web VM not found: " + web_vm);
  VOPROF_REQUIRE_MSG(db != nullptr, "db VM not found: " + db_vm);

  sim::VmSpec client_spec = options.vm_spec;
  client_spec.name = inst.client_vm;
  sim::DomU& client = client_pm.add_vm(client_spec);

  const sim::NetTarget web_addr{web_pm.id(), web_vm};
  const sim::NetTarget db_addr{db_pm.id(), db_vm};
  const sim::NetTarget client_addr{client_pm.id(), inst.client_vm};

  auto web_proc = std::make_unique<WebTier>(options.costs, db_addr,
                                            client_addr, options.seed + 1);
  auto db_proc =
      std::make_unique<DbTier>(options.costs, web_addr, options.seed + 2);
  auto client_proc = std::make_unique<ClientEmulator>(
      options.costs, web_addr, options.clients, options.seed + 3);

  inst.web = web_proc.get();
  inst.db = db_proc.get();
  inst.client = client_proc.get();

  web->attach(std::move(web_proc));
  db->attach(std::move(db_proc));
  client.attach(std::move(client_proc));
  return inst;
}

void schedule_client_ramp(sim::Engine& engine, ClientEmulator& client,
                          int from, int to, util::SimMicros duration,
                          int steps) {
  VOPROF_REQUIRE(steps >= 1);
  VOPROF_REQUIRE(duration > 0);
  VOPROF_REQUIRE(from >= 0 && to >= 0);
  client.set_clients(from);
  for (int s = 1; s <= steps; ++s) {
    const int count = from + (to - from) * s / steps;
    engine.schedule_after(duration * s / steps,
                          [&client, count]() { client.set_clients(count); });
  }
}

RubisInstance deploy_rubis(sim::Cluster& cluster, std::size_t pm_web,
                           std::size_t pm_db, std::size_t pm_client,
                           const DeployOptions& options) {
  sim::VmSpec web_spec = options.vm_spec;
  web_spec.name = "web" + options.suffix;
  sim::VmSpec db_spec = options.vm_spec;
  db_spec.name = "db" + options.suffix;
  cluster.machine(pm_web).add_vm(web_spec);
  cluster.machine(pm_db).add_vm(db_spec);
  return wire_rubis(cluster, pm_web, pm_db, web_spec.name, db_spec.name,
                    pm_client, options);
}

}  // namespace voprof::rubis
