#include "voprof/rubis/app.hpp"

#include <algorithm>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::rubis {

namespace {

/// Largest request rate a single-threaded tier can serve on one VCPU.
[[nodiscard]] double max_rate_per_vcpu(double cpu_ms_per_req) noexcept {
  // rate * (ms/1000) * 100 <= 100 %  =>  rate <= 1000 / ms.
  return 1000.0 / cpu_ms_per_req;
}

/// CPU percent for serving `rate` requests/s at `ms` per request.
[[nodiscard]] double cpu_for_rate(double rate, double ms) noexcept {
  return rate * ms / 10.0;
}

}  // namespace

// ------------------------------------------------------------- WebTier
WebTier::WebTier(RubisCosts costs, sim::NetTarget db, sim::NetTarget client,
                 std::uint64_t seed)
    : costs_(costs), db_(std::move(db)), client_(std::move(client)),
      rng_(seed) {
  VOPROF_REQUIRE(costs_.web_cpu_ms_per_req > 0.0);
  VOPROF_REQUIRE(costs_.db_fraction >= 0.0 && costs_.db_fraction <= 1.0);
}

sim::ProcessDemand WebTier::demand(util::SimMicros /*now*/, double dt) {
  sim::ProcessDemand d;
  wanted_rate_ = std::min(queue_ / dt,
                          max_rate_per_vcpu(costs_.web_cpu_ms_per_req));
  drain_rate_ = db_done_ / dt;  // DB answers returned now

  d.cpu_pct = 0.3 + cpu_for_rate(wanted_rate_, costs_.web_cpu_ms_per_req);
  d.mem_mib = 60.0;  // Apache+PHP resident set

  // Queries for the DB-bound share of the requests served this tick.
  const double queries = wanted_rate_ * costs_.db_fraction * dt;
  if (queries > 0.0) {
    d.flows.push_back(
        sim::NetFlow{queries * costs_.query_kbits, db_, kTagDbQuery});
  }
  // Responses: the directly-served share plus the drained DB answers.
  const double responses =
      wanted_rate_ * (1.0 - costs_.db_fraction) * dt + drain_rate_ * dt;
  if (responses > 0.0) {
    d.flows.push_back(sim::NetFlow{responses * costs_.response_kbits, client_,
                                   kTagResponse});
  }
  return d;
}

void WebTier::granted(double cpu_frac, util::SimMicros /*now*/, double dt) {
  // The machine scaled the emitted flows by cpu_frac; mirror that in
  // the queue bookkeeping.
  const double processed = wanted_rate_ * dt * cpu_frac;
  const double drained = drain_rate_ * dt * cpu_frac;
  queue_ = std::max(0.0, queue_ - processed);
  awaiting_db_ += processed * costs_.db_fraction;
  db_done_ = std::max(0.0, db_done_ - drained);
  served_ += processed * (1.0 - costs_.db_fraction) + drained;
}

void WebTier::on_receive(double kbits, int tag, util::SimMicros /*now*/) {
  if (tag == kTagRequest) {
    queue_ += kbits / costs_.request_kbits;
  } else if (tag == kTagDbResponse) {
    const double answers = kbits / costs_.db_response_kbits;
    awaiting_db_ = std::max(0.0, awaiting_db_ - answers);
    db_done_ += answers;
  }
}

// -------------------------------------------------------------- DbTier
DbTier::DbTier(RubisCosts costs, sim::NetTarget web, std::uint64_t seed)
    : costs_(costs), web_(std::move(web)), rng_(seed) {
  VOPROF_REQUIRE(costs_.db_cpu_ms_per_query > 0.0);
}

sim::ProcessDemand DbTier::demand(util::SimMicros /*now*/, double dt) {
  sim::ProcessDemand d;
  wanted_rate_ = std::min(queue_ / dt,
                          max_rate_per_vcpu(costs_.db_cpu_ms_per_query));
  d.cpu_pct = 0.3 + cpu_for_rate(wanted_rate_, costs_.db_cpu_ms_per_query);
  d.mem_mib = 90.0;  // MySQL resident set
  d.io_blocks = wanted_rate_ * costs_.db_io_blocks_per_query * dt;
  const double answers = wanted_rate_ * dt;
  if (answers > 0.0) {
    d.flows.push_back(sim::NetFlow{answers * costs_.db_response_kbits, web_,
                                   kTagDbResponse});
  }
  return d;
}

void DbTier::granted(double cpu_frac, util::SimMicros /*now*/, double dt) {
  const double processed = wanted_rate_ * dt * cpu_frac;
  queue_ = std::max(0.0, queue_ - processed);
  served_ += processed;
}

void DbTier::on_receive(double kbits, int tag, util::SimMicros /*now*/) {
  if (tag == kTagDbQuery) {
    queue_ += kbits / costs_.query_kbits;
  }
}

// ------------------------------------------------------ ClientEmulator
ClientEmulator::ClientEmulator(RubisCosts costs, sim::NetTarget web,
                               int clients, std::uint64_t seed)
    : costs_(costs), web_(std::move(web)), rng_(seed), clients_(clients),
      thinking_(static_cast<double>(clients)) {
  VOPROF_REQUIRE(clients >= 0);
  VOPROF_REQUIRE(costs_.think_time_s > 0.0);
}

sim::ProcessDemand ClientEmulator::demand(util::SimMicros /*now*/,
                                          double dt) {
  sim::ProcessDemand d;
  // Exponential think times: thinking clients fire at rate 1/Z each.
  double send_rate = thinking_ / costs_.think_time_s;
  send_rate = std::max(0.0, send_rate * (1.0 + 0.05 * rng_.gaussian()));
  send_rate_ = send_rate;
  d.cpu_pct = 0.2 + cpu_for_rate(send_rate, costs_.client_cpu_ms_per_req);
  d.mem_mib = 40.0;
  const double sent = send_rate * dt;
  if (sent > 0.0) {
    d.flows.push_back(
        sim::NetFlow{sent * costs_.request_kbits, web_, kTagRequest});
  }
  return d;
}

void ClientEmulator::granted(double cpu_frac, util::SimMicros /*now*/,
                             double dt) {
  const double sent = send_rate_ * dt * cpu_frac;
  thinking_ = std::max(0.0, thinking_ - sent);
  in_flight_ += sent;
}

void ClientEmulator::on_receive(double kbits, int tag,
                                util::SimMicros /*now*/) {
  if (tag != kTagResponse) return;
  const double n = kbits / costs_.response_kbits;
  in_flight_ = std::max(0.0, in_flight_ - n);
  thinking_ += n;
  completed_ += n;
}

void ClientEmulator::set_clients(int clients) {
  VOPROF_REQUIRE(clients >= 0);
  const double delta = static_cast<double>(clients - clients_);
  clients_ = clients;
  thinking_ = std::max(0.0, thinking_ + delta);
}

}  // namespace voprof::rubis
