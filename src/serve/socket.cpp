#include "voprof/serve/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "voprof/obs/trace.hpp"

namespace voprof::serve {

namespace {

util::Error io_error(const std::string& what, const std::string& context) {
  return util::Error{util::Errc::kIo, what + ": " + std::strerror(errno),
                     context};
}

/// Fill a sockaddr_un for `path`; too-long paths are an error (the
/// kernel limit is sizeof(sun_path) including the NUL).
util::Result<sockaddr_un> make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return util::Error{util::Errc::kValidation,
                       "socket path must be 1.." +
                           std::to_string(sizeof(addr.sun_path) - 1) +
                           " bytes",
                       path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

util::Result<Fd> listen_unix(const std::string& path, int backlog) {
  util::Result<sockaddr_un> addr = make_addr(path);
  if (!addr.ok()) return addr.error();

  // Unlink only a stale *socket* file; refusing to clobber a regular
  // file means a typoed --socket can never destroy data.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return util::Error{util::Errc::kIo,
                         "path exists and is not a socket", path};
    }
    if (::unlink(path.c_str()) != 0) {
      return io_error("cannot remove stale socket", path);
    }
  }

  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return io_error("socket() failed", path);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_un)) != 0) {
    return io_error("bind() failed", path);
  }
  if (::listen(fd.get(), backlog) != 0) {
    return io_error("listen() failed", path);
  }
  return fd;
}

util::Result<Fd> connect_unix(const std::string& path) {
  util::Result<sockaddr_un> addr = make_addr(path);
  if (!addr.ok()) return addr.error();
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return io_error("socket() failed", path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(sockaddr_un)) != 0) {
    return io_error("connect() failed", path);
  }
  return fd;
}

util::Result<LineClient> LineClient::connect(const std::string& path) {
  util::Result<Fd> fd = connect_unix(path);
  if (!fd.ok()) return fd.error();
  return LineClient(std::move(fd).take());
}

util::Result<bool> LineClient::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_.get(), framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("send() failed", "client");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

util::Result<std::string> LineClient::recv_line(int timeout_ms) {
  const std::int64_t deadline_us =
      obs::monotonic_us() + static_cast<std::int64_t>(timeout_ms) * 1000;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    const std::int64_t left_us = deadline_us - obs::monotonic_us();
    if (left_us <= 0) {
      return util::Error{util::Errc::kIo,
                         "timed out waiting for a response line", "client"};
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>((left_us + 999) / 1000));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return io_error("poll() failed", "client");
    }
    if (rc == 0) continue;  // re-check the deadline at the top
    char chunk[4096];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("recv() failed", "client");
    }
    if (n == 0) {
      return util::Error{util::Errc::kIo,
                         "connection closed by the server", "client"};
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::Result<std::string> LineClient::roundtrip(const std::string& line,
                                                int timeout_ms) {
  util::Result<bool> sent = send_line(line);
  if (!sent.ok()) return sent.error();
  return recv_line(timeout_ms);
}

}  // namespace voprof::serve
