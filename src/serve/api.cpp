#include "voprof/serve/api.hpp"

namespace voprof::serve {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kPredict:
      return "predict";
    case Op::kSimulate:
      return "simulate";
    case Op::kTrain:
      return "train";
    case Op::kStatus:
      return "status";
    case Op::kDrain:
      return "drain";
    case Op::kSleep:
      return "sleep";
  }
  return "status";
}

util::Result<Op> op_from_name(const std::string& name) {
  for (Op op : {Op::kPredict, Op::kSimulate, Op::kTrain, Op::kStatus,
                Op::kDrain, Op::kSleep}) {
    if (name == op_name(op)) return op;
  }
  return util::Error{util::Errc::kValidation, "unknown op: '" + name + "'",
                     "request.op"};
}

const char* api_error_name(ApiError code) noexcept {
  switch (code) {
    case ApiError::kBadRequest:
      return "bad_request";
    case ApiError::kOverloaded:
      return "overloaded";
    case ApiError::kTimedOut:
      return "timed_out";
    case ApiError::kShuttingDown:
      return "shutting_down";
    case ApiError::kInternal:
      return "internal";
  }
  return "internal";
}

util::Result<Request> parse_request(const std::string& line) {
  util::Json doc;
  try {
    doc = util::Json::parse(line);
  } catch (const util::JsonError& e) {
    return util::Error{util::Errc::kParse,
                       std::string("malformed request JSON: ") + e.what(),
                       "request"};
  }
  if (!doc.is_object()) {
    return util::Error{util::Errc::kValidation,
                       "request must be a JSON object", "request"};
  }
  const auto fail = [](const std::string& field, const std::string& msg) {
    return util::Error{util::Errc::kValidation, msg, "request." + field};
  };

  if (const util::Json* api = doc.find("api")) {
    if (!api->is_string() || api->as_string() != kApiVersion) {
      return fail("api", std::string("unsupported api version (want '") +
                             kApiVersion + "')");
    }
  }

  Request req;
  if (const util::Json* id = doc.find("id")) {
    if (!id->is_string()) return fail("id", "id must be a string");
    req.id = id->as_string();
  }

  const util::Json* op = doc.find("op");
  if (op == nullptr) return fail("op", "missing required field 'op'");
  if (!op->is_string()) return fail("op", "op must be a string");
  util::Result<Op> parsed_op = op_from_name(op->as_string());
  if (!parsed_op.ok()) return parsed_op.error();
  req.op = parsed_op.value();

  if (const util::Json* deadline = doc.find("deadline_ms")) {
    if (!deadline->is_number() || deadline->as_number() < 0) {
      return fail("deadline_ms", "deadline_ms must be a number >= 0");
    }
    req.deadline_ms = static_cast<std::int64_t>(deadline->as_number());
  }

  if (const util::Json* params = doc.find("params")) {
    if (!params->is_object()) {
      return fail("params", "params must be an object");
    }
    req.params = *params;
  } else {
    req.params = util::Json::object();
  }

  // Reject unknown envelope keys so typos ("deadline": ...) fail loudly
  // instead of silently running with the default.
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "api" && key != "id" && key != "op" && key != "deadline_ms" &&
        key != "params") {
      return fail(key, "unknown request field '" + key + "'");
    }
  }
  return req;
}

std::string ok_response(const std::string& id, util::Json result) {
  util::Json resp = util::Json::object();
  resp.set("api", kApiVersion);
  resp.set("id", id);
  resp.set("ok", true);
  resp.set("result", std::move(result));
  return resp.dump(/*indent=*/0);
}

std::string error_response(const std::string& id, ApiError code,
                           const std::string& message) {
  util::Json err = util::Json::object();
  err.set("code", api_error_name(code));
  err.set("message", message);
  util::Json resp = util::Json::object();
  resp.set("api", kApiVersion);
  resp.set("id", id);
  resp.set("ok", false);
  resp.set("error", std::move(err));
  return resp.dump(/*indent=*/0);
}

ApiError api_error_from(const util::Error& err) noexcept {
  switch (err.code) {
    case util::Errc::kParse:
    case util::Errc::kValidation:
    case util::Errc::kIo:
    case util::Errc::kUnsupported:
      return ApiError::kBadRequest;
    case util::Errc::kInternal:
      return ApiError::kInternal;
  }
  return ApiError::kInternal;
}

}  // namespace voprof::serve
