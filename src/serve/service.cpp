#include "voprof/serve/service.hpp"

#include <chrono>
#include <future>
#include <initializer_list>
#include <thread>
#include <utility>
#include <vector>

#include "voprof/core/serialize.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/runner/runner.hpp"
#include "voprof/scenario/scenario.hpp"
#include "voprof/util/units.hpp"

namespace voprof::serve {

namespace {

/// Handler-internal control flow: handlers signal a structured API
/// failure (bad params, expired deadline, ...) by throwing; dispatch's
/// caller turns it into the wire error. Anything else escaping a
/// handler is reported as `internal`.
struct ApiFailure {
  ApiError code;
  std::string message;
};

[[noreturn]] void fail(ApiError code, std::string message) {
  throw ApiFailure{code, std::move(message)};
}

void check_deadline(std::int64_t expires_us, const char* where) {
  if (obs::monotonic_us() >= expires_us) {
    fail(ApiError::kTimedOut,
         std::string("deadline expired (") + where + ")");
  }
}

// --- obs mirrors (function-local statics: registration is lazy and
// the references are process-immortal, same idiom as the runner) -----
obs::Counter& m_accepted() {
  static obs::Counter& c = obs::Registry::global().counter("serve.accepted");
  return c;
}
obs::Counter& m_completed() {
  static obs::Counter& c = obs::Registry::global().counter("serve.completed");
  return c;
}
obs::Counter& m_failed() {
  static obs::Counter& c = obs::Registry::global().counter("serve.failed");
  return c;
}
obs::Counter& m_timed_out() {
  static obs::Counter& c = obs::Registry::global().counter("serve.timed_out");
  return c;
}
obs::Counter& m_rejected_overloaded() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.rejected_overloaded");
  return c;
}
obs::Counter& m_rejected_shutting_down() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.rejected_shutting_down");
  return c;
}
obs::Counter& m_bad_requests() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.bad_requests");
  return c;
}
obs::Counter& m_control() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.control_requests");
  return c;
}
obs::Gauge& m_queue_depth() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.queue_depth");
  return g;
}
obs::Histogram& m_request_ms() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "serve.request_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                           5000, 10000, 30000, 60000});
  return h;
}

// --- typed params access --------------------------------------------
void check_param_keys(const util::Json& params,
                      std::initializer_list<const char*> allowed) {
  if (!params.is_object()) return;  // a default-built Request has null params
  for (const auto& [key, value] : params.as_object()) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      fail(ApiError::kBadRequest, "unknown param '" + key + "'");
    }
  }
}

double num_param(const util::Json& params, const char* key, double def) {
  const util::Json* v = params.find(key);
  if (v == nullptr) return def;
  if (!v->is_number()) {
    fail(ApiError::kBadRequest,
         std::string("param '") + key + "' must be a number");
  }
  return v->as_number();
}

int int_param(const util::Json& params, const char* key, int def) {
  const double v = num_param(params, key, static_cast<double>(def));
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    fail(ApiError::kBadRequest,
         std::string("param '") + key + "' must be an integer");
  }
  return i;
}

std::string str_param(const util::Json& params, const char* key,
                      const std::string& def) {
  const util::Json* v = params.find(key);
  if (v == nullptr) return def;
  if (!v->is_string()) {
    fail(ApiError::kBadRequest,
         std::string("param '") + key + "' must be a string");
  }
  return v->as_string();
}

model::RegressionMethod method_param(const util::Json& params) {
  const std::string name = str_param(params, "method", "lms");
  if (name == "lms") return model::RegressionMethod::kLms;
  if (name == "ols") return model::RegressionMethod::kOls;
  fail(ApiError::kBadRequest,
       "param 'method' must be lms or ols, got '" + name + "'");
}

}  // namespace

util::Json predict_result_json(const model::TrainedModels& models,
                               const model::UtilVec& sum, int n_vms) {
  const model::UtilVec pm = models.multi.predict(sum, n_vms);
  util::Json sum_j = util::Json::object();
  sum_j.set("cpu", sum.cpu);
  sum_j.set("mem", sum.mem);
  sum_j.set("io", sum.io);
  sum_j.set("bw", sum.bw);
  util::Json pm_j = util::Json::object();
  pm_j.set("cpu", models.multi.predict_pm_cpu_indirect(sum, n_vms));
  pm_j.set("mem", pm.mem);
  pm_j.set("io", pm.io);
  pm_j.set("bw", pm.bw);
  util::Json result = util::Json::object();
  result.set("vms", n_vms);
  result.set("sum", std::move(sum_j));
  result.set("pm", std::move(pm_j));
  result.set("dom0_cpu", models.multi.predict_dom0_cpu(sum, n_vms));
  result.set("hyp_cpu", models.multi.predict_hyp_cpu(sum, n_vms));
  return result;
}

util::Json simulate_result_json(
    const scenario::ReplicatedScenarioResult& result) {
  util::Json machines = util::Json::object();
  for (const auto& [machine, entities] : result.stats) {
    util::Json entities_j = util::Json::object();
    for (const auto& [key, s] : entities) {
      util::Json e = util::Json::object();
      e.set("cpu_mean", s.cpu.mean());
      e.set("cpu_stddev", s.cpu.stddev());
      e.set("mem_mean", s.mem.mean());
      e.set("io_mean", s.io.mean());
      e.set("bw_mean", s.bw.mean());
      e.set("samples", static_cast<double>(s.cpu.count()));
      entities_j.set(key, std::move(e));
    }
    machines.set(std::to_string(machine), std::move(entities_j));
  }
  util::Json result_j = util::Json::object();
  result_j.set("replications", static_cast<double>(result.replications));
  result_j.set("machines", std::move(machines));
  return result_j;
}

Service::Service(ServiceConfig config)
    : config_(config),
      pool_(config.jobs <= 0 ? 0 : static_cast<std::size_t>(config.jobs),
            util::TaskPool::Threading::kAlwaysThreaded) {}

Service::~Service() {
  begin_drain();
  wait_idle();
}

void Service::submit_line(const std::string& line, Responder done) {
  util::Result<Request> parsed = parse_request(line);
  if (!parsed.ok()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    m_bad_requests().add();
    done(error_response("", ApiError::kBadRequest,
                        parsed.error().to_string()));
    return;
  }
  submit(std::move(parsed).take(), std::move(done));
}

void Service::submit(Request req, Responder done) {
  // Control ops stay out of the queue so the daemon remains
  // observable and stoppable while the workers are saturated.
  if (req.op == Op::kStatus || req.op == Op::kDrain) {
    m_control().add();
    done(run_control(req));
    return;
  }
  if (req.op == Op::kSleep && !config_.enable_test_ops) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    m_bad_requests().add();
    done(error_response(req.id, ApiError::kBadRequest,
                        "op 'sleep' is a diagnostics op; this server does "
                        "not enable test ops"));
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_shutting_down().add();
    done(error_response(req.id, ApiError::kShuttingDown,
                        "server is draining; no new work is admitted"));
    return;
  }

  // Admission: one atomic bound on queued + running requests. On
  // overload the count is rolled back and the caller is answered
  // immediately — submit never blocks on a full queue.
  const std::size_t prev = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= config_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_overloaded().add();
    done(error_response(
        req.id, ApiError::kOverloaded,
        "queue full (" + std::to_string(config_.queue_capacity) +
            " requests in flight); retry later"));
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  m_accepted().add();
  m_queue_depth().set(static_cast<double>(prev + 1));

  const std::int64_t expires_us = expiry_for(req.deadline_ms);
  (void)pool_.submit(
      [this, req = std::move(req), expires_us, done = std::move(done)]() {
        run_request(req, expires_us, done);
      });
}

std::string Service::handle_line(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> response = promise.get_future();
  submit_line(line, [&promise](std::string resp) {
    promise.set_value(std::move(resp));
  });
  return response.get();
}

void Service::begin_drain() { draining_.store(true, std::memory_order_release); }

bool Service::draining() const noexcept {
  return draining_.load(std::memory_order_acquire);
}

void Service::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this]() {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

std::size_t Service::in_flight() const noexcept {
  return in_flight_.load(std::memory_order_acquire);
}

Service::Stats Service::stats() const noexcept {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.rejected_overloaded = rejected_overloaded_.load(std::memory_order_relaxed);
  s.rejected_shutting_down =
      rejected_shutting_down_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  return s;
}

std::int64_t Service::expiry_for(std::int64_t deadline_ms) const {
  std::int64_t ms =
      deadline_ms > 0 ? deadline_ms : config_.default_deadline_ms;
  if (ms > config_.max_deadline_ms) ms = config_.max_deadline_ms;
  return obs::monotonic_us() + ms * 1000;
}

void Service::finish_one() {
  std::lock_guard<std::mutex> lock(idle_mutex_);
  const std::size_t now = in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  m_queue_depth().set(static_cast<double>(now - 1));
  idle_cv_.notify_all();
}

void Service::run_request(const Request& req, std::int64_t expires_us,
                          const Responder& done) {
  const std::int64_t t0 = obs::monotonic_us();
  std::string response;
  if (t0 >= expires_us) {
    // Expired while queued: answer without running the work at all.
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    m_timed_out().add();
    response = error_response(req.id, ApiError::kTimedOut,
                              "deadline expired while queued");
  } else {
    try {
      VOPROF_WALL_SPAN("serve", op_name(req.op));
      util::Json result = dispatch(req, expires_us);
      completed_.fetch_add(1, std::memory_order_relaxed);
      m_completed().add();
      response = ok_response(req.id, std::move(result));
    } catch (const ApiFailure& f) {
      if (f.code == ApiError::kTimedOut) {
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        m_timed_out().add();
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        m_failed().add();
      }
      response = error_response(req.id, f.code, f.message);
    } catch (const std::exception& e) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      m_failed().add();
      response = error_response(req.id, ApiError::kInternal, e.what());
    }
  }
  m_request_ms().observe(
      static_cast<double>(obs::monotonic_us() - t0) / 1000.0);
  // Deliver BEFORE decrementing in-flight: a drainer observing zero
  // in-flight must be guaranteed every response has been handed to
  // its responder already.
  done(std::move(response));
  finish_one();
}

std::string Service::run_control(const Request& req) {
  if (req.op == Op::kDrain) {
    begin_drain();
    util::Json result = util::Json::object();
    result.set("draining", true);
    result.set("in_flight", static_cast<double>(in_flight()));
    return ok_response(req.id, std::move(result));
  }
  return ok_response(req.id, status_json());
}

util::Json Service::dispatch(const Request& req, std::int64_t expires_us) {
  switch (req.op) {
    case Op::kPredict:
      return op_predict(req.params, expires_us);
    case Op::kSimulate:
      return op_simulate(req.params, expires_us);
    case Op::kTrain:
      return op_train(req.params, expires_us);
    case Op::kSleep:
      return op_sleep(req.params, expires_us);
    case Op::kStatus:
    case Op::kDrain:
      break;  // handled inline by submit(); unreachable here
  }
  fail(ApiError::kInternal,
       std::string("op '") + op_name(req.op) + "' is not queueable");
}

util::Json Service::op_predict(const util::Json& params,
                               std::int64_t expires_us) {
  check_param_keys(params, {"method", "cpu", "mem", "io", "bw", "vms",
                            "train_duration_s", "seed"});
  const model::RegressionMethod method = method_param(params);
  const model::UtilVec sum{
      num_param(params, "cpu", 0.0), num_param(params, "mem", 0.0),
      num_param(params, "io", 0.0), num_param(params, "bw", 0.0)};
  const int n_vms = int_param(params, "vms", 1);
  if (n_vms < 1) fail(ApiError::kBadRequest, "param 'vms' must be >= 1");
  const double duration_s =
      num_param(params, "train_duration_s", config_.train_duration_s);
  if (duration_s <= 0) {
    fail(ApiError::kBadRequest, "param 'train_duration_s' must be > 0");
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(int_param(
      params, "seed", static_cast<int>(config_.default_seed)));

  // First use of a (method, duration, seed) cell trains the models;
  // afterwards the process-wide cache answers instantly. The fitted
  // coefficients are independent of inner_jobs, so responses are
  // byte-identical no matter how the daemon is parallelized.
  check_deadline(expires_us, "before training");
  const model::TrainedModels& models = runner::model_cache().get(
      method, util::seconds(duration_s), seed, config_.inner_jobs);
  check_deadline(expires_us, "after training");

  return predict_result_json(models, sum, n_vms);
}

util::Json Service::op_simulate(const util::Json& params,
                                std::int64_t expires_us) {
  check_param_keys(params, {"scenario", "replications"});
  const std::string text = str_param(params, "scenario", "");
  if (text.empty()) {
    fail(ApiError::kBadRequest,
         "param 'scenario' (INI text) is required for simulate");
  }
  const int replications = int_param(params, "replications", 1);
  if (replications < 1) {
    fail(ApiError::kBadRequest, "param 'replications' must be >= 1");
  }
  util::Result<scenario::ScenarioSpec> parsed =
      scenario::ScenarioSpec::parse_result(text);
  if (!parsed.ok()) {
    fail(ApiError::kBadRequest, parsed.error().to_string());
  }
  const scenario::ScenarioSpec spec = std::move(parsed).take();

  check_deadline(expires_us, "before simulation");
  const scenario::ReplicatedScenarioResult result =
      scenario::run_scenario_replicated(
          spec, static_cast<std::size_t>(replications), config_.inner_jobs,
          [expires_us]() { return obs::monotonic_us() < expires_us; });
  if (result.replications < static_cast<std::size_t>(replications)) {
    fail(ApiError::kTimedOut,
         "deadline expired after " + std::to_string(result.replications) +
             " of " + std::to_string(replications) + " replications");
  }

  return simulate_result_json(result);
}

util::Json Service::op_train(const util::Json& params,
                             std::int64_t expires_us) {
  check_param_keys(params, {"method", "duration_s", "seed"});
  const model::RegressionMethod method = method_param(params);
  const double duration_s =
      num_param(params, "duration_s", config_.train_duration_s);
  if (duration_s <= 0) {
    fail(ApiError::kBadRequest, "param 'duration_s' must be > 0");
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(int_param(
      params, "seed", static_cast<int>(config_.default_seed)));

  check_deadline(expires_us, "before training");
  const model::TrainedModels& models = runner::model_cache().get(
      method, util::seconds(duration_s), seed, config_.inner_jobs);
  check_deadline(expires_us, "after training");

  util::Json result = util::Json::object();
  result.set("method", str_param(params, "method", "lms"));
  result.set("observations", static_cast<double>(models.data.size()));
  result.set("cached_trainings",
             static_cast<double>(runner::model_cache().trainings()));
  // The serialized model text: clients can store it and later run
  // `voprofctl predict --models` offline against the same fit.
  result.set("models", model::models_to_string(models));
  return result;
}

util::Json Service::op_sleep(const util::Json& params,
                             std::int64_t expires_us) {
  check_param_keys(params, {"ms"});
  const double total_ms = num_param(params, "ms", 0.0);
  if (total_ms < 0) fail(ApiError::kBadRequest, "param 'ms' must be >= 0");
  // Sleep in small slices so an expired deadline is noticed promptly —
  // the same cooperative-checkpoint discipline the real handlers use.
  double slept_ms = 0.0;
  while (slept_ms < total_ms) {
    check_deadline(expires_us, "mid-sleep");
    const double slice = total_ms - slept_ms < 5.0 ? total_ms - slept_ms : 5.0;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(slice * 1000)));
    slept_ms += slice;
  }
  util::Json result = util::Json::object();
  result.set("slept_ms", total_ms);
  return result;
}

util::Json Service::status_json() const {
  const Stats s = stats();
  util::Json j = util::Json::object();
  j.set("jobs", static_cast<double>(pool_.jobs()));
  j.set("queue_capacity", static_cast<double>(config_.queue_capacity));
  j.set("in_flight", static_cast<double>(in_flight()));
  j.set("draining", draining());
  j.set("accepted", static_cast<double>(s.accepted));
  j.set("completed", static_cast<double>(s.completed));
  j.set("failed", static_cast<double>(s.failed));
  j.set("timed_out", static_cast<double>(s.timed_out));
  j.set("rejected_overloaded", static_cast<double>(s.rejected_overloaded));
  j.set("rejected_shutting_down",
        static_cast<double>(s.rejected_shutting_down));
  j.set("bad_requests", static_cast<double>(s.bad_requests));
  j.set("test_ops", config_.enable_test_ops);
  return j;
}

}  // namespace voprof::serve
