#include "voprof/serve/daemon.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/json.hpp"

namespace voprof::serve {

namespace {

/// Write end of the running daemon's wake pipe, for the signal
/// handler. One daemon per process when signal handlers are installed.
std::atomic<int> g_signal_wake_fd{-1};
/// Set by the handler, polled by the event loop each iteration.
std::atomic<bool> g_signal_stop{false};

extern "C" void voprofd_signal_handler(int) {
  g_signal_stop.store(true, std::memory_order_release);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // Best-effort, async-signal-safe; a full pipe already wakes poll.
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

/// The event loop must never block in accept4: the listener from
/// listen_unix is blocking (fine for simple callers), so flip it here.
void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Per-connection state, owned exclusively by the event-loop thread.
struct Daemon::Conn {
  Fd fd;
  std::string inbuf;   ///< bytes received past the last complete line
  std::string outbuf;  ///< response bytes not yet written
  /// Close once outbuf drains (oversized line / protocol giveup).
  bool close_after_flush = false;
  /// Peer closed its write end; keep the connection alive only while
  /// responses are still owed or buffered (half-close support).
  bool eof = false;
  /// Requests submitted on this connection without a delivered (or
  /// dropped) response yet. Event-loop thread only.
  int pending = 0;
};

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), service_(config_.service) {}

Daemon::~Daemon() = default;

void Daemon::wake() noexcept {
  if (wake_w_.valid()) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t rc = ::write(wake_w_.get(), &byte, 1);
  }
}

void Daemon::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

bool Daemon::drained() const {
  if (service_.in_flight() != 0) return false;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    (void)id;
    if (!conn->outbuf.empty()) return false;
  }
  return true;
}

util::Result<bool> Daemon::run() {
  if (config_.socket_path.empty()) {
    return util::Error{util::Errc::kValidation,
                       "daemon needs a socket path", "daemon"};
  }
  util::Result<Fd> listener =
      listen_unix(config_.socket_path, config_.listen_backlog);
  if (!listener.ok()) return listener.error();
  listen_fd_ = std::move(listener).take();
  set_nonblocking(listen_fd_.get());

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    return util::Error{util::Errc::kIo,
                       std::string("pipe2() failed: ") + std::strerror(errno),
                       "daemon"};
  }
  wake_r_.reset(pipe_fds[0]);
  wake_w_.reset(pipe_fds[1]);

  if (config_.install_signal_handlers) {
    g_signal_stop.store(false, std::memory_order_release);
    g_signal_wake_fd.store(wake_w_.get(), std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = voprofd_signal_handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: poll must return EINTR
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
  }

  running_.store(true, std::memory_order_release);

  bool accepting = true;
  for (;;) {
    // A stop request (signal, request_stop or a drain op observed via
    // service_.draining) turns off admission and accept in one place.
    if (stop_requested_.load(std::memory_order_acquire) ||
        (config_.install_signal_handlers &&
         g_signal_stop.load(std::memory_order_acquire))) {
      service_.begin_drain();
    }
    if (service_.draining() && accepting) {
      accepting = false;
      listen_fd_.reset();
    }
    if (!accepting && drained()) break;

    std::vector<pollfd> pfds;
    pfds.push_back({wake_r_.get(), POLLIN, 0});
    if (accepting) pfds.push_back({listen_fd_.get(), POLLIN, 0});
    std::vector<int> pfd_conn(pfds.size(), -1);
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn->eof) events |= POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({conn->fd.get(), events, 0});
      pfd_conn.push_back(id);
    }

    // 200 ms tick: cheap insurance that drain progress (worker done,
    // nothing else happening) is noticed even if a wake byte is lost.
    const int rc = ::poll(pfds.data(), pfds.size(), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flags
      break;
    }

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_r_.get()) {
        char buf[64];
        while (::read(wake_r_.get(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (accepting && p.fd == listen_fd_.get()) {
        accept_new_connections();
        continue;
      }
      const int id = pfd_conn[i];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !conn.eof) {
        read_conn(id, conn);
      }
      if ((p.revents & POLLOUT) != 0) flush_conn(conn);
    }

    handle_completions();

    // Reap connections that are finished: flushed and told to close,
    // or peer gone with nothing left to deliver.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& conn = *it->second;
      const bool done_closing = conn.close_after_flush && conn.outbuf.empty();
      const bool dead_peer =
          conn.eof && conn.pending == 0 && conn.outbuf.empty();
      if (done_closing || !conn.fd.valid() || dead_peer) {
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Admission is off; wait for stragglers, deliver their responses,
  // then flush whatever the sockets will still take. (begin_drain is
  // idempotent; this also covers the poll-error exit path.)
  service_.begin_drain();
  service_.wait_idle();
  handle_completions();
  for (auto& [id, conn] : conns_) {
    (void)id;
    flush_conn(*conn);
  }
  conns_.clear();
  listen_fd_.reset();
  ::unlink(config_.socket_path.c_str());
  if (config_.install_signal_handlers) {
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }
  final_flush();
  running_.store(false, std::memory_order_release);
  return true;
}

void Daemon::accept_new_connections() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient error): back to poll
    auto conn = std::make_unique<Conn>();
    conn->fd.reset(fd);
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

void Daemon::read_conn(int id, Conn& conn) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.fd.reset();  // hard error: reaped after the poll pass
    return;
  }

  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn.inbuf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    submit_conn_line(id, line);
  }
  conn.inbuf.erase(0, start);

  if (conn.inbuf.size() > config_.max_line_bytes) {
    conn.inbuf.clear();
    conn.outbuf += error_response(
        "", ApiError::kBadRequest,
        "request line exceeds " + std::to_string(config_.max_line_bytes) +
            " bytes");
    conn.outbuf.push_back('\n');
    conn.close_after_flush = true;
    flush_conn(conn);
  }
}

void Daemon::submit_conn_line(int id, const std::string& line) {
  auto it = conns_.find(id);
  if (it != conns_.end()) ++it->second->pending;
  // The responder may run on this thread (rejections) or on a worker;
  // both paths go through the completion queue so the event loop is
  // the only code that ever touches a connection.
  service_.submit_line(line, [this, id](std::string response) {
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.emplace_back(id, std::move(response));
    }
    wake();
  });
}

void Daemon::handle_completions() {
  std::vector<std::pair<int, std::string>> ready;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (auto& [id, line] : ready) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // client left; drop the response
    --it->second->pending;
    it->second->outbuf += line;
    it->second->outbuf.push_back('\n');
  }
  for (auto& [id, line] : ready) {
    auto it = conns_.find(id);
    if (it != conns_.end()) flush_conn(*it->second);
  }
}

void Daemon::flush_conn(Conn& conn) {
  while (!conn.outbuf.empty() && conn.fd.valid()) {
    const ssize_t n = ::send(conn.fd.get(), conn.outbuf.data(),
                             conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.fd.reset();  // peer gone; undeliverable
    conn.outbuf.clear();
    return;
  }
}

void Daemon::final_flush() {
  if (!config_.metrics_out.empty()) {
    const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
    util::Json metrics = util::Json::object();
    for (const auto& e : snap.entries) {
      if (e.kind == "histogram") {
        util::Json h = util::Json::object();
        h.set("count", static_cast<double>(e.hist.count));
        h.set("mean", e.hist.mean());
        metrics.set(e.name, std::move(h));
      } else {
        metrics.set(e.name, e.value);
      }
    }
    util::Json doc = util::Json::object();
    doc.set("schema", "voprof-metrics-1");
    doc.set("metrics", std::move(metrics));
    std::ofstream out(config_.metrics_out);
    if (out.good()) {
      out << doc.dump(2) << '\n';
    } else {
      std::cerr << "voprofd: cannot write metrics to "
                << config_.metrics_out << '\n';
    }
  }
  auto& collector = obs::TraceCollector::global();
  if (collector.enabled()) {
    const std::string path = collector.path();
    if (collector.write_file()) {
      std::cerr << "voprofd: wrote trace to " << path << '\n';
    }
  }
}

util::Result<DaemonConfig> daemon_config_from_args(
    const util::CliArgs& args) {
  DaemonConfig config;
  if (!args.has("socket")) {
    return util::Error{util::Errc::kValidation,
                       "--socket PATH is required", "serve"};
  }
  config.socket_path = args.get("socket");
  config.metrics_out = args.get_or("metrics-out", "");
  config.service.jobs = args.get_int("jobs", 0);
  const int capacity = args.get_int("queue-capacity", 64);
  if (capacity < 1) {
    return util::Error{util::Errc::kValidation,
                       "--queue-capacity must be >= 1", "serve"};
  }
  config.service.queue_capacity = static_cast<std::size_t>(capacity);
  config.service.default_deadline_ms =
      args.get_int("default-deadline-ms", 30000);
  config.service.max_deadline_ms = args.get_int("max-deadline-ms", 600000);
  if (config.service.default_deadline_ms < 1 ||
      config.service.max_deadline_ms < config.service.default_deadline_ms) {
    return util::Error{
        util::Errc::kValidation,
        "need 1 <= --default-deadline-ms <= --max-deadline-ms", "serve"};
  }
  config.service.train_duration_s = args.get_double("train-duration", 120.0);
  if (config.service.train_duration_s <= 0) {
    return util::Error{util::Errc::kValidation,
                       "--train-duration must be > 0", "serve"};
  }
  config.service.default_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.service.inner_jobs = args.get_int("inner-jobs", 1);
  config.service.enable_test_ops = args.get_bool("enable-test-ops");
  return config;
}

int daemon_main(const DaemonConfig& config) {
  Daemon daemon(config);
  std::cerr << "voprofd: listening on " << config.socket_path << " ("
            << daemon.service().config().queue_capacity
            << " queue slots)\n";
  util::Result<bool> outcome = daemon.run();
  if (!outcome.ok()) {
    std::cerr << "voprofd: " << outcome.error().to_string() << '\n';
    return 1;
  }
  const Service::Stats stats = daemon.service().stats();
  std::cerr << "voprofd: drained cleanly (" << stats.completed
            << " completed, " << stats.timed_out << " timed out, "
            << stats.rejected_overloaded << " rejected overloaded)\n";
  return 0;
}

}  // namespace voprof::serve
