#include "voprof/apps/fileserver.hpp"

#include <algorithm>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::apps {

// --------------------------------------------------------- server tier
FileServerTier::FileServerTier(FileServerCosts costs, sim::NetTarget client,
                               std::uint64_t seed)
    : costs_(costs), client_(std::move(client)), rng_(seed) {
  VOPROF_REQUIRE(costs_.server_cpu_ms_per_req > 0.0);
  VOPROF_REQUIRE(costs_.cache_miss_rate >= 0.0 &&
                 costs_.cache_miss_rate <= 1.0);
  VOPROF_REQUIRE(costs_.file_blocks >= 0.0);
}

sim::ProcessDemand FileServerTier::demand(util::SimMicros /*now*/,
                                          double dt) {
  sim::ProcessDemand d;
  const double max_rate = 1000.0 / costs_.server_cpu_ms_per_req;
  wanted_rate_ = std::min(queue_ / dt, max_rate);
  d.cpu_pct = 0.3 + wanted_rate_ * costs_.server_cpu_ms_per_req / 10.0;
  d.mem_mib = 120.0;  // page cache + daemon
  // Disk reads for the cache-missing share of the requests.
  d.io_blocks =
      wanted_rate_ * costs_.cache_miss_rate * costs_.file_blocks * dt;
  const double responses = wanted_rate_ * dt;
  if (responses > 0.0) {
    d.flows.push_back(sim::NetFlow{responses * costs_.response_kbits,
                                   client_, kTagFileData});
  }
  return d;
}

void FileServerTier::granted(double cpu_frac, util::SimMicros /*now*/,
                             double dt) {
  const double processed = wanted_rate_ * dt * cpu_frac;
  queue_ = std::max(0.0, queue_ - processed);
  served_ += processed;
}

void FileServerTier::on_receive(double kbits, int tag,
                                util::SimMicros /*now*/) {
  if (tag == kTagFileRequest) {
    queue_ += kbits / costs_.request_kbits;
  }
}

// -------------------------------------------------------------- client
FileClient::FileClient(FileServerCosts costs, sim::NetTarget server,
                       int clients, std::uint64_t seed)
    : costs_(costs), server_(std::move(server)), rng_(seed),
      clients_(clients), thinking_(static_cast<double>(clients)) {
  VOPROF_REQUIRE(clients >= 0);
  VOPROF_REQUIRE(costs_.think_time_s > 0.0);
}

sim::ProcessDemand FileClient::demand(util::SimMicros /*now*/, double dt) {
  sim::ProcessDemand d;
  send_rate_ = std::max(
      0.0, thinking_ / costs_.think_time_s * (1.0 + 0.05 * rng_.gaussian()));
  d.cpu_pct = 0.2 + send_rate_ * 0.02;
  d.mem_mib = 30.0;
  const double sent = send_rate_ * dt;
  if (sent > 0.0) {
    d.flows.push_back(sim::NetFlow{sent * costs_.request_kbits, server_,
                                   kTagFileRequest});
  }
  return d;
}

void FileClient::granted(double cpu_frac, util::SimMicros /*now*/,
                         double dt) {
  const double sent = send_rate_ * dt * cpu_frac;
  thinking_ = std::max(0.0, thinking_ - sent);
}

void FileClient::on_receive(double kbits, int tag, util::SimMicros /*now*/) {
  if (tag != kTagFileData) return;
  const double n = kbits / costs_.response_kbits;
  thinking_ += n;
  completed_ += n;
}

}  // namespace voprof::apps
