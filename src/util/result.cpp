#include "voprof/util/result.hpp"

namespace voprof::util {

const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::kParse:
      return "parse";
    case Errc::kValidation:
      return "validation";
    case Errc::kIo:
      return "io";
    case Errc::kUnsupported:
      return "unsupported";
    case Errc::kInternal:
      return "internal";
  }
  return "internal";
}

std::string Error::to_string() const {
  std::string out = std::string(errc_name(code)) + " error";
  if (!message.empty()) out += ": " + message;
  if (!context.empty()) out += " (at " + context + ")";
  return out;
}

}  // namespace voprof::util
