#include "voprof/util/cli.hpp"

#include <algorithm>

#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"

namespace voprof::util {

CliArgs CliArgs::parse(int argc, const char* const* argv,
                       const std::vector<std::string>& bool_flags) {
  CliArgs out;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    out.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string token = argv[i];
    VOPROF_REQUIRE_MSG(token.rfind("--", 0) == 0,
                       "expected a --flag, got: " + token);
    const std::string name = token.substr(2);
    VOPROF_REQUIRE_MSG(!name.empty(), "empty flag name");
    if (std::find(bool_flags.begin(), bool_flags.end(), name) !=
        bool_flags.end()) {
      out.switches_[name] = true;
      continue;
    }
    VOPROF_REQUIRE_MSG(i + 1 < argc, "flag --" + name + " needs a value");
    out.values_[name] = argv[++i];
  }
  return out;
}

bool CliArgs::has(const std::string& name) const noexcept {
  return values_.count(name) > 0 || switches_.count(name) > 0;
}

const std::string& CliArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  VOPROF_REQUIRE_MSG(it != values_.end(), "missing required flag --" + name);
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double v = 0.0;
  if (!parse_double(it->second, v)) {
    throw ContractViolation("flag --" + name + " is not numeric: '" +
                            it->second + "'");
  }
  return v;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const double v = get_double(name, static_cast<double>(fallback));
  const int i = static_cast<int>(v);
  VOPROF_REQUIRE_MSG(static_cast<double>(i) == v,
                     "flag --" + name + " must be an integer");
  return i;
}

bool CliArgs::get_bool(const std::string& name) const noexcept {
  const auto it = switches_.find(name);
  return it != switches_.end() && it->second;
}

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) out.push_back(k);
  for (const auto& [k, v] : switches_) out.push_back(k);
  return out;
}

}  // namespace voprof::util
