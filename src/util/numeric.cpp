#include "voprof/util/numeric.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace voprof::util {

std::string format_double(double v) {
  // Shortest form that round-trips: to_chars without a precision
  // argument guarantees from_chars gives back the identical value.
  char buf[64];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool parse_double(std::string_view text, double& out) noexcept {
  // from_chars is whitespace- and sign-strict; accept the surrounding
  // blanks and the leading '+' that std::stod used to tolerate.
  std::size_t b = 0;
  while (b < text.size() && (text[b] == ' ' || text[b] == '\t')) ++b;
  std::size_t e = text.size();
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t')) --e;
  text = text.substr(b, e - b);
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty()) return false;
  double value = 0.0;
  const std::from_chars_result res =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size()) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace voprof::util
