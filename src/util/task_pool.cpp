#include "voprof/util/task_pool.hpp"

#include <algorithm>

namespace voprof::util {

std::size_t TaskPool::default_jobs() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ <= 1) return;  // serial path: submit() runs tasks inline
  workers_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [this]() { return stopping_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) return;  // stopping, queue drained
      job = std::move(queue_[queue_head_]);
      ++queue_head_;
      // Reclaim the consumed prefix once it dominates the buffer.
      if (queue_head_ > 64 && queue_head_ * 2 > queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() +
                         static_cast<std::ptrdiff_t>(queue_head_));
        queue_head_ = 0;
      }
    }
    job();  // packaged_task captures any exception into its future
  }
}

}  // namespace voprof::util
