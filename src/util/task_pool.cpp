#include "voprof/util/task_pool.hpp"

#include <algorithm>

#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"

namespace voprof::util {

namespace {

struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& inline_tasks;
  obs::Counter& busy_us;
  obs::Histogram& queue_wait_ms;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().counter("taskpool.tasks"),
        obs::Registry::global().counter("taskpool.tasks_inline"),
        obs::Registry::global().counter("taskpool.busy_us"),
        obs::Registry::global().histogram(
            "taskpool.queue_wait_ms",
            {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0})};
    return m;
  }
};

}  // namespace

std::size_t TaskPool::default_jobs() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(std::size_t jobs, Threading threading)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ <= 1 && threading == Threading::kInlineWhenSerial) {
    return;  // serial path: submit() runs tasks inline
  }
  workers_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

long long TaskPool::note_task_begin() {
  if constexpr (!obs::kObsCompiled) {
    return 0;
  }
  return obs::wall_clock_us();
}

void TaskPool::note_task_end(long long begin_us, bool inline_task) {
  if constexpr (!obs::kObsCompiled) {
    (void)begin_us;
    (void)inline_task;
    return;
  }
  const long long dur_us = obs::wall_clock_us() - begin_us;
  PoolMetrics::get().tasks.add();
  if (inline_task) {
    PoolMetrics::get().inline_tasks.add();
  }
  PoolMetrics::get().busy_us.add(
      static_cast<std::uint64_t>(std::max(0LL, dur_us)));
  auto& collector = obs::TraceCollector::global();
  if (collector.enabled()) {
    const std::int64_t end_rel = collector.wall_now_us();
    collector.complete_wall("taskpool", inline_task ? "task_inline" : "task",
                            end_rel - dur_us, dur_us);
  }
}

void TaskPool::enqueue(std::function<void()> job) {
  Job entry{std::move(job), obs::wall_clock_us()};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(entry));
  }
  cv_.notify_one();
}

void TaskPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [this]() { return stopping_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) return;  // stopping, queue drained
      job = std::move(queue_[queue_head_]);
      ++queue_head_;
      // Reclaim the consumed prefix once it dominates the buffer.
      if (queue_head_ > 64 && queue_head_ * 2 > queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() +
                         static_cast<std::ptrdiff_t>(queue_head_));
        queue_head_ = 0;
      }
    }
    const long long t0 = note_task_begin();
    if constexpr (obs::kObsCompiled) {
      PoolMetrics::get().queue_wait_ms.observe(
          static_cast<double>(t0 - job.enqueued_us) / 1000.0);
    }
    job.fn();  // packaged_task captures any exception into its future
    note_task_end(t0, /*inline_task=*/false);
  }
}

}  // namespace voprof::util
