#include "voprof/util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    VOPROF_REQUIRE_MSG(r.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  VOPROF_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  VOPROF_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  VOPROF_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  VOPROF_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  VOPROF_REQUIRE_MSG(cols_ == rhs.rows_, "matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  VOPROF_REQUIRE(same_shape(rhs));
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  VOPROF_REQUIRE(same_shape(rhs));
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

std::vector<double> Matrix::mul(std::span<const double> v) const {
  VOPROF_REQUIRE_MSG(v.size() == cols_, "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* rowp = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += rowp[c] * v[c];
    out[r] = s;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  VOPROF_REQUIRE(same_shape(other));
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  VOPROF_REQUIRE_MSG(a.rows() == a.cols(), "solve_linear needs a square matrix");
  VOPROF_REQUIRE(b.size() == a.rows());
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    VOPROF_REQUIRE_MSG(best > 1e-12, "singular matrix in solve_linear");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  VOPROF_REQUIRE_MSG(m >= n, "least squares needs rows >= cols");
  VOPROF_REQUIRE(b.size() == m);

  // Householder QR on a working copy; b transformed in place.
  Matrix r = a;
  std::vector<double> y(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    VOPROF_REQUIRE_MSG(norm > 1e-12, "rank-deficient design matrix");
    if (r(k, k) > 0) norm = -norm;

    std::vector<double> v(m - k, 0.0);
    for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
    v[0] -= norm;
    double vnorm2 = 0.0;
    for (double q : v) vnorm2 += q * q;
    if (vnorm2 < 1e-24) continue;  // column already triangular

    // Apply H = I - 2 v v^T / (v^T v) to R[k:, k:] and y[k:].
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, j);
      const double f = 2.0 * s / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += v[i - k] * y[i];
    const double f = 2.0 * s / vnorm2;
    for (std::size_t i = k; i < m; ++i) y[i] -= f * v[i - k];
  }

  // Back-substitute R x = y (top n rows).
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= r(i, c) * x[c];
    VOPROF_REQUIRE_MSG(std::abs(r(i, i)) > 1e-12,
                       "rank-deficient design matrix");
    x[i] = s / r(i, i);
  }
  return x;
}

double dot(std::span<const double> a, std::span<const double> b) {
  VOPROF_REQUIRE(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double q : v) s += q * q;
  return std::sqrt(s);
}

}  // namespace voprof::util
