#include "voprof/util/rng.hpp"

#include <cmath>

namespace voprof::util {

double Rng::sqrt_impl(double x) noexcept { return std::sqrt(x); }
double Rng::log_impl(double x) noexcept { return std::log(x); }

}  // namespace voprof::util
