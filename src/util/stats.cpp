#include "voprof/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(sample_variance());
}

double percentile(std::span<const double> sample, double q) {
  VOPROF_REQUIRE_MSG(!sample.empty(), "percentile of empty sample");
  VOPROF_REQUIRE(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double v : sample) s += v;
  return s / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) noexcept {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double s = 0.0;
  for (double v : sample) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(sample.size() - 1));
}

double median(std::span<const double> sample) {
  return percentile(sample, 50.0);
}

Cdf::Cdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_below(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::value_at(double p) const {
  VOPROF_REQUIRE_MSG(!sorted_.empty(), "value_at on empty CDF");
  VOPROF_REQUIRE(p > 0.0 && p <= 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

std::vector<std::pair<double, double>> Cdf::grid(std::size_t points) const {
  VOPROF_REQUIRE(points >= 2);
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty()) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_below(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  VOPROF_REQUIRE(hi > lo);
  VOPROF_REQUIRE(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  const double rel = (x - lo_) / width_;
  // NaN fails the first comparison and lands in underflow; +inf in
  // overflow. Both bounds are checked before the cast (UB otherwise).
  if (!(rel >= 0.0)) {
    ++underflow_;
  } else if (!(rel < static_cast<double>(counts_.size()))) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(rel)];
  }
}

std::size_t Histogram::bin_count(std::size_t i) const {
  VOPROF_REQUIRE(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  VOPROF_REQUIRE(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

}  // namespace voprof::util
