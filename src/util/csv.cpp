#include "voprof/util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"

namespace voprof::util {

CsvDocument::CsvDocument(std::vector<std::string> header)
    : header_(std::move(header)) {
  VOPROF_REQUIRE_MSG(!header_.empty(), "CSV needs at least one column");
}

std::size_t CsvDocument::column(const std::string& name) const {
  const auto it = std::find(header_.begin(), header_.end(), name);
  VOPROF_REQUIRE_MSG(it != header_.end(), "unknown CSV column: " + name);
  return static_cast<std::size_t>(it - header_.begin());
}

bool CsvDocument::has_column(const std::string& name) const noexcept {
  return std::find(header_.begin(), header_.end(), name) != header_.end();
}

void CsvDocument::add_row(std::vector<double> values) {
  VOPROF_REQUIRE_MSG(values.size() == header_.size(),
                     "CSV row width mismatch");
  rows_.push_back(std::move(values));
}

double CsvDocument::at(std::size_t row, std::size_t col) const {
  VOPROF_REQUIRE(row < rows_.size());
  VOPROF_REQUIRE(col < header_.size());
  return rows_[row][col];
}

double CsvDocument::at(std::size_t row, const std::string& col) const {
  return at(row, column(col));
}

std::vector<double> CsvDocument::column_values(const std::string& name) const {
  const std::size_t c = column(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[c]);
  return out;
}

void CsvDocument::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << header_[i];
    if (i + 1 < header_.size()) os << ',';
  }
  os << '\n';
  // format_double: shortest round-trip text, independent of the
  // stream's precision and locale — save/load is bit-exact.
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << format_double(r[i]);
      if (i + 1 < r.size()) os << ',';
    }
    os << '\n';
  }
}

std::string CsvDocument::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void CsvDocument::save(const std::string& path) const {
  std::ofstream f(path);
  VOPROF_REQUIRE_MSG(f.good(), "cannot open CSV for writing: " + path);
  write(f);
}

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  cells.push_back(cur);
  return cells;
}

}  // namespace

Result<CsvDocument> CsvDocument::parse_result(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    return Error{Errc::kParse, "CSV input is empty", "row 1"};
  }
  CsvDocument doc;
  doc.header_ = split_line(line);
  if (doc.header_.empty() || (doc.header_.size() == 1 &&
                              doc.header_.front().empty())) {
    return Error{Errc::kParse, "CSV needs at least one column", "row 1"};
  }
  std::size_t row_no = 1;
  while (std::getline(is, line)) {
    ++row_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_line(line);
    const std::string ctx = "row " + std::to_string(row_no);
    if (cells.size() != doc.header_.size()) {
      return Error{Errc::kParse,
                   "row width mismatch: expected " +
                       std::to_string(doc.header_.size()) + " cells, got " +
                       std::to_string(cells.size()),
                   ctx};
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) {
      double v = 0.0;
      if (!parse_double(cell, v)) {
        return Error{Errc::kParse, "non-numeric CSV cell: '" + cell + "'",
                     ctx};
      }
      row.push_back(v);
    }
    doc.rows_.push_back(std::move(row));
  }
  return doc;
}

Result<CsvDocument> CsvDocument::parse_string_result(const std::string& text) {
  std::istringstream is(text);
  return parse_result(is);
}

Result<CsvDocument> CsvDocument::load_result(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    return Error{Errc::kIo, "cannot open CSV for reading", path};
  }
  Result<CsvDocument> parsed = parse_result(f);
  if (!parsed.ok()) {
    Error err = parsed.error();
    err.context = path + ":" + err.context;
    return err;
  }
  return parsed;
}

CsvDocument CsvDocument::parse(std::istream& is) {
  return parse_result(is).value_or_throw();
}

CsvDocument CsvDocument::parse_string(const std::string& text) {
  return parse_string_result(text).value_or_throw();
}

CsvDocument CsvDocument::load(const std::string& path) {
  return load_result(path).value_or_throw();
}

}  // namespace voprof::util
