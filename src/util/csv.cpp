#include "voprof/util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"

namespace voprof::util {

CsvDocument::CsvDocument(std::vector<std::string> header)
    : header_(std::move(header)) {
  VOPROF_REQUIRE_MSG(!header_.empty(), "CSV needs at least one column");
}

std::size_t CsvDocument::column(const std::string& name) const {
  const auto it = std::find(header_.begin(), header_.end(), name);
  VOPROF_REQUIRE_MSG(it != header_.end(), "unknown CSV column: " + name);
  return static_cast<std::size_t>(it - header_.begin());
}

bool CsvDocument::has_column(const std::string& name) const noexcept {
  return std::find(header_.begin(), header_.end(), name) != header_.end();
}

void CsvDocument::add_row(std::vector<double> values) {
  VOPROF_REQUIRE_MSG(values.size() == header_.size(),
                     "CSV row width mismatch");
  rows_.push_back(std::move(values));
}

double CsvDocument::at(std::size_t row, std::size_t col) const {
  VOPROF_REQUIRE(row < rows_.size());
  VOPROF_REQUIRE(col < header_.size());
  return rows_[row][col];
}

double CsvDocument::at(std::size_t row, const std::string& col) const {
  return at(row, column(col));
}

std::vector<double> CsvDocument::column_values(const std::string& name) const {
  const std::size_t c = column(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[c]);
  return out;
}

void CsvDocument::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << header_[i];
    if (i + 1 < header_.size()) os << ',';
  }
  os << '\n';
  // format_double: shortest round-trip text, independent of the
  // stream's precision and locale — save/load is bit-exact.
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << format_double(r[i]);
      if (i + 1 < r.size()) os << ',';
    }
    os << '\n';
  }
}

std::string CsvDocument::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void CsvDocument::save(const std::string& path) const {
  std::ofstream f(path);
  VOPROF_REQUIRE_MSG(f.good(), "cannot open CSV for writing: " + path);
  write(f);
}

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  cells.push_back(cur);
  return cells;
}

}  // namespace

CsvDocument CsvDocument::parse(std::istream& is) {
  std::string line;
  VOPROF_REQUIRE_MSG(static_cast<bool>(std::getline(is, line)),
                     "CSV input is empty");
  CsvDocument doc(split_line(line));
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_line(line);
    VOPROF_REQUIRE_MSG(cells.size() == doc.header_.size(),
                       "CSV row width mismatch while parsing");
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) {
      double v = 0.0;
      if (!parse_double(cell, v)) {
        throw ContractViolation("non-numeric CSV cell: '" + cell + "'");
      }
      row.push_back(v);
    }
    doc.rows_.push_back(std::move(row));
  }
  return doc;
}

CsvDocument CsvDocument::parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

CsvDocument CsvDocument::load(const std::string& path) {
  std::ifstream f(path);
  VOPROF_REQUIRE_MSG(f.good(), "cannot open CSV for reading: " + path);
  return parse(f);
}

}  // namespace voprof::util
