#include "voprof/util/time_series.hpp"

#include "voprof/util/assert.hpp"

namespace voprof::util {

void TimeSeries::add(SimMicros time, double value) {
  VOPROF_REQUIRE_MSG(samples_.empty() || time >= samples_.back().time,
                     "timestamps must be non-decreasing");
  samples_.push_back({time, value});
}

const TimedSample& TimeSeries::operator[](std::size_t i) const {
  VOPROF_REQUIRE(i < samples_.size());
  return samples_[i];
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

double TimeSeries::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& q : samples_) s += q.value;
  return s / static_cast<double>(samples_.size());
}

double TimeSeries::mean_between(SimMicros from, SimMicros to) const noexcept {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& q : samples_) {
    if (q.time >= from && q.time < to) {
      s += q.value;
      ++n;
    }
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

RunningStats TimeSeries::stats() const noexcept {
  RunningStats st;
  for (const auto& q : samples_) st.add(q.value);
  return st;
}

TimeSeries TimeSeries::slice(SimMicros from, SimMicros to) const {
  TimeSeries out;
  for (const auto& q : samples_) {
    if (q.time >= from && q.time < to) out.add(q.time, q.value);
  }
  return out;
}

double TimeSeries::last_or(double fallback) const noexcept {
  return samples_.empty() ? fallback : samples_.back().value;
}

}  // namespace voprof::util
