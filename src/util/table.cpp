#include "voprof/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "voprof/util/assert.hpp"

namespace voprof::util {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  VOPROF_REQUIRE_MSG(header_.empty() || row.size() == header_.size(),
                     "row width must match header width");
  rows_.push_back(std::move(row));
}

void AsciiTable::add_rule() { rows_.emplace_back(); }

std::string AsciiTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void AsciiTable::print(std::ostream& os) const {
  // Compute column widths over header + all rows.
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.empty()) return;
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  if (total >= 2) total -= 2;

  auto print_rule = [&os, total]() {
    for (std::size_t i = 0; i < total; ++i) os << '-';
    os << '\n';
  };
  auto print_row = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        for (std::size_t p = row[i].size(); p < widths[i] + 2; ++p) os << ' ';
      }
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& r : rows_) {
    if (r.empty()) {
      print_rule();
    } else {
      print_row(r);
    }
  }
}

std::string fmt(double v, int decimals) {
  VOPROF_REQUIRE(decimals >= 0);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  // Avoid "-0.00".
  if (std::abs(v) < 0.5 * std::pow(10.0, -decimals)) v = 0.0;
  os << v;
  return os.str();
}

std::string fmt_vs(double measured, double paper, int decimals) {
  return fmt(measured, decimals) + " (" + fmt(paper, decimals) + ")";
}

}  // namespace voprof::util
