#include "voprof/util/ini.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"

namespace voprof::util {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool IniSection::has(const std::string& key) const noexcept {
  return get(key).has_value();
}

std::optional<std::string> IniSection::get(const std::string& key) const {
  std::optional<std::string> out;
  for (const auto& [k, v] : entries) {
    if (k == key) out = v;
  }
  return out;
}

std::string IniSection::get_or(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double IniSection::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  double out = 0.0;
  if (!parse_double(*v, out)) {
    throw ContractViolation("[" + kind + " " + name + "] " + key +
                            " is not numeric: '" + *v + "'");
  }
  return out;
}

int IniSection::get_int(const std::string& key, int fallback) const {
  const double v = get_double(key, static_cast<double>(fallback));
  const int i = static_cast<int>(v);
  VOPROF_REQUIRE_MSG(static_cast<double>(i) == v,
                     "[" + kind + "] " + key + " must be an integer");
  return i;
}

Result<IniDocument> IniDocument::parse_result(const std::string& text) {
  const auto fail = [](int line_no, const std::string& msg) {
    return Error{Errc::kParse, msg, "line " + std::to_string(line_no)};
  };
  IniDocument doc;
  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    std::string line = raw;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return fail(line_no, "unterminated section header");
      }
      const std::string header = trim(line.substr(1, line.size() - 2));
      if (header.empty()) {
        return fail(line_no, "empty section header");
      }
      IniSection section;
      const auto space = header.find_first_of(" \t");
      if (space == std::string::npos) {
        section.kind = header;
      } else {
        section.kind = header.substr(0, space);
        section.name = trim(header.substr(space + 1));
      }
      doc.sections_.push_back(std::move(section));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(line_no, "expected 'key = value', got: '" + raw + "'");
    }
    if (doc.sections_.empty()) {
      return fail(line_no, "key before any section");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return fail(line_no, "empty key");
    }
    doc.sections_.back().entries.emplace_back(key, value);
  }
  return doc;
}

Result<IniDocument> IniDocument::load_result(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    return Error{Errc::kIo, "cannot open config", path};
  }
  std::ostringstream os;
  os << f.rdbuf();
  Result<IniDocument> parsed = parse_result(os.str());
  if (!parsed.ok()) {
    Error err = parsed.error();
    err.context = path + ":" + err.context;
    return err;
  }
  return parsed;
}

IniDocument IniDocument::parse(const std::string& text) {
  return parse_result(text).value_or_throw();
}

IniDocument IniDocument::load(const std::string& path) {
  return load_result(path).value_or_throw();
}

std::vector<const IniSection*> IniDocument::of_kind(
    const std::string& kind) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections_) {
    if (s.kind == kind) out.push_back(&s);
  }
  return out;
}

const IniSection& IniDocument::unique(const std::string& kind) const {
  const auto all = of_kind(kind);
  VOPROF_REQUIRE_MSG(all.size() == 1, "expected exactly one [" + kind +
                                          "] section, found " +
                                          std::to_string(all.size()));
  return *all.front();
}

bool IniDocument::has_kind(const std::string& kind) const noexcept {
  return !of_kind(kind).empty();
}

}  // namespace voprof::util
