#include "voprof/util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "voprof/util/numeric.hpp"

namespace voprof::util {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
  throw JsonError("JSON parse error at byte " + std::to_string(offset) + ": " +
                  what);
}

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull:
      return "null";
    case Json::Type::kBool:
      return "bool";
    case Json::Type::kNumber:
      return "number";
    case Json::Type::kString:
      return "string";
    case Json::Type::kArray:
      return "array";
    case Json::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw JsonError(std::string("JSON type mismatch: wanted ") + wanted +
                  ", value is " + type_name(got));
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_space();
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal", pos_);
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal", pos_);
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal", pos_);
      default:
        return number();
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double out = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || end != last || first == last) {
      fail("malformed number", start);
    }
    return Json(out);
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string", pos_ - 1);
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
          unsigned cp = 0;
          const char* first = text_.data() + pos_;
          const auto [end, ec] = std::from_chars(first, first + 4, cp, 16);
          if (ec != std::errc{} || end != first + 4) {
            fail("malformed \\u escape", pos_);
          }
          pos_ += 4;
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; the harness never emits
          // them, this is read-side tolerance only).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape", pos_ - 1);
      }
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(value());
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_space();
      std::string key = string();
      skip_space();
      expect(':');
      out.set(std::move(key), value());
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw JsonError("JSON object has no key \"" + std::string(key) + '"');
  }
  return *v;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&out, indent](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      // JSON has no literal for non-finite numbers; emit null so the
      // document stays parseable everywhere.
      out += std::isfinite(num_) ? format_double(num_) : "null";
      return;
    case Type::kString:
      write_escaped(out, str_);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        write_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace voprof::util
