#include "voprof/monitor/script.hpp"

#include <memory>
#include <utility>

#include "voprof/obs/metrics.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"

namespace voprof::mon {

// ------------------------------------------------------------- report
bool MeasurementReport::has(const std::string& key) const noexcept {
  return entities_.find(key) != entities_.end();
}

const SeriesSet& MeasurementReport::series(const std::string& key) const {
  const auto it = entities_.find(key);
  VOPROF_REQUIRE_MSG(it != entities_.end(), "no such entity in report: " + key);
  return it->second;
}

SeriesSet& MeasurementReport::series_mutable(const std::string& key) {
  return entities_[key];
}

UtilSample MeasurementReport::mean(const std::string& key) const {
  return series(key).mean();
}

UtilSample MeasurementReport::percentile(const std::string& key,
                                         double q) const {
  const SeriesSet& s = series(key);
  VOPROF_REQUIRE_MSG(!s.cpu.empty(), "no samples recorded for " + key);
  UtilSample out;
  out.cpu_pct = util::percentile(s.cpu.values(), q);
  out.mem_mib = util::percentile(s.mem.values(), q);
  out.io_blocks_per_s = util::percentile(s.io.values(), q);
  out.bw_kbps = util::percentile(s.bw.values(), q);
  return out;
}

std::vector<std::string> MeasurementReport::keys() const {
  std::vector<std::string> out;
  out.reserve(entities_.size());
  for (const auto& [k, v] : entities_) out.push_back(k);
  return out;
}

std::size_t MeasurementReport::sample_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [k, v] : entities_) n = std::max(n, v.cpu.size());
  return n;
}

util::CsvDocument report_to_csv(const MeasurementReport& report) {
  const std::vector<std::string> keys = report.keys();
  VOPROF_REQUIRE_MSG(!keys.empty(), "cannot export an empty report");
  std::vector<std::string> header = {"t_s"};
  for (const auto& k : keys) {
    for (const char* metric : {"cpu", "mem", "io", "bw"}) {
      header.push_back(k + "_" + metric);
    }
  }
  util::CsvDocument csv(header);
  const std::size_t n = report.sample_count();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(header.size());
    bool first = true;
    for (const auto& k : keys) {
      const SeriesSet& s = report.series(k);
      VOPROF_REQUIRE_MSG(s.cpu.size() == n,
                         "ragged report series for entity: " + k);
      if (first) {
        row.push_back(util::to_seconds(s.cpu[i].time));
        first = false;
      }
      row.push_back(s.cpu[i].value);
      row.push_back(s.mem[i].value);
      row.push_back(s.io[i].value);
      row.push_back(s.bw[i].value);
    }
    csv.add_row(std::move(row));
  }
  return csv;
}

// -------------------------------------------------------- guest agent
/// The in-VM measurement agent (top + vmstat instance the paper's
/// script starts inside every guest). Pure CPU self-overhead.
class MonitorScript::GuestAgent final : public sim::GuestProcess {
 public:
  GuestAgent(sim::DomU& vm, double cpu_pct)
      : vm_(vm), vm_alive_(vm.liveness()), cpu_pct_(cpu_pct) {
    vm_.attach_shared(this);
  }
  // The VM may have been removed mid-measurement; only detach while
  // its liveness token is still valid (it survives live migration).
  ~GuestAgent() override {
    if (!vm_alive_.expired()) vm_.detach_shared(this);
  }

  GuestAgent(const GuestAgent&) = delete;
  GuestAgent& operator=(const GuestAgent&) = delete;

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros /*now*/,
                                          double /*dt*/) override {
    sim::ProcessDemand d;
    d.cpu_pct = cpu_pct_;
    return d;
  }
  [[nodiscard]] std::string label() const override { return "monitor-agent"; }

  [[nodiscard]] double cpu_pct() const noexcept { return cpu_pct_; }

 private:
  sim::DomU& vm_;
  std::weak_ptr<const void> vm_alive_;
  double cpu_pct_;
};

// ------------------------------------------------------------- script
MonitorScript::MonitorScript(sim::Engine& engine,
                             sim::PhysicalMachine& machine,
                             MonitorConfig config)
    : engine_(engine), machine_(machine), config_(config) {
  VOPROF_REQUIRE(config_.interval > 0);
  tools_.push_back(std::make_unique<XenTop>());
  tools_.push_back(std::make_unique<TopTool>());
  tools_.push_back(std::make_unique<MpStat>());
  tools_.push_back(std::make_unique<IfConfig>());
  tools_.push_back(std::make_unique<VmStat>());
}

MonitorScript::~MonitorScript() { stop(); }

double MonitorScript::dom0_overhead_pct() const noexcept {
  double s = 0.0;
  for (const auto& t : tools_) {
    if (t->info().host == ToolHost::kDom0) s += t->info().self_cpu_pct;
  }
  return s;
}

double MonitorScript::guest_overhead_pct() const noexcept {
  double s = 0.0;
  for (const auto& t : tools_) {
    if (t->info().host == ToolHost::kGuest) s += t->info().self_cpu_pct;
  }
  return s;
}

void MonitorScript::start() {
  VOPROF_REQUIRE_MSG(!started_once_, "MonitorScript::start may run once");
  started_once_ = true;
  running_ = true;

  if (config_.inject_overhead) {
    dom0_overhead_id_ =
        machine_.dom0().add_background_cpu(dom0_overhead_pct());
    const double per_guest = guest_overhead_pct();
    for (sim::DomU* vm : machine_.vms()) {
      agents_.push_back(std::make_unique<GuestAgent>(*vm, per_guest));
    }
  }

  machine_.snapshot_into(engine_.now(), prev_);
  // Native periodic timer: the engine re-arms the same heap entry
  // after each firing, so sampling never copies the callback or
  // allocates per interval. stop() cancels it (lazy deletion), after
  // which the callback can never run again — even if the script is
  // destroyed while the dead entry is still queued.
  timer_id_ = engine_.schedule_every(config_.interval,
                                     [this]() { take_sample(); });
}

void MonitorScript::stop() {
  if (!running_) return;
  running_ = false;
  if (timer_id_ != sim::kInvalidTimer) {
    engine_.cancel(timer_id_);
    timer_id_ = sim::kInvalidTimer;
  }
  if (dom0_overhead_id_ >= 0) {
    machine_.dom0().remove_background_cpu(dom0_overhead_id_);
    dom0_overhead_id_ = -1;
  }
  agents_.clear();  // destructors detach from the VMs
}

const MeasurementReport& MonitorScript::measure(util::SimMicros duration) {
  VOPROF_WALL_SPAN("monitor", "measure");
  start();
  engine_.run_for(duration);
  stop();
  return report_;
}

void MonitorScript::take_sample() {
  static obs::Counter& samples =
      obs::Registry::global().counter("monitor.samples");
  samples.add();
  machine_.snapshot_into(engine_.now(), cur_);
  if (cur_.time <= prev_.time) return;  // same-instant double fire: skip
  // Mid-run VM creation/removal would desynchronize the snapshot pair;
  // resynchronize and sample from the next interval on. Name
  // comparison guards against same-size churn (remove + add within one
  // interval).
  bool desynced = cur_.guests.size() != prev_.guests.size();
  for (std::size_t i = 0; !desynced && i < cur_.guests.size(); ++i) {
    desynced = cur_.guests[i].name != prev_.guests[i].name;
  }
  if (desynced) {
    std::swap(prev_, cur_);
    return;
  }

  const double s = util::to_seconds(cur_.time - prev_.time);
  const util::SimMicros t = cur_.time;
  double vm_mem_total = 0.0;

  // Each entity's four metrics derive from ONE counter-delta pass per
  // domain (the batched equivalent of calling every tool's per-metric
  // read; same arithmetic, one name lookup and one delta per domain
  // instead of one per cell).
  for (std::size_t i = 0; i < cur_.guests.size(); ++i) {
    const UtilSample u = domain_util(prev_.guests[i].counters,
                                     cur_.guests[i].counters, s);
    SeriesSet& set = report_.series_mutable(cur_.guests[i].name);
    // Per Sec. III-A: xentop supplies VM CPU/IO/BW from Dom0; top runs
    // inside the guest for memory.
    set.cpu.add(t, u.cpu_pct);
    set.io.add(t, u.io_blocks_per_s);
    set.bw.add(t, u.bw_kbps);
    set.mem.add(t, u.mem_mib);
    vm_mem_total += u.mem_mib;
  }

  const UtilSample d0 =
      domain_util(prev_.dom0.counters, cur_.dom0.counters, s);
  {
    // xentop supplies Dom0 CPU/IO/BW; top supplies Dom0 memory.
    SeriesSet& set = report_.series_mutable(MeasurementReport::kDom0Key);
    set.cpu.add(t, d0.cpu_pct);
    set.io.add(t, d0.io_blocks_per_s);
    set.bw.add(t, d0.bw_kbps);
    set.mem.add(t, d0.mem_mib);
  }

  const double hyp_cpu =
      domain_util(prev_.hypervisor, cur_.hypervisor, s).cpu_pct;
  {
    // mpstat "in Xen" supplies hypervisor CPU; nothing else is
    // measurable for it (Table I).
    SeriesSet& set = report_.series_mutable(MeasurementReport::kHypKey);
    set.cpu.add(t, hyp_cpu);
    set.mem.add(t, 0.0);
    set.io.add(t, 0.0);
    set.bw.add(t, 0.0);
  }

  {
    // vmstat supplies PM CPU (indirectly: Dom0 + hypervisor + guests,
    // Sec. III-C) and PM I/O; ifconfig supplies PM bandwidth.
    const DeviceUtil dev = device_util(prev_.devices, cur_.devices, s);
    double pm_cpu = d0.cpu_pct + hyp_cpu;
    for (std::size_t i = 0; i < cur_.guests.size(); ++i) {
      pm_cpu += domain_util(prev_.guests[i].counters,
                            cur_.guests[i].counters, s)
                    .cpu_pct;
    }
    SeriesSet& set = report_.series_mutable(MeasurementReport::kPmKey);
    set.cpu.add(t, pm_cpu);
    set.io.add(t, dev.disk_blocks_per_s);
    set.bw.add(t, dev.nic_kbps);
    // No tool measures PM memory (Table I); the paper estimates it as
    // Dom0 + sum of guests.
    set.mem.add(t, cur_.dom0.counters.mem_mib + vm_mem_total);
  }

  // Swap instead of copy: prev_ takes the fresh snapshot and cur_
  // keeps the old buffers to be overwritten next interval.
  std::swap(prev_, cur_);
}

}  // namespace voprof::mon
