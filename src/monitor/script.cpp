#include "voprof/monitor/script.hpp"

#include <memory>
#include <utility>

#include "voprof/util/assert.hpp"

namespace voprof::mon {

// ------------------------------------------------------------- report
bool MeasurementReport::has(const std::string& key) const noexcept {
  return entities_.find(key) != entities_.end();
}

const SeriesSet& MeasurementReport::series(const std::string& key) const {
  const auto it = entities_.find(key);
  VOPROF_REQUIRE_MSG(it != entities_.end(), "no such entity in report: " + key);
  return it->second;
}

SeriesSet& MeasurementReport::series_mutable(const std::string& key) {
  return entities_[key];
}

UtilSample MeasurementReport::mean(const std::string& key) const {
  return series(key).mean();
}

UtilSample MeasurementReport::percentile(const std::string& key,
                                         double q) const {
  const SeriesSet& s = series(key);
  VOPROF_REQUIRE_MSG(!s.cpu.empty(), "no samples recorded for " + key);
  UtilSample out;
  out.cpu_pct = util::percentile(s.cpu.values(), q);
  out.mem_mib = util::percentile(s.mem.values(), q);
  out.io_blocks_per_s = util::percentile(s.io.values(), q);
  out.bw_kbps = util::percentile(s.bw.values(), q);
  return out;
}

std::vector<std::string> MeasurementReport::keys() const {
  std::vector<std::string> out;
  out.reserve(entities_.size());
  for (const auto& [k, v] : entities_) out.push_back(k);
  return out;
}

std::size_t MeasurementReport::sample_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [k, v] : entities_) n = std::max(n, v.cpu.size());
  return n;
}

util::CsvDocument report_to_csv(const MeasurementReport& report) {
  const std::vector<std::string> keys = report.keys();
  VOPROF_REQUIRE_MSG(!keys.empty(), "cannot export an empty report");
  std::vector<std::string> header = {"t_s"};
  for (const auto& k : keys) {
    for (const char* metric : {"cpu", "mem", "io", "bw"}) {
      header.push_back(k + "_" + metric);
    }
  }
  util::CsvDocument csv(header);
  const std::size_t n = report.sample_count();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(header.size());
    bool first = true;
    for (const auto& k : keys) {
      const SeriesSet& s = report.series(k);
      VOPROF_REQUIRE_MSG(s.cpu.size() == n,
                         "ragged report series for entity: " + k);
      if (first) {
        row.push_back(util::to_seconds(s.cpu[i].time));
        first = false;
      }
      row.push_back(s.cpu[i].value);
      row.push_back(s.mem[i].value);
      row.push_back(s.io[i].value);
      row.push_back(s.bw[i].value);
    }
    csv.add_row(std::move(row));
  }
  return csv;
}

// -------------------------------------------------------- guest agent
/// The in-VM measurement agent (top + vmstat instance the paper's
/// script starts inside every guest). Pure CPU self-overhead.
class MonitorScript::GuestAgent final : public sim::GuestProcess {
 public:
  GuestAgent(sim::DomU& vm, double cpu_pct)
      : vm_(vm), vm_alive_(vm.liveness()), cpu_pct_(cpu_pct) {
    vm_.attach_shared(this);
  }
  // The VM may have been removed mid-measurement; only detach while
  // its liveness token is still valid (it survives live migration).
  ~GuestAgent() override {
    if (!vm_alive_.expired()) vm_.detach_shared(this);
  }

  GuestAgent(const GuestAgent&) = delete;
  GuestAgent& operator=(const GuestAgent&) = delete;

  [[nodiscard]] sim::ProcessDemand demand(util::SimMicros /*now*/,
                                          double /*dt*/) override {
    sim::ProcessDemand d;
    d.cpu_pct = cpu_pct_;
    return d;
  }
  [[nodiscard]] std::string label() const override { return "monitor-agent"; }

  [[nodiscard]] double cpu_pct() const noexcept { return cpu_pct_; }

 private:
  sim::DomU& vm_;
  std::weak_ptr<const void> vm_alive_;
  double cpu_pct_;
};

// ------------------------------------------------------------- script
MonitorScript::MonitorScript(sim::Engine& engine,
                             sim::PhysicalMachine& machine,
                             MonitorConfig config)
    : engine_(engine), machine_(machine), config_(config) {
  VOPROF_REQUIRE(config_.interval > 0);
  tools_.push_back(std::make_unique<XenTop>());
  tools_.push_back(std::make_unique<TopTool>());
  tools_.push_back(std::make_unique<MpStat>());
  tools_.push_back(std::make_unique<IfConfig>());
  tools_.push_back(std::make_unique<VmStat>());
}

MonitorScript::~MonitorScript() {
  stop();
  *alive_ = false;
}

double MonitorScript::dom0_overhead_pct() const noexcept {
  double s = 0.0;
  for (const auto& t : tools_) {
    if (t->info().host == ToolHost::kDom0) s += t->info().self_cpu_pct;
  }
  return s;
}

double MonitorScript::guest_overhead_pct() const noexcept {
  double s = 0.0;
  for (const auto& t : tools_) {
    if (t->info().host == ToolHost::kGuest) s += t->info().self_cpu_pct;
  }
  return s;
}

void MonitorScript::start() {
  VOPROF_REQUIRE_MSG(!started_once_, "MonitorScript::start may run once");
  started_once_ = true;
  running_ = true;

  if (config_.inject_overhead) {
    dom0_overhead_id_ =
        machine_.dom0().add_background_cpu(dom0_overhead_pct());
    const double per_guest = guest_overhead_pct();
    for (sim::DomU* vm : machine_.vms()) {
      agents_.push_back(std::make_unique<GuestAgent>(*vm, per_guest));
    }
  }

  prev_ = machine_.snapshot(engine_.now());
  schedule_next();
}

void MonitorScript::schedule_next() {
  // Self-rearming one-shot chain (a schedule_every would keep firing
  // after stop()). The alive flag guards against the script being
  // destroyed while an event is still queued in the engine.
  std::shared_ptr<bool> alive = alive_;
  engine_.schedule_after(config_.interval, [this, alive]() {
    if (!*alive || !running_) return;
    take_sample();
    schedule_next();
  });
}

void MonitorScript::stop() {
  if (!running_) return;
  running_ = false;
  if (dom0_overhead_id_ >= 0) {
    machine_.dom0().remove_background_cpu(dom0_overhead_id_);
    dom0_overhead_id_ = -1;
  }
  agents_.clear();  // destructors detach from the VMs
}

const MeasurementReport& MonitorScript::measure(util::SimMicros duration) {
  start();
  engine_.run_for(duration);
  stop();
  return report_;
}

void MonitorScript::take_sample() {
  const sim::MachineSnapshot cur = machine_.snapshot(engine_.now());
  if (cur.time <= prev_.time) return;  // same-instant double fire: skip
  // Mid-run VM creation/removal would desynchronize the snapshot pair;
  // resynchronize and sample from the next interval on.
  if (cur.guests.size() != prev_.guests.size()) {
    prev_ = cur;
    return;
  }

  const XenTop xentop;
  const TopTool top;
  const MpStat mpstat;
  const IfConfig ifconfig;
  const VmStat vmstat;

  const util::SimMicros t = cur.time;
  double vm_mem_total = 0.0;

  for (const auto& g : cur.guests) {
    SeriesSet& s = report_.series_mutable(g.name);
    // Per Sec. III-A: xentop supplies VM CPU/IO/BW from Dom0; top runs
    // inside the guest for memory.
    s.cpu.add(t, xentop.read_vm(prev_, cur, g.name, Metric::kCpu).value());
    s.io.add(t, xentop.read_vm(prev_, cur, g.name, Metric::kIo).value());
    s.bw.add(t, xentop.read_vm(prev_, cur, g.name, Metric::kBw).value());
    const double mem = top.read_vm(prev_, cur, g.name, Metric::kMem).value();
    s.mem.add(t, mem);
    vm_mem_total += mem;
  }

  {
    SeriesSet& s = report_.series_mutable(MeasurementReport::kDom0Key);
    s.cpu.add(t, xentop.read_dom0(prev_, cur, Metric::kCpu).value());
    s.io.add(t, xentop.read_dom0(prev_, cur, Metric::kIo).value());
    s.bw.add(t, xentop.read_dom0(prev_, cur, Metric::kBw).value());
    s.mem.add(t, top.read_dom0(prev_, cur, Metric::kMem).value());
  }

  {
    SeriesSet& s = report_.series_mutable(MeasurementReport::kHypKey);
    s.cpu.add(t, mpstat.read_pm(prev_, cur, Metric::kCpu).value());
    s.mem.add(t, 0.0);
    s.io.add(t, 0.0);
    s.bw.add(t, 0.0);
  }

  {
    SeriesSet& s = report_.series_mutable(MeasurementReport::kPmKey);
    s.cpu.add(t, vmstat.read_pm(prev_, cur, Metric::kCpu).value());
    s.io.add(t, vmstat.read_pm(prev_, cur, Metric::kIo).value());
    s.bw.add(t, ifconfig.read_pm(prev_, cur, Metric::kBw).value());
    // No tool measures PM memory (Table I); the paper estimates it as
    // Dom0 + sum of guests.
    s.mem.add(t, cur.dom0.counters.mem_mib + vm_mem_total);
  }

  prev_ = cur;
}

}  // namespace voprof::mon
