#include "voprof/monitor/tools.hpp"

#include "voprof/util/assert.hpp"
#include "voprof/util/units.hpp"

namespace voprof::mon {

namespace {

/// Self-overhead CPU costs of the real tools at a 1 s refresh, percent
/// of one core. Small but non-zero: the reason the paper builds one
/// synchronized script instead of stacking ad-hoc tools (Sec. III-A).
constexpr double kXenTopCpu = 0.25;
constexpr double kTopCpu = 0.05;      // per monitored guest
constexpr double kMpStatCpu = 0.08;
constexpr double kIfConfigCpu = 0.05;
constexpr double kVmStatCpu = 0.07;

}  // namespace

double Tool::interval_s(const sim::MachineSnapshot& prev,
                        const sim::MachineSnapshot& cur) {
  const double s = util::to_seconds(cur.time - prev.time);
  VOPROF_REQUIRE_MSG(s > 0.0, "snapshots must be strictly ordered in time");
  return s;
}

std::optional<double> Tool::read_vm(const sim::MachineSnapshot&,
                                    const sim::MachineSnapshot&,
                                    const std::string&, Metric) const {
  return std::nullopt;
}

std::optional<double> Tool::read_dom0(const sim::MachineSnapshot&,
                                      const sim::MachineSnapshot&,
                                      Metric) const {
  return std::nullopt;
}

std::optional<double> Tool::read_pm(const sim::MachineSnapshot&,
                                    const sim::MachineSnapshot&,
                                    Metric) const {
  return std::nullopt;
}

// ----------------------------------------------------------------- XenTop
const ToolInfo& XenTop::info() const noexcept {
  static const ToolInfo kInfo{"xentop", ToolHost::kDom0, kXenTopCpu};
  return kInfo;
}

bool XenTop::can_measure(EntityClass entity, Metric metric) const noexcept {
  // Table I row "xentop": VM cpu/io/bw, Dom0 cpu/io/bw; no memory, no
  // PM/hypervisor columns.
  if (entity == EntityClass::kPmOrHypervisor) return false;
  return metric == Metric::kCpu || metric == Metric::kIo ||
         metric == Metric::kBw;
}

std::optional<double> XenTop::read_vm(const sim::MachineSnapshot& prev,
                                      const sim::MachineSnapshot& cur,
                                      const std::string& vm_name,
                                      Metric metric) const {
  if (!can_measure(EntityClass::kVm, metric)) return std::nullopt;
  const UtilSample u = domain_util(prev.guest(vm_name).counters,
                                   cur.guest(vm_name).counters,
                                   interval_s(prev, cur));
  switch (metric) {
    case Metric::kCpu:
      return u.cpu_pct;
    case Metric::kIo:
      return u.io_blocks_per_s;
    case Metric::kBw:
      return u.bw_kbps;
    default:
      return std::nullopt;
  }
}

std::optional<double> XenTop::read_dom0(const sim::MachineSnapshot& prev,
                                        const sim::MachineSnapshot& cur,
                                        Metric metric) const {
  if (!can_measure(EntityClass::kDom0, metric)) return std::nullopt;
  const UtilSample u = domain_util(prev.dom0.counters, cur.dom0.counters,
                                   interval_s(prev, cur));
  switch (metric) {
    case Metric::kCpu:
      return u.cpu_pct;
    case Metric::kIo:
      return u.io_blocks_per_s;
    case Metric::kBw:
      return u.bw_kbps;
    default:
      return std::nullopt;
  }
}

// ----------------------------------------------------------------- TopTool
const ToolInfo& TopTool::info() const noexcept {
  static const ToolInfo kInfo{"top", ToolHost::kGuest, kTopCpu};
  return kInfo;
}

bool TopTool::can_measure(EntityClass entity, Metric metric) const noexcept {
  // Table I row "top": VM cpu*/mem*, Dom0 cpu/mem.
  if (entity == EntityClass::kPmOrHypervisor) return false;
  return metric == Metric::kCpu || metric == Metric::kMem;
}

std::optional<double> TopTool::read_vm(const sim::MachineSnapshot& prev,
                                       const sim::MachineSnapshot& cur,
                                       const std::string& vm_name,
                                       Metric metric) const {
  if (!can_measure(EntityClass::kVm, metric)) return std::nullopt;
  const UtilSample u = domain_util(prev.guest(vm_name).counters,
                                   cur.guest(vm_name).counters,
                                   interval_s(prev, cur));
  return metric == Metric::kCpu ? u.cpu_pct : u.mem_mib;
}

std::optional<double> TopTool::read_dom0(const sim::MachineSnapshot& prev,
                                         const sim::MachineSnapshot& cur,
                                         Metric metric) const {
  if (!can_measure(EntityClass::kDom0, metric)) return std::nullopt;
  const UtilSample u = domain_util(prev.dom0.counters, cur.dom0.counters,
                                   interval_s(prev, cur));
  return metric == Metric::kCpu ? u.cpu_pct : u.mem_mib;
}

// ------------------------------------------------------------------ MpStat
const ToolInfo& MpStat::info() const noexcept {
  static const ToolInfo kInfo{"mpstat", ToolHost::kDom0, kMpStatCpu};
  return kInfo;
}

bool MpStat::can_measure(EntityClass entity, Metric metric) const noexcept {
  // Table I row "mpstat": VM cpu*, PM/hypervisor cpu.
  if (metric != Metric::kCpu) return false;
  return entity == EntityClass::kVm || entity == EntityClass::kPmOrHypervisor;
}

std::optional<double> MpStat::read_vm(const sim::MachineSnapshot& prev,
                                      const sim::MachineSnapshot& cur,
                                      const std::string& vm_name,
                                      Metric metric) const {
  if (!can_measure(EntityClass::kVm, metric)) return std::nullopt;
  return domain_util(prev.guest(vm_name).counters, cur.guest(vm_name).counters,
                     interval_s(prev, cur))
      .cpu_pct;
}

std::optional<double> MpStat::read_pm(const sim::MachineSnapshot& prev,
                                      const sim::MachineSnapshot& cur,
                                      Metric metric) const {
  if (!can_measure(EntityClass::kPmOrHypervisor, metric)) return std::nullopt;
  // "The CPU utilization of the Xen hypervisor is obtained by running
  // mpstat in Xen" (Sec. III-A).
  return domain_util(prev.hypervisor, cur.hypervisor, interval_s(prev, cur))
      .cpu_pct;
}

// ---------------------------------------------------------------- IfConfig
const ToolInfo& IfConfig::info() const noexcept {
  static const ToolInfo kInfo{"ifconfig", ToolHost::kDom0, kIfConfigCpu};
  return kInfo;
}

bool IfConfig::can_measure(EntityClass entity, Metric metric) const noexcept {
  // Table I row "ifconfig": VM bw*, PM bw.
  if (metric != Metric::kBw) return false;
  return entity == EntityClass::kVm || entity == EntityClass::kPmOrHypervisor;
}

std::optional<double> IfConfig::read_vm(const sim::MachineSnapshot& prev,
                                        const sim::MachineSnapshot& cur,
                                        const std::string& vm_name,
                                        Metric metric) const {
  if (!can_measure(EntityClass::kVm, metric)) return std::nullopt;
  return domain_util(prev.guest(vm_name).counters, cur.guest(vm_name).counters,
                     interval_s(prev, cur))
      .bw_kbps;
}

std::optional<double> IfConfig::read_pm(const sim::MachineSnapshot& prev,
                                        const sim::MachineSnapshot& cur,
                                        Metric metric) const {
  if (!can_measure(EntityClass::kPmOrHypervisor, metric)) return std::nullopt;
  return device_util(prev.devices, cur.devices, interval_s(prev, cur)).nic_kbps;
}

// ------------------------------------------------------------------ VmStat
const ToolInfo& VmStat::info() const noexcept {
  static const ToolInfo kInfo{"vmstat", ToolHost::kDom0, kVmStatCpu};
  return kInfo;
}

bool VmStat::can_measure(EntityClass entity, Metric metric) const noexcept {
  // Table I row "vmstat": VM cpu*/mem*/io*, Dom0 mem, PM cpu/io.
  switch (entity) {
    case EntityClass::kVm:
      return metric == Metric::kCpu || metric == Metric::kMem ||
             metric == Metric::kIo;
    case EntityClass::kDom0:
      return metric == Metric::kMem;
    case EntityClass::kPmOrHypervisor:
      return metric == Metric::kCpu || metric == Metric::kIo;
  }
  return false;
}

std::optional<double> VmStat::read_vm(const sim::MachineSnapshot& prev,
                                      const sim::MachineSnapshot& cur,
                                      const std::string& vm_name,
                                      Metric metric) const {
  if (!can_measure(EntityClass::kVm, metric)) return std::nullopt;
  const UtilSample u = domain_util(prev.guest(vm_name).counters,
                                   cur.guest(vm_name).counters,
                                   interval_s(prev, cur));
  switch (metric) {
    case Metric::kCpu:
      return u.cpu_pct;
    case Metric::kMem:
      return u.mem_mib;
    case Metric::kIo:
      return u.io_blocks_per_s;
    default:
      return std::nullopt;
  }
}

std::optional<double> VmStat::read_dom0(const sim::MachineSnapshot& prev,
                                        const sim::MachineSnapshot& cur,
                                        Metric metric) const {
  if (!can_measure(EntityClass::kDom0, metric)) return std::nullopt;
  return domain_util(prev.dom0.counters, cur.dom0.counters,
                     interval_s(prev, cur))
      .mem_mib;
}

std::optional<double> VmStat::read_pm(const sim::MachineSnapshot& prev,
                                      const sim::MachineSnapshot& cur,
                                      Metric metric) const {
  if (!can_measure(EntityClass::kPmOrHypervisor, metric)) return std::nullopt;
  if (metric == Metric::kIo) {
    // "we use vmstat ... in Dom0 to measure I/O" (Sec. III-A).
    return device_util(prev.devices, cur.devices, interval_s(prev, cur))
        .disk_blocks_per_s;
  }
  // PM CPU: the paper computes it indirectly as Dom0 + hypervisor +
  // sum of guests (Sec. III-C); vmstat's PM-CPU cell reports the same.
  const double s = interval_s(prev, cur);
  double total =
      domain_util(prev.dom0.counters, cur.dom0.counters, s).cpu_pct +
      domain_util(prev.hypervisor, cur.hypervisor, s).cpu_pct;
  VOPROF_REQUIRE(prev.guests.size() == cur.guests.size());
  for (std::size_t i = 0; i < cur.guests.size(); ++i) {
    total += domain_util(prev.guests[i].counters, cur.guests[i].counters, s)
                 .cpu_pct;
  }
  return total;
}

}  // namespace voprof::mon
