#include "voprof/monitor/sample.hpp"

#include "voprof/util/assert.hpp"

namespace voprof::mon {

UtilSample domain_util(const sim::DomainCounters& prev,
                       const sim::DomainCounters& cur, double interval_s) {
  VOPROF_REQUIRE(interval_s > 0.0);
  UtilSample s;
  s.cpu_pct = (cur.cpu_core_seconds - prev.cpu_core_seconds) / interval_s *
              100.0;
  s.mem_mib = cur.mem_mib;  // gauge: current value
  s.io_blocks_per_s = (cur.io_blocks - prev.io_blocks) / interval_s;
  s.bw_kbps =
      ((cur.tx_kbits - prev.tx_kbits) + (cur.rx_kbits - prev.rx_kbits)) /
      interval_s;
  return s;
}

DeviceUtil device_util(const sim::DeviceCounters& prev,
                       const sim::DeviceCounters& cur, double interval_s) {
  VOPROF_REQUIRE(interval_s > 0.0);
  DeviceUtil d;
  d.disk_blocks_per_s = (cur.disk_blocks - prev.disk_blocks) / interval_s;
  d.nic_kbps = (cur.nic_kbits - prev.nic_kbits) / interval_s;
  return d;
}

}  // namespace voprof::mon
