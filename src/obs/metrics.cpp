#include "voprof/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "voprof/util/assert.hpp"

namespace voprof::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  VOPROF_REQUIRE_MSG(!bounds_.empty(),
                     "Histogram needs at least one bucket bound");
  VOPROF_REQUIRE_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                         std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                             bounds_.end(),
                     "Histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  if constexpr (kObsCompiled) {
    // NaN is checked explicitly and sent to the overflow bucket:
    // lower_bound's `bound < NaN` comparisons are all false, which
    // would otherwise file NaN under the FIRST bucket.
    std::size_t idx = bounds_.size();
    if (!std::isnan(v)) {
      const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
      if (it != bounds_.end()) {
        idx = static_cast<std::size_t>(it - bounds_.begin());
      }
    }
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  } else {
    (void)v;
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Immortal on purpose: components hold references in function-local
  // statics, and destruction order across translation units is
  // unspecified. One registry per process; the leak is bounded.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "counter";
    e.value = static_cast<double>(c->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "gauge";
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "histogram";
    e.hist = h->snapshot();
    e.value = e.hist.mean();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& kv : counters_) {
    kv.second->reset();
  }
  for (auto& kv : gauges_) {
    kv.second->reset();
  }
  for (auto& kv : histograms_) {
    kv.second->reset();
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string metric_category(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace voprof::obs
