#include "voprof/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>

namespace voprof::obs {

namespace {

std::int64_t steady_us() {
  // The one sanctioned direct steady_clock read outside bench/: every
  // other module times itself through WallSpan, which lands here.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

util::Json args_to_json(const TraceRecord& rec) {
  util::Json args = util::Json::object();
  for (const auto& [key, value] : rec.args) {
    args.set(key, value);
  }
  for (const auto& [key, value] : rec.sargs) {
    args.set(key, value);
  }
  return args;
}

util::Json record_to_json(const TraceRecord& rec) {
  util::Json e = util::Json::object();
  e.set("name", rec.name);
  e.set("cat", rec.cat);
  e.set("ph", std::string(1, rec.ph));
  e.set("pid", rec.clock == Clock::kWall ? kWallPid : kSimPid);
  e.set("tid", static_cast<double>(rec.tid));
  e.set("ts", static_cast<double>(rec.ts_us));
  if (rec.ph == 'X') {
    e.set("dur", static_cast<double>(rec.dur_us));
  }
  if (!rec.args.empty() || !rec.sargs.empty()) {
    e.set("args", args_to_json(rec));
  }
  return e;
}

util::Json metadata_event(int pid, const char* label) {
  util::Json e = util::Json::object();
  e.set("name", "process_name");
  e.set("ph", "M");
  e.set("pid", pid);
  e.set("tid", 0);
  util::Json args = util::Json::object();
  args.set("name", label);
  e.set("args", args);
  return e;
}

}  // namespace

std::int64_t wall_clock_us() noexcept {
  if constexpr (!kObsCompiled) {
    return 0;
  }
  return steady_us();
}

std::int64_t monotonic_us() noexcept { return steady_us(); }

TraceCollector& TraceCollector::global() {
  // A true static (unlike Registry::global()): the destructor is the
  // flush-at-exit path for VOPROF_TRACE. The registry it snapshots is
  // immortal, so ordering against other statics is safe.
  static TraceCollector instance;
  return instance;
}

TraceCollector::~TraceCollector() {
  if (enabled()) {
    write_file();
  }
}

void TraceCollector::enable(std::string path) {
  if constexpr (!kObsCompiled) {
    (void)path;
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  epoch_us_ = steady_us();
  events_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  events_.clear();
  path_.clear();
}

void TraceCollector::init_from_env() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (env_checked_) {
      return;
    }
    env_checked_ = true;
  }
  const char* path = std::getenv("VOPROF_TRACE");
  if (path != nullptr && *path != '\0') {
    enable(path);
  }
}

std::string TraceCollector::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

std::int64_t TraceCollector::wall_now_us() const noexcept {
  if (!enabled()) {
    return 0;
  }
  return steady_us() - epoch_us_;
}

std::uint64_t TraceCollector::current_tid() {
  static std::atomic<std::uint64_t> next_tid{1};
  thread_local std::uint64_t tid = 0;
  if (tid == 0) {
    tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tid;
}

void TraceCollector::record(TraceRecord rec) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(rec));
}

void TraceCollector::complete_wall(
    std::string cat, std::string name, std::int64_t ts_us, std::int64_t dur_us,
    std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) {
    return;
  }
  TraceRecord rec;
  rec.ph = 'X';
  rec.clock = Clock::kWall;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.ts_us = ts_us;
  rec.dur_us = dur_us;
  rec.tid = current_tid();
  rec.args = std::move(args);
  record(std::move(rec));
}

void TraceCollector::complete_sim(
    std::string cat, std::string name, std::int64_t ts_us, std::int64_t dur_us,
    std::uint64_t tid, std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) {
    return;
  }
  TraceRecord rec;
  rec.ph = 'X';
  rec.clock = Clock::kSim;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.ts_us = ts_us;
  rec.dur_us = dur_us;
  rec.tid = tid;
  rec.args = std::move(args);
  record(std::move(rec));
}

void TraceCollector::instant_sim(
    std::string cat, std::string name, std::int64_t ts_us, std::uint64_t tid,
    std::vector<std::pair<std::string, std::string>> sargs) {
  if (!enabled()) {
    return;
  }
  TraceRecord rec;
  rec.ph = 'i';
  rec.clock = Clock::kSim;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.ts_us = ts_us;
  rec.tid = tid;
  rec.sargs = std::move(sargs);
  record(std::move(rec));
}

util::Json TraceCollector::to_json() const {
  util::Json events = util::Json::array();
  events.push_back(metadata_event(kWallPid, "wall clock"));
  events.push_back(metadata_event(kSimPid, "sim clock"));

  std::int64_t counter_ts = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& rec : events_) {
      events.push_back(record_to_json(rec));
      if (rec.clock == Clock::kWall) {
        counter_ts = std::max(counter_ts, rec.ts_us + rec.dur_us);
      }
    }
  }

  // One 'C' sample per registry metric at the end of the wall
  // timeline, so Perfetto draws final counter values as flat tracks,
  // and voprofMetrics with the full structured snapshot for tooling.
  const Registry::Snapshot snap = Registry::global().snapshot();
  util::Json metrics = util::Json::object();
  for (const auto& entry : snap.entries) {
    util::Json c = util::Json::object();
    c.set("name", entry.name);
    c.set("cat", metric_category(entry.name));
    c.set("ph", "C");
    c.set("pid", kWallPid);
    c.set("tid", 0);
    c.set("ts", static_cast<double>(counter_ts));
    util::Json cargs = util::Json::object();
    cargs.set("value", entry.value);
    c.set("args", cargs);
    events.push_back(c);

    util::Json m = util::Json::object();
    m.set("kind", entry.kind);
    m.set("value", entry.value);
    if (entry.kind == "histogram") {
      util::Json bounds = util::Json::array();
      for (double b : entry.hist.bounds) {
        bounds.push_back(b);
      }
      util::Json counts = util::Json::array();
      for (std::uint64_t n : entry.hist.counts) {
        counts.push_back(static_cast<double>(n));
      }
      m.set("bounds", bounds);
      m.set("counts", counts);
      m.set("count", static_cast<double>(entry.hist.count));
      m.set("sum", entry.hist.sum);
    }
    metrics.set(entry.name, m);
  }

  util::Json doc = util::Json::object();
  doc.set("traceEvents", events);
  doc.set("displayTimeUnit", "ms");
  doc.set("schema", kTraceSchema);
  doc.set("voprofMetrics", metrics);
  return doc;
}

bool TraceCollector::write_file() {
  std::string out_path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out_path = path_;
  }
  if (out_path.empty()) {
    return false;
  }
  const std::string text = to_json().dump(0);
  std::ofstream out(out_path);
  if (!out) {
    return false;
  }
  out << text << '\n';
  if (!out.good()) {
    return false;
  }
  disable();
  return true;
}

std::size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

WallSpan::WallSpan(const char* cat, const char* name) noexcept {
  auto& collector = TraceCollector::global();
  if (collector.enabled()) {
    cat_ = cat;
    name_ = name;
    start_us_ = collector.wall_now_us();
    active_ = true;
  }
}

WallSpan::~WallSpan() {
  if (!active_) {
    return;
  }
  auto& collector = TraceCollector::global();
  if (collector.enabled()) {
    const std::int64_t end_us = collector.wall_now_us();
    collector.complete_wall(cat_, name_, start_us_, end_us - start_us_);
  }
}

}  // namespace voprof::obs
