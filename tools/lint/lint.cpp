#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace voprof::lint {

namespace {

namespace fs = std::filesystem;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_test_code(const std::string& relpath) {
  return starts_with(relpath, "tests/") ||
         relpath.find("/tests/") != std::string::npos;
}

bool is_model_engine_code(const std::string& relpath) {
  return starts_with(relpath, "src/core/") ||
         starts_with(relpath, "src/xensim/") ||
         starts_with(relpath, "include/voprof/core/") ||
         starts_with(relpath, "include/voprof/xensim/");
}

bool is_task_pool_code(const std::string& relpath) {
  return relpath.find("util/task_pool") != std::string::npos;
}

bool is_bench_code(const std::string& relpath) {
  return starts_with(relpath, "bench/") ||
         relpath.find("/bench/") != std::string::npos;
}

bool is_obs_code(const std::string& relpath) {
  return starts_with(relpath, "src/obs/") ||
         starts_with(relpath, "include/voprof/obs/") ||
         relpath.find("/obs/") != std::string::npos;
}

bool is_header(const std::string& relpath) {
  return relpath.ends_with(".hpp") || relpath.ends_with(".h") ||
         relpath.ends_with(".hh");
}

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Split masked text into lines (indices are 1-based at report time).
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

const std::regex& assert_call_re() {
  // `static_assert` never matches: '_' is excluded by the char class.
  static const std::regex re(R"((^|[^A-Za-z0-9_])assert\s*\()");
  return re;
}

const std::regex& assert_include_re() {
  static const std::regex re(R"(#\s*include\s*[<"](cassert|assert\.h)[">])");
  return re;
}

const std::regex& float_re() {
  static const std::regex re(R"((^|[^A-Za-z0-9_])float($|[^A-Za-z0-9_]))");
  return re;
}

const std::regex& cout_re() {
  static const std::regex re(R"(std\s*::\s*cout)");
  return re;
}

const std::regex& thread_re() {
  // `std::thread` / `std::jthread` as a type (construction, members,
  // vector<std::thread>, ...) but not `std::thread::hardware_concurrency`
  // and friends — a trailing `::` means a static member access, which
  // does not spawn anything. `std::this_thread` never matches: after
  // `std::` the literal `j?thread` cannot match `this_thread`.
  static const std::regex re(R"(std\s*::\s*j?thread\b(?!\s*::))");
  return re;
}

const std::regex& steady_clock_re() {
  // Any direct steady_clock::now() read, qualified or via
  // `using namespace std::chrono`. system_clock is untouched: the rule
  // is about ad-hoc interval timing, which must go through
  // voprof::obs (wall_clock_us / WallSpan) so traces see it.
  static const std::regex re(R"(steady_clock\s*::\s*now\s*\()");
  return re;
}

const std::regex& rand_re() {
  // Rejects member/qualified calls (`.rand(`, `->rand(`, `::rand(` is
  // still the C function — catch it) and identifiers merely containing
  // "rand". `std::rand(` and plain `rand(`/`srand(` all fire.
  static const std::regex re(R"((^|[^A-Za-z0-9_.>])s?rand\s*\()");
  return re;
}

void scan_lines(const std::vector<std::string>& lines, const std::regex& re,
                const std::string& relpath, const std::string& rule,
                const std::string& message, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], re)) {
      out->push_back(Finding{relpath, i + 1, rule, message});
    }
  }
}

/// First non-blank line of the masked text, with its 1-based number.
std::pair<std::string, std::size_t> first_code_line(
    const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string t = lines[i];
    t.erase(std::remove_if(t.begin(), t.end(),
                           [](unsigned char c) { return std::isspace(c); }),
            t.end());
    if (!t.empty()) return {t, i + 1};
  }
  return {"", 1};
}

void check_header_guard(const std::vector<std::string>& lines,
                        const std::string& relpath,
                        std::vector<Finding>* out) {
  const auto [first, line_no] = first_code_line(lines);
  if (first == "#pragmaonce") return;
  // Classic include guard: #ifndef NAME directly followed by
  // #define NAME (comments/blank lines already masked or skipped).
  static const std::regex ifndef_re(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+)\s*$)");
  static const std::regex define_re(R"(^\s*#\s*define\s+([A-Za-z0-9_]+)\s*$)");
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    std::smatch m_if;
    if (!std::regex_match(lines[i], m_if, ifndef_re)) continue;
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      std::string t = lines[j];
      if (t.find_first_not_of(" \t") == std::string::npos) continue;
      std::smatch m_def;
      if (std::regex_match(lines[j], m_def, define_re) &&
          m_def[1] == m_if[1]) {
        return;  // proper guard
      }
      break;
    }
    break;
  }
  out->push_back(Finding{
      relpath, line_no, "header-guard",
      "header must start with '#pragma once' (or an #ifndef/#define "
      "include guard)"});
}

}  // namespace

std::string Finding::format() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string mask_comments_and_strings(const std::string& text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  std::string out;
  out.reserve(text.size());
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active raw string literal
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim".
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < text.size() && text[p] != '(') raw_delim += text[p++];
          out.append(p + 1 - i, ' ');
          i = p;  // now at '('
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, close.size(), close) == 0) {
          out.append(close.size(), ' ');
          i += close.size() - 1;
          state = State::kCode;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> lint_file_content(const std::string& relpath,
                                       const std::string& content) {
  std::vector<Finding> out;
  const std::string masked = mask_comments_and_strings(content);
  const std::vector<std::string> lines = split_lines(masked);

  if (!is_test_code(relpath)) {
    scan_lines(lines, assert_call_re(), relpath, "naked-assert",
               "use VOPROF_REQUIRE / VOPROF_ASSERT (voprof/util/assert.hpp) "
               "instead of assert()",
               &out);
    scan_lines(lines, assert_include_re(), relpath, "naked-assert",
               "do not include <cassert> outside tests", &out);
  }
  if (is_model_engine_code(relpath)) {
    scan_lines(lines, float_re(), relpath, "float-in-model",
               "model/engine code computes in double precision only", &out);
    scan_lines(lines, cout_re(), relpath, "cout-in-library",
               "library code must not write to std::cout", &out);
  }
  if (is_header(relpath)) {
    check_header_guard(lines, relpath, &out);
  }
  scan_lines(lines, rand_re(), relpath, "raw-rand",
             "use voprof::util::Rng instead of rand()/srand()", &out);
  if (!is_task_pool_code(relpath)) {
    scan_lines(lines, thread_re(), relpath, "raw-thread",
               "use voprof::util::TaskPool instead of raw std::thread so "
               "parallel sweeps stay deterministic",
               &out);
  }
  if (!is_test_code(relpath) && !is_bench_code(relpath) &&
      !is_obs_code(relpath)) {
    scan_lines(lines, steady_clock_re(), relpath, "raw-steady-clock",
               "time through voprof::obs (wall_clock_us / VOPROF_WALL_SPAN) "
               "instead of steady_clock::now() so traces observe the interval",
               &out);
  }
  return out;
}

LintReport lint_tree(const fs::path& root) {
  if (!fs::is_directory(root)) {
    throw std::runtime_error("voprof-lint: not a directory: " + root.string());
  }
  // Scanning the fixture tree itself (self-test) must not skip it.
  const bool root_in_fixtures =
      fs::absolute(root).generic_string().find("lint_fixtures") !=
      std::string::npos;

  LintReport report;
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied);
       it != fs::recursive_directory_iterator(); ++it) {
    const fs::directory_entry& entry = *it;
    const std::string name = entry.path().filename().string();
    if (entry.is_directory()) {
      if (name == ".git" || starts_with(name, "build") ||
          (name == "lint_fixtures" && !root_in_fixtures)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (entry.is_regular_file() && is_cpp_source(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("voprof-lint: cannot read " + path.string());
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string relpath =
        fs::relative(path, root).generic_string();
    std::vector<Finding> file_findings =
        lint_file_content(relpath, buf.str());
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(file_findings.begin()),
                           std::make_move_iterator(file_findings.end()));
    ++report.files_scanned;
  }
  return report;
}

}  // namespace voprof::lint
