#pragma once
/// \file lint.hpp
/// voprof-lint: project-convention checks the generic tools
/// (clang-tidy, compiler warnings) cannot express. Usable as a library
/// (tests/test_lint.cpp) and from the voprof-lint CLI.
///
/// Rules (see docs/STATIC_ANALYSIS.md for rationale and how to add one):
///   naked-assert     no assert()/<cassert> outside tests — use
///                    VOPROF_REQUIRE / VOPROF_ASSERT (util/assert.hpp)
///   float-in-model   no `float` in model/engine code (src/core,
///                    src/xensim and their headers): the paper's
///                    quantities are doubles end to end
///   header-guard     every header starts with `#pragma once` (or a
///                    classic #ifndef/#define guard)
///   cout-in-library  no std::cout in library code (src/core,
///                    src/xensim): libraries report through return
///                    values, not stdout
///   raw-rand         no rand()/srand() anywhere — all randomness goes
///                    through voprof::util::Rng for reproducibility
///   raw-thread       no std::thread / std::jthread outside
///                    util/task_pool — parallelism goes through
///                    voprof::util::TaskPool so sweeps stay
///                    deterministic (static members such as
///                    std::thread::hardware_concurrency are fine)
///   raw-steady-clock no steady_clock::now() outside bench/, obs/ and
///                    tests — interval timing goes through voprof::obs
///                    (wall_clock_us / VOPROF_WALL_SPAN) so an enabled
///                    trace observes it
///
/// Comments and string literals are masked out before matching, so a
/// `// rand()` comment or an "assert(" inside a string never fires.

#include <filesystem>
#include <string>
#include <vector>

namespace voprof::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;       ///< path as reported (relative to scan root)
  std::size_t line = 0;   ///< 1-based line number
  std::string rule;       ///< rule identifier, e.g. "naked-assert"
  std::string message;    ///< human-readable explanation

  [[nodiscard]] std::string format() const;
};

/// Result of linting a tree.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Replace comments and string/char literal contents with spaces
/// (newlines preserved so line numbers survive). Exposed for tests.
[[nodiscard]] std::string mask_comments_and_strings(const std::string& text);

/// Lint one file's contents. `relpath` (with '/' separators, relative
/// to the scan root) selects which rules apply: tests/ is exempt from
/// naked-assert; src/core, src/xensim, include/voprof/core and
/// include/voprof/xensim are model/engine code.
[[nodiscard]] std::vector<Finding> lint_file_content(
    const std::string& relpath, const std::string& content);

/// Recursively lint every C++ source/header under `root`. Directories
/// named `.git`, starting with `build`, or named `lint_fixtures` are
/// skipped — unless `root` itself lies inside a lint_fixtures tree
/// (so the self-test fixtures can be scanned directly). Throws
/// std::runtime_error if `root` is not a directory.
[[nodiscard]] LintReport lint_tree(const std::filesystem::path& root);

}  // namespace voprof::lint
