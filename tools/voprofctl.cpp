/// \file voprofctl.cpp
/// Command-line front-end for the voprof pipeline — the workflow a
/// cloud operator would actually run:
///
///   voprofctl train   --out models.txt [--method lms|ols]
///                     [--duration s] [--seed n]
///       Run the Table II x {1,2,4}-VM sweep on the simulated testbed
///       and fit the Sec. V models.
///
///   voprofctl export-trace --out data.csv [--duration s]
///       Dump the raw training observations as CSV (per-second rows).
///
///   voprofctl fit     --trace data.csv --out models.txt [--method ...]
///       Trace-driven fitting from a previously exported (or external)
///       observation CSV.
///
///   voprofctl predict --models models.txt --cpu C --mem M --io I
///                     --bw B [--vms N]
///       Predict PM utilization (incl. Dom0 + hypervisor) for a
///       deployment whose summed VM utilization is (C, M, I, B).
///
///   voprofctl profile --kind cpu|mem|io|bw --value V [--vms N]
///                     [--duration s]
///       Measure one micro-benchmark cell and print all entities.
///
///   voprofctl rubis   --models models.txt [--clients N] [--duration s]
///       Deploy the two-tier RUBiS application and report prediction
///       accuracy against the measured PMs.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_diff.hpp"
#include "harness.hpp"
#include "trace_cmd.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/scenario/scenario.hpp"
#include "voprof/util/cli.hpp"
#include "voprof/voprof.hpp"

namespace {

using namespace voprof;

int usage() {
  std::cout <<
      "usage: voprofctl <command> [flags]\n"
      "commands:\n"
      "  train         run the micro-benchmark sweep and fit the models\n"
      "                  --out FILE [--method lms|ols] [--duration SEC]\n"
      "                  [--seed N]\n"
      "  export-trace  dump sweep observations as CSV\n"
      "                  --out FILE [--duration SEC] [--seed N]\n"
      "  fit           fit models from an observation CSV\n"
      "                  --trace FILE --out FILE [--method lms|ols]\n"
      "  predict       predict PM utilization from summed VM metrics\n"
      "                  --models FILE --cpu PCT --mem MIB --io BLKS\n"
      "                  --bw KBPS [--vms N]\n"
      "  profile       measure one workload cell\n"
      "                  --kind cpu|mem|io|bw --value V [--vms N]\n"
      "                  [--duration SEC]\n"
      "  rubis         RUBiS prediction-accuracy run\n"
      "                  --models FILE [--clients N] [--duration SEC]\n"
      "  inspect       bootstrap confidence intervals for the model\n"
      "                  coefficients fitted from an observation CSV\n"
      "                  --trace FILE [--method lms|ols] [--resamples N]\n"
      "  simulate      run a declarative scenario (INI) and print the\n"
      "                  measured utilizations\n"
      "                  --scenario FILE [--csv OUT.csv]\n"
      "                  [--replications N] [--jobs N]\n"
      "                  [--trace-out TRACE.json]\n"
      "  bench-diff    compare two BENCH_*.json perf records\n"
      "                  --baseline FILE --current FILE\n"
      "                  [--threshold FRAC] [--report-improvement]\n"
      "                  exit 0 = ok, 1 = regression, 2 = bad input,\n"
      "                  4 = improvement (with --report-improvement)\n"
      "  trace         digest an exported observability trace\n"
      "                  trace summary FILE   per-category time table\n"
      "                  trace top FILE [--limit N]\n"
      "                                       busiest spans by total time\n"
      "                  trace export FILE [--out OUT.csv]\n"
      "                                       per-span aggregates as CSV\n"
      "  version       print the build identity (compiler, flags,\n"
      "                  git describe, observability state)\n";
  return 2;
}

model::RegressionMethod parse_method(const std::string& name) {
  if (name == "lms") return model::RegressionMethod::kLms;
  if (name == "ols") return model::RegressionMethod::kOls;
  throw util::ContractViolation("unknown method (want lms|ols): " + name);
}

wl::WorkloadKind parse_kind(const std::string& name) {
  if (name == "cpu") return wl::WorkloadKind::kCpu;
  if (name == "mem") return wl::WorkloadKind::kMem;
  if (name == "io") return wl::WorkloadKind::kIo;
  if (name == "bw") return wl::WorkloadKind::kBw;
  throw util::ContractViolation("unknown kind (want cpu|mem|io|bw): " + name);
}

model::TrainerConfig trainer_config(const util::CliArgs& args) {
  model::TrainerConfig cfg;
  cfg.duration = util::seconds(args.get_double("duration", 60.0));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return cfg;
}

int cmd_train(const util::CliArgs& args) {
  const model::Trainer trainer(trainer_config(args));
  const auto method = parse_method(args.get_or("method", "lms"));
  std::cout << "training (" << args.get_or("method", "lms")
            << ", full Table II sweep x {1,2,4} VMs)...\n";
  const model::TrainedModels models = trainer.train(method);
  model::save_models_file(models, args.get("out"));
  std::cout << "wrote " << args.get("out") << " ("
            << models.data.size() << " observations)\n";
  const model::LinearFit& cpu =
      models.single.fit_for(model::MetricIndex::kCpu);
  std::printf("PM-CPU fit: R^2 %.4f, rms %.3f\n", cpu.r_squared,
              cpu.residual_rms);
  return 0;
}

int cmd_export_trace(const util::CliArgs& args) {
  const model::Trainer trainer(trainer_config(args));
  std::cout << "collecting observations...\n";
  const model::TrainingSet data = trainer.collect();
  model::training_set_to_csv(data).save(args.get("out"));
  std::cout << "wrote " << args.get("out") << " (" << data.size()
            << " rows)\n";
  return 0;
}

int cmd_fit(const util::CliArgs& args) {
  const model::TrainingSet data = model::training_set_from_csv(
      util::CsvDocument::load(args.get("trace")));
  const auto method = parse_method(args.get_or("method", "lms"));
  const model::TrainedModels models =
      model::Trainer::fit_models(data, method);
  model::save_models_file(models, args.get("out"));
  std::cout << "fitted " << data.size() << " observations -> "
            << args.get("out") << '\n';
  return 0;
}

int cmd_predict(const util::CliArgs& args) {
  const model::TrainedModels models =
      model::load_models_file(args.get("models"));
  const model::UtilVec sum{args.get_double("cpu", 0.0),
                           args.get_double("mem", 0.0),
                           args.get_double("io", 0.0),
                           args.get_double("bw", 0.0)};
  const int n = args.get_int("vms", 1);
  const model::UtilVec pm = models.multi.predict(sum, n);
  util::AsciiTable t("predicted PM utilization for " + std::to_string(n) +
                     " co-located VM(s)");
  t.set_header({"metric", "sum of VMs", "predicted PM", "overhead"});
  t.add_row({"CPU (%)", util::fmt(sum.cpu, 2),
             util::fmt(models.multi.predict_pm_cpu_indirect(sum, n), 2),
             util::fmt(models.multi.predict_dom0_cpu(sum, n), 2) +
                 " Dom0 + " +
                 util::fmt(models.multi.predict_hyp_cpu(sum, n), 2) +
                 " hyp"});
  t.add_row({"MEM (MiB)", util::fmt(sum.mem, 1), util::fmt(pm.mem, 1),
             util::fmt(pm.mem - sum.mem, 1)});
  t.add_row({"I/O (blk/s)", util::fmt(sum.io, 1), util::fmt(pm.io, 1),
             util::fmt(pm.io - sum.io, 1)});
  t.add_row({"BW (Kb/s)", util::fmt(sum.bw, 1), util::fmt(pm.bw, 1),
             util::fmt(pm.bw - sum.bw, 1)});
  std::cout << t.str();
  return 0;
}

int cmd_profile(const util::CliArgs& args) {
  const wl::WorkloadKind kind = parse_kind(args.get("kind"));
  const double value = args.get_double("value", 50.0);
  const int n_vms = args.get_int("vms", 1);
  const double duration = args.get_double("duration", 60.0);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{},
                       static_cast<std::uint64_t>(args.get_int("seed", 42)));
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i + 1);
    pm.add_vm(spec).attach(wl::make_workload_value(
        kind, value, sim::NetTarget{}, 7 + static_cast<std::uint64_t>(i)));
  }
  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report =
      monitor.measure(util::seconds(duration));

  util::AsciiTable t(wl::kind_name(kind) + " @ " + util::fmt(value, 2) +
                     " " + wl::kind_unit(kind) + " x " +
                     std::to_string(n_vms) + " VM(s), " +
                     util::fmt(duration, 0) + " s");
  t.set_header({"entity", "CPU(%)", "MEM(MiB)", "I/O(blk/s)", "BW(Kb/s)"});
  for (const auto& key : report.keys()) {
    const mon::UtilSample u = report.mean(key);
    t.add_row({key, util::fmt(u.cpu_pct, 2), util::fmt(u.mem_mib, 1),
               util::fmt(u.io_blocks_per_s, 2), util::fmt(u.bw_kbps, 2)});
  }
  std::cout << t.str();
  return 0;
}

int cmd_inspect(const util::CliArgs& args) {
  const model::TrainingSet data = model::training_set_from_csv(
      util::CsvDocument::load(args.get("trace")));
  model::BootstrapConfig cfg;
  cfg.method = parse_method(args.get_or("method", "ols"));
  cfg.resamples = args.get_int("resamples", 200);
  std::cout << "bootstrapping " << cfg.resamples << " resamples over "
            << data.with_vm_count(1).size() << " single-VM rows...\n";
  std::cout << model::diagnostics_table(
      model::bootstrap_single_vm(data, cfg));
  return 0;
}

int cmd_simulate(const util::CliArgs& args) {
  // `fit`/`inspect` already claim --trace for observation CSVs, so the
  // observability trace output is --trace-out here (VOPROF_TRACE also
  // works, as everywhere).
  auto& collector = obs::TraceCollector::global();
  if (args.has("trace-out")) {
    collector.enable(args.get("trace-out"));
  } else {
    collector.init_from_env();
  }

  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::load(args.get("scenario"));
  const int replications = args.get_int("replications", 1);
  std::cout << "running scenario: " << spec.machines << " machine(s), "
            << spec.vms.size() << " VM(s), "
            << util::fmt(spec.duration_s, 0) << " s\n\n";
  if (replications > 1) {
    const scenario::ReplicatedScenarioResult result =
        scenario::run_scenario_replicated(
            spec, static_cast<std::size_t>(replications),
            args.get_int("jobs", 1));
    std::cout << result.summary();
  } else {
    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::cout << result.summary();
    if (args.has("csv")) {
      // Export the first monitored machine's full series.
      const auto& [machine, report] = *result.reports.begin();
      mon::report_to_csv(report).save(args.get("csv"));
      std::cout << "wrote machine " << machine << " series to "
                << args.get("csv") << '\n';
    }
  }

  if (collector.enabled()) {
    const std::string path = collector.path();
    const std::size_t events = collector.size();
    if (collector.write_file()) {
      std::cout << "wrote trace (" << events << " events) to " << path
                << '\n';
    }
  }
  return 0;
}

int cmd_trace(const std::string& sub, const util::CliArgs& args) {
  // The trace file rides in args.command() — main() peeled off the
  // subcommand word before parsing.
  const std::string& file = args.command();
  if (file.empty()) return usage();
  const tools::TraceSummary summary = tools::summarize_trace_file(file);
  if (sub == "summary") {
    std::cout << tools::format_trace_summary(summary);
    return 0;
  }
  if (sub == "top") {
    std::cout << tools::format_trace_top(summary, args.get_int("limit", 10));
    return 0;
  }
  if (sub == "export") {
    const std::string csv = tools::trace_spans_csv(summary);
    if (args.has("out")) {
      std::ofstream out(args.get("out"));
      VOPROF_REQUIRE_MSG(out.good(), "cannot write " + args.get("out"));
      out << csv;
      std::cout << "wrote " << summary.spans.size() << " span rows to "
                << args.get("out") << '\n';
    } else {
      std::cout << csv;
    }
    return 0;
  }
  return usage();
}

int cmd_version() {
  const bench::harness::EnvInfo env = bench::harness::capture_env();
  std::cout << "voprofctl (voprof " << env.git_describe << ")\n"
            << "  compiler:      " << env.compiler << '\n'
            << "  build type:    " << env.build_type << '\n'
            << "  cxx flags:     " << env.cxx_flags << '\n'
            << "  sanitizers:    "
            << (env.sanitizers.empty() ? "none" : env.sanitizers) << '\n'
            << "  observability: "
            << (obs::kObsCompiled ? "compiled in" : "compiled out") << '\n'
            << "  os/threads:    " << env.os << '/' << env.hardware_threads
            << '\n';
  return 0;
}

int cmd_rubis(const util::CliArgs& args) {
  const model::TrainedModels models =
      model::load_models_file(args.get("models"));
  const int clients = args.get_int("clients", 500);
  const double duration = args.get_double("duration", 120.0);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 4242);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = clients;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  engine.run_for(util::seconds(10.0));
  mon::MonitorScript mon1(engine, cluster.machine(0));
  mon::MonitorScript mon2(engine, cluster.machine(1));
  mon1.start();
  mon2.start();
  const double mark = inst.client->completed();
  engine.run_for(util::seconds(duration));
  mon1.stop();
  mon2.stop();
  std::printf("throughput: %.1f req/s at %d clients\n",
              (inst.client->completed() - mark) / duration, clients);

  const model::Predictor predictor(models.multi);
  const auto e1 = predictor.evaluate(mon1.report(), {inst.web_vm});
  const auto e2 = predictor.evaluate(mon2.report(), {inst.db_vm});
  util::AsciiTable t("prediction accuracy (90th percentile error)");
  t.set_header({"PM", "CPU err(%)", "BW err(%)"});
  t.add_row({"PM1 (web)",
             util::fmt(e1.of(model::MetricIndex::kCpu).error_at_fraction(0.9), 2),
             util::fmt(e1.of(model::MetricIndex::kBw).error_at_fraction(0.9), 2)});
  t.add_row({"PM2 (db)",
             util::fmt(e2.of(model::MetricIndex::kCpu).error_at_fraction(0.9), 2),
             util::fmt(e2.of(model::MetricIndex::kBw).error_at_fraction(0.9), 2)});
  std::cout << t.str();
  return 0;
}

int cmd_bench_diff(const util::CliArgs& args) {
  try {
    const double threshold = args.get_double("threshold", 0.25);
    const tools::BenchDiffReport report = tools::bench_diff_files(
        args.get("baseline"), args.get("current"), threshold);
    std::cout << tools::format_bench_diff(report, threshold);
    return tools::bench_diff_exit_code(report,
                                       args.get_bool("report-improvement"));
  } catch (const std::exception& e) {
    // Input/usage problems get a distinct exit code so CI can tell a
    // broken gate from a real perf regression.
    std::cerr << "voprofctl: " << e.what() << '\n';
    return tools::kBenchDiffExitError;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // `trace` takes a subcommand word plus a positional file, which
    // CliArgs (exactly one positional) can't express: peel the two
    // leading words off first, so the file path becomes the command.
    if (argc >= 2 && std::string(argv[1]) == "trace") {
      if (argc < 3) return usage();
      return cmd_trace(argv[2], util::CliArgs::parse(argc - 2, argv + 2));
    }
    const util::CliArgs args =
        util::CliArgs::parse(argc, argv, {"report-improvement"});
    const std::string& cmd = args.command();
    if (cmd == "version") return cmd_version();
    if (cmd == "train") return cmd_train(args);
    if (cmd == "export-trace") return cmd_export_trace(args);
    if (cmd == "fit") return cmd_fit(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "rubis") return cmd_rubis(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "bench-diff") return cmd_bench_diff(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "voprofctl: " << e.what() << '\n';
    return 1;
  }
}
