/// \file voprofctl.cpp
/// Command-line front-end for the voprof pipeline — the workflow a
/// cloud operator would actually run:
///
///   voprofctl train   --out models.txt [--method lms|ols]
///                     [--duration s] [--seed n] [--jobs n]
///       Run the Table II x {1,2,4}-VM sweep on the simulated testbed
///       and fit the Sec. V models.
///
///   voprofctl export-trace --out data.csv [--duration s]
///       Dump the raw training observations as CSV (per-second rows).
///
///   voprofctl fit     --observations data.csv --out models.txt
///       Trace-driven fitting from a previously exported (or external)
///       observation CSV.
///
///   voprofctl predict --models models.txt --cpu C --mem M --io I
///                     --bw B [--vms N] [--format csv|json]
///       Predict PM utilization (incl. Dom0 + hypervisor) for a
///       deployment whose summed VM utilization is (C, M, I, B).
///
///   voprofctl profile --kind cpu|mem|io|bw --value V [--vms N]
///       Measure one micro-benchmark cell and print all entities.
///
///   voprofctl rubis   --models models.txt [--clients N]
///       Deploy the two-tier RUBiS application and report prediction
///       accuracy against the measured PMs.
///
///   voprofctl serve   --socket PATH / voprofctl request --socket PATH
///       Run the voprofd daemon in-process / send it one request.
///
/// Every command accepts --trace-out FILE (observability trace export)
/// and shares one spelling for --jobs / --seed / --format. Flags are
/// declared in tools/ctl_flags.cpp; deprecated spellings are rewritten
/// there with a warning.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_diff.hpp"
#include "ctl_flags.hpp"
#include "harness.hpp"
#include "trace_cmd.hpp"
#include "voprof/core/diagnostics.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/cli.hpp"
#include "voprof/util/numeric.hpp"
#include "voprof/util/table.hpp"
#include "voprof/voprof.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cluster.hpp"

namespace {

using namespace voprof;

int usage() {
  std::cout <<
      "usage: voprofctl <command> [flags]\n"
      "commands:\n"
      "  train         run the micro-benchmark sweep and fit the models\n"
      "                  --out FILE [--method lms|ols] [--duration SEC]\n"
      "                  [--seed N] [--jobs N]\n"
      "  export-trace  dump sweep observations as CSV\n"
      "                  --out FILE [--duration SEC] [--seed N] [--jobs N]\n"
      "  fit           fit models from an observation CSV\n"
      "                  --observations FILE --out FILE [--method lms|ols]\n"
      "  predict       predict PM utilization from summed VM metrics\n"
      "                  --models FILE --cpu PCT --mem MIB --io BLKS\n"
      "                  --bw KBPS [--vms N] [--format csv|json]\n"
      "  profile       measure one workload cell\n"
      "                  --kind cpu|mem|io|bw --value V [--vms N]\n"
      "                  [--duration SEC] [--seed N] [--format csv|json]\n"
      "  rubis         RUBiS prediction-accuracy run\n"
      "                  --models FILE [--clients N] [--duration SEC]\n"
      "  inspect       bootstrap confidence intervals for the model\n"
      "                  coefficients fitted from an observation CSV\n"
      "                  --observations FILE [--method lms|ols]\n"
      "                  [--resamples N]\n"
      "  simulate      run a declarative scenario (INI) and print the\n"
      "                  measured utilizations\n"
      "                  --scenario FILE [--series-out OUT.csv]\n"
      "                  [--replications N] [--jobs N] [--seed N]\n"
      "                  [--format csv|json]\n"
      "  serve         run the voprofd daemon (see `voprofd --help`)\n"
      "                  --socket PATH [--jobs N] [--queue-capacity N]\n"
      "                  [--default-deadline-ms MS] [--metrics-out FILE]\n"
      "  request       send one voprof-api-1 request to a daemon\n"
      "                  --socket PATH --op OP [--params JSON] [--id ID]\n"
      "                  [--deadline-ms MS] [--timeout-ms MS]\n"
      "  bench-diff    compare two BENCH_*.json perf records\n"
      "                  --baseline FILE --current FILE\n"
      "                  [--threshold FRAC] [--report-improvement]\n"
      "                  exit 0 = ok, 1 = regression, 2 = bad input,\n"
      "                  4 = improvement (with --report-improvement)\n"
      "  trace         digest an exported observability trace\n"
      "                  trace summary FILE   per-category time table\n"
      "                  trace top FILE [--limit N]\n"
      "                                       busiest spans by total time\n"
      "                  trace export FILE [--out OUT.csv]\n"
      "                                       per-span aggregates as CSV\n"
      "  version       print the build identity (compiler, flags,\n"
      "                  git describe, observability state)\n"
      "every command also accepts --trace-out FILE (observability\n"
      "trace; VOPROF_TRACE=FILE works too)\n";
  return 2;
}

model::RegressionMethod parse_method(const std::string& name) {
  if (name == "lms") return model::RegressionMethod::kLms;
  if (name == "ols") return model::RegressionMethod::kOls;
  throw util::ContractViolation("unknown method (want lms|ols): " + name);
}

wl::WorkloadKind parse_kind(const std::string& name) {
  if (name == "cpu") return wl::WorkloadKind::kCpu;
  if (name == "mem") return wl::WorkloadKind::kMem;
  if (name == "io") return wl::WorkloadKind::kIo;
  if (name == "bw") return wl::WorkloadKind::kBw;
  throw util::ContractViolation("unknown kind (want cpu|mem|io|bw): " + name);
}

/// Print a loader failure the uniform way and signal exit 1.
int loader_error(const util::Error& err) {
  std::cerr << "voprofctl: " << err.to_string() << '\n';
  return 1;
}

model::TrainerConfig trainer_config(const util::CliArgs& args) {
  model::TrainerConfig cfg;
  cfg.duration = util::seconds(args.get_double("duration", 60.0));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.jobs = args.get_int("jobs", 1);
  return cfg;
}

int cmd_train(const util::CliArgs& args) {
  const model::Trainer trainer(trainer_config(args));
  const auto method = parse_method(args.get_or("method", "lms"));
  std::cout << "training (" << args.get_or("method", "lms")
            << ", full Table II sweep x {1,2,4} VMs)...\n";
  const model::TrainedModels models = trainer.train(method);
  model::save_models_file(models, args.get("out"));
  std::cout << "wrote " << args.get("out") << " ("
            << models.data.size() << " observations)\n";
  const model::LinearFit& cpu =
      models.single.fit_for(model::MetricIndex::kCpu);
  std::printf("PM-CPU fit: R^2 %.4f, rms %.3f\n", cpu.r_squared,
              cpu.residual_rms);
  return 0;
}

int cmd_export_trace(const util::CliArgs& args) {
  const model::Trainer trainer(trainer_config(args));
  std::cout << "collecting observations...\n";
  const model::TrainingSet data = trainer.collect();
  model::training_set_to_csv(data).save(args.get("out"));
  std::cout << "wrote " << args.get("out") << " (" << data.size()
            << " rows)\n";
  return 0;
}

int cmd_fit(const util::CliArgs& args) {
  util::Result<util::CsvDocument> csv =
      util::CsvDocument::load_result(args.get("observations"));
  if (!csv.ok()) return loader_error(csv.error());
  const model::TrainingSet data =
      model::training_set_from_csv(csv.value());
  const auto method = parse_method(args.get_or("method", "lms"));
  const model::TrainedModels models =
      model::Trainer::fit_models(data, method);
  model::save_models_file(models, args.get("out"));
  std::cout << "fitted " << data.size() << " observations -> "
            << args.get("out") << '\n';
  return 0;
}

int cmd_predict(const util::CliArgs& args) {
  util::Result<model::TrainedModels> loaded =
      model::load_models_file_result(args.get("models"));
  if (!loaded.ok()) return loader_error(loaded.error());
  const model::TrainedModels models = std::move(loaded).take();
  const model::UtilVec sum{args.get_double("cpu", 0.0),
                           args.get_double("mem", 0.0),
                           args.get_double("io", 0.0),
                           args.get_double("bw", 0.0)};
  const int n = args.get_int("vms", 1);
  const std::string format = args.get_or("format", "table");

  if (format == "json") {
    // The exact voprof-api-1 `predict` result object: scripted callers
    // get identical bytes whether they ask the CLI or the daemon.
    std::cout << serve::predict_result_json(models, sum, n).dump(0) << '\n';
    return 0;
  }
  const model::UtilVec pm = models.multi.predict(sum, n);
  const double pm_cpu = models.multi.predict_pm_cpu_indirect(sum, n);
  const double dom0 = models.multi.predict_dom0_cpu(sum, n);
  const double hyp = models.multi.predict_hyp_cpu(sum, n);
  if (format == "csv") {
    std::cout << "metric,vm_sum,pm_predicted\n"
              << "cpu," << util::format_double(sum.cpu) << ','
              << util::format_double(pm_cpu) << '\n'
              << "mem," << util::format_double(sum.mem) << ','
              << util::format_double(pm.mem) << '\n'
              << "io," << util::format_double(sum.io) << ','
              << util::format_double(pm.io) << '\n'
              << "bw," << util::format_double(sum.bw) << ','
              << util::format_double(pm.bw) << '\n'
              << "dom0_cpu,0," << util::format_double(dom0) << '\n'
              << "hyp_cpu,0," << util::format_double(hyp) << '\n';
    return 0;
  }
  if (format != "table") {
    throw util::ContractViolation("unknown --format (want csv|json): " +
                                  format);
  }
  util::AsciiTable t("predicted PM utilization for " + std::to_string(n) +
                     " co-located VM(s)");
  t.set_header({"metric", "sum of VMs", "predicted PM", "overhead"});
  t.add_row({"CPU (%)", util::fmt(sum.cpu, 2), util::fmt(pm_cpu, 2),
             util::fmt(dom0, 2) + " Dom0 + " + util::fmt(hyp, 2) + " hyp"});
  t.add_row({"MEM (MiB)", util::fmt(sum.mem, 1), util::fmt(pm.mem, 1),
             util::fmt(pm.mem - sum.mem, 1)});
  t.add_row({"I/O (blk/s)", util::fmt(sum.io, 1), util::fmt(pm.io, 1),
             util::fmt(pm.io - sum.io, 1)});
  t.add_row({"BW (Kb/s)", util::fmt(sum.bw, 1), util::fmt(pm.bw, 1),
             util::fmt(pm.bw - sum.bw, 1)});
  std::cout << t.str();
  return 0;
}

int cmd_profile(const util::CliArgs& args) {
  const wl::WorkloadKind kind = parse_kind(args.get("kind"));
  const double value = args.get_double("value", 50.0);
  const int n_vms = args.get_int("vms", 1);
  const double duration = args.get_double("duration", 60.0);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{},
                       static_cast<std::uint64_t>(args.get_int("seed", 42)));
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i + 1);
    pm.add_vm(spec).attach(wl::make_workload_value(
        kind, value, sim::NetTarget{}, 7 + static_cast<std::uint64_t>(i)));
  }
  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report =
      monitor.measure(util::seconds(duration));

  const std::string format = args.get_or("format", "table");
  if (format == "csv") {
    // Full per-second series, same schema as `simulate --series-out`.
    std::cout << mon::report_to_csv(report).str();
    return 0;
  }
  if (format == "json") {
    util::Json entities = util::Json::object();
    for (const auto& key : report.keys()) {
      const mon::UtilSample u = report.mean(key);
      util::Json e = util::Json::object();
      e.set("cpu", u.cpu_pct);
      e.set("mem", u.mem_mib);
      e.set("io", u.io_blocks_per_s);
      e.set("bw", u.bw_kbps);
      entities.set(key, std::move(e));
    }
    std::cout << entities.dump(0) << '\n';
    return 0;
  }
  if (format != "table") {
    throw util::ContractViolation("unknown --format (want csv|json): " +
                                  format);
  }
  util::AsciiTable t(wl::kind_name(kind) + " @ " + util::fmt(value, 2) +
                     " " + wl::kind_unit(kind) + " x " +
                     std::to_string(n_vms) + " VM(s), " +
                     util::fmt(duration, 0) + " s");
  t.set_header({"entity", "CPU(%)", "MEM(MiB)", "I/O(blk/s)", "BW(Kb/s)"});
  for (const auto& key : report.keys()) {
    const mon::UtilSample u = report.mean(key);
    t.add_row({key, util::fmt(u.cpu_pct, 2), util::fmt(u.mem_mib, 1),
               util::fmt(u.io_blocks_per_s, 2), util::fmt(u.bw_kbps, 2)});
  }
  std::cout << t.str();
  return 0;
}

int cmd_inspect(const util::CliArgs& args) {
  util::Result<util::CsvDocument> csv =
      util::CsvDocument::load_result(args.get("observations"));
  if (!csv.ok()) return loader_error(csv.error());
  const model::TrainingSet data =
      model::training_set_from_csv(csv.value());
  model::BootstrapConfig cfg;
  cfg.method = parse_method(args.get_or("method", "ols"));
  cfg.resamples = args.get_int("resamples", 200);
  std::cout << "bootstrapping " << cfg.resamples << " resamples over "
            << data.with_vm_count(1).size() << " single-VM rows...\n";
  std::cout << model::diagnostics_table(
      model::bootstrap_single_vm(data, cfg));
  return 0;
}

int cmd_simulate(const util::CliArgs& args) {
  util::Result<scenario::ScenarioSpec> loaded =
      scenario::ScenarioSpec::load_result(args.get("scenario"));
  if (!loaded.ok()) return loader_error(loaded.error());
  scenario::ScenarioSpec spec = std::move(loaded).take();
  if (args.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  }
  const int replications = args.get_int("replications", 1);
  const std::string format = args.get_or("format", "table");

  if (format == "json") {
    // Same aggregation (and exact bytes) as the daemon's `simulate` op.
    const scenario::ReplicatedScenarioResult result =
        scenario::run_scenario_replicated(
            spec, static_cast<std::size_t>(replications),
            args.get_int("jobs", 1));
    std::cout << serve::simulate_result_json(result).dump(2) << '\n';
    return 0;
  }
  if (format == "csv") {
    const scenario::ReplicatedScenarioResult result =
        scenario::run_scenario_replicated(
            spec, static_cast<std::size_t>(replications),
            args.get_int("jobs", 1));
    std::cout << "machine,entity,cpu_mean,cpu_stddev,mem_mean,io_mean,"
                 "bw_mean,samples\n";
    for (const auto& [machine, entities] : result.stats) {
      for (const auto& [key, s] : entities) {
        std::cout << machine << ',' << key << ','
                  << util::format_double(s.cpu.mean()) << ','
                  << util::format_double(s.cpu.stddev()) << ','
                  << util::format_double(s.mem.mean()) << ','
                  << util::format_double(s.io.mean()) << ','
                  << util::format_double(s.bw.mean()) << ','
                  << s.cpu.count() << '\n';
      }
    }
    return 0;
  }
  if (format != "table") {
    throw util::ContractViolation("unknown --format (want csv|json): " +
                                  format);
  }

  std::cout << "running scenario: " << spec.machines << " machine(s), "
            << spec.vms.size() << " VM(s), "
            << util::fmt(spec.duration_s, 0) << " s\n\n";
  if (replications > 1) {
    const scenario::ReplicatedScenarioResult result =
        scenario::run_scenario_replicated(
            spec, static_cast<std::size_t>(replications),
            args.get_int("jobs", 1));
    std::cout << result.summary();
  } else {
    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::cout << result.summary();
    if (args.has("series-out")) {
      // Export the first monitored machine's full series.
      const auto& [machine, report] = *result.reports.begin();
      mon::report_to_csv(report).save(args.get("series-out"));
      std::cout << "wrote machine " << machine << " series to "
                << args.get("series-out") << '\n';
    }
  }
  return 0;
}

int cmd_request(const util::CliArgs& args) {
  util::Json params = util::Json::object();
  if (args.has("params")) {
    try {
      params = util::Json::parse(args.get("params"));
    } catch (const util::JsonError& e) {
      std::cerr << "voprofctl: --params is not valid JSON: " << e.what()
                << '\n';
      return 2;
    }
    if (!params.is_object()) {
      std::cerr << "voprofctl: --params must be a JSON object\n";
      return 2;
    }
  }
  util::Json req = util::Json::object();
  req.set("api", serve::kApiVersion);
  req.set("id", args.get_or("id", "ctl"));
  req.set("op", args.get("op"));
  if (args.has("deadline-ms")) {
    req.set("deadline_ms", args.get_int("deadline-ms", 0));
  }
  req.set("params", std::move(params));

  util::Result<serve::LineClient> connected =
      serve::LineClient::connect(args.get("socket"));
  if (!connected.ok()) return loader_error(connected.error());
  serve::LineClient client = std::move(connected).take();
  util::Result<std::string> response =
      client.roundtrip(req.dump(0), args.get_int("timeout-ms", 60000));
  if (!response.ok()) return loader_error(response.error());
  std::cout << response.value() << '\n';

  // Exit code mirrors the response's ok flag so scripts can branch
  // without parsing JSON.
  try {
    const util::Json doc = util::Json::parse(response.value());
    if (doc.at("ok").as_bool()) return 0;
  } catch (const util::JsonError&) {
  }
  return 1;
}

int cmd_serve(const util::CliArgs& args) {
  const util::Result<serve::DaemonConfig> config =
      serve::daemon_config_from_args(args);
  if (!config.ok()) {
    std::cerr << "voprofctl: " << config.error().to_string() << '\n';
    return 2;
  }
  return serve::daemon_main(config.value());
}

int cmd_trace(const std::string& sub, const util::CliArgs& args) {
  // The trace file rides in args.command() — main() peeled off the
  // subcommand word before parsing.
  const std::string& file = args.command();
  if (file.empty()) return usage();
  const tools::TraceSummary summary = tools::summarize_trace_file(file);
  if (sub == "summary") {
    std::cout << tools::format_trace_summary(summary);
    return 0;
  }
  if (sub == "top") {
    std::cout << tools::format_trace_top(summary, args.get_int("limit", 10));
    return 0;
  }
  if (sub == "export") {
    const std::string csv = tools::trace_spans_csv(summary);
    if (args.has("out")) {
      std::ofstream out(args.get("out"));
      VOPROF_REQUIRE_MSG(out.good(), "cannot write " + args.get("out"));
      out << csv;
      std::cout << "wrote " << summary.spans.size() << " span rows to "
                << args.get("out") << '\n';
    } else {
      std::cout << csv;
    }
    return 0;
  }
  return usage();
}

int cmd_version() {
  const bench::harness::EnvInfo env = bench::harness::capture_env();
  std::cout << "voprofctl (voprof " << env.git_describe << ")\n"
            << "  compiler:      " << env.compiler << '\n'
            << "  build type:    " << env.build_type << '\n'
            << "  cxx flags:     " << env.cxx_flags << '\n'
            << "  sanitizers:    "
            << (env.sanitizers.empty() ? "none" : env.sanitizers) << '\n'
            << "  observability: "
            << (obs::kObsCompiled ? "compiled in" : "compiled out") << '\n'
            << "  os/threads:    " << env.os << '/' << env.hardware_threads
            << '\n';
  return 0;
}

int cmd_rubis(const util::CliArgs& args) {
  util::Result<model::TrainedModels> loaded =
      model::load_models_file_result(args.get("models"));
  if (!loaded.ok()) return loader_error(loaded.error());
  const model::TrainedModels models = std::move(loaded).take();
  const int clients = args.get_int("clients", 500);
  const double duration = args.get_double("duration", 120.0);

  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 4242);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = clients;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  engine.run_for(util::seconds(10.0));
  mon::MonitorScript mon1(engine, cluster.machine(0));
  mon::MonitorScript mon2(engine, cluster.machine(1));
  mon1.start();
  mon2.start();
  const double mark = inst.client->completed();
  engine.run_for(util::seconds(duration));
  mon1.stop();
  mon2.stop();
  std::printf("throughput: %.1f req/s at %d clients\n",
              (inst.client->completed() - mark) / duration, clients);

  const model::Predictor predictor(models.multi);
  const auto e1 = predictor.evaluate(mon1.report(), {inst.web_vm});
  const auto e2 = predictor.evaluate(mon2.report(), {inst.db_vm});
  util::AsciiTable t("prediction accuracy (90th percentile error)");
  t.set_header({"PM", "CPU err(%)", "BW err(%)"});
  t.add_row({"PM1 (web)",
             util::fmt(e1.of(model::MetricIndex::kCpu).error_at_fraction(0.9), 2),
             util::fmt(e1.of(model::MetricIndex::kBw).error_at_fraction(0.9), 2)});
  t.add_row({"PM2 (db)",
             util::fmt(e2.of(model::MetricIndex::kCpu).error_at_fraction(0.9), 2),
             util::fmt(e2.of(model::MetricIndex::kBw).error_at_fraction(0.9), 2)});
  std::cout << t.str();
  return 0;
}

int cmd_bench_diff(const util::CliArgs& args) {
  try {
    const double threshold = args.get_double("threshold", 0.25);
    const tools::BenchDiffReport report = tools::bench_diff_files(
        args.get("baseline"), args.get("current"), threshold);
    std::cout << tools::format_bench_diff(report, threshold);
    return tools::bench_diff_exit_code(report,
                                       args.get_bool("report-improvement"));
  } catch (const std::exception& e) {
    // Input/usage problems get a distinct exit code so CI can tell a
    // broken gate from a real perf regression.
    std::cerr << "voprofctl: " << e.what() << '\n';
    return tools::kBenchDiffExitError;
  }
}

int dispatch(const std::string& cmd, const util::CliArgs& args) {
  if (cmd == "train") return cmd_train(args);
  if (cmd == "export-trace") return cmd_export_trace(args);
  if (cmd == "fit") return cmd_fit(args);
  if (cmd == "predict") return cmd_predict(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "rubis") return cmd_rubis(args);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "bench-diff") return cmd_bench_diff(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "request") return cmd_request(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "version") return cmd_version();
    // `trace` takes a subcommand word plus a positional file, which
    // the flag table (exactly zero positionals) can't express: peel
    // the two leading words off first, so the file path becomes the
    // command.
    if (cmd == "trace") {
      if (argc < 3) return usage();
      return cmd_trace(argv[2], util::CliArgs::parse(argc - 2, argv + 2));
    }

    const util::Result<tools::ParsedFlags> parsed =
        tools::parse_flags_argv(cmd, argc, argv, 2);
    if (!parsed.ok()) {
      std::cerr << "voprofctl: " << parsed.error().to_string() << '\n';
      return 2;
    }
    for (const std::string& warning : parsed.value().warnings) {
      std::cerr << "voprofctl: " << warning << '\n';
    }
    const util::CliArgs& args = parsed.value().args;

    // Uniform observability wiring: --trace-out (or VOPROF_TRACE)
    // enables the collector for ANY command; the file is written after
    // the command finishes. (`fit`/`inspect` read observation CSVs via
    // --observations, so --trace-out is unambiguous everywhere.)
    auto& collector = obs::TraceCollector::global();
    if (args.has("trace-out")) {
      collector.enable(args.get("trace-out"));
    } else {
      collector.init_from_env();
    }

    const int rc = dispatch(cmd, args);

    if (collector.enabled()) {
      const std::string path = collector.path();
      const std::size_t events = collector.size();
      if (collector.write_file()) {
        std::cout << "wrote trace (" << events << " events) to " << path
                  << '\n';
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "voprofctl: " << e.what() << '\n';
    return 1;
  }
}
