/// \file voprofd.cpp
/// The voprof serving daemon: accepts voprof-api-1 requests (NDJSON
/// over a Unix-domain socket), executes them on a bounded worker pool
/// and drains gracefully on SIGTERM/SIGINT. `voprofctl serve` runs the
/// identical daemon; this binary exists so a supervisor can manage a
/// long-running instance without the whole ctl surface.
///
///   voprofd --socket /run/voprofd.sock [--jobs N]
///           [--queue-capacity N] [--default-deadline-ms MS]
///           [--max-deadline-ms MS] [--train-duration SEC] [--seed N]
///           [--inner-jobs N] [--metrics-out FILE] [--trace-out FILE]
///           [--enable-test-ops]
///
/// Interact with it via `voprofctl request --socket ... --op ...`.

#include <iostream>
#include <string>

#include "ctl_flags.hpp"
#include "voprof/obs/trace.hpp"
#include "voprof/serve/daemon.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: voprofd --socket PATH [--jobs N]\n"
                   "  [--queue-capacity N] [--default-deadline-ms MS]\n"
                   "  [--max-deadline-ms MS] [--train-duration SEC]\n"
                   "  [--seed N] [--inner-jobs N] [--metrics-out FILE]\n"
                   "  [--trace-out FILE] [--enable-test-ops]\n";
      return 2;
    }
  }
  const util::Result<tools::ParsedFlags> parsed =
      tools::parse_flags_argv("serve", argc, argv, 1);
  if (!parsed.ok()) {
    std::cerr << "voprofd: " << parsed.error().to_string() << '\n';
    return 2;
  }
  for (const std::string& warning : parsed.value().warnings) {
    std::cerr << "voprofd: " << warning << '\n';
  }
  const util::CliArgs& args = parsed.value().args;

  auto& collector = obs::TraceCollector::global();
  if (args.has("trace-out")) {
    collector.enable(args.get("trace-out"));
  } else {
    collector.init_from_env();
  }

  const util::Result<serve::DaemonConfig> config =
      serve::daemon_config_from_args(args);
  if (!config.ok()) {
    std::cerr << "voprofd: " << config.error().to_string() << '\n';
    return 2;
  }
  return serve::daemon_main(config.value());
}
