#include "bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "voprof/util/assert.hpp"
#include "voprof/util/table.hpp"

namespace voprof::tools {

namespace {

/// name -> median wall seconds for every benchmark in a record, in
/// document order. Validates the voprof-bench-1 schema on the way.
std::vector<std::pair<std::string, double>> medians(const util::Json& doc,
                                                    const char* label) {
  const std::string who = std::string("bench-diff: ") + label;
  if (!doc.is_object()) {
    throw util::JsonError(who + ": document is not an object");
  }
  const util::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voprof-bench-1") {
    throw util::JsonError(who + ": missing or unsupported schema "
                                "(want \"voprof-bench-1\")");
  }
  std::vector<std::pair<std::string, double>> out;
  for (const util::Json& b : doc.at("benchmarks").as_array()) {
    const std::string& name = b.at("name").as_string();
    const double median = b.at("wall_s").at("median").as_number();
    if (!(median > 0.0) || !std::isfinite(median)) {
      throw util::JsonError(who + ": benchmark \"" + name +
                            "\" has a non-positive median");
    }
    out.emplace_back(name, median);
  }
  return out;
}

}  // namespace

bool BenchDiffReport::has_regression() const noexcept {
  return std::any_of(compared.begin(), compared.end(), [](const auto& c) {
    return c.verdict == BenchVerdict::kRegression;
  });
}

bool BenchDiffReport::has_improvement() const noexcept {
  return std::any_of(compared.begin(), compared.end(), [](const auto& c) {
    return c.verdict == BenchVerdict::kImprovement;
  });
}

BenchDiffReport bench_diff(const util::Json& baseline,
                           const util::Json& current, double threshold) {
  VOPROF_REQUIRE_MSG(threshold > 0.0 && threshold < 10.0,
                     "bench-diff threshold must be in (0, 10)");
  const auto base = medians(baseline, "baseline");
  const auto cur = medians(current, "current");

  BenchDiffReport report;
  for (const auto& [name, cur_median] : cur) {
    const auto it = std::find_if(
        base.begin(), base.end(),
        [&name = name](const auto& b) { return b.first == name; });
    if (it == base.end()) {
      report.only_in_current.push_back(name);
      continue;
    }
    BenchComparison c;
    c.name = name;
    c.baseline_median_s = it->second;
    c.current_median_s = cur_median;
    c.ratio = cur_median / it->second;
    if (c.ratio > 1.0 + threshold) {
      c.verdict = BenchVerdict::kRegression;
    } else if (c.ratio < 1.0 - threshold) {
      c.verdict = BenchVerdict::kImprovement;
    }
    report.compared.push_back(std::move(c));
  }
  for (const auto& [name, median] : base) {
    (void)median;
    const bool in_cur = std::any_of(
        cur.begin(), cur.end(),
        [&name = name](const auto& c) { return c.first == name; });
    if (!in_cur) report.only_in_baseline.push_back(name);
  }
  return report;
}

BenchDiffReport bench_diff_files(const std::string& baseline,
                                 const std::string& current,
                                 double threshold) {
  const auto load = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      throw util::ContractViolation("bench-diff: cannot read " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return util::Json::parse(text.str());
  };
  return bench_diff(load(baseline), load(current), threshold);
}

std::string format_bench_diff(const BenchDiffReport& report,
                              double threshold) {
  std::string out;
  out += "bench-diff (threshold " +
         util::fmt(threshold * 100.0, 0) + "% on median wall time)\n";
  for (const auto& c : report.compared) {
    const char* tag = c.verdict == BenchVerdict::kRegression ? "REGRESSION"
                      : c.verdict == BenchVerdict::kImprovement
                          ? "improvement"
                          : "ok";
    out += "  " + c.name + ": " + util::fmt(c.baseline_median_s * 1e3, 3) +
           " ms -> " + util::fmt(c.current_median_s * 1e3, 3) + " ms (" +
           util::fmt(c.ratio, 3) + "x)  " + tag + "\n";
  }
  for (const auto& n : report.only_in_baseline) {
    out += "  " + n + ": only in baseline (skipped)\n";
  }
  for (const auto& n : report.only_in_current) {
    out += "  " + n + ": only in current (skipped)\n";
  }
  return out;
}

int bench_diff_exit_code(const BenchDiffReport& report,
                         bool report_improvement) noexcept {
  if (report.has_regression()) return kBenchDiffExitRegression;
  if (report_improvement && report.has_improvement()) {
    return kBenchDiffExitImprovement;
  }
  return kBenchDiffExitNeutral;
}

}  // namespace voprof::tools
