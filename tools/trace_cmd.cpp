#include "trace_cmd.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"
#include "voprof/util/numeric.hpp"
#include "voprof/util/table.hpp"

namespace voprof::tools {

namespace {

/// Key for the per-span aggregation map; ordered so iteration (and
/// therefore tie-breaking between equally busy spans) is stable.
using SpanKey = std::pair<std::string, std::string>;  // (category, name)

double number_or(const util::Json& event, const char* key, double fallback) {
  const util::Json* v = event.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string string_or(const util::Json& event, const char* key,
                      const std::string& fallback) {
  const util::Json* v = event.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

}  // namespace

TraceSummary summarize_trace(const util::Json& doc) {
  VOPROF_REQUIRE_MSG(doc.is_object(), "trace: document is not a JSON object");
  const util::Json* schema = doc.find("schema");
  VOPROF_REQUIRE_MSG(schema != nullptr && schema->is_string() &&
                         schema->as_string() == obs::kTraceSchema,
                     std::string("trace: expected schema \"") +
                         obs::kTraceSchema + "\" (is this a voprof trace?)");
  const util::Json* events = doc.find("traceEvents");
  VOPROF_REQUIRE_MSG(events != nullptr && events->is_array(),
                     "trace: missing traceEvents array");

  TraceSummary out;
  out.schema = schema->as_string();
  std::map<std::string, TraceCategoryStats> cats;
  std::map<SpanKey, TraceSpanStats> spans;
  for (const util::Json& e : events->as_array()) {
    ++out.total_events;
    const std::string ph = string_or(e, "ph", "");
    if (ph == "M") continue;  // process metadata carries no category
    const std::string cat = string_or(e, "cat", "(none)");
    const auto pid = static_cast<int>(number_or(e, "pid", obs::kWallPid));
    const double dur_ms = number_or(e, "dur", 0.0) / 1000.0;

    TraceCategoryStats& c = cats[cat];
    c.category = cat;
    if (ph == "X") {
      ++c.spans;
      if (pid == obs::kSimPid) {
        c.sim_ms += dur_ms;
      } else {
        c.wall_ms += dur_ms;
      }
      const SpanKey key{cat, string_or(e, "name", "(unnamed)")};
      TraceSpanStats& s = spans[key];
      s.category = key.first;
      s.name = key.second;
      ++s.count;
      if (pid == obs::kSimPid) {
        s.sim_ms += dur_ms;
      } else {
        s.wall_ms += dur_ms;
      }
    } else if (ph == "i" || ph == "I") {
      ++c.instants;
    } else if (ph == "C") {
      ++c.counters;
    }
  }

  const util::Json* metrics = doc.find("voprofMetrics");
  if (metrics != nullptr && metrics->is_object()) {
    out.metric_count = static_cast<int>(metrics->as_object().size());
  }

  out.categories.reserve(cats.size());
  for (auto& kv : cats) out.categories.push_back(std::move(kv.second));
  out.spans.reserve(spans.size());
  for (auto& kv : spans) out.spans.push_back(std::move(kv.second));
  std::stable_sort(out.spans.begin(), out.spans.end(),
                   [](const TraceSpanStats& a, const TraceSpanStats& b) {
                     return a.wall_ms + a.sim_ms > b.wall_ms + b.sim_ms;
                   });
  return out;
}

TraceSummary summarize_trace_file(const std::string& path) {
  std::ifstream f(path);
  VOPROF_REQUIRE_MSG(f.good(), "trace: cannot open " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return summarize_trace(util::Json::parse(os.str()));
}

std::string format_trace_summary(const TraceSummary& s) {
  util::AsciiTable t("trace summary (" + std::to_string(s.total_events) +
                     " events, " + std::to_string(s.metric_count) +
                     " metrics)");
  t.set_header({"category", "spans", "instants", "counters", "wall(ms)",
                "sim(ms)"});
  for (const TraceCategoryStats& c : s.categories) {
    t.add_row({c.category, std::to_string(c.spans),
               std::to_string(c.instants), std::to_string(c.counters),
               util::fmt(c.wall_ms, 3), util::fmt(c.sim_ms, 3)});
  }
  return t.str();
}

std::string format_trace_top(const TraceSummary& s, int limit) {
  const std::size_t n =
      limit <= 0 ? s.spans.size()
                 : std::min(s.spans.size(), static_cast<std::size_t>(limit));
  util::AsciiTable t("top " + std::to_string(n) + " spans by total time");
  t.set_header({"category", "name", "count", "wall(ms)", "sim(ms)"});
  for (std::size_t i = 0; i < n; ++i) {
    const TraceSpanStats& sp = s.spans[i];
    t.add_row({sp.category, sp.name, std::to_string(sp.count),
               util::fmt(sp.wall_ms, 3), util::fmt(sp.sim_ms, 3)});
  }
  return t.str();
}

std::string trace_spans_csv(const TraceSummary& s) {
  std::string out = "category,name,count,wall_ms,sim_ms\n";
  for (const TraceSpanStats& sp : s.spans) {
    out += sp.category;
    out += ',';
    out += sp.name;
    out += ',';
    out += std::to_string(sp.count);
    out += ',';
    out += util::format_double(sp.wall_ms);
    out += ',';
    out += util::format_double(sp.sim_ms);
    out += '\n';
  }
  return out;
}

}  // namespace voprof::tools
