#include "ctl_flags.hpp"

#include <algorithm>

#include "voprof/util/assert.hpp"

namespace voprof::tools {

namespace {

struct CommandEntry {
  std::string command;
  std::vector<FlagSpec> flags;
};

/// The whole CLI surface. Cross-cutting flags keep one spelling:
/// --jobs (parallelism), --seed, --format csv|json, --trace-out
/// (observability trace file, everywhere — --trace is reserved for
/// observation-CSV *inputs*, now spelled --observations).
const std::vector<CommandEntry>& command_table() {
  static const std::vector<CommandEntry> table = {
      {"train",
       {{"out"}, {"method"}, {"duration"}, {"seed"}, {"jobs"},
        {"trace-out"}}},
      {"export-trace",
       {{"out"}, {"duration"}, {"seed"}, {"jobs"}, {"trace-out"}}},
      {"fit", {{"observations"}, {"out"}, {"method"}, {"trace-out"}}},
      {"predict",
       {{"models"}, {"cpu"}, {"mem"}, {"io"}, {"bw"}, {"vms"}, {"format"},
        {"trace-out"}}},
      {"profile",
       {{"kind"}, {"value"}, {"vms"}, {"duration"}, {"seed"}, {"format"},
        {"trace-out"}}},
      {"rubis",
       {{"models"}, {"clients"}, {"duration"}, {"seed"}, {"trace-out"}}},
      {"inspect",
       {{"observations"}, {"method"}, {"resamples"}, {"seed"},
        {"trace-out"}}},
      {"simulate",
       {{"scenario"}, {"replications"}, {"jobs"}, {"seed"}, {"format"},
        {"series-out"}, {"trace-out"}}},
      {"bench-diff",
       {{"baseline"}, {"current"}, {"threshold"},
        {"report-improvement", true}}},
      {"serve",
       {{"socket"}, {"jobs"}, {"queue-capacity"}, {"default-deadline-ms"},
        {"max-deadline-ms"}, {"train-duration"}, {"seed"}, {"inner-jobs"},
        {"enable-test-ops", true}, {"metrics-out"}, {"trace-out"}}},
      {"request",
       {{"socket"}, {"op"}, {"params"}, {"id"}, {"deadline-ms"},
        {"timeout-ms"}}},
  };
  return table;
}

const CommandEntry* find_command(const std::string& command) {
  for (const CommandEntry& e : command_table()) {
    if (e.command == command) return &e;
  }
  return nullptr;
}

std::string valid_flag_list(const CommandEntry& entry) {
  std::string out;
  for (const FlagSpec& f : entry.flags) {
    if (!out.empty()) out += ", ";
    out += "--" + f.name;
  }
  return out;
}

}  // namespace

const std::vector<FlagSpec>& command_flags(const std::string& command) {
  static const std::vector<FlagSpec> empty;
  const CommandEntry* entry = find_command(command);
  return entry != nullptr ? entry->flags : empty;
}

std::vector<std::string> known_commands() {
  std::vector<std::string> out;
  for (const CommandEntry& e : command_table()) out.push_back(e.command);
  return out;
}

const std::vector<FlagAlias>& flag_aliases() {
  static const std::vector<FlagAlias> aliases = {
      {"simulate", "csv", "series-out"},
      {"fit", "trace", "observations"},
      {"inspect", "trace", "observations"},
  };
  return aliases;
}

util::Result<ParsedFlags> parse_flags(const std::string& command,
                                      const std::vector<std::string>& tokens) {
  const CommandEntry* entry = find_command(command);
  if (entry == nullptr) {
    std::string cmds;
    for (const std::string& c : known_commands()) {
      if (!cmds.empty()) cmds += ", ";
      cmds += c;
    }
    return util::Error{util::Errc::kValidation,
                       "unknown command '" + command + "' (commands: " +
                           cmds + ")",
                       "cli"};
  }

  ParsedFlags out;
  // Rewrite deprecated spellings before structural parsing so the
  // alias also works for `--csv value` pairs.
  std::vector<std::string> rewritten;
  rewritten.reserve(tokens.size() + 1);
  rewritten.emplace_back("voprofctl");  // argv[0] slot CliArgs skips
  for (const std::string& token : tokens) {
    std::string mapped = token;
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      for (const FlagAlias& alias : flag_aliases()) {
        if (alias.command == command && alias.deprecated == name) {
          mapped = "--" + alias.canonical;
          out.warnings.push_back("--" + alias.deprecated +
                                 " is deprecated; use --" + alias.canonical);
          break;
        }
      }
    }
    rewritten.push_back(std::move(mapped));
  }

  std::vector<const char*> argv;
  argv.reserve(rewritten.size());
  for (const std::string& t : rewritten) argv.push_back(t.c_str());
  std::vector<std::string> bool_flags;
  for (const FlagSpec& f : entry->flags) {
    if (f.boolean) bool_flags.push_back(f.name);
  }

  try {
    out.args = util::CliArgs::parse(static_cast<int>(argv.size()),
                                    argv.data(), bool_flags);
  } catch (const util::ContractViolation& e) {
    return util::Error{util::Errc::kValidation, e.what(), command};
  }
  if (!out.args.command().empty()) {
    return util::Error{util::Errc::kValidation,
                       "unexpected positional argument '" +
                           out.args.command() + "'",
                       command};
  }
  for (const std::string& name : out.args.flag_names()) {
    const bool known =
        std::any_of(entry->flags.begin(), entry->flags.end(),
                    [&name](const FlagSpec& f) { return f.name == name; });
    if (!known) {
      return util::Error{util::Errc::kValidation,
                         "unknown flag --" + name + " (valid: " +
                             valid_flag_list(*entry) + ")",
                         command};
    }
  }
  return out;
}

util::Result<ParsedFlags> parse_flags_argv(const std::string& command,
                                           int argc,
                                           const char* const* argv,
                                           int first_token) {
  std::vector<std::string> tokens;
  for (int i = first_token; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse_flags(command, tokens);
}

}  // namespace voprof::tools
