#pragma once
/// \file trace_cmd.hpp
/// `voprofctl trace` implementation: load a voprof Chrome-trace file
/// (schema "voprof-trace-1", written by obs::TraceCollector) and
/// aggregate it into per-category and per-span tables. A library so
/// the tests (tests/test_trace_tool.cpp) can drive it without
/// spawning the CLI; `voprofctl trace summary|top|export` wraps it.

#include <string>
#include <vector>

#include "voprof/util/json.hpp"

namespace voprof::tools {

/// Aggregate of one trace category ("engine", "runner", "scheduler"...).
struct TraceCategoryStats {
  std::string category;
  int spans = 0;         ///< complete events (ph "X")
  int instants = 0;      ///< instant events (ph "i")
  int counters = 0;      ///< counter events (ph "C")
  double wall_ms = 0.0;  ///< summed duration of wall-clock spans
  double sim_ms = 0.0;   ///< summed duration of sim-clock spans
};

/// Aggregate of one span name within a category.
struct TraceSpanStats {
  std::string category;
  std::string name;
  int count = 0;
  double wall_ms = 0.0;
  double sim_ms = 0.0;
};

/// The digest `voprofctl trace` renders.
struct TraceSummary {
  std::string schema;
  int total_events = 0;   ///< traceEvents entries, metadata included
  int metric_count = 0;   ///< entries in the embedded voprofMetrics
  /// Sorted by category name.
  std::vector<TraceCategoryStats> categories;
  /// Sorted by total (wall + sim) time, busiest first.
  std::vector<TraceSpanStats> spans;
};

/// Validate a parsed trace document (schema must be "voprof-trace-1",
/// traceEvents must be an array) and aggregate it. Throws
/// util::ContractViolation on a foreign document and util::JsonError
/// on malformed events.
[[nodiscard]] TraceSummary summarize_trace(const util::Json& doc);

/// Read + parse + summarize a trace file.
[[nodiscard]] TraceSummary summarize_trace_file(const std::string& path);

/// Per-category time table ("voprofctl trace summary").
[[nodiscard]] std::string format_trace_summary(const TraceSummary& s);

/// Top span names by total time ("voprofctl trace top"); limit <= 0
/// means all.
[[nodiscard]] std::string format_trace_top(const TraceSummary& s, int limit);

/// CSV of every span-name aggregate, one row per (category, name):
/// `category,name,count,wall_ms,sim_ms` ("voprofctl trace export").
[[nodiscard]] std::string trace_spans_csv(const TraceSummary& s);

}  // namespace voprof::tools
