/// \file voprof_lint.cpp
/// CLI for the project-convention linter:
///   voprof-lint <repo-root>
/// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <exception>
#include <iostream>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "-h" ||
      std::string(argv[1]) == "--help") {
    std::cerr << "usage: voprof-lint <repo-root>\n"
              << "Checks voprof project conventions (naked-assert, "
                 "float-in-model,\nheader-guard, cout-in-library, raw-rand, "
                 "raw-thread); see docs/STATIC_ANALYSIS.md.\n";
    return 2;
  }
  try {
    const voprof::lint::LintReport report =
        voprof::lint::lint_tree(argv[1]);
    for (const voprof::lint::Finding& f : report.findings) {
      std::cout << f.format() << "\n";
    }
    std::cout << "voprof-lint: " << report.files_scanned << " files, "
              << report.findings.size() << " finding(s)\n";
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
