#pragma once
/// \file ctl_flags.hpp
/// The one flag table of the voprof command-line surface. Every
/// voprofctl subcommand (and voprofd, which is `voprofctl serve` in a
/// dedicated binary) declares its flags here, so:
///  * unknown flags fail with the command's valid-flag list instead of
///    silently parsing;
///  * the cross-cutting flags keep one spelling everywhere: `--jobs`,
///    `--seed`, `--format csv|json`, `--trace-out FILE`;
///  * deprecated spellings (`simulate --csv` for `--series-out`,
///    `fit/inspect --trace` for `--observations`) still work but are
///    rewritten to their canonical flag with a one-line stderr
///    warning.
///
/// tests/test_ctl_flags.cpp drives this table directly; the binaries
/// only wrap it.

#include <string>
#include <vector>

#include "voprof/util/cli.hpp"
#include "voprof/util/result.hpp"

namespace voprof::tools {

/// One flag a command accepts.
struct FlagSpec {
  std::string name;      ///< canonical spelling (no leading --)
  bool boolean = false;  ///< switch, takes no value
};

/// A deprecated spelling and the canonical flag it maps to.
struct FlagAlias {
  std::string command;     ///< command the alias applies to
  std::string deprecated;  ///< old spelling (no leading --)
  std::string canonical;
};

/// Flags accepted by `command`; empty when the command is unknown.
[[nodiscard]] const std::vector<FlagSpec>& command_flags(
    const std::string& command);

/// Commands registered in the table.
[[nodiscard]] std::vector<std::string> known_commands();

/// The deprecation map (exposed for the self-test).
[[nodiscard]] const std::vector<FlagAlias>& flag_aliases();

/// Result of canonicalizing a raw flag list.
struct ParsedFlags {
  util::CliArgs args;
  /// Warnings emitted for deprecated spellings ("--csv is
  /// deprecated; use --series-out"). The caller prints them (the
  /// binaries send them to stderr); tests assert on them.
  std::vector<std::string> warnings;
};

/// Parse the tokens after `<program> <command>`: rewrite deprecated
/// spellings, reject flags the command does not declare (listing the
/// valid ones), and hand back strict CliArgs. Errors are
/// Errc::kValidation.
[[nodiscard]] util::Result<ParsedFlags> parse_flags(
    const std::string& command, const std::vector<std::string>& tokens);

/// Convenience over argv: tokens = argv[first_token..argc).
[[nodiscard]] util::Result<ParsedFlags> parse_flags_argv(
    const std::string& command, int argc, const char* const* argv,
    int first_token);

}  // namespace voprof::tools
