#pragma once
/// \file bench_diff.hpp
/// Comparison of two harness perf records (BENCH_<name>.json, schema
/// voprof-bench-1): pairs benchmarks by name, compares median wall
/// time, and classifies each pair against a relative threshold. The
/// logic lives in a library so tests can drive it without spawning the
/// CLI; `voprofctl bench-diff` is a thin wrapper and the CI perf gate.

#include <string>
#include <vector>

#include "voprof/util/json.hpp"

namespace voprof::tools {

/// Classification of one benchmark pair.
enum class BenchVerdict { kNeutral, kImprovement, kRegression };

/// One benchmark present in both records.
struct BenchComparison {
  std::string name;
  double baseline_median_s = 0.0;
  double current_median_s = 0.0;
  /// current / baseline median wall time; > 1 means slower.
  double ratio = 1.0;
  BenchVerdict verdict = BenchVerdict::kNeutral;
};

/// Full diff of two perf records.
struct BenchDiffReport {
  std::vector<BenchComparison> compared;
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;

  [[nodiscard]] bool has_regression() const noexcept;
  [[nodiscard]] bool has_improvement() const noexcept;
};

/// Compare two parsed perf records. `threshold` is the relative
/// median-wall-time change that counts as significant (0.25 = 25 %).
/// Throws util::JsonError / util::ContractViolation when a document
/// does not carry the voprof-bench-1 schema.
[[nodiscard]] BenchDiffReport bench_diff(const util::Json& baseline,
                                         const util::Json& current,
                                         double threshold);

/// Convenience: load both files and compare. Throws on unreadable or
/// malformed input.
[[nodiscard]] BenchDiffReport bench_diff_files(const std::string& baseline,
                                               const std::string& current,
                                               double threshold);

/// Human-readable table of the report (one line per benchmark).
[[nodiscard]] std::string format_bench_diff(const BenchDiffReport& report,
                                            double threshold);

/// Process exit codes of `voprofctl bench-diff` (tested contract):
/// 0 = no significant change (or improvements without
///     --report-improvement, so a CI gate only fails on regressions),
/// 1 = at least one regression beyond the threshold,
/// 2 = usage or input error (missing/malformed JSON),
/// 4 = improvements only, when --report-improvement was passed.
inline constexpr int kBenchDiffExitNeutral = 0;
inline constexpr int kBenchDiffExitRegression = 1;
inline constexpr int kBenchDiffExitError = 2;
inline constexpr int kBenchDiffExitImprovement = 4;

/// Exit code for a report under the CLI contract above.
[[nodiscard]] int bench_diff_exit_code(const BenchDiffReport& report,
                                       bool report_improvement) noexcept;

}  // namespace voprof::tools
