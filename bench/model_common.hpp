#pragma once
/// \file model_common.hpp
/// Shared pipeline for the Sec. VI benches: train the Sec. V models
/// from the full micro-benchmark sweep (as Sec. VI-A does), run the
/// RUBiS deployments of Fig. 6 with 1..3 instances, and evaluate the
/// prediction-error CDFs for both PMs.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "voprof/core/predictor.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/runner/runner.hpp"

namespace voprof::bench {

/// Train the overhead models exactly as Sec. VI-A: the Table II sweep
/// over {1,2,4} co-located VMs, 2 minutes per cell. The default
/// estimator is Least Median of Squares — the method the paper cites
/// ([24], Rousseeuw 1984). It matters: Dom0's control-plane response is
/// convex in guest CPU, and OLS smears that curvature across the whole
/// range while LMS fits the bulk of the data tightly (the ablation
/// bench quantifies the difference).
/// The sweep's cells fan over `jobs` workers (0 = all hardware
/// threads, 1 = serial); the fitted coefficients are identical either
/// way. Results come from the process-wide runner::model_cache(), so a
/// bench that needs the same models twice trains once.
inline const model::TrainedModels& train_paper_models(
    model::RegressionMethod method = model::RegressionMethod::kLms,
    util::SimMicros cell_duration = util::seconds(120.0), int jobs = 0) {
  harness::Session& session = harness::Session::global();
  const auto t0 = std::chrono::steady_clock::now();
  const model::TrainedModels& models =
      runner::model_cache().get(method, cell_duration, /*seed=*/42, jobs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Cache hits record near-zero sections; the first call carries the
  // actual training cost. Checksum: observation count (deterministic).
  session.record_section(session.next_section_name("train_models"), wall_s,
                         0.0, static_cast<double>(models.data.size()));
  return models;
}

/// Result of one RUBiS prediction run: the evaluations for both PMs.
struct RubisPrediction {
  model::PredictionEval pm1;  ///< web-tier PM
  model::PredictionEval pm2;  ///< DB-tier PM
};

/// Deploy `instances` RUBiS sets (web VMs on PM1, DB VMs on PM2,
/// clients on a third machine), run for `duration` after a warmup, and
/// evaluate the trained model's per-second PM predictions against the
/// measured PM utilizations.
inline RubisPrediction run_rubis_prediction(
    const model::MultiVmModel& trained, int instances, int clients,
    std::uint64_t seed, util::SimMicros duration = util::seconds(120.0)) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, seed);
  cluster.add_machine(sim::MachineSpec{});  // PM1: web tier(s)
  cluster.add_machine(sim::MachineSpec{});  // PM2: DB tier(s)
  cluster.add_machine(sim::MachineSpec{});  // client machine

  std::vector<std::string> web_vms, db_vms;
  for (int i = 0; i < instances; ++i) {
    rubis::DeployOptions opt;
    opt.clients = clients;
    opt.suffix = instances > 1 ? std::to_string(i + 1) : std::string{};
    opt.seed = seed + static_cast<std::uint64_t>(i) * 11;
    const rubis::RubisInstance inst =
        rubis::deploy_rubis(cluster, 0, 1, 2, opt);
    web_vms.push_back(inst.web_vm);
    db_vms.push_back(inst.db_vm);
  }

  engine.run_for(util::seconds(10.0));  // closed-loop warmup

  mon::MonitorScript mon1(engine, cluster.machine(0));
  mon::MonitorScript mon2(engine, cluster.machine(1));
  mon1.start();
  mon2.start();
  engine.run_for(duration);
  mon1.stop();
  mon2.stop();

  const model::Predictor predictor(trained);
  RubisPrediction out;
  out.pm1 = predictor.evaluate(mon1.report(), web_vms);
  out.pm2 = predictor.evaluate(mon2.report(), db_vms);
  return out;
}

/// Print one CDF table in the paper's Fig. 7-9 style: one row per
/// client count, the error bounds covering 50/80/90/95 % of the
/// predictions. `paper_p90` is the figure's quoted 90 % bound (< 0 to
/// omit).
inline void print_error_table(const std::string& title,
                              const std::vector<int>& client_counts,
                              const std::vector<model::MetricEval*>& evals,
                              double paper_p90) {
  util::AsciiTable t(title);
  t.set_header({"clients", "p50 err(%)", "p80 err(%)", "p90 err(%)",
                "p95 err(%)", "mean err(%)"});
  double worst_p90 = 0.0;
  for (std::size_t i = 0; i < client_counts.size(); ++i) {
    const model::MetricEval& e = *evals[i];
    t.add_row({std::to_string(client_counts[i]),
               util::fmt(e.error_at_fraction(0.5), 2),
               util::fmt(e.error_at_fraction(0.8), 2),
               util::fmt(e.error_at_fraction(0.9), 2),
               util::fmt(e.error_at_fraction(0.95), 2),
               util::fmt(e.mean_error_pct(), 2)});
    worst_p90 = std::max(worst_p90, e.error_at_fraction(0.9));
  }
  std::cout << t.str();
  if (paper_p90 >= 0.0) {
    std::printf("  worst 90%%-bound across client counts: %.2f%%  (paper: "
                "90%% of predictions under ~%.1f%%)\n\n",
                worst_p90, paper_p90);
  } else {
    std::cout << '\n';
  }
}

}  // namespace voprof::bench
